#include "api/run_config.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace detlock::api {

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kBaseline: return "baseline";
    case Mode::kClocksOnly: return "clocks-only";
    case Mode::kDetLock: return "detlock";
    case Mode::kKendoSim: return "kendo-sim";
  }
  DETLOCK_UNREACHABLE("bad mode");
}

std::optional<Mode> mode_from_name(std::string_view name) {
  if (name == "baseline") return Mode::kBaseline;
  if (name == "clocks-only" || name == "nondet") return Mode::kClocksOnly;
  if (name == "detlock") return Mode::kDetLock;
  if (name == "kendo-sim" || name == "kendo") return Mode::kKendoSim;
  return std::nullopt;
}

const char* clock_table_name(runtime::ClockTableKind kind) {
  switch (kind) {
    case runtime::ClockTableKind::kFlat: return "flat";
    case runtime::ClockTableKind::kTree: return "tree";
  }
  DETLOCK_UNREACHABLE("bad clock-table kind");
}

std::optional<runtime::ClockTableKind> clock_table_from_name(std::string_view name) {
  if (name == "flat") return runtime::ClockTableKind::kFlat;
  if (name == "tree") return runtime::ClockTableKind::kTree;
  return std::nullopt;
}

const char* engine_name(interp::EngineKind kind) {
  switch (kind) {
    case interp::EngineKind::kReference: return "reference";
    case interp::EngineKind::kDecoded: return "decoded";
    case interp::EngineKind::kJit: return "jit";
  }
  DETLOCK_UNREACHABLE("bad engine kind");
}

std::optional<interp::EngineKind> engine_from_name(std::string_view name) {
  if (name == "decoded") return interp::EngineKind::kDecoded;
  if (name == "reference") return interp::EngineKind::kReference;
  if (name == "jit") return interp::EngineKind::kJit;
  return std::nullopt;
}

std::optional<std::string> RunConfig::validate() const {
  if (kendo_chunk_size < 1) return "kendo chunk size must be >= 1";
  if (threads_max < 1 || threads_max > (1u << 16)) {
    return "threads-max must be between 1 and 65536";
  }
  if (runs < 1) return "runs must be >= 1";
  if (watchdog_ms > 86'400'000) return "watchdog-ms must be at most 86400000 (one day)";
  if (chaos_trials < 1 || chaos_trials > 10'000) {
    return "chaos-trials must be between 1 and 10000";
  }
  if (memory_words != 0 && memory_words < (1u << 8)) {
    return "memory-words must be 0 (auto) or at least 256";
  }
  return std::nullopt;
}

interp::EngineConfig RunConfig::engine_config(std::size_t memory_hint) const {
  interp::EngineConfig config;
  config.deterministic = deterministic();
  config.engine = engine;
  if (memory_words != 0) {
    config.memory_words = memory_words;
  } else if (memory_hint != 0) {
    config.memory_words = memory_hint;
  }
  config.runtime.max_threads = threads_max;
  config.runtime.clock_table = clock_table;
  config.runtime.record_trace = record_trace;
  config.runtime.keep_trace_events = keep_trace_events;
  config.runtime.profile = profile || profile_spans;
  config.runtime.profile_spans = profile_spans;
  config.runtime.watchdog_ms = watchdog_ms;
  if (mode == Mode::kKendoSim) {
    config.runtime.publication = runtime::ClockPublication::kChunked;
    config.runtime.chunk_size = kendo_chunk_size;
  }
  return config;
}

}  // namespace detlock::api
