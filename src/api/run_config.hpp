// The consolidated public run API.
//
// One RunConfig describes everything about "run this program under DetLock"
// that used to be spread (with drifting defaults) across three structs:
// detlockc's private CLI struct, workloads::MeasureOptions, and the raw
// runtime::RuntimeConfig.  Every driver -- detlockc, the measurement
// harness, and the detserve batch service -- now builds a RunConfig, calls
// validate() once, and derives the engine wiring from engine_config(), so a
// knob combination is either legal everywhere or rejected everywhere with
// the same message.
//
// The split matters for the service layer (src/service/): the fields that
// affect the *compiled artifact* (mode, engine, pass options) are separated
// out by compile_options(), so a CompiledModule can be shared by many
// concurrent executions whose per-run knobs (watchdog, chaos seed, trace
// recording) differ.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "interp/engine.hpp"
#include "pass/options.hpp"

namespace detlock::api {

/// The paper's execution configurations (Table I bands + Table II's Kendo
/// comparison).  Moved here from workloads/harness.hpp so every driver
/// names modes identically; workloads::Mode remains as an alias.
enum class Mode { kBaseline, kClocksOnly, kDetLock, kKendoSim };

const char* mode_name(Mode mode);
/// Inverse of mode_name, plus the CLI shorthands "nondet" (== clocks-only:
/// instrumented code on plain locks) and "kendo" (== kendo-sim).
std::optional<Mode> mode_from_name(std::string_view name);

/// "flat" / "tree" for --clock-table= and report output.
const char* clock_table_name(runtime::ClockTableKind kind);
std::optional<runtime::ClockTableKind> clock_table_from_name(std::string_view name);

/// "decoded" / "reference" / "jit" for --interp=, the manifest engine= key,
/// and report output.  Note the report names the *requested* engine: when
/// the JIT is unavailable on a host the engine falls back to decoded
/// execution with identical observable results (see
/// docs/interp-performance.md), and the fingerprints it reports are
/// byte-identical by construction.
const char* engine_name(interp::EngineKind kind);
std::optional<interp::EngineKind> engine_from_name(std::string_view name);

struct RunConfig {
  Mode mode = Mode::kDetLock;
  /// Execution engine; the predecoded direct-threaded engine is the default
  /// everywhere, the reference engine is the differential baseline.
  interp::EngineKind engine = interp::EngineKind::kDecoded;
  pass::PassOptions pass_options = pass::PassOptions::all();
  /// Chunk size for kKendoSim's simulated performance counter.
  std::uint64_t kendo_chunk_size = 2048;
  /// Runtime thread-slot budget (guest threads, not host workers).
  std::uint32_t threads_max = 64;
  /// Turn-predicate structure for the deterministic backend: the min-clock
  /// tree (default) or the flat scan oracle.  Never changes observable
  /// behavior, only the cost of a turn check (see
  /// docs/turn-protocol-scaling.md).
  runtime::ClockTableKind clock_table = runtime::ClockTableKind::kTree;
  /// Guest memory in 64-bit words; 0 picks the engine default (or the
  /// workload's sizing hint in measure()).
  std::size_t memory_words = 0;
  /// Fingerprint-compare repetitions for drivers that re-run (detlockc
  /// --runs, detserve manifest runs=).
  int runs = 1;

  /// Keep the trace hash (adds a global mutex on every acquire; off for
  /// timing runs, on for determinism checks).
  bool record_trace = true;
  /// Additionally keep the full acquisition list (schedule export/compare).
  bool keep_trace_events = false;
  /// Wait-time attribution (runtime/profile.hpp).
  bool profile = false;
  /// Per-wait spans for the Chrome-trace export (implies profile).
  bool profile_spans = false;

  /// Stall watchdog window in ms (runtime/watchdog.hpp); 0 disables.
  std::uint64_t watchdog_ms = 0;
  /// Adversarial timing perturbation (runtime/faultinject.hpp).
  bool chaos = false;
  std::uint64_t chaos_seed = 1;
  /// Perturbed trials for chaos comparison drivers.
  int chaos_trials = 4;

  /// Checks every cross-field contract the drivers used to enforce ad hoc.
  /// Returns std::nullopt when legal, else a one-line human-readable
  /// message ("kendo chunk size must be >= 1").  detlockc maps a message to
  /// usage exit 2, measure() and the service layer throw detlock::Error.
  std::optional<std::string> validate() const;

  /// Engine wiring for this configuration: backend choice, clock
  /// publication, trace/profile/watchdog flags.  Chaos injection is wired
  /// separately (the FaultInjector is per-run state; see
  /// service::ExecutionContext).  `memory_hint` overrides memory_words when
  /// the latter is 0 (workload sizing); 0 keeps the engine default.
  interp::EngineConfig engine_config(std::size_t memory_hint = 0) const;

  /// True when this mode instruments the module (everything but baseline).
  bool instrumented() const { return mode != Mode::kBaseline; }
  /// True when this mode runs on the deterministic backend.
  bool deterministic() const { return mode == Mode::kDetLock || mode == Mode::kKendoSim; }
};

}  // namespace detlock::api
