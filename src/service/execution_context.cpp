#include "service/execution_context.hpp"

#include "support/error.hpp"

namespace detlock::service {

ExecutionContext::ExecutionContext(std::shared_ptr<const CompiledModule> module,
                                   api::RunConfig config)
    : module_(std::move(module)), config_(std::move(config)), chaos_seed_(config_.chaos_seed) {
  DETLOCK_CHECK(module_ != nullptr, "ExecutionContext needs a compiled module");
  const CompileOptions& built = module_->options();
  DETLOCK_CHECK(built.mode == config_.mode,
                "RunConfig mode does not match the CompiledModule's mode");
  DETLOCK_CHECK(built.engine == config_.engine,
                "RunConfig engine does not match the CompiledModule's engine");
  if (const std::optional<std::string> err = config_.validate()) {
    DETLOCK_CHECK(false, "invalid RunConfig: " + *err);
  }
}

ExecutionContext::~ExecutionContext() = default;

void ExecutionContext::reset(api::RunConfig config) {
  const CompileOptions& built = module_->options();
  DETLOCK_CHECK(built.mode == config.mode,
                "ExecutionContext::reset: RunConfig mode does not match the CompiledModule's mode");
  DETLOCK_CHECK(built.engine == config.engine,
                "ExecutionContext::reset: RunConfig engine does not match the CompiledModule's engine");
  if (const std::optional<std::string> err = config.validate()) {
    DETLOCK_CHECK(false, "invalid RunConfig: " + *err);
  }
  // Destroy the old engine before its injector (same ordering discipline as
  // make_engine), then clear every per-job knob so nothing can leak into
  // the next job's runs.
  engine_.reset();
  injector_.reset();
  config_ = std::move(config);
  chaos_seed_ = config_.chaos_seed;
  observers_.clear();
  validator_ = nullptr;
  memory_hint_ = 0;
}

interp::RunResult ExecutionContext::run(std::string_view entry,
                                        const std::vector<std::int64_t>& args) {
  return make_engine().run(entry, args);
}

interp::RunResult ExecutionContext::run(ir::FuncId entry, const std::vector<std::int64_t>& args) {
  return make_engine().run(entry, args);
}

interp::Engine& ExecutionContext::make_engine() {
  // Engine first, then the injector it borrows: destroy in reverse order.
  engine_.reset();
  injector_.reset();

  interp::EngineConfig config = config_.engine_config(memory_hint_);
  // reduce(): null chain keeps the engine's observer-free fast path, a
  // single observer skips the chain's extra indirection entirely.
  config.observer = observers_.reduce();
  config.runtime.validator = validator_;
  if (config_.chaos) {
    injector_ = std::make_unique<runtime::FaultInjector>(
        runtime::FaultPlan::timing_chaos(chaos_seed_), config.runtime.max_threads);
    config.runtime.fault = injector_.get();
  }
  // Share the immutable decoded code whenever this run's dispatch variant
  // matches what the artifact was finalized for; an attached observer
  // selects the observing loop (different handler labels), so that run
  // decodes privately inside its own Engine.
  if ((config_.engine == interp::EngineKind::kDecoded ||
       config_.engine == interp::EngineKind::kJit) &&
      observers_.empty()) {
    config.shared_decoded = module_->decoded();
    // For kJit additionally share the native pages; null (host can't run
    // the JIT) keeps shared_jit unset and the Engine compiles privately --
    // which also fails on such hosts -- then warns once and runs decoded.
    if (config_.engine == interp::EngineKind::kJit) config.shared_jit = module_->jit();
  }
  engine_ = std::make_unique<interp::Engine>(module_->module(), config);
  return *engine_;
}

}  // namespace detlock::service
