#include "service/batch_executor.hpp"

#include <chrono>

#include "runtime/schedule.hpp"
#include "runtime/watchdog.hpp"
#include "service/execution_context.hpp"
#include "support/error.hpp"

namespace detlock::service {

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kRunError: return "run-error";
    case JobStatus::kInvalidConfig: return "invalid-config";
    case JobStatus::kDivergent: return "divergent";
    case JobStatus::kParseError: return "parse-error";
    case JobStatus::kVerifyError: return "verify-error";
    case JobStatus::kDeadlock: return "deadlock";
    case JobStatus::kStall: return "stall";
  }
  DETLOCK_UNREACHABLE("bad job status");
}

BatchExecutor::BatchExecutor(ModuleCache& cache, Options options)
    : cache_(cache), options_(options) {
  DETLOCK_CHECK(options_.workers >= 1, "BatchExecutor needs at least one worker");
  DETLOCK_CHECK(options_.queue_capacity >= 1, "BatchExecutor needs a nonzero queue bound");
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

BatchExecutor::~BatchExecutor() { wait(); }

std::size_t BatchExecutor::submit(JobSpec job) {
  std::size_t index;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    DETLOCK_CHECK(!closed_, "BatchExecutor: submit after wait()");
    space_cv_.wait(lock, [&] { return queue_.size() < options_.queue_capacity; });
    index = results_.size();
    results_.emplace_back();
    results_.back().name = job.name;
    queue_.push_back(Pending{index, std::move(job)});
    peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
  }
  queue_cv_.notify_one();
  return index;
}

const std::vector<JobResult>& BatchExecutor::wait() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  queue_cv_.notify_all();
  if (!waited_) {
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
    waited_ = true;
  }
  return results_;
}

BatchExecutor::Stats BatchExecutor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.jobs_submitted = results_.size();
  s.jobs_completed = jobs_completed_;
  s.peak_queue_depth = peak_queue_depth_;
  return s;
}

void BatchExecutor::worker_main() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
      if (queue_.empty()) return;
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    space_cv_.notify_one();

    JobResult result = execute(pending.spec);
    result.name = pending.spec.name;

    {
      std::lock_guard<std::mutex> lock(mutex_);
      results_[pending.index] = std::move(result);
      ++jobs_completed_;
    }
  }
}

JobResult BatchExecutor::execute(const JobSpec& spec) const {
  JobResult result;

  if (const std::optional<std::string> err = spec.config.validate()) {
    result.status = JobStatus::kInvalidConfig;
    result.exit_code = 2;
    result.error = *err;
    return result;
  }

  std::shared_ptr<const CompiledModule> module;
  try {
    module = cache_.get_or_compile(spec.ir_text, compile_options(spec.config), &result.cache_hit);
  } catch (const ParseError& e) {
    result.status = JobStatus::kParseError;
    result.exit_code = 5;
    result.error = e.what();
    return result;
  } catch (const VerifyError& e) {
    result.status = JobStatus::kVerifyError;
    result.exit_code = 6;
    result.error = e.what();
    return result;
  } catch (const std::exception& e) {
    result.status = JobStatus::kRunError;
    result.exit_code = 1;
    result.error = e.what();
    return result;
  }

  // Chaos jobs: one clean run plus chaos_trials perturbed ones, exactly
  // like detlockc --chaos; otherwise config.runs fingerprint-compared runs.
  const bool chaos = spec.config.chaos;
  const int total_runs = chaos ? 1 + spec.config.chaos_trials : spec.config.runs;

  api::RunConfig run_config = spec.config;
  run_config.chaos = false;  // per-run injection is decided below
  if (spec.collect_schedule) run_config.keep_trace_events = true;

  const auto start = std::chrono::steady_clock::now();
  for (int run = 0; run < total_runs; ++run) {
    api::RunConfig this_run = run_config;
    this_run.chaos = chaos && run > 0;
    this_run.chaos_seed = spec.config.chaos_seed + static_cast<std::uint64_t>(run > 0 ? run - 1 : 0);
    ExecutionContext ctx(module, this_run);
    interp::RunResult rr;
    try {
      rr = ctx.run(spec.entry, spec.args);
    } catch (const std::exception& e) {
      const runtime::Watchdog* wd = ctx.engine() != nullptr ? ctx.engine()->watchdog() : nullptr;
      if (wd != nullptr && wd->fired()) {
        const std::optional<runtime::StallReport> report = wd->report();
        result.status = report->deadlock ? JobStatus::kDeadlock : JobStatus::kStall;
        result.exit_code = report->deadlock ? 8 : 9;
        result.error = report->text();
      } else {
        result.status = JobStatus::kRunError;
        result.exit_code = 1;
        result.error = e.what();
      }
      result.run_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      return result;
    }

    if (run == 0) {
      result.main_return = rr.main_return;
      result.trace_fingerprint = rr.trace_fingerprint;
      result.memory_fingerprint = rr.memory_fingerprint;
      result.instructions = rr.instructions;
      result.lock_acquires = rr.lock_acquires;
      result.threads = rr.threads;
      if (spec.collect_schedule && ctx.engine() != nullptr) {
        result.schedule = runtime::serialize_schedule(ctx.engine()->backend().trace().events());
      }
    } else if (rr.trace_fingerprint != result.trace_fingerprint ||
               rr.memory_fingerprint != result.memory_fingerprint) {
      result.status = JobStatus::kDivergent;
      result.exit_code = 3;
      result.error = chaos ? "chaos trial diverged from the clean run" : "repeated runs diverged";
      result.runs_completed = run + 1;
      result.run_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      return result;
    }
    result.runs_completed = run + 1;
  }
  result.run_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace detlock::service
