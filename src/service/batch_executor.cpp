#include "service/batch_executor.hpp"

#include <chrono>

#include "runtime/schedule.hpp"
#include "runtime/watchdog.hpp"
#include "service/context_pool.hpp"
#include "service/execution_context.hpp"
#include "support/error.hpp"

namespace detlock::service {

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kRunError: return "run-error";
    case JobStatus::kInvalidConfig: return "invalid-config";
    case JobStatus::kDivergent: return "divergent";
    case JobStatus::kAborted: return "aborted";
    case JobStatus::kParseError: return "parse-error";
    case JobStatus::kVerifyError: return "verify-error";
    case JobStatus::kDeadlock: return "deadlock";
    case JobStatus::kStall: return "stall";
    case JobStatus::kCrashed: return "crashed";
  }
  DETLOCK_UNREACHABLE("bad job status");
}

const char* submit_rejection_name(SubmitRejection r) {
  switch (r) {
    case SubmitRejection::kQueueFull: return "queue-full";
    case SubmitRejection::kClosed: return "closed";
  }
  DETLOCK_UNREACHABLE("bad submit rejection");
}

BatchExecutor::BatchExecutor(ModuleCache& cache, Options options)
    : cache_(cache), options_(std::move(options)) {
  DETLOCK_CHECK(options_.workers >= 1, "BatchExecutor needs at least one worker");
  DETLOCK_CHECK(options_.queue_capacity >= 1, "BatchExecutor needs a nonzero queue bound");
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

BatchExecutor::~BatchExecutor() { wait(); }

std::size_t BatchExecutor::enqueue_locked(JobSpec job) {
  const std::size_t index = jobs_submitted_++;
  if (options_.retain_results) {
    results_.emplace_back();
    results_.back().name = job.name;
  }
  queue_.push_back(Pending{index, std::move(job)});
  peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
  return index;
}

std::size_t BatchExecutor::submit(JobSpec job) {
  std::size_t index;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    DETLOCK_CHECK(!closed_, "BatchExecutor: submit after wait()");
    space_cv_.wait(lock, [&] { return queue_.size() < options_.queue_capacity; });
    index = enqueue_locked(std::move(job));
  }
  queue_cv_.notify_one();
  return index;
}

std::variant<std::size_t, SubmitRejection> BatchExecutor::try_submit(JobSpec job) {
  std::size_t index;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return SubmitRejection::kClosed;
    if (queue_.size() >= options_.queue_capacity) {
      ++rejected_full_;
      return SubmitRejection::kQueueFull;
    }
    index = enqueue_locked(std::move(job));
  }
  queue_cv_.notify_one();
  return index;
}

std::size_t BatchExecutor::cancel_pending() {
  std::deque<Pending> cancelled;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled.swap(queue_);
    cancelled_ += cancelled.size();
  }
  space_cv_.notify_all();
  for (Pending& p : cancelled) {
    JobResult result;
    result.name = p.spec.name;
    result.status = JobStatus::kAborted;
    result.exit_code = 4;
    result.error = "cancelled before execution (drain)";
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (options_.retain_results) results_[p.index] = result;
      ++jobs_completed_;
    }
    deliver(p.spec, result);
  }
  return cancelled.size();
}

std::size_t BatchExecutor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

const std::vector<JobResult>& BatchExecutor::wait() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  queue_cv_.notify_all();
  if (!waited_) {
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
    waited_ = true;
  }
  return results_;
}

BatchExecutor::Stats BatchExecutor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.jobs_submitted = jobs_submitted_;
  s.jobs_completed = jobs_completed_;
  s.rejected_full = rejected_full_;
  s.cancelled = cancelled_;
  s.crashed = crashed_;
  s.queue_depth = queue_.size();
  s.peak_queue_depth = peak_queue_depth_;
  return s;
}

void BatchExecutor::deliver(const JobSpec& spec, const JobResult& result) {
  if (options_.on_complete) options_.on_complete(spec, result);
}

void BatchExecutor::worker_main() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
      if (queue_.empty()) return;
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    space_cv_.notify_one();

    // A worker thread must survive anything one job does to it: an
    // exception escaping the job (the execute() paths classify everything
    // they anticipate; the chaos hook models the rest) resolves that job to
    // kCrashed instead of silently killing the worker -- the server layer
    // decides whether to retry.
    JobResult result;
    try {
      if (options_.pre_execute_hook) options_.pre_execute_hook(pending.spec);
      result = execute(pending.spec);
    } catch (const std::exception& e) {
      result = JobResult{};
      result.status = JobStatus::kCrashed;
      result.exit_code = 11;
      result.error = std::string("worker crashed: ") + e.what();
    } catch (...) {
      result = JobResult{};
      result.status = JobStatus::kCrashed;
      result.exit_code = 11;
      result.error = "worker crashed: unknown exception";
    }
    result.name = pending.spec.name;

    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (options_.retain_results) results_[pending.index] = result;
      ++jobs_completed_;
      if (result.status == JobStatus::kCrashed) ++crashed_;
    }
    deliver(pending.spec, result);
  }
}

namespace {

/// Accumulates the run's per-category wait attribution into the result.
void accumulate_profile(JobResult& result, ExecutionContext& ctx) {
  interp::Engine* engine = ctx.engine();
  if (engine == nullptr) return;
  const runtime::Profiler* prof = engine->profiler();
  if (prof == nullptr) return;
  const runtime::ProfileSummary summary = prof->summary();
  for (std::size_t c = 0; c < runtime::kNumWaitCategories; ++c) {
    result.wait_ns[c] += summary.totals[c].ns;
    result.wait_events[c] += summary.totals[c].events;
  }
  result.profiled = true;
}

}  // namespace

JobResult BatchExecutor::execute(const JobSpec& spec) const {
  JobResult result;

  if (const std::optional<std::string> err = spec.config.validate()) {
    result.status = JobStatus::kInvalidConfig;
    result.exit_code = 2;
    result.error = *err;
    return result;
  }

  std::shared_ptr<const CompiledModule> module;
  try {
    module = cache_.get_or_compile(spec.ir_text, compile_options(spec.config), &result.cache_hit);
  } catch (const ParseError& e) {
    result.status = JobStatus::kParseError;
    result.exit_code = 5;
    result.error = e.what();
    return result;
  } catch (const VerifyError& e) {
    result.status = JobStatus::kVerifyError;
    result.exit_code = 6;
    result.error = e.what();
    return result;
  } catch (const std::exception& e) {
    result.status = JobStatus::kRunError;
    result.exit_code = 1;
    result.error = e.what();
    return result;
  }

  // Chaos jobs: one clean run plus chaos_trials perturbed ones, exactly
  // like detlockc --chaos; otherwise config.runs fingerprint-compared runs.
  const bool chaos = spec.config.chaos;
  const int total_runs = chaos ? 1 + spec.config.chaos_trials : spec.config.runs;

  api::RunConfig run_config = spec.config;
  run_config.chaos = false;  // per-run injection is decided below
  if (spec.collect_schedule) run_config.keep_trace_events = true;

  const auto start = std::chrono::steady_clock::now();
  for (int run = 0; run < total_runs; ++run) {
    api::RunConfig this_run = run_config;
    this_run.chaos = chaos && run > 0;
    this_run.chaos_seed = spec.config.chaos_seed + static_cast<std::uint64_t>(run > 0 ? run - 1 : 0);
    // Warm context reuse: for cache hits the pool hands back an already
    // constructed context reset to this run's config; fingerprints must be
    // indistinguishable from a fresh context (context_pool_test proves it).
    ContextPool::Lease lease =
        options_.context_pool != nullptr
            ? options_.context_pool->acquire(module, this_run)
            : ContextPool::Lease(std::make_unique<ExecutionContext>(module, this_run));
    ExecutionContext& ctx = *lease;
    if (lease.reused()) result.context_reused = true;
    interp::RunResult rr;
    try {
      rr = ctx.run(spec.entry, spec.args);
    } catch (const std::exception& e) {
      const runtime::Watchdog* wd = ctx.engine() != nullptr ? ctx.engine()->watchdog() : nullptr;
      if (wd != nullptr && wd->fired()) {
        const std::optional<runtime::StallReport> report = wd->report();
        result.status = report->deadlock ? JobStatus::kDeadlock : JobStatus::kStall;
        result.exit_code = report->deadlock ? 8 : 9;
        result.error = report->text();
      } else {
        result.status = JobStatus::kRunError;
        result.exit_code = 1;
        result.error = e.what();
      }
      result.run_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      return result;
    }

    if (this_run.profile) accumulate_profile(result, ctx);

    if (run == 0) {
      result.main_return = rr.main_return;
      result.trace_fingerprint = rr.trace_fingerprint;
      result.memory_fingerprint = rr.memory_fingerprint;
      result.instructions = rr.instructions;
      result.lock_acquires = rr.lock_acquires;
      result.threads = rr.threads;
      if (spec.collect_schedule && ctx.engine() != nullptr) {
        result.schedule = runtime::serialize_schedule(ctx.engine()->backend().trace().events());
      }
    } else if (rr.trace_fingerprint != result.trace_fingerprint ||
               rr.memory_fingerprint != result.memory_fingerprint) {
      result.status = JobStatus::kDivergent;
      result.exit_code = 3;
      result.error = chaos ? "chaos trial diverged from the clean run" : "repeated runs diverged";
      result.runs_completed = run + 1;
      result.run_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      return result;
    }
    result.runs_completed = run + 1;
  }
  result.run_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace detlock::service
