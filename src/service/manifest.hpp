// Jobs-manifest parser for detserve (format documented in docs/serving.md).
//
// A manifest is line-oriented text: '#' comments and blank lines are
// skipped, every other line declares one job:
//
//   job NAME PROGRAM.ir [key=value ...]
//
// where NAME is a unique label for the report, PROGRAM.ir is a path
// (resolved by the caller, usually relative to the manifest file), and the
// key=value options select the RunConfig knobs.  Parsing is pure (no
// filesystem access) so the grammar is unit-testable; detserve loads each
// program's text afterwards.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "service/batch_executor.hpp"

namespace detlock::service {

/// One parsed `job` line.  `spec.ir_text` is left empty -- the caller reads
/// `program_path` and fills it in.
struct ManifestJob {
  std::string program_path;
  JobSpec spec;
};

struct Manifest {
  std::vector<ManifestJob> jobs;
};

/// Parses manifest text.  On error returns std::nullopt and sets `error` to
/// a one-line message naming the offending line number.
std::optional<Manifest> parse_manifest(std::string_view text, std::string& error);

/// Applies one key=value option of the shared job grammar to `job`.  The
/// single source of truth for job options: manifest lines (detserve) and
/// the detserved JOB verb parse through the same function, so a knob is
/// either legal in both or rejected in both with the same message.  Returns
/// false and sets `error` on unknown keys or bad values.
bool apply_job_option(std::string_view key, std::string_view value, JobSpec& job,
                      std::string& error);

}  // namespace detlock::service
