// ExecutionContext: all per-job state for executing a shared CompiledModule.
//
// The Determinator/Pot split: the deterministic artifact is immutable and
// shared, the execution state is private.  One ExecutionContext = one job's
// state -- guest memory, register arenas, clock table, sync backend, trace,
// profiler, watchdog, fault plan -- so any number of contexts over the same
// CompiledModule run concurrently without synchronizing on anything but the
// (read-only) code.  An Engine runs exactly once, so run() constructs a
// fresh one per call; what it never does again is parse, verify,
// instrument, or decode.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "api/run_config.hpp"
#include "interp/engine.hpp"
#include "interp/observer.hpp"
#include "runtime/faultinject.hpp"
#include "runtime/schedule.hpp"
#include "service/compiled_module.hpp"

namespace detlock::service {

class ExecutionContext {
 public:
  /// `config`'s compile-affecting fields (mode, engine, pass options) must
  /// match the module's CompileOptions; enforced at construction.  `config`
  /// is honored per-run: record_trace/keep_trace_events, profile flags,
  /// watchdog_ms, chaos (a deterministic FaultPlan::timing_chaos seeded
  /// with `chaos_seed`, overridable per run below).
  ExecutionContext(std::shared_ptr<const CompiledModule> module, api::RunConfig config);
  ~ExecutionContext();

  /// Optional per-run hooks, set before run().  Any number of observers
  /// stack via add_observer (profiler + race detector + fuzzer oracle on
  /// one run); they fire in attachment order through an ObserverChain.  Any
  /// attached observer forces a private decode (the shared code is
  /// finalized for observer-free dispatch); a validator checks each
  /// acquisition online.  Not owned; must outlive run().
  void add_observer(interp::SyncObserver* observer) { observers_.attach(observer); }
  /// Deprecated single-observer shim: REPLACES all attached observers with
  /// `observer` (null clears).  Prefer add_observer.
  void set_observer(interp::MemoryAccessObserver* observer) {
    observers_.clear();
    observers_.attach(observer);
  }
  void set_validator(runtime::ScheduleValidator* validator) { validator_ = validator; }
  /// Overrides RunConfig::chaos_seed for the next run() (chaos reps).
  void set_chaos_seed(std::uint64_t seed) { chaos_seed_ = seed; }
  /// Guest memory sizing hint used when RunConfig::memory_words == 0.
  void set_memory_hint(std::size_t words) { memory_hint_ = words; }

  /// Re-arms this context for a new job over the SAME module: adopts
  /// `config` (validated like the constructor), clears the observer,
  /// validator, chaos-seed override, and memory hint, and discards the
  /// previous job's Engine and fault injector.  After reset() the context
  /// is indistinguishable from a freshly constructed one -- the warm-pool
  /// reuse contract (service/context_pool.hpp); context_pool_test proves
  /// fingerprints match fresh-context runs byte for byte.
  void reset(api::RunConfig config);

  /// Executes entry(args...) on a fresh Engine over the shared artifact.
  /// Callable repeatedly; each call is an independent deterministic run.
  interp::RunResult run(std::string_view entry, const std::vector<std::int64_t>& args = {});
  interp::RunResult run(ir::FuncId entry, const std::vector<std::int64_t>& args = {});

  /// The engine of the most recent run() (null before the first): watchdog
  /// report, profiler summary, trace events, records.
  const interp::Engine* engine() const { return engine_.get(); }
  interp::Engine* engine() { return engine_.get(); }

  const CompiledModule& module() const { return *module_; }

 private:
  /// Builds the fresh per-run Engine (and fault injector) for this config.
  interp::Engine& make_engine();

  std::shared_ptr<const CompiledModule> module_;
  api::RunConfig config_;
  interp::ObserverChain observers_;
  runtime::ScheduleValidator* validator_ = nullptr;
  std::uint64_t chaos_seed_;
  std::size_t memory_hint_ = 0;
  std::unique_ptr<runtime::FaultInjector> injector_;  // outlives engine_
  std::unique_ptr<interp::Engine> engine_;
};

}  // namespace detlock::service
