#include "service/module_cache.hpp"

#include <bit>

#include "support/error.hpp"
#include "support/hash.hpp"

namespace detlock::service {

namespace {

void hash_options(Fnv1aHasher& h, const CompileOptions& options) {
  h.update_byte(static_cast<std::uint8_t>(options.mode));
  h.update_byte(static_cast<std::uint8_t>(options.engine));
  const pass::PassOptions& p = options.pass_options;
  h.update_byte(static_cast<std::uint8_t>(p.opt1_function_clocking));
  h.update_byte(static_cast<std::uint8_t>(p.opt2_conditional));
  h.update_byte(static_cast<std::uint8_t>(p.opt3_averaging));
  h.update_byte(static_cast<std::uint8_t>(p.opt4_loops));
  h.update_byte(static_cast<std::uint8_t>(p.placement));
  h.update_u64(std::bit_cast<std::uint64_t>(p.criteria.range_divisor));
  h.update_u64(std::bit_cast<std::uint64_t>(p.criteria.stddev_divisor));
  h.update_u64(std::bit_cast<std::uint64_t>(p.opt2b_max_divergence));
  h.update_i64(p.opt4_threshold);
  const ir::CostModel& c = p.cost_model;
  h.update_i64(c.div_cost);
  h.update_i64(c.fdiv_cost);
  h.update_i64(c.fsqrt_cost);
  h.update_i64(c.load_cost);
  h.update_i64(c.store_cost);
  h.update_i64(c.call_cost);
  h.update_string(options.estimates_text);
  // Length-delimit the text against concatenation ambiguity.
  h.update_u64(options.estimates_text.size());
}

}  // namespace

ModuleKey module_key(std::string_view ir_text, const CompileOptions& options) {
  ModuleKey key;
  Fnv1aHasher lo;
  lo.update_string(ir_text);
  lo.update_u64(ir_text.size());
  hash_options(lo, options);
  key.lo = lo.digest();
  // Second stream: same inputs, different seed (fold a constant in first),
  // so a collision needs to defeat two independent 64-bit states.
  Fnv1aHasher hi;
  hi.update_u64(0x5bd1e9955bd1e995ULL);
  hi.update_string(ir_text);
  hi.update_u64(ir_text.size());
  hash_options(hi, options);
  key.hi = hi.digest();
  return key;
}

ModuleCache::ModuleCache(std::size_t capacity, CompileFn compile_fn)
    : capacity_(capacity == 0 ? 1 : capacity),
      compile_fn_(compile_fn ? std::move(compile_fn)
                             : [](std::string_view text, const CompileOptions& options) {
                                 return CompiledModule::compile(text, options);
                               }) {}

void ModuleCache::touch_locked(Entry& entry, const ModuleKey& key) {
  if (entry.lru_pos != lru_.end()) lru_.erase(entry.lru_pos);
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
}

void ModuleCache::evict_locked() {
  while (lru_.size() > capacity_) {
    const ModuleKey victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

std::shared_ptr<const CompiledModule> ModuleCache::get_or_compile(std::string_view ir_text,
                                                                 const CompileOptions& options,
                                                                 bool* was_hit) {
  const ModuleKey key = module_key(ir_text, options);

  std::shared_ptr<Entry> entry;
  bool owner = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      entry = std::make_shared<Entry>();
      entry->lru_pos = lru_.end();
      entries_.emplace(key, entry);
      owner = true;
      ++stats_.misses;
      if (was_hit != nullptr) *was_hit = false;
    } else {
      entry = it->second;
      if (was_hit != nullptr) *was_hit = true;
      if (entry->done) {
        ++stats_.hits;
        touch_locked(*entry, key);
        return entry->value;
      }
      // Another thread's compile is in flight: wait for it below.
      ++stats_.hits;
      ++stats_.inflight_waits;
    }
  }

  if (owner) {
    std::shared_ptr<const CompiledModule> value;
    std::exception_ptr error;
    try {
      value = compile_fn_(ir_text, options);
      DETLOCK_CHECK(value != nullptr, "ModuleCache compile function returned null");
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      entry->value = value;
      entry->error = error;
      entry->done = true;
      if (error) {
        // Failures are not cached: drop the slot so the next request
        // retries, but only after every current waiter has been released
        // (they hold their own shared_ptr to the entry).
        ++stats_.compile_errors;
        entries_.erase(key);
      } else {
        touch_locked(*entry, key);
        evict_locked();
      }
    }
    ready_cv_.notify_all();
    if (error) std::rethrow_exception(error);
    return value;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  ready_cv_.wait(lock, [&] { return entry->done; });
  if (entry->error) std::rethrow_exception(entry->error);
  return entry->value;
}

ModuleCache::Stats ModuleCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.entries = lru_.size();
  return s;
}

}  // namespace detlock::service
