#include "service/manifest.hpp"

#include <unordered_set>

#include "api/run_config.hpp"
#include "support/strings.hpp"

namespace detlock::service {

namespace {

bool parse_bool(std::string_view value, bool& out) {
  if (value == "1" || value == "true" || value == "on") {
    out = true;
    return true;
  }
  if (value == "0" || value == "false" || value == "off") {
    out = false;
    return true;
  }
  return false;
}

}  // namespace

bool apply_job_option(std::string_view key, std::string_view value, JobSpec& job,
                      std::string& error) {
  api::RunConfig& config = job.config;
  if (key == "entry") {
    job.entry = std::string(value);
    return true;
  }
  if (key == "args") {
    for (std::string_view part : split(value, ',')) {
      const std::optional<std::int64_t> v = parse_int(trim(part));
      if (!v) {
        error = "bad integer in args list: '" + std::string(part) + "'";
        return false;
      }
      job.args.push_back(*v);
    }
    return true;
  }
  if (key == "mode") {
    const std::optional<api::Mode> mode = api::mode_from_name(value);
    if (!mode) {
      error = "unknown mode '" + std::string(value) + "'";
      return false;
    }
    config.mode = *mode;
    return true;
  }
  if (key == "engine" || key == "interp") {
    // "interp" mirrors detlockc's --interp= flag name; both accept the
    // full engine vocabulary including the template JIT.
    const std::optional<interp::EngineKind> kind = api::engine_from_name(value);
    if (!kind) {
      error = "unknown engine '" + std::string(value) + "' (decoded|reference|jit)";
      return false;
    }
    config.engine = *kind;
    return true;
  }
  if (key == "opt") {
    if (value == "none") {
      config.pass_options = pass::PassOptions::none();
    } else if (value == "all") {
      config.pass_options = pass::PassOptions::all();
    } else if (value == "o1") {
      config.pass_options = pass::PassOptions::only_opt1();
    } else if (value == "o2") {
      config.pass_options = pass::PassOptions::only_opt2();
    } else if (value == "o3") {
      config.pass_options = pass::PassOptions::only_opt3();
    } else if (value == "o4") {
      config.pass_options = pass::PassOptions::only_opt4();
    } else {
      error = "unknown opt preset '" + std::string(value) + "' (none|all|o1|o2|o3|o4)";
      return false;
    }
    return true;
  }
  if (key == "placement") {
    if (value == "start") {
      config.pass_options.placement = pass::ClockPlacement::kStart;
    } else if (value == "end") {
      config.pass_options.placement = pass::ClockPlacement::kEnd;
    } else {
      error = "unknown placement '" + std::string(value) + "' (start|end)";
      return false;
    }
    return true;
  }
  if (key == "schedule") {
    if (!parse_bool(value, job.collect_schedule)) {
      error = "bad boolean for schedule: '" + std::string(value) + "'";
      return false;
    }
    return true;
  }
  if (key == "chaos") {
    if (!parse_bool(value, config.chaos)) {
      error = "bad boolean for chaos: '" + std::string(value) + "'";
      return false;
    }
    return true;
  }
  if (key == "profile") {
    if (!parse_bool(value, config.profile)) {
      error = "bad boolean for profile: '" + std::string(value) + "'";
      return false;
    }
    return true;
  }

  // Remaining keys are integers.
  const std::optional<std::int64_t> v = parse_int(value);
  if (!v || *v < 0) {
    error = "bad value '" + std::string(value) + "' for " + std::string(key);
    return false;
  }
  if (key == "runs") {
    config.runs = static_cast<int>(*v);
  } else if (key == "kendo-chunk") {
    config.kendo_chunk_size = static_cast<std::uint64_t>(*v);
  } else if (key == "threads-max") {
    config.threads_max = static_cast<std::uint32_t>(*v);
  } else if (key == "memory-words") {
    config.memory_words = static_cast<std::size_t>(*v);
  } else if (key == "watchdog-ms") {
    config.watchdog_ms = static_cast<std::uint64_t>(*v);
  } else if (key == "chaos-seed") {
    config.chaos_seed = static_cast<std::uint64_t>(*v);
  } else if (key == "chaos-trials") {
    config.chaos_trials = static_cast<int>(*v);
  } else {
    error = "unknown option '" + std::string(key) + "'";
    return false;
  }
  return true;
}

std::optional<Manifest> parse_manifest(std::string_view text, std::string& error) {
  Manifest manifest;
  std::unordered_set<std::string> names;
  std::size_t line_no = 0;
  for (std::string_view raw : split(text, '\n')) {
    ++line_no;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;

    const std::vector<std::string_view> tokens = split_whitespace(line);
    if (tokens[0] != "job") {
      error = str_format("manifest line %zu: expected 'job', got '%.*s'", line_no,
                         static_cast<int>(tokens[0].size()), tokens[0].data());
      return std::nullopt;
    }
    if (tokens.size() < 3) {
      error = str_format("manifest line %zu: usage: job NAME PROGRAM [key=value ...]", line_no);
      return std::nullopt;
    }

    ManifestJob job;
    job.spec.name = std::string(tokens[1]);
    job.program_path = std::string(tokens[2]);
    // Manifest jobs default to no trace-event retention; schedule=1 opts in.
    job.spec.config.keep_trace_events = false;
    if (!names.insert(job.spec.name).second) {
      error = str_format("manifest line %zu: duplicate job name '%s'", line_no,
                         job.spec.name.c_str());
      return std::nullopt;
    }

    for (std::size_t i = 3; i < tokens.size(); ++i) {
      const std::size_t eq = tokens[i].find('=');
      if (eq == std::string_view::npos || eq == 0) {
        error = str_format("manifest line %zu: options are key=value, got '%.*s'", line_no,
                           static_cast<int>(tokens[i].size()), tokens[i].data());
        return std::nullopt;
      }
      std::string opt_error;
      if (!apply_job_option(tokens[i].substr(0, eq), tokens[i].substr(eq + 1), job.spec,
                            opt_error)) {
        error = str_format("manifest line %zu: %s", line_no, opt_error.c_str());
        return std::nullopt;
      }
    }
    if (const std::optional<std::string> err = job.spec.config.validate()) {
      error = str_format("manifest line %zu: %s", line_no, err->c_str());
      return std::nullopt;
    }
    manifest.jobs.push_back(std::move(job));
  }
  if (manifest.jobs.empty()) {
    error = "manifest declares no jobs";
    return std::nullopt;
  }
  return manifest;
}

}  // namespace detlock::service
