// ModuleCache: content-addressed, bounded cache of CompiledModules.
//
// Keyed on hash(IR text, CompileOptions fields, engine kind) -- the exact
// inputs of CompiledModule::compile -- so two requests share an artifact
// iff compile() would have produced identical ones.  Guarantees:
//
//   * SINGLE-FLIGHT: N concurrent get_or_compile() calls for one key run
//     the compiler exactly once; the others block on the in-flight slot
//     and receive the same shared_ptr (or the same propagated exception).
//   * LRU BOUND: at most `capacity` ready artifacts are retained; the least
//     recently used is dropped first.  Eviction only severs the cache's
//     reference -- executions already holding the shared_ptr keep running.
//   * COUNTERS: hits / misses / evictions / compile_errors / inflight_waits
//     for the detserve report and capacity tuning.
//
// The compile function is injectable so tests can count invocations and
// inject failures; the default is CompiledModule::compile.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "service/compiled_module.hpp"

namespace detlock::service {

/// 128-bit content key (two independently seeded FNV-1a streams over the IR
/// text and every CompileOptions field); collisions are out of scope at
/// this width for test/serving purposes.
struct ModuleKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool operator==(const ModuleKey&) const = default;
};

ModuleKey module_key(std::string_view ir_text, const CompileOptions& options);

class ModuleCache {
 public:
  using CompileFn =
      std::function<std::shared_ptr<const CompiledModule>(std::string_view, const CompileOptions&)>;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t compile_errors = 0;
    /// get_or_compile calls that found another caller's compile in flight
    /// and waited for it (they count as hits, not misses).
    std::uint64_t inflight_waits = 0;
    std::size_t entries = 0;
  };

  explicit ModuleCache(std::size_t capacity = 64, CompileFn compile_fn = nullptr);

  /// Returns the cached artifact for (ir_text, options), compiling at most
  /// once per key across all threads.  Compilation failures propagate to
  /// every waiter of that flight and are not cached (the next request
  /// retries).  `was_hit`, when non-null, reports whether THIS call hit
  /// (including joining an in-flight compile) -- the aggregate counters
  /// can't answer that racelessly.
  std::shared_ptr<const CompiledModule> get_or_compile(std::string_view ir_text,
                                                       const CompileOptions& options,
                                                       bool* was_hit = nullptr);

  Stats stats() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::shared_ptr<const CompiledModule> value;  // null while in flight
    std::exception_ptr error;
    bool done = false;
    /// Position in lru_ once ready; lru_.end() while in flight.
    std::list<ModuleKey>::iterator lru_pos;
  };

  struct KeyHash {
    std::size_t operator()(const ModuleKey& k) const {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
    }
  };

  void touch_locked(Entry& entry, const ModuleKey& key);
  void evict_locked();

  const std::size_t capacity_;
  const CompileFn compile_fn_;
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::unordered_map<ModuleKey, std::shared_ptr<Entry>, KeyHash> entries_;
  /// Most recent at the front; ready entries only.
  std::list<ModuleKey> lru_;
  Stats stats_;
};

}  // namespace detlock::service
