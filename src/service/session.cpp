#include "service/session.hpp"

#include <cerrno>
#include <cstring>
#include <optional>

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "service/manifest.hpp"
#include "service/server.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace detlock::service {

namespace {

std::string simple_frame(std::string_view type) {
  JsonWriter w(/*compact=*/true);
  w.begin_object();
  w.field("type", type);
  w.end();
  return w.str();
}

std::string error_frame(std::string_view name, std::string_view message) {
  JsonWriter w(/*compact=*/true);
  w.begin_object();
  w.field("type", "error");
  if (!name.empty()) w.field("name", name);
  w.field("message", message);
  w.end();
  return w.str();
}

std::string retry_after_frame(std::string_view name, const AdmitResult& admit) {
  JsonWriter w(/*compact=*/true);
  w.begin_object();
  w.field("type", "retry_after");
  if (!name.empty()) w.field("name", name);
  w.field("reason", admit_status_name(admit.status));
  w.field("retry_after_ms", admit.retry_after_ms);
  w.end();
  return w.str();
}

std::string accepted_frame(std::string_view name, std::uint64_t ticket) {
  JsonWriter w(/*compact=*/true);
  w.begin_object();
  w.field("type", "accepted");
  w.field("name", name);
  w.field("ticket", ticket);
  w.end();
  return w.str();
}

}  // namespace

Session::Session(Server& server, int fd, ClientId id) : server_(server), fd_(fd), id_(id) {
  // Bound result writes so a client that stops reading cannot park a worker
  // thread forever inside on_complete; a timed-out send closes the session.
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

Session::~Session() {
  shutdown();
  join();
  std::lock_guard<std::mutex> lock(write_mutex_);
  close_fd();
}

void Session::start() { thread_ = std::thread([this] { reader_main(); }); }

void Session::join() {
  if (thread_.joinable()) thread_.join();
}

void Session::shutdown() {
  stop_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);  // wakes the reader's poll
}

void Session::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Session::send_frame(const std::string& frame) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (fd_ < 0 || closed_.load(std::memory_order_acquire) ||
      stop_.load(std::memory_order_acquire)) {
    return false;
  }
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      closed_.store(true, std::memory_order_release);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Session::fill() {
  // Compact the consumed prefix so rbuf_ stays bounded by what is pending.
  if (rpos_ == rbuf_.size()) {
    rbuf_.clear();
    rpos_ = 0;
  } else if (rpos_ > 64 * 1024) {
    rbuf_.erase(0, rpos_);
    rpos_ = 0;
  }
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc == 0) continue;  // timeout: re-check stop_ and poll again
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) return false;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    rbuf_.append(buf, static_cast<std::size_t>(n));
    return true;
  }
  return false;
}

bool Session::read_line(std::string& line) {
  for (;;) {
    const std::size_t nl = rbuf_.find('\n', rpos_);
    if (nl != std::string::npos) {
      line.assign(rbuf_, rpos_, nl - rpos_);
      rpos_ = nl + 1;
      return true;
    }
    if (!fill()) return false;
  }
}

bool Session::read_exact(std::string& out, std::size_t n) {
  while (rbuf_.size() - rpos_ < n) {
    if (!fill()) return false;
  }
  out.assign(rbuf_, rpos_, n);
  rpos_ += n;
  return true;
}

void Session::reader_main() {
  std::string line;
  bool quit = false;
  while (!quit && !stop_.load(std::memory_order_acquire) && read_line(line)) {
    handle_line(trim(line), quit);
  }
  closed_.store(true, std::memory_order_release);
  server_.session_closed(id_);
}

void Session::handle_line(std::string_view line, bool& quit) {
  if (line.empty() || line.front() == '#') return;
  const std::vector<std::string_view> tokens = split_whitespace(line);
  const std::string_view verb = tokens[0];
  if (verb == "JOB") {
    handle_job(tokens);
  } else if (verb == "STATS") {
    send_frame(server_.stats_frame());
  } else if (verb == "PING") {
    send_frame(simple_frame("pong"));
  } else if (verb == "QUIT") {
    send_frame(simple_frame("bye"));
    quit = true;
  } else {
    send_frame(error_frame("", "unknown verb '" + std::string(verb) +
                                   "' (expected JOB, STATS, PING, or QUIT)"));
  }
}

void Session::handle_job(const std::vector<std::string_view>& tokens) {
  // JOB <name> <nbytes> [key=value ...], then exactly <nbytes> of IR.
  const std::string name = tokens.size() > 1 ? std::string(tokens[1]) : std::string();
  std::optional<std::int64_t> nbytes;
  if (tokens.size() >= 3) nbytes = parse_int(tokens[2]);
  if (tokens.size() < 3 || !nbytes || *nbytes < 0) {
    // Without a parseable byte count the stream cannot be re-framed.
    send_frame(error_frame(name, "usage: JOB NAME NBYTES [key=value ...] (desync; closing)"));
    stop_.store(true, std::memory_order_release);
    return;
  }
  const std::size_t body_bytes = static_cast<std::size_t>(*nbytes);
  if (body_bytes > server_.options().max_ir_bytes) {
    send_frame(error_frame(
        name, str_format("job body of %zu bytes exceeds the %zu-byte limit (closing)",
                         body_bytes, server_.options().max_ir_bytes)));
    stop_.store(true, std::memory_order_release);
    return;
  }

  JobSpec spec;
  spec.name = name;
  // Server jobs, like manifest jobs, default to no trace-event retention;
  // schedule=1 opts in per job.
  spec.config.keep_trace_events = false;
  std::string option_error;
  for (std::size_t i = 3; i < tokens.size() && option_error.empty(); ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string_view::npos || eq == 0) {
      option_error = "options are key=value, got '" + std::string(tokens[i]) + "'";
      break;
    }
    apply_job_option(tokens[i].substr(0, eq), tokens[i].substr(eq + 1), spec, option_error);
  }

  // Consume the body even when the header was bad -- the byte count is
  // trustworthy, so the connection stays framed for the next request.
  std::string body;
  if (!read_exact(body, body_bytes)) {
    stop_.store(true, std::memory_order_release);
    return;
  }
  if (!option_error.empty()) {
    send_frame(error_frame(name, option_error));
    return;
  }
  spec.ir_text = std::move(body);

  const Server::JobAck ack = server_.submit_job(id_, std::move(spec));
  if (!ack.error.empty()) {
    send_frame(error_frame(name, ack.error));
  } else if (ack.admit.status == AdmitStatus::kAdmitted) {
    send_frame(accepted_frame(name, ack.ticket));
  } else {
    send_frame(retry_after_frame(name, ack.admit));
  }
}

}  // namespace detlock::service
