#include "service/admission.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace detlock::service {

const char* admit_status_name(AdmitStatus status) {
  switch (status) {
    case AdmitStatus::kAdmitted: return "admitted";
    case AdmitStatus::kRetryQuota: return "quota";
    case AdmitStatus::kRetryBacklog: return "queue-full";
    case AdmitStatus::kDraining: return "draining";
  }
  DETLOCK_UNREACHABLE("bad admit status");
}

AdmissionController::AdmissionController(AdmissionOptions options) : options_(options) {
  DETLOCK_CHECK(options_.quota_rate >= 0.0, "admission quota rate must be >= 0");
  DETLOCK_CHECK(options_.quota_burst >= 1.0, "admission quota burst must be >= 1");
  DETLOCK_CHECK(options_.client_backlog_cap >= 1, "admission client backlog cap must be >= 1");
  DETLOCK_CHECK(options_.drr_quantum >= 1, "admission DRR quantum must be >= 1");
}

AdmissionController::ClientLane& AdmissionController::lane_locked(ClientId client,
                                                                  Clock::time_point now) {
  ClientLane& lane = lanes_[client];
  if (!lane.bucket_started) {
    lane.bucket_started = true;
    lane.tokens = options_.quota_burst;  // buckets start full (burst headroom)
    lane.refill_at = now;
  }
  return lane;
}

void AdmissionController::refill_locked(ClientLane& lane, Clock::time_point now) {
  if (options_.quota_rate <= 0.0) return;
  if (now <= lane.refill_at) return;
  const double elapsed = std::chrono::duration<double>(now - lane.refill_at).count();
  lane.tokens = std::min(options_.quota_burst, lane.tokens + elapsed * options_.quota_rate);
  lane.refill_at = now;
}

void AdmissionController::enqueue_locked(ClientId client, ClientLane& lane, AdmittedJob job,
                                         bool front) {
  if (front) {
    lane.jobs.push_front(std::move(job));
  } else {
    lane.jobs.push_back(std::move(job));
  }
  ++backlog_;
  if (!lane.in_round) {
    lane.in_round = true;
    round_.push_back(client);
  }
}

AdmitResult AdmissionController::offer(ClientId client, JobSpec spec, Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) {
    ++stats_.draining_rejections;
    return {AdmitStatus::kDraining, options_.draining_retry_ms};
  }
  ClientLane& lane = lane_locked(client, now);
  refill_locked(lane, now);

  if (options_.quota_rate > 0.0 && lane.tokens < 1.0) {
    ++stats_.quota_rejections;
    const double deficit_tokens = 1.0 - lane.tokens;
    const double wait_s = deficit_tokens / options_.quota_rate;
    return {AdmitStatus::kRetryQuota,
            static_cast<std::uint64_t>(std::ceil(wait_s * 1000.0))};
  }
  if (lane.jobs.size() >= options_.client_backlog_cap || backlog_ >= options_.total_backlog_cap) {
    ++stats_.backlog_rejections;
    return {AdmitStatus::kRetryBacklog, options_.backlog_retry_ms};
  }

  if (options_.quota_rate > 0.0) lane.tokens -= 1.0;
  AdmittedJob job;
  job.client = client;
  job.spec = std::move(spec);
  enqueue_locked(client, lane, std::move(job), /*front=*/false);
  ++stats_.admitted;
  return {AdmitStatus::kAdmitted, 0};
}

std::optional<AdmittedJob> AdmissionController::next() {
  std::lock_guard<std::mutex> lock(mutex_);
  // One full sweep of the ring is enough: a client in the ring always has
  // parked jobs (empty lanes are unlinked on the spot), so the first client
  // with remaining deficit dispatches.  Clients whose deficit is exhausted
  // are re-granted a quantum and rotated to the back -- the DRR round.
  for (std::size_t sweep = 0; sweep < round_.size() + 1 && !round_.empty(); ++sweep) {
    const ClientId client = round_.front();
    auto it = lanes_.find(client);
    if (it == lanes_.end()) {
      // Lane erased by client_gone while still ringed.
      round_.pop_front();
      continue;
    }
    ClientLane& lane = it->second;
    if (lane.jobs.empty()) {
      // Lane emptied by client_gone/flush while ringed: unlink and move on.
      lane.in_round = false;
      lane.deficit = 0.0;
      round_.pop_front();
      continue;
    }
    if (lane.deficit < 1.0) {
      lane.deficit += options_.drr_quantum;
      if (lane.deficit < 1.0) {
        // Quantum too small to dispatch this visit; rotate and keep going.
        round_.pop_front();
        round_.push_back(client);
        continue;
      }
    }
    lane.deficit -= 1.0;
    AdmittedJob job = std::move(lane.jobs.front());
    lane.jobs.pop_front();
    --backlog_;
    if (lane.jobs.empty()) {
      lane.in_round = false;
      lane.deficit = 0.0;
      round_.pop_front();
    } else if (lane.deficit < 1.0) {
      round_.pop_front();
      round_.push_back(client);
    }
    return job;
  }
  return std::nullopt;
}

void AdmissionController::requeue_front(AdmittedJob job) {
  std::lock_guard<std::mutex> lock(mutex_);
  const ClientId client = job.client;
  ClientLane& lane = lanes_[client];
  enqueue_locked(client, lane, std::move(job), /*front=*/true);
}

std::vector<AdmittedJob> AdmissionController::client_gone(ClientId client) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AdmittedJob> dropped;
  auto it = lanes_.find(client);
  if (it == lanes_.end()) return dropped;
  ClientLane& lane = it->second;
  backlog_ -= lane.jobs.size();
  dropped.reserve(lane.jobs.size());
  for (AdmittedJob& job : lane.jobs) dropped.push_back(std::move(job));
  lane.jobs.clear();
  // Leave the (now-empty) lane ringed if it was; next() unlinks it lazily.
  // The bucket state is erased with the lane: a reconnecting client gets a
  // fresh identity (new ClientId) anyway.
  lanes_.erase(it);
  return dropped;
}

void AdmissionController::start_draining() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

std::vector<AdmittedJob> AdmissionController::flush_backlog() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AdmittedJob> flushed;
  flushed.reserve(backlog_);
  // Flush in ring order, client by client, so the ABORTED frames a client
  // receives preserve its own submission order.
  while (!round_.empty()) {
    const ClientId client = round_.front();
    round_.pop_front();
    auto it = lanes_.find(client);
    if (it == lanes_.end()) continue;
    ClientLane& lane = it->second;
    for (AdmittedJob& job : lane.jobs) flushed.push_back(std::move(job));
    backlog_ -= lane.jobs.size();
    lane.jobs.clear();
    lane.in_round = false;
    lane.deficit = 0.0;
  }
  return flushed;
}

std::size_t AdmissionController::backlog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return backlog_;
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.backlog = backlog_;
  std::size_t active = 0;
  for (const auto& [id, lane] : lanes_) {
    if (!lane.jobs.empty()) ++active;
  }
  s.active_clients = active;
  return s;
}

}  // namespace detlock::service
