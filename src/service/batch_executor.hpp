// BatchExecutor: bounded job queue + worker pool for concurrent
// deterministic execution.
//
// Many jobs run at once, each with fully isolated per-run state
// (ExecutionContext), optionally sharing CompiledModules through a
// ModuleCache so identical programs compile exactly once across the whole
// batch.  Per job the executor collects exit status, fingerprints,
// instruction counts, and (optionally) the serialized lock-acquisition
// schedule; watchdog and chaos wiring reuse runtime/watchdog +
// runtime/faultinject per job, so one deadlocked job diagnoses and aborts
// itself without touching its neighbors.
//
// Backpressure: submit() blocks while `queue_capacity` jobs are already
// pending, bounding memory for producers faster than the workers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/run_config.hpp"
#include "service/module_cache.hpp"

namespace detlock::service {

struct JobSpec {
  std::string name;
  /// Program source (textual IR).  Keyed into the ModuleCache together with
  /// the compile-affecting fields of `config`.
  std::string ir_text;
  std::string entry = "main";
  std::vector<std::int64_t> args;
  /// Fingerprint-compared repetitions (config.runs is ignored in batch
  /// mode; chaos jobs run 1 clean + config.chaos_trials perturbed runs).
  api::RunConfig config;
  /// Keep each run's serialized schedule in the result (memory-heavy).
  bool collect_schedule = false;
};

/// Job outcomes, with exit codes matching detlockc's documented stages so
/// operators read one table (docs/cli-reference.md).
enum class JobStatus {
  kOk = 0,            // exit 0
  kRunError = 1,      // exit 1: guest/internal error
  kInvalidConfig = 2, // exit 2: RunConfig::validate rejected the job
  kDivergent = 3,     // exit 3: repeated runs disagreed
  kParseError = 5,    // exit 5
  kVerifyError = 6,   // exit 6
  kDeadlock = 8,      // exit 8: per-job watchdog, cycle found
  kStall = 9,         // exit 9: per-job watchdog, no cycle
};

const char* job_status_name(JobStatus status);

struct JobResult {
  std::string name;
  JobStatus status = JobStatus::kOk;
  int exit_code = 0;
  std::string error;  // human-readable failure detail ("" on success)

  int runs_completed = 0;
  std::int64_t main_return = 0;
  std::uint64_t trace_fingerprint = 0;
  std::uint64_t memory_fingerprint = 0;
  std::uint64_t instructions = 0;
  std::uint64_t lock_acquires = 0;
  std::uint64_t threads = 0;
  /// Wall-clock seconds this job spent executing (all runs, excluding
  /// queue wait and compile time).
  double run_seconds = 0.0;
  /// True when the module came out of the cache already compiled.
  bool cache_hit = false;
  /// Serialized schedule of run 1 when JobSpec::collect_schedule.
  std::string schedule;
};

class BatchExecutor {
 public:
  struct Options {
    std::size_t workers = 4;
    std::size_t queue_capacity = 64;
  };

  /// `cache` is shared across jobs (and possibly other executors); must
  /// outlive this object.
  BatchExecutor(ModuleCache& cache, Options options);
  /// Drains the queue (as if wait() had been called) before joining.
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Enqueues a job; returns its index in the results vector.  Blocks while
  /// the pending queue is at capacity (backpressure).  Illegal after
  /// wait().
  std::size_t submit(JobSpec job);

  /// Closes the queue, runs everything to completion, joins the workers,
  /// and returns all results in submit order.  Idempotent.
  const std::vector<JobResult>& wait();

  struct Stats {
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_completed = 0;
    std::size_t peak_queue_depth = 0;
  };
  Stats stats() const;

 private:
  struct Pending {
    std::size_t index;
    JobSpec spec;
  };

  void worker_main();
  JobResult execute(const JobSpec& spec) const;

  ModuleCache& cache_;
  const Options options_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;   // workers: queue non-empty or closed
  std::condition_variable space_cv_;   // producers: queue below capacity
  std::deque<Pending> queue_;
  bool closed_ = false;
  std::vector<JobResult> results_;
  std::uint64_t jobs_completed_ = 0;
  std::size_t peak_queue_depth_ = 0;
  bool waited_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace detlock::service
