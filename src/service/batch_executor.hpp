// BatchExecutor: bounded job queue + worker pool for concurrent
// deterministic execution.
//
// Many jobs run at once, each with fully isolated per-run state
// (ExecutionContext), optionally sharing CompiledModules through a
// ModuleCache so identical programs compile exactly once across the whole
// batch.  Per job the executor collects exit status, fingerprints,
// instruction counts, and (optionally) the serialized lock-acquisition
// schedule; watchdog and chaos wiring reuse runtime/watchdog +
// runtime/faultinject per job, so one deadlocked job diagnoses and aborts
// itself without touching its neighbors.
//
// Backpressure comes in two flavors:
//   * submit() blocks while `queue_capacity` jobs are already pending --
//     right for one-shot batch drivers (detserve) whose producers can wait;
//   * try_submit() never blocks and returns a typed rejection instead --
//     the admission-control primitive detserved needs, where a full queue
//     must become a structured RETRY_AFTER response, not a stalled accept
//     loop.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "api/run_config.hpp"
#include "runtime/profile.hpp"
#include "service/module_cache.hpp"

namespace detlock::service {

class ContextPool;

struct JobSpec {
  std::string name;
  /// Program source (textual IR).  Keyed into the ModuleCache together with
  /// the compile-affecting fields of `config`.
  std::string ir_text;
  std::string entry = "main";
  std::vector<std::int64_t> args;
  /// Fingerprint-compared repetitions (config.runs is ignored in batch
  /// mode; chaos jobs run 1 clean + config.chaos_trials perturbed runs).
  api::RunConfig config;
  /// Keep each run's serialized schedule in the result (memory-heavy).
  bool collect_schedule = false;
  /// Opaque caller cookie, threaded through to the completion callback and
  /// cancellation results untouched.  detserved keys result routing (which
  /// session gets this frame, which attempt this is) on it; never feeds the
  /// ModuleCache key or any execution decision.
  std::uint64_t ticket = 0;
};

/// Job outcomes, with exit codes matching detlockc's documented stages so
/// operators read one table (docs/cli-reference.md).
enum class JobStatus {
  kOk = 0,            // exit 0
  kRunError = 1,      // exit 1: guest/internal error
  kInvalidConfig = 2, // exit 2: RunConfig::validate rejected the job
  kDivergent = 3,     // exit 3: repeated runs disagreed
  kAborted = 4,       // exit 4: cancelled before execution (drain)
  kParseError = 5,    // exit 5
  kVerifyError = 6,   // exit 6
  kDeadlock = 8,      // exit 8: per-job watchdog, cycle found
  kStall = 9,         // exit 9: per-job watchdog, no cycle
  kCrashed = 11,      // exit 11: worker-thread crash escaped the job itself
};

const char* job_status_name(JobStatus status);

struct JobResult {
  std::string name;
  JobStatus status = JobStatus::kOk;
  int exit_code = 0;
  std::string error;  // human-readable failure detail ("" on success)

  int runs_completed = 0;
  std::int64_t main_return = 0;
  std::uint64_t trace_fingerprint = 0;
  std::uint64_t memory_fingerprint = 0;
  std::uint64_t instructions = 0;
  std::uint64_t lock_acquires = 0;
  std::uint64_t threads = 0;
  /// Wall-clock seconds this job spent executing (all runs, excluding
  /// queue wait and compile time).
  double run_seconds = 0.0;
  /// True when the module came out of the cache already compiled.
  bool cache_hit = false;
  /// True when the run reused a warm pooled ExecutionContext.
  bool context_reused = false;
  /// Serialized schedule of run 1 when JobSpec::collect_schedule.
  std::string schedule;

  /// Per-category wait-time attribution summed over this job's runs
  /// (populated iff config.profile; runtime/profile.hpp categories).
  bool profiled = false;
  std::array<std::uint64_t, runtime::kNumWaitCategories> wait_ns{};
  std::array<std::uint64_t, runtime::kNumWaitCategories> wait_events{};
};

/// Why try_submit() refused a job (the typed rejection admission control
/// turns into a RETRY_AFTER response).
enum class SubmitRejection {
  kQueueFull,  ///< `queue_capacity` jobs already pending; retry after drain
  kClosed,     ///< wait() already closed the queue
};

const char* submit_rejection_name(SubmitRejection r);

class BatchExecutor {
 public:
  struct Options {
    std::size_t workers = 4;
    std::size_t queue_capacity = 64;
    /// Keep every JobResult for wait() (batch mode).  Long-running servers
    /// set false: results are delivered solely through `on_complete` and
    /// wait() returns an empty vector, so memory stays bounded by the
    /// queue, not by the server's lifetime job count.
    bool retain_results = true;
    /// Warm ExecutionContext pool (service/context_pool.hpp); null runs
    /// every job on a fresh context.  Not owned; must outlive the executor.
    ContextPool* context_pool = nullptr;
    /// Invoked by the worker thread after a job reaches its terminal
    /// result -- including kAborted results synthesized by
    /// cancel_pending().  Called outside the executor lock; submissions
    /// from inside the callback are legal.
    std::function<void(const JobSpec&, const JobResult&)> on_complete;
    /// Test/chaos hook run by the worker just before execution; an
    /// exception thrown here models a worker-thread crash (the job resolves
    /// to kCrashed and the worker survives).
    std::function<void(const JobSpec&)> pre_execute_hook;
  };

  /// `cache` is shared across jobs (and possibly other executors); must
  /// outlive this object.
  BatchExecutor(ModuleCache& cache, Options options);
  /// Drains the queue (as if wait() had been called) before joining.
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Enqueues a job; returns its index in the results vector.  Blocks while
  /// the pending queue is at capacity (backpressure).  Illegal after
  /// wait().
  std::size_t submit(JobSpec job);

  /// Non-blocking submit: enqueues and returns the job index, or returns a
  /// typed rejection when the queue is at capacity / already closed.  Never
  /// waits -- the primitive admission control needs.
  std::variant<std::size_t, SubmitRejection> try_submit(JobSpec job);

  /// Removes every job still waiting in the queue and resolves each to a
  /// kAborted (exit 4) result, delivered through on_complete like any other
  /// completion.  Jobs already executing are unaffected.  Returns the
  /// number aborted.  The drain primitive: close admission first, then
  /// cancel whatever the drain deadline did not leave time for.
  std::size_t cancel_pending();

  /// Current number of queued-but-not-started jobs.
  std::size_t queue_depth() const;

  /// Closes the queue, runs everything to completion, joins the workers,
  /// and returns all results in submit order (empty when
  /// Options::retain_results is false).  Idempotent.
  const std::vector<JobResult>& wait();

  struct Stats {
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_completed = 0;
    std::uint64_t rejected_full = 0;   ///< try_submit kQueueFull rejections
    std::uint64_t cancelled = 0;       ///< cancel_pending kAborted results
    std::uint64_t crashed = 0;         ///< kCrashed results (worker survived)
    std::size_t queue_depth = 0;
    std::size_t peak_queue_depth = 0;
  };
  Stats stats() const;

 private:
  struct Pending {
    std::size_t index;
    JobSpec spec;
  };

  std::size_t enqueue_locked(JobSpec job);
  void deliver(const JobSpec& spec, const JobResult& result);
  void worker_main();
  JobResult execute(const JobSpec& spec) const;

  ModuleCache& cache_;
  const Options options_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;   // workers: queue non-empty or closed
  std::condition_variable space_cv_;   // producers: queue below capacity
  std::deque<Pending> queue_;
  bool closed_ = false;
  std::vector<JobResult> results_;
  std::uint64_t jobs_submitted_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t rejected_full_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t crashed_ = 0;
  std::size_t peak_queue_depth_ = 0;
  bool waited_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace detlock::service
