#include "service/server.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/session.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace detlock::service {

namespace {

using Clock = std::chrono::steady_clock;

std::string refused_frame(std::string_view message) {
  JsonWriter w(/*compact=*/true);
  w.begin_object();
  w.field("type", "error");
  w.field("message", message);
  w.end();
  return w.str();
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity),
      pool_(),
      admission_(options_.admission) {
  BatchExecutor::Options exec;
  exec.workers = options_.workers;
  exec.queue_capacity = options_.queue_capacity;
  // The server lives indefinitely: results stream through on_complete only,
  // never accumulate inside the executor.
  exec.retain_results = false;
  exec.context_pool = options_.context_pool ? &pool_ : nullptr;
  exec.on_complete = [this](const JobSpec& spec, const JobResult& result) {
    on_complete(spec, result);
  };
  if (options_.chaos_crash_every > 0) {
    exec.pre_execute_hook = [this](const JobSpec& spec) {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = routes_.find(spec.ticket);
      // Only first attempts crash: the chaos validates the retry path, and
      // making the retry immune keeps the final outcome deterministic.
      if (it == routes_.end() || it->second.attempt != 0) return;
      if (++chaos_counter_ % options_.chaos_crash_every == 0) {
        throw Error("chaos: injected worker crash before execution");
      }
    };
  }
  executor_ = std::make_unique<BatchExecutor>(cache_, std::move(exec));
}

Server::~Server() {
  if (started_ && !finished_) {
    request_drain();
    run_until_drained();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

void Server::bind_listener() {
  const std::string& addr = options_.listen;
  if (starts_with(addr, "unix:")) {
    unix_path_ = addr.substr(5);
    if (unix_path_.empty()) throw Error("listen: unix socket path is empty");
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (unix_path_.size() >= sizeof(sa.sun_path)) {
      throw Error("listen: unix socket path too long: " + unix_path_);
    }
    std::memcpy(sa.sun_path, unix_path_.c_str(), unix_path_.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw Error(std::string("socket: ") + std::strerror(errno));
    ::unlink(unix_path_.c_str());  // stale socket from a previous run
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      throw Error("bind " + unix_path_ + ": " + std::strerror(errno));
    }
    listen_address_ = addr;
  } else if (starts_with(addr, "tcp:")) {
    const std::string rest = addr.substr(4);
    const std::size_t colon = rest.rfind(':');
    const std::string host = colon == std::string::npos ? "127.0.0.1" : rest.substr(0, colon);
    const std::string port_str = colon == std::string::npos ? rest : rest.substr(colon + 1);
    const std::optional<std::int64_t> port = parse_int(port_str);
    if (!port || *port < 0 || *port > 65535) {
      throw Error("listen: bad tcp port '" + port_str + "'");
    }
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<std::uint16_t>(*port));
    if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
      throw Error("listen: bad tcp host '" + host + "' (dotted quad required)");
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw Error(std::string("socket: ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      throw Error("bind " + addr + ": " + std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = static_cast<int>(ntohs(bound.sin_port));
    listen_address_ = "tcp:" + host + ":" + std::to_string(port_);
  } else {
    throw Error("listen: expected tcp:HOST:PORT or unix:PATH, got '" + addr + "'");
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    throw Error("listen " + addr + ": " + err);
  }
}

void Server::start() {
  DETLOCK_CHECK(!started_, "Server::start called twice");
  // Broken client pipes must surface as send() errors, not process death.
  std::signal(SIGPIPE, SIG_IGN);
  bind_listener();
  started_ = true;
  started_at_ = Clock::now();
  accept_thread_ = std::thread([this] { accept_main(); });
  dispatcher_thread_ = std::thread([this] { dispatcher_main(); });
}

// ---- accept loop -----------------------------------------------------------

void Server::reap_sessions() {
  // Destroying a Session joins its reader thread, which must never happen
  // on the reader thread itself (session_closed is called FROM it) -- so
  // closed sessions are collected here, on the accept thread.
  std::vector<std::shared_ptr<Session>> dead;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second->closed()) {
        dead.push_back(std::move(it->second));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  dead.clear();  // joins + destroys outside the lock
}

void Server::accept_main() {
  while (!stop_.load(std::memory_order_acquire) && !draining()) {
    reap_sessions();
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
        continue;
      }
      break;
    }
    std::shared_ptr<Session> session;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (sessions_.size() >= options_.max_sessions) {
        ++sessions_refused_;
      } else {
        const ClientId id = ++next_client_;
        session = std::make_shared<Session>(*this, fd, id);
        sessions_.emplace(id, session);
        ++sessions_accepted_;
      }
    }
    if (!session) {
      const std::string frame = refused_frame("session limit reached; retry later");
      (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    session->start();
  }
}

// ---- admission + dispatch --------------------------------------------------

Server::JobAck Server::submit_job(ClientId client, JobSpec spec) {
  JobAck ack;
  if (spec.name.empty()) {
    ack.error = "job name required";
    return ack;
  }
  if (spec.ir_text.empty()) {
    ack.error = "empty job body";
    return ack;
  }
  // Server-side deadline: every job gets a watchdog so no job -- and no
  // drain -- can outlive the configured bound.
  if (spec.config.watchdog_ms == 0 && options_.deadline_ms > 0) {
    spec.config.watchdog_ms = options_.deadline_ms;
  }
  if (const std::optional<std::string> err = spec.config.validate()) {
    ack.error = *err;
    return ack;
  }

  std::uint64_t ticket = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ticket = ++next_ticket_;
    // Route registered before offer(): the dispatcher may hand the job to a
    // worker the instant it is parked.
    routes_.emplace(ticket, Route{client, spec.name, 0});
    ++outstanding_;
  }
  spec.ticket = ticket;
  ack.admit = admission_.offer(client, std::move(spec), AdmissionController::Clock::now());
  if (ack.admit.status != AdmitStatus::kAdmitted) {
    std::lock_guard<std::mutex> lock(mutex_);
    routes_.erase(ticket);
    --outstanding_;
    return ack;
  }
  ack.ticket = ticket;
  cv_.notify_all();
  return ack;
}

void Server::dispatcher_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_.load(std::memory_order_acquire)) {
    // Crash retries whose backoff has elapsed rejoin the front of their
    // client's lane.
    const auto now = Clock::now();
    while (!retries_.empty() && retries_.front().ready_at <= now) {
      AdmittedJob job = std::move(retries_.front().job);
      retries_.pop_front();
      lock.unlock();
      admission_.requeue_front(std::move(job));
      lock.lock();
    }
    const bool feeding = !flushing_;
    lock.unlock();
    if (feeding) {
      // This thread is the executor's only producer, so depth < capacity
      // here guarantees try_submit succeeds (workers only shrink the
      // queue).
      while (executor_->queue_depth() < options_.queue_capacity) {
        std::optional<AdmittedJob> job = admission_.next();
        if (!job) break;
        const auto outcome = executor_->try_submit(std::move(job->spec));
        DETLOCK_CHECK(std::holds_alternative<std::size_t>(outcome),
                      "dispatcher is the sole producer; try_submit cannot see a full queue");
      }
    }
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

// ---- result routing --------------------------------------------------------

void Server::on_complete(const JobSpec& spec, const JobResult& result) {
  Route route;
  bool retry = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = routes_.find(spec.ticket);
    if (it == routes_.end()) return;  // already resolved (drain raced us)
    if (result.status == JobStatus::kCrashed && it->second.attempt == 0 && !flushing_) {
      // One deterministic retry after a backoff: transient infrastructure
      // crashes recover, persistent ones fail identically on attempt 2.
      it->second.attempt = 1;
      ++jobs_retried_;
      PendingRetry retry_entry;
      retry_entry.ready_at =
          Clock::now() + std::chrono::milliseconds(options_.crash_retry_backoff_ms);
      retry_entry.job.client = it->second.client;
      retry_entry.job.spec = spec;
      retry_entry.job.attempt = 1;
      retries_.push_back(std::move(retry_entry));
      retry = true;
    } else {
      route = it->second;
      routes_.erase(it);
      ++jobs_resolved_;
      if (result.status == JobStatus::kAborted) ++jobs_aborted_;
      if (result.profiled) {
        ++profiled_jobs_;
        for (std::size_t c = 0; c < runtime::kNumWaitCategories; ++c) {
          wait_ns_[c] += result.wait_ns[c];
          wait_events_[c] += result.wait_events[c];
        }
      }
      --outstanding_;
    }
  }
  cv_.notify_all();
  if (retry) return;
  deliver_frame(route.client, result_frame(route, spec.ticket, result));
}

void Server::resolve_aborted(const AdmittedJob& job, const char* why) {
  JobResult result;
  result.name = job.spec.name;
  result.status = JobStatus::kAborted;
  result.exit_code = 4;
  result.error = why;
  Route route;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = routes_.find(job.spec.ticket);
    if (it == routes_.end()) return;
    route = it->second;
    routes_.erase(it);
    ++jobs_resolved_;
    ++jobs_aborted_;
    --outstanding_;
  }
  cv_.notify_all();
  deliver_frame(route.client, result_frame(route, job.spec.ticket, result));
}

void Server::deliver_frame(ClientId client, const std::string& frame) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(client);
    if (it != sessions_.end()) session = it->second;
  }
  if (session == nullptr || !session->send_frame(frame)) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++frames_dropped_;
  }
}

void Server::session_closed(ClientId client) {
  const std::vector<AdmittedJob> dropped = admission_.client_gone(client);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const AdmittedJob& job : dropped) {
      if (routes_.erase(job.spec.ticket) > 0) {
        ++jobs_resolved_;
        ++frames_dropped_;  // nobody left to answer
        --outstanding_;
      }
    }
  }
  cv_.notify_all();
}

// ---- drain -----------------------------------------------------------------

int Server::run_until_drained() {
  DETLOCK_CHECK(started_, "Server::run_until_drained before start()");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!draining()) cv_.wait_for(lock, std::chrono::milliseconds(100));
  }

  // 1. Stop admitting: new offers answer kDraining; the accept loop exits
  //    on its own once it observes the drain flag.
  admission_.start_draining();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());

  // 2. Let in-flight and queued work finish until the drain deadline (the
  //    dispatcher keeps feeding; every job is watchdog-bounded).
  const auto deadline = Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    while (outstanding_ > 0 && Clock::now() < deadline) {
      cv_.wait_for(lock, std::chrono::milliseconds(20));
    }
  }

  // 3. Deadline: stop feeding and abort everything not yet running --
  //    parked backlog, scheduled crash retries, executor queue.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    flushing_ = true;
  }
  for (const AdmittedJob& job : admission_.flush_backlog()) {
    resolve_aborted(job, "aborted: server drained before dispatch");
  }
  std::deque<PendingRetry> stale_retries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stale_retries.swap(retries_);
  }
  for (const PendingRetry& r : stale_retries) {
    resolve_aborted(r.job, "aborted: server drained before crash retry");
  }
  executor_->cancel_pending();  // resolves queued jobs via on_complete

  // 4. Only running jobs remain; their watchdogs bound this wait.  The
  //    extra slack past the worst-case deadline is a hang backstop.
  const auto hard_stop = Clock::now() + std::chrono::milliseconds(2 * options_.deadline_ms +
                                                                  options_.drain_timeout_ms +
                                                                  30'000);
  bool clean = true;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    while (outstanding_ > 0) {
      if (Clock::now() >= hard_stop) {
        clean = false;
        break;
      }
      cv_.wait_for(lock, std::chrono::milliseconds(20));
    }
  }

  // 5. Stop the dispatcher and the workers.
  stop_.store(true, std::memory_order_release);
  cv_.notify_all();
  if (dispatcher_thread_.joinable()) dispatcher_thread_.join();
  if (clean) executor_->wait();  // unclean: a job is wedged; joining would hang

  // 6. Tell every surviving client the drain completed, then close.
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sessions.reserve(sessions_.size());
    for (auto& [id, session] : sessions_) sessions.push_back(std::move(session));
    sessions_.clear();
  }
  std::string drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter w(/*compact=*/true);
    w.begin_object();
    w.field("type", "drained");
    w.field("clean", clean);
    w.field("jobs_resolved", jobs_resolved_);
    w.field("jobs_aborted", jobs_aborted_);
    w.end();
    drained = w.str();
  }
  for (const std::shared_ptr<Session>& session : sessions) {
    session->send_frame(drained);
    session->shutdown();
  }
  for (const std::shared_ptr<Session>& session : sessions) session->join();
  sessions.clear();

  finished_ = true;
  return clean ? 0 : 1;
}

// ---- frames ----------------------------------------------------------------

std::string Server::result_frame(const Route& route, std::uint64_t ticket,
                                 const JobResult& result) const {
  JsonWriter w(/*compact=*/true);
  w.begin_object();
  w.field("type", "result");
  w.field("name", result.name);
  w.field("ticket", ticket);
  w.field("status", job_status_name(result.status));
  w.field("exit_code", result.exit_code);
  if (!result.error.empty()) w.field("error", result.error);
  w.field("attempts", result.status == JobStatus::kAborted ? route.attempt
                                                           : route.attempt + 1);
  w.field("cache_hit", result.cache_hit);
  w.field("context_reused", result.context_reused);
  w.field("runs_completed", result.runs_completed);
  if (result.runs_completed > 0) {
    w.field("result", result.main_return);
    w.field_hex("lock_order_fingerprint", result.trace_fingerprint);
    w.field_hex("memory_fingerprint", result.memory_fingerprint);
    w.field("instructions", result.instructions);
    w.field("lock_acquires", result.lock_acquires);
    w.field("threads", result.threads);
  }
  w.field("run_seconds", result.run_seconds);
  if (result.profiled) {
    w.key("wait_profile");
    w.begin_object();
    for (std::size_t c = 0; c < runtime::kNumWaitCategories; ++c) {
      w.key(runtime::wait_category_name(static_cast<runtime::WaitCategory>(c)));
      w.begin_object();
      w.field("ns", result.wait_ns[c]);
      w.field("events", result.wait_events[c]);
      w.end();
    }
    w.end();
  }
  if (!result.schedule.empty()) w.field("schedule", result.schedule);
  w.end();
  return w.str();
}

std::string Server::stats_frame() const {
  const BatchExecutor::Stats exec = executor_->stats();
  const ModuleCache::Stats cache = cache_.stats();
  const ContextPool::Stats pool = pool_.stats();
  const AdmissionController::Stats adm = admission_.stats();

  JsonWriter w(/*compact=*/true);
  w.begin_object();
  w.field("type", "stats");
  w.field("schema_version", kReportSchemaVersion);

  std::lock_guard<std::mutex> lock(mutex_);
  w.field("uptime_seconds",
          std::chrono::duration<double>(Clock::now() - started_at_).count());
  w.field("draining", draining());

  w.key("sessions");
  w.begin_object();
  w.field("open", static_cast<std::uint64_t>(sessions_.size()));
  w.field("accepted", sessions_accepted_);
  w.field("refused", sessions_refused_);
  w.end();

  w.key("admission");
  w.begin_object();
  w.field("admitted", adm.admitted);
  w.field("quota_rejections", adm.quota_rejections);
  w.field("backlog_rejections", adm.backlog_rejections);
  w.field("draining_rejections", adm.draining_rejections);
  w.field("backlog", static_cast<std::uint64_t>(adm.backlog));
  w.field("active_clients", static_cast<std::uint64_t>(adm.active_clients));
  w.end();

  w.key("executor");
  w.begin_object();
  w.field("workers", static_cast<std::uint64_t>(options_.workers));
  w.field("queue_capacity", static_cast<std::uint64_t>(options_.queue_capacity));
  w.field("submitted", exec.jobs_submitted);
  w.field("completed", exec.jobs_completed);
  w.field("rejected_full", exec.rejected_full);
  w.field("cancelled", exec.cancelled);
  w.field("crashed", exec.crashed);
  w.field("queue_depth", static_cast<std::uint64_t>(exec.queue_depth));
  w.field("peak_queue_depth", static_cast<std::uint64_t>(exec.peak_queue_depth));
  w.end();

  w.key("cache");
  w.begin_object();
  w.field("hits", cache.hits);
  w.field("misses", cache.misses);
  w.field("evictions", cache.evictions);
  w.field("compile_errors", cache.compile_errors);
  w.field("inflight_waits", cache.inflight_waits);
  w.field("entries", static_cast<std::uint64_t>(cache.entries));
  w.field("capacity", static_cast<std::uint64_t>(cache_.capacity()));
  w.end();

  w.key("context_pool");
  w.begin_object();
  w.field("enabled", options_.context_pool);
  w.field("created", pool.created);
  w.field("reused", pool.reused);
  w.field("dropped", pool.dropped);
  w.field("idle", static_cast<std::uint64_t>(pool.idle));
  w.field("in_use", static_cast<std::uint64_t>(pool.in_use));
  w.end();

  w.key("jobs");
  w.begin_object();
  w.field("resolved", jobs_resolved_);
  w.field("outstanding", static_cast<std::uint64_t>(outstanding_));
  w.field("retried", jobs_retried_);
  w.field("aborted", jobs_aborted_);
  w.field("frames_dropped", frames_dropped_);
  w.end();

  w.key("wait_profile");
  w.begin_object();
  w.field("profiled_jobs", profiled_jobs_);
  for (std::size_t c = 0; c < runtime::kNumWaitCategories; ++c) {
    w.key(runtime::wait_category_name(static_cast<runtime::WaitCategory>(c)));
    w.begin_object();
    w.field("ns", wait_ns_[c]);
    w.field("events", wait_events_[c]);
    w.end();
  }
  w.end();

  w.end();
  return w.str();
}

}  // namespace detlock::service
