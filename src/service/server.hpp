// Server: the long-running detserved core -- sockets, admission, dispatch,
// result routing, and graceful drain, assembled from the service-layer
// building blocks (ModuleCache, ContextPool, BatchExecutor,
// AdmissionController).
//
// Data path of one JOB line:
//
//   Session reader ──offer()──► AdmissionController (quota + backlog gates,
//        │                      RETRY_AFTER on rejection)
//        │ accepted frame
//   dispatcher thread ──next()──► DRR-fair pick ──try_submit()──► executor
//        │ kQueueFull → requeue_front + wait for space (the bounded queue
//        │ never blocks a session reader; only the dispatcher waits)
//   worker thread ──on_complete()──► route by JobSpec::ticket ──► result
//        frame on the owning session (dropped if the client vanished)
//
// Robustness properties, each tested in tests/service/server_test.cpp:
//
//   * ADMISSION, not blocking: a full executor queue surfaces to clients as
//     RETRY_AFTER "queue-full" while the accept loop keeps accepting.
//   * DEADLINES: jobs without a watchdog_ms get the server default, so no
//     job -- and therefore no drain -- can hang forever; deadlocked jobs
//     resolve to the documented exit 8/9.
//   * CRASH CONTAINMENT: a worker-thread crash (modeled by
//     pre_execute_hook throwing; induced by --chaos-crash-every) resolves
//     the job to kCrashed, the worker survives, and the server re-queues
//     the job exactly once after a backoff before failing it
//     deterministically (exit 11 with attempts=2).
//   * GRACEFUL DRAIN: request_drain() stops admission (kDraining
//     rejections), lets in-flight work finish until the drain deadline,
//     then aborts the remaining backlog (exit 4 ABORTED frames), sends
//     every session a final "drained" frame, and run_until_drained()
//     returns 0 iff every accepted job reached a terminal status.
//
// Determinism invariant (the reason this server is worth trusting): the
// execution path below the queue is exactly detserve's, so the same job
// payload yields byte-identical fingerprints whether it arrived via
// detlockc, a one-shot detserve batch, or a detserved socket under load.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/profile.hpp"
#include "service/admission.hpp"
#include "service/batch_executor.hpp"
#include "service/context_pool.hpp"
#include "service/module_cache.hpp"

namespace detlock::service {

class Session;

struct ServerOptions {
  /// "tcp:HOST:PORT", "tcp:PORT" (host 127.0.0.1), or "unix:PATH".
  /// tcp port 0 binds an ephemeral port; see Server::port().
  std::string listen = "tcp:127.0.0.1:0";
  std::size_t workers = 4;
  /// Executor pending-queue bound; beyond it admission answers
  /// RETRY_AFTER rather than blocking.
  std::size_t queue_capacity = 16;
  std::size_t cache_capacity = 64;
  AdmissionOptions admission;
  /// Warm ExecutionContext reuse; off forces a fresh context per job.
  bool context_pool = true;
  /// Default watchdog for jobs that do not set watchdog-ms themselves; the
  /// bound that keeps drain finite.  0 leaves jobs unbounded (not
  /// recommended; detserved's flag default is 10s).
  std::uint64_t deadline_ms = 10'000;
  /// How long drain waits for in-flight + queued work before aborting the
  /// remainder.
  std::uint64_t drain_timeout_ms = 5'000;
  /// Pause before re-queueing a crashed job for its single retry.
  std::uint64_t crash_retry_backoff_ms = 10;
  /// Chaos: every Nth first-attempt job crashes its worker just before
  /// execution (0 = off).  Exercises the crash-retry path end to end.
  std::uint64_t chaos_crash_every = 0;
  /// Hard cap on a JOB body.
  std::size_t max_ir_bytes = 4u << 20;
  std::size_t max_sessions = 256;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  /// Force-drains (zero timeout) if run_until_drained was never reached.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept + dispatcher threads.  Throws
  /// Error on bind failure.
  void start();

  /// The bound TCP port (after start(); meaningful for tcp listeners --
  /// resolves port 0 to the kernel-assigned ephemeral port).
  int port() const { return port_; }
  /// The resolved listen address, e.g. "tcp:127.0.0.1:43187".
  const std::string& listen_address() const { return listen_address_; }

  /// Begins graceful drain: stop admitting, finish what's in flight.
  /// Async-signal-safe (atomic store only); the drain work happens on the
  /// thread inside run_until_drained().
  void request_drain() { drain_requested_.store(true, std::memory_order_release); }

  /// Blocks until request_drain() is observed, then executes the drain
  /// procedure.  Returns 0 when every accepted job reached a terminal
  /// status (including ABORTED ones -- drain aborts are a *clean* outcome).
  int run_until_drained();

  // ---- Session upcalls (used by service::Session) --------------------------

  /// Admission verdict for one parsed JOB line.  On kAdmitted the job is
  /// owned by the server until its result frame.  `error` non-empty means
  /// the job was structurally invalid (never offered to admission).
  struct JobAck {
    AdmitResult admit;
    std::string error;
    /// Server-assigned ticket echoed in the accepted and result frames.
    std::uint64_t ticket = 0;
  };
  JobAck submit_job(ClientId client, JobSpec spec);

  /// One-line JSON document for the STATS verb.
  std::string stats_frame() const;

  /// Reader hung up / QUIT / write error: forget the client's backlog
  /// (in-flight jobs still run; their frames are dropped).
  void session_closed(ClientId client);

  const ServerOptions& options() const { return options_; }
  bool draining() const { return drain_requested_.load(std::memory_order_acquire); }

 private:
  struct Route {
    ClientId client = 0;
    std::string name;
    int attempt = 0;
  };
  struct PendingRetry {
    std::chrono::steady_clock::time_point ready_at;
    AdmittedJob job;
  };

  void accept_main();
  void dispatcher_main();
  void on_complete(const JobSpec& spec, const JobResult& result);
  void resolve_aborted(const AdmittedJob& job, const char* why);
  void deliver_frame(ClientId client, const std::string& frame);
  std::string result_frame(const Route& route, std::uint64_t ticket,
                           const JobResult& result) const;
  void reap_sessions();
  void bind_listener();

  const ServerOptions options_;

  ModuleCache cache_;
  ContextPool pool_;
  AdmissionController admission_;
  std::unique_ptr<BatchExecutor> executor_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::string listen_address_;
  std::string unix_path_;  // unlinked on shutdown when set

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool finished_ = false;

  mutable std::mutex mutex_;
  std::condition_variable cv_;  // dispatcher + drain wait here
  std::unordered_map<std::uint64_t, Route> routes_;  // ticket -> owner
  std::deque<PendingRetry> retries_;
  std::uint64_t next_ticket_ = 0;
  ClientId next_client_ = 0;
  /// Admitted jobs not yet resolved by a terminal frame; drain completes
  /// when this hits zero.
  std::size_t outstanding_ = 0;
  /// Dispatcher stops feeding the executor once the drain deadline passed
  /// (remaining backlog gets aborted instead).
  bool flushing_ = false;

  std::unordered_map<ClientId, std::shared_ptr<Session>> sessions_;
  std::uint64_t sessions_accepted_ = 0;
  std::uint64_t sessions_refused_ = 0;

  // STATS aggregates (guarded by mutex_).
  std::uint64_t jobs_resolved_ = 0;
  std::uint64_t jobs_retried_ = 0;
  std::uint64_t jobs_aborted_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t chaos_counter_ = 0;
  std::uint64_t profiled_jobs_ = 0;
  std::array<std::uint64_t, runtime::kNumWaitCategories> wait_ns_{};
  std::array<std::uint64_t, runtime::kNumWaitCategories> wait_events_{};

  std::chrono::steady_clock::time_point started_at_{};

  std::thread accept_thread_;
  std::thread dispatcher_thread_;
};

}  // namespace detlock::service
