#include "service/context_pool.hpp"

namespace detlock::service {

ContextPool::Lease::~Lease() {
  if (pool_ != nullptr && ctx_ != nullptr) {
    pool_->release(std::move(ctx_));
  }
  // No pool: ctx_ destroys normally (the unpooled adapter path).
}

ContextPool::ContextPool(Options options) : options_(options) {}

ContextPool::Lease ContextPool::acquire(std::shared_ptr<const CompiledModule> module,
                                        const api::RunConfig& config) {
  std::unique_ptr<ExecutionContext> ctx;
  bool reused = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = idle_.find(module.get());
    if (it != idle_.end() && !it->second.empty()) {
      ctx = std::move(it->second.back());
      it->second.pop_back();
      if (it->second.empty()) idle_.erase(it);
      --idle_count_;
      ++reused_;
      reused = true;
    } else {
      ++created_;
    }
    ++in_use_;
  }
  if (ctx != nullptr) {
    ctx->reset(config);
  } else {
    ctx = std::make_unique<ExecutionContext>(std::move(module), config);
  }
  return Lease(std::move(ctx), this, reused);
}

void ContextPool::release(std::unique_ptr<ExecutionContext> ctx) {
  const CompiledModule* key = &ctx->module();
  std::lock_guard<std::mutex> lock(mutex_);
  --in_use_;
  std::vector<std::unique_ptr<ExecutionContext>>& slot = idle_[key];
  if (slot.size() >= options_.max_idle_per_module || idle_count_ >= options_.max_idle_total) {
    if (slot.empty()) idle_.erase(key);
    ++dropped_;
    return;  // ctx destroys here, outside any hot path
  }
  slot.push_back(std::move(ctx));
  ++idle_count_;
}

ContextPool::Stats ContextPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.created = created_;
  s.reused = reused_;
  s.dropped = dropped_;
  s.idle = idle_count_;
  s.in_use = in_use_;
  return s;
}

}  // namespace detlock::service
