// Admission control for the persistent serving layer (detserved).
//
// Two gates stand between a client's JOB line and the BatchExecutor queue,
// both answering with a structured RETRY_AFTER instead of blocking:
//
//   1. TOKEN-BUCKET QUOTA, per client.  Each client owns a bucket refilled
//      at `quota_rate` tokens/sec up to `quota_burst`; a job costs one
//      token.  An empty bucket rejects with the exact wait until the next
//      token -- the retry_after_ms the client is told.
//   2. BACKLOG BOUND, per client and total.  Admitted jobs park in a
//      per-client FIFO until the dispatcher moves them into the executor;
//      a client at its backlog cap (or a full total backlog) rejects with
//      reason "queue-full".  Because the bound is per client, one flooding
//      client exhausts its own lane and starts eating RETRY_AFTERs while
//      everyone else keeps being admitted -- starvation-freedom half one.
//
// Half two is DEFICIT ROUND ROBIN on the way out: next() visits clients in
// a circular order, granting each `drr_quantum` job-credits per visit and
// dispatching while credits last, so the executor's worker slots divide
// fairly among active clients regardless of how deep any one backlog is
// (a job's cost is 1 -- jobs are the unit of fairness here; the classic
// byte-cost DRR generalization would hang off JobSpec if ever needed).
//
// All time is injected (callers pass `now`), so every quota decision is
// unit-testable without sleeping.  Thread safety: all public methods are
// mutex-protected; sessions offer() concurrently while one dispatcher
// drains next().
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/batch_executor.hpp"

namespace detlock::service {

using ClientId = std::uint64_t;

/// Why (or that) a job was admitted.  Every non-admit maps onto one wire
/// RETRY_AFTER response with machine-readable `reason`.
enum class AdmitStatus {
  kAdmitted,
  kRetryQuota,    ///< token bucket empty; retry_after_ms = time to a token
  kRetryBacklog,  ///< per-client or total backlog cap reached
  kDraining,      ///< server drain in progress; no new work accepted
};

const char* admit_status_name(AdmitStatus status);

struct AdmitResult {
  AdmitStatus status = AdmitStatus::kAdmitted;
  /// Suggested client wait before retrying (rejections only).
  std::uint64_t retry_after_ms = 0;
};

/// A job the controller is holding (or handing to the dispatcher).
struct AdmittedJob {
  ClientId client = 0;
  JobSpec spec;
  /// 0 on first admission; the server bumps it when re-queueing a crashed
  /// job for its one retry.
  int attempt = 0;
};

struct AdmissionOptions {
  /// Token-bucket refill per client in tokens/second; 0 disables the quota
  /// gate entirely (backlog bound still applies).
  double quota_rate = 0.0;
  /// Bucket capacity (burst allowance); buckets start full.
  double quota_burst = 16.0;
  /// Parked jobs allowed per client before RETRY_AFTER "queue-full".
  std::size_t client_backlog_cap = 16;
  /// Parked jobs allowed across all clients.
  std::size_t total_backlog_cap = 1024;
  /// Job-credits granted per client per DRR round.
  std::uint32_t drr_quantum = 2;
  /// retry_after_ms hint for backlog rejections (quota rejections compute
  /// the exact token wait instead).
  std::uint64_t backlog_retry_ms = 25;
  /// retry_after_ms hint while draining (clients should reconnect later).
  std::uint64_t draining_retry_ms = 1000;
};

class AdmissionController {
 public:
  using Clock = std::chrono::steady_clock;

  explicit AdmissionController(AdmissionOptions options);

  /// The quota + backlog gates.  On kAdmitted the job is parked in the
  /// client's lane for the dispatcher; otherwise nothing is retained.
  AdmitResult offer(ClientId client, JobSpec spec, Clock::time_point now);

  /// DRR pick: the next job to hand to the executor, or nullopt when every
  /// lane is empty.  Consumes one job-credit of the owning client.
  std::optional<AdmittedJob> next();

  /// Returns a job to the FRONT of its client's lane without charging
  /// quota -- the dispatcher's put-back when try_submit hit a full executor
  /// queue, and the server's crash-retry requeue (attempt already bumped).
  void requeue_front(AdmittedJob job);

  /// Forgets every parked job of a vanished client and returns them (the
  /// server resolves bookkeeping; nothing is executed or answered -- the
  /// socket is gone).
  std::vector<AdmittedJob> client_gone(ClientId client);

  /// Drain support: after this every offer() answers kDraining.
  void start_draining();
  bool draining() const;

  /// Removes and returns every parked job (drain-deadline flush: the server
  /// resolves them to ABORTED).
  std::vector<AdmittedJob> flush_backlog();

  std::size_t backlog() const;

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t quota_rejections = 0;
    std::uint64_t backlog_rejections = 0;
    std::uint64_t draining_rejections = 0;
    std::size_t backlog = 0;
    std::size_t active_clients = 0;  ///< clients with parked jobs
  };
  Stats stats() const;

 private:
  struct ClientLane {
    double tokens = 0.0;
    bool bucket_started = false;
    Clock::time_point refill_at{};
    double deficit = 0.0;
    std::deque<AdmittedJob> jobs;
    bool in_round = false;  ///< linked into round_ (has parked jobs)
  };

  ClientLane& lane_locked(ClientId client, Clock::time_point now);
  void refill_locked(ClientLane& lane, Clock::time_point now);
  void enqueue_locked(ClientId client, ClientLane& lane, AdmittedJob job, bool front);

  const AdmissionOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<ClientId, ClientLane> lanes_;
  /// Active-client round-robin ring (clients with nonempty lanes), in
  /// first-became-active order.
  std::deque<ClientId> round_;
  std::size_t backlog_ = 0;
  bool draining_ = false;
  Stats stats_;
};

}  // namespace detlock::service
