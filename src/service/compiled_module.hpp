// CompiledModule: the immutable, thread-shareable compiled artifact.
//
// DetLock's amortization story (paper Sec. III: instrumentation is a
// compile-time cost paid once) only materializes if the stack actually
// compiles once.  CompiledModule bundles everything derivable from
// (IR text, CompileOptions) alone:
//
//   * the parsed + verified module, with estimates applied and -- for
//     instrumented modes -- the pass pipeline already run for one
//     PassOptions row,
//   * the pipeline statistics of that run,
//   * for the decoded engine, the predecoded DecodedInstr code arrays with
//     branch targets, switch pools, callee pointers, AND computed-goto
//     handler pointers finalized (Engine::prepare_decoded_module), so no
//     engine ever writes to them again,
//   * for the jit engine, additionally the native code pages compiled from
//     those arrays (interp::jit::compile_module): one RX mapping shared by
//     every worker and session, exactly like the decoded arrays.  When the
//     host can't run the JIT, jit() stays null and each engine takes the
//     decoded fallback on its own.
//
// IMMUTABILITY INVARIANTS (docs/serving.md):
//   1. After compile() returns, no byte of the CompiledModule ever changes.
//   2. All per-run state -- guest memory, register arenas, clock table,
//      backend, trace, profiler, fault plan -- lives in the per-job
//      ExecutionContext / Engine, never in the artifact.
//   3. kCallExtern callee pointers stay null: extern implementations close
//      over per-engine state, so each engine resolves them privately.
//   4. Observed (race-checked) runs do not share: the observing dispatch
//      loop uses different handler labels, so ExecutionContext falls back
//      to a private decode when an observer is attached.
// Together these make `compile once, run anywhere, any number at a time`
// sound: tests/service/concurrent_determinism_test.cpp runs one artifact on
// K threads x R runs and demands byte-identical fingerprints.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "api/run_config.hpp"
#include "interp/decode.hpp"
#include "interp/jit/jit.hpp"
#include "ir/module.hpp"
#include "pass/pipeline.hpp"
#include "support/error.hpp"

namespace detlock::service {

/// Compile-time inputs only: the subset of api::RunConfig that affects the
/// artifact.  Two RunConfigs that agree on these share one CompiledModule
/// no matter how their per-run knobs differ.
struct CompileOptions {
  api::Mode mode = api::Mode::kDetLock;
  interp::EngineKind engine = interp::EngineKind::kDecoded;
  pass::PassOptions pass_options = pass::PassOptions::all();
  /// Optional estimate-file text (pass/estimates.hpp), applied before
  /// verification exactly like detlockc --estimates=.
  std::string estimates_text;
};

/// CompileOptions for a RunConfig (the artifact-affecting projection).
CompileOptions compile_options(const api::RunConfig& config);

/// Staged compilation failures, so every driver maps them to the documented
/// exit codes (5 parse, 6 verifier) identically.
class ParseError : public Error {
 public:
  using Error::Error;
};
class VerifyError : public Error {
 public:
  using Error::Error;
};

class CompiledModule {
 public:
  /// Parses, verifies, (for instrumented modes) instruments, and -- for the
  /// decoded engine -- predecodes + finalizes `ir_text`.  Throws ParseError
  /// / VerifyError / detlock::Error.  The result is immutable and safe to
  /// share across any number of threads; keep it alive via the shared_ptr.
  static std::shared_ptr<const CompiledModule> compile(std::string_view ir_text,
                                                       const CompileOptions& options);
  /// Same, from an already-built module (workload generators).  The module
  /// is taken by value; it must parse-verify clean.
  static std::shared_ptr<const CompiledModule> compile(ir::Module module,
                                                       const CompileOptions& options);

  const ir::Module& module() const { return module_; }
  const CompileOptions& options() const { return options_; }
  const pass::PipelineStats& pass_stats() const { return pass_stats_; }
  /// Non-null iff options().engine == kDecoded or kJit (the jit engine
  /// executes alongside -- and can fall back to -- the decoded arrays).
  const interp::DecodedModule* decoded() const { return decoded_.get(); }
  /// Non-null iff options().engine == kJit AND native compilation succeeded
  /// on this host; null means every engine takes the decoded fallback.
  const interp::jit::JitModule* jit() const { return jit_.get(); }

  CompiledModule(const CompiledModule&) = delete;
  CompiledModule& operator=(const CompiledModule&) = delete;

 private:
  CompiledModule() = default;

  // Declaration order is destruction-safety order: decoded_ holds pointers
  // into module_ (DecodedFunction::source) and into its own vectors, and
  // module_ must outlive it.  The artifact is heap-pinned by the factory
  // (never moved), so those interior pointers stay valid for its lifetime.
  ir::Module module_;
  CompileOptions options_;
  pass::PipelineStats pass_stats_;
  std::unique_ptr<interp::DecodedModule> decoded_;
  // After decoded_: the code pages embed pointers into the decoded arrays.
  std::unique_ptr<const interp::jit::JitModule> jit_;
};

}  // namespace detlock::service
