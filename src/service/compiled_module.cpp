#include "service/compiled_module.hpp"

#include "interp/engine.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "pass/estimates.hpp"

namespace detlock::service {

CompileOptions compile_options(const api::RunConfig& config) {
  CompileOptions options;
  options.mode = config.mode;
  options.engine = config.engine;
  options.pass_options = config.pass_options;
  return options;
}

std::shared_ptr<const CompiledModule> CompiledModule::compile(std::string_view ir_text,
                                                              const CompileOptions& options) {
  ir::Module module;
  try {
    module = ir::parse_module(std::string(ir_text));
  } catch (const std::exception& e) {
    throw ParseError(e.what());
  }
  return compile(std::move(module), options);
}

std::shared_ptr<const CompiledModule> CompiledModule::compile(ir::Module module,
                                                              const CompileOptions& options) {
  // shared_ptr pins the artifact on the heap before decoding: the decoded
  // arrays keep interior pointers into module_, which a later move would
  // invalidate.
  std::shared_ptr<CompiledModule> cm(new CompiledModule());
  cm->module_ = std::move(module);
  cm->options_ = options;

  try {
    if (!options.estimates_text.empty()) {
      pass::apply_estimate_file(cm->module_, options.estimates_text);
    }
    ir::verify_module_or_throw(cm->module_);
  } catch (const std::exception& e) {
    throw VerifyError(e.what());
  }

  if (options.mode != api::Mode::kBaseline) {
    pass::PassOptions popts = options.pass_options;
    if (options.mode == api::Mode::kKendoSim) {
      // Kendo's counter counts retired instructions: updates land after the
      // counted work, never before (same forcing as the harness).
      popts.placement = pass::ClockPlacement::kEnd;
    }
    cm->pass_stats_ = pass::instrument_module(cm->module_, popts);
  }

  if (options.engine == interp::EngineKind::kDecoded ||
      options.engine == interp::EngineKind::kJit) {
    cm->decoded_ = std::make_unique<interp::DecodedModule>(interp::decode_module(cm->module_));
    interp::Engine::prepare_decoded_module(cm->module_, *cm->decoded_);
    if (options.engine == interp::EngineKind::kJit) {
      // Null on unsupported hosts: the artifact stays valid and every
      // engine degrades to the decoded arrays above.
      cm->jit_ = interp::jit::compile_module(*cm->decoded_);
    }
  }
  return cm;
}

}  // namespace detlock::service
