// Session: one connected detserved client, one reader thread.
//
// Wire protocol (docs/serving.md).  Requests are lines; JOB carries a raw
// body of exactly `nbytes` after its header line:
//
//   JOB <name> <nbytes> [key=value ...]\n<nbytes of textual IR>
//   STATS\n        PING\n        QUIT\n
//
// Every response is one newline-terminated JSON object (a frame), written
// under a per-session mutex so frames from concurrent worker threads never
// interleave.  Result frames stream per job as they finish -- there is no
// batch barrier and no ordering guarantee across jobs (clients correlate by
// "name"/"ticket").
//
// The reader polls with a short timeout instead of blocking in recv so it
// can notice server shutdown promptly; malformed JOB headers with a
// parseable byte count consume and discard the body to stay framed, while
// an unparseable byte count is unrecoverable (desync) and closes the
// connection after an error frame.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "service/admission.hpp"

namespace detlock::service {

class Server;

class Session {
 public:
  /// Takes ownership of `fd`.
  Session(Server& server, int fd, ClientId id);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  void start();  ///< spawns the reader thread
  void join();   ///< joins it (after shutdown() or reader exit)

  ClientId id() const { return id_; }

  /// Writes one frame (newline-terminated JSON line) to the socket.
  /// Thread-safe; returns false once the peer is gone (frame dropped).
  bool send_frame(const std::string& frame);

  /// Wakes the reader out of its poll and stops further I/O; send_frame
  /// becomes a no-op.  Idempotent.
  void shutdown();

  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  void reader_main();
  /// Next '\n'-terminated line (terminator stripped); false on EOF, error,
  /// or shutdown.
  bool read_line(std::string& line);
  /// Exactly `n` more payload bytes; same failure conditions.
  bool read_exact(std::string& out, std::size_t n);
  /// Refills rbuf_ from the socket (one poll + recv); false when done.
  bool fill();
  void handle_line(std::string_view line, bool& quit);
  void handle_job(const std::vector<std::string_view>& tokens);
  void close_fd();

  Server& server_;
  int fd_;
  const ClientId id_;
  std::thread thread_;
  std::mutex write_mutex_;
  std::atomic<bool> closed_{false};
  std::atomic<bool> stop_{false};
  std::string rbuf_;         // received, unconsumed bytes
  std::size_t rpos_ = 0;     // consumed prefix of rbuf_
};

}  // namespace detlock::service
