// ContextPool: warm ExecutionContext reuse across jobs.
//
// Compile-once (ModuleCache) removed parse/verify/instrument/decode from
// the per-request path; what remains is context setup -- constructing an
// ExecutionContext and validating its config against the module.  For
// ModuleCache hits the pool short-circuits that too: contexts parked by a
// finished job are handed to the next job over the same CompiledModule
// after a reset() that clears every per-job knob (observer, validator,
// chaos seed, memory hint) and drops the previous run's Engine.
//
// Correctness bar (tests/service/context_pool_test.cpp): a job executed on
// a reused context must produce fingerprints, counts, and schedules
// byte-identical to the same job on a fresh context -- no state may leak
// between jobs.  That holds by construction: all mutable run state lives in
// the per-run Engine, which reset() discards; the pool only preserves the
// (immutable, shared) module reference.
//
// Thread safety: acquire/release are mutex-protected; leases themselves are
// single-owner objects used by exactly one worker thread.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "api/run_config.hpp"
#include "service/execution_context.hpp"

namespace detlock::service {

class ContextPool {
 public:
  struct Options {
    /// Idle contexts retained per distinct CompiledModule.
    std::size_t max_idle_per_module = 8;
    /// Idle contexts retained across all modules (total warm memory bound).
    std::size_t max_idle_total = 64;
  };

  /// RAII lease: returns the context to the pool on destruction.  Also the
  /// unpooled adapter -- a lease constructed directly from a context (no
  /// pool) simply owns and destroys it, so BatchExecutor::execute has one
  /// code path.
  class Lease {
   public:
    explicit Lease(std::unique_ptr<ExecutionContext> ctx)
        : ctx_(std::move(ctx)), pool_(nullptr), reused_(false) {}
    Lease(std::unique_ptr<ExecutionContext> ctx, ContextPool* pool, bool reused)
        : ctx_(std::move(ctx)), pool_(pool), reused_(reused) {}
    ~Lease();

    Lease(Lease&& other) noexcept
        : ctx_(std::move(other.ctx_)), pool_(other.pool_), reused_(other.reused_) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    ExecutionContext& operator*() { return *ctx_; }
    ExecutionContext* operator->() { return ctx_.get(); }
    /// True when this lease handed back a warm (reset) context rather than
    /// constructing a fresh one.
    bool reused() const { return reused_; }

   private:
    std::unique_ptr<ExecutionContext> ctx_;
    ContextPool* pool_;
    bool reused_;
  };

  ContextPool() : ContextPool(Options{}) {}
  explicit ContextPool(Options options);

  /// A context over `module`, reset to `config`: warm if one is parked for
  /// this module, freshly constructed otherwise.
  Lease acquire(std::shared_ptr<const CompiledModule> module, const api::RunConfig& config);

  struct Stats {
    std::uint64_t created = 0;   ///< fresh constructions (pool misses)
    std::uint64_t reused = 0;    ///< warm acquisitions (pool hits)
    std::uint64_t dropped = 0;   ///< releases discarded by the idle bounds
    std::size_t idle = 0;        ///< contexts parked right now
    std::size_t in_use = 0;      ///< leases outstanding right now
  };
  Stats stats() const;

 private:
  friend class Lease;
  void release(std::unique_ptr<ExecutionContext> ctx);

  const Options options_;
  mutable std::mutex mutex_;
  /// Idle contexts keyed by module identity (the shared_ptr the context
  /// itself holds keeps the artifact alive while parked).
  std::unordered_map<const CompiledModule*, std::vector<std::unique_ptr<ExecutionContext>>> idle_;
  std::size_t idle_count_ = 0;
  std::size_t in_use_ = 0;
  std::uint64_t created_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace detlock::service
