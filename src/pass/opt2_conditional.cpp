#include "pass/opt2_conditional.hpp"

#include <algorithm>

#include "analysis/loops.hpp"

namespace detlock::pass {

namespace {

using analysis::Cfg;
using ir::BlockId;

/// Shared context for one function's Opt2 run.
struct Opt2Context {
  const ir::Function& func;
  FunctionClocks& clocks;
  Cfg cfg;
  analysis::DominatorTree domtree;
  analysis::LoopInfo loops;

  Opt2Context(const ir::Function& f, FunctionClocks& c)
      : func(f), clocks(c), cfg(f), domtree(cfg), loops(cfg, domtree) {}

  bool movable(BlockId b) const { return clocks[b].movable(); }
};

// ---- part a ---------------------------------------------------------------

bool meets_cond_node_requirements(const Opt2Context& ctx, BlockId bb) {
  const auto& succs = ctx.cfg.successors(bb);
  if (succs.size() < 2) return false;
  if (!ctx.movable(bb)) return false;
  for (BlockId s : succs) {
    if (s == bb) return false;
    if (!ctx.movable(s)) return false;
    // "the successors are not merge blocks": unique predecessor bb, so every
    // entry into s comes directly out of bb and the subtraction is precise.
    if (ctx.cfg.predecessors(s).size() != 1) return false;
  }
  return true;
}

bool meets_merge_node_requirements(const Opt2Context& ctx, BlockId bb) {
  const auto& preds = ctx.cfg.predecessors(bb);
  if (preds.size() < 2) return false;
  if (ctx.loops.is_loop_header(bb)) return false;
  if (!ctx.movable(bb)) return false;
  for (BlockId p : preds) {
    if (p == bb) return false;
    if (!ctx.movable(p)) return false;
    // Every predecessor exits only into bb, so charging them bb's clock is
    // precise.
    if (ctx.cfg.successors(p).size() != 1) return false;
  }
  return true;
}

void push_clock_up(Opt2Context& ctx, BlockId merge_block, std::size_t& moves) {
  const std::int64_t clock = ctx.clocks[merge_block].clock;
  if (clock == 0) return;
  ctx.clocks[merge_block].clock = 0;
  ++moves;
  for (BlockId p : ctx.cfg.predecessors(merge_block)) {
    ctx.clocks[p].clock += clock;
    if (meets_merge_node_requirements(ctx, p)) push_clock_up(ctx, p, moves);
  }
}

/// One DFS sweep (paper Fig. 6 updateOpt2aClocks); returns number of moves.
std::size_t opt2a_sweep(Opt2Context& ctx) {
  std::size_t moves = 0;
  std::vector<bool> visited(ctx.func.num_blocks(), false);
  std::vector<BlockId> stack{ir::Function::kEntry};
  while (!stack.empty()) {
    const BlockId bb = stack.back();
    stack.pop_back();
    if (visited[bb]) continue;
    visited[bb] = true;

    if (meets_cond_node_requirements(ctx, bb)) {
      const auto& succs = ctx.cfg.successors(bb);
      std::int64_t min_clock = ctx.clocks[succs.front()].clock;
      for (BlockId s : succs) min_clock = std::min(min_clock, ctx.clocks[s].clock);
      if (min_clock > 0) {
        ctx.clocks[bb].clock += min_clock;
        for (BlockId s : succs) ctx.clocks[s].clock -= min_clock;
        ++moves;
      }
    } else if (meets_merge_node_requirements(ctx, bb)) {
      push_clock_up(ctx, bb, moves);
    }

    for (BlockId s : ctx.cfg.successors(bb)) {
      if (!visited[s]) stack.push_back(s);
    }
  }
  return moves;
}

// ---- part b ---------------------------------------------------------------

struct Opt2bPattern {
  BlockId upper = 0;   // U (paper: if.end21)
  BlockId middle = 0;  // M / swSucc (paper: lor.lhs.false23)
  BlockId lower = 0;   // L / endSucc (paper: if.then28)
  bool middle_branches = false;  // M has a second successor E (approx case)
};

bool meets_opt2b_requirements(const Opt2Context& ctx, BlockId upper, Opt2bPattern* out) {
  const auto& succs = ctx.cfg.successors(upper);
  if (succs.size() != 2) return false;
  if (!ctx.movable(upper)) return false;
  for (int flip = 0; flip < 2; ++flip) {
    const BlockId middle = succs[flip];
    const BlockId lower = succs[1 - flip];
    if (middle == upper || lower == upper || middle == lower) continue;
    if (!ctx.movable(middle) || !ctx.movable(lower)) continue;
    // M is entered only through U.
    if (ctx.cfg.predecessors(middle).size() != 1) continue;
    const auto& mid_succs = ctx.cfg.successors(middle);
    if (std::find(mid_succs.begin(), mid_succs.end(), lower) == mid_succs.end()) continue;
    if (mid_succs.size() > 2) continue;
    // L is entered only from U and M (required for the up-move to be
    // accounted at most once per execution).
    const auto& low_preds = ctx.cfg.predecessors(lower);
    if (low_preds.size() != 2) continue;
    if (!((low_preds[0] == upper && low_preds[1] == middle) ||
          (low_preds[0] == middle && low_preds[1] == upper))) {
      continue;
    }
    out->upper = upper;
    out->middle = middle;
    out->lower = lower;
    out->middle_branches = mid_succs.size() == 2;
    return true;
  }
  return false;
}

/// Applies the clock move for one matched pattern; returns true if a
/// (nonzero) move happened.
bool apply_opt2b(Opt2Context& ctx, const Opt2bPattern& pattern, const PassOptions& options) {
  BlockClockInfo& upper = ctx.clocks[pattern.upper];
  BlockClockInfo& middle = ctx.clocks[pattern.middle];
  BlockClockInfo& lower = ctx.clocks[pattern.lower];

  // Direction per the paper's three rules.
  bool move_down = false;  // default: lift L's clock into U (ahead of time)
  if (ctx.loops.loop_depth(pattern.upper) > ctx.loops.loop_depth(pattern.lower)) {
    move_down = true;  // hot upper block: remove its update
  } else if (lower.clock > upper.clock && pattern.middle_branches) {
    move_down = true;  // the larger value moving up would diverge more
  }

  const std::int64_t moved = move_down ? upper.clock : lower.clock;
  if (moved == 0) return false;

  if (pattern.middle_branches) {
    // Executions taking U -> M -> E mis-count by `moved`.
    const double denom = static_cast<double>(upper.clock + middle.clock);
    if (denom <= 0.0) return false;
    const double divergence = static_cast<double>(moved) / denom;
    if (divergence >= options.opt2b_max_divergence) return false;
  }
  // else: M's only successor is L -- every path through U reaches L exactly
  // once, the move is precise (paper: "That optimization, like part a,
  // would have been precise").

  if (move_down) {
    lower.clock += upper.clock;
    upper.clock = 0;
  } else {
    upper.clock += lower.clock;
    lower.clock = 0;
  }
  return true;
}

std::size_t opt2b_sweep(Opt2Context& ctx, const PassOptions& options) {
  std::size_t moves = 0;
  std::vector<bool> visited(ctx.func.num_blocks(), false);
  std::vector<BlockId> stack{ir::Function::kEntry};
  while (!stack.empty()) {
    const BlockId bb = stack.back();
    stack.pop_back();
    if (visited[bb]) continue;
    visited[bb] = true;

    Opt2bPattern pattern;
    if (meets_opt2b_requirements(ctx, bb, &pattern)) {
      if (apply_opt2b(ctx, pattern, options)) ++moves;
      // Paper Fig. 9: continue from the merge block and from M's other
      // successors; the generic successor push below visits exactly those.
    }
    for (BlockId s : ctx.cfg.successors(bb)) {
      if (!visited[s]) stack.push_back(s);
    }
  }
  return moves;
}

}  // namespace

std::size_t run_opt2a(const ir::Module& module, ClockAssignment& assignment, ir::FuncId func) {
  Opt2Context ctx(module.function(func), assignment.funcs[func]);
  // Paper Fig. 6 applyOpt2a: repeat the sweep until nothing moves.
  std::size_t total = 0;
  while (true) {
    const std::size_t moves = opt2a_sweep(ctx);
    total += moves;
    if (moves == 0) break;
  }
  return total;
}

std::size_t run_opt2b(const ir::Module& module, ClockAssignment& assignment, ir::FuncId func,
                      const PassOptions& options) {
  Opt2Context ctx(module.function(func), assignment.funcs[func]);
  return opt2b_sweep(ctx, options);
}

std::pair<std::size_t, std::size_t> run_opt2(const ir::Module& module, ClockAssignment& assignment,
                                             const PassOptions& options) {
  std::size_t a = 0;
  std::size_t b = 0;
  for (ir::FuncId f = 0; f < module.functions().size(); ++f) {
    if (assignment.is_clocked(f)) continue;
    a += run_opt2a(module, assignment, f);
    b += run_opt2b(module, assignment, f, options);
  }
  return {a, b};
}

}  // namespace detlock::pass
