// Optimization 1: Function Clocking (paper Sec. IV-A, Fig. 4).
//
// A function is *clockable* when its whole-body cost can be summarized by
// one number charged at every call site: the callee's own clock updates are
// removed and the mean path cost is folded into the calling block.  Besides
// reducing update sites, this advances the clock maximally ahead of time --
// the entire function is accounted before its first instruction runs, which
// is what lets DetLock beat Kendo on lock-heavy Radiosity (Sec. V-B).
//
// Clockability (isClockable): the function has no loops, calls only already-
// clocked functions or statically-estimated externs, and its per-path cost
// spread passes the paper's criteria (range <= mean/2.5, stddev <= mean/5).
// The fixed point (updateClockableFuncList) keeps sweeping until no function
// is added, so non-leaf functions whose callees became clocked are clocked
// too.
//
// Additional soundness conditions this implementation enforces (implicit in
// the paper's setting):
//  * no synchronization operations -- a clocked body must be a pure
//    function of control flow, and hoisting cost across a lock would change
//    the clock the lock attempt uses;
//  * not a spawn target -- a spawned function runs on another thread, so
//    charging its cost to the spawner would both double-count and leave the
//    child's clock frozen;
//  * has at least one caller -- otherwise removing its clocks means nobody
//    ever accounts for them.
#pragma once

#include "analysis/call_graph.hpp"
#include "pass/clock_assignment.hpp"
#include "pass/options.hpp"

namespace detlock::pass {

/// Tests one function against the current clocked set.  On success stores
/// the mean path cost (rounded) in *avg.
bool is_clockable(const ir::Module& module, const ClockAssignment& assignment,
                  const analysis::CallGraph& call_graph, ir::FuncId func, const PassOptions& options,
                  std::int64_t* avg);

/// The fixed-point sweep: fills assignment.clocked_functions.
void run_function_clocking(const ir::Module& module, ClockAssignment& assignment, const PassOptions& options);

}  // namespace detlock::pass
