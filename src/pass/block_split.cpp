#include "pass/block_split.hpp"

namespace detlock::pass {

bool is_region_boundary(const ir::Module& module, const ClockAssignment& assignment, const ir::Instr& instr) {
  switch (instr.op) {
    case ir::Opcode::kCall:
      return !assignment.is_clocked(instr.callee);
    case ir::Opcode::kCallExtern:
      // Statically estimated externs fold into the region; dynamic ones are
      // handled by a pinned kClockAddDyn and do not split.  Only unclocked
      // externs are opaque.
      return !module.extern_decl(instr.callee).estimate.has_value();
    default:
      // Registry-driven: every sync primitive is a region boundary -- that
      // includes the atomics and fences, which consume a turn and therefore
      // end the clocked region exactly like a lock does.
      return ir::is_sync_op(instr.op);
  }
}

std::size_t split_function_at_boundaries(ir::Module& module, const ClockAssignment& assignment, ir::FuncId func) {
  ir::Function& f = module.function(func);
  std::size_t splits = 0;
  // Appending blocks while iterating: new blocks are themselves scanned
  // (they may contain further boundaries), which the index loop handles
  // naturally since add_block only appends.
  for (ir::BlockId b = 0; b < f.num_blocks(); ++b) {
    std::vector<ir::Instr>& instrs = f.block(b).instrs();
    // Find the first boundary that is not already at position 0.
    std::size_t split_at = instrs.size();
    for (std::size_t i = 1; i < instrs.size(); ++i) {
      if (is_region_boundary(module, assignment, instrs[i])) {
        split_at = i;
        break;
      }
    }
    if (split_at == instrs.size()) continue;

    const ir::BlockId tail = f.add_block(f.block(b).name() + ".split" + std::to_string(splits));
    // NOTE: add_block may invalidate the `instrs` reference (vector growth);
    // re-acquire through the function.
    std::vector<ir::Instr>& head_instrs = f.block(b).instrs();
    std::vector<ir::Instr>& tail_instrs = f.block(tail).instrs();
    tail_instrs.assign(head_instrs.begin() + static_cast<std::ptrdiff_t>(split_at), head_instrs.end());
    head_instrs.erase(head_instrs.begin() + static_cast<std::ptrdiff_t>(split_at), head_instrs.end());
    head_instrs.push_back(ir::Instr::make_br(tail));
    ++splits;
  }
  return splits;
}

std::size_t split_module_at_boundaries(ir::Module& module, const ClockAssignment& assignment) {
  std::size_t splits = 0;
  for (ir::FuncId f = 0; f < module.functions().size(); ++f) {
    if (assignment.is_clocked(f)) continue;  // body keeps no clocks; no need to split
    splits += split_function_at_boundaries(module, assignment, f);
  }
  return splits;
}

}  // namespace detlock::pass
