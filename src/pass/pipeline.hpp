// The DetLock instrumentation pipeline (paper Fig. 1: the pass between LLVM
// IR and the backend).
//
// Order of phases:
//   1. Opt1 fixed point        -> set of clocked functions (if enabled)
//   2. block splitting          -> every boundary instruction leads a block
//   3. initial clock assignment -> clock(b) = exact cost of b
//   4. Opt2a -> Opt2b -> Opt3 -> Opt4 (each if enabled)
//   5. materialization          -> kClockAdd / kClockAddDyn instructions
//
// instrument_module() mutates the module in place and returns statistics
// (Table I's "Clockable Functions" row and the per-opt reduction counts the
// benches report).  compute_assignment() stops after phase 4, which is what
// the unit tests and the conservation checker inspect.
#pragma once

#include "pass/clock_assignment.hpp"
#include "pass/materialize.hpp"
#include "pass/options.hpp"

namespace detlock::pass {

struct PipelineStats {
  std::size_t clocked_functions = 0;
  std::size_t block_splits = 0;
  std::size_t opt2a_moves = 0;
  std::size_t opt2b_moves = 0;
  std::size_t opt3_regions = 0;
  std::size_t opt4_merges = 0;
  /// Blocks with a nonzero clock before/after the optimizations: the
  /// "amount of clock updating code" the paper's optimizations minimize.
  std::size_t clock_sites_initial = 0;
  std::size_t clock_sites_final = 0;
  MaterializeStats materialized;
};

/// Phases 1-4; fills `assignment`, mutates `module` (block splitting only).
PipelineStats compute_assignment(ir::Module& module, const PassOptions& options, ClockAssignment& assignment);

/// Full pipeline including materialization; verifies the module afterwards.
PipelineStats instrument_module(ir::Module& module, const PassOptions& options);

/// Variant that also exposes the final assignment (benches and tests).
PipelineStats instrument_module(ir::Module& module, const PassOptions& options, ClockAssignment& assignment);

}  // namespace detlock::pass
