// Options controlling the DetLock instrumentation pipeline.
//
// Table I's six rows are exactly the combinations none() / only-O1 / only-O2
// / only-O3 / only-O4 / all(); Fig. 15's third bar is all-O1 with
// placement=kEnd.
#pragma once

#include "ir/cost_model.hpp"
#include "support/stats.hpp"

namespace detlock::pass {

enum class ClockPlacement {
  /// Update at the start of each clock region: the paper's default, which
  /// advances clocks *before* the counted instructions execute (Sec. III-A's
  /// ahead-of-time principle).
  kStart,
  /// Update at the end of each region: the strawman of Fig. 15 (and the
  /// behaviour forced on Kendo by after-retirement counters).
  kEnd,
};

struct PassOptions {
  bool opt1_function_clocking = false;
  bool opt2_conditional = false;  // both 2a and 2b
  bool opt3_averaging = false;
  bool opt4_loops = false;

  ClockPlacement placement = ClockPlacement::kStart;

  /// Shared clockability test for Opt1 and Opt3 (paper constants 2.5 / 5).
  ClockabilityCriteria criteria;
  /// Opt2b proceeds when the introduced divergence is below this (paper:
  /// "if the divergence is less than one tenth").
  double opt2b_max_divergence = 0.1;
  /// Opt4 merges a latch's clock into its header only below this ("less
  /// than a certain threshold value"; the paper does not publish the
  /// constant, the ablation bench sweeps it).
  std::int64_t opt4_threshold = 16;

  ir::CostModel cost_model;

  static PassOptions none() { return {}; }

  static PassOptions all() {
    PassOptions o;
    o.opt1_function_clocking = true;
    o.opt2_conditional = true;
    o.opt3_averaging = true;
    o.opt4_loops = true;
    return o;
  }

  static PassOptions only_opt1() {
    PassOptions o;
    o.opt1_function_clocking = true;
    return o;
  }
  static PassOptions only_opt2() {
    PassOptions o;
    o.opt2_conditional = true;
    return o;
  }
  static PassOptions only_opt3() {
    PassOptions o;
    o.opt3_averaging = true;
    return o;
  }
  static PassOptions only_opt4() {
    PassOptions o;
    o.opt4_loops = true;
    return o;
  }
};

}  // namespace detlock::pass
