// Clock assignment: the mutable state the DetLock pass pipeline operates on.
//
// Between block splitting and materialization, clocks live in this side
// table rather than as instructions; the four optimizations move/zero the
// per-block values, and materialization finally emits kClockAdd only where
// a nonzero value remains.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/module.hpp"

namespace detlock::pass {

using ir::BlockId;
using ir::FuncId;

struct BlockClockInfo {
  /// Clock value to materialize for this block (moved around by opts).
  std::int64_t clock = 0;
  /// Exact cost of the block: instruction costs + static estimates of calls
  /// to clocked callees.  Never changed by opts; the conservation checker
  /// compares accumulated `clock` against accumulated `original_cost`.
  std::int64_t original_cost = 0;
  /// Block begins with a call to a function that updates its own clocks (or
  /// an unclocked extern).  Optimizations must not treat this block's cost
  /// as a complete description of what executing it adds to the clock.
  bool has_unclocked_call = false;
  /// Block contains a call to an extern with a size-dependent estimate; its
  /// true cost is runtime-dependent, so it is pinned (conservatively
  /// excluded from every optimization).
  bool has_dynamic_estimate = false;
  /// Block begins with a synchronization operation.  Clock regions never
  /// span a sync op: a thread's clock at a lock attempt must reflect only
  /// work before the lock (matching Kendo's accounting).
  bool has_sync = false;

  /// True when optimizations may freely move this block's clock.
  bool movable() const { return !has_unclocked_call && !has_dynamic_estimate && !has_sync; }
};

struct FunctionClocks {
  std::vector<BlockClockInfo> blocks;  // indexed by BlockId

  BlockClockInfo& operator[](BlockId b) { return blocks[b]; }
  const BlockClockInfo& operator[](BlockId b) const { return blocks[b]; }

  std::int64_t total_assigned() const {
    std::int64_t sum = 0;
    for (const BlockClockInfo& b : blocks) sum += b.clock;
    return sum;
  }

  std::size_t nonzero_sites() const {
    std::size_t n = 0;
    for (const BlockClockInfo& b : blocks) {
      if (b.clock != 0) ++n;
    }
    return n;
  }
};

struct ClockAssignment {
  /// Per-function block clocks; clocked (Opt1) functions have empty
  /// per-block clocks and appear in clocked_functions instead.
  std::vector<FunctionClocks> funcs;  // indexed by FuncId

  /// Functions whose whole-body cost is charged at call sites: FuncId ->
  /// mean path cost (paper Fig. 4's clockableList).
  std::unordered_map<FuncId, std::int64_t> clocked_functions;

  bool is_clocked(FuncId f) const { return clocked_functions.count(f) != 0; }
};

}  // namespace detlock::pass
