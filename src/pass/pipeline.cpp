#include "pass/pipeline.hpp"

#include "support/error.hpp"

#include "ir/verifier.hpp"
#include "pass/block_split.hpp"
#include "pass/costs.hpp"
#include "pass/function_clocking.hpp"
#include "pass/opt2_conditional.hpp"
#include "pass/opt3_averaging.hpp"
#include "pass/opt4_loops.hpp"

namespace detlock::pass {

namespace {

std::size_t count_clock_sites(const ir::Module& module, const ClockAssignment& assignment) {
  std::size_t sites = 0;
  for (ir::FuncId f = 0; f < module.functions().size(); ++f) {
    if (assignment.is_clocked(f)) continue;
    sites += assignment.funcs[f].nonzero_sites();
  }
  return sites;
}

}  // namespace

PipelineStats compute_assignment(ir::Module& module, const PassOptions& options, ClockAssignment& assignment) {
  PipelineStats stats;

  // Refuse already-instrumented input: kClockAdd costs 0 in the cost model,
  // so a second pass would silently insert a second layer of updates and
  // every thread's clock would run twice as fast as its instruction count.
  for (const ir::Function& f : module.functions()) {
    for (const ir::BasicBlock& b : f.blocks()) {
      for (const ir::Instr& i : b.instrs()) {
        DETLOCK_CHECK(!ir::is_clock_update(i.op),
                      "module already instrumented (clock update in @" + f.name() + ")");
      }
    }
  }

  if (options.opt1_function_clocking) {
    run_function_clocking(module, assignment, options);
    stats.clocked_functions = assignment.clocked_functions.size();
  }

  stats.block_splits = split_module_at_boundaries(module, assignment);
  compute_initial_assignment(module, assignment, options.cost_model);
  stats.clock_sites_initial = count_clock_sites(module, assignment);

  if (options.opt2_conditional) {
    const auto [a, b] = run_opt2(module, assignment, options);
    stats.opt2a_moves = a;
    stats.opt2b_moves = b;
  }
  if (options.opt3_averaging) {
    stats.opt3_regions = run_opt3(module, assignment, options);
  }
  if (options.opt4_loops) {
    stats.opt4_merges = run_opt4(module, assignment, options);
  }

  stats.clock_sites_final = count_clock_sites(module, assignment);
  return stats;
}

PipelineStats instrument_module(ir::Module& module, const PassOptions& options, ClockAssignment& assignment) {
  PipelineStats stats = compute_assignment(module, options, assignment);
  stats.materialized = materialize_clocks(module, assignment, options.placement);
  ir::verify_module_or_throw(module);
  return stats;
}

PipelineStats instrument_module(ir::Module& module, const PassOptions& options) {
  ClockAssignment assignment;
  return instrument_module(module, options, assignment);
}

}  // namespace detlock::pass
