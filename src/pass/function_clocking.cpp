#include "pass/function_clocking.hpp"

#include <cmath>

#include "analysis/loops.hpp"
#include "analysis/paths.hpp"
#include "pass/costs.hpp"

namespace detlock::pass {

namespace {

/// Spawn targets: functions launched as threads anywhere in the module.
std::vector<bool> collect_spawn_targets(const ir::Module& module) {
  std::vector<bool> is_target(module.functions().size(), false);
  for (const ir::Function& f : module.functions()) {
    for (const ir::BasicBlock& b : f.blocks()) {
      for (const ir::Instr& i : b.instrs()) {
        if (i.op == ir::Opcode::kSpawn) is_target[i.callee] = true;
      }
    }
  }
  return is_target;
}

}  // namespace

bool is_clockable(const ir::Module& module, const ClockAssignment& assignment,
                  const analysis::CallGraph& call_graph, ir::FuncId func, const PassOptions& options,
                  std::int64_t* avg) {
  const ir::Function& f = module.function(func);
  if (call_graph.has_sync_ops(func)) return false;
  if (call_graph.callers(func).empty()) return false;

  const analysis::Cfg cfg(f);
  {
    const analysis::DominatorTree domtree(cfg);
    const analysis::LoopInfo loops(cfg, domtree);
    if (loops.has_loops()) return false;  // paper: hasLoops(f)
  }

  // Per-block costs under the current clocked set; any opaque block makes
  // the function unclockable (paper: hasUnclockedFunctions(f)).
  std::vector<std::int64_t> block_cost(f.num_blocks(), 0);
  for (ir::BlockId b = 0; b < f.num_blocks(); ++b) {
    if (!cfg.reachable(b)) continue;
    const BlockClockInfo info = analyze_block(module, assignment, f.block(b), options.cost_model);
    if (info.has_unclocked_call || info.has_dynamic_estimate || info.has_sync) return false;
    block_cost[b] = info.original_cost;
  }

  const analysis::PathStatsResult stats =
      analysis::function_path_stats(cfg, [&](ir::BlockId b) { return block_cost[b]; });
  // The valid-check must precede any mean/range query: an empty path set has
  // no defined extrema (see RunningStats::min() in support/stats.hpp for the
  // same contract).
  if (!stats.valid) return false;
  if (!options.criteria.accepts(stats.mean, stats.stddev, stats.range())) return false;
  *avg = static_cast<std::int64_t>(std::llround(stats.mean));
  return true;
}

void run_function_clocking(const ir::Module& module, ClockAssignment& assignment, const PassOptions& options) {
  const analysis::CallGraph call_graph(module);
  const std::vector<bool> spawn_target = collect_spawn_targets(module);

  // Paper Fig. 4 updateClockableFuncList: greedy fixed point.  Each sweep
  // can only clock functions whose callees were clocked in earlier sweeps,
  // so at most |functions| sweeps run.
  bool modified = true;
  while (modified) {
    modified = false;
    for (ir::FuncId f = 0; f < module.functions().size(); ++f) {
      if (assignment.is_clocked(f) || spawn_target[f]) continue;
      std::int64_t avg = 0;
      if (is_clockable(module, assignment, call_graph, f, options, &avg)) {
        assignment.clocked_functions.emplace(f, avg);
        modified = true;
      }
    }
  }
}

}  // namespace detlock::pass
