#include "pass/materialize.hpp"

#include "pass/block_split.hpp"
#include "support/error.hpp"

namespace detlock::pass {

MaterializeStats materialize_clocks(ir::Module& module, const ClockAssignment& assignment,
                                    ClockPlacement placement) {
  MaterializeStats stats;
  for (ir::FuncId f = 0; f < module.functions().size(); ++f) {
    if (assignment.is_clocked(f)) continue;
    ir::Function& func = module.function(f);
    const FunctionClocks& clocks = assignment.funcs[f];
    DETLOCK_CHECK(clocks.blocks.size() == func.num_blocks(), "assignment out of sync with module");

    for (ir::BlockId b = 0; b < func.num_blocks(); ++b) {
      const BlockClockInfo& info = clocks[b];
      DETLOCK_CHECK(info.clock >= 0, "negative clock assignment");
      const std::vector<ir::Instr>& old_instrs = func.block(b).instrs();
      std::vector<ir::Instr> out;
      out.reserve(old_instrs.size() + 2);

      // Static update insertion index (over the ORIGINAL instruction list).
      std::size_t static_at = old_instrs.size();  // none
      if (info.clock > 0) {
        if (placement == ClockPlacement::kStart) {
          static_at = 0;
          if (!old_instrs.empty() && is_region_boundary(module, assignment, old_instrs.front())) {
            static_at = 1;
          }
        } else {
          // Before the terminator (blocks always have one post-verifier).
          static_at = old_instrs.empty() ? 0 : old_instrs.size() - 1;
        }
      }

      for (std::size_t i = 0; i < old_instrs.size(); ++i) {
        if (i == static_at) {
          out.push_back(ir::Instr::make_clock_add(info.clock));
          ++stats.clock_add_sites;
        }
        const ir::Instr& instr = old_instrs[i];
        if (instr.op == ir::Opcode::kCallExtern) {
          const ir::ExternDecl& decl = module.extern_decl(instr.callee);
          if (decl.estimate.has_value() && decl.estimate->is_dynamic()) {
            ir::Instr dyn;
            dyn.op = ir::Opcode::kClockAddDyn;
            dyn.imm = decl.estimate->base;
            dyn.fimm = decl.estimate->per_unit;
            dyn.a = instr.args[decl.estimate->size_arg_index];
            out.push_back(std::move(dyn));
            ++stats.clock_dyn_sites;
          }
        }
        out.push_back(instr);
      }
      if (static_at == old_instrs.size() && info.clock > 0) {
        // Degenerate: empty block (verifier forbids, but stay safe).
        out.push_back(ir::Instr::make_clock_add(info.clock));
        ++stats.clock_add_sites;
      }
      func.block(b).instrs() = std::move(out);
    }
  }
  return stats;
}

}  // namespace detlock::pass
