// Materialization: turning the clock assignment into kClockAdd /
// kClockAddDyn instructions in the IR.
//
// Placement kStart inserts each block's update at the earliest legal point
// (index 0, or right after the block's leading boundary instruction), so
// the clock is advanced before the counted instructions execute; kEnd
// inserts before the terminator (the Fig. 15 strawman).  Size-dependent
// extern estimates always materialize as a kClockAddDyn immediately before
// the call -- the size argument is live there, and the update still runs
// ahead of the extern's work.
#pragma once

#include "pass/clock_assignment.hpp"
#include "pass/options.hpp"

namespace detlock::pass {

struct MaterializeStats {
  std::size_t clock_add_sites = 0;
  std::size_t clock_dyn_sites = 0;
};

MaterializeStats materialize_clocks(ir::Module& module, const ClockAssignment& assignment,
                                    ClockPlacement placement);

}  // namespace detlock::pass
