// Clock-conservation checker.
//
// The optimizations trade exactness for fewer/earlier updates; this tool
// quantifies what they actually gave up.  It simulates random control-flow
// walks through a function, accumulating both the assigned clocks and the
// exact original costs, and reports the relative divergence.  Property
// tests assert that:
//   * with only precise transformations (Opt2a, Opt2b's precise case) the
//     divergence is exactly zero, and
//   * with all optimizations it stays within a small factor of the paper's
//     acceptance thresholds.
#pragma once

#include <cstdint>

#include "pass/clock_assignment.hpp"

namespace detlock::pass {

struct DivergenceReport {
  std::size_t walks = 0;
  double max_relative = 0.0;
  double mean_relative = 0.0;
  std::int64_t max_absolute = 0;
};

/// Random-walks `walks` executions of `func` (each at most `max_steps`
/// blocks, branches chosen uniformly with the given seed) and compares
/// accumulated assigned clocks against accumulated original costs.
/// Both sides account calls identically (clocked callees via their call-site
/// estimate), so the report isolates divergence introduced by Opt2/3/4.
DivergenceReport sample_clock_divergence(const ir::Module& module, const ClockAssignment& assignment,
                                         ir::FuncId func, std::size_t walks = 256,
                                         std::size_t max_steps = 4096, std::uint64_t seed = 1);

}  // namespace detlock::pass
