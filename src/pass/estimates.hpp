// Instruction-estimate file (paper Sec. III-B).
//
// "We provide a text file (instructions estimate file) ... where these
// functions can be defined with the approximate number of instructions they
// take along with their dependency on input parameters."
//
// Format, one extern per line ('#' comments):
//   <name> <base>                      # fixed-cost built-in, e.g. "sin 40"
//   <name> <base> <per_unit> <arg_ix>  # size-dependent, e.g. "memset 10 1.0 2"
// Unlisted externs remain unclocked (the paper's "one way is to ignore
// them").
#pragma once

#include <string_view>

#include "ir/module.hpp"

namespace detlock::pass {

/// Parses the estimate text and applies it to matching extern declarations
/// in the module.  Returns the number of externs whose estimate was set.
/// Entries naming unknown externs are ignored (estimate files are shared
/// across programs that use different library subsets).
std::size_t apply_estimate_file(ir::Module& module, std::string_view text);

}  // namespace detlock::pass
