#include "pass/conservation.hpp"

#include <cmath>
#include <cstdlib>

#include "analysis/cfg.hpp"
#include "support/prng.hpp"

namespace detlock::pass {

DivergenceReport sample_clock_divergence(const ir::Module& module, const ClockAssignment& assignment,
                                         ir::FuncId func, std::size_t walks, std::size_t max_steps,
                                         std::uint64_t seed) {
  const ir::Function& f = module.function(func);
  const FunctionClocks& clocks = assignment.funcs[func];
  const analysis::Cfg cfg(f);
  Xoshiro256 prng(seed);

  DivergenceReport report;
  double relative_sum = 0.0;
  for (std::size_t w = 0; w < walks; ++w) {
    std::int64_t assigned = 0;
    std::int64_t exact = 0;
    ir::BlockId block = ir::Function::kEntry;
    for (std::size_t step = 0; step < max_steps; ++step) {
      assigned += clocks[block].clock;
      exact += clocks[block].original_cost;
      const auto& succs = cfg.successors(block);
      if (succs.empty()) break;  // ret
      block = succs[prng.next_below(succs.size())];
    }
    const std::int64_t abs_div = std::llabs(assigned - exact);
    const double rel = static_cast<double>(abs_div) / static_cast<double>(std::max<std::int64_t>(exact, 1));
    relative_sum += rel;
    if (rel > report.max_relative) report.max_relative = rel;
    if (abs_div > report.max_absolute) report.max_absolute = abs_div;
    ++report.walks;
  }
  if (report.walks > 0) report.mean_relative = relative_sum / static_cast<double>(report.walks);
  return report;
}

}  // namespace detlock::pass
