// Block splitting around clock-region boundaries.
//
// Paper Sec. III-A: "If there is a function call inside that block, we split
// that block, such that each block either contains no function call or
// starts and ends with a function call. ... By splitting blocks in such a
// way, we can more easily apply optimizations."
//
// A *boundary* instruction is one across which a single static clock value
// cannot account for the block: a call to a function that maintains its own
// clocks (not Opt1-clocked, no extern estimate), or a synchronization
// operation (the thread's clock at a lock attempt must reflect only work
// before the lock).  Splitting places every boundary instruction first in
// its own block, so downstream passes reason purely per-block.
//
// Calls to clocked functions and estimated externs are NOT boundaries --
// their cost folds into the surrounding region (paper Fig. 5: "no splitting
// of the block is done and the mean number of instructions ... are added to
// the clock").
#pragma once

#include "pass/clock_assignment.hpp"
#include "pass/options.hpp"

namespace detlock::pass {

/// True when `instr` starts a new clock region.
bool is_region_boundary(const ir::Module& module, const ClockAssignment& assignment, const ir::Instr& instr);

/// Splits every reachable block of `func` so each boundary instruction is
/// the first instruction of its block.  Appends new blocks (existing
/// BlockIds remain valid).  Returns the number of splits performed.
std::size_t split_function_at_boundaries(ir::Module& module, const ClockAssignment& assignment, ir::FuncId func);

/// Applies split_function_at_boundaries to every function that will be
/// instrumented (i.e. not Opt1-clocked).
std::size_t split_module_at_boundaries(ir::Module& module, const ClockAssignment& assignment);

}  // namespace detlock::pass
