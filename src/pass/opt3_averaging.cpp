#include "pass/opt3_averaging.hpp"

#include <cmath>

#include "analysis/loops.hpp"
#include "analysis/paths.hpp"

namespace detlock::pass {

namespace {

using analysis::Cfg;
using ir::BlockId;

struct Opt3Context {
  const ir::Function& func;
  FunctionClocks& clocks;
  const PassOptions& options;
  Cfg cfg;
  analysis::DominatorTree domtree;
  analysis::LoopInfo loops;

  Opt3Context(const ir::Function& f, FunctionClocks& c, const PassOptions& o)
      : func(f), clocks(c), options(o), cfg(f), domtree(cfg), loops(cfg, domtree) {}
};

/// Grows the averaging region for candidate root `b`.  Returns the region
/// membership vector, or an empty vector when the candidate is not viable.
///
/// A block x in the region is *expanded* (its successors join the region)
/// unless a stopping rule applies; un-expanded blocks terminate paths.  The
/// rules -- every successor must be b-dominated, movable, reached by a
/// non-back edge, and distinct from b -- mirror the paper's getClocksOf-
/// AllOpt3Paths stops.
std::vector<bool> grow_region(const Opt3Context& ctx, BlockId root) {
  const std::size_t n = ctx.cfg.num_blocks();
  std::vector<bool> in_region(n, false);
  std::vector<bool> queued(n, false);
  in_region[root] = true;
  std::vector<BlockId> worklist{root};
  queued[root] = true;

  while (!worklist.empty()) {
    const BlockId x = worklist.back();
    worklist.pop_back();

    bool expandable = !ctx.cfg.successors(x).empty();
    for (BlockId y : ctx.cfg.successors(x)) {
      if (y == root || !ctx.domtree.dominates(root, y) || ctx.loops.is_back_edge(x, y) ||
          !ctx.clocks[y].movable()) {
        expandable = false;
        break;
      }
    }
    if (!expandable) continue;  // x terminates its paths

    for (BlockId y : ctx.cfg.successors(x)) {
      if (!in_region[y]) in_region[y] = true;
      if (!queued[y]) {
        queued[y] = true;
        worklist.push_back(y);
      }
    }
  }
  return in_region;
}

/// Closure: every region block except the root must be enterable only from
/// inside the region.
bool region_is_closed(const Opt3Context& ctx, BlockId root, const std::vector<bool>& in_region) {
  for (std::size_t y = 0; y < in_region.size(); ++y) {
    if (!in_region[y] || static_cast<BlockId>(y) == root) continue;
    for (BlockId p : ctx.cfg.predecessors(static_cast<BlockId>(y))) {
      if (!in_region[p]) return false;
    }
  }
  return true;
}

std::size_t region_size(const std::vector<bool>& in_region) {
  std::size_t n = 0;
  for (bool b : in_region) n += b ? 1 : 0;
  return n;
}

}  // namespace

std::size_t run_opt3(const ir::Module& module, ClockAssignment& assignment, ir::FuncId func,
                     const PassOptions& options) {
  Opt3Context ctx(module.function(func), assignment.funcs[func], options);
  std::size_t regions = 0;

  std::vector<bool> visited(ctx.cfg.num_blocks(), false);
  std::vector<BlockId> stack{ir::Function::kEntry};
  while (!stack.empty()) {
    const BlockId bb = stack.back();
    stack.pop_back();
    if (visited[bb]) continue;
    visited[bb] = true;

    // meetsOpt3Requirements: a genuine branch point whose own clock is
    // movable.  (Single-successor chains are already handled precisely by
    // Opt2a's merge push-up.)
    if (ctx.cfg.successors(bb).size() >= 2 && ctx.clocks[bb].movable()) {
      const std::vector<bool> in_region = grow_region(ctx, bb);
      if (region_size(in_region) >= 2 && region_is_closed(ctx, bb, in_region)) {
        const analysis::PathStatsResult stats = analysis::region_path_stats(
            ctx.cfg, bb, in_region, [&](BlockId b) { return ctx.clocks[b].clock; });
        // stats.valid gates the extremum queries below: empty path sets have
        // no defined range (same contract as RunningStats in support/stats.hpp).
        if (stats.valid && stats.count >= 2.0 &&
            options.criteria.accepts(stats.mean, stats.stddev, stats.range())) {
          // setClock(bb, avg); removeClock from every other touched block.
          for (std::size_t y = 0; y < in_region.size(); ++y) {
            if (in_region[y]) ctx.clocks[static_cast<BlockId>(y)].clock = 0;
          }
          ctx.clocks[bb].clock = static_cast<std::int64_t>(std::llround(stats.mean));
          ++regions;
          // Resume the search at the region's frontier (paper Fig. 11
          // lines 13-16): successors of touched blocks outside the region.
          for (std::size_t y = 0; y < in_region.size(); ++y) {
            if (!in_region[y]) continue;
            visited[y] = true;  // do not re-enter the averaged region
            for (BlockId s : ctx.cfg.successors(static_cast<BlockId>(y))) {
              if (!in_region[s] && !visited[s]) stack.push_back(s);
            }
          }
          continue;
        }
      }
    }

    for (BlockId s : ctx.cfg.successors(bb)) {
      if (!visited[s]) stack.push_back(s);
    }
  }
  return regions;
}

std::size_t run_opt3(const ir::Module& module, ClockAssignment& assignment, const PassOptions& options) {
  std::size_t regions = 0;
  for (ir::FuncId f = 0; f < module.functions().size(); ++f) {
    if (assignment.is_clocked(f)) continue;
    regions += run_opt3(module, assignment, f, options);
  }
  return regions;
}

}  // namespace detlock::pass
