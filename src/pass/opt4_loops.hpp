// Optimization 4: Loops (paper Sec. IV-D, Fig. 13).
//
// A loop latch (back-edge source) with a small clock executes once per
// iteration right before the header does; merging its clock into the header
// removes one update site from every iteration.  The per-execution
// divergence is at most one latch-cost (the final header evaluation that
// does not loop back), which the threshold + smaller-than-header conditions
// keep negligible relative to the loop's total.
#pragma once

#include "pass/clock_assignment.hpp"
#include "pass/options.hpp"

namespace detlock::pass {

/// Runs Opt4 on one function; returns the number of latches merged.
std::size_t run_opt4(const ir::Module& module, ClockAssignment& assignment, ir::FuncId func,
                     const PassOptions& options);

/// Over every instrumented function.
std::size_t run_opt4(const ir::Module& module, ClockAssignment& assignment, const PassOptions& options);

}  // namespace detlock::pass
