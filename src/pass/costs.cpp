#include "pass/costs.hpp"

namespace detlock::pass {

BlockClockInfo analyze_block(const ir::Module& module, const ClockAssignment& assignment,
                             const ir::BasicBlock& block, const ir::CostModel& cost_model) {
  BlockClockInfo info;
  for (const ir::Instr& instr : block.instrs()) {
    info.original_cost += cost_model.cost(instr);
    switch (instr.op) {
      case ir::Opcode::kCall: {
        const auto it = assignment.clocked_functions.find(instr.callee);
        if (it != assignment.clocked_functions.end()) {
          info.original_cost += it->second;
        } else {
          info.has_unclocked_call = true;
        }
        break;
      }
      case ir::Opcode::kCallExtern: {
        const ir::ExternDecl& decl = module.extern_decl(instr.callee);
        if (!decl.estimate.has_value()) {
          info.has_unclocked_call = true;
        } else if (decl.estimate->is_dynamic()) {
          info.has_dynamic_estimate = true;  // base+scaled cost emitted as kClockAddDyn
        } else {
          info.original_cost += decl.estimate->base;
        }
        break;
      }
      default:
        // Registry-driven: every sync primitive (including the atomics and
        // fences) ends a clocked region.  kSpawn is a sync op AND a call,
        // but its callee body is clocked independently, so the call cases
        // above need not see it.
        if (ir::is_sync_op(instr.op)) info.has_sync = true;
        break;
    }
  }
  return info;
}

void compute_initial_assignment(const ir::Module& module, ClockAssignment& assignment,
                                const ir::CostModel& cost_model) {
  assignment.funcs.assign(module.functions().size(), FunctionClocks{});
  for (ir::FuncId f = 0; f < module.functions().size(); ++f) {
    const ir::Function& func = module.functions()[f];
    FunctionClocks& fc = assignment.funcs[f];
    fc.blocks.resize(func.num_blocks());
    if (assignment.is_clocked(f)) continue;  // body carries no clocks
    for (ir::BlockId b = 0; b < func.num_blocks(); ++b) {
      fc.blocks[b] = analyze_block(module, assignment, func.block(b), cost_model);
      fc.blocks[b].clock = fc.blocks[b].original_cost;
    }
  }
}

}  // namespace detlock::pass
