#include "pass/estimates.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace detlock::pass {

std::size_t apply_estimate_file(ir::Module& module, std::string_view text) {
  std::size_t applied = 0;
  std::size_t line_no = 0;
  for (std::string_view raw_line : split(text, '\n')) {
    ++line_no;
    std::string_view line = raw_line;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::vector<std::string_view> tokens = split_whitespace(line);
    if (tokens.size() != 2 && tokens.size() != 4) {
      throw Error("estimate file line " + std::to_string(line_no) + ": expected 'name base' or 'name base per_unit size_arg'");
    }
    const auto base = parse_int(tokens[1]);
    if (!base || *base < 0) {
      throw Error("estimate file line " + std::to_string(line_no) + ": bad base cost");
    }
    ir::ExternEstimate estimate;
    estimate.base = *base;
    if (tokens.size() == 4) {
      const auto per_unit = parse_double(tokens[2]);
      const auto arg_ix = parse_int(tokens[3]);
      if (!per_unit || *per_unit < 0.0 || !arg_ix || *arg_ix < 0) {
        throw Error("estimate file line " + std::to_string(line_no) + ": bad per_unit/size_arg");
      }
      estimate.per_unit = *per_unit;
      estimate.size_arg_index = static_cast<std::uint32_t>(*arg_ix);
    }

    const std::string name(tokens[0]);
    if (!module.has_extern(name)) continue;  // shared estimate file, unused entry
    ir::ExternDecl& decl = module.externs()[module.find_extern(name)];
    if (estimate.per_unit != 0.0 && estimate.size_arg_index >= decl.num_params) {
      throw Error("estimate file line " + std::to_string(line_no) + ": size_arg out of range for @" + name);
    }
    decl.estimate = estimate;
    ++applied;
  }
  return applied;
}

}  // namespace detlock::pass
