// Optimization 3: Averaging of Clocks (paper Sec. IV-C, Figs. 11-12).
//
// A generalization of Function Clocking to sub-function regions: if every
// control-flow path emanating from a block b (through blocks b dominates)
// accumulates nearly the same clock total, the whole region's clock
// collapses into one averaged update at b -- fewer update sites AND the
// entire region counted ahead of time.
//
// Region construction follows the paper's stopping rules -- paths stop at
// back edges, at blocks with unclocked calls, and at merge nodes with
// non-dominated successors -- plus one soundness condition the pseudocode
// leaves implicit: the region must be *closed* (no block other than b can
// be entered from outside the region).  Without closure an execution could
// reach a clock-stripped block without having passed b's averaged update,
// making the divergence unbounded rather than criteria-bounded.
#pragma once

#include "pass/clock_assignment.hpp"
#include "pass/options.hpp"

namespace detlock::pass {

/// Runs Opt3 on one function; returns the number of regions averaged.
std::size_t run_opt3(const ir::Module& module, ClockAssignment& assignment, ir::FuncId func,
                     const PassOptions& options);

/// Over every instrumented function.
std::size_t run_opt3(const ir::Module& module, ClockAssignment& assignment, const PassOptions& options);

}  // namespace detlock::pass
