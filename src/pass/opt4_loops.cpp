#include "pass/opt4_loops.hpp"

#include "analysis/loops.hpp"

namespace detlock::pass {

std::size_t run_opt4(const ir::Module& module, ClockAssignment& assignment, ir::FuncId func,
                     const PassOptions& options) {
  const ir::Function& f = module.function(func);
  FunctionClocks& clocks = assignment.funcs[func];
  const analysis::Cfg cfg(f);
  const analysis::DominatorTree domtree(cfg);
  const analysis::LoopInfo loops(cfg, domtree);

  std::size_t merges = 0;
  for (const analysis::BackEdge& edge : loops.back_edges()) {
    BlockClockInfo& latch = clocks[edge.from];
    BlockClockInfo& header = clocks[edge.to];
    if (!latch.movable()) continue;
    if (latch.clock <= 0) continue;
    // Paper: "the clock of the block from which the backedge is originating
    // is less than a certain threshold value and is also less than the clock
    // of the block it is jumping to".
    if (latch.clock >= options.opt4_threshold) continue;
    if (latch.clock >= header.clock) continue;
    header.clock += latch.clock;
    latch.clock = 0;
    ++merges;
  }
  return merges;
}

std::size_t run_opt4(const ir::Module& module, ClockAssignment& assignment, const PassOptions& options) {
  std::size_t merges = 0;
  for (ir::FuncId f = 0; f < module.functions().size(); ++f) {
    if (assignment.is_clocked(f)) continue;
    merges += run_opt4(module, assignment, f, options);
  }
  return merges;
}

}  // namespace detlock::pass
