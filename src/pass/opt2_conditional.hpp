// Optimization 2: Conditional Blocks (paper Sec. IV-B, Figs. 6-10).
//
// Part a (precise -- clocks are only rearranged, never approximated):
//  * cond node: a block whose successors each have it as their unique
//    predecessor may absorb min(successor clocks); the min is subtracted
//    from every successor, zeroing at least one of them and advancing the
//    remaining cost ahead of the branch.
//  * merge node: a merge block all of whose predecessors have it as their
//    only successor pushes its clock up into every predecessor (recursively),
//    unless it is a loop header (pushing a header's clock into latches would
//    change per-iteration accounting).
//
// Part b (approximate, bounded by opt2b_max_divergence): the short-circuit
// pattern  U -> {M, L},  M -> {L, E}  (M may also have L as its only
// successor, in which case the move is precise).  The clock of one end block
// moves to the other; executions taking U -> M -> E mis-count by
// moved / (clock(U) + clock(M)), which must stay under the bound (paper:
// 1/10).  Direction: prefer moving L's clock up into U (ahead of time),
// except when U is at higher loop depth (saving updates on the hot path
// wins) or when clock(L) > clock(U) and M really branches (the larger value
// moving up would diverge more).
#pragma once

#include "pass/clock_assignment.hpp"
#include "pass/options.hpp"

namespace detlock::pass {

/// Runs part a to a fixed point on one function; returns the number of
/// clock moves performed.
std::size_t run_opt2a(const ir::Module& module, ClockAssignment& assignment, ir::FuncId func);

/// Runs part b (single DFS sweep, as in the paper) on one function.
std::size_t run_opt2b(const ir::Module& module, ClockAssignment& assignment, ir::FuncId func,
                      const PassOptions& options);

/// Both parts over every instrumented function; returns {a_moves, b_moves}.
std::pair<std::size_t, std::size_t> run_opt2(const ir::Module& module, ClockAssignment& assignment,
                                             const PassOptions& options);

}  // namespace detlock::pass
