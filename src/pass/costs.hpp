// Per-block cost analysis: the bridge between IR instructions and the clock
// values the pipeline distributes.
#pragma once

#include "pass/clock_assignment.hpp"
#include "pass/options.hpp"

namespace detlock::pass {

/// Computes a block's BlockClockInfo under the current clocked-function set:
/// original_cost = instruction costs + static estimates of clocked callees
/// and estimated externs (dynamic portions excluded -- those become pinned
/// kClockAddDyn at materialization); flags as documented on BlockClockInfo.
BlockClockInfo analyze_block(const ir::Module& module, const ClockAssignment& assignment,
                             const ir::BasicBlock& block, const ir::CostModel& cost_model);

/// Sizes assignment.funcs to the module and fills every non-clocked
/// function's per-block info, initializing clock = original_cost (the
/// paper's unoptimized insertion).  Call after block splitting.
void compute_initial_assignment(const ir::Module& module, ClockAssignment& assignment,
                                const ir::CostModel& cost_model);

}  // namespace detlock::pass
