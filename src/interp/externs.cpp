#include "interp/externs.hpp"

#include <bit>
#include <cmath>

#include "support/error.hpp"

namespace detlock::interp {

void ExternTable::register_impl(std::string name, ExternImpl impl) {
  impls_[std::move(name)] = std::move(impl);
}

bool ExternTable::has(const std::string& name) const { return impls_.count(name) != 0; }

const ExternImpl& ExternTable::lookup(const std::string& name) const {
  const auto it = impls_.find(name);
  if (it == impls_.end()) throw Error("no implementation registered for extern @" + name);
  return it->second;
}

namespace {

double as_f64(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t from_f64(double v) { return std::bit_cast<std::uint64_t>(v); }
std::int64_t as_i64(std::uint64_t bits) { return static_cast<std::int64_t>(bits); }

std::uint64_t impl_memset(ExternCallContext& ctx) {
  const std::int64_t dst = as_i64(ctx.args[0]);
  const std::int64_t val = as_i64(ctx.args[1]);
  const std::int64_t len = as_i64(ctx.args[2]);
  DETLOCK_CHECK(len >= 0, "memset with negative length");
  for (std::int64_t i = 0; i < len; ++i) ctx.memory.store(dst + i, val);
  return 0;
}

std::uint64_t impl_memcpy(ExternCallContext& ctx) {
  const std::int64_t dst = as_i64(ctx.args[0]);
  const std::int64_t src = as_i64(ctx.args[1]);
  const std::int64_t len = as_i64(ctx.args[2]);
  DETLOCK_CHECK(len >= 0, "memcpy with negative length");
  if (dst <= src) {
    for (std::int64_t i = 0; i < len; ++i) ctx.memory.store(dst + i, ctx.memory.load(src + i));
  } else {
    for (std::int64_t i = len - 1; i >= 0; --i) ctx.memory.store(dst + i, ctx.memory.load(src + i));
  }
  return 0;
}

}  // namespace

void register_standard_externs(ExternTable& table) {
  table.register_impl("memset", impl_memset);
  table.register_impl("memcpy", impl_memcpy);
  table.register_impl("fsin", [](ExternCallContext& c) { return from_f64(std::sin(as_f64(c.args[0]))); });
  table.register_impl("fcos", [](ExternCallContext& c) { return from_f64(std::cos(as_f64(c.args[0]))); });
  table.register_impl("fexp", [](ExternCallContext& c) { return from_f64(std::exp(as_f64(c.args[0]))); });
  table.register_impl("flog", [](ExternCallContext& c) { return from_f64(std::log(as_f64(c.args[0]))); });
  table.register_impl("fpow", [](ExternCallContext& c) {
    return from_f64(std::pow(as_f64(c.args[0]), as_f64(c.args[1])));
  });
  table.register_impl("imin", [](ExternCallContext& c) {
    return static_cast<std::uint64_t>(std::min(as_i64(c.args[0]), as_i64(c.args[1])));
  });
  table.register_impl("imax", [](ExternCallContext& c) {
    return static_cast<std::uint64_t>(std::max(as_i64(c.args[0]), as_i64(c.args[1])));
  });
  table.register_impl("opaque", [](ExternCallContext& c) { return c.args[0]; });
}

void declare_standard_externs(ir::Module& module) {
  auto declare = [&](const char* name, std::uint32_t params, bool returns,
                     std::optional<ir::ExternEstimate> estimate) {
    if (module.has_extern(name)) return;
    ir::ExternDecl decl;
    decl.name = name;
    decl.num_params = params;
    decl.returns_value = returns;
    decl.estimate = estimate;
    module.add_extern(std::move(decl));
  };
  declare("memset", 3, false, ir::ExternEstimate{8, 2.0, 2});
  declare("memcpy", 3, false, ir::ExternEstimate{8, 4.0, 2});
  declare("fsin", 1, true, ir::ExternEstimate{45, 0.0, 0});
  declare("fcos", 1, true, ir::ExternEstimate{45, 0.0, 0});
  declare("fexp", 1, true, ir::ExternEstimate{45, 0.0, 0});
  declare("flog", 1, true, ir::ExternEstimate{45, 0.0, 0});
  declare("fpow", 2, true, ir::ExternEstimate{70, 0.0, 0});
  declare("imin", 2, true, ir::ExternEstimate{4, 0.0, 0});
  declare("imax", 2, true, ir::ExternEstimate{4, 0.0, 0});
  declare("dl_malloc", 1, true, std::nullopt);
  declare("dl_free", 1, false, std::nullopt);
  declare("opaque", 1, true, std::nullopt);
  declare("record", 1, false, ir::ExternEstimate{4, 0.0, 0});
}

}  // namespace detlock::interp
