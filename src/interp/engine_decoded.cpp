// The predecoded direct-threaded execution engine.
//
// Runs the flat DecodedInstr code produced by interp/decode.cpp with a
// single instruction pointer and (on GCC/Clang) computed-goto dispatch:
// every opcode body ends by loading the next instruction and jumping
// straight to its label, giving each opcode its own indirect branch for the
// hardware predictor instead of funnelling every instruction through one
// shared switch branch.  Define DETLOCK_DISPATCH_SWITCH to force the
// portable switch loop (used to verify both dispatch strategies behave
// identically).
//
// Register frames live in ThreadCtx::arena, caller below callee; calls are
// handled with an explicit frame stack (no C++ recursion), so a guest call
// is two pointer copies, a zero-fill, and a frame push -- no allocation on
// the hot path.
//
// Instruction counting is anchor-based: straight-line opcodes do no
// counting at all, and the exact executed count is recovered as
// anchor_count + (ip - anchor_ip) whenever it is needed.  Control
// transfers (branch, switch, call, ret) fold the pointer distance into
// anchor_count and run the step-limit / abort-poll / yield checks there,
// batched behind a single compare against `next_check`.  The counts
// everything outside this loop observes -- per-thread instruction totals,
// profiler numbers, counts at observer callbacks and throw sites -- are
// exactly reference-identical (the differential tests require it); only
// the cadence of the checks batches up to one basic block, which no
// observable result depends on.  See docs/interp-performance.md.
#include <algorithm>
#include <cmath>
#include <thread>

#include "interp/engine_internal.hpp"

#if defined(__GNUC__) && !defined(DETLOCK_DISPATCH_SWITCH)
#define DL_CGOTO 1
#else
#define DL_CGOTO 0
#endif

#if defined(__GNUC__)
#define DL_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define DL_NOINLINE __attribute__((noinline))
#else
#define DL_UNLIKELY(x) (x)
#define DL_NOINLINE
#endif

namespace detlock::interp {

using namespace engine_detail;

// The computed-goto label table is written in enum order; anchor that order
// so an opcode insertion fails loudly here instead of dispatching wrong.
static_assert(static_cast<int>(ir::Opcode::kConst) == 0);
static_assert(static_cast<int>(ir::Opcode::kShr) == 12);
static_assert(static_cast<int>(ir::Opcode::kFtoI) == 21);
static_assert(static_cast<int>(ir::Opcode::kStoreF) == 25);
static_assert(static_cast<int>(ir::Opcode::kRet) == 29);
static_assert(static_cast<int>(ir::Opcode::kClockAddDyn) == 45);
static_assert(ir::kNumOpcodes == 46);
static_assert(kNumDecodedOps == 51);

/// Updated hot-loop counters returned by the out-of-line bookkeeping slow
/// path (returned by value so the loop locals are never address-taken).
struct BookkeepState {
  std::uint64_t last_yield;
  std::uint64_t next_abort_at;
  std::uint64_t next_check;
};

template <bool kObserve>
std::uint64_t Engine::exec_decoded(ThreadCtx& ctx, const DecodedFunction& func,
                                   std::size_t frame_base) {
#if DL_CGOTO
  // One entry per opcode, decoded-opcode order (ir enum order, then the
  // fused superinstructions).  kLoadF/kStoreF share the kLoad/kStore
  // bodies (same untyped 64-bit slots), so their entries alias.  The table
  // is only consulted by resolve_decoded_handlers(), which copies each
  // label into DecodedInstr::handler; dispatch then jumps through the
  // instruction directly (direct threading) and never indexes this table.
  static const void* const kLabels[kNumDecodedOps] = {
      &&lbl_kConst, &&lbl_kConstF, &&lbl_kMov,
      &&lbl_kAdd, &&lbl_kSub, &&lbl_kMul, &&lbl_kDiv, &&lbl_kRem,
      &&lbl_kAnd, &&lbl_kOr, &&lbl_kXor, &&lbl_kShl, &&lbl_kShr,
      &&lbl_kFAdd, &&lbl_kFSub, &&lbl_kFMul, &&lbl_kFDiv, &&lbl_kFSqrt,
      &&lbl_kICmp, &&lbl_kFCmp, &&lbl_kItoF, &&lbl_kFtoI,
      &&lbl_kLoad, &&lbl_kStore, &&lbl_kLoad /* kLoadF */, &&lbl_kStore /* kStoreF */,
      &&lbl_kBr, &&lbl_kCondBr, &&lbl_kSwitch, &&lbl_kRet,
      &&lbl_kCall, &&lbl_kCallExtern,
      &&lbl_kLock, &&lbl_kUnlock, &&lbl_kBarrier, &&lbl_kSpawn, &&lbl_kJoin,
      &&lbl_kCondWait, &&lbl_kCondSignal, &&lbl_kCondBroadcast,
      &&lbl_kAtomicLoad, &&lbl_kAtomicStore, &&lbl_kAtomicRmw, &&lbl_kFence,
      &&lbl_kClockAdd, &&lbl_kClockAddDyn,
      &&lbl_kFusedICmpBr, &&lbl_kFusedConstAdd, &&lbl_kFusedMulAdd, &&lbl_kFusedAndAdd,
      &&lbl_kFusedConstAddBr,
  };
  if (DL_UNLIKELY(frame_base == kDecodedLabelQuery)) {
    // Label-address query from resolve_decoded_handlers(): report the
    // handler table through ctx.arena instead of executing anything.
    ctx.arena.resize(kNumDecodedOps);
    for (std::size_t i = 0; i < kNumDecodedOps; ++i) {
      ctx.arena[i] = reinterpret_cast<std::uintptr_t>(kLabels[i]);
    }
    return 0;
  }
#endif
  DETLOCK_CHECK(func.entry != nullptr, "call of empty function @" + func.source->name());
  const DecodedModule& dm = *decoded_;
  const DecodedFunction* cur = &func;
  const DecodedInstr* base = func.entry;
  const DecodedInstr* ip = base;
  const DecodedInstr* in = nullptr;
  std::uint64_t* regs = ctx.arena.data() + frame_base;

  /// One entry per in-flight guest call: where to resume in the caller.
  struct Frame {
    const DecodedInstr* ret_ip;
    const DecodedInstr* ret_base;
    const DecodedFunction* func;
    std::size_t frame_base;
    std::uint32_t ret_dst;
  };
  std::vector<Frame> frames;

  // Hot-loop locals: loaded once, held in registers across the dispatch.
  const std::uint64_t max_steps = config_.max_steps_per_thread;
  const std::uint32_t yield_interval = config_.yield_interval;
  const std::uint64_t mem_words = memory_.size();
  // Anchor-based instruction counting: straight-line execution does no
  // counting at all.  The exact executed count is always recoverable as
  //   anchor_count + (ip - anchor_ip)
  // because flat code between control transfers is sequential; every
  // non-sequential ip change (branch, switch, call, ret) folds the pointer
  // distance into anchor_count and re-anchors.  The step-limit / abort /
  // yield checks run at those fold points instead of per instruction --
  // the COUNTS everything outside the loop sees stay exactly reference-
  // identical (they are synced before every blocking call, observer
  // callback, throw site, and at return), while the check cadence batches
  // up to one basic block, which no observable result depends on.
  std::uint64_t anchor_count = ctx.instrs;
  const DecodedInstr* anchor_ip = ip;
  // Count value at the most recent yield; (count - last_yield) is the
  // reference engine's since_yield counter.
  std::uint64_t last_yield = anchor_count - ctx.since_yield;
  // The reference engine throws when the count EXCEEDS max_steps, i.e. at
  // count max_steps + 1 (saturated against overflow).
  const std::uint64_t limit_at = max_steps + 1 == 0 ? max_steps : max_steps + 1;
  // The reference engine polls the abort flag every 0x10000 instructions;
  // batched counting can step past a boundary, so track the next poll
  // point explicitly.
  std::uint64_t next_abort_at = (anchor_count | 0xffff) + 1;
  // Next count at which the step limit, an abort poll, or a cooperative
  // yield is due.  Checkpoints only compare against this; the slow path
  // below recomputes it with the same formula.
  std::uint64_t next_check = next_abort_at;
  if (yield_interval != 0) {
    next_check = std::min<std::uint64_t>(next_check, last_yield + yield_interval);
  }
  next_check = std::min(next_check, limit_at);

  // Slow half of the checkpoint.  Deliberately takes the hot counters BY
  // VALUE and returns the updated triple: if the loop locals were captured
  // by reference they would be address-taken and the compiler would have
  // to keep them in stack slots across every opcode body.  noinline keeps
  // the throw/yield machinery out of the opcode bodies.
  const auto bookkeep_slow = [this, &ctx, max_steps, yield_interval, limit_at](
                                 std::uint64_t now, std::uint64_t yielded_at,
                                 std::uint64_t abort_at)
                                 DL_NOINLINE -> BookkeepState {
    if (now > max_steps) {
      ctx.instrs = now;
      ctx.since_yield = static_cast<std::uint32_t>(now - yielded_at);
      throw Error("thread " + std::to_string(ctx.tid) + " exceeded max_steps_per_thread");
    }
    if (now >= abort_at) {
      abort_at = (now | 0xffff) + 1;
      if (abort_flag_.load(std::memory_order_relaxed)) {
        ctx.instrs = now;
        ctx.since_yield = static_cast<std::uint32_t>(now - yielded_at);
        throw Error("execution aborted (another thread failed)");
      }
    }
    if (yield_interval != 0 && now - yielded_at >= yield_interval) {
      yielded_at = now;
      std::this_thread::yield();
    }
    std::uint64_t next = abort_at;
    if (yield_interval != 0) next = std::min<std::uint64_t>(next, yielded_at + yield_interval);
    return BookkeepState{yielded_at, abort_at, std::min(next, limit_at)};
  };

// Fold the straight-line run since the last anchor into the exact count
// and run the step-limit / abort / yield checks.  Placed at every
// non-sequential ip change; the handler must re-anchor (anchor_ip = ip)
// after redirecting ip.
#define DL_CHECKPOINT()                                                        \
  do {                                                                         \
    anchor_count += static_cast<std::uint64_t>(ip - anchor_ip);                \
    anchor_ip = ip;                                                            \
    if (DL_UNLIKELY(anchor_count >= next_check)) {                             \
      const BookkeepState s_ = bookkeep_slow(anchor_count, last_yield, next_abort_at); \
      last_yield = s_.last_yield;                                              \
      next_abort_at = s_.next_abort_at;                                        \
      next_check = s_.next_check;                                              \
    }                                                                          \
  } while (0)
// Publish the exact executed count before anything that can block, call
// out, or throw, so code outside the loop (profiler, RunResult totals,
// error reporting) sees reference-identical counts.
#define DL_SYNC()                                                              \
  do {                                                                         \
    const std::uint64_t n_ = anchor_count + static_cast<std::uint64_t>(ip - anchor_ip); \
    ctx.instrs = n_;                                                           \
    ctx.since_yield = static_cast<std::uint32_t>(n_ - last_yield);             \
  } while (0)

#if DL_CGOTO
#define DL_CASE(name) lbl_##name:
#define DL_FCASE(name) lbl_##name:
#define DL_ALIAS(name) /* aliased in the label table */
// Direct-threaded dispatch: the handler label is IN the instruction
// (patched by prepare_decoded_module at compile time for shared modules,
// or by resolve_decoded_handlers at run() entry for private decodes), so
// dispatch is one load and one indirect jump -- no opcode byte, no
// label-table indexing.
#define DL_NEXT()                                        \
  do {                                                   \
    in = ip++;                                           \
    goto* in->handler;                                   \
  } while (0)

  DL_NEXT();  // dispatch the first instruction
#else
#define DL_CASE(name) case dop(ir::Opcode::name):
#define DL_FCASE(name) case name:
#define DL_ALIAS(name) case dop(ir::Opcode::name):
#define DL_NEXT() continue

  for (;;) {
    in = ip++;
    switch (in->op) {
#endif

  DL_CASE(kConst) regs[in->dst] = from_i64(in->imm); DL_NEXT();
  DL_CASE(kConstF) regs[in->dst] = from_f64(in->fimm); DL_NEXT();
  DL_CASE(kMov) regs[in->dst] = regs[in->a]; DL_NEXT();
  // add/sub/mul wrap on overflow, computed on the unsigned representation
  // (same rationale as the reference engine).
  DL_CASE(kAdd) regs[in->dst] = regs[in->a] + regs[in->b]; DL_NEXT();
  DL_CASE(kSub) regs[in->dst] = regs[in->a] - regs[in->b]; DL_NEXT();
  DL_CASE(kMul) regs[in->dst] = regs[in->a] * regs[in->b]; DL_NEXT();
  DL_CASE(kDiv) {
    const std::int64_t d = as_i64(regs[in->b]);
    if (DL_UNLIKELY(d == 0)) DL_SYNC();
    DETLOCK_CHECK(d != 0, "division by zero in @" + cur->source->name());
    regs[in->dst] = from_i64(as_i64(regs[in->a]) / d);
  }
  DL_NEXT();
  DL_CASE(kRem) {
    const std::int64_t d = as_i64(regs[in->b]);
    if (DL_UNLIKELY(d == 0)) DL_SYNC();
    DETLOCK_CHECK(d != 0, "remainder by zero in @" + cur->source->name());
    regs[in->dst] = from_i64(as_i64(regs[in->a]) % d);
  }
  DL_NEXT();
  DL_CASE(kAnd) regs[in->dst] = regs[in->a] & regs[in->b]; DL_NEXT();
  DL_CASE(kOr) regs[in->dst] = regs[in->a] | regs[in->b]; DL_NEXT();
  DL_CASE(kXor) regs[in->dst] = regs[in->a] ^ regs[in->b]; DL_NEXT();
  DL_CASE(kShl) regs[in->dst] = regs[in->a] << (regs[in->b] & 63); DL_NEXT();
  DL_CASE(kShr) regs[in->dst] = from_i64(as_i64(regs[in->a]) >> (regs[in->b] & 63)); DL_NEXT();
  DL_CASE(kFAdd) regs[in->dst] = from_f64(as_f64(regs[in->a]) + as_f64(regs[in->b])); DL_NEXT();
  DL_CASE(kFSub) regs[in->dst] = from_f64(as_f64(regs[in->a]) - as_f64(regs[in->b])); DL_NEXT();
  DL_CASE(kFMul) regs[in->dst] = from_f64(as_f64(regs[in->a]) * as_f64(regs[in->b])); DL_NEXT();
  DL_CASE(kFDiv) regs[in->dst] = from_f64(as_f64(regs[in->a]) / as_f64(regs[in->b])); DL_NEXT();
  DL_CASE(kFSqrt) regs[in->dst] = from_f64(std::sqrt(as_f64(regs[in->a]))); DL_NEXT();
  DL_CASE(kICmp)
  regs[in->dst] = eval_cmp(in->pred, as_i64(regs[in->a]), as_i64(regs[in->b])) ? 1 : 0;
  DL_NEXT();
  DL_CASE(kFCmp)
  regs[in->dst] = eval_fcmp(in->pred, as_f64(regs[in->a]), as_f64(regs[in->b])) ? 1 : 0;
  DL_NEXT();
  DL_CASE(kItoF) regs[in->dst] = from_f64(static_cast<double>(as_i64(regs[in->a]))); DL_NEXT();
  DL_CASE(kFtoI) regs[in->dst] = from_i64(static_cast<std::int64_t>(as_f64(regs[in->a]))); DL_NEXT();
  DL_CASE(kLoad) DL_ALIAS(kLoadF) {
    const std::int64_t addr = as_i64(regs[in->a]) + in->imm;
    if constexpr (kObserve) {
      DL_SYNC();  // the observer (e.g. the race detector) may throw
      // Site: function id + flat instruction index (in already points at
      // this instruction; fusion never covers loads/stores).  ctx.instrs
      // includes this access after DL_SYNC, matching the reference engine.
      const auto func_idx = static_cast<std::uint32_t>(cur - dm.functions.data());
      const AccessSite site{
          func_idx, canon_site_index_[func_idx][static_cast<std::uint32_t>(in - cur->entry)]};
      config_.observer->on_access(ctx.tid, addr, false, ctx.held, site);
    }
    if (DL_UNLIKELY(static_cast<std::uint64_t>(addr) >= mem_words)) DL_SYNC();
    regs[in->dst] = from_i64(memory_.load(addr));
  }
  DL_NEXT();
  DL_CASE(kStore) DL_ALIAS(kStoreF) {
    const std::int64_t addr = as_i64(regs[in->a]) + in->imm;
    if constexpr (kObserve) {
      DL_SYNC();
      const auto func_idx = static_cast<std::uint32_t>(cur - dm.functions.data());
      const AccessSite site{
          func_idx, canon_site_index_[func_idx][static_cast<std::uint32_t>(in - cur->entry)]};
      config_.observer->on_access(ctx.tid, addr, true, ctx.held, site);
    }
    if (DL_UNLIKELY(static_cast<std::uint64_t>(addr) >= mem_words)) DL_SYNC();
    memory_.store(addr, as_i64(regs[in->b]));
  }
  DL_NEXT();
  DL_CASE(kBr) {
    DL_CHECKPOINT();
    ip = base + in->target;
    anchor_ip = ip;
  }
  DL_NEXT();
  DL_CASE(kCondBr) {
    DL_CHECKPOINT();
    ip = base + (regs[in->a] != 0 ? in->target : in->target2);
    anchor_ip = ip;
  }
  DL_NEXT();
  DL_CASE(kSwitch) {
    DL_CHECKPOINT();
    // Binary search of the sorted case pool; in->target2 is the default.
    const std::int64_t value = as_i64(regs[in->a]);
    const std::int64_t* vals = dm.case_values.data() + in->pool;
    std::uint32_t lo = 0;
    std::uint32_t hi = in->count;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (vals[mid] < value) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    ip = base + (lo < in->count && vals[lo] == value ? dm.case_targets[in->pool + lo]
                                                     : in->target2);
    anchor_ip = ip;
  }
  DL_NEXT();
  DL_CASE(kRet) {
    DL_CHECKPOINT();
    const std::uint64_t value = in->has_value ? regs[in->a] : 0;
    if (frames.empty()) {
      DL_SYNC();
      return value;
    }
    const Frame f = frames.back();
    frames.pop_back();
    cur = f.func;
    base = f.ret_base;
    ip = f.ret_ip;
    anchor_ip = ip;
    frame_base = f.frame_base;
    regs = ctx.arena.data() + frame_base;
    regs[f.ret_dst] = value;
  }
  DL_NEXT();
  DL_CASE(kCall) {
    DL_CHECKPOINT();
    const DecodedFunction* const callee = static_cast<const DecodedFunction*>(in->callee);
    if (DL_UNLIKELY(callee->entry == nullptr)) DL_SYNC();
    DETLOCK_CHECK(callee->entry != nullptr, "call of empty function @" + callee->source->name());
    const std::size_t callee_base = frame_base + cur->num_regs;
    if (ctx.arena.size() < callee_base + callee->num_regs) {
      ctx.arena.resize(std::max<std::size_t>(ctx.arena.size() * 2, callee_base + callee->num_regs));
    }
    std::uint64_t* const callee_regs = ctx.arena.data() + callee_base;
    const std::uint32_t* const arg_regs = dm.reg_pool.data() + in->pool;
    regs = ctx.arena.data() + frame_base;  // resize may have moved the arena
    for (std::uint32_t i = 0; i < in->count; ++i) callee_regs[i] = regs[arg_regs[i]];
    std::fill(callee_regs + in->count, callee_regs + callee->num_regs, 0);
    frames.push_back(Frame{ip, base, cur, frame_base, in->dst});
    cur = callee;
    base = callee->entry;
    ip = base;
    anchor_ip = ip;
    frame_base = callee_base;
    regs = callee_regs;
  }
  DL_NEXT();
  DL_CASE(kCallExtern) {
    DL_SYNC();
    std::vector<std::uint64_t>& eargs = ctx.extern_args;
    eargs.clear();
    const std::uint32_t* const arg_regs = dm.reg_pool.data() + in->pool;
    for (std::uint32_t i = 0; i < in->count; ++i) eargs.push_back(regs[arg_regs[i]]);
    if (in->callee != nullptr) {
      const ExternImpl& impl = *static_cast<const ExternImpl*>(in->callee);
      ExternCallContext call{memory_, ctx.tid, eargs};
      regs[in->dst] = impl(call);
    } else {
      // Unresolved at run() entry: route through the lazy path so an
      // unimplemented extern throws the canonical error.
      regs[in->dst] = call_extern(ctx, in->callee_id, {eargs.begin(), eargs.end()});
    }
  }
  DL_NEXT();
  DL_CASE(kLock) {
    DL_SYNC();
    const runtime::MutexId mutex = static_cast<runtime::MutexId>(as_i64(regs[in->a]));
    backend_->lock(ctx.tid, mutex);
    ctx.held.push_back(mutex);
  }
  DL_NEXT();
  DL_CASE(kUnlock) {
    DL_SYNC();
    const runtime::MutexId mutex = static_cast<runtime::MutexId>(as_i64(regs[in->a]));
    backend_->unlock(ctx.tid, mutex);
    auto it = std::find(ctx.held.begin(), ctx.held.end(), mutex);
    if (it != ctx.held.end()) ctx.held.erase(it);
  }
  DL_NEXT();
  DL_CASE(kBarrier) {
    DL_SYNC();
    // Barrier/join observation lives in the backends now (runtime::
    // SyncObserver hooks at the exact edge-establishing points).
    backend_->barrier_wait(ctx.tid, static_cast<runtime::BarrierId>(as_i64(regs[in->a])),
                           static_cast<std::uint32_t>(as_i64(regs[in->b])));
  }
  DL_NEXT();
  DL_CASE(kSpawn) {
    DL_SYNC();
    std::vector<std::uint64_t> call_args;
    call_args.reserve(in->count);
    const std::uint32_t* const arg_regs = dm.reg_pool.data() + in->pool;
    for (std::uint32_t i = 0; i < in->count; ++i) call_args.push_back(regs[arg_regs[i]]);
    const runtime::ThreadId child = backend_->register_spawn(ctx.tid);
    spawned_count_.fetch_add(1, std::memory_order_relaxed);
    os_threads_[child] = std::thread(&Engine::thread_main, this, child,
                                     static_cast<ir::FuncId>(in->callee_id), std::move(call_args));
    regs[in->dst] = from_i64(child);
  }
  DL_NEXT();
  DL_CASE(kJoin) {
    DL_SYNC();
    const std::int64_t handle = as_i64(regs[in->a]);
    DETLOCK_CHECK(handle >= 0 && static_cast<std::size_t>(handle) < os_threads_.size() &&
                      os_threads_[static_cast<std::size_t>(handle)].joinable(),
                  "join of never-spawned or already-joined thread " + std::to_string(handle));
    const runtime::ThreadId target = static_cast<runtime::ThreadId>(handle);
    backend_->join(ctx.tid, target);
    os_threads_[target].join();
  }
  DL_NEXT();
  DL_CASE(kCondWait)
  // Mutex released for the wait's duration and reacquired before return;
  // the engine-side lockset is unchanged on exit.
  DL_SYNC();
  backend_->cond_wait(ctx.tid, static_cast<runtime::CondVarId>(as_i64(regs[in->a])),
                      static_cast<runtime::MutexId>(as_i64(regs[in->b])));
  DL_NEXT();
  DL_CASE(kCondSignal)
  DL_SYNC();
  backend_->cond_signal(ctx.tid, static_cast<runtime::CondVarId>(as_i64(regs[in->a])));
  DL_NEXT();
  DL_CASE(kCondBroadcast)
  DL_SYNC();
  backend_->cond_broadcast(ctx.tid, static_cast<runtime::CondVarId>(as_i64(regs[in->a])));
  DL_NEXT();
  // Atomics are sync points: the backend takes a turn (deterministic mode)
  // around the memory effect, so the global order of atomic operations is
  // the turn order.  The guest-declared ordering rides in `aux` and only
  // matters to observers (happens-before edges) and the static lint.
  DL_CASE(kAtomicLoad) {
    DL_SYNC();
    runtime::AtomicOp op;
    op.kind = runtime::AtomicOp::Kind::kLoad;
    op.order = static_cast<runtime::AtomicOp::Order>(aux_order(in->aux));
    op.addr = as_i64(regs[in->a]) + in->imm;
    regs[in->dst] = from_i64(backend_->atomic_op(ctx.tid, op, memory_));
  }
  DL_NEXT();
  DL_CASE(kAtomicStore) {
    DL_SYNC();
    runtime::AtomicOp op;
    op.kind = runtime::AtomicOp::Kind::kStore;
    op.order = static_cast<runtime::AtomicOp::Order>(aux_order(in->aux));
    op.addr = as_i64(regs[in->a]) + in->imm;
    op.operand = as_i64(regs[in->b]);
    backend_->atomic_op(ctx.tid, op, memory_);
  }
  DL_NEXT();
  DL_CASE(kAtomicRmw) {
    DL_SYNC();
    runtime::AtomicOp op;
    switch (aux_rmw(in->aux)) {
      case ir::AtomicRmwKind::kAdd: op.kind = runtime::AtomicOp::Kind::kAdd; break;
      case ir::AtomicRmwKind::kExchange: op.kind = runtime::AtomicOp::Kind::kExchange; break;
      case ir::AtomicRmwKind::kCas: op.kind = runtime::AtomicOp::Kind::kCas; break;
    }
    op.order = static_cast<runtime::AtomicOp::Order>(aux_order(in->aux));
    op.addr = as_i64(regs[in->a]) + in->imm;
    op.operand = as_i64(regs[in->b]);
    if (aux_rmw(in->aux) == ir::AtomicRmwKind::kCas) op.desired = as_i64(regs[in->target]);
    regs[in->dst] = from_i64(backend_->atomic_op(ctx.tid, op, memory_));
  }
  DL_NEXT();
  DL_CASE(kFence) {
    DL_SYNC();
    runtime::AtomicOp op;
    op.kind = runtime::AtomicOp::Kind::kFence;
    op.order = static_cast<runtime::AtomicOp::Order>(aux_order(in->aux));
    backend_->atomic_op(ctx.tid, op, memory_);
  }
  DL_NEXT();
  DL_CASE(kClockAdd)
  DL_SYNC();
  ++ctx.clock_instrs;
  backend_->clock_add(ctx.tid, static_cast<std::uint64_t>(in->imm));
  DL_NEXT();
  DL_CASE(kClockAddDyn) {
    DL_SYNC();
    ++ctx.clock_instrs;
    const double scaled = in->fimm * static_cast<double>(as_i64(regs[in->a]));
    const std::int64_t delta =
        in->imm + static_cast<std::int64_t>(std::llround(std::max(0.0, scaled)));
    backend_->clock_add(ctx.tid, static_cast<std::uint64_t>(std::max<std::int64_t>(delta, 0)));
  }
  DL_NEXT();

  // Fused superinstructions (decode-time pair fusion): execute this slot's
  // original operation, advance ip over the consumed slot(s) -- the anchor
  // distance counts them automatically -- then execute their operations
  // with the first result forwarded in a machine register.  The decoder
  // only fuses when the second slot consumes the first slot's destination
  // (canonicalized to its `a` operand), so the forwarded value is always
  // the right operand and the arena store-then-reload round trip vanishes
  // from the dependency chain.
  DL_FCASE(kFusedICmpBr) {
    const std::uint64_t t = eval_cmp(in->pred, as_i64(regs[in->a]), as_i64(regs[in->b])) ? 1 : 0;
    regs[in->dst] = t;
    in = ip++;
    DL_CHECKPOINT();
    ip = base + (t != 0 ? in->target : in->target2);
    anchor_ip = ip;
  }
  DL_NEXT();
  DL_FCASE(kFusedConstAdd) {
    const std::uint64_t t = from_i64(in->imm);
    regs[in->dst] = t;
    in = ip++;
    regs[in->dst] = t + regs[in->b];
  }
  DL_NEXT();
  DL_FCASE(kFusedMulAdd) {
    const std::uint64_t t = regs[in->a] * regs[in->b];
    regs[in->dst] = t;
    in = ip++;
    regs[in->dst] = t + regs[in->b];
  }
  DL_NEXT();
  DL_FCASE(kFusedAndAdd) {
    const std::uint64_t t = regs[in->a] & regs[in->b];
    regs[in->dst] = t;
    in = ip++;
    regs[in->dst] = t + regs[in->b];
  }
  DL_NEXT();
  DL_FCASE(kFusedConstAddBr) {
    const std::uint64_t t = from_i64(in->imm);
    regs[in->dst] = t;
    in = ip++;
    regs[in->dst] = t + regs[in->b];
    in = ip++;
    DL_CHECKPOINT();
    ip = base + in->target;
    anchor_ip = ip;
  }
  DL_NEXT();

#if !DL_CGOTO
    }
    DETLOCK_UNREACHABLE("bad opcode");
  }
#else
  DETLOCK_UNREACHABLE("decoded dispatch fell through");
#endif

#undef DL_CASE
#undef DL_FCASE
#undef DL_ALIAS
#undef DL_NEXT
#undef DL_SYNC
#undef DL_CHECKPOINT
}

template std::uint64_t Engine::exec_decoded<true>(ThreadCtx&, const DecodedFunction&, std::size_t);
template std::uint64_t Engine::exec_decoded<false>(ThreadCtx&, const DecodedFunction&, std::size_t);

void Engine::resolve_decoded_handlers(DecodedModule& decoded) {
#if DL_CGOTO
  if (!decoded.functions.empty()) {
    // Ask the exec_decoded instantiation this run will use (they have
    // distinct label addresses) for its handler table, then thread every
    // instruction.  Runs before any guest thread exists, so the patching is
    // race-free; the module is private to this Engine (or, via
    // prepare_decoded_module, still under construction at compile time).
    ThreadCtx tmp;
    if (config_.observer != nullptr) {
      exec_decoded<true>(tmp, decoded.functions[0], kDecodedLabelQuery);
    } else {
      exec_decoded<false>(tmp, decoded.functions[0], kDecodedLabelQuery);
    }
    for (DecodedInstr& in : decoded.code) {
      in.handler = reinterpret_cast<const void*>(static_cast<std::uintptr_t>(tmp.arena[in.op]));
    }
  }
#endif
  // Record which variant the module is now executable by -- in every build,
  // so "finalized for sharing?" has one answer regardless of dispatch
  // strategy (the tag is also what decoded_handlers_resolved checks).
  decoded.prepared_for = config_.observer != nullptr ? PreparedFor::kObservedDispatch
                                                     : PreparedFor::kPlainDispatch;
}

bool decoded_handlers_resolved(const DecodedModule& module) {
  // A pointer-null check would accept a module resolved for the WRONG
  // dispatch variant (observing vs observer-free labels) and, in
  // switch-dispatch builds, any unfinalized module at all; the typed tag
  // rejects both.
  return module.prepared_for == PreparedFor::kPlainDispatch;
}

void Engine::prepare_decoded_module(const ir::Module& module, DecodedModule& decoded) {
  // Handler labels are fixed addresses inside the observer-free
  // exec_decoded<false> instantiation -- a property of the compiled binary,
  // not of any engine instance -- but they are only nameable from within
  // that function, so a throwaway engine performs the label query.  The
  // engine is configured as small as possible (tiny memory, no heap, no
  // trace) and never runs; only resolve_decoded_handlers touches it.
  EngineConfig cfg;
  cfg.deterministic = false;
  cfg.engine = EngineKind::kDecoded;
  cfg.shared_decoded = &decoded;  // suppress the private re-decode
  cfg.memory_words = 1 << 10;
  cfg.heap_words = 0;
  cfg.runtime.record_trace = false;
  Engine prep(module, cfg);
  prep.resolve_decoded_handlers(decoded);
}

}  // namespace detlock::interp
