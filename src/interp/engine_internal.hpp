// Internals shared by the engine's translation units (engine.cpp,
// engine_reference.cpp, engine_decoded.cpp).  Not installed API.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "interp/engine.hpp"
#include "support/error.hpp"

namespace detlock::interp {

/// Per-OS-thread interpreter state.  One ThreadCtx lives on each thread's
/// stack for the whole run; the arenas below are why the decoded engine
/// performs no per-call allocation after warm-up.
struct Engine::ThreadCtx {
  runtime::ThreadId tid = 0;
  /// Executed IR instructions; doubles as the max_steps_per_thread budget
  /// and the abort-poll cadence counter.  The decoded engine keeps a local
  /// copy inside its dispatch loop and syncs it here at every blocking
  /// operation, call-stack transition, and throw site.
  std::uint64_t instrs = 0;
  std::uint64_t clock_instrs = 0;
  std::uint32_t since_yield = 0;
  std::vector<runtime::MutexId> held;
  /// Decoded engine: register frames of the active call stack, caller
  /// below callee.  Grows geometrically; never shrinks during a run.
  std::vector<std::uint64_t> arena;
  /// Decoded engine: reusable argument buffer for extern calls (externs
  /// take a vector reference; guest code cannot re-enter the interpreter
  /// from inside an extern, so one buffer per thread suffices).
  std::vector<std::uint64_t> extern_args;
};

namespace engine_detail {

inline std::int64_t as_i64(std::uint64_t bits) { return static_cast<std::int64_t>(bits); }
inline std::uint64_t from_i64(std::int64_t v) { return static_cast<std::uint64_t>(v); }
inline double as_f64(std::uint64_t bits) { return std::bit_cast<double>(bits); }
inline std::uint64_t from_f64(double v) { return std::bit_cast<std::uint64_t>(v); }

// Engines cast ir::MemOrder straight into the runtime's mirror enum; pin the
// layouts together so a drift in either enum is a compile error here, not a
// silently wrong happens-before edge.
static_assert(static_cast<int>(ir::MemOrder::kRelaxed) ==
                  static_cast<int>(runtime::AtomicOp::Order::kRelaxed) &&
              static_cast<int>(ir::MemOrder::kAcquire) ==
                  static_cast<int>(runtime::AtomicOp::Order::kAcquire) &&
              static_cast<int>(ir::MemOrder::kRelease) ==
                  static_cast<int>(runtime::AtomicOp::Order::kRelease) &&
              static_cast<int>(ir::MemOrder::kAcqRel) ==
                  static_cast<int>(runtime::AtomicOp::Order::kAcqRel) &&
              static_cast<int>(ir::MemOrder::kSeqCst) ==
                  static_cast<int>(runtime::AtomicOp::Order::kSeqCst),
              "ir::MemOrder and runtime::AtomicOp::Order must stay value-identical");

inline bool eval_cmp(ir::CmpPred pred, std::int64_t a, std::int64_t b) {
  // Branchless: classify the operand pair once as a lt/eq/gt one-hot, then
  // test it against the predicate's acceptance mask.  A switch here
  // compiles to a data-dependent jump table inside the interpreter hot
  // loops -- a second indirect branch per executed compare.
  const unsigned rel = (a < b ? 1u : 0u) | (a == b ? 2u : 0u) | (a > b ? 4u : 0u);
  constexpr std::uint8_t kAccept[6] = {
      2u,       // kEq
      1u | 4u,  // kNe
      1u,       // kLt
      1u | 2u,  // kLe
      4u,       // kGt
      2u | 4u,  // kGe
  };
  static_assert(static_cast<int>(ir::CmpPred::kEq) == 0 && static_cast<int>(ir::CmpPred::kGe) == 5);
  return (kAccept[static_cast<std::uint8_t>(pred)] & rel) != 0;
}

inline bool eval_fcmp(ir::CmpPred pred, double a, double b) {
  switch (pred) {
    case ir::CmpPred::kEq: return a == b;
    case ir::CmpPred::kNe: return a != b;
    case ir::CmpPred::kLt: return a < b;
    case ir::CmpPred::kLe: return a <= b;
    case ir::CmpPred::kGt: return a > b;
    case ir::CmpPred::kGe: return a >= b;
  }
  DETLOCK_UNREACHABLE("bad predicate");
}

}  // namespace engine_detail
}  // namespace detlock::interp
