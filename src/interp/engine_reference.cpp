// The reference execution engine: walks ir::Function blocks instruction by
// instruction.  Kept as the executable specification -- the decoded engine
// (engine_decoded.cpp) must match it bit for bit on fingerprints, per-thread
// instruction counts, and lock-acquisition schedules
// (tests/interp/decoded_equivalence_test.cpp).
#include <algorithm>
#include <cmath>
#include <thread>

#include "interp/engine_internal.hpp"

namespace detlock::interp {

using namespace engine_detail;

template <bool kObserve>
std::uint64_t Engine::exec_reference(ThreadCtx& ctx, ir::FuncId func_id,
                                     std::vector<std::uint64_t> args) {
  const ir::Function& func = module_.function(func_id);
  DETLOCK_CHECK(args.size() == func.num_params(), "argument count mismatch calling @" + func.name());
  std::vector<std::uint64_t> regs(func.num_regs(), 0);
  std::copy(args.begin(), args.end(), regs.begin());

  ir::BlockId block = ir::Function::kEntry;
  std::size_t index = 0;
  while (true) {
    const std::vector<ir::Instr>& instrs = func.block(block).instrs();
    DETLOCK_CHECK(index < instrs.size(), "fell off block '" + func.block(block).name() + "' in @" + func.name());
    const ir::Instr& in = instrs[index];
    ++index;
    if (++ctx.instrs > config_.max_steps_per_thread) {
      throw Error("thread " + std::to_string(ctx.tid) + " exceeded max_steps_per_thread");
    }
    if ((ctx.instrs & 0xffff) == 0 && abort_flag_.load(std::memory_order_relaxed)) {
      throw Error("execution aborted (another thread failed)");
    }
    if (config_.yield_interval != 0 && ++ctx.since_yield >= config_.yield_interval) {
      ctx.since_yield = 0;
      std::this_thread::yield();
    }

    switch (in.op) {
      case ir::Opcode::kConst: regs[in.dst] = from_i64(in.imm); break;
      case ir::Opcode::kConstF: regs[in.dst] = from_f64(in.fimm); break;
      case ir::Opcode::kMov: regs[in.dst] = regs[in.a]; break;
      // add/sub/mul wrap on overflow (two's complement): computed on the
      // unsigned representation, which is bit-identical to wrapping signed
      // arithmetic but defined behaviour.  Workload checksum chains rely on
      // the wraparound.
      case ir::Opcode::kAdd: regs[in.dst] = regs[in.a] + regs[in.b]; break;
      case ir::Opcode::kSub: regs[in.dst] = regs[in.a] - regs[in.b]; break;
      case ir::Opcode::kMul: regs[in.dst] = regs[in.a] * regs[in.b]; break;
      case ir::Opcode::kDiv: {
        const std::int64_t d = as_i64(regs[in.b]);
        DETLOCK_CHECK(d != 0, "division by zero in @" + func.name());
        regs[in.dst] = from_i64(as_i64(regs[in.a]) / d);
        break;
      }
      case ir::Opcode::kRem: {
        const std::int64_t d = as_i64(regs[in.b]);
        DETLOCK_CHECK(d != 0, "remainder by zero in @" + func.name());
        regs[in.dst] = from_i64(as_i64(regs[in.a]) % d);
        break;
      }
      case ir::Opcode::kAnd: regs[in.dst] = regs[in.a] & regs[in.b]; break;
      case ir::Opcode::kOr: regs[in.dst] = regs[in.a] | regs[in.b]; break;
      case ir::Opcode::kXor: regs[in.dst] = regs[in.a] ^ regs[in.b]; break;
      case ir::Opcode::kShl: regs[in.dst] = regs[in.a] << (regs[in.b] & 63); break;
      case ir::Opcode::kShr: regs[in.dst] = from_i64(as_i64(regs[in.a]) >> (regs[in.b] & 63)); break;
      case ir::Opcode::kFAdd: regs[in.dst] = from_f64(as_f64(regs[in.a]) + as_f64(regs[in.b])); break;
      case ir::Opcode::kFSub: regs[in.dst] = from_f64(as_f64(regs[in.a]) - as_f64(regs[in.b])); break;
      case ir::Opcode::kFMul: regs[in.dst] = from_f64(as_f64(regs[in.a]) * as_f64(regs[in.b])); break;
      case ir::Opcode::kFDiv: regs[in.dst] = from_f64(as_f64(regs[in.a]) / as_f64(regs[in.b])); break;
      case ir::Opcode::kFSqrt: regs[in.dst] = from_f64(std::sqrt(as_f64(regs[in.a]))); break;
      case ir::Opcode::kICmp:
        regs[in.dst] = eval_cmp(in.pred, as_i64(regs[in.a]), as_i64(regs[in.b])) ? 1 : 0;
        break;
      case ir::Opcode::kFCmp:
        regs[in.dst] = eval_fcmp(in.pred, as_f64(regs[in.a]), as_f64(regs[in.b])) ? 1 : 0;
        break;
      case ir::Opcode::kItoF: regs[in.dst] = from_f64(static_cast<double>(as_i64(regs[in.a]))); break;
      case ir::Opcode::kFtoI: regs[in.dst] = from_i64(static_cast<std::int64_t>(as_f64(regs[in.a]))); break;
      case ir::Opcode::kLoad:
      case ir::Opcode::kLoadF: {
        const std::int64_t addr = as_i64(regs[in.a]) + in.imm;
        if constexpr (kObserve) {
          // `index` was already advanced past this instruction; the flat
          // site index matches the decoded engine's `in - base`.
          const std::uint32_t flat =
              ref_block_offsets_[func_id][block] + static_cast<std::uint32_t>(index - 1);
          const AccessSite site{func_id, canon_site_index_[func_id][flat]};
          config_.observer->on_access(ctx.tid, addr, false, ctx.held, site);
        }
        regs[in.dst] = from_i64(memory_.load(addr));
        break;
      }
      case ir::Opcode::kStore:
      case ir::Opcode::kStoreF: {
        const std::int64_t addr = as_i64(regs[in.a]) + in.imm;
        if constexpr (kObserve) {
          const std::uint32_t flat =
              ref_block_offsets_[func_id][block] + static_cast<std::uint32_t>(index - 1);
          const AccessSite site{func_id, canon_site_index_[func_id][flat]};
          config_.observer->on_access(ctx.tid, addr, true, ctx.held, site);
        }
        memory_.store(addr, as_i64(regs[in.b]));
        break;
      }
      case ir::Opcode::kBr:
        block = static_cast<ir::BlockId>(in.imm);
        index = 0;
        break;
      case ir::Opcode::kCondBr:
        block = regs[in.a] != 0 ? static_cast<ir::BlockId>(in.imm) : in.target2;
        index = 0;
        break;
      case ir::Opcode::kSwitch: {
        ir::BlockId target = static_cast<ir::BlockId>(in.imm);
        const std::int64_t value = as_i64(regs[in.a]);
        const auto table_it = switch_tables_.find(&in);
        if (table_it != switch_tables_.end()) {
          const SwitchTable& table = table_it->second;
          const auto it = std::lower_bound(table.values.begin(), table.values.end(), value);
          if (it != table.values.end() && *it == value) {
            target = static_cast<ir::BlockId>(table.targets[it - table.values.begin()]);
          }
        } else {
          // No precomputed table (defensive only; the constructor indexes
          // every kSwitch): first-match linear scan, the original semantics.
          for (std::size_t i = 0; i + 1 < in.args.size(); i += 2) {
            if (static_cast<std::int64_t>(in.args[i]) == value) {
              target = static_cast<ir::BlockId>(in.args[i + 1]);
              break;
            }
          }
        }
        block = target;
        index = 0;
        break;
      }
      case ir::Opcode::kRet:
        return in.has_value ? regs[in.a] : 0;
      case ir::Opcode::kCall: {
        std::vector<std::uint64_t> call_args;
        call_args.reserve(in.args.size());
        for (ir::Reg r : in.args) call_args.push_back(regs[r]);
        regs[in.dst] = exec_reference<kObserve>(ctx, in.callee, std::move(call_args));
        break;
      }
      case ir::Opcode::kCallExtern: {
        std::vector<std::uint64_t> call_args;
        call_args.reserve(in.args.size());
        for (ir::Reg r : in.args) call_args.push_back(regs[r]);
        regs[in.dst] = call_extern(ctx, in.callee, std::move(call_args));
        break;
      }
      case ir::Opcode::kLock: {
        const runtime::MutexId mutex = static_cast<runtime::MutexId>(as_i64(regs[in.a]));
        backend_->lock(ctx.tid, mutex);
        ctx.held.push_back(mutex);
        break;
      }
      case ir::Opcode::kUnlock: {
        const runtime::MutexId mutex = static_cast<runtime::MutexId>(as_i64(regs[in.a]));
        backend_->unlock(ctx.tid, mutex);
        auto it = std::find(ctx.held.begin(), ctx.held.end(), mutex);
        if (it != ctx.held.end()) ctx.held.erase(it);
        break;
      }
      case ir::Opcode::kBarrier:
        // Barrier (and join) observation moved into the backends, which fire
        // runtime::SyncObserver hooks at the exact edge-establishing points.
        backend_->barrier_wait(ctx.tid, static_cast<runtime::BarrierId>(as_i64(regs[in.a])),
                               static_cast<std::uint32_t>(as_i64(regs[in.b])));
        break;
      case ir::Opcode::kCondWait:
        // The mutex is released for the duration of the wait and reacquired
        // before return, so the engine-side lockset is unchanged on exit.
        backend_->cond_wait(ctx.tid, static_cast<runtime::CondVarId>(as_i64(regs[in.a])),
                            static_cast<runtime::MutexId>(as_i64(regs[in.b])));
        break;
      case ir::Opcode::kCondSignal:
        backend_->cond_signal(ctx.tid, static_cast<runtime::CondVarId>(as_i64(regs[in.a])));
        break;
      case ir::Opcode::kCondBroadcast:
        backend_->cond_broadcast(ctx.tid, static_cast<runtime::CondVarId>(as_i64(regs[in.a])));
        break;
      case ir::Opcode::kSpawn: {
        std::vector<std::uint64_t> call_args;
        call_args.reserve(in.args.size());
        for (ir::Reg r : in.args) call_args.push_back(regs[r]);
        const runtime::ThreadId child = backend_->register_spawn(ctx.tid);
        spawned_count_.fetch_add(1, std::memory_order_relaxed);
        os_threads_[child] =
            std::thread(&Engine::thread_main, this, child, in.callee, std::move(call_args));
        regs[in.dst] = from_i64(child);
        break;
      }
      case ir::Opcode::kJoin: {
        const std::int64_t handle = as_i64(regs[in.a]);
        DETLOCK_CHECK(handle >= 0 && static_cast<std::size_t>(handle) < os_threads_.size() &&
                          os_threads_[static_cast<std::size_t>(handle)].joinable(),
                      "join of never-spawned or already-joined thread " + std::to_string(handle));
        const runtime::ThreadId target = static_cast<runtime::ThreadId>(handle);
        backend_->join(ctx.tid, target);
        os_threads_[target].join();
        break;
      }
      case ir::Opcode::kAtomicLoad: {
        runtime::AtomicOp op;
        op.kind = runtime::AtomicOp::Kind::kLoad;
        op.order = static_cast<runtime::AtomicOp::Order>(in.order);
        op.addr = as_i64(regs[in.a]) + in.imm;
        regs[in.dst] = from_i64(backend_->atomic_op(ctx.tid, op, memory_));
        break;
      }
      case ir::Opcode::kAtomicStore: {
        runtime::AtomicOp op;
        op.kind = runtime::AtomicOp::Kind::kStore;
        op.order = static_cast<runtime::AtomicOp::Order>(in.order);
        op.addr = as_i64(regs[in.a]) + in.imm;
        op.operand = as_i64(regs[in.b]);
        backend_->atomic_op(ctx.tid, op, memory_);
        break;
      }
      case ir::Opcode::kAtomicRmw: {
        runtime::AtomicOp op;
        op.kind = in.rmw == ir::AtomicRmwKind::kAdd        ? runtime::AtomicOp::Kind::kAdd
                  : in.rmw == ir::AtomicRmwKind::kExchange ? runtime::AtomicOp::Kind::kExchange
                                                           : runtime::AtomicOp::Kind::kCas;
        op.order = static_cast<runtime::AtomicOp::Order>(in.order);
        op.addr = as_i64(regs[in.a]) + in.imm;
        op.operand = as_i64(regs[in.b]);
        if (in.rmw == ir::AtomicRmwKind::kCas) op.desired = as_i64(regs[in.c]);
        regs[in.dst] = from_i64(backend_->atomic_op(ctx.tid, op, memory_));
        break;
      }
      case ir::Opcode::kFence: {
        runtime::AtomicOp op;
        op.kind = runtime::AtomicOp::Kind::kFence;
        op.order = static_cast<runtime::AtomicOp::Order>(in.order);
        backend_->atomic_op(ctx.tid, op, memory_);
        break;
      }
      case ir::Opcode::kClockAdd:
        ++ctx.clock_instrs;
        backend_->clock_add(ctx.tid, static_cast<std::uint64_t>(in.imm));
        break;
      case ir::Opcode::kClockAddDyn: {
        ++ctx.clock_instrs;
        const double scaled = in.fimm * static_cast<double>(as_i64(regs[in.a]));
        const std::int64_t delta = in.imm + static_cast<std::int64_t>(std::llround(std::max(0.0, scaled)));
        backend_->clock_add(ctx.tid, static_cast<std::uint64_t>(std::max<std::int64_t>(delta, 0)));
        break;
      }
    }
  }
}

template std::uint64_t Engine::exec_reference<true>(ThreadCtx&, ir::FuncId, std::vector<std::uint64_t>);
template std::uint64_t Engine::exec_reference<false>(ThreadCtx&, ir::FuncId, std::vector<std::uint64_t>);

}  // namespace detlock::interp
