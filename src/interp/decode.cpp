#include "interp/decode.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace detlock::interp {

void build_sorted_cases(const std::vector<ir::Reg>& pairs, std::vector<std::int64_t>& values,
                        std::vector<std::uint32_t>& targets) {
  values.clear();
  targets.clear();
  values.reserve(pairs.size() / 2);
  targets.reserve(pairs.size() / 2);
  // Dedup keeping the FIRST occurrence: the reference linear scan stops at
  // the first matching pair, so a duplicated case value's later entries are
  // unreachable and must stay unreachable after sorting.
  for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
    const std::int64_t value = static_cast<std::int64_t>(pairs[i]);
    if (std::find(values.begin(), values.end(), value) != values.end()) continue;
    values.push_back(value);
    targets.push_back(pairs[i + 1]);
  }
  // Insertion-sort both arrays by value (case tables are small; this also
  // avoids materializing a pair vector).
  for (std::size_t i = 1; i < values.size(); ++i) {
    const std::int64_t v = values[i];
    const std::uint32_t t = targets[i];
    std::size_t j = i;
    for (; j > 0 && values[j - 1] > v; --j) {
      values[j] = values[j - 1];
      targets[j] = targets[j - 1];
    }
    values[j] = v;
    targets[j] = t;
  }
}

namespace {

/// Per-function translation context: flat offset of each block.
std::vector<std::uint32_t> block_offsets(const ir::Function& func) {
  std::vector<std::uint32_t> offsets(func.num_blocks(), 0);
  std::uint32_t offset = 0;
  for (ir::BlockId b = 0; b < func.num_blocks(); ++b) {
    offsets[b] = offset;
    const ir::BasicBlock& block = func.block(b);
    DETLOCK_CHECK(block.has_terminator(),
                  "decode: block '" + block.name() + "' in @" + func.name() + " has no terminator");
    offset += static_cast<std::uint32_t>(block.instrs().size());
  }
  return offsets;
}

/// Decode-time superinstruction fusion over one function's flat code
/// [begin, end): rewrite the FIRST slot of frequent fall-through pairs to a
/// fused opcode whose handler executes both slots with a single dispatch.
/// The second slot is left untouched, so a branch landing on it still
/// executes the original instruction; and because fusion is in place, no
/// offset in the already-resolved branch targets changes.  Pairs are
/// matched greedily and non-overlapping, so a slot is part of at most one
/// fused pair and every second slot keeps its plain opcode.
///
/// The chosen pairs are the compare-and-branch loop header (kICmp +
/// kCondBr) and the accumulate idioms (constant/multiply/mask feeding an
/// add) that dominate the instruction mix of arithmetic kernels; every
/// first op is a non-terminator, so the next flat slot is guaranteed to be
/// the fall-through successor in the same block.
/// True if `add` (a plain kAdd slot) consumes `dst`, canonicalizing the
/// commutative operands so that add.a == dst.  The swap is safe even when a
/// branch lands on the add directly: wrapping addition is commutative, so
/// the standalone instruction is unchanged semantically.  Fused handlers
/// rely on the canonical form to forward the first op's result in a
/// machine register instead of storing and reloading it.
bool canonicalize_add_consumer(DecodedInstr& add, std::uint32_t dst) {
  if (add.a == dst) return true;
  if (add.b == dst) {
    std::swap(add.a, add.b);
    return true;
  }
  return false;
}

void fuse_pairs(DecodedInstr* begin, DecodedInstr* end) {
  for (DecodedInstr* in = begin; in + 1 < end; ++in) {
    const std::uint8_t first = in->op;
    const std::uint8_t second = in[1].op;
    // Fusion requires the second slot to consume the first slot's result:
    // the fused handlers forward that value in a register, skipping the
    // arena round trip.  Longest match first: the loop-closing triple
    // (bump an induction variable by a constant and branch back to the
    // header) beats the plain const+add pair.
    if (first == dop(ir::Opcode::kConst) && second == dop(ir::Opcode::kAdd) && in + 2 < end &&
        in[2].op == dop(ir::Opcode::kBr) && canonicalize_add_consumer(in[1], in->dst)) {
      in->op = kFusedConstAddBr;
      in += 2;  // non-overlapping: the trailing slots stay plain
      continue;
    }
    std::uint8_t fused = first;
    if (first == dop(ir::Opcode::kICmp) && second == dop(ir::Opcode::kCondBr) &&
        in[1].a == in->dst) {
      fused = kFusedICmpBr;
    } else if (second == dop(ir::Opcode::kAdd) &&
               (first == dop(ir::Opcode::kConst) || first == dop(ir::Opcode::kMul) ||
                first == dop(ir::Opcode::kAnd)) &&
               canonicalize_add_consumer(in[1], in->dst)) {
      if (first == dop(ir::Opcode::kConst)) fused = kFusedConstAdd;
      if (first == dop(ir::Opcode::kMul)) fused = kFusedMulAdd;
      if (first == dop(ir::Opcode::kAnd)) fused = kFusedAndAdd;
    }
    if (fused != first) {
      in->op = fused;
      ++in;  // non-overlapping: the second slot stays plain
    }
  }
}

}  // namespace

DecodedModule decode_module(const ir::Module& module) {
  DecodedModule dm;
  dm.functions.resize(module.functions().size());
  dm.code.reserve(module.total_instr_count());

  std::vector<std::uint32_t> func_base(module.functions().size(), 0);

  for (ir::FuncId fid = 0; fid < module.functions().size(); ++fid) {
    const ir::Function& func = module.function(fid);
    DecodedFunction& df = dm.functions[fid];
    df.num_params = func.num_params();
    df.num_regs = std::max(func.num_regs(), func.num_params());
    df.source = &func;
    func_base[fid] = static_cast<std::uint32_t>(dm.code.size());
    if (func.num_blocks() == 0) continue;  // never callable; entry stays null

    const std::vector<std::uint32_t> offsets = block_offsets(func);
    std::vector<std::int64_t> case_values;
    std::vector<std::uint32_t> case_targets;

    auto block_target = [&](std::uint64_t block) -> std::uint32_t {
      DETLOCK_CHECK(block < offsets.size(), "decode: bad branch target in @" + func.name());
      return offsets[block];
    };

    for (ir::BlockId b = 0; b < func.num_blocks(); ++b) {
      for (const ir::Instr& in : func.block(b).instrs()) {
        DecodedInstr d;
        d.op = dop(in.op);
        d.pred = in.pred;
        d.has_value = in.has_value;
        d.dst = in.dst;
        d.a = in.a;
        d.b = in.b;
        d.imm = in.imm;
        d.fimm = in.fimm;
        switch (in.op) {
          case ir::Opcode::kBr:
            d.target = block_target(static_cast<std::uint64_t>(in.imm));
            break;
          case ir::Opcode::kCondBr:
            d.target = block_target(static_cast<std::uint64_t>(in.imm));
            d.target2 = block_target(in.target2);
            break;
          case ir::Opcode::kSwitch: {
            d.target2 = block_target(static_cast<std::uint64_t>(in.imm));  // default
            build_sorted_cases(in.args, case_values, case_targets);
            d.pool = static_cast<std::uint32_t>(dm.case_values.size());
            d.count = static_cast<std::uint32_t>(case_values.size());
            for (std::size_t i = 0; i < case_values.size(); ++i) {
              dm.case_values.push_back(case_values[i]);
              dm.case_targets.push_back(block_target(case_targets[i]));
            }
            break;
          }
          case ir::Opcode::kCall:
          case ir::Opcode::kSpawn: {
            DETLOCK_CHECK(in.callee < module.functions().size(),
                          "decode: bad callee in @" + func.name());
            const ir::Function& callee = module.function(in.callee);
            DETLOCK_CHECK(in.args.size() == callee.num_params(),
                          "argument count mismatch calling @" + callee.name());
            d.callee_id = in.callee;
            d.pool = static_cast<std::uint32_t>(dm.reg_pool.size());
            d.count = static_cast<std::uint32_t>(in.args.size());
            dm.reg_pool.insert(dm.reg_pool.end(), in.args.begin(), in.args.end());
            break;
          }
          case ir::Opcode::kCallExtern: {
            DETLOCK_CHECK(in.callee < module.externs().size(),
                          "decode: bad extern callee in @" + func.name());
            d.callee = nullptr;  // select the union's pointer member
            d.callee_id = in.callee;
            d.pool = static_cast<std::uint32_t>(dm.reg_pool.size());
            d.count = static_cast<std::uint32_t>(in.args.size());
            dm.reg_pool.insert(dm.reg_pool.end(), in.args.begin(), in.args.end());
            break;
          }
          case ir::Opcode::kAtomicLoad:
          case ir::Opcode::kAtomicStore:
          case ir::Opcode::kAtomicRmw:
          case ir::Opcode::kFence:
            d.aux = pack_atomic_aux(in.order, in.rmw);
            d.target = in.c;  // CAS desired-value register; atomics never branch
            break;
          default:
            break;
        }
        dm.code.push_back(d);
      }
    }
    df.code_size = static_cast<std::uint32_t>(dm.code.size()) - func_base[fid];
    fuse_pairs(dm.code.data() + func_base[fid], dm.code.data() + dm.code.size());
  }

  // Pointer fixup after all appends: vector addresses are now stable.
  for (ir::FuncId fid = 0; fid < dm.functions.size(); ++fid) {
    DecodedFunction& df = dm.functions[fid];
    if (df.code_size > 0) df.entry = dm.code.data() + func_base[fid];
  }
  for (DecodedInstr& d : dm.code) {
    if (d.op == dop(ir::Opcode::kCall)) d.callee = &dm.functions[d.callee_id];
  }
  return dm;
}

}  // namespace detlock::interp
