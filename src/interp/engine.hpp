// Execution engine: runs an (instrumented) IR module on real OS threads.
//
// Every IR thread is one OS thread; kSpawn/kJoin/kLock/kUnlock/kBarrier and
// the instrumentation opcodes dispatch into the configured SyncBackend, so
// the *same* program binary-compared runs under:
//   * NondetBackend                      -- "Original Exec Time" baseline
//   * DetBackend (every-update clocks)   -- DetLock
//   * DetBackend (chunked clocks)        -- the Kendo comparison runtime
//
// The interpreter charges real wall time proportional to executed IR
// instructions, so clock-update overhead (extra kClockAdd instructions) and
// deterministic-execution overhead (turn waiting) both show up in measured
// run time exactly as they do for natively compiled code in the paper.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "interp/decode.hpp"
#include "interp/externs.hpp"
#include "interp/observer.hpp"
#include "ir/module.hpp"
#include "runtime/backend.hpp"
#include "runtime/det_allocator.hpp"
#include "runtime/profile.hpp"
#include "runtime/shared_memory.hpp"

namespace detlock::interp {

/// Which execution engine runs the IR.
///
///   kDecoded   -- predecoded direct-threaded engine (interp/decode.hpp):
///                 flat code, computed-goto dispatch, arena register frames.
///                 The default: every mode (det/nondet/kendo), the observer
///                 hook, and all sync opcodes behave identically to the
///                 reference engine (proven by tests/interp/
///                 decoded_equivalence_test.cpp).
///   kReference -- the original block-walking switch interpreter, kept as
///                 the executable specification and differential baseline.
///   kJit       -- template JIT over the decoded code (interp/jit/): the
///                 arithmetic/branch/memory core runs as native x86-64 with
///                 the decoded engine's anchor-based counting preserved at
///                 every control transfer; sync/extern/clock opcodes
///                 trampoline into the decoded handlers.  Degrades to
///                 kDecoded (with a one-time warning) on hosts that cannot
///                 run native code, and silently for observer runs, so
///                 results are engine-independent either way.
enum class EngineKind { kDecoded, kReference, kJit };

namespace jit {
class JitModule;
}  // namespace jit

struct EngineConfig {
  /// true: DetBackend (configured by `runtime`); false: NondetBackend.
  bool deterministic = true;
  EngineKind engine = EngineKind::kDecoded;
  runtime::RuntimeConfig runtime;

  std::size_t memory_words = 1 << 20;
  /// Per-thread executed-instruction limit (runaway-loop guard).
  std::uint64_t max_steps_per_thread = 4'000'000'000ULL;

  /// Cooperative time-slicing: every thread yields the CPU after this many
  /// executed instructions (0 disables).  On hosts with fewer cores than
  /// program threads this is what makes logical-clock waiting behave like
  /// it does on real parallel hardware: without it, a thread blocked on a
  /// peer's clock donates a whole multi-millisecond scheduler quantum to
  /// that peer, inflating deterministic-execution overhead by orders of
  /// magnitude.  The cost is identical across all execution modes, so
  /// overhead ratios are unaffected.
  std::uint32_t yield_interval = 256;

  /// Optional race-detection hook; when set, every load/store is reported
  /// together with the executing thread's lockset.
  MemoryAccessObserver* observer = nullptr;

  /// Deterministic heap served by dl_malloc/dl_free; 0 words disables it.
  /// Defaults to the upper half of memory.
  std::int64_t heap_base = -1;  // -1 => memory_words / 2
  std::int64_t heap_words = -1; // -1 => memory_words / 2
  /// Reserved mutex backing the allocator's internal lock (paper: malloc's
  /// lock replaced with a deterministic lock).
  runtime::MutexId allocator_mutex = 4095;

  /// Pre-decoded, immutable code to execute instead of decoding the module
  /// privately (engine == kDecoded only).  The module must have been
  /// finalized by Engine::prepare_decoded_module (handler pointers patched
  /// at compile time) and must outlive the engine; any number of engines on
  /// any number of threads may share one.  Incompatible with `observer`:
  /// the observing dispatch loop uses its own handler labels, so observed
  /// runs decode privately (see service::ExecutionContext).  Not owned.
  const DecodedModule* shared_decoded = nullptr;

  /// Pre-compiled native code to execute instead of JIT-compiling privately
  /// (engine == kJit only).  Must have been compiled from exactly the
  /// decoded module this engine executes (`shared_decoded`); read-only and
  /// shareable across engines/threads like the decoded module.  Not owned.
  const jit::JitModule* shared_jit = nullptr;
};

struct RunResult {
  std::int64_t main_return = 0;
  std::uint64_t instructions = 0;        // all executed IR instructions
  std::uint64_t clock_update_instrs = 0; // kClockAdd/kClockAddDyn among them
  std::uint64_t threads = 0;
  std::uint64_t trace_fingerprint = 0;
  std::uint64_t lock_acquires = 0;
  std::uint64_t memory_fingerprint = 0;
  runtime::BackendStats sync;
  /// Published logical clock of each thread just before it finished.
  std::vector<std::uint64_t> final_clocks;
  /// Executed IR instructions per thread (indexed by ThreadId; same length
  /// as final_clocks).  The differential tests assert these match across
  /// engines thread by thread, not just in total.
  std::vector<std::uint64_t> per_thread_instructions;
};

class Engine {
 public:
  Engine(const ir::Module& module, EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes `entry(args...)` as the main thread; returns once every
  /// spawned thread has been joined (unjoined threads are an error).  An
  /// Engine runs exactly once.
  RunResult run(ir::FuncId entry, const std::vector<std::int64_t>& args = {});

  RunResult run(std::string_view entry_name, const std::vector<std::int64_t>& args = {});

  runtime::SharedMemory& memory() { return memory_; }
  runtime::SyncBackend& backend() { return *backend_; }
  ExternTable& externs() { return externs_; }
  runtime::DetAllocator* allocator() { return allocator_.get(); }
  /// Wait-time attribution profiler; non-null iff EngineConfig::runtime
  /// requested profiling (profile flag or an externally wired profiler).
  runtime::Profiler* profiler() { return config_.runtime.profiler; }
  /// Stall watchdog; non-null iff EngineConfig::runtime.watchdog_ms > 0.
  /// After run() throws, fired() + report() distinguish a watchdog abort
  /// (deadlock/stall diagnosis attached) from an ordinary guest error.
  const runtime::Watchdog* watchdog() const { return watchdog_.get(); }

  /// Per-thread output of the `record` extern -- deterministic per thread,
  /// used by tests as an application-visible determinism witness.
  const std::vector<std::vector<std::int64_t>>& records() const { return records_; }

  /// True iff guest code will actually run as native JIT code (engine ==
  /// kJit, compilation succeeded, no observer forced the decoded loop).
  /// False under kJit means the graceful decoded fallback is in effect.
  bool jit_active() const { return jit_ != nullptr; }

  /// Finalizes a freshly decoded module for cross-engine, cross-thread
  /// sharing: patches every DecodedInstr::handler with the observer-free
  /// dispatch loop's computed-goto labels (a no-op in switch-dispatch
  /// builds).  Label addresses are properties of the compiled binary, so
  /// the patch is identical no matter which engine would have applied it --
  /// hoisting it here (compile time) is what lets run() treat a shared
  /// module as strictly read-only.  kCallExtern callees deliberately stay
  /// null in shared modules: extern implementations close over per-engine
  /// state, so each engine resolves them through its private lazy path.
  static void prepare_decoded_module(const ir::Module& module, DecodedModule& decoded);

 private:
  struct ThreadCtx;
  /// The JIT helpers' window into engine internals (engine_jit.cpp).
  friend struct JitRuntime;

  /// Sorted switch-case table for the reference engine (decoded switches
  /// live in DecodedModule's pools instead).
  struct SwitchTable {
    std::vector<std::int64_t> values;    // sorted, deduplicated
    std::vector<std::uint32_t> targets;  // parallel block ids
  };

  /// Entry point per thread: dispatches on EngineConfig::engine and the
  /// observer variant, then runs the whole call tree in that variant.
  std::uint64_t exec_function(ThreadCtx& ctx, ir::FuncId func, std::vector<std::uint64_t> args);
  /// Reference block-walking loop (engine_reference.cpp); recurses into
  /// itself for kCall so the observer test happens once per thread, not
  /// once per load/store.
  template <bool kObserve>
  std::uint64_t exec_reference(ThreadCtx& ctx, ir::FuncId func, std::vector<std::uint64_t> args);
  /// Direct-threaded loop over decoded code (engine_decoded.cpp).  The
  /// frame occupies ctx.arena[frame_base, frame_base + func.num_regs);
  /// parameters are already in place when called.
  template <bool kObserve>
  std::uint64_t exec_decoded(ThreadCtx& ctx, const DecodedFunction& func, std::size_t frame_base);
  /// Native execution of one call tree via jit_ (engine_jit.cpp); arity is
  /// checked by exec_function before dispatch.
  std::uint64_t exec_jit(ThreadCtx& ctx, ir::FuncId func, const std::vector<std::uint64_t>& args);
  std::uint64_t call_extern(ThreadCtx& ctx, ir::ExternId id, std::vector<std::uint64_t> args);
  void thread_main(runtime::ThreadId tid, ir::FuncId func, std::vector<std::uint64_t> args);
  /// Fills DecodedInstr::callee for every kCallExtern whose implementation
  /// is registered (run() entry: after test-registered externs exist).
  /// Privately owned modules only; shared modules keep callees null and use
  /// the lazy per-engine path.
  void resolve_decoded_externs(DecodedModule& decoded);
  /// Direct-threading: patches DecodedInstr::handler with the computed-goto
  /// label of each opcode's handler in the exec_decoded instantiation this
  /// engine will use.  Called at run() entry for privately owned modules
  /// and from prepare_decoded_module for shared ones.  No-op in
  /// switch-dispatch builds.
  void resolve_decoded_handlers(DecodedModule& decoded);

  const ir::Module& module_;
  EngineConfig config_;
  /// Decoded code this engine executes: &*decoded_owned_ normally, the
  /// caller's immutable shared module when EngineConfig::shared_decoded is
  /// set, null for the reference engine.
  const DecodedModule* decoded_ = nullptr;
  /// Present iff this engine decoded privately (kDecoded without a shared
  /// module); mutated by the resolve_* steps at run() entry.
  std::unique_ptr<DecodedModule> decoded_owned_;
  /// Native code this engine executes: non-null iff jit_active().  Either
  /// the caller's shared module or &*jit_owned_.
  const jit::JitModule* jit_ = nullptr;
  /// Present iff this engine JIT-compiled privately (kJit without a shared
  /// jit module, on a capable host).
  std::unique_ptr<const jit::JitModule> jit_owned_;
  /// Reference engine only: per-kSwitch sorted case tables, keyed by
  /// instruction address (stable: the engine holds the module by const
  /// reference and nothing mutates it after construction).
  std::unordered_map<const ir::Instr*, SwitchTable> switch_tables_;
  /// Reference engine only: per-function flat instruction offset of each
  /// block (blocks concatenated in block-id order), so observer AccessSites
  /// match the decoded engine's `instr - code_base` exactly.
  std::vector<std::vector<std::uint32_t>> ref_block_offsets_;
  /// Observer runs only: per-function map from flat instruction position
  /// (blocks concatenated in block-id order, every instruction) to the
  /// canonical site index, which counts only non-instrumentation
  /// instructions.  Clock updates move between publication modes (placement
  /// start vs end), so skipping them makes reported AccessSites
  /// publication-mode-independent.
  std::vector<std::vector<std::uint32_t>> canon_site_index_;
  runtime::SharedMemory memory_;
  std::unique_ptr<runtime::Profiler> profiler_;  // owned iff runtime.profile was set
  std::unique_ptr<runtime::SyncBackend> backend_;
  std::unique_ptr<runtime::DetAllocator> allocator_;
  ExternTable externs_;
  std::vector<const ExternImpl*> extern_impls_;  // indexed by ExternId

  std::atomic<bool> abort_flag_{false};
  std::vector<std::thread> os_threads_;
  std::vector<std::exception_ptr> thread_errors_;
  std::vector<std::vector<std::int64_t>> records_;
  std::vector<std::uint64_t> final_clocks_;
  std::vector<std::uint64_t> instr_counts_;
  std::vector<std::uint64_t> clock_instr_counts_;
  std::atomic<std::uint32_t> spawned_count_{0};
  /// Watchdog progress counter the backends bump (wired into
  /// RuntimeConfig::progress before the backend is constructed).
  std::atomic<std::uint64_t> progress_counter_{0};
  /// Declared after backend_: destroyed first, so the monitor thread is
  /// always joined before the backend it snapshots goes away.
  std::unique_ptr<runtime::Watchdog> watchdog_;
  bool ran_ = false;
};

}  // namespace detlock::interp
