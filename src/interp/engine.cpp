#include "interp/engine.hpp"

#include <atomic>
#include <cstdio>
#include <thread>

#include "interp/engine_internal.hpp"
#include "interp/jit/jit.hpp"
#include "runtime/det_backend.hpp"
#include "runtime/nondet_backend.hpp"
#include "support/error.hpp"

namespace detlock::interp {

using engine_detail::as_i64;
using engine_detail::from_i64;

namespace {

/// The graceful --interp=jit degradation is a config-level event, not a
/// per-engine one: warn once per process, not once per BatchExecutor worker.
void warn_jit_unavailable() {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "detlock: --interp=jit unavailable on this host/build; "
                 "falling back to the decoded engine\n");
  }
}

}  // namespace

Engine::Engine(const ir::Module& module, EngineConfig config)
    : module_(module),
      config_(config),
      memory_(config.memory_words),
      os_threads_(config.runtime.max_threads),
      thread_errors_(config.runtime.max_threads),
      records_(config.runtime.max_threads),
      final_clocks_(config.runtime.max_threads, 0),
      instr_counts_(config.runtime.max_threads, 0),
      clock_instr_counts_(config.runtime.max_threads, 0) {
  config_.runtime.abort_flag = &abort_flag_;
  if (config_.runtime.profile && config_.runtime.profiler == nullptr) {
    profiler_ = std::make_unique<runtime::Profiler>(config_.runtime.max_threads,
                                                    config_.runtime.profile_spans);
    config_.runtime.profiler = profiler_.get();
  }
  // Wire the progress counter before the backend is constructed: backends
  // capture RuntimeConfig::progress at construction.
  if (config_.runtime.watchdog_ms > 0 && config_.runtime.progress == nullptr) {
    config_.runtime.progress = &progress_counter_;
  }
  // Same for the synchronization observer: an engine-level observer sees
  // both memory accesses (engine hook) and sync edges (backend hooks).
  if (config_.observer != nullptr && config_.runtime.sync_observer == nullptr) {
    config_.runtime.sync_observer = config_.observer;
  }
  if (config_.observer != nullptr) {
    // Canonical AccessSite indices: flat position -> index among the
    // non-clock-update instructions only, so reported sites are identical
    // across clock placements / publication modes (see engine.hpp).
    canon_site_index_.reserve(module_.functions().size());
    for (const ir::Function& func : module_.functions()) {
      std::vector<std::uint32_t> map;
      std::uint32_t canon = 0;
      for (const ir::BasicBlock& block : func.blocks()) {
        for (const ir::Instr& in : block.instrs()) {
          map.push_back(canon);
          if (!ir::is_clock_update(in.op)) ++canon;
        }
      }
      canon_site_index_.push_back(std::move(map));
    }
  }
  if (config_.deterministic) {
    backend_ = std::make_unique<runtime::DetBackend>(config_.runtime);
  } else {
    backend_ = std::make_unique<runtime::NondetBackend>(config_.runtime);
  }
  if (config_.runtime.watchdog_ms > 0) {
    runtime::WatchdogConfig wc;
    wc.window_ms = config_.runtime.watchdog_ms;
    wc.abort_on_stall = config_.runtime.watchdog_abort;
    wc.abort_flag = &abort_flag_;
    wc.progress = config_.runtime.progress;
    watchdog_ = std::make_unique<runtime::Watchdog>(wc, *backend_);
  }

  if (config_.heap_base < 0) config_.heap_base = static_cast<std::int64_t>(config_.memory_words / 2);
  if (config_.heap_words < 0) {
    config_.heap_words = static_cast<std::int64_t>(config_.memory_words) - config_.heap_base;
  }
  if (config_.heap_words > 0) {
    allocator_ = std::make_unique<runtime::DetAllocator>(*backend_, config_.allocator_mutex, config_.heap_base,
                                                         config_.heap_words);
  }

  register_standard_externs(externs_);
  externs_.register_impl("dl_malloc", [this](ExternCallContext& c) {
    DETLOCK_CHECK(allocator_ != nullptr, "dl_malloc called but the heap is disabled");
    return from_i64(allocator_->allocate(c.thread, as_i64(c.args[0])));
  });
  externs_.register_impl("dl_free", [this](ExternCallContext& c) {
    DETLOCK_CHECK(allocator_ != nullptr, "dl_free called but the heap is disabled");
    allocator_->deallocate(c.thread, as_i64(c.args[0]));
    return std::uint64_t{0};
  });
  externs_.register_impl("record", [this](ExternCallContext& c) {
    records_[c.thread].push_back(as_i64(c.args[0]));
    return std::uint64_t{0};
  });

  extern_impls_.assign(module_.externs().size(), nullptr);

  if (config_.engine == EngineKind::kDecoded || config_.engine == EngineKind::kJit) {
    if (config_.shared_decoded != nullptr) {
      // Shared immutable code: decoding, extern resolution, and handler
      // patching all happened at compile time (prepare_decoded_module), so
      // this engine performs no writes whatsoever to the module and any
      // number of sibling engines may execute it concurrently.  The
      // observing dispatch loop has its own handler labels, so shared
      // modules cannot carry an observer (race checking decodes privately).
      DETLOCK_CHECK(config_.observer == nullptr,
                    "shared decoded modules are prepared for observer-free dispatch; "
                    "drop EngineConfig::shared_decoded to attach an observer");
      decoded_ = config_.shared_decoded;
    } else {
      decoded_owned_ = std::make_unique<DecodedModule>(decode_module(module_));
      decoded_ = decoded_owned_.get();
    }
    if (config_.engine == EngineKind::kJit) {
      DETLOCK_CHECK(config_.shared_jit == nullptr || config_.shared_jit->decoded() == decoded_,
                    "EngineConfig::shared_jit was compiled from a different decoded module; "
                    "pass the matching shared_decoded alongside it");
      if (config_.observer == nullptr) {
        if (config_.shared_jit != nullptr) {
          jit_ = config_.shared_jit;
        } else {
          jit_owned_ = jit::compile_module(*decoded_);
          jit_ = jit_owned_.get();
        }
        if (jit_ == nullptr) warn_jit_unavailable();
      }
      // Observer runs stay on the decoded loop silently: the access hook
      // lives inside exec_decoded<true>, and the equivalence suite proves
      // the engines observationally identical, so nothing is lost.
    } else {
      DETLOCK_CHECK(config_.shared_jit == nullptr,
                    "EngineConfig::shared_jit requires engine == kJit");
    }
  } else {
    DETLOCK_CHECK(config_.shared_decoded == nullptr && config_.shared_jit == nullptr,
                  "shared modules require the decoded or jit engine");
    // Reference engine: precompute a sorted case table per kSwitch so the
    // dispatch is a binary search instead of an O(cases) linear scan, plus
    // each block's flat instruction offset (blocks concatenated in block-id
    // order, the decoded engine's layout) so observer AccessSites are
    // engine-independent.
    for (const ir::Function& func : module_.functions()) {
      std::vector<std::uint32_t> offsets;
      offsets.reserve(func.num_blocks());
      std::uint32_t flat = 0;
      for (const ir::BasicBlock& block : func.blocks()) {
        offsets.push_back(flat);
        flat += static_cast<std::uint32_t>(block.instrs().size());
        for (const ir::Instr& in : block.instrs()) {
          if (in.op != ir::Opcode::kSwitch) continue;
          SwitchTable table;
          build_sorted_cases(in.args, table.values, table.targets);
          switch_tables_.emplace(&in, std::move(table));
        }
      }
      ref_block_offsets_.push_back(std::move(offsets));
    }
  }
}

Engine::~Engine() {
  // Defensive: never leave detached OS threads behind if run() threw.
  abort_flag_.store(true, std::memory_order_relaxed);
  for (std::thread& t : os_threads_) {
    if (t.joinable()) t.join();
  }
}

std::uint64_t Engine::call_extern(ThreadCtx& ctx, ir::ExternId id, std::vector<std::uint64_t> args) {
  const ExternImpl* impl = extern_impls_[id];
  if (impl == nullptr) {
    // Lazy resolution: tests may register implementations after the engine
    // is constructed.  ExternTable guarantees stable addresses, and the
    // first extern call happens-after run() starts, so caching is safe.
    const std::string& name = module_.extern_decl(id).name;
    DETLOCK_CHECK(externs_.has(name), "extern @" + name + " has no implementation");
    impl = &externs_.lookup(name);
    extern_impls_[id] = impl;
  }
  ExternCallContext call{memory_, ctx.tid, args};
  return (*impl)(call);
}

void Engine::resolve_decoded_externs(DecodedModule& decoded) {
  for (DecodedInstr& in : decoded.code) {
    if (in.op != dop(ir::Opcode::kCallExtern) || in.callee != nullptr) continue;
    const std::string& name = module_.extern_decl(in.callee_id).name;
    // Unregistered externs stay null: executing one routes through
    // call_extern's lazy path, which throws the canonical error message.
    if (externs_.has(name)) in.callee = &externs_.lookup(name);
  }
}

std::uint64_t Engine::exec_function(ThreadCtx& ctx, ir::FuncId func_id, std::vector<std::uint64_t> args) {
  if (decoded_ != nullptr) {
    const DecodedFunction& func = decoded_->function(func_id);
    DETLOCK_CHECK(args.size() == func.num_params,
                  "argument count mismatch calling @" + module_.function(func_id).name());
    if (jit_ != nullptr) return exec_jit(ctx, func_id, args);
    if (ctx.arena.size() < func.num_regs) ctx.arena.resize(std::max<std::size_t>(func.num_regs, 64));
    std::uint64_t* regs = ctx.arena.data();
    std::copy(args.begin(), args.end(), regs);
    std::fill(regs + args.size(), regs + func.num_regs, 0);
    if (config_.observer != nullptr) return exec_decoded<true>(ctx, func, 0);
    return exec_decoded<false>(ctx, func, 0);
  }
  if (config_.observer != nullptr) return exec_reference<true>(ctx, func_id, std::move(args));
  return exec_reference<false>(ctx, func_id, std::move(args));
}

void Engine::thread_main(runtime::ThreadId tid, ir::FuncId func, std::vector<std::uint64_t> args) {
  ThreadCtx ctx;
  ctx.tid = tid;
  runtime::Profiler* const prof = config_.runtime.profiler;
  if (prof != nullptr) prof->thread_begin(tid);
  try {
    exec_function(ctx, func, std::move(args));
    DETLOCK_CHECK(ctx.held.empty(), "thread finished while holding a mutex");
  } catch (...) {
    thread_errors_[tid] = std::current_exception();
    abort_flag_.store(true, std::memory_order_relaxed);
  }
  if (prof != nullptr) prof->thread_end(tid, ctx.instrs, ctx.clock_instrs);
  instr_counts_[tid] = ctx.instrs;
  clock_instr_counts_[tid] = ctx.clock_instrs;
  final_clocks_[tid] = backend_->clock_of(tid);
  backend_->thread_finish(tid);
}

RunResult Engine::run(std::string_view entry_name, const std::vector<std::int64_t>& args) {
  return run(module_.find_function(entry_name), args);
}

RunResult Engine::run(ir::FuncId entry, const std::vector<std::int64_t>& args) {
  DETLOCK_CHECK(!ran_, "an Engine can only run once");
  ran_ = true;
  if (decoded_owned_ != nullptr) {
    resolve_decoded_externs(*decoded_owned_);
    resolve_decoded_handlers(*decoded_owned_);
  } else if (decoded_ != nullptr) {
    // Shared module: read-only from here on.  Handler patching must have
    // happened at compile time (prepare_decoded_module) or the dispatch
    // loop would jump through null.
    DETLOCK_CHECK(decoded_handlers_resolved(*decoded_),
                  "shared decoded module was not finalized by Engine::prepare_decoded_module");
  }
  // Pre-resolve the per-engine extern cache while still single-threaded.
  // Shared modules keep DecodedInstr::callee null (impls close over this
  // engine), so every extern call takes call_extern's cached path; filling
  // the cache here keeps guest threads strictly read-only on it.
  for (ir::ExternId id = 0; id < module_.externs().size(); ++id) {
    const std::string& name = module_.extern_decl(id).name;
    if (externs_.has(name)) extern_impls_[id] = &externs_.lookup(name);
  }

  if (watchdog_ != nullptr) watchdog_->start();
  const runtime::ThreadId main_tid = backend_->register_main_thread();
  ThreadCtx ctx;
  ctx.tid = main_tid;

  RunResult result;
  std::vector<std::uint64_t> main_args;
  main_args.reserve(args.size());
  for (std::int64_t a : args) main_args.push_back(from_i64(a));

  runtime::Profiler* const prof = config_.runtime.profiler;
  if (prof != nullptr) prof->thread_begin(main_tid);
  std::exception_ptr main_error;
  try {
    result.main_return = as_i64(exec_function(ctx, entry, std::move(main_args)));
    DETLOCK_CHECK(ctx.held.empty(), "main thread finished while holding a mutex");
  } catch (...) {
    main_error = std::current_exception();
    abort_flag_.store(true, std::memory_order_relaxed);
  }
  if (prof != nullptr) prof->thread_end(main_tid, ctx.instrs, ctx.clock_instrs);
  instr_counts_[main_tid] = ctx.instrs;
  clock_instr_counts_[main_tid] = ctx.clock_instrs;
  final_clocks_[main_tid] = backend_->clock_of(main_tid);
  backend_->thread_finish(main_tid);

  // Join any threads the program leaked (or that are unwinding after an
  // abort) before touching shared state.
  for (std::thread& t : os_threads_) {
    if (t.joinable()) t.join();
  }
  if (watchdog_ != nullptr) watchdog_->stop();

  if (main_error) std::rethrow_exception(main_error);
  for (const std::exception_ptr& e : thread_errors_) {
    if (e) std::rethrow_exception(e);
  }

  result.threads = 1 + spawned_count_.load(std::memory_order_relaxed);
  for (std::uint64_t c : instr_counts_) result.instructions += c;
  for (std::uint64_t c : clock_instr_counts_) result.clock_update_instrs += c;
  result.trace_fingerprint = backend_->trace().fingerprint();
  result.lock_acquires = backend_->trace().acquire_count();
  result.memory_fingerprint = memory_.fingerprint();
  result.sync = backend_->stats();
  result.final_clocks.assign(final_clocks_.begin(), final_clocks_.begin() + result.threads);
  result.per_thread_instructions.assign(instr_counts_.begin(), instr_counts_.begin() + result.threads);
  return result;
}

}  // namespace detlock::interp
