#include "interp/engine.hpp"

#include <bit>
#include <cmath>
#include <thread>

#include "runtime/det_backend.hpp"
#include "runtime/nondet_backend.hpp"
#include "support/error.hpp"

namespace detlock::interp {

namespace {

std::int64_t as_i64(std::uint64_t bits) { return static_cast<std::int64_t>(bits); }
std::uint64_t from_i64(std::int64_t v) { return static_cast<std::uint64_t>(v); }
double as_f64(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t from_f64(double v) { return std::bit_cast<std::uint64_t>(v); }

bool eval_cmp(ir::CmpPred pred, std::int64_t a, std::int64_t b) {
  switch (pred) {
    case ir::CmpPred::kEq: return a == b;
    case ir::CmpPred::kNe: return a != b;
    case ir::CmpPred::kLt: return a < b;
    case ir::CmpPred::kLe: return a <= b;
    case ir::CmpPred::kGt: return a > b;
    case ir::CmpPred::kGe: return a >= b;
  }
  DETLOCK_UNREACHABLE("bad predicate");
}

bool eval_fcmp(ir::CmpPred pred, double a, double b) {
  switch (pred) {
    case ir::CmpPred::kEq: return a == b;
    case ir::CmpPred::kNe: return a != b;
    case ir::CmpPred::kLt: return a < b;
    case ir::CmpPred::kLe: return a <= b;
    case ir::CmpPred::kGt: return a > b;
    case ir::CmpPred::kGe: return a >= b;
  }
  DETLOCK_UNREACHABLE("bad predicate");
}

}  // namespace

struct Engine::ThreadCtx {
  runtime::ThreadId tid = 0;
  std::uint64_t steps = 0;
  std::uint64_t instrs = 0;
  std::uint64_t clock_instrs = 0;
  std::uint32_t since_yield = 0;
  std::vector<runtime::MutexId> held;
};

Engine::Engine(const ir::Module& module, EngineConfig config)
    : module_(module),
      config_(config),
      memory_(config.memory_words),
      os_threads_(config.runtime.max_threads),
      thread_errors_(config.runtime.max_threads),
      records_(config.runtime.max_threads),
      final_clocks_(config.runtime.max_threads, 0),
      instr_counts_(config.runtime.max_threads, 0),
      clock_instr_counts_(config.runtime.max_threads, 0) {
  config_.runtime.abort_flag = &abort_flag_;
  if (config_.runtime.profile && config_.runtime.profiler == nullptr) {
    profiler_ = std::make_unique<runtime::Profiler>(config_.runtime.max_threads,
                                                    config_.runtime.profile_spans);
    config_.runtime.profiler = profiler_.get();
  }
  // Wire the progress counter before the backend is constructed: backends
  // capture RuntimeConfig::progress at construction.
  if (config_.runtime.watchdog_ms > 0 && config_.runtime.progress == nullptr) {
    config_.runtime.progress = &progress_counter_;
  }
  if (config_.deterministic) {
    backend_ = std::make_unique<runtime::DetBackend>(config_.runtime);
  } else {
    backend_ = std::make_unique<runtime::NondetBackend>(config_.runtime);
  }
  if (config_.runtime.watchdog_ms > 0) {
    runtime::WatchdogConfig wc;
    wc.window_ms = config_.runtime.watchdog_ms;
    wc.abort_on_stall = config_.runtime.watchdog_abort;
    wc.abort_flag = &abort_flag_;
    wc.progress = config_.runtime.progress;
    watchdog_ = std::make_unique<runtime::Watchdog>(wc, *backend_);
  }

  if (config_.heap_base < 0) config_.heap_base = static_cast<std::int64_t>(config_.memory_words / 2);
  if (config_.heap_words < 0) {
    config_.heap_words = static_cast<std::int64_t>(config_.memory_words) - config_.heap_base;
  }
  if (config_.heap_words > 0) {
    allocator_ = std::make_unique<runtime::DetAllocator>(*backend_, config_.allocator_mutex, config_.heap_base,
                                                         config_.heap_words);
  }

  register_standard_externs(externs_);
  externs_.register_impl("dl_malloc", [this](ExternCallContext& c) {
    DETLOCK_CHECK(allocator_ != nullptr, "dl_malloc called but the heap is disabled");
    return from_i64(allocator_->allocate(c.thread, as_i64(c.args[0])));
  });
  externs_.register_impl("dl_free", [this](ExternCallContext& c) {
    DETLOCK_CHECK(allocator_ != nullptr, "dl_free called but the heap is disabled");
    allocator_->deallocate(c.thread, as_i64(c.args[0]));
    return std::uint64_t{0};
  });
  externs_.register_impl("record", [this](ExternCallContext& c) {
    records_[c.thread].push_back(as_i64(c.args[0]));
    return std::uint64_t{0};
  });

  extern_impls_.assign(module_.externs().size(), nullptr);
}

Engine::~Engine() {
  // Defensive: never leave detached OS threads behind if run() threw.
  abort_flag_.store(true, std::memory_order_relaxed);
  for (std::thread& t : os_threads_) {
    if (t.joinable()) t.join();
  }
}

std::uint64_t Engine::call_extern(ThreadCtx& ctx, ir::ExternId id, std::vector<std::uint64_t> args) {
  const ExternImpl* impl = extern_impls_[id];
  if (impl == nullptr) {
    // Lazy resolution: tests may register implementations after the engine
    // is constructed.  ExternTable guarantees stable addresses, and the
    // first extern call happens-after run() starts, so caching is safe.
    const std::string& name = module_.extern_decl(id).name;
    DETLOCK_CHECK(externs_.has(name), "extern @" + name + " has no implementation");
    impl = &externs_.lookup(name);
    extern_impls_[id] = impl;
  }
  ExternCallContext call{memory_, ctx.tid, args};
  return (*impl)(call);
}

std::uint64_t Engine::exec_function(ThreadCtx& ctx, ir::FuncId func_id, std::vector<std::uint64_t> args) {
  const ir::Function& func = module_.function(func_id);
  DETLOCK_CHECK(args.size() == func.num_params(), "argument count mismatch calling @" + func.name());
  std::vector<std::uint64_t> regs(func.num_regs(), 0);
  std::copy(args.begin(), args.end(), regs.begin());

  ir::BlockId block = ir::Function::kEntry;
  std::size_t index = 0;
  while (true) {
    const std::vector<ir::Instr>& instrs = func.block(block).instrs();
    DETLOCK_CHECK(index < instrs.size(), "fell off block '" + func.block(block).name() + "' in @" + func.name());
    const ir::Instr& in = instrs[index];
    ++index;
    ++ctx.instrs;
    if (++ctx.steps > config_.max_steps_per_thread) {
      throw Error("thread " + std::to_string(ctx.tid) + " exceeded max_steps_per_thread");
    }
    if ((ctx.steps & 0xffff) == 0 && abort_flag_.load(std::memory_order_relaxed)) {
      throw Error("execution aborted (another thread failed)");
    }
    if (config_.yield_interval != 0 && ++ctx.since_yield >= config_.yield_interval) {
      ctx.since_yield = 0;
      std::this_thread::yield();
    }

    switch (in.op) {
      case ir::Opcode::kConst: regs[in.dst] = from_i64(in.imm); break;
      case ir::Opcode::kConstF: regs[in.dst] = from_f64(in.fimm); break;
      case ir::Opcode::kMov: regs[in.dst] = regs[in.a]; break;
      // add/sub/mul wrap on overflow (two's complement): computed on the
      // unsigned representation, which is bit-identical to wrapping signed
      // arithmetic but defined behaviour.  Workload checksum chains rely on
      // the wraparound.
      case ir::Opcode::kAdd: regs[in.dst] = regs[in.a] + regs[in.b]; break;
      case ir::Opcode::kSub: regs[in.dst] = regs[in.a] - regs[in.b]; break;
      case ir::Opcode::kMul: regs[in.dst] = regs[in.a] * regs[in.b]; break;
      case ir::Opcode::kDiv: {
        const std::int64_t d = as_i64(regs[in.b]);
        DETLOCK_CHECK(d != 0, "division by zero in @" + func.name());
        regs[in.dst] = from_i64(as_i64(regs[in.a]) / d);
        break;
      }
      case ir::Opcode::kRem: {
        const std::int64_t d = as_i64(regs[in.b]);
        DETLOCK_CHECK(d != 0, "remainder by zero in @" + func.name());
        regs[in.dst] = from_i64(as_i64(regs[in.a]) % d);
        break;
      }
      case ir::Opcode::kAnd: regs[in.dst] = regs[in.a] & regs[in.b]; break;
      case ir::Opcode::kOr: regs[in.dst] = regs[in.a] | regs[in.b]; break;
      case ir::Opcode::kXor: regs[in.dst] = regs[in.a] ^ regs[in.b]; break;
      case ir::Opcode::kShl: regs[in.dst] = regs[in.a] << (regs[in.b] & 63); break;
      case ir::Opcode::kShr: regs[in.dst] = from_i64(as_i64(regs[in.a]) >> (regs[in.b] & 63)); break;
      case ir::Opcode::kFAdd: regs[in.dst] = from_f64(as_f64(regs[in.a]) + as_f64(regs[in.b])); break;
      case ir::Opcode::kFSub: regs[in.dst] = from_f64(as_f64(regs[in.a]) - as_f64(regs[in.b])); break;
      case ir::Opcode::kFMul: regs[in.dst] = from_f64(as_f64(regs[in.a]) * as_f64(regs[in.b])); break;
      case ir::Opcode::kFDiv: regs[in.dst] = from_f64(as_f64(regs[in.a]) / as_f64(regs[in.b])); break;
      case ir::Opcode::kFSqrt: regs[in.dst] = from_f64(std::sqrt(as_f64(regs[in.a]))); break;
      case ir::Opcode::kICmp:
        regs[in.dst] = eval_cmp(in.pred, as_i64(regs[in.a]), as_i64(regs[in.b])) ? 1 : 0;
        break;
      case ir::Opcode::kFCmp:
        regs[in.dst] = eval_fcmp(in.pred, as_f64(regs[in.a]), as_f64(regs[in.b])) ? 1 : 0;
        break;
      case ir::Opcode::kItoF: regs[in.dst] = from_f64(static_cast<double>(as_i64(regs[in.a]))); break;
      case ir::Opcode::kFtoI: regs[in.dst] = from_i64(static_cast<std::int64_t>(as_f64(regs[in.a]))); break;
      case ir::Opcode::kLoad:
      case ir::Opcode::kLoadF: {
        const std::int64_t addr = as_i64(regs[in.a]) + in.imm;
        if (config_.observer != nullptr) config_.observer->on_access(ctx.tid, addr, false, ctx.held);
        regs[in.dst] = from_i64(memory_.load(addr));
        break;
      }
      case ir::Opcode::kStore:
      case ir::Opcode::kStoreF: {
        const std::int64_t addr = as_i64(regs[in.a]) + in.imm;
        if (config_.observer != nullptr) config_.observer->on_access(ctx.tid, addr, true, ctx.held);
        memory_.store(addr, as_i64(regs[in.b]));
        break;
      }
      case ir::Opcode::kBr:
        block = static_cast<ir::BlockId>(in.imm);
        index = 0;
        break;
      case ir::Opcode::kCondBr:
        block = regs[in.a] != 0 ? static_cast<ir::BlockId>(in.imm) : in.target2;
        index = 0;
        break;
      case ir::Opcode::kSwitch: {
        ir::BlockId target = static_cast<ir::BlockId>(in.imm);
        const std::int64_t value = as_i64(regs[in.a]);
        for (std::size_t i = 0; i + 1 < in.args.size(); i += 2) {
          if (static_cast<std::int64_t>(in.args[i]) == value) {
            target = static_cast<ir::BlockId>(in.args[i + 1]);
            break;
          }
        }
        block = target;
        index = 0;
        break;
      }
      case ir::Opcode::kRet:
        return in.has_value ? regs[in.a] : 0;
      case ir::Opcode::kCall: {
        std::vector<std::uint64_t> call_args;
        call_args.reserve(in.args.size());
        for (ir::Reg r : in.args) call_args.push_back(regs[r]);
        regs[in.dst] = exec_function(ctx, in.callee, std::move(call_args));
        break;
      }
      case ir::Opcode::kCallExtern: {
        std::vector<std::uint64_t> call_args;
        call_args.reserve(in.args.size());
        for (ir::Reg r : in.args) call_args.push_back(regs[r]);
        regs[in.dst] = call_extern(ctx, in.callee, std::move(call_args));
        break;
      }
      case ir::Opcode::kLock: {
        const runtime::MutexId mutex = static_cast<runtime::MutexId>(as_i64(regs[in.a]));
        backend_->lock(ctx.tid, mutex);
        ctx.held.push_back(mutex);
        break;
      }
      case ir::Opcode::kUnlock: {
        const runtime::MutexId mutex = static_cast<runtime::MutexId>(as_i64(regs[in.a]));
        backend_->unlock(ctx.tid, mutex);
        auto it = std::find(ctx.held.begin(), ctx.held.end(), mutex);
        if (it != ctx.held.end()) ctx.held.erase(it);
        break;
      }
      case ir::Opcode::kBarrier:
        backend_->barrier_wait(ctx.tid, static_cast<runtime::BarrierId>(as_i64(regs[in.a])),
                               static_cast<std::uint32_t>(as_i64(regs[in.b])));
        if (config_.observer != nullptr) config_.observer->on_barrier(ctx.tid);
        break;
      case ir::Opcode::kCondWait:
        // The mutex is released for the duration of the wait and reacquired
        // before return, so the engine-side lockset is unchanged on exit.
        backend_->cond_wait(ctx.tid, static_cast<runtime::CondVarId>(as_i64(regs[in.a])),
                            static_cast<runtime::MutexId>(as_i64(regs[in.b])));
        break;
      case ir::Opcode::kCondSignal:
        backend_->cond_signal(ctx.tid, static_cast<runtime::CondVarId>(as_i64(regs[in.a])));
        break;
      case ir::Opcode::kCondBroadcast:
        backend_->cond_broadcast(ctx.tid, static_cast<runtime::CondVarId>(as_i64(regs[in.a])));
        break;
      case ir::Opcode::kSpawn: {
        std::vector<std::uint64_t> call_args;
        call_args.reserve(in.args.size());
        for (ir::Reg r : in.args) call_args.push_back(regs[r]);
        const runtime::ThreadId child = backend_->register_spawn(ctx.tid);
        spawned_count_.fetch_add(1, std::memory_order_relaxed);
        os_threads_[child] =
            std::thread(&Engine::thread_main, this, child, in.callee, std::move(call_args));
        regs[in.dst] = from_i64(child);
        break;
      }
      case ir::Opcode::kJoin: {
        const std::int64_t handle = as_i64(regs[in.a]);
        DETLOCK_CHECK(handle >= 0 && static_cast<std::size_t>(handle) < os_threads_.size() &&
                          os_threads_[static_cast<std::size_t>(handle)].joinable(),
                      "join of never-spawned or already-joined thread " + std::to_string(handle));
        const runtime::ThreadId target = static_cast<runtime::ThreadId>(handle);
        backend_->join(ctx.tid, target);
        os_threads_[target].join();
        if (config_.observer != nullptr) config_.observer->on_join(ctx.tid, target);
        break;
      }
      case ir::Opcode::kClockAdd:
        ++ctx.clock_instrs;
        backend_->clock_add(ctx.tid, static_cast<std::uint64_t>(in.imm));
        break;
      case ir::Opcode::kClockAddDyn: {
        ++ctx.clock_instrs;
        const double scaled = in.fimm * static_cast<double>(as_i64(regs[in.a]));
        const std::int64_t delta = in.imm + static_cast<std::int64_t>(std::llround(std::max(0.0, scaled)));
        backend_->clock_add(ctx.tid, static_cast<std::uint64_t>(std::max<std::int64_t>(delta, 0)));
        break;
      }
    }
  }
}

void Engine::thread_main(runtime::ThreadId tid, ir::FuncId func, std::vector<std::uint64_t> args) {
  ThreadCtx ctx;
  ctx.tid = tid;
  runtime::Profiler* const prof = config_.runtime.profiler;
  if (prof != nullptr) prof->thread_begin(tid);
  try {
    exec_function(ctx, func, std::move(args));
    DETLOCK_CHECK(ctx.held.empty(), "thread finished while holding a mutex");
  } catch (...) {
    thread_errors_[tid] = std::current_exception();
    abort_flag_.store(true, std::memory_order_relaxed);
  }
  if (prof != nullptr) prof->thread_end(tid, ctx.instrs, ctx.clock_instrs);
  instr_counts_[tid] = ctx.instrs;
  clock_instr_counts_[tid] = ctx.clock_instrs;
  final_clocks_[tid] = backend_->clock_of(tid);
  backend_->thread_finish(tid);
}

RunResult Engine::run(std::string_view entry_name, const std::vector<std::int64_t>& args) {
  return run(module_.find_function(entry_name), args);
}

RunResult Engine::run(ir::FuncId entry, const std::vector<std::int64_t>& args) {
  DETLOCK_CHECK(!ran_, "an Engine can only run once");
  ran_ = true;

  if (watchdog_ != nullptr) watchdog_->start();
  const runtime::ThreadId main_tid = backend_->register_main_thread();
  ThreadCtx ctx;
  ctx.tid = main_tid;

  RunResult result;
  std::vector<std::uint64_t> main_args;
  main_args.reserve(args.size());
  for (std::int64_t a : args) main_args.push_back(from_i64(a));

  runtime::Profiler* const prof = config_.runtime.profiler;
  if (prof != nullptr) prof->thread_begin(main_tid);
  std::exception_ptr main_error;
  try {
    result.main_return = as_i64(exec_function(ctx, entry, std::move(main_args)));
    DETLOCK_CHECK(ctx.held.empty(), "main thread finished while holding a mutex");
  } catch (...) {
    main_error = std::current_exception();
    abort_flag_.store(true, std::memory_order_relaxed);
  }
  if (prof != nullptr) prof->thread_end(main_tid, ctx.instrs, ctx.clock_instrs);
  instr_counts_[main_tid] = ctx.instrs;
  clock_instr_counts_[main_tid] = ctx.clock_instrs;
  final_clocks_[main_tid] = backend_->clock_of(main_tid);
  backend_->thread_finish(main_tid);

  // Join any threads the program leaked (or that are unwinding after an
  // abort) before touching shared state.
  for (std::thread& t : os_threads_) {
    if (t.joinable()) t.join();
  }
  if (watchdog_ != nullptr) watchdog_->stop();

  if (main_error) std::rethrow_exception(main_error);
  for (const std::exception_ptr& e : thread_errors_) {
    if (e) std::rethrow_exception(e);
  }

  result.threads = 1 + spawned_count_.load(std::memory_order_relaxed);
  for (std::uint64_t c : instr_counts_) result.instructions += c;
  for (std::uint64_t c : clock_instr_counts_) result.clock_update_instrs += c;
  result.trace_fingerprint = backend_->trace().fingerprint();
  result.lock_acquires = backend_->trace().acquire_count();
  result.memory_fingerprint = memory_.fingerprint();
  result.sync = backend_->stats();
  result.final_clocks.assign(final_clocks_.begin(), final_clocks_.begin() + result.threads);
  return result;
}

}  // namespace detlock::interp
