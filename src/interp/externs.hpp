// Extern-function implementations (the "shared library" of the interpreted
// world).
//
// Each implementation receives raw 64-bit argument slots (f64 arguments are
// bit patterns) plus access to shared memory, and returns one 64-bit slot.
// The standard library below mirrors the built-ins the paper discusses:
// memset/memcpy (size-dependent estimates), math routines (fixed
// estimates), and the deterministic allocator entry points dl_malloc /
// dl_free (paper Sec. III-B's lock-replaced malloc).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/module.hpp"
#include "runtime/config.hpp"
#include "runtime/shared_memory.hpp"

namespace detlock::interp {

struct ExternCallContext {
  runtime::SharedMemory& memory;
  runtime::ThreadId thread;
  const std::vector<std::uint64_t>& args;
};

using ExternImpl = std::function<std::uint64_t(ExternCallContext&)>;

class ExternTable {
 public:
  /// Registers or replaces an implementation.  The stored ExternImpl's
  /// address is stable across later registrations (node-based map), so the
  /// engine may cache lookup() results.
  void register_impl(std::string name, ExternImpl impl);
  bool has(const std::string& name) const;
  const ExternImpl& lookup(const std::string& name) const;

 private:
  std::unordered_map<std::string, ExternImpl> impls_;
};

/// Installs implementations for the standard extern set (everything
/// declared by declare_standard_externs).  dl_malloc/dl_free are installed
/// separately by the engine because they close over the allocator.
void register_standard_externs(ExternTable& table);

/// Declares the standard externs on a module with their estimate-file
/// defaults, so workloads can call them without repeating boilerplate.
/// Returns nothing; look ids up with module.find_extern(name).
///
/// Declared set:
///   memset(dst, val, len)        estimate 8 + 2*len
///   memcpy(dst, src, len)        estimate 8 + 4*len
///   fsin/fcos/fexp/flog(x)       estimate 45 each
///   fpow(x, y)                   estimate 70
///   imin/imax(a, b)              estimate 4
///   dl_malloc(words) -> addr     unclocked (internally uses a det lock)
///   dl_free(addr)                unclocked
///   opaque(x) -> x               unclocked (a library call with no
///                                estimate: exercises the "ignore them"
///                                path and blocks optimizations around it)
///   record(x)                    estimate 4 (per-thread output log)
void declare_standard_externs(ir::Module& module);

}  // namespace detlock::interp
