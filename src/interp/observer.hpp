// Engine-level observation surface (consumed by the race detectors).
//
// interp::SyncObserver = runtime::SyncObserver (every backend
// synchronization hook: acquire/release, barrier rounds, signal/wake,
// create/finish/join -- see runtime/sync_observer.hpp for the edge-ordering
// guarantee) + the engine's per-access hook carrying the IR source
// location.  An engine given an observer wires it into RuntimeConfig::
// sync_observer, so one object sees both the memory traffic and the
// synchronization schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/config.hpp"
#include "runtime/sync_observer.hpp"

namespace detlock::interp {

/// IR source location of a memory access: function id plus the canonical
/// flat instruction index within the function (blocks concatenated in
/// block-id order, counting only non-instrumentation instructions --
/// identical for the reference and decoded engines and across clock
/// publication modes; instruction fusion never covers loads/stores and
/// rewrites in place).
struct AccessSite {
  std::uint32_t func = 0;
  std::uint32_t instr = 0;
};

class SyncObserver : public runtime::SyncObserver {
 public:
  /// Called for every program load/store.  `held` is the calling thread's
  /// current lockset (mutex ids, unordered); `site` the IR location.
  /// Detectors that need a deterministic per-thread timestamp count their
  /// own access ordinals (raw instruction counts would be publication-mode-
  /// dependent because clock instrumentation differs between placements).
  /// Called concurrently from multiple threads; implementations synchronize
  /// internally.
  virtual void on_access(runtime::ThreadId thread, std::int64_t addr, bool is_write,
                         const std::vector<runtime::MutexId>& held, AccessSite site) = 0;
};

/// Historical name, kept for existing call sites (EngineConfig::observer,
/// ExecutionContext::set_observer).
using MemoryAccessObserver = SyncObserver;

/// Composable observer fan-out: forwards every hook -- the engine's
/// per-access hook and all backend synchronization hooks -- to each attached
/// observer in attachment order.  This is how a profiler, a race detector,
/// and a fuzzer oracle stack onto one run without the engine special-casing
/// any of them: the engine still sees exactly one SyncObserver*.
///
/// The chain preserves the backend's edge-ordering guarantee per attached
/// observer (each hook call completes for the whole chain before the
/// backend proceeds), but makes no ordering promise BETWEEN observers other
/// than attachment order.  An observer that throws aborts the run exactly
/// as if it were attached alone; later observers in the chain do not see
/// the throwing event.
///
/// Attached observers are borrowed, not owned, and must outlive every run
/// the chain is wired into.  Use reduce() when handing the chain to an
/// engine: it collapses the empty chain to nullptr and a one-element chain
/// to the observer itself, keeping the engine's null-test fast path and
/// avoiding a pointless double indirection in the single-observer case.
class ObserverChain final : public SyncObserver {
 public:
  /// Appends an observer; null is ignored so call sites can pass optional
  /// hooks unconditionally.
  void attach(SyncObserver* observer) {
    if (observer != nullptr) chain_.push_back(observer);
  }
  void clear() { chain_.clear(); }
  bool empty() const { return chain_.empty(); }
  std::size_t size() const { return chain_.size(); }

  /// The pointer to wire into EngineConfig::observer: nullptr when nothing
  /// is attached, the sole observer when one is, this chain otherwise.
  SyncObserver* reduce() {
    if (chain_.empty()) return nullptr;
    if (chain_.size() == 1) return chain_.front();
    return this;
  }

  void on_access(runtime::ThreadId thread, std::int64_t addr, bool is_write,
                 const std::vector<runtime::MutexId>& held, AccessSite site) override {
    for (SyncObserver* o : chain_) o->on_access(thread, addr, is_write, held, site);
  }
  void on_thread_start(runtime::ThreadId child, runtime::ThreadId parent) override {
    for (SyncObserver* o : chain_) o->on_thread_start(child, parent);
  }
  void on_thread_finish(runtime::ThreadId self) override {
    for (SyncObserver* o : chain_) o->on_thread_finish(self);
  }
  void on_join(runtime::ThreadId joiner, runtime::ThreadId child) override {
    for (SyncObserver* o : chain_) o->on_join(joiner, child);
  }
  void on_acquire(runtime::ThreadId self, runtime::MutexId mutex, std::uint64_t clock) override {
    for (SyncObserver* o : chain_) o->on_acquire(self, mutex, clock);
  }
  void on_release(runtime::ThreadId self, runtime::MutexId mutex, std::uint64_t clock) override {
    for (SyncObserver* o : chain_) o->on_release(self, mutex, clock);
  }
  void on_barrier_arrive(runtime::ThreadId self, runtime::BarrierId barrier,
                         std::uint64_t generation) override {
    for (SyncObserver* o : chain_) o->on_barrier_arrive(self, barrier, generation);
  }
  void on_barrier_depart(runtime::ThreadId self, runtime::BarrierId barrier,
                         std::uint64_t generation) override {
    for (SyncObserver* o : chain_) o->on_barrier_depart(self, barrier, generation);
  }
  void on_cond_signal(runtime::ThreadId self, runtime::CondVarId condvar, runtime::ThreadId target,
                      std::uint64_t clock) override {
    for (SyncObserver* o : chain_) o->on_cond_signal(self, condvar, target, clock);
  }
  void on_cond_wake(runtime::ThreadId waiter, runtime::CondVarId condvar) override {
    for (SyncObserver* o : chain_) o->on_cond_wake(waiter, condvar);
  }
  void on_atomic(runtime::ThreadId self, const runtime::AtomicOp& op, std::int64_t observed,
                 std::uint64_t clock) override {
    for (SyncObserver* o : chain_) o->on_atomic(self, op, observed, clock);
  }
  void on_fence(runtime::ThreadId self, runtime::AtomicOp::Order order,
                std::uint64_t clock) override {
    for (SyncObserver* o : chain_) o->on_fence(self, order, clock);
  }

 private:
  std::vector<SyncObserver*> chain_;
};

}  // namespace detlock::interp
