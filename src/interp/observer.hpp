// Memory-access observation hook (consumed by the race detector).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/config.hpp"

namespace detlock::interp {

class MemoryAccessObserver {
 public:
  virtual ~MemoryAccessObserver() = default;

  /// Called for every program load/store.  `held` is the calling thread's
  /// current lockset (mutex ids, unordered).  Called concurrently from
  /// multiple threads; implementations synchronize internally.
  virtual void on_access(runtime::ThreadId thread, std::int64_t addr, bool is_write,
                         const std::vector<runtime::MutexId>& held) = 0;

  /// Called after a thread returns from a barrier.  Barriers establish
  /// happens-before between all participants; lockset detectors use this to
  /// avoid the classic Eraser false positive on barrier-phased programs.
  virtual void on_barrier(runtime::ThreadId thread) { (void)thread; }

  /// Called after `joiner` joined `child`.  Join orders every access of the
  /// finished child before the joiner's subsequent accesses (the other
  /// classic Eraser false-positive source: reading results after join).
  virtual void on_join(runtime::ThreadId joiner, runtime::ThreadId child) {
    (void)joiner;
    (void)child;
  }
};

}  // namespace detlock::interp
