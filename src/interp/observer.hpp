// Engine-level observation surface (consumed by the race detectors).
//
// interp::SyncObserver = runtime::SyncObserver (every backend
// synchronization hook: acquire/release, barrier rounds, signal/wake,
// create/finish/join -- see runtime/sync_observer.hpp for the edge-ordering
// guarantee) + the engine's per-access hook carrying the IR source
// location.  An engine given an observer wires it into RuntimeConfig::
// sync_observer, so one object sees both the memory traffic and the
// synchronization schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/config.hpp"
#include "runtime/sync_observer.hpp"

namespace detlock::interp {

/// IR source location of a memory access: function id plus the canonical
/// flat instruction index within the function (blocks concatenated in
/// block-id order, counting only non-instrumentation instructions --
/// identical for the reference and decoded engines and across clock
/// publication modes; instruction fusion never covers loads/stores and
/// rewrites in place).
struct AccessSite {
  std::uint32_t func = 0;
  std::uint32_t instr = 0;
};

class SyncObserver : public runtime::SyncObserver {
 public:
  /// Called for every program load/store.  `held` is the calling thread's
  /// current lockset (mutex ids, unordered); `site` the IR location.
  /// Detectors that need a deterministic per-thread timestamp count their
  /// own access ordinals (raw instruction counts would be publication-mode-
  /// dependent because clock instrumentation differs between placements).
  /// Called concurrently from multiple threads; implementations synchronize
  /// internally.
  virtual void on_access(runtime::ThreadId thread, std::int64_t addr, bool is_write,
                         const std::vector<runtime::MutexId>& held, AccessSite site) = 0;
};

/// Historical name, kept for existing call sites (EngineConfig::observer,
/// ExecutionContext::set_observer).
using MemoryAccessObserver = SyncObserver;

}  // namespace detlock::interp
