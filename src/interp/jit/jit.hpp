// Baseline template JIT: lowers the flat DecodedInstr arrays produced by
// interp/decode.cpp into executable x86-64 code, one hand-written stanza
// per opcode (jit_compiler.cpp).  The contract is byte-identity with the
// interpreters: anchor-based instruction counting is preserved at every
// control transfer, the bookkeeping cadence (step limit, abort poll,
// cooperative yield) matches the decoded engine's checkpoint formula
// exactly, and every slow-path opcode (sync ops, spawns, extern calls,
// clock updates) trampolines back into the engine through the helpers
// below, which replicate the decoded handlers verbatim.  Fingerprints,
// observable counts, and clock schedules therefore cannot diverge
// (tests/interp/decoded_equivalence_test.cpp proves it differentially).
//
// Compilation is whole-module and happens once (service::CompiledModule,
// mirroring prepare_decoded_module); the resulting read-only code pages
// are shared by any number of engines on any number of threads.  On
// non-x86-64 hosts, when executable pages are refused, or when a function
// exceeds the compile limits below, compile_module returns null and the
// caller falls back to the decoded engine (see docs/interp-performance.md
// for the fallback rules).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "interp/decode.hpp"

namespace detlock::interp::jit {

/// Calls with more arguments than this (equivalently: callees with more
/// parameters) make the module uncompilable -- the caller falls back to
/// the decoded engine, which has no such limit.
inline constexpr std::uint32_t kJitMaxArgs = 64;
/// Same fallback rule for pathologically wide register frames (native
/// frames live on the OS thread stack, not in the arena).
inline constexpr std::uint32_t kJitMaxRegs = 4096;

/// Per-invocation state block shared between generated code and the C++
/// helpers.  Generated code addresses fields by compile-time offsetof, so
/// this must stay standard-layout POD; `engine`/`ctx`/`exception` are
/// type-erased for the same reason (ThreadCtx is private to Engine -- the
/// helpers cast back through interp::JitRuntime, a friend).
///
/// Register convention inside generated code:
///   rbx = JitState*          r13 = exact instruction count at the anchor
///   r14 = guest memory base  r15 = guest memory size in words
///   rbp = current frame's register base ([rbp + 8*reg])
/// All five are C-ABI callee-saved, so helper calls preserve them.
struct JitState {
  /// Set by a helper that caught a guest error; generated code tests it
  /// after every helper/guest call and unwinds its native frames without
  /// any C++ exception crossing JIT frames.
  std::uint32_t unwinding = 0;
  /// Native guest-call depth and its bound: the interpreters place frames
  /// in a heap arena, the JIT on the OS thread stack, so runaway recursion
  /// must become a clean guest error instead of a stack overflow.
  std::uint32_t depth = 0;
  std::uint64_t depth_limit = 0;
  // Bookkeeping mirror of the decoded engine's hot-loop locals; helper
  // detlock_jit_bookkeep updates them with the exact bookkeep_slow formula.
  std::uint64_t next_check = 0;
  std::uint64_t last_yield = 0;
  std::uint64_t next_abort_at = 0;
  std::uint64_t limit_at = 0;
  /// In: ThreadCtx::instrs at entry (the anchor seed).  Out: the exact
  /// executed count, stored by the entry thunk on clean return.
  std::uint64_t instrs_out = 0;
  std::uint64_t mem_base = 0;   // guest memory word array
  std::uint64_t mem_words = 0;
  std::uint64_t max_steps = 0;
  std::uint64_t yield_interval = 0;
  void* engine = nullptr;     // interp::Engine*
  void* ctx = nullptr;        // Engine::ThreadCtx*
  void* exception = nullptr;  // std::exception_ptr* (owned by exec_jit's stack)
  /// Guest call arguments: the caller stores, the callee prologue copies
  /// into its frame (the uniform call protocol keeps stanzas tiny).
  std::uint64_t args[kJitMaxArgs] = {};
};

/// Guest-error kinds raised from generated code via detlock_jit_fail.
enum JitFailKind : std::uint32_t {
  kJitFailDivZero = 0,   // where = DecodedFunction* (current function)
  kJitFailRemZero = 1,   // where = DecodedFunction*
  kJitFailOutOfBounds = 2,  // where = DecodedFunction*, extra = address
  kJitFailEmptyCall = 3,    // where = DecodedInstr* (the kCall)
  kJitFailDepthLimit = 4,   // where = DecodedInstr* (the kCall)
};

// Helpers the generated code calls (C ABI, implemented in
// src/interp/engine_jit.cpp).  None may let an exception escape into JIT
// frames: guest errors are captured into JitState::exception + unwinding.
extern "C" {
/// DL_CHECKPOINT slow path: step limit, abort poll, cooperative yield,
/// next_check recomputation -- the decoded engine's bookkeep_slow.
void detlock_jit_bookkeep(JitState* state, std::uint64_t now) noexcept;
/// Uniform trampoline for slow opcodes (kLock..kClockAddDyn, kCallExtern):
/// syncs the exact count into ThreadCtx (DL_SYNC), then executes the
/// decoded handler's body against the caller's register frame.
void detlock_jit_slow(JitState* state, const DecodedInstr* in, std::uint64_t now,
                      std::uint64_t* regs) noexcept;
/// Raises a guest error with the interpreter's canonical message.
void detlock_jit_fail(JitState* state, const void* where, std::uint64_t now, std::int64_t extra,
                      std::uint32_t kind) noexcept;
/// kSwitch dispatch: the decoded engine's binary search over the sorted
/// case pool; returns the flat target slot.  Pure, never throws.
std::uint32_t detlock_jit_switch(const std::int64_t* values, const std::uint32_t* targets,
                                 std::uint32_t count, std::uint32_t default_target,
                                 std::int64_t value) noexcept;
}

class CodeBuffer;

/// Immutable compiled module: one RX code buffer holding the entry thunk
/// and every non-empty function, plus the per-function switch dispatch
/// tables.  Thread-safe to share exactly like a prepared DecodedModule.
class JitModule {
 public:
  ~JitModule();
  JitModule(const JitModule&) = delete;
  JitModule& operator=(const JitModule&) = delete;

  /// The decoded module this was compiled from.  Engines must execute the
  /// jit module only alongside this exact decoded module: the generated
  /// code embeds pointers into its code/pool arrays for the slow-path
  /// trampoline.
  const DecodedModule* decoded() const { return decoded_; }

  bool has_function(std::size_t func_id) const;
  /// Runs `func_id` to completion on the current thread via the entry
  /// thunk.  The caller owns JitState setup/teardown (see Engine::exec_jit).
  std::uint64_t invoke(std::size_t func_id, JitState* state) const;

  std::uint64_t depth_limit() const { return depth_limit_; }
  std::size_t code_bytes() const;

 private:
  friend class JitCompiler;  // jit_compiler.cpp: the only producer
  JitModule();

  const DecodedModule* decoded_ = nullptr;
  std::unique_ptr<CodeBuffer> buffer_;
  std::uint32_t thunk_offset_ = 0;
  /// Buffer offset per FuncId; kNoCode for block-less functions.
  std::vector<std::uint32_t> func_offsets_;
  /// Per-function slot -> native-address tables (null unless the function
  /// contains a kSwitch); generated switch code jumps through these.
  std::vector<std::unique_ptr<std::uint64_t[]>> switch_tables_;
  std::uint64_t depth_limit_ = 0;
};

/// Compiles every function of `decoded` (which must already be decoded
/// from the module the engines will run; handler resolution is NOT
/// required -- the JIT never consults DecodedInstr::handler).  Returns
/// null when native execution is unavailable: non-x86-64 host, executable
/// pages refused, a function exceeding kJitMaxArgs/kJitMaxRegs, or the
/// DETLOCK_JIT_DISABLE=1 environment kill-switch.  Callers treat null as
/// "use the decoded engine".
std::unique_ptr<const JitModule> compile_module(const DecodedModule& decoded);

}  // namespace detlock::interp::jit
