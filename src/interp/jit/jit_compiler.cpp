// x86-64 template JIT compiler: one hand-written stanza per opcode, emitted
// into a byte vector with buffer-relative fixups, then copied into an
// mmap'd CodeBuffer (RW), switch tables filled with absolute native
// addresses, and flipped RX (W^X).
//
// Semantics contract (byte-identity with the decoded engine):
//   * Counting is anchor-based, exactly like exec_decoded: r13 holds the
//     exact executed count at the current anchor slot; straight-line code
//     does no counting.  Every control transfer at slot s folds
//     (s - anchor + 1) into r13 -- the same quantity DL_CHECKPOINT folds,
//     since the decoded ip has already been advanced past the transfer --
//     and compares against JitState::next_check, calling the bookkeeping
//     helper on the same cadence the interpreter would.
//   * Slots that are branch targets get a forced anchor: the fall-through
//     path folds its pending distance first (count-neutral, no check), so
//     branched-to and fallen-into executions agree on r13's meaning.
//   * Slow-path slots (sync ops, spawns, extern calls, clock updates) pass
//     the exact count now = r13 + (s - anchor + 1) to the trampoline --
//     the DL_SYNC value -- without re-anchoring, exactly like the decoded
//     handlers.
//   * Fused superinstructions need no stanzas at all: fusion only rewrites
//     the head slot's op byte (decode.cpp), the trailing slots keep their
//     original instructions, and the decoded fused bodies are semantically
//     the unfused sequence (operand canonicalization guarantees the
//     forwarded temporary equals the re-loaded register).  The JIT lowers
//     each slot's ORIGINAL opcode; the check cadence still matches because
//     the fused interpreter checkpoints at the trailing branch slot with
//     the same folded distance.
//   * Guest errors never unwind through JIT frames: helpers capture the
//     exception into JitState and set `unwinding`; generated code tests it
//     after every call and cascades out through per-function bail blocks.
//
// Division intentionally uses idiv after an explicit zero check: the
// INT64_MIN / -1 overflow case traps exactly like the compiled C++ of both
// interpreters (same hardware instruction), so behaviour cannot diverge.
// Shift counts rely on the hardware's cl & 63 masking, which is the
// interpreters' explicit `& 63`.
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <type_traits>
#include <vector>

#include "interp/jit/code_buffer.hpp"
#include "interp/jit/jit.hpp"
#include "support/error.hpp"

namespace detlock::interp::jit {

namespace {
constexpr std::uint32_t kNoCode = 0xffffffffu;
}  // namespace

JitModule::JitModule() = default;
JitModule::~JitModule() = default;

bool JitModule::has_function(std::size_t func_id) const {
  return func_id < func_offsets_.size() && func_offsets_[func_id] != kNoCode;
}

std::size_t JitModule::code_bytes() const { return buffer_ != nullptr ? buffer_->size() : 0; }

std::uint64_t JitModule::invoke(std::size_t func_id, JitState* state) const {
  DETLOCK_CHECK(has_function(func_id), "jit invoke of uncompiled function");
  using EntryFn = std::uint64_t (*)(JitState*, const void*);
  const std::uint8_t* const base = buffer_->data();
  // Data-pointer -> function-pointer conversion is only reachable on
  // platforms where CodeBuffer::allocate succeeded (POSIX), where it is
  // well-defined for mmap'd code.
  EntryFn thunk;
  const std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(base + thunk_offset_);
  std::memcpy(&thunk, &addr, sizeof(thunk));
  return thunk(state, base + func_offsets_[func_id]);
}

#if defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__))

namespace {

enum JitReg : int {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R13 = 13, R14 = 14, R15 = 15,
};

static_assert(std::is_standard_layout_v<JitState>,
              "generated code addresses JitState by compile-time offsets");
constexpr auto off_unwinding = static_cast<std::int32_t>(offsetof(JitState, unwinding));
constexpr auto off_depth = static_cast<std::int32_t>(offsetof(JitState, depth));
constexpr auto off_depth_limit = static_cast<std::int32_t>(offsetof(JitState, depth_limit));
constexpr auto off_next_check = static_cast<std::int32_t>(offsetof(JitState, next_check));
constexpr auto off_instrs_out = static_cast<std::int32_t>(offsetof(JitState, instrs_out));
constexpr auto off_mem_base = static_cast<std::int32_t>(offsetof(JitState, mem_base));
constexpr auto off_mem_words = static_cast<std::int32_t>(offsetof(JitState, mem_words));
constexpr auto off_args = static_cast<std::int32_t>(offsetof(JitState, args));

/// The slot's pre-fusion opcode: fused heads map to their first
/// constituent, everything else is already an ir::Opcode.
ir::Opcode original_op(std::uint8_t op) {
  switch (op) {
    case kFusedICmpBr: return ir::Opcode::kICmp;
    case kFusedConstAdd:
    case kFusedConstAddBr: return ir::Opcode::kConst;
    case kFusedMulAdd: return ir::Opcode::kMul;
    case kFusedAndAdd: return ir::Opcode::kAnd;
    default: return static_cast<ir::Opcode>(op);
  }
}

}  // namespace

/// The emitter.  Named (not in the anonymous namespace) solely so
/// JitModule can befriend its only producer.
class JitCompiler {
 public:
  explicit JitCompiler(const DecodedModule& dm) : dm_(dm) {}

  std::unique_ptr<const JitModule> run() {
    std::unique_ptr<JitModule> module(new JitModule());
    module->decoded_ = &dm_;
    module->func_offsets_.assign(dm_.functions.size(), kNoCode);
    module->switch_tables_.resize(dm_.functions.size());
    saved_slot_offs_.resize(dm_.functions.size());

    module->thunk_offset_ = 0;
    emit_entry_thunk();

    std::uint64_t max_frame_bytes = 128;
    for (std::size_t fid = 0; fid < dm_.functions.size(); ++fid) {
      const DecodedFunction& f = dm_.functions[fid];
      if (f.entry == nullptr) continue;  // calling it is a guest error (cold path)
      if (f.num_params > kJitMaxArgs || f.num_regs > kJitMaxRegs) return nullptr;
      bool has_switch = false;
      for (std::uint32_t s = 0; s < f.code_size; ++s) {
        if (original_op(f.entry[s].op) == ir::Opcode::kSwitch) has_switch = true;
      }
      // Switch tables are plain heap arrays so their (stable) address can
      // be an immediate before final code placement is known.
      if (has_switch) {
        module->switch_tables_[fid] = std::make_unique<std::uint64_t[]>(f.code_size);
      }
      module->func_offsets_[fid] = static_cast<std::uint32_t>(buf_.size());
      if (!emit_function(fid, f, module->switch_tables_[fid].get())) return nullptr;
      max_frame_bytes = std::max<std::uint64_t>(max_frame_bytes, frame_bytes(f) + 48);
    }

    for (const CallFixup& fix : call_fixups_) {
      const std::uint32_t target = module->func_offsets_[fix.callee];
      if (target == kNoCode) return nullptr;  // unreachable: empty callees take the cold path
      patch32(fix.pos, static_cast<std::int64_t>(target) - static_cast<std::int64_t>(fix.pos + 4));
    }

    auto buffer = CodeBuffer::allocate(buf_.size());
    if (buffer == nullptr) return nullptr;
    std::memcpy(buffer->rw_data(), buf_.data(), buf_.size());
    for (std::size_t fid = 0; fid < dm_.functions.size(); ++fid) {
      std::uint64_t* const table = module->switch_tables_[fid].get();
      if (table == nullptr) continue;
      const std::vector<std::uint32_t>& offs = saved_slot_offs_[fid];
      for (std::size_t s = 0; s < offs.size(); ++s) {
        table[s] = reinterpret_cast<std::uint64_t>(buffer->data() + offs[s]);
      }
    }
    if (!buffer->make_executable()) return nullptr;
    module->buffer_ = std::move(buffer);
    // Native frames live on the (default ~8 MiB) thread stack; bound guest
    // recursion so half of it can never be exceeded, leaving room for the
    // helpers' own C++ frames.
    module->depth_limit_ =
        std::min<std::uint64_t>(16384, (std::uint64_t{4} << 20) / max_frame_bytes);
    return module;
  }

 private:
  struct SlotFixup {
    std::size_t pos;      // rel32 location (buffer-absolute)
    std::uint32_t slot;   // flat target slot in the current function
  };
  struct CallFixup {
    std::size_t pos;
    std::uint32_t callee;  // FuncId
  };
  struct Cold {
    std::size_t pos;  // rel32 of the conditional jump into the stub
    std::uint32_t kind;
    const void* where;
    std::uint32_t delta;  // count still to fold when the stub runs
    bool addr_in_rax;     // OOB: the faulting address rides in rax
  };

  // ---- byte emission primitives -------------------------------------
  void u8(std::uint8_t b) { buf_.push_back(b); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void emit(std::initializer_list<std::uint8_t> bytes) {
    for (std::uint8_t b : bytes) u8(b);
  }
  void patch32(std::size_t pos, std::int64_t value) {
    const auto v = static_cast<std::uint32_t>(static_cast<std::int32_t>(value));
    for (int i = 0; i < 4; ++i) buf_[pos + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }

  /// REX.W <opcode> /r with a [base + disp32] memory operand (base is
  /// never rsp, so no SIB byte).
  void op_rm(std::initializer_list<std::uint8_t> opcode, int reg, int base, std::int32_t disp) {
    u8(static_cast<std::uint8_t>(0x48 | ((reg >> 3) << 2) | (base >> 3)));
    for (std::uint8_t b : opcode) u8(b);
    u8(static_cast<std::uint8_t>(0x80 | ((reg & 7) << 3) | (base & 7)));
    u32(static_cast<std::uint32_t>(disp));
  }
  void ld(int reg, std::uint32_t slot) { op_rm({0x8B}, reg, RBP, static_cast<std::int32_t>(8 * slot)); }
  void st(std::uint32_t slot, int reg) { op_rm({0x89}, reg, RBP, static_cast<std::int32_t>(8 * slot)); }
  void ld_state(int reg, std::int32_t off) { op_rm({0x8B}, reg, RBX, off); }
  void st_state(std::int32_t off, int reg) { op_rm({0x89}, reg, RBX, off); }
  void mov_imm64(int reg, std::uint64_t v) {
    u8(static_cast<std::uint8_t>(0x48 | (reg >> 3)));
    u8(static_cast<std::uint8_t>(0xB8 + (reg & 7)));
    u64(v);
  }
  void mov_rr(int dst, int src) {  // mov dst, src (64-bit)
    u8(static_cast<std::uint8_t>(0x48 | ((src >> 3) << 2) | (dst >> 3)));
    u8(0x89);
    u8(static_cast<std::uint8_t>(0xC0 | ((src & 7) << 3) | (dst & 7)));
  }
  void movsd_load(int xmm, std::uint32_t slot) {  // movsd xmmN, [rbp + 8*slot]
    emit({0xF2, 0x0F, 0x10});
    u8(static_cast<std::uint8_t>(0x80 | (xmm << 3) | RBP));
    u32(8 * slot);
  }
  void movsd_store(std::uint32_t slot, int xmm) {
    emit({0xF2, 0x0F, 0x11});
    u8(static_cast<std::uint8_t>(0x80 | (xmm << 3) | RBP));
    u32(8 * slot);
  }
  void call_helper(const void* fn) {
    mov_imm64(RAX, reinterpret_cast<std::uint64_t>(fn));
    emit({0xFF, 0xD0});  // call rax
  }
  void add_r13(std::uint64_t delta) {
    if (delta == 0) return;
    if (delta <= 127) {
      emit({0x49, 0x83, 0xC5});
      u8(static_cast<std::uint8_t>(delta));
    } else {
      emit({0x49, 0x81, 0xC5});
      u32(static_cast<std::uint32_t>(delta));
    }
  }
  void jmp_slot(std::uint32_t target) {
    u8(0xE9);
    slot_fixups_.push_back({buf_.size(), target});
    u32(0);
  }
  void jcc_slot(std::uint8_t cc, std::uint32_t target) {  // cc: 0F 8x near form
    emit({0x0F, cc});
    slot_fixups_.push_back({buf_.size(), target});
    u32(0);
  }
  void jcc_cold(std::uint8_t cc, std::uint32_t kind, const void* where, std::uint32_t delta,
                bool addr_in_rax) {
    emit({0x0F, cc});
    colds_.push_back({buf_.size(), kind, where, delta, addr_in_rax});
    u32(0);
  }
  /// cmp byte [rbx+unwinding], 0; jnz bail -- after every call that could
  /// have captured a guest error.
  void unwind_check() {
    emit({0x80, 0xBB});
    u32(static_cast<std::uint32_t>(off_unwinding));
    u8(0x00);
    emit({0x0F, 0x85});
    bail_fixups_.push_back(buf_.size());
    u32(0);
  }
  /// DL_CHECKPOINT: fold the straight-line distance, run the batched
  /// bookkeeping when the count reaches next_check.
  void fold_and_check(std::uint32_t delta) {
    add_r13(delta);
    op_rm({0x3B}, R13, RBX, off_next_check);  // cmp r13, [rbx+next_check]
    const std::size_t jb = buf_.size();
    emit({0x72, 0x00});  // jb skip (patched below)
    mov_rr(RDI, RBX);
    mov_rr(RSI, R13);
    call_helper(reinterpret_cast<const void*>(&detlock_jit_bookkeep));
    unwind_check();
    buf_[jb + 1] = static_cast<std::uint8_t>(buf_.size() - (jb + 2));
  }

  static std::uint32_t frame_bytes(const DecodedFunction& f) {
    return (f.num_regs * 8 + 15) & ~15u;  // keeps rsp 16-aligned in the body
  }

  void emit_epilogue() {
    if (frame_ != 0) {
      emit({0x48, 0x81, 0xC4});  // add rsp, frame
      u32(frame_);
    }
    emit({0x5D, 0xC3});  // pop rbp; ret
  }

  void emit_prologue(const DecodedFunction& f) {
    u8(0x55);  // push rbp
    if (frame_ != 0) {
      emit({0x48, 0x81, 0xEC});  // sub rsp, frame
      u32(frame_);
    }
    emit({0x48, 0x89, 0xE5});  // mov rbp, rsp
    // Uniform call protocol: copy parameters from JitState::args, zero the
    // remaining registers (the decoded engine's frame setup).
    for (std::uint32_t i = 0; i < f.num_params; ++i) {
      ld_state(RAX, off_args + static_cast<std::int32_t>(8 * i));
      st(i, RAX);
    }
    const std::uint32_t zero = f.num_regs - f.num_params;
    if (zero > 0) {
      emit({0x31, 0xC0});  // xor eax, eax
      if (zero <= 8) {
        for (std::uint32_t i = f.num_params; i < f.num_regs; ++i) st(i, RAX);
      } else {
        emit({0x48, 0x8D, 0xBD});  // lea rdi, [rbp + 8*num_params]
        u32(8 * f.num_params);
        u8(0xB9);  // mov ecx, zero
        u32(zero);
        emit({0xF3, 0x48, 0xAB});  // rep stosq (DF clear per ABI)
      }
    }
  }

  /// uint64_t thunk(JitState* rdi, const void* fn rsi): establishes the
  /// JIT register convention from JitState, runs the guest function, and
  /// publishes the exact final count on clean return (throwing helpers
  /// already synced ThreadCtx themselves).
  void emit_entry_thunk() {
    emit({0x53, 0x41, 0x55, 0x41, 0x56, 0x41, 0x57});  // push rbx/r13/r14/r15
    mov_rr(RBX, RDI);
    mov_rr(RAX, RSI);
    ld_state(R13, off_instrs_out);  // anchor seed = ThreadCtx::instrs
    ld_state(R14, off_mem_base);
    ld_state(R15, off_mem_words);
    emit({0x48, 0x83, 0xEC, 0x08});  // sub rsp, 8 (16-align for the call)
    emit({0xFF, 0xD0});              // call rax
    emit({0x48, 0x83, 0xC4, 0x08});  // add rsp, 8
    emit({0x80, 0xBB});              // cmp byte [rbx+unwinding], 0
    u32(static_cast<std::uint32_t>(off_unwinding));
    u8(0x00);
    emit({0x75, 0x07});              // jnz over the 7-byte store
    st_state(off_instrs_out, R13);
    emit({0x41, 0x5F, 0x41, 0x5E, 0x41, 0x5D, 0x5B, 0xC3});  // pops; ret
  }

  bool emit_function(std::size_t fid, const DecodedFunction& f, const std::uint64_t* table) {
    const DecodedInstr* const code = f.entry;
    const std::uint32_t n = f.code_size;
    switch_table_ = table;
    slot_off_.assign(n, 0);
    slot_fixups_.clear();
    bail_fixups_.clear();
    colds_.clear();
    frame_ = frame_bytes(f);

    // Slots any branch can land on need a compile-time-known anchor (the
    // decoded engine re-anchors on every taken branch).  Block starts are
    // anchors already via the preceding terminator; this map makes it
    // explicit and safe for any control-flow shape.
    std::vector<bool> is_target(n, false);
    for (std::uint32_t s = 0; s < n; ++s) {
      const DecodedInstr& in = code[s];
      switch (original_op(in.op)) {
        case ir::Opcode::kBr:
          is_target[in.target] = true;
          break;
        case ir::Opcode::kCondBr:
          is_target[in.target] = true;
          is_target[in.target2] = true;
          break;
        case ir::Opcode::kSwitch:
          is_target[in.target2] = true;
          for (std::uint32_t i = 0; i < in.count; ++i) {
            is_target[dm_.case_targets[in.pool + i]] = true;
          }
          break;
        default:
          break;
      }
    }

    emit_prologue(f);

    std::uint32_t anchor = 0;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (is_target[s] && s != anchor) {
        // Fall-through into a branch target: fold the pending distance so
        // both entry paths agree on the anchor (count-neutral, no check --
        // the next transfer compares the same exact value either way).
        // Emitted BEFORE the slot's recorded offset: branches land past it,
        // only the fall-through path executes the fold.  (Dead code with
        // the current decoder -- targets are block starts, which always
        // follow a terminator -- but correct for any control-flow shape.)
        add_r13(s - anchor);
        anchor = s;
      }
      slot_off_[s] = static_cast<std::uint32_t>(buf_.size());
      const DecodedInstr& in = code[s];
      const std::uint32_t delta = s - anchor + 1;  // exact count incl. this slot
      switch (original_op(in.op)) {
        case ir::Opcode::kConst:
          mov_imm64(RAX, static_cast<std::uint64_t>(in.imm));
          st(in.dst, RAX);
          break;
        case ir::Opcode::kConstF: {
          std::uint64_t bits;
          std::memcpy(&bits, &in.fimm, sizeof(bits));
          mov_imm64(RAX, bits);
          st(in.dst, RAX);
          break;
        }
        case ir::Opcode::kMov:
          ld(RAX, in.a);
          st(in.dst, RAX);
          break;
        case ir::Opcode::kAdd:
          ld(RAX, in.a);
          op_rm({0x03}, RAX, RBP, static_cast<std::int32_t>(8 * in.b));
          st(in.dst, RAX);
          break;
        case ir::Opcode::kSub:
          ld(RAX, in.a);
          op_rm({0x2B}, RAX, RBP, static_cast<std::int32_t>(8 * in.b));
          st(in.dst, RAX);
          break;
        case ir::Opcode::kMul:
          ld(RAX, in.a);
          op_rm({0x0F, 0xAF}, RAX, RBP, static_cast<std::int32_t>(8 * in.b));
          st(in.dst, RAX);
          break;
        case ir::Opcode::kAnd:
          ld(RAX, in.a);
          op_rm({0x23}, RAX, RBP, static_cast<std::int32_t>(8 * in.b));
          st(in.dst, RAX);
          break;
        case ir::Opcode::kOr:
          ld(RAX, in.a);
          op_rm({0x0B}, RAX, RBP, static_cast<std::int32_t>(8 * in.b));
          st(in.dst, RAX);
          break;
        case ir::Opcode::kXor:
          ld(RAX, in.a);
          op_rm({0x33}, RAX, RBP, static_cast<std::int32_t>(8 * in.b));
          st(in.dst, RAX);
          break;
        case ir::Opcode::kDiv:
        case ir::Opcode::kRem: {
          const bool rem = original_op(in.op) == ir::Opcode::kRem;
          ld(RAX, in.a);
          ld(RCX, in.b);
          emit({0x48, 0x85, 0xC9});  // test rcx, rcx
          jcc_cold(0x84, rem ? kJitFailRemZero : kJitFailDivZero, &f, delta, false);  // jz
          emit({0x48, 0x99, 0x48, 0xF7, 0xF9});  // cqo; idiv rcx
          st(in.dst, rem ? RDX : RAX);
          break;
        }
        case ir::Opcode::kShl:
          ld(RAX, in.a);
          ld(RCX, in.b);
          emit({0x48, 0xD3, 0xE0});  // shl rax, cl (hardware masks cl & 63)
          st(in.dst, RAX);
          break;
        case ir::Opcode::kShr:
          ld(RAX, in.a);
          ld(RCX, in.b);
          emit({0x48, 0xD3, 0xF8});  // sar rax, cl
          st(in.dst, RAX);
          break;
        case ir::Opcode::kFAdd:
        case ir::Opcode::kFSub:
        case ir::Opcode::kFMul:
        case ir::Opcode::kFDiv: {
          static constexpr std::uint8_t kSse[4] = {0x58, 0x5C, 0x59, 0x5E};
          movsd_load(0, in.a);
          movsd_load(1, in.b);
          emit({0xF2, 0x0F,
                kSse[static_cast<int>(original_op(in.op)) - static_cast<int>(ir::Opcode::kFAdd)],
                0xC1});
          movsd_store(in.dst, 0);
          break;
        }
        case ir::Opcode::kFSqrt:
          movsd_load(0, in.a);
          emit({0xF2, 0x0F, 0x51, 0xC0});  // sqrtsd xmm0, xmm0
          movsd_store(in.dst, 0);
          break;
        case ir::Opcode::kItoF:
          ld(RAX, in.a);
          emit({0xF2, 0x48, 0x0F, 0x2A, 0xC0});  // cvtsi2sd xmm0, rax
          movsd_store(in.dst, 0);
          break;
        case ir::Opcode::kFtoI:
          movsd_load(0, in.a);
          emit({0xF2, 0x48, 0x0F, 0x2C, 0xC0});  // cvttsd2si rax, xmm0
          st(in.dst, RAX);
          break;
        case ir::Opcode::kICmp: {
          // eval_cmp on the signed representations -> 1/0.
          static constexpr std::uint8_t kCc[6] = {0x94, 0x95, 0x9C, 0x9E, 0x9F, 0x9D};
          ld(RAX, in.a);
          op_rm({0x3B}, RAX, RBP, static_cast<std::int32_t>(8 * in.b));  // cmp rax, [b]
          emit({0x0F, kCc[static_cast<int>(in.pred)], 0xC0});            // setcc al
          emit({0x0F, 0xB6, 0xC0});                                      // movzx eax, al
          st(in.dst, RAX);
          break;
        }
        case ir::Opcode::kFCmp: {
          // eval_fcmp's ordered IEEE comparisons, NaN-correct via ucomisd:
          // lt/le compare reversed so CF=1 (unordered) rejects.
          movsd_load(0, in.a);
          movsd_load(1, in.b);
          const bool swapped = in.pred == ir::CmpPred::kLt || in.pred == ir::CmpPred::kLe;
          emit({0x66, 0x0F, 0x2E, static_cast<std::uint8_t>(swapped ? 0xC8 : 0xC1)});
          switch (in.pred) {
            case ir::CmpPred::kEq:  // ZF=1 && PF=0
              emit({0x0F, 0x94, 0xC0, 0x0F, 0x9B, 0xC1, 0x20, 0xC8});
              break;
            case ir::CmpPred::kNe:  // ZF=0 || PF=1
              emit({0x0F, 0x95, 0xC0, 0x0F, 0x9A, 0xC1, 0x08, 0xC8});
              break;
            case ir::CmpPred::kLt:
            case ir::CmpPred::kGt:
              emit({0x0F, 0x97, 0xC0});  // seta al
              break;
            case ir::CmpPred::kLe:
            case ir::CmpPred::kGe:
              emit({0x0F, 0x93, 0xC0});  // setae al
              break;
          }
          emit({0x0F, 0xB6, 0xC0});  // movzx eax, al
          st(in.dst, RAX);
          break;
        }
        case ir::Opcode::kLoad:
        case ir::Opcode::kLoadF:
        case ir::Opcode::kStore:
        case ir::Opcode::kStoreF: {
          const bool is_store = original_op(in.op) == ir::Opcode::kStore ||
                                original_op(in.op) == ir::Opcode::kStoreF;
          ld(RAX, in.a);
          if (in.imm != 0) {
            mov_imm64(RCX, static_cast<std::uint64_t>(in.imm));
            emit({0x48, 0x01, 0xC8});  // add rax, rcx
          }
          // Unsigned compare catches negative addresses too, exactly like
          // the interpreters' (uint64_t)addr >= mem_words.
          emit({0x4C, 0x39, 0xF8});  // cmp rax, r15
          jcc_cold(0x83, kJitFailOutOfBounds, &f, delta, /*addr_in_rax=*/true);  // jae
          if (is_store) {
            ld(RDX, in.b);
            emit({0x49, 0x89, 0x14, 0xC6});  // mov [r14 + rax*8], rdx
          } else {
            emit({0x49, 0x8B, 0x04, 0xC6});  // mov rax, [r14 + rax*8]
            st(in.dst, RAX);
          }
          break;
        }
        case ir::Opcode::kBr:
          fold_and_check(delta);
          jmp_slot(in.target);
          anchor = s + 1;
          break;
        case ir::Opcode::kCondBr:
          fold_and_check(delta);
          ld(RAX, in.a);
          emit({0x48, 0x85, 0xC0});  // test rax, rax
          jcc_slot(0x85, in.target);
          jmp_slot(in.target2);
          anchor = s + 1;
          break;
        case ir::Opcode::kSwitch: {
          fold_and_check(delta);
          mov_imm64(RDI, reinterpret_cast<std::uint64_t>(dm_.case_values.data() + in.pool));
          mov_imm64(RSI, reinterpret_cast<std::uint64_t>(dm_.case_targets.data() + in.pool));
          u8(0xBA);  // mov edx, count
          u32(in.count);
          u8(0xB9);  // mov ecx, default target
          u32(in.target2);
          ld(R8, in.a);
          call_helper(reinterpret_cast<const void*>(&detlock_jit_switch));
          emit({0x89, 0xC0});  // mov eax, eax (the ABI leaves the top half undefined)
          mov_imm64(RDX, reinterpret_cast<std::uint64_t>(switch_table_));
          emit({0x48, 0x8B, 0x04, 0xC2});  // mov rax, [rdx + rax*8]
          emit({0xFF, 0xE0});              // jmp rax
          anchor = s + 1;
          break;
        }
        case ir::Opcode::kRet:
          fold_and_check(delta);
          if (in.has_value) {
            ld(RAX, in.a);
          } else {
            emit({0x31, 0xC0});  // xor eax, eax
          }
          emit_epilogue();
          anchor = s + 1;
          break;
        case ir::Opcode::kCall: {
          fold_and_check(delta);
          const auto* const callee = static_cast<const DecodedFunction*>(in.callee);
          if (callee->entry == nullptr) {
            u8(0xE9);  // jmp cold (the fold above already ran, so delta = 0)
            colds_.push_back({buf_.size(), kJitFailEmptyCall, &in, 0, false});
            u32(0);
            anchor = s + 1;
            break;
          }
          // Depth guard: native frames would smash the OS stack where the
          // interpreters' arena just grows.
          emit({0xFF, 0x83});  // inc dword [rbx+depth]
          u32(static_cast<std::uint32_t>(off_depth));
          emit({0x8B, 0x83});  // mov eax, [rbx+depth]
          u32(static_cast<std::uint32_t>(off_depth));
          emit({0x3B, 0x83});  // cmp eax, dword [rbx+depth_limit]
          u32(static_cast<std::uint32_t>(off_depth_limit));
          jcc_cold(0x87, kJitFailDepthLimit, &in, 0, false);  // ja
          for (std::uint32_t i = 0; i < in.count; ++i) {
            ld(RAX, dm_.reg_pool[in.pool + i]);
            st_state(off_args + static_cast<std::int32_t>(8 * i), RAX);
          }
          u8(0xE8);  // call rel32 (fixed up once all functions are placed)
          call_fixups_.push_back({buf_.size(), in.callee_id});
          u32(0);
          unwind_check();
          emit({0xFF, 0x8B});  // dec dword [rbx+depth]
          u32(static_cast<std::uint32_t>(off_depth));
          st(in.dst, RAX);
          anchor = s + 1;
          break;
        }
        case ir::Opcode::kCallExtern:
        case ir::Opcode::kLock:
        case ir::Opcode::kUnlock:
        case ir::Opcode::kBarrier:
        case ir::Opcode::kSpawn:
        case ir::Opcode::kJoin:
        case ir::Opcode::kCondWait:
        case ir::Opcode::kCondSignal:
        case ir::Opcode::kCondBroadcast:
        case ir::Opcode::kAtomicLoad:
        case ir::Opcode::kAtomicStore:
        case ir::Opcode::kAtomicRmw:
        case ir::Opcode::kFence:
        case ir::Opcode::kClockAdd:
        case ir::Opcode::kClockAddDyn:
          // Uniform trampoline into the decoded handler bodies; passes the
          // DL_SYNC count without re-anchoring, like the interpreter.
          mov_rr(RDI, RBX);
          mov_imm64(RSI, reinterpret_cast<std::uint64_t>(&in));
          emit({0x49, 0x8D, 0x95});  // lea rdx, [r13 + delta]
          u32(delta);
          mov_rr(RCX, RBP);
          call_helper(reinterpret_cast<const void*>(&detlock_jit_slow));
          unwind_check();
          break;
        default:
          return false;  // unknown opcode: refuse to compile, fall back
      }
    }

    // Cold stubs: raise the canonical guest error, then bail.
    for (const Cold& c : colds_) {
      patch32(c.pos, static_cast<std::int64_t>(buf_.size()) - static_cast<std::int64_t>(c.pos + 4));
      if (c.addr_in_rax) {
        emit({0x48, 0x89, 0xC1});  // mov rcx, rax (extra = faulting address)
      } else {
        emit({0x31, 0xC9});  // xor ecx, ecx
      }
      mov_rr(RDI, RBX);
      emit({0x49, 0x8D, 0x95});  // lea rdx, [r13 + delta]
      u32(c.delta);
      mov_imm64(RSI, reinterpret_cast<std::uint64_t>(c.where));
      emit({0x41, 0xB8});  // mov r8d, kind
      u32(c.kind);
      call_helper(reinterpret_cast<const void*>(&detlock_jit_fail));
      u8(0xE9);  // jmp bail
      bail_fixups_.push_back(buf_.size());
      u32(0);
    }

    // Bail: unwind this native frame with a dummy return value; the caller
    // repeats the unwinding check and cascades to the entry thunk.
    const std::size_t bail = buf_.size();
    emit({0x31, 0xC0});  // xor eax, eax
    emit_epilogue();

    for (const std::size_t pos : bail_fixups_) {
      patch32(pos, static_cast<std::int64_t>(bail) - static_cast<std::int64_t>(pos + 4));
    }
    for (const SlotFixup& fix : slot_fixups_) {
      patch32(fix.pos, static_cast<std::int64_t>(slot_off_[fix.slot]) -
                           static_cast<std::int64_t>(fix.pos + 4));
    }
    if (table != nullptr) saved_slot_offs_[fid] = slot_off_;
    return true;
  }

  const DecodedModule& dm_;
  std::vector<std::uint8_t> buf_;
  std::vector<CallFixup> call_fixups_;
  std::vector<std::vector<std::uint32_t>> saved_slot_offs_;
  // Per-function emission state.
  std::vector<std::uint32_t> slot_off_;
  std::vector<SlotFixup> slot_fixups_;
  std::vector<std::size_t> bail_fixups_;
  std::vector<Cold> colds_;
  std::uint32_t frame_ = 0;
  const std::uint64_t* switch_table_ = nullptr;
};

std::unique_ptr<const JitModule> compile_module(const DecodedModule& decoded) {
  // Kill-switch for exercising the decoded fallback on capable hosts.
  if (const char* kill = std::getenv("DETLOCK_JIT_DISABLE");
      kill != nullptr && kill[0] != '\0' && kill[0] != '0') {
    return nullptr;
  }
  if (decoded.functions.empty()) return nullptr;
  JitCompiler compiler(decoded);
  return compiler.run();
}

#else  // non-x86-64 or no mmap: native execution unavailable.

std::unique_ptr<const JitModule> compile_module(const DecodedModule&) { return nullptr; }

#endif

}  // namespace detlock::interp::jit
