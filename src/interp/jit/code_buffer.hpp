// Executable code pages for the template JIT, with a W^X lifecycle: the
// buffer is mapped read-write for emission, then flipped to read-execute
// (never both) before any guest thread can jump into it.  Allocation and
// the protection flip both report failure by value instead of throwing --
// the JIT treats either as "this platform can't run native code" and falls
// back to the decoded engine (docs/interp-performance.md, fallback rules).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace detlock::interp::jit {

class CodeBuffer {
 public:
  /// Maps `size` bytes read-write.  Returns null when the platform has no
  /// anonymous-mmap support or the mapping is refused (e.g. a hardened
  /// kernel or sanitizer policy); callers degrade to the interpreter.
  static std::unique_ptr<CodeBuffer> allocate(std::size_t size);

  ~CodeBuffer();
  CodeBuffer(const CodeBuffer&) = delete;
  CodeBuffer& operator=(const CodeBuffer&) = delete;

  /// Flips the pages from RW to RX.  After this the buffer is immutable
  /// and any number of threads may execute from it concurrently.  False
  /// when mprotect refuses executable pages (W^X still holds: the buffer
  /// simply stays non-executable and the caller discards it).
  bool make_executable();

  std::uint8_t* rw_data() { return data_; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  CodeBuffer(std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace detlock::interp::jit
