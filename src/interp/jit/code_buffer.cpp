#include "interp/jit/code_buffer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DETLOCK_JIT_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define DETLOCK_JIT_HAVE_MMAP 0
#endif

namespace detlock::interp::jit {

#if DETLOCK_JIT_HAVE_MMAP

namespace {

std::size_t round_to_pages(std::size_t size) {
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return (size + page - 1) / page * page;
}

}  // namespace

std::unique_ptr<CodeBuffer> CodeBuffer::allocate(std::size_t size) {
  if (size == 0) return nullptr;
  const std::size_t mapped = round_to_pages(size);
  void* const p =
      ::mmap(nullptr, mapped, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) return nullptr;
  return std::unique_ptr<CodeBuffer>(new CodeBuffer(static_cast<std::uint8_t*>(p), mapped));
}

CodeBuffer::~CodeBuffer() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

bool CodeBuffer::make_executable() {
  return ::mprotect(data_, size_, PROT_READ | PROT_EXEC) == 0;
}

#else  // !DETLOCK_JIT_HAVE_MMAP

std::unique_ptr<CodeBuffer> CodeBuffer::allocate(std::size_t) { return nullptr; }
CodeBuffer::~CodeBuffer() = default;
bool CodeBuffer::make_executable() { return false; }

#endif

}  // namespace detlock::interp::jit
