// Runtime half of the template JIT: the C-ABI helpers generated code calls
// (bookkeeping, the slow-opcode trampoline, guest-error raising, switch
// dispatch) and Engine::exec_jit, which runs one guest call tree natively.
//
// Every helper body is a line-for-line replica of the corresponding decoded
// handler in engine_decoded.cpp -- that is the byte-identity argument: the
// JIT only ever diverges from the decoded engine in how fast the fast path
// runs, never in what any observable (counts, clocks, fingerprints, sync
// order) sees.  Helpers never let a C++ exception unwind into JIT frames;
// guest errors are captured into JitState and re-raised by exec_jit once
// the generated code has bailed out of its native frames.
#include <algorithm>
#include <cmath>
#include <thread>

#include "interp/engine_internal.hpp"
#include "interp/jit/jit.hpp"

namespace detlock::interp {

using engine_detail::as_i64;
using engine_detail::from_i64;

/// The helpers' window into Engine/ThreadCtx internals (a friend of Engine;
/// JitState carries both as type-erased pointers to stay standard-layout).
struct JitRuntime {
  static Engine& engine(jit::JitState& st) { return *static_cast<Engine*>(st.engine); }
  static Engine::ThreadCtx& thread_ctx(jit::JitState& st) {
    return *static_cast<Engine::ThreadCtx*>(st.ctx);
  }

  /// DL_SYNC: publish the exact executed count before anything that can
  /// block, call out, or throw.
  static void sync(jit::JitState& st, std::uint64_t now) {
    Engine::ThreadCtx& ctx = thread_ctx(st);
    ctx.instrs = now;
    ctx.since_yield = static_cast<std::uint32_t>(now - st.last_yield);
  }

  /// Captures the in-flight exception for exec_jit to rethrow and flips the
  /// flag generated code tests after every call.
  static void capture(jit::JitState& st) noexcept {
    *static_cast<std::exception_ptr*>(st.exception) = std::current_exception();
    st.unwinding = 1;
  }

  // bookkeep_slow (engine_decoded.cpp): step limit, abort poll, cooperative
  // yield, next_check recomputation -- on JitState fields instead of the
  // interpreter's loop locals.
  static void bookkeep(jit::JitState& st, std::uint64_t now) noexcept {
    try {
      if (now > st.max_steps) {
        sync(st, now);
        throw Error("thread " + std::to_string(thread_ctx(st).tid) +
                    " exceeded max_steps_per_thread");
      }
      if (now >= st.next_abort_at) {
        st.next_abort_at = (now | 0xffff) + 1;
        if (engine(st).abort_flag_.load(std::memory_order_relaxed)) {
          sync(st, now);
          throw Error("execution aborted (another thread failed)");
        }
      }
      if (st.yield_interval != 0 && now - st.last_yield >= st.yield_interval) {
        st.last_yield = now;
        std::this_thread::yield();
      }
      std::uint64_t next = st.next_abort_at;
      if (st.yield_interval != 0) {
        next = std::min<std::uint64_t>(next, st.last_yield + st.yield_interval);
      }
      st.next_check = std::min(next, st.limit_at);
    } catch (...) {
      capture(st);
    }
  }

  // The decoded engine's slow-opcode handler bodies, verbatim, against the
  // caller's native register frame.  `in` is never a fused head: fusion
  // only covers the arithmetic/branch core, which the JIT inlines.
  static void slow(jit::JitState& st, const DecodedInstr& in, std::uint64_t now,
                   std::uint64_t* regs) noexcept {
    try {
      Engine& e = engine(st);
      Engine::ThreadCtx& ctx = thread_ctx(st);
      const DecodedModule& dm = *e.decoded_;
      sync(st, now);
      switch (static_cast<ir::Opcode>(in.op)) {
        case ir::Opcode::kCallExtern: {
          std::vector<std::uint64_t>& eargs = ctx.extern_args;
          eargs.clear();
          const std::uint32_t* const arg_regs = dm.reg_pool.data() + in.pool;
          for (std::uint32_t i = 0; i < in.count; ++i) eargs.push_back(regs[arg_regs[i]]);
          if (in.callee != nullptr) {
            const ExternImpl& impl = *static_cast<const ExternImpl*>(in.callee);
            ExternCallContext call{e.memory_, ctx.tid, eargs};
            regs[in.dst] = impl(call);
          } else {
            regs[in.dst] = e.call_extern(ctx, in.callee_id, {eargs.begin(), eargs.end()});
          }
          break;
        }
        case ir::Opcode::kLock: {
          const auto mutex = static_cast<runtime::MutexId>(as_i64(regs[in.a]));
          e.backend_->lock(ctx.tid, mutex);
          ctx.held.push_back(mutex);
          break;
        }
        case ir::Opcode::kUnlock: {
          const auto mutex = static_cast<runtime::MutexId>(as_i64(regs[in.a]));
          e.backend_->unlock(ctx.tid, mutex);
          auto it = std::find(ctx.held.begin(), ctx.held.end(), mutex);
          if (it != ctx.held.end()) ctx.held.erase(it);
          break;
        }
        case ir::Opcode::kBarrier:
          e.backend_->barrier_wait(ctx.tid, static_cast<runtime::BarrierId>(as_i64(regs[in.a])),
                                   static_cast<std::uint32_t>(as_i64(regs[in.b])));
          break;
        case ir::Opcode::kSpawn: {
          std::vector<std::uint64_t> call_args;
          call_args.reserve(in.count);
          const std::uint32_t* const arg_regs = dm.reg_pool.data() + in.pool;
          for (std::uint32_t i = 0; i < in.count; ++i) call_args.push_back(regs[arg_regs[i]]);
          const runtime::ThreadId child = e.backend_->register_spawn(ctx.tid);
          e.spawned_count_.fetch_add(1, std::memory_order_relaxed);
          e.os_threads_[child] =
              std::thread(&Engine::thread_main, &e, child, static_cast<ir::FuncId>(in.callee_id),
                          std::move(call_args));
          regs[in.dst] = from_i64(child);
          break;
        }
        case ir::Opcode::kJoin: {
          const std::int64_t handle = as_i64(regs[in.a]);
          DETLOCK_CHECK(handle >= 0 && static_cast<std::size_t>(handle) < e.os_threads_.size() &&
                            e.os_threads_[static_cast<std::size_t>(handle)].joinable(),
                        "join of never-spawned or already-joined thread " + std::to_string(handle));
          const auto target = static_cast<runtime::ThreadId>(handle);
          e.backend_->join(ctx.tid, target);
          e.os_threads_[target].join();
          break;
        }
        case ir::Opcode::kCondWait:
          e.backend_->cond_wait(ctx.tid, static_cast<runtime::CondVarId>(as_i64(regs[in.a])),
                                static_cast<runtime::MutexId>(as_i64(regs[in.b])));
          break;
        case ir::Opcode::kCondSignal:
          e.backend_->cond_signal(ctx.tid, static_cast<runtime::CondVarId>(as_i64(regs[in.a])));
          break;
        case ir::Opcode::kCondBroadcast:
          e.backend_->cond_broadcast(ctx.tid, static_cast<runtime::CondVarId>(as_i64(regs[in.a])));
          break;
        case ir::Opcode::kAtomicLoad: {
          runtime::AtomicOp op;
          op.kind = runtime::AtomicOp::Kind::kLoad;
          op.order = static_cast<runtime::AtomicOp::Order>(aux_order(in.aux));
          op.addr = as_i64(regs[in.a]) + in.imm;
          regs[in.dst] = from_i64(e.backend_->atomic_op(ctx.tid, op, e.memory_));
          break;
        }
        case ir::Opcode::kAtomicStore: {
          runtime::AtomicOp op;
          op.kind = runtime::AtomicOp::Kind::kStore;
          op.order = static_cast<runtime::AtomicOp::Order>(aux_order(in.aux));
          op.addr = as_i64(regs[in.a]) + in.imm;
          op.operand = as_i64(regs[in.b]);
          e.backend_->atomic_op(ctx.tid, op, e.memory_);
          break;
        }
        case ir::Opcode::kAtomicRmw: {
          runtime::AtomicOp op;
          switch (aux_rmw(in.aux)) {
            case ir::AtomicRmwKind::kAdd: op.kind = runtime::AtomicOp::Kind::kAdd; break;
            case ir::AtomicRmwKind::kExchange: op.kind = runtime::AtomicOp::Kind::kExchange; break;
            case ir::AtomicRmwKind::kCas: op.kind = runtime::AtomicOp::Kind::kCas; break;
          }
          op.order = static_cast<runtime::AtomicOp::Order>(aux_order(in.aux));
          op.addr = as_i64(regs[in.a]) + in.imm;
          op.operand = as_i64(regs[in.b]);
          if (aux_rmw(in.aux) == ir::AtomicRmwKind::kCas) op.desired = as_i64(regs[in.target]);
          regs[in.dst] = from_i64(e.backend_->atomic_op(ctx.tid, op, e.memory_));
          break;
        }
        case ir::Opcode::kFence: {
          runtime::AtomicOp op;
          op.kind = runtime::AtomicOp::Kind::kFence;
          op.order = static_cast<runtime::AtomicOp::Order>(aux_order(in.aux));
          e.backend_->atomic_op(ctx.tid, op, e.memory_);
          break;
        }
        case ir::Opcode::kClockAdd:
          ++ctx.clock_instrs;
          e.backend_->clock_add(ctx.tid, static_cast<std::uint64_t>(in.imm));
          break;
        case ir::Opcode::kClockAddDyn: {
          ++ctx.clock_instrs;
          const double scaled = in.fimm * static_cast<double>(as_i64(regs[in.a]));
          const std::int64_t delta =
              in.imm + static_cast<std::int64_t>(std::llround(std::max(0.0, scaled)));
          e.backend_->clock_add(ctx.tid, static_cast<std::uint64_t>(std::max<std::int64_t>(delta, 0)));
          break;
        }
        default:
          DETLOCK_UNREACHABLE("non-slow opcode reached the jit trampoline");
      }
    } catch (...) {
      capture(st);
    }
  }

  // Guest errors raised from generated code, with the interpreters'
  // canonical message content (the reference/decoded engines wrap some of
  // these in DETLOCK_CHECK's location prefix; no test compares guest error
  // text across engines, only that the same programs fail).
  static void fail(jit::JitState& st, const void* where, std::uint64_t now, std::int64_t extra,
                   std::uint32_t kind) noexcept {
    try {
      sync(st, now);
      switch (kind) {
        case jit::kJitFailDivZero:
          throw Error("division by zero in @" +
                      static_cast<const DecodedFunction*>(where)->source->name());
        case jit::kJitFailRemZero:
          throw Error("remainder by zero in @" +
                      static_cast<const DecodedFunction*>(where)->source->name());
        case jit::kJitFailOutOfBounds:
          throw Error("memory access out of bounds: " + std::to_string(extra));
        case jit::kJitFailEmptyCall:
          throw Error("call of empty function @" +
                      static_cast<const DecodedFunction*>(
                          static_cast<const DecodedInstr*>(where)->callee)
                          ->source->name());
        case jit::kJitFailDepthLimit:
          // JIT-only bound: native frames live on the OS thread stack, so
          // runaway recursion becomes a clean guest error here where the
          // interpreters' heap arena would just keep growing.
          throw Error("call depth limit exceeded calling @" +
                      static_cast<const DecodedFunction*>(
                          static_cast<const DecodedInstr*>(where)->callee)
                          ->source->name() +
                      " (recursion too deep for native execution; use --interp=decoded)");
        default:
          DETLOCK_UNREACHABLE("bad jit failure kind");
      }
    } catch (...) {
      capture(st);
    }
  }
};

extern "C" void detlock_jit_bookkeep(jit::JitState* state, std::uint64_t now) noexcept {
  JitRuntime::bookkeep(*state, now);
}

extern "C" void detlock_jit_slow(jit::JitState* state, const DecodedInstr* in, std::uint64_t now,
                                 std::uint64_t* regs) noexcept {
  JitRuntime::slow(*state, *in, now, regs);
}

extern "C" void detlock_jit_fail(jit::JitState* state, const void* where, std::uint64_t now,
                                 std::int64_t extra, std::uint32_t kind) noexcept {
  JitRuntime::fail(*state, where, now, extra, kind);
}

extern "C" std::uint32_t detlock_jit_switch(const std::int64_t* values,
                                            const std::uint32_t* targets, std::uint32_t count,
                                            std::uint32_t default_target,
                                            std::int64_t value) noexcept {
  // The decoded engine's binary search over the sorted case pool.
  std::uint32_t lo = 0;
  std::uint32_t hi = count;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (values[mid] < value) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < count && values[lo] == value ? targets[lo] : default_target;
}

std::uint64_t Engine::exec_jit(ThreadCtx& ctx, ir::FuncId func,
                               const std::vector<std::uint64_t>& args) {
  const DecodedFunction& f = decoded_->functions[func];
  DETLOCK_CHECK(f.entry != nullptr, "call of empty function @" + f.source->name());
  jit::JitState st;
  // The decoded engine's hot-loop initialization, field for field
  // (engine_decoded.cpp anchor_count/last_yield/limit_at/next_* formulas).
  st.depth_limit = jit_->depth_limit();
  st.max_steps = config_.max_steps_per_thread;
  st.yield_interval = config_.yield_interval;
  st.limit_at = st.max_steps + 1 == 0 ? st.max_steps : st.max_steps + 1;
  st.instrs_out = ctx.instrs;
  st.last_yield = ctx.instrs - ctx.since_yield;
  st.next_abort_at = (ctx.instrs | 0xffff) + 1;
  st.next_check = st.next_abort_at;
  if (st.yield_interval != 0) {
    st.next_check = std::min<std::uint64_t>(st.next_check, st.last_yield + st.yield_interval);
  }
  st.next_check = std::min(st.next_check, st.limit_at);
  st.mem_base = reinterpret_cast<std::uint64_t>(memory_.data());
  st.mem_words = memory_.size();
  st.engine = this;
  st.ctx = &ctx;
  std::exception_ptr error;  // outlives the native frames that may fill it
  st.exception = &error;
  for (std::size_t i = 0; i < args.size(); ++i) st.args[i] = args[i];  // arity pre-checked
  const std::uint64_t result = jit_->invoke(func, &st);
  if (st.unwinding != 0) std::rethrow_exception(error);
  ctx.instrs = st.instrs_out;
  ctx.since_yield = static_cast<std::uint32_t>(st.instrs_out - st.last_yield);
  return result;
}

}  // namespace detlock::interp
