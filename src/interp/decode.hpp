// Predecode: one-time translation from ir::Function (blocks of variable-
// size instructions, branch targets as block ids) to a flat, cache-dense
// representation the direct-threaded execution loop can walk with a single
// instruction pointer.
//
// What decoding buys the hot loop (docs/interp-performance.md):
//   * One contiguous DecodedInstr array per module: no per-block vector
//     indirection, no bounds check per instruction, `ip++` instead of
//     (block, index) bookkeeping.
//   * kBr/kCondBr/kSwitch targets resolved to flat instruction offsets at
//     decode time, so taken branches are one pointer assignment.
//   * kSwitch case tables flattened into shared pools, sorted by case value
//     and deduplicated (first occurrence wins, matching the reference
//     engine's first-match linear scan), so dispatch is a binary search.
//   * kCall callees resolved to DecodedFunction pointers, kCallExtern
//     callees to ExternImpl pointers (Engine fills these in at run() entry,
//     once test-registered externs exist), so calls never look anything up.
//   * Call argument registers flattened into a shared pool: the executor
//     copies caller registers straight into the callee's arena frame with
//     no intermediate std::vector.
//
// Decoding validates what the reference engine only discovers at run time:
// every block must end in a terminator and every call's argument count must
// match the callee, so the flat code cannot "fall off" a block.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/module.hpp"

namespace detlock::interp {

/// Decoded opcodes are a superset of ir::Opcode: values below
/// ir::kNumOpcodes are exactly the IR opcode; the values after are fused
/// superinstructions created by the decode-time peephole (fuse_pairs in
/// decode.cpp).  A fused opcode means "execute this slot's original
/// operation, then the following slot(s)' operations, with one dispatch" --
/// the trailing slots keep their original instructions, so branches into
/// them still execute correctly.
enum DecodedOp : std::uint8_t {
  kFusedICmpBr = static_cast<std::uint8_t>(ir::kNumOpcodes),  // kICmp + kCondBr
  kFusedConstAdd,                                             // kConst + kAdd
  kFusedMulAdd,                                               // kMul + kAdd
  kFusedAndAdd,                                               // kAnd + kAdd
  kFusedConstAddBr,  // kConst + kAdd + kBr: the bump-and-loop-back idiom
  kNumDecodedOps,
};

/// ir::Opcode -> decoded opcode value.
constexpr std::uint8_t dop(ir::Opcode op) { return static_cast<std::uint8_t>(op); }

/// DecodedInstr::aux packing for atomics (see the field comment).
constexpr std::uint8_t pack_atomic_aux(ir::MemOrder order, ir::AtomicRmwKind rmw) {
  return static_cast<std::uint8_t>((static_cast<std::uint8_t>(order) << 4) |
                                   static_cast<std::uint8_t>(rmw));
}
constexpr ir::MemOrder aux_order(std::uint8_t aux) { return static_cast<ir::MemOrder>(aux >> 4); }
constexpr ir::AtomicRmwKind aux_rmw(std::uint8_t aux) {
  return static_cast<ir::AtomicRmwKind>(aux & 0x0f);
}

/// Fixed-size decoded instruction (64 bytes).  Meaning of the slots varies
/// by opcode exactly as in ir::Instr; control flow and calls use the
/// decoded fields below instead of block ids / callee ids.
struct DecodedInstr {
  std::uint8_t op = 0;  // decoded opcode space (ir::Opcode + fused pairs)
  ir::CmpPred pred{};
  bool has_value = false;       // kRet: returns a?
  /// Atomics: (MemOrder << 4) | AtomicRmwKind, packed into the byte the old
  /// layout left as padding so DecodedInstr stays one cache line.  The CAS
  /// desired-value register rides in `target` (atomics never branch).
  std::uint8_t aux = 0;
  std::uint32_t dst = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::int64_t imm = 0;         // constant / mem offset / clock delta
  /// fimm (kConstF/kFAdd.../kClockAddDyn) and callee (kCall/kCallExtern)
  /// share a slot: no opcode uses both.  kCall: const DecodedFunction*.
  /// kCallExtern: const ExternImpl* (null until Engine resolves it; null at
  /// execution = unimplemented extern, reported through the reference
  /// engine's lazy-lookup path).
  union {
    double fimm = 0.0;
    const void* callee;
  };
  std::uint32_t target = 0;     // kBr target / kCondBr then-target (flat, function-relative)
  std::uint32_t target2 = 0;    // kCondBr else-target / kSwitch default (flat)
  std::uint32_t pool = 0;       // first index into the module pools (args / cases)
  std::uint32_t count = 0;      // number of call args / switch cases
  std::uint32_t callee_id = 0;  // original FuncId (kCall/kSpawn) or ExternId (kCallExtern)
  /// Direct-threading: the computed-goto label of this op's handler inside
  /// Engine::exec_decoded, patched by the Engine at run() entry (the label
  /// addresses are local to that function).  Dispatch is then one load and
  /// one indirect jump, with no opcode-to-label table in between.  Null in
  /// switch-dispatch builds, which dispatch on `op` instead.
  const void* handler = nullptr;
};
static_assert(sizeof(DecodedInstr) == 64, "decoded instructions are cache-line sized");

struct DecodedFunction {
  /// First instruction; branch targets are offsets from here.  Null only
  /// for a function with no blocks (calling it is an error).
  const DecodedInstr* entry = nullptr;
  std::uint32_t code_size = 0;
  std::uint32_t num_params = 0;
  /// Arena frame size in registers (>= num_params).
  std::uint32_t num_regs = 0;
  /// Source function (names for error messages, spawn bookkeeping).
  const ir::Function* source = nullptr;
};

/// Which dispatch loop a DecodedModule's handler resolution targeted.  The
/// computed-goto label addresses are private to one exec_decoded
/// instantiation, so a module threaded for the observer-free loop would
/// jump through the wrong labels in the observing loop (and vice versa);
/// this tag turns that caller-discipline contract into a checked one
/// (Engine::run / decoded_handlers_resolved).  Switch-dispatch builds never
/// consult handler pointers but carry the tag anyway, so "was this module
/// finalized for sharing?" is answerable uniformly.
enum class PreparedFor : std::uint8_t {
  kUnresolved,        // fresh decode_module output; not executable as shared
  kPlainDispatch,     // resolved for exec_decoded<false> (observer-free)
  kObservedDispatch,  // resolved for exec_decoded<true> (observer attached)
};

/// The decoded module: flat code plus the shared operand pools.  Owned by
/// the Engine; immutable after Engine::run() resolves extern pointers.
struct DecodedModule {
  std::vector<DecodedFunction> functions;   // indexed by ir::FuncId
  std::vector<DecodedInstr> code;           // all functions, concatenated
  std::vector<std::uint32_t> reg_pool;      // kCall/kCallExtern/kSpawn argument registers
  std::vector<std::int64_t> case_values;    // kSwitch cases, sorted per switch
  std::vector<std::uint32_t> case_targets;  // parallel flat targets
  /// Set by Engine::resolve_decoded_handlers; see PreparedFor.
  PreparedFor prepared_for = PreparedFor::kUnresolved;

  const DecodedFunction& function(ir::FuncId id) const {
    DETLOCK_CHECK(id < functions.size(), "bad function id (decoded)");
    return functions[id];
  }
};

/// Sentinel frame_base passed to Engine::exec_decoded to request the
/// computed-goto handler-label table (written into ctx.arena) instead of
/// executing anything; see resolve_decoded_handlers().
inline constexpr std::size_t kDecodedLabelQuery = static_cast<std::size_t>(-1);

/// Translates every function of `module`.  Throws detlock::Error on
/// structural problems (unterminated block, call arity mismatch, bad
/// target) that the reference engine would only hit at execution time.
DecodedModule decode_module(const ir::Module& module);

/// True when `module` is executable by the observer-free direct-threaded
/// loop as-is, i.e. it was finalized for exactly that dispatch variant (by
/// Engine::prepare_decoded_module or a private resolve at run() entry).
/// False for a fresh decode AND for a module resolved for the observing
/// loop -- the handler labels would be the wrong function's.
bool decoded_handlers_resolved(const DecodedModule& module);

/// A sorted, deduplicated switch-case table (shared helper: the decoded
/// engine builds them into its pools; the reference engine precomputes one
/// per kSwitch at Engine construction).  Targets are whatever unit the
/// caller supplies (flat offsets or block ids).
void build_sorted_cases(const std::vector<ir::Reg>& pairs, std::vector<std::int64_t>& values,
                        std::vector<std::uint32_t>& targets);

}  // namespace detlock::interp
