// Shared infrastructure for workload generators.
//
// Every workload is an IR program built through FunctionBuilder with a
// standard shape: @main initializes memory, spawns `threads - 1` workers
// running @worker(tid), runs @worker(0) itself... no -- main IS a thread in
// the runtime's eyes, so main spawns `threads` workers and joins them (the
// SPLASH-2 harness shape), keeping worker thread ids 1..threads.
//
// Memory layout conventions (word addresses):
//   [0 .. 63]         reserved globals (counters, flags)
//   [64 ..]           workload-specific arrays
// The heap (dl_malloc) lives in the upper half of engine memory.
#pragma once

#include <cstdint>
#include <string>

#include "ir/builder.hpp"
#include "ir/module.hpp"

namespace detlock::workloads {

/// Common scaling knobs; each generator interprets them in its own units
/// but agrees on the contract that work scales ~linearly with `scale` and
/// the thread count is exact.
struct WorkloadParams {
  std::uint32_t threads = 4;
  /// Outer iteration count multiplier.
  std::uint32_t scale = 1;
  /// Deterministic seed for any generator-side randomization (baked into
  /// the emitted IR, never consulted at run time).
  std::uint64_t seed = 42;
};

/// A generated workload: the module plus the entry function and metadata
/// the harness needs.
struct Workload {
  ir::Module module;
  ir::FuncId main_func = 0;
  std::string name;
  /// Approximate shared-memory words the program touches (engine memory
  /// sizing hint; does not include heap).
  std::size_t memory_words = 1 << 16;
};

/// Emits a loop `for (i = init; i < bound; ++i) body` into the builder.
/// The callback receives the loop induction register.  On return the
/// builder's insert point is the loop exit block.
/// `tag` disambiguates block names when a function has several loops.
template <typename BodyFn>
void emit_counted_loop(ir::FunctionBuilder& b, std::int64_t init, ir::Reg bound, const std::string& tag,
                       BodyFn&& body) {
  using namespace ir;
  const BlockId header = b.make_block(tag + ".cond");
  const BlockId body_block = b.make_block(tag + ".body");
  const BlockId latch = b.make_block(tag + ".inc");
  const BlockId exit = b.make_block(tag + ".exit");

  // The induction register is re-assigned by entry and latch (the IR is not
  // SSA; emit() appends hand-built instructions targeting existing regs).
  // The increment constant is hoisted out of the latch so the latch block
  // stays minimal, like compiled code.
  const Reg i = b.new_reg();
  const Reg one = b.const_i(1);
  b.emit(Instr::make_const(i, init));
  b.br(header);

  b.set_insert_point(header);
  const Reg cond = b.icmp(CmpPred::kLt, i, bound);
  b.condbr(cond, body_block, exit);

  b.set_insert_point(body_block);
  body(i);
  // body() may have moved the insert point; continue from wherever it ended.
  b.br(latch);

  b.set_insert_point(latch);
  b.emit(Instr::make_binary(Opcode::kAdd, i, i, one));
  b.br(header);

  b.set_insert_point(exit);
}

/// Builds the canonical tiny program used by smoke tests and the
/// quickstart example: `threads` workers each acquire mutex 0 `iters`
/// times, incrementing the shared counter at address 0; main joins all and
/// returns the final counter value.
Workload make_counter_workload(std::uint32_t threads, std::uint32_t iters, std::uint32_t compute = 8);

/// Result-slot base shared by all workloads: worker t writes its checksum
/// to word kResultBase + t.
inline constexpr std::int64_t kResultBase = 32;

/// Builds the SPLASH-2 harness @main: spawn threads-1 children running
/// @worker(tid) for tid = 1..threads-1, run @worker(0) inline, join all,
/// then return the sum of the result slots.  Every workload uses this, so
/// barrier phases inside @worker always cover all live threads.
ir::FuncId build_spmd_main(ir::Module& module, ir::FuncId worker_fn, std::uint32_t threads);

}  // namespace detlock::workloads
