#include "workloads/workloads.hpp"

namespace detlock::workloads {

const std::vector<WorkloadSpec>& all_workloads() {
  static const std::vector<WorkloadSpec> specs = {
      {"ocean", make_ocean},         {"raytrace", make_raytrace}, {"water_nsq", make_water_nsq},
      {"radiosity", make_radiosity}, {"volrend", make_volrend},
  };
  return specs;
}

}  // namespace detlock::workloads
