#include "workloads/harness.hpp"

#include <chrono>
#include <memory>

#include "runtime/faultinject.hpp"
#include "support/error.hpp"

namespace detlock::workloads {

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kBaseline: return "baseline";
    case Mode::kClocksOnly: return "clocks-only";
    case Mode::kDetLock: return "detlock";
    case Mode::kKendoSim: return "kendo-sim";
  }
  DETLOCK_UNREACHABLE("bad mode");
}

Measurement measure(const WorkloadSpec& spec, const WorkloadParams& params, const MeasureOptions& options) {
  Measurement best;
  best.seconds = -1.0;

  for (int rep = 0; rep < options.repetitions; ++rep) {
    // Fresh module per repetition: instrumentation mutates the IR and an
    // Engine runs once.
    Workload w = spec.factory(params);

    pass::PipelineStats pass_stats;
    if (options.mode != Mode::kBaseline) {
      pass::PassOptions popts = options.pass_options;
      if (options.mode == Mode::kKendoSim) {
        // Kendo's counter counts retired instructions: updates land after
        // the counted work, never before.
        popts.placement = pass::ClockPlacement::kEnd;
      }
      pass_stats = pass::instrument_module(w.module, popts);
    }

    interp::EngineConfig config;
    config.deterministic = options.mode == Mode::kDetLock || options.mode == Mode::kKendoSim;
    config.engine = options.engine;
    config.memory_words = std::max<std::size_t>(w.memory_words, 1 << 14) * 2;
    config.runtime.record_trace = options.record_trace;
    config.runtime.profile = options.profile;
    if (options.mode == Mode::kKendoSim) {
      config.runtime.publication = runtime::ClockPublication::kChunked;
      config.runtime.chunk_size = options.kendo_chunk_size;
    }
    config.runtime.watchdog_ms = options.watchdog_ms;
    std::unique_ptr<runtime::FaultInjector> injector;
    if (options.chaos) {
      injector = std::make_unique<runtime::FaultInjector>(
          runtime::FaultPlan::timing_chaos(options.chaos_seed + static_cast<std::uint64_t>(rep)),
          config.runtime.max_threads);
      config.runtime.fault = injector.get();
    }

    interp::Engine engine(w.module, config);
    const auto start = std::chrono::steady_clock::now();
    interp::RunResult run = engine.run(w.main_func);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(stop - start).count();

    if (best.seconds < 0.0 || seconds < best.seconds) {
      best.seconds = seconds;
      best.pass_stats = pass_stats;
      best.checksum = run.main_return;
      best.locks_per_sec = seconds > 0.0 ? static_cast<double>(run.sync.lock_acquires) / seconds : 0.0;
      if (options.profile && engine.profiler() != nullptr) best.profile = engine.profiler()->summary();
      best.run = std::move(run);
    }
  }
  return best;
}

}  // namespace detlock::workloads
