#include "workloads/harness.hpp"

#include <algorithm>
#include <chrono>

#include "service/compiled_module.hpp"
#include "service/execution_context.hpp"
#include "support/error.hpp"

namespace detlock::workloads {

Measurement measure(const WorkloadSpec& spec, const WorkloadParams& params, const MeasureOptions& options) {
  if (const std::optional<std::string> err = options.validate()) {
    throw Error("measure: invalid options: " + *err);
  }

  // Build + instrument + decode exactly once; repetitions reuse the shared
  // artifact through fresh per-run ExecutionContexts.
  Workload w = spec.factory(params);
  const std::size_t memory_hint = std::max<std::size_t>(w.memory_words, 1 << 14) * 2;
  const std::shared_ptr<const service::CompiledModule> compiled =
      service::CompiledModule::compile(std::move(w.module), service::compile_options(options));

  Measurement best;
  best.seconds = -1.0;
  best.pass_stats = compiled->pass_stats();

  for (int rep = 0; rep < options.repetitions; ++rep) {
    service::ExecutionContext ctx(compiled, options);
    ctx.set_memory_hint(memory_hint);
    if (options.chaos) ctx.set_chaos_seed(options.chaos_seed + static_cast<std::uint64_t>(rep));

    const auto start = std::chrono::steady_clock::now();
    interp::RunResult run = ctx.run(w.main_func);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(stop - start).count();

    if (best.seconds < 0.0 || seconds < best.seconds) {
      best.seconds = seconds;
      best.checksum = run.main_return;
      best.locks_per_sec = seconds > 0.0 ? static_cast<double>(run.sync.lock_acquires) / seconds : 0.0;
      if (options.profile && ctx.engine()->profiler() != nullptr) {
        best.profile = ctx.engine()->profiler()->summary();
      }
      best.run = std::move(run);
    }
  }
  return best;
}

}  // namespace detlock::workloads
