// Task farm with condition variables: a demo workload for the condvar
// extension (not part of the paper's Table I set, which only uses locks and
// barriers -- see workloads.hpp).
//
// Worker 0 produces `tasks` work items into an unbounded queue; the other
// threads consume them, blocking on a not-empty condvar rather than
// spinning.  Shutdown is a done-flag plus broadcast.  The per-task compute
// is a clockable leaf so the whole condvar path also runs under Opt1.
//
// Memory map (words):
//   6                  queue head (next write)
//   7                  queue tail (next read)
//   8                  done flag
//   kResultBase + t    per-thread checksums
//   kQueue ..          task payloads
#include "workloads/workloads.hpp"

#include "interp/externs.hpp"
#include "ir/verifier.hpp"

namespace detlock::workloads {

namespace {
constexpr std::int64_t kHeadAddr = 6;
constexpr std::int64_t kTailAddr = 7;
constexpr std::int64_t kDoneAddr = 8;
constexpr std::int64_t kQueue = 4096;
}  // namespace

Workload make_taskfarm_cv(const WorkloadParams& params) {
  using namespace ir;
  Workload w;
  w.name = "taskfarm_cv";
  interp::declare_standard_externs(w.module);

  const std::uint32_t threads = params.threads;
  const std::int64_t tasks = 600 * static_cast<std::int64_t>(params.scale);
  w.memory_words = static_cast<std::size_t>(kQueue + tasks + 64);

  // @chew(x): single-block compute leaf (Opt1 candidate).
  FunctionBuilder chew(w.module, "chew", 1);
  {
    Reg v = chew.param(0);
    for (int k = 0; k < 10; ++k) {
      v = chew.add(chew.mul(v, chew.const_i(31)), chew.const_i(k + 1));
      v = chew.binary(Opcode::kXor, v, chew.binary(Opcode::kShr, v, chew.const_i(9)));
    }
    chew.ret(chew.binary(Opcode::kAnd, v, chew.const_i(0xffff)));
  }

  // @farm_worker(tid): tid 0 produces, others consume.
  FunctionBuilder f(w.module, "farm_worker", 1);
  const Reg tid = f.param(0);
  const Reg m0 = f.const_i(0);       // queue mutex
  const Reg cv_nonempty = f.const_i(0);
  const Reg one = f.const_i(1);

  const BlockId produce = f.make_block("produce");
  const BlockId consume = f.make_block("consume");
  f.condbr(f.icmp(CmpPred::kEq, tid, f.const_i(0)), produce, consume);

  // ---- producer ------------------------------------------------------------
  f.set_insert_point(produce);
  {
    const Reg ntasks = f.const_i(tasks);
    emit_counted_loop(f, 0, ntasks, "prod", [&](Reg i) {
      // Generate the payload outside the lock (private compute).
      const Reg payload = f.call(chew.func_id(), {i});
      f.lock(m0);
      const Reg head = f.load(f.const_i(kHeadAddr));
      f.store(f.add(f.const_i(kQueue), head), payload);
      f.store(f.const_i(kHeadAddr), f.add(head, one));
      f.cond_signal(cv_nonempty);
      f.unlock(m0);
    });
    f.lock(m0);
    f.store(f.const_i(kDoneAddr), one);
    f.cond_broadcast(cv_nonempty);
    f.unlock(m0);
    // Producer's checksum slot stays 0.
    f.store(f.add(f.const_i(kResultBase), tid), f.const_i(0));
    f.ret();
  }

  // ---- consumer ------------------------------------------------------------
  f.set_insert_point(consume);
  {
    const Reg acc = f.new_reg();
    f.emit(Instr::make_const(acc, 0));
    const BlockId loop = f.make_block("cons.loop");
    const BlockId check = f.make_block("cons.check");
    const BlockId wait = f.make_block("cons.wait");
    const BlockId take = f.make_block("cons.take");
    const BlockId drained = f.make_block("cons.drained");
    const BlockId done = f.make_block("cons.done");
    f.br(loop);

    f.set_insert_point(loop);
    f.lock(m0);
    f.br(check);

    f.set_insert_point(check);
    const Reg tail = f.load(f.const_i(kTailAddr));
    const Reg head = f.load(f.const_i(kHeadAddr));
    f.condbr(f.icmp(CmpPred::kLt, tail, head), take, drained);

    f.set_insert_point(drained);
    const Reg done_flag = f.load(f.const_i(kDoneAddr));
    f.condbr(done_flag, done, wait);

    f.set_insert_point(wait);
    f.cond_wait(cv_nonempty, m0);
    f.br(check);

    f.set_insert_point(take);
    const Reg payload = f.load(f.add(f.const_i(kQueue), tail));
    f.store(f.const_i(kTailAddr), f.add(tail, one));
    f.unlock(m0);
    // Compute outside the lock, then loop for more work.
    const Reg digest = f.call(chew.func_id(), {payload});
    f.emit(Instr::make_binary(Opcode::kAdd, acc, acc, digest));
    f.br(loop);

    f.set_insert_point(done);
    f.unlock(m0);
    f.store(f.add(f.const_i(kResultBase), tid), acc);
    f.ret();
  }

  w.main_func = build_spmd_main(w.module, f.func_id(), threads);
  verify_module_or_throw(w.module);
  return w;
}

}  // namespace detlock::workloads
