// Measurement harness: builds, instruments, runs, and times a workload
// under one of the paper's execution configurations.
//
// The three Table I bands map to modes:
//   kBaseline   -- no instrumentation, plain locks ("Original Exec Time")
//   kClocksOnly -- clock updates inserted, plain locks ("After Inserting
//                  Clocks"): measures pure clock-update overhead
//   kDetLock    -- clock updates + Kendo turn protocol ("... and Performing
//                  Deterministic Execution")
// and Table II adds:
//   kKendoSim   -- deterministic execution with chunk-published clocks and
//                  end-of-block updates: the Kendo-style runtime that can
//                  neither publish eagerly nor count ahead of time.
//
// Since the api::RunConfig consolidation, the mode enum and every knob live
// in api/run_config.hpp; MeasureOptions is RunConfig plus the one
// harness-only knob (repetitions), with measurement-friendly defaults.
// measure() compiles the workload ONCE (service::CompiledModule) and runs
// each repetition on a fresh service::ExecutionContext, so repeated timing
// no longer re-instruments and re-decodes per repetition.
#pragma once

#include <cstdint>

#include "api/run_config.hpp"
#include "interp/engine.hpp"
#include "pass/pipeline.hpp"
#include "runtime/profile.hpp"
#include "workloads/workloads.hpp"

namespace detlock::workloads {

using Mode = api::Mode;
using api::mode_name;

struct Measurement {
  double seconds = 0.0;
  interp::RunResult run;
  pass::PipelineStats pass_stats;
  double locks_per_sec = 0.0;
  std::int64_t checksum = 0;
  /// Wait-time attribution of the reported run (only populated when
  /// MeasureOptions::profile is set; empty otherwise).
  runtime::ProfileSummary profile;
};

/// api::RunConfig with measurement defaults: kBaseline, no pass options, no
/// trace hashing (timing runs want zero per-acquire overhead).  Chaos reps
/// run under FaultPlan::timing_chaos(chaos_seed + rep).
struct MeasureOptions : api::RunConfig {
  MeasureOptions() {
    mode = Mode::kBaseline;
    pass_options = pass::PassOptions::none();
    record_trace = false;
  }
  /// Repetitions; the fastest run is reported (standard practice for
  /// wall-clock microcomparison on a shared machine).
  int repetitions = 3;
};

/// Builds a fresh workload instance from `spec`, applies the configuration,
/// runs it `repetitions` times and reports the fastest.
Measurement measure(const WorkloadSpec& spec, const WorkloadParams& params, const MeasureOptions& options);

}  // namespace detlock::workloads
