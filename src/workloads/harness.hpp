// Measurement harness: builds, instruments, runs, and times a workload
// under one of the paper's execution configurations.
//
// The three Table I bands map to modes:
//   kBaseline   -- no instrumentation, plain locks ("Original Exec Time")
//   kClocksOnly -- clock updates inserted, plain locks ("After Inserting
//                  Clocks"): measures pure clock-update overhead
//   kDetLock    -- clock updates + Kendo turn protocol ("... and Performing
//                  Deterministic Execution")
// and Table II adds:
//   kKendoSim   -- deterministic execution with chunk-published clocks and
//                  end-of-block updates: the Kendo-style runtime that can
//                  neither publish eagerly nor count ahead of time.
#pragma once

#include <cstdint>

#include "interp/engine.hpp"
#include "pass/pipeline.hpp"
#include "runtime/profile.hpp"
#include "workloads/workloads.hpp"

namespace detlock::workloads {

enum class Mode { kBaseline, kClocksOnly, kDetLock, kKendoSim };

const char* mode_name(Mode mode);

struct Measurement {
  double seconds = 0.0;
  interp::RunResult run;
  pass::PipelineStats pass_stats;
  double locks_per_sec = 0.0;
  std::int64_t checksum = 0;
  /// Wait-time attribution of the reported run (only populated when
  /// MeasureOptions::profile is set; empty otherwise).
  runtime::ProfileSummary profile;
};

struct MeasureOptions {
  Mode mode = Mode::kBaseline;
  /// Execution engine (interp/engine.hpp); the decoded engine is the
  /// default everywhere, the reference engine is the differential baseline.
  interp::EngineKind engine = interp::EngineKind::kDecoded;
  pass::PassOptions pass_options;  // ignored for kBaseline
  /// Chunk size for kKendoSim's simulated performance counter.
  std::uint64_t kendo_chunk_size = 2048;
  /// Repetitions; the fastest run is reported (standard practice for
  /// wall-clock microcomparison on a shared machine).
  int repetitions = 3;
  /// Keep the trace hash (adds a global mutex on every acquire; leave off
  /// for timing runs, on for determinism checks).
  bool record_trace = false;
  /// Attribute wait time per category/mutex (runtime/profile.hpp).  Adds
  /// two monotonic-clock reads per blocking call; leave off for pure
  /// timing runs, on for the wait-breakdown bands.
  bool profile = false;
  /// Adversarial timing perturbation (runtime/faultinject.hpp): each
  /// repetition runs under FaultPlan::timing_chaos(chaos_seed + rep).  Used
  /// with record_trace to verify determinism under chaos; meaningless for
  /// timing comparisons (the injected sleeps skew wall time).
  bool chaos = false;
  std::uint64_t chaos_seed = 1;
  /// Stall watchdog window (RuntimeConfig::watchdog_ms); 0 disables.
  std::uint64_t watchdog_ms = 0;
};

/// Builds a fresh workload instance from `spec`, applies the configuration,
/// runs it `repetitions` times and reports the fastest.
Measurement measure(const WorkloadSpec& spec, const WorkloadParams& params, const MeasureOptions& options);

}  // namespace detlock::workloads
