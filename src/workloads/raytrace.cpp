// Raytrace analog: dynamic ray distribution through one queue lock.
//
// Workers pop ray indices from a shared counter (mutex 0) and shade each
// ray against a fixed set of spheres.  Per-ray work runs ~1-2k instructions
// -- matching Raytrace's medium lock rate (227k locks/sec, Table I) -- and
// is built from exactly the material the DetLock optimizations target:
// a single-block leaf (@dot3, Function Clocking fodder) and an unrolled
// sphere loop full of hit/miss diamonds (Opt2/Opt3 fodder).
//
// Memory map (words):
//   1                  next-ray counter (mutex 0)
//   kResultBase + t    per-thread checksums
//   kSpheres           sphere table: 4 f64 words per sphere (cx, cy, cz, r)
//   kFrame             per-ray output (disjoint writes)
#include "workloads/workloads.hpp"

#include "interp/externs.hpp"
#include "ir/verifier.hpp"

namespace detlock::workloads {

namespace {
constexpr std::int64_t kQueueAddr = 1;
constexpr std::int64_t kSpheres = 512;
constexpr std::int64_t kFrame = 4096;
constexpr std::uint32_t kNumSpheres = 14;
}  // namespace

Workload make_raytrace(const WorkloadParams& params) {
  using namespace ir;
  Workload w;
  w.name = "raytrace";
  interp::declare_standard_externs(w.module);

  const std::uint32_t threads = params.threads;
  const std::int64_t rays = 700 * static_cast<std::int64_t>(params.scale);
  w.memory_words = static_cast<std::size_t>(kFrame + rays + 64);

  // @dot3(ax, ay, az, bx, by, bz): one-block leaf returning the f64 dot
  // product (args/result are f64 bit patterns).
  FunctionBuilder dot(w.module, "dot3", 6);
  {
    const Reg x = dot.fmul(dot.param(0), dot.param(3));
    const Reg y = dot.fmul(dot.param(1), dot.param(4));
    const Reg z = dot.fmul(dot.param(2), dot.param(5));
    dot.ret(dot.fadd(dot.fadd(x, y), z));
  }

  // @shade(idx): intersect ray `idx` against every sphere, return the
  // closest hit distance scaled to an integer (0 when everything missed).
  FunctionBuilder shade(w.module, "shade", 1);
  {
    const Reg idx = shade.param(0);
    // Ray direction derived from the index (deterministic pseudo-camera).
    const Reg fi = shade.itof(idx);
    const Reg dx = shade.fadd(shade.fmul(fi, shade.const_f(0.001)), shade.const_f(0.1));
    const Reg dy = shade.fadd(shade.fmul(fi, shade.const_f(0.0007)), shade.const_f(0.2));
    const Reg dz = shade.const_f(1.0);

    const Reg best = shade.new_reg();
    shade.emit([&] {
      Instr c;
      c.op = Opcode::kConstF;
      c.dst = best;
      c.fimm = 1e30;
      return c;
    }());

    for (std::uint32_t s = 0; s < kNumSpheres; ++s) {
      const std::int64_t sphere_addr = kSpheres + 4 * static_cast<std::int64_t>(s);
      const Reg base = shade.const_i(sphere_addr);
      const Reg cx = shade.loadf(base, 0);
      const Reg cy = shade.loadf(base, 1);
      const Reg cz = shade.loadf(base, 2);
      const Reg radius = shade.loadf(base, 3);
      // b = dot(dir, center); c = dot(center, center) - r^2;
      // disc = b*b - c  (unit-ish geometry, origin at 0).
      const Reg b = shade.call(dot.func_id(), {dx, dy, dz, cx, cy, cz});
      const Reg cc = shade.call(dot.func_id(), {cx, cy, cz, cx, cy, cz});
      const Reg dd = shade.call(dot.func_id(), {dx, dy, dz, dx, dy, dz});
      // Full quadratic with direction normalization folded in (keeps the
      // block large and straight-line, like real intersection code).
      const Reg b_norm = shade.fdiv(b, shade.fsqrt(dd));
      const Reg c = shade.fsub(cc, shade.fmul(radius, radius));
      const Reg c_att = shade.fadd(c, shade.fmul(shade.const_f(1e-6), cc));
      const Reg disc = shade.fsub(shade.fmul(b_norm, b_norm), c_att);

      const BlockId hit = shade.make_block("hit" + std::to_string(s));
      const BlockId closer = shade.make_block("closer" + std::to_string(s));
      const BlockId next = shade.make_block("next" + std::to_string(s));
      shade.condbr(shade.fcmp(CmpPred::kGt, disc, shade.const_f(0.0)), hit, next);

      shade.set_insert_point(hit);
      const Reg root = shade.fsqrt(disc);
      const Reg t_raw = shade.fsub(b_norm, root);
      // Cheap Phong-ish attenuation to fatten the hit path.
      const Reg atten = shade.fdiv(shade.const_f(1.0), shade.fadd(shade.const_f(1.0), shade.fmul(t_raw, t_raw)));
      const Reg t = shade.fmul(t_raw, shade.fadd(shade.const_f(0.75), shade.fmul(atten, shade.const_f(0.25))));
      shade.condbr(shade.fcmp(CmpPred::kLt, t, best), closer, next);

      shade.set_insert_point(closer);
      shade.emit([&] {
        Instr m;
        m.op = Opcode::kMov;
        m.dst = best;
        m.a = t;
        return m;
      }());
      shade.br(next);

      shade.set_insert_point(next);
    }
    // Map "no hit" to 0 and hits to a scaled integer.
    const BlockId miss = shade.make_block("miss");
    const BlockId done_hit = shade.make_block("done_hit");
    shade.condbr(shade.fcmp(CmpPred::kGt, best, shade.const_f(1e29)), miss, done_hit);
    shade.set_insert_point(miss);
    const Reg z0 = shade.const_i(0);
    shade.ret(z0);
    shade.set_insert_point(done_hit);
    shade.ret(shade.ftoi(shade.fmul(best, shade.const_f(256.0))));
  }

  // @raytrace_worker(tid).
  FunctionBuilder f(w.module, "raytrace_worker", 1);
  const Reg tid = f.param(0);
  const Reg bar_id = f.const_i(0);
  const Reg nthreads = f.const_i(threads);
  const Reg m0 = f.const_i(0);

  // Thread 0 builds the sphere table; everyone then synchronizes.
  {
    const BlockId init = f.make_block("init");
    const BlockId ready = f.make_block("ready");
    f.condbr(f.icmp(CmpPred::kEq, tid, f.const_i(0)), init, ready);
    f.set_insert_point(init);
    for (std::uint32_t s = 0; s < kNumSpheres; ++s) {
      const std::int64_t addr = kSpheres + 4 * static_cast<std::int64_t>(s);
      const Reg base = f.const_i(addr);
      f.storef(base, f.const_f(0.3 + 0.15 * s), 0);
      f.storef(base, f.const_f(-0.2 + 0.09 * s), 1);
      f.storef(base, f.const_f(2.0 + 0.5 * s), 2);
      f.storef(base, f.const_f(0.4 + 0.05 * (s % 3)), 3);
    }
    f.store(f.const_i(kQueueAddr), f.const_i(0));
    f.br(ready);
    f.set_insert_point(ready);
  }
  f.barrier(bar_id, nthreads);

  // Pop-and-shade loop.
  const Reg acc = f.new_reg();
  f.emit(Instr::make_const(acc, 0));
  const BlockId loop = f.make_block("loop");
  const BlockId work = f.make_block("work");
  const BlockId done = f.make_block("done");
  f.br(loop);
  f.set_insert_point(loop);
  f.lock(m0);
  const Reg qaddr = f.const_i(kQueueAddr);
  const Reg idx = f.load(qaddr);
  f.store(qaddr, f.add(idx, f.const_i(1)));
  f.unlock(m0);
  f.condbr(f.icmp(CmpPred::kLt, idx, f.const_i(rays)), work, done);

  f.set_insert_point(work);
  const Reg color = f.call(shade.func_id(), {idx});
  f.store(f.add(f.const_i(kFrame), idx), color);
  f.emit(Instr::make_binary(Opcode::kAdd, acc, acc, color));
  f.br(loop);

  f.set_insert_point(done);
  f.store(f.add(f.const_i(kResultBase), tid), acc);
  f.ret();

  w.main_func = build_spmd_main(w.module, f.func_id(), threads);
  verify_module_or_throw(w.module);
  return w;
}

}  // namespace detlock::workloads
