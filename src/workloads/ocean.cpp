// Ocean analog: barrier-dominated strip relaxation.
//
// T threads own contiguous strips of a 1-D grid; every timestep each thread
// rewrites its strip from the previous step's values (double-buffered, so
// cross-strip neighbor reads are separated from their writes by the
// per-step barrier) and every 8th step folds a progress marker into a
// locked global -- giving the near-zero lock rate of the real Ocean (343
// locks/sec in Table I) with large straight-line floating-point blocks.
//
// Memory map (words):
//   0                  locked progress counter (mutex 0)
//   kResultBase + t    per-thread checksum slots
//   kGridA / kGridB    double-buffered f64 grids (threads * width cells)
#include "workloads/workloads.hpp"

#include "interp/externs.hpp"
#include "ir/verifier.hpp"

namespace detlock::workloads {

namespace {
constexpr std::int64_t kGridA = 1024;
constexpr std::uint32_t kWidth = 384;  // cells per thread strip
}  // namespace

Workload make_ocean(const WorkloadParams& params) {
  using namespace ir;
  Workload w;
  w.name = "ocean";
  interp::declare_standard_externs(w.module);

  const std::uint32_t threads = params.threads;
  const std::int64_t total_cells = static_cast<std::int64_t>(threads) * kWidth;
  const std::int64_t grid_b = kGridA + total_cells;
  const std::uint32_t steps = 12 * params.scale;
  w.memory_words = static_cast<std::size_t>(grid_b + total_cells + 64);

  FunctionBuilder f(w.module, "ocean_worker", 1);
  const Reg tid = f.param(0);
  const Reg width = f.const_i(kWidth);
  const Reg lo = f.mul(tid, width);
  const Reg hi = f.add(lo, width);
  const Reg bar_id = f.const_i(0);
  const Reg nthreads = f.const_i(threads);

  // Initialize own strip of grid A: a[i] = (i % 17) as f64; grid B zeroed.
  {
    const Reg seventeen = f.const_i(17);
    const Reg base_a = f.const_i(kGridA);
    const Reg base_b = f.const_i(grid_b);
    const Reg zero_f = f.const_f(0.0);
    const Reg i = f.new_reg();
    f.emit(Instr::make_const(i, 0));
    f.emit(Instr::make_binary(Opcode::kAdd, i, lo, i));  // i = lo
    const BlockId init_cond = f.make_block("init.cond");
    const BlockId init_body = f.make_block("init.body");
    const BlockId init_done = f.make_block("init.done");
    f.br(init_cond);
    f.set_insert_point(init_cond);
    f.condbr(f.icmp(CmpPred::kLt, i, hi), init_body, init_done);
    f.set_insert_point(init_body);
    const Reg v = f.itof(f.rem(i, seventeen));
    f.storef(f.add(base_a, i), v);
    f.storef(f.add(base_b, i), zero_f);
    const Reg one = f.const_i(1);
    f.emit(Instr::make_binary(Opcode::kAdd, i, i, one));
    f.br(init_cond);
    f.set_insert_point(init_done);
  }
  f.barrier(bar_id, nthreads);

  // Timestep loop.
  const Reg steps_reg = f.const_i(steps);
  emit_counted_loop(f, 0, steps_reg, "step", [&](Reg step) {
    // Double-buffer select: even steps read A write B, odd steps the
    // reverse.
    const Reg two = f.const_i(2);
    const Reg parity = f.rem(step, two);
    const Reg src = f.new_reg();
    const Reg dst = f.new_reg();
    const BlockId even = f.make_block("step.even");
    const BlockId odd = f.make_block("step.odd");
    const BlockId go = f.make_block("step.go");
    f.condbr(parity, odd, even);
    f.set_insert_point(even);
    f.emit(Instr::make_const(src, kGridA));
    f.emit(Instr::make_const(dst, grid_b));
    f.br(go);
    f.set_insert_point(odd);
    f.emit(Instr::make_const(src, grid_b));
    f.emit(Instr::make_const(dst, kGridA));
    f.br(go);
    f.set_insert_point(go);

    // Relax interior cells of the strip (global boundary cells are frozen:
    // skip index 0 and total-1 via clamped bounds).
    const Reg one = f.const_i(1);
    const Reg glo = f.call_extern(w.module.find_extern("imax"), {lo, one});
    const Reg lim = f.const_i(total_cells - 1);
    const Reg ghi = f.call_extern(w.module.find_extern("imin"), {hi, lim});
    const Reg third = f.const_f(1.0 / 3.0);

    const Reg i = f.new_reg();
    f.emit(Instr::make_binary(Opcode::kAdd, i, glo, f.const_i(0)));
    const BlockId rc = f.make_block("relax.cond");
    const BlockId rb = f.make_block("relax.body");
    const BlockId rd = f.make_block("relax.done");
    f.br(rc);
    f.set_insert_point(rc);
    const Reg ghi3 = f.sub(ghi, f.const_i(3));
    f.condbr(f.icmp(CmpPred::kLt, i, ghi3), rb, rd);
    f.set_insert_point(rb);
    {
      // 4x unrolled stencil: one large straight-line block per 4 cells, so
      // clock updates are rare relative to real work (the paper's Ocean
      // shows only 1% clock overhead).
      for (int u = 0; u < 4; ++u) {
        const Reg addr = f.add(src, i);
        const Reg left = f.loadf(addr, u - 1);
        const Reg mid = f.loadf(addr, u);
        const Reg right = f.loadf(addr, u + 1);
        const Reg sum = f.fadd(f.fadd(left, mid), right);
        const Reg nv = f.fmul(sum, third);
        f.storef(f.add(dst, i), nv, u);
      }
      const Reg four = f.const_i(4);
      f.emit(Instr::make_binary(Opcode::kAdd, i, i, four));
    }
    f.br(rc);
    f.set_insert_point(rd);

    // Rare lock: every 8th step bump the global progress counter.
    const Reg eight = f.const_i(8);
    const Reg is_eighth = f.icmp(CmpPred::kEq, f.rem(step, eight), f.const_i(0));
    const BlockId do_lock = f.make_block("prog.lock");
    const BlockId after = f.make_block("prog.after");
    f.condbr(is_eighth, do_lock, after);
    f.set_insert_point(do_lock);
    const Reg m0 = f.const_i(0);
    f.lock(m0);
    const Reg addr0 = f.const_i(0);
    f.store(addr0, f.add(f.load(addr0), one));
    f.unlock(m0);
    f.br(after);
    f.set_insert_point(after);

    f.barrier(bar_id, nthreads);
  });

  // Checksum own strip (from grid A -- both buffers are deterministic).
  {
    const Reg base_a = f.const_i(kGridA);
    Reg acc = f.const_i(0);
    const Reg acc_reg = f.new_reg();
    f.emit(Instr::make_binary(Opcode::kAdd, acc_reg, acc, f.const_i(0)));
    const Reg i = f.new_reg();
    f.emit(Instr::make_binary(Opcode::kAdd, i, lo, f.const_i(0)));
    const BlockId cc = f.make_block("ck.cond");
    const BlockId cb = f.make_block("ck.body");
    const BlockId cd = f.make_block("ck.done");
    f.br(cc);
    f.set_insert_point(cc);
    f.condbr(f.icmp(CmpPred::kLt, i, hi), cb, cd);
    f.set_insert_point(cb);
    const Reg cell = f.ftoi(f.fmul(f.loadf(f.add(base_a, i)), f.const_f(1000.0)));
    f.emit(Instr::make_binary(Opcode::kAdd, acc_reg, acc_reg, cell));
    f.emit(Instr::make_binary(Opcode::kAdd, i, i, f.const_i(1)));
    f.br(cc);
    f.set_insert_point(cd);
    f.store(f.add(f.const_i(kResultBase), tid), acc_reg);
  }
  f.ret();

  w.main_func = build_spmd_main(w.module, f.func_id(), threads);
  verify_module_or_throw(w.module);
  return w;
}

}  // namespace detlock::workloads
