// The five SPLASH-2-analog workloads (paper Sec. V evaluation set).
//
// Each generator emits an IR program whose *structure* matches the feature
// the paper uses to explain that benchmark's results:
//
//   ocean     -- barrier-dominated strip relaxation, large straight-line
//                compute blocks, a near-zero lock rate (343 locks/sec in
//                Table I): deterministic execution costs nothing.
//   raytrace  -- central ray queue under one lock, per-ray compute in
//                clockable leaf helpers + conditionals (227k locks/sec).
//   water_nsq -- pair-interaction loop that "frequently executes a loop
//                with a small body [whose] code contains an if statement"
//                (Sec. V-C): the worst case for clock-update overhead.
//   radiosity -- very fine-grained task queue (2.2M locks/sec) where the
//                per-task work sits in compute-intensive clockable leaf
//                functions: the case Function Clocking + ahead-of-time
//                updates win outright.
//   volrend   -- tile queue with early-termination sampling loops
//                (443k locks/sec, moderate everything).
//
// All programs are race-free by construction (disjoint writes, shared
// accumulators under locks, all-thread barriers); the race-detector test
// suite verifies this.
#pragma once

#include <functional>

#include "workloads/common.hpp"

namespace detlock::workloads {

/// water_nsq's fixed molecule count: the pair loop partitions rows evenly,
/// so the workload is only well-formed at thread counts dividing this
/// (bench/threads_sweep skips the others and says so in its table).
inline constexpr std::uint32_t kWaterMolecules = 96;

Workload make_ocean(const WorkloadParams& params);
/// Condvar demo workload (not in all_workloads(): the paper's Table I only
/// covers lock/barrier benchmarks; see taskfarm_cv.cpp).
Workload make_taskfarm_cv(const WorkloadParams& params);
Workload make_raytrace(const WorkloadParams& params);
Workload make_water_nsq(const WorkloadParams& params);
Workload make_radiosity(const WorkloadParams& params);
Workload make_volrend(const WorkloadParams& params);

struct WorkloadSpec {
  const char* name;
  Workload (*factory)(const WorkloadParams&);
};

/// All five, in the paper's Table I column order.
const std::vector<WorkloadSpec>& all_workloads();

}  // namespace detlock::workloads
