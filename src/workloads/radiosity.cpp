// Radiosity analog: extreme lock rate + hot clockable leaf functions.
//
// Table I reports Radiosity at 2.2M locks/sec -- an order of magnitude
// above every other benchmark -- and 39 clockable functions; Sec. V-B
// explains that Function Clocking's ahead-of-time updates are what let
// DetLock beat Kendo here.  This analog reproduces both features: a task
// queue popped under mutex 0 every ~150 instructions, per-task work done in
// leaf functions whose all-path costs are nearly equal (so Opt1 clocks
// them; @intersection_type is shaped after the paper's Fig. 3 example from
// the real Radiosity), and a result fold under a second mutex.
//
// Memory map (words):
//   2                  next-task counter (mutex 0)
//   3                  global energy accumulator (mutex 1)
//   kResultBase + t    per-thread checksums
#include "workloads/workloads.hpp"

#include "interp/externs.hpp"
#include "ir/verifier.hpp"

namespace detlock::workloads {

namespace {
constexpr std::int64_t kTaskAddr = 2;
constexpr std::int64_t kEnergyAddr = 3;
}  // namespace

Workload make_radiosity(const WorkloadParams& params) {
  using namespace ir;
  Workload w;
  w.name = "radiosity";
  interp::declare_standard_externs(w.module);

  const std::uint32_t threads = params.threads;
  const std::int64_t tasks = 1500 * static_cast<std::int64_t>(params.scale);
  w.memory_words = 1 << 14;

  // @patch_value(p): single-block compute leaf.
  FunctionBuilder patch(w.module, "patch_value", 1);
  {
    Reg v = patch.param(0);
    for (int k = 0; k < 5; ++k) {
      v = patch.add(patch.mul(v, patch.const_i(1103515245 & 0xffff)), patch.const_i(12345));
      v = patch.binary(Opcode::kXor, v, patch.binary(Opcode::kShr, v, patch.const_i(7)));
    }
    patch.ret(v);
  }

  // @intersection_type(p, q): multi-block leaf shaped after the paper's
  // Fig. 3 example -- a chain of small if/else diamonds whose sides cost
  // nearly the same, so every path total passes the clockability criteria.
  // Unoptimized, each tiny block carries its own update (the 41% clock
  // band of the real Radiosity); Opt1 collapses all of them into the call
  // sites.
  FunctionBuilder isect(w.module, "intersection_type", 2);
  {
    const Reg p = isect.param(0);
    const Reg q = isect.param(1);
    const Reg out = isect.new_reg();
    const Reg t1 = isect.mul(p, isect.const_i(31));
    const Reg t2 = isect.add(t1, q);
    isect.emit(Instr::make_binary(Opcode::kXor, out, t1, t2));
    for (int d = 0; d < 7; ++d) {
      const Reg c = isect.icmp(CmpPred::kLt, isect.rem(out, isect.const_i(5 + d)), isect.const_i(2 + d));
      const BlockId then_b = isect.make_block("if.then" + std::to_string(d));
      const BlockId else_b = isect.make_block("if.else" + std::to_string(d));
      const BlockId merge_b = isect.make_block("merge" + std::to_string(d));
      isect.condbr(c, then_b, else_b);
      // Slightly unbalanced arms (the then side is one instruction longer):
      // path totals spread by up to one instruction per diamond, so the
      // function is clockable under the paper's criteria (range ~7 <<
      // mean/2.5) but NOT under a 10x-strict variant -- which is what the
      // ablation bench demonstrates.
      isect.set_insert_point(then_b);
      isect.emit(Instr::make_binary(Opcode::kAdd, out, out, t1));
      isect.emit(Instr::make_binary(Opcode::kMul, out, out, t2));
      isect.br(merge_b);
      isect.set_insert_point(else_b);
      isect.emit(Instr::make_binary(Opcode::kXor, out, out, t1));
      isect.br(merge_b);
      isect.set_insert_point(merge_b);
      isect.emit(Instr::make_binary(Opcode::kAnd, out, out, isect.const_i(0xffffff)));
    }
    isect.ret(isect.binary(Opcode::kAnd, out, isect.const_i(0xffff)));
  }

  // @radiosity_worker(tid).
  FunctionBuilder f(w.module, "radiosity_worker", 1);
  const Reg tid = f.param(0);
  const Reg bar_id = f.const_i(0);
  const Reg nthreads = f.const_i(threads);
  const Reg m_queue = f.const_i(0);
  const Reg m_energy = f.const_i(1);

  {
    const BlockId init = f.make_block("init");
    const BlockId ready = f.make_block("ready");
    f.condbr(f.icmp(CmpPred::kEq, tid, f.const_i(0)), init, ready);
    f.set_insert_point(init);
    f.store(f.const_i(kTaskAddr), f.const_i(0));
    f.store(f.const_i(kEnergyAddr), f.const_i(0));
    f.br(ready);
    f.set_insert_point(ready);
  }
  f.barrier(bar_id, nthreads);

  const Reg acc = f.new_reg();
  f.emit(Instr::make_const(acc, 0));
  const BlockId loop = f.make_block("loop");
  const BlockId work = f.make_block("work");
  const BlockId done = f.make_block("done");
  f.br(loop);
  f.set_insert_point(loop);
  // Fine-grained task pop: the 2.2M locks/sec regime.
  f.lock(m_queue);
  const Reg qaddr = f.const_i(kTaskAddr);
  const Reg task = f.load(qaddr);
  f.store(qaddr, f.add(task, f.const_i(1)));
  f.unlock(m_queue);
  f.condbr(f.icmp(CmpPred::kLt, task, f.const_i(tasks)), work, done);

  f.set_insert_point(work);
  // Contributions depend only on the task, never on which worker executes
  // it, so the global energy total is schedule-invariant (like the real
  // benchmark's image) even under nondeterministic scheduling.
  const Reg seed = f.add(f.mul(task, f.const_i(3)), f.const_i(1));
  const Reg a1 = f.call(isect.func_id(), {task, seed});
  const Reg a2 = f.call(isect.func_id(), {a1, task});
  const Reg a3 = f.call(isect.func_id(), {a2, a1});
  const Reg b1 = f.call(patch.func_id(), {a3});
  const Reg b2 = f.call(patch.func_id(), {b1});
  const Reg contribution = f.binary(Opcode::kAnd, f.add(a3, b2), f.const_i(0xfff));
  // Second lock per task: fold into the global energy total.
  f.lock(m_energy);
  const Reg eaddr = f.const_i(kEnergyAddr);
  f.store(eaddr, f.add(f.load(eaddr), contribution));
  f.unlock(m_energy);
  f.emit(Instr::make_binary(Opcode::kAdd, acc, acc, contribution));
  f.br(loop);

  f.set_insert_point(done);
  f.store(f.add(f.const_i(kResultBase), tid), acc);
  f.ret();

  w.main_func = build_spmd_main(w.module, f.func_id(), threads);
  verify_module_or_throw(w.module);
  return w;
}

}  // namespace detlock::workloads
