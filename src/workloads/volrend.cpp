// Volrend analog: tile queue + early-terminating sampling loops.
//
// Workers pop image tiles from a queue (mutex 0) and cast one ray per tile
// through a synthetic volume, accumulating opacity with the classic
// early-ray-termination break -- so per-tile work varies, conditionals are
// everywhere, and the lock rate sits between Raytrace and Radiosity
// (443k locks/sec in Table I).  A shared histogram under a second lock adds
// the moderate cross-thread write traffic of the real benchmark.
//
// Memory map (words):
//   4                  next-tile counter (mutex 0)
//   16..31             shared 16-bin histogram (mutex 1)
//   kResultBase + t    per-thread checksums
//   kVolume            f64 density field (read-only after init)
#include "workloads/workloads.hpp"

#include "interp/externs.hpp"
#include "ir/verifier.hpp"

namespace detlock::workloads {

namespace {
constexpr std::int64_t kTileAddr = 4;
constexpr std::int64_t kHistogram = 16;
constexpr std::int64_t kVolume = 8192;
constexpr std::uint32_t kVolumeCells = 1024;
constexpr std::uint32_t kMaxSamples = 80;
}  // namespace

Workload make_volrend(const WorkloadParams& params) {
  using namespace ir;
  Workload w;
  w.name = "volrend";
  interp::declare_standard_externs(w.module);

  const std::uint32_t threads = params.threads;
  const std::int64_t tiles = 400 * static_cast<std::int64_t>(params.scale);
  w.memory_words = static_cast<std::size_t>(kVolume + kVolumeCells + 64);

  // @volrend_worker(tid).
  FunctionBuilder f(w.module, "volrend_worker", 1);
  const Reg tid = f.param(0);
  const Reg bar_id = f.const_i(0);
  const Reg nthreads = f.const_i(threads);
  const Reg m_queue = f.const_i(0);
  const Reg m_hist = f.const_i(1);

  // Thread 0 fills the density volume and clears shared state.
  {
    const BlockId init = f.make_block("init");
    const BlockId ready = f.make_block("ready");
    f.condbr(f.icmp(CmpPred::kEq, tid, f.const_i(0)), init, ready);
    f.set_insert_point(init);
    const Reg i = f.new_reg();
    f.emit(Instr::make_const(i, 0));
    const BlockId ic = f.make_block("init.cond");
    const BlockId ib = f.make_block("init.body");
    const BlockId id = f.make_block("init.done");
    f.br(ic);
    f.set_insert_point(ic);
    f.condbr(f.icmp(CmpPred::kLt, i, f.const_i(kVolumeCells)), ib, id);
    f.set_insert_point(ib);
    const Reg noise = f.rem(f.mul(i, f.const_i(2654435761LL & 0xffff)), f.const_i(97));
    f.storef(f.add(f.const_i(kVolume), i), f.fmul(f.itof(noise), f.const_f(0.0015)));
    f.emit(Instr::make_binary(Opcode::kAdd, i, i, f.const_i(1)));
    f.br(ic);
    f.set_insert_point(id);
    f.store(f.const_i(kTileAddr), f.const_i(0));
    for (int h = 0; h < 16; ++h) f.store(f.const_i(kHistogram + h), f.const_i(0));
    f.br(ready);
    f.set_insert_point(ready);
  }
  f.barrier(bar_id, nthreads);

  const Reg acc = f.new_reg();
  f.emit(Instr::make_const(acc, 0));
  const BlockId loop = f.make_block("loop");
  const BlockId work = f.make_block("work");
  const BlockId done = f.make_block("done");
  f.br(loop);
  f.set_insert_point(loop);
  f.lock(m_queue);
  const Reg qaddr = f.const_i(kTileAddr);
  const Reg tile = f.load(qaddr);
  f.store(qaddr, f.add(tile, f.const_i(1)));
  f.unlock(m_queue);
  f.condbr(f.icmp(CmpPred::kLt, tile, f.const_i(tiles)), work, done);

  f.set_insert_point(work);
  {
    // Ray march: accumulate opacity along kMaxSamples steps, breaking when
    // the accumulated opacity saturates (early ray termination).
    const Reg opacity = f.new_reg();
    f.emit([&] {
      Instr c;
      c.op = Opcode::kConstF;
      c.dst = opacity;
      c.fimm = 0.0;
      return c;
    }());
    const Reg s = f.new_reg();
    f.emit(Instr::make_const(s, 0));
    const BlockId mc = f.make_block("march.cond");
    const BlockId mb = f.make_block("march.body");
    const BlockId minc = f.make_block("march.inc");
    const BlockId md = f.make_block("march.done");
    f.br(mc);
    f.set_insert_point(mc);
    f.condbr(f.icmp(CmpPred::kLt, s, f.const_i(kMaxSamples)), mb, md);
    f.set_insert_point(mb);
    const Reg cell =
        f.rem(f.add(f.mul(tile, f.const_i(17)), f.mul(s, f.const_i(29))), f.const_i(kVolumeCells));
    const Reg density = f.loadf(f.add(f.const_i(kVolume), cell));
    const Reg transparency = f.fsub(f.const_f(1.0), opacity);
    // Tri-linear-flavored reconstruction: sample two neighbors and blend,
    // fattening the per-sample block like the real renderer's filtering.
    const Reg d1 = f.loadf(f.add(f.const_i(kVolume), f.rem(f.add(cell, f.const_i(1)), f.const_i(kVolumeCells))));
    const Reg d2 = f.loadf(f.add(f.const_i(kVolume), f.rem(f.add(cell, f.const_i(2)), f.const_i(kVolumeCells))));
    const Reg blended = f.fadd(f.fmul(density, f.const_f(0.5)),
                               f.fadd(f.fmul(d1, f.const_f(0.3)), f.fmul(d2, f.const_f(0.2))));
    const Reg delta = f.fmul(blended, transparency);
    f.emit(Instr::make_binary(Opcode::kFAdd, opacity, opacity, delta));
    // Early termination: if opacity > 0.94 stop sampling this ray.
    f.condbr(f.fcmp(CmpPred::kGt, opacity, f.const_f(0.94)), md, minc);
    f.set_insert_point(minc);
    f.emit(Instr::make_binary(Opcode::kAdd, s, s, f.const_i(1)));
    f.br(mc);
    f.set_insert_point(md);

    const Reg shade = f.ftoi(f.fmul(opacity, f.const_f(255.0)));
    // Histogram update under the second lock.
    f.lock(m_hist);
    const Reg bin = f.add(f.const_i(kHistogram), f.binary(Opcode::kAnd, shade, f.const_i(15)));
    f.store(bin, f.add(f.load(bin), f.const_i(1)));
    f.unlock(m_hist);
    f.emit(Instr::make_binary(Opcode::kAdd, acc, acc, shade));
  }
  f.br(loop);

  f.set_insert_point(done);
  f.store(f.add(f.const_i(kResultBase), tid), acc);
  f.ret();

  w.main_func = build_spmd_main(w.module, f.func_id(), threads);
  verify_module_or_throw(w.module);
  return w;
}

}  // namespace detlock::workloads
