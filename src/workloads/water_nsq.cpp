// Water-nsq analog: the clock-update worst case.
//
// The paper attributes Water-nsq's 43% no-opt clock overhead (Table I) to a
// "small for loop executed very frequently [whose] code contains an if
// statement" -- every iteration crosses two or three tiny basic blocks, so
// unoptimized DetLock pays a clock update per handful of real instructions.
// This analog is that loop: an n-squared pair interaction sweep with a
// cutoff test in the inner body, per-step force flushes through a small
// bank of locks (medium-low lock rate, 126k locks/sec in the paper), and a
// per-step barrier.
//
// Memory map (words):
//   kResultBase + t    per-thread checksums
//   kPositions         f64 molecule coordinates (1-D)
//   kForces            f64 shared force accumulators (lock bank protected)
//   heap               per-thread force staging buffers via dl_malloc
#include "workloads/workloads.hpp"

#include "interp/externs.hpp"
#include "ir/verifier.hpp"

namespace detlock::workloads {

namespace {
constexpr std::int64_t kNmolAddr = 5;  // molecule count global (loaded in loop headers)
constexpr std::int64_t kPositions = 2048;
constexpr std::int64_t kForces = 3072;
constexpr std::uint32_t kMolecules = kWaterMolecules;  // see workloads.hpp
constexpr std::uint32_t kLockBank = 8;   // force-bank mutexes 8..15
constexpr std::int64_t kBankMutexBase = 8;
}  // namespace

Workload make_water_nsq(const WorkloadParams& params) {
  using namespace ir;
  Workload w;
  w.name = "water_nsq";
  interp::declare_standard_externs(w.module);

  const std::uint32_t threads = params.threads;
  const std::uint32_t steps = 3 * params.scale;
  const std::uint32_t rows_per_thread = kMolecules / threads;
  w.memory_words = 1 << 16;

  FunctionBuilder f(w.module, "water_worker", 1);
  const Reg tid = f.param(0);
  const Reg bar_id = f.const_i(0);
  const Reg nthreads = f.const_i(threads);
  const Reg nmol = f.const_i(kMolecules);

  // Per-thread staging buffer for force contributions (heap allocated via
  // the deterministic allocator -- this also keeps dl_malloc on the hot
  // path the paper worries about).
  const Reg staging = f.call_extern(w.module.find_extern("dl_malloc"), {nmol});

  // Thread 0 initializes positions and shared forces.
  {
    const BlockId init = f.make_block("init");
    const BlockId ready = f.make_block("ready");
    f.condbr(f.icmp(CmpPred::kEq, tid, f.const_i(0)), init, ready);
    f.set_insert_point(init);
    f.store(f.const_i(kNmolAddr), nmol);
    const Reg i = f.new_reg();
    f.emit(Instr::make_const(i, 0));
    const BlockId ic = f.make_block("init.cond");
    const BlockId ib = f.make_block("init.body");
    f.br(ic);
    f.set_insert_point(ic);
    f.condbr(f.icmp(CmpPred::kLt, i, nmol), ib, ready);
    f.set_insert_point(ib);
    const Reg pos = f.fmul(f.itof(f.rem(f.mul(i, f.const_i(37)), f.const_i(101))), f.const_f(0.05));
    f.storef(f.add(f.const_i(kPositions), i), pos);
    f.storef(f.add(f.const_i(kForces), i), f.const_f(0.0));
    f.emit(Instr::make_binary(Opcode::kAdd, i, i, f.const_i(1)));
    f.br(ic);
    f.set_insert_point(ready);
  }
  f.barrier(bar_id, nthreads);

  const Reg row_lo = f.mul(tid, f.const_i(rows_per_thread));
  const Reg row_hi = f.add(row_lo, f.const_i(rows_per_thread));
  const Reg cutoff = f.const_f(1.5);

  const Reg steps_reg = f.const_i(steps);
  emit_counted_loop(f, 0, steps_reg, "step", [&](Reg step) {
    (void)step;
    // Zero the staging buffer.
    {
      const Reg j = f.new_reg();
      f.emit(Instr::make_const(j, 0));
      const BlockId zc = f.make_block("zero.cond");
      const BlockId zb = f.make_block("zero.body");
      const BlockId zd = f.make_block("zero.done");
      f.br(zc);
      f.set_insert_point(zc);
      f.condbr(f.icmp(CmpPred::kLt, j, nmol), zb, zd);
      f.set_insert_point(zb);
      f.storef(f.add(staging, j), f.const_f(0.0));
      f.emit(Instr::make_binary(Opcode::kAdd, j, j, f.const_i(1)));
      f.br(zc);
      f.set_insert_point(zd);
    }

    // THE hot loop: for own rows i, for all j != i:
    //   dx = x[i] - x[j]; if (dx*dx < cutoff) staging[j] += k/(dx*dx+eps)
    const Reg i = f.new_reg();
    f.emit(Instr::make_binary(Opcode::kAdd, i, row_lo, f.const_i(0)));
    const BlockId oc = f.make_block("outer.cond");
    const BlockId ob = f.make_block("outer.body");
    const BlockId od = f.make_block("outer.done");
    f.br(oc);
    f.set_insert_point(oc);
    f.condbr(f.icmp(CmpPred::kLt, i, row_hi), ob, od);
    f.set_insert_point(ob);
    const Reg xi = f.loadf(f.add(f.const_i(kPositions), i));
    {
      const Reg j = f.new_reg();
      const Reg one_inner = f.const_i(1);
      f.emit(Instr::make_const(j, 0));
      const BlockId jc = f.make_block("inner.cond");
      const BlockId jb = f.make_block("inner.body");
      const BlockId jnear = f.make_block("inner.near");
      const BlockId jnext = f.make_block("inner.next");
      const BlockId jd = f.make_block("inner.done");
      f.br(jc);
      f.set_insert_point(jc);
      // The bound lives in a global, reloaded each iteration (as compiled C
      // does for a non-register-allocated global): the loop header is
      // heavier than the latch, which is what lets Opt4 merge the latch's
      // clock into it (the paper's for.inc -> for.cond example).
      const Reg bound = f.load(f.const_i(kNmolAddr));
      f.condbr(f.icmp(CmpPred::kLt, j, bound), jb, jd);
      // Small body with an if: the paper's Water-nsq signature.
      f.set_insert_point(jb);
      const Reg xj = f.loadf(f.add(f.const_i(kPositions), j));
      const Reg dx = f.fsub(xi, xj);
      const Reg d2 = f.fmul(dx, dx);
      f.condbr(f.fcmp(CmpPred::kLt, d2, cutoff), jnear, jnext);
      f.set_insert_point(jnear);
      const Reg denom = f.fadd(d2, f.const_f(0.01));
      const Reg contrib = f.fdiv(f.const_f(0.125), denom);
      const Reg slot = f.add(staging, j);
      f.storef(slot, f.fadd(f.loadf(slot), contrib));
      f.br(jnext);
      f.set_insert_point(jnext);
      f.emit(Instr::make_binary(Opcode::kAdd, j, j, one_inner));
      f.br(jc);
      f.set_insert_point(jd);
    }
    f.emit(Instr::make_binary(Opcode::kAdd, i, i, f.const_i(1)));
    f.br(oc);
    f.set_insert_point(od);

    // Flush staging into the shared force array through the lock bank.
    for (std::uint32_t bank = 0; bank < kLockBank; ++bank) {
      const Reg mutex = f.const_i(kBankMutexBase + bank);
      f.lock(mutex);
      const Reg j = f.new_reg();
      f.emit(Instr::make_const(j, bank));
      const BlockId fc = f.make_block("flush.cond" + std::to_string(bank));
      const BlockId fb = f.make_block("flush.body" + std::to_string(bank));
      const BlockId fd = f.make_block("flush.done" + std::to_string(bank));
      f.br(fc);
      f.set_insert_point(fc);
      f.condbr(f.icmp(CmpPred::kLt, j, nmol), fb, fd);
      f.set_insert_point(fb);
      const Reg faddr = f.add(f.const_i(kForces), j);
      f.storef(faddr, f.fadd(f.loadf(faddr), f.loadf(f.add(staging, j))));
      f.emit(Instr::make_binary(Opcode::kAdd, j, j, f.const_i(kLockBank)));
      f.br(fc);
      f.set_insert_point(fd);
      f.unlock(mutex);
    }

    f.barrier(bar_id, nthreads);

    // Position update for own rows from the (now stable) shared forces,
    // then a barrier before the next step's force pass.
    const Reg k = f.new_reg();
    f.emit(Instr::make_binary(Opcode::kAdd, k, row_lo, f.const_i(0)));
    const BlockId uc = f.make_block("upd.cond");
    const BlockId ub = f.make_block("upd.body");
    const BlockId ud = f.make_block("upd.done");
    f.br(uc);
    f.set_insert_point(uc);
    f.condbr(f.icmp(CmpPred::kLt, k, row_hi), ub, ud);
    f.set_insert_point(ub);
    const Reg paddr = f.add(f.const_i(kPositions), k);
    const Reg force = f.loadf(f.add(f.const_i(kForces), k));
    f.storef(paddr, f.fadd(f.loadf(paddr), f.fmul(force, f.const_f(0.001))));
    f.emit(Instr::make_binary(Opcode::kAdd, k, k, f.const_i(1)));
    f.br(uc);
    f.set_insert_point(ud);
    f.barrier(bar_id, nthreads);
  });

  // Checksum own rows.
  {
    Reg dummy = f.const_i(0);
    const Reg acc = f.new_reg();
    f.emit(Instr::make_binary(Opcode::kAdd, acc, dummy, dummy));
    const Reg k = f.new_reg();
    f.emit(Instr::make_binary(Opcode::kAdd, k, row_lo, f.const_i(0)));
    const BlockId cc = f.make_block("ck.cond");
    const BlockId cb = f.make_block("ck.body");
    const BlockId cd = f.make_block("ck.done");
    f.br(cc);
    f.set_insert_point(cc);
    f.condbr(f.icmp(CmpPred::kLt, k, row_hi), cb, cd);
    f.set_insert_point(cb);
    const Reg v = f.ftoi(f.fmul(f.loadf(f.add(f.const_i(kPositions), k)), f.const_f(10000.0)));
    f.emit(Instr::make_binary(Opcode::kAdd, acc, acc, v));
    f.emit(Instr::make_binary(Opcode::kAdd, k, k, f.const_i(1)));
    f.br(cc);
    f.set_insert_point(cd);
    f.store(f.add(f.const_i(kResultBase), tid), acc);
  }
  f.call_extern(w.module.find_extern("dl_free"), {staging});
  f.ret();

  w.main_func = build_spmd_main(w.module, f.func_id(), threads);
  verify_module_or_throw(w.module);
  return w;
}

}  // namespace detlock::workloads
