#include "workloads/common.hpp"

#include "interp/externs.hpp"
#include "ir/verifier.hpp"

namespace detlock::workloads {

Workload make_counter_workload(std::uint32_t threads, std::uint32_t iters, std::uint32_t compute) {
  using namespace ir;
  Workload w;
  w.name = "counter";
  interp::declare_standard_externs(w.module);

  // @mix(a, b): single-block leaf -- a perfect Function Clocking candidate.
  FunctionBuilder mix(w.module, "mix", 2);
  {
    Reg acc = mix.add(mix.param(0), mix.param(1));
    for (std::uint32_t k = 0; k < compute; ++k) {
      acc = mix.mul(acc, mix.add(acc, mix.param(1)));
      acc = mix.binary(Opcode::kXor, acc, mix.param(0));
    }
    mix.ret(acc);
  }

  // @worker(tid): repeat `iters` times { lock 0; mem[0]++; unlock 0;
  // private compute with a call and an if/else (so every optimization has
  // applicable structure) }.
  FunctionBuilder worker(w.module, "worker", 1);
  {
    const Reg iters_reg = worker.const_i(iters);
    const Reg zero = worker.const_i(0);
    const Reg addr0 = worker.const_i(0);
    emit_counted_loop(worker, 0, iters_reg, "work", [&](Reg i) {
      worker.lock(zero);
      const Reg old = worker.load(addr0);
      const Reg one = worker.const_i(1);
      const Reg inc = worker.add(old, one);
      worker.store(addr0, inc);
      worker.unlock(zero);
      // Private compute: clockable call + a diamond.
      const Reg acc = worker.call(mix.func_id(), {i, worker.param(0)});
      const Reg two = worker.const_i(2);
      const Reg parity = worker.rem(i, two);
      const BlockId then_block = worker.make_block("work.even");
      const BlockId else_block = worker.make_block("work.odd");
      const BlockId merge = worker.make_block("work.merge");
      const Reg out = worker.new_reg();
      worker.condbr(parity, then_block, else_block);
      worker.set_insert_point(then_block);
      worker.emit(Instr::make_binary(Opcode::kAdd, out, acc, i));
      worker.br(merge);
      worker.set_insert_point(else_block);
      worker.emit(Instr::make_binary(Opcode::kSub, out, acc, i));
      worker.emit(Instr::make_binary(Opcode::kXor, out, out, acc));
      worker.br(merge);
      worker.set_insert_point(merge);
      // Per-thread result slot (8 + tid): no data race.
      worker.store(worker.add(worker.const_i(8), worker.param(0)), out);
    });
    worker.ret();
  }

  // @main(): SPLASH-2 harness shape -- main spawns threads-1 workers, runs
  // worker(0) itself (so barrier-style phases cover every live thread),
  // then joins the children.
  FunctionBuilder main_fn(w.module, "main", 0);
  {
    std::vector<Reg> handles;
    for (std::uint32_t t = 1; t < threads; ++t) {
      const Reg tid = main_fn.const_i(t);
      handles.push_back(main_fn.spawn(worker.func_id(), {tid}));
    }
    const Reg self_tid = main_fn.const_i(0);
    main_fn.call(worker.func_id(), {self_tid});
    for (const Reg h : handles) main_fn.join(h);
    const Reg result = main_fn.load(main_fn.const_i(0));
    main_fn.ret(result);
  }

  w.main_func = main_fn.func_id();
  verify_module_or_throw(w.module);
  return w;
}

ir::FuncId build_spmd_main(ir::Module& module, ir::FuncId worker_fn, std::uint32_t threads) {
  using namespace ir;
  DETLOCK_CHECK(threads >= 1, "need at least one thread");
  FunctionBuilder main_fn(module, "main", 0);
  std::vector<Reg> handles;
  for (std::uint32_t t = 1; t < threads; ++t) {
    const Reg tid = main_fn.const_i(t);
    handles.push_back(main_fn.spawn(worker_fn, {tid}));
  }
  const Reg self_tid = main_fn.const_i(0);
  main_fn.call(worker_fn, {self_tid});
  for (const Reg h : handles) main_fn.join(h);

  Reg sum = main_fn.const_i(0);
  for (std::uint32_t t = 0; t < threads; ++t) {
    const Reg slot = main_fn.load(main_fn.const_i(kResultBase + t));
    sum = main_fn.add(sum, slot);
  }
  main_fn.ret(sum);
  return main_fn.func_id();
}

}  // namespace detlock::workloads
