#include "fuzz/differ.hpp"

#include <cstdio>
#include <exception>
#include <memory>

#include "api/run_config.hpp"
#include "service/compiled_module.hpp"
#include "service/execution_context.hpp"

namespace detlock::fuzz {

namespace {

std::string hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Field-by-field full comparison (within one publication mode).
std::string diff_full(const ConfigFingerprint& a, const ConfigFingerprint& b) {
  std::string out;
  const auto mismatch = [&](const char* field, const std::string& va, const std::string& vb) {
    out += std::string(out.empty() ? "" : "; ") + field + " " + va + " vs " + vb;
  };
  if (a.result != b.result)
    mismatch("result", std::to_string(a.result), std::to_string(b.result));
  if (a.trace != b.trace) mismatch("lock-order", hex(a.trace), hex(b.trace));
  if (a.memory != b.memory) mismatch("memory", hex(a.memory), hex(b.memory));
  if (a.instructions != b.instructions)
    mismatch("instrs", std::to_string(a.instructions), std::to_string(b.instructions));
  if (a.clock_instrs != b.clock_instrs)
    mismatch("clock-instrs", std::to_string(a.clock_instrs), std::to_string(b.clock_instrs));
  if (a.threads != b.threads)
    mismatch("threads", std::to_string(a.threads), std::to_string(b.threads));
  if (a.per_thread_instructions != b.per_thread_instructions)
    mismatch("per-thread-instrs", "..", "..");
  if (!out.empty()) out = a.config + " vs " + b.config + ": " + out;
  return out;
}

}  // namespace

SeedReport check_text(std::string_view name, std::string_view ir_text,
                      const DiffOptions& options) {
  SeedReport report;
  report.program.ir_text = std::string(ir_text);

  struct EngineLeg {
    interp::EngineKind kind;
    const char* name;
  };
  constexpr EngineLeg kEngines[] = {
      {interp::EngineKind::kReference, "reference"},
      {interp::EngineKind::kDecoded, "decoded"},
      {interp::EngineKind::kJit, "jit"},
  };
  struct ModeLeg {
    api::Mode mode;
    const char* name;
  };
  const ModeLeg kModes[] = {
      {api::Mode::kDetLock, "detlock"},
      {api::Mode::kKendoSim, "kendo-sim"},
  };

  // Index (into report.fingerprints) of each publication mode's first
  // fingerprint: the within-mode comparison anchor.  There is deliberately
  // no cross-mode comparison: the two publication modes are two different
  // (each internally deterministic) schedules, and an order-sensitive
  // program may legitimately compute a different result under each --
  // weak determinism promises reproducibility per configuration, not
  // schedule-independence of the outcome.
  std::vector<int> anchor_index(2, -1);

  for (int mi = 0; mi < 2; ++mi) {
    const ModeLeg& mode = kModes[mi];
    for (const EngineLeg& engine : kEngines) {
      api::RunConfig config;
      config.mode = mode.mode;
      config.engine = engine.kind;
      config.kendo_chunk_size = options.kendo_chunk;
      config.record_trace = true;
      config.watchdog_ms = options.watchdog_ms;
      if (const auto msg = config.validate()) {
        report.failure = std::string(name) + ": invalid RunConfig: " + *msg;
        return report;
      }

      std::shared_ptr<const service::CompiledModule> compiled;
      try {
        compiled = service::CompiledModule::compile(ir_text, service::compile_options(config));
      } catch (const std::exception& e) {
        report.failure = std::string(name) + " [" + mode.name + "/" + engine.name +
                         "]: compile failed: " + e.what();
        return report;
      }

      // Chaos seed 0 = unperturbed; the rest are timing-perturbed trials.
      std::vector<std::uint64_t> chaos_legs = {0};
      chaos_legs.insert(chaos_legs.end(), options.chaos_seeds.begin(), options.chaos_seeds.end());
      for (const std::uint64_t chaos : chaos_legs) {
        for (int rep = 0; rep < (options.runs > 0 ? options.runs : 1); ++rep) {
          api::RunConfig run_config = config;
          run_config.chaos = chaos != 0;
          run_config.chaos_seed = chaos;
          service::ExecutionContext ctx(compiled, run_config);
          ConfigFingerprint fp;
          fp.config = std::string(mode.name) + "/" + engine.name +
                      (chaos != 0 ? "/chaos=" + std::to_string(chaos) : "") +
                      (rep > 0 ? "/rep=" + std::to_string(rep) : "");
          try {
            const interp::RunResult r = ctx.run("main");
            fp.result = r.main_return;
            fp.trace = r.trace_fingerprint;
            fp.memory = r.memory_fingerprint;
            fp.instructions = r.instructions;
            fp.clock_instrs = r.clock_update_instrs;
            fp.threads = r.threads;
            fp.per_thread_instructions = r.per_thread_instructions;
          } catch (const std::exception& e) {
            // A watchdog trip lands here too: generated programs are
            // deadlock-free by construction, so any stall is a finding.
            report.failure =
                std::string(name) + " [" + fp.config + "]: run failed: " + e.what();
            return report;
          }
          ++report.runs_executed;
          report.fingerprints.push_back(std::move(fp));
          const ConfigFingerprint& current = report.fingerprints.back();

          if (anchor_index[mi] < 0) {
            anchor_index[mi] = static_cast<int>(report.fingerprints.size()) - 1;
          } else {
            const std::string d = diff_full(report.fingerprints[anchor_index[mi]], current);
            if (!d.empty()) {
              report.failure = std::string(name) + ": " + d;
              return report;
            }
          }
        }
      }
    }
  }

  report.ok = true;
  return report;
}

SeedReport check_seed(std::uint64_t seed, const DiffOptions& options) {
  GeneratedProgram program = generate(seed);
  SeedReport report =
      check_text("seed " + std::to_string(seed), program.ir_text, options);
  report.seed = seed;
  report.program = std::move(program);
  if (!report.ok && !report.failure.empty()) {
    report.failure += "  (reproduce: detfuzz --seed=" + std::to_string(seed) + ")";
  }
  return report;
}

}  // namespace detlock::fuzz
