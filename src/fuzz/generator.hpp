// Seeded generator of random synchronization workloads (fuzz programs).
//
// generate(seed) deterministically expands a 64-bit seed into a complete,
// parse-and-verify-clean IR program exercising the whole synchronization
// surface: deterministic mutexes (including nested critical sections),
// phase barriers, every atomic opcode x ordering the verifier admits, and
// fences.  The differential checker (differ.hpp) then demands that every
// engine, publication mode, and chaos schedule agrees on the outcome, so
// one integer reproduces any failure end to end: the program IS the seed.
//
// Generated programs are correct by construction, because the checker must
// attribute every divergence to the system under test, never to the
// workload:
//
//   * deadlock-free: no condvars, no unbounded guest loops (spin loops are
//     never emitted; bounded loops have constant trip counts), nested locks
//     are always acquired in ascending mutex-id order, and barrier arrivals
//     are phase-aligned -- every thread (main included) passes the single
//     barrier exactly once per phase;
//   * race-free: plain shared cells are touched only inside the critical
//     section of the one mutex that owns them, per-thread scratch cells are
//     touched only by their owner (and by main after the joins), and
//     everything else is atomic -- so weak determinism covers the program
//     and fingerprints must be byte-identical;
//   * order-sensitive: critical sections apply non-commutative updates
//     (x := 3x + salt) and every atomic load/RMW result is recorded into a
//     scratch cell, so the memory fingerprint witnesses the exact global
//     synchronization order, not just commutative sums.
//
// Memory map (all below the default heap base):
//   50 + a            atomic cells (only ever touched by atomic ops)
//   100 + 2m, +1      cells guarded by mutex m
//   400 + 16w + s     scratch cells private to worker w (s < 16)
// Barrier id 0; mutex ids 0..mutexes-1.
#pragma once

#include <cstdint>
#include <string>

namespace detlock::fuzz {

/// One generated workload plus the shape parameters the seed expanded to
/// (surfaced in detfuzz -v and the generator tests).
struct GeneratedProgram {
  std::uint64_t seed = 0;
  std::string ir_text;
  int threads = 0;   // worker functions; main runs worker 0 inline
  int phases = 0;    // barrier-aligned phases per worker
  int mutexes = 0;
  int atomic_cells = 0;
  bool barriers = false;
  int actions = 0;   // total generated actions across all workers
};

GeneratedProgram generate(std::uint64_t seed);

}  // namespace detlock::fuzz
