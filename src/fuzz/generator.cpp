#include "fuzz/generator.hpp"

#include <array>
#include <vector>

#include "support/prng.hpp"

namespace detlock::fuzz {

namespace {

// Orderings the verifier admits per operation (ir/verifier.cpp): loads
// cannot release, stores cannot acquire, RMWs may do anything, fences must
// order something.
constexpr std::array<const char*, 3> kLoadOrders = {"relaxed", "acq", "seq_cst"};
constexpr std::array<const char*, 3> kStoreOrders = {"relaxed", "rel", "seq_cst"};
constexpr std::array<const char*, 5> kRmwOrders = {"relaxed", "acq", "rel", "acq_rel", "seq_cst"};
constexpr std::array<const char*, 4> kFenceOrders = {"acq", "rel", "acq_rel", "seq_cst"};

/// Emits one worker function.  Registers are never reused (monotone
/// counter), so the only SSA discipline the generator needs is "allocate,
/// then use"; `regs=` is patched in at the end.
class WorkerBuilder {
 public:
  WorkerBuilder(int worker, const GeneratedProgram& shape, Xoshiro256& rng)
      : worker_(worker), shape_(shape), rng_(rng) {}

  std::string build(int* actions_out) {
    append_line("block entry:");
    const int phase_actions_min = 2, phase_actions_max = 5;
    for (int phase = 0; phase < shape_.phases; ++phase) {
      const int actions =
          phase_actions_min +
          static_cast<int>(rng_.next_below(phase_actions_max - phase_actions_min + 1));
      for (int a = 0; a < actions; ++a) {
        emit_action(phase);
        ++actions_;
        // Occasional block break: exercises the clock-instrumentation and
        // block-split passes on sync-adjacent block boundaries.
        if (rng_.next_below(4) == 0) {
          const int b = next_block_++;
          append_line("  br a" + std::to_string(b));
          append_line("block a" + std::to_string(b) + ":");
        }
      }
      if (shape_.barriers) emit_barrier();
    }
    append_line("  ret");
    *actions_out = actions_;
    return "func @w" + std::to_string(worker_) + "(0) regs=" + std::to_string(next_reg_ + 2) +
           " {\n" + body_ + "}\n";
  }

 private:
  void append_line(const std::string& s) { body_ += s + "\n"; }

  int fresh() { return next_reg_++; }

  int emit_const(std::int64_t v) {
    const int r = fresh();
    append_line("  %" + std::to_string(r) + " = const " + std::to_string(v));
    return r;
  }

  /// Next private scratch cell (16 per worker, round-robin).
  std::int64_t scratch_addr() { return 400 + 16 * worker_ + (scratch_slot_++ % 16); }

  /// Stores register `r` into a fresh private scratch cell: the memory
  /// fingerprint then witnesses the recorded value.
  void record(int r) {
    const int addr = emit_const(scratch_addr());
    append_line("  store %" + std::to_string(addr) + ", %" + std::to_string(r));
  }

  std::int64_t atomic_cell() { return 50 + static_cast<std::int64_t>(rng_.next_below(shape_.atomic_cells)); }

  template <std::size_t N>
  const char* pick(const std::array<const char*, N>& options) {
    return options[rng_.next_below(N)];
  }

  /// Small distinguishing constant: different per worker/phase/step so
  /// non-commutative updates produce schedule-revealing values.
  std::int64_t salt(int phase) { return 1 + worker_ + 7 * phase + static_cast<std::int64_t>(rng_.next_below(5)); }

  void emit_action(int phase) {
    switch (rng_.next_below(12)) {
      case 0: case 1: case 2:
        emit_critical_section(phase);
        break;
      case 3: case 4:
        emit_atomic_load();
        break;
      case 5:
        emit_atomic_store(phase);
        break;
      case 6: case 7: case 8:
        emit_atomic_rmw(phase);
        break;
      case 9:
        append_line(std::string("  fence ") + pick(kFenceOrders));
        break;
      case 10:
        emit_compute(phase);
        break;
      default:
        emit_bounded_loop(phase);
        break;
    }
  }

  /// One non-commutative update of a mutex-guarded cell: x := 3x + salt.
  /// Must be called with mutex m held.
  void emit_guarded_update(int mutex, int phase) {
    const int addr = emit_const(100 + 2 * mutex + static_cast<std::int64_t>(rng_.next_below(2)));
    const int cur = fresh();
    append_line("  %" + std::to_string(cur) + " = load %" + std::to_string(addr));
    const int three = emit_const(3);
    const int scaled = fresh();
    append_line("  %" + std::to_string(scaled) + " = mul %" + std::to_string(cur) + ", %" +
                std::to_string(three));
    const int add = emit_const(salt(phase));
    const int next = fresh();
    append_line("  %" + std::to_string(next) + " = add %" + std::to_string(scaled) + ", %" +
                std::to_string(add));
    append_line("  store %" + std::to_string(addr) + ", %" + std::to_string(next));
  }

  /// Lock one mutex -- or a nested ascending pair, the classic deadlock-free
  /// discipline -- update the guarded cells, unlock in LIFO order.
  void emit_critical_section(int phase) {
    int first = static_cast<int>(rng_.next_below(shape_.mutexes));
    const bool nest = shape_.mutexes > 1 && rng_.next_below(3) == 0;
    int second = -1;
    if (nest) {
      if (first == shape_.mutexes - 1) first -= 1;
      second = first + 1 + static_cast<int>(rng_.next_below(shape_.mutexes - first - 1));
    }
    const int m1 = emit_const(first);
    append_line("  lock %" + std::to_string(m1));
    emit_guarded_update(first, phase);
    if (nest) {
      const int m2 = emit_const(second);
      append_line("  lock %" + std::to_string(m2));
      emit_guarded_update(second, phase);
      append_line("  unlock %" + std::to_string(m2));
    }
    append_line("  unlock %" + std::to_string(m1));
  }

  void emit_atomic_load() {
    const int addr = emit_const(atomic_cell());
    const int dst = fresh();
    append_line("  %" + std::to_string(dst) + " = atomload " + pick(kLoadOrders) + " %" +
                std::to_string(addr));
    record(dst);
  }

  void emit_atomic_store(int phase) {
    const int addr = emit_const(atomic_cell());
    const int val = emit_const(salt(phase));
    append_line("  atomstore " + std::string(pick(kStoreOrders)) + " %" + std::to_string(addr) +
                ", %" + std::to_string(val));
  }

  void emit_atomic_rmw(int phase) {
    const int addr = emit_const(atomic_cell());
    const int dst = fresh();
    const char* order = pick(kRmwOrders);
    switch (rng_.next_below(3)) {
      case 0: {
        const int operand = emit_const(salt(phase));
        append_line("  %" + std::to_string(dst) + " = atomrmw add " + order + " %" +
                    std::to_string(addr) + ", %" + std::to_string(operand));
        break;
      }
      case 1: {
        const int operand = emit_const(salt(phase));
        append_line("  %" + std::to_string(dst) + " = atomrmw xchg " + order + " %" +
                    std::to_string(addr) + ", %" + std::to_string(operand));
        break;
      }
      default: {
        // Bounded CAS, no retry loop: a failed attempt is itself a useful
        // schedule probe (acquire-only edge, recorded old value).  Small
        // expected values collide with stored salts often enough that both
        // outcomes appear across seeds.
        const int expected = emit_const(static_cast<std::int64_t>(rng_.next_below(6)));
        const int desired = emit_const(salt(phase));
        append_line("  %" + std::to_string(dst) + " = atomrmw cas " + order + " %" +
                    std::to_string(addr) + ", %" + std::to_string(expected) + ", %" +
                    std::to_string(desired));
        break;
      }
    }
    record(dst);
  }

  /// Private arithmetic chained through a scratch cell (x := 5x + salt):
  /// pure thread-local work between sync points.
  void emit_compute(int phase) {
    const int addr = emit_const(400 + 16 * worker_ + (scratch_slot_++ % 16));
    const int cur = fresh();
    append_line("  %" + std::to_string(cur) + " = load %" + std::to_string(addr));
    const int five = emit_const(5);
    const int scaled = fresh();
    append_line("  %" + std::to_string(scaled) + " = mul %" + std::to_string(cur) + ", %" +
                std::to_string(five));
    const int add = emit_const(salt(phase));
    const int next = fresh();
    append_line("  %" + std::to_string(next) + " = add %" + std::to_string(scaled) + ", %" +
                std::to_string(add));
    append_line("  store %" + std::to_string(addr) + ", %" + std::to_string(next));
  }

  /// Constant-trip-count loop (2..4 iterations) around an atomic fetch-add:
  /// exercises condbr/backedge decoding and repeated turn consumption
  /// without any possibility of spinning forever.
  void emit_bounded_loop(int phase) {
    const int id = next_block_++;
    const std::string head = "l" + std::to_string(id) + ".head";
    const std::string body = "l" + std::to_string(id) + ".body";
    const std::string done = "l" + std::to_string(id) + ".done";
    const int i = emit_const(0);
    const int n = emit_const(2 + static_cast<std::int64_t>(rng_.next_below(3)));
    const int one = emit_const(1);
    const int addr = emit_const(atomic_cell());
    const int operand = emit_const(salt(phase));
    append_line("  br " + head);
    append_line("block " + head + ":");
    const int cmp = fresh();
    append_line("  %" + std::to_string(cmp) + " = icmp lt %" + std::to_string(i) + ", %" +
                std::to_string(n));
    append_line("  condbr %" + std::to_string(cmp) + ", " + body + ", " + done);
    append_line("block " + body + ":");
    const int old = fresh();
    append_line("  %" + std::to_string(old) + " = atomrmw add " + pick(kRmwOrders) + " %" +
                std::to_string(addr) + ", %" + std::to_string(operand));
    record(old);
    append_line("  %" + std::to_string(i) + " = add %" + std::to_string(i) + ", %" +
                std::to_string(one));
    append_line("  br " + head);
    append_line("block " + done + ":");
  }

  void emit_barrier() {
    const int id = emit_const(0);
    const int participants = emit_const(shape_.threads);
    append_line("  barrier %" + std::to_string(id) + ", %" + std::to_string(participants));
  }

  int worker_;
  const GeneratedProgram& shape_;
  Xoshiro256& rng_;
  std::string body_;
  int next_reg_ = 0;
  int next_block_ = 0;
  int scratch_slot_ = 0;
  int actions_ = 0;
};

/// Main: spawn workers 1..T-1, run worker 0 inline (so the main thread
/// contends too, like the algo programs), join, then fold every shared cell
/// into the return value -- the result is a second, coarser fingerprint
/// that survives into exit-code-only harnesses.
std::string build_main(const GeneratedProgram& shape) {
  std::string body;
  int reg = 0;
  const auto emit = [&](const std::string& s) { body += s + "\n"; };
  const auto fresh = [&]() { return reg++; };
  const auto emit_const = [&](std::int64_t v) {
    const int r = fresh();
    emit("  %" + std::to_string(r) + " = const " + std::to_string(v));
    return r;
  };
  emit("block entry:");
  std::vector<int> handles;
  for (int w = 1; w < shape.threads; ++w) {
    const int h = fresh();
    emit("  %" + std::to_string(h) + " = spawn @w" + std::to_string(w) + "()");
    handles.push_back(h);
  }
  const int r0 = fresh();
  emit("  %" + std::to_string(r0) + " = call @w0()");
  for (const int h : handles) emit("  join %" + std::to_string(h));
  // Reduction: guarded cells + atomic cells (the scratch cells are covered
  // by the memory fingerprint; the result stays a compact digest).
  int acc = emit_const(0);
  for (int m = 0; m < shape.mutexes; ++m) {
    for (int k = 0; k < 2; ++k) {
      const int addr = emit_const(100 + 2 * m + k);
      const int val = fresh();
      emit("  %" + std::to_string(val) + " = load %" + std::to_string(addr));
      const int next = fresh();
      emit("  %" + std::to_string(next) + " = add %" + std::to_string(acc) + ", %" +
           std::to_string(val));
      acc = next;
    }
  }
  for (int a = 0; a < shape.atomic_cells; ++a) {
    const int addr = emit_const(50 + a);
    const int val = fresh();
    emit("  %" + std::to_string(val) + " = atomload seq_cst %" + std::to_string(addr));
    const int next = fresh();
    emit("  %" + std::to_string(next) + " = add %" + std::to_string(acc) + ", %" +
         std::to_string(val));
    acc = next;
  }
  emit("  ret %" + std::to_string(acc));
  return "func @main(0) regs=" + std::to_string(reg + 2) + " {\n" + body + "}\n";
}

}  // namespace

GeneratedProgram generate(std::uint64_t seed) {
  // Decorrelate adjacent seeds: seed 0 and seed 1 should share nothing.
  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 0xde7b0c5ULL);
  GeneratedProgram p;
  p.seed = seed;
  p.threads = 2 + static_cast<int>(rng.next_below(3));       // 2..4
  p.phases = 1 + static_cast<int>(rng.next_below(3));        // 1..3
  p.mutexes = 1 + static_cast<int>(rng.next_below(3));       // 1..3
  p.atomic_cells = 1 + static_cast<int>(rng.next_below(3));  // 1..3
  p.barriers = rng.next_below(4) != 0;                       // 75%

  std::string text =
      "# Generated by detfuzz --seed=" + std::to_string(seed) + " -- do not edit.\n" +
      "# threads=" + std::to_string(p.threads) + " phases=" + std::to_string(p.phases) +
      " mutexes=" + std::to_string(p.mutexes) + " atomics=" + std::to_string(p.atomic_cells) +
      " barriers=" + (p.barriers ? "yes" : "no") + "\n\n";
  for (int w = 0; w < p.threads; ++w) {
    int actions = 0;
    text += WorkerBuilder(w, p, rng).build(&actions) + "\n";
    p.actions += actions;
  }
  text += build_main(p);
  p.ir_text = std::move(text);
  return p;
}

}  // namespace detlock::fuzz
