// Differential checker: one generated (or replayed) program, every
// configuration the determinism claim covers, one verdict.
//
// The oracle encodes exactly what weak determinism promises, no more:
//
//   * WITHIN one publication mode (detlock every-update, or kendo-sim
//     chunked), every engine (reference / decoded / jit), every chaos
//     schedule, and every repetition must agree on the FULL fingerprint:
//     result, lock-order (trace) hash, memory hash, instruction counts
//     (total and per thread), and thread count.
//   * ACROSS publication modes NOTHING is compared.  The two modes are two
//     different -- each internally deterministic -- schedules: chunked
//     clocks change which thread wins each lock tie, so an order-sensitive
//     program (every generated program salts its cells with non-commutative
//     updates precisely to be order-sensitive) may compute a different
//     result, memory image, lock order, and instruction count under each.
//     Weak determinism promises reproducibility per configuration, not
//     schedule-independence of the outcome (compare
//     docs/determinism-proofs.md; the algo programs show the same split).
//
// A deadlock or watchdog trip in a generated program is always a failure:
// the generator emits deadlock-free programs by construction
// (generator.hpp), so a stall means the runtime broke, not the workload.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/generator.hpp"

namespace detlock::fuzz {

struct DiffOptions {
  /// kendo-sim chunk size for the chunked-publication leg.
  std::uint64_t kendo_chunk = 4;
  /// Chaos seeds run IN ADDITION to the unperturbed run of each config.
  std::vector<std::uint64_t> chaos_seeds = {5, 9};
  /// Repetitions per configuration (internal-determinism check).
  int runs = 1;
  /// Stall watchdog per run; generated programs are deadlock-free, so a
  /// trip is reported as a finding.  0 disables.
  std::uint64_t watchdog_ms = 10000;
};

/// Everything compared, per executed configuration (kept for -v output and
/// failure messages).
struct ConfigFingerprint {
  std::string config;  // e.g. "kendo-sim/jit/chaos=5"
  std::int64_t result = 0;
  std::uint64_t trace = 0;
  std::uint64_t memory = 0;
  std::uint64_t instructions = 0;
  std::uint64_t clock_instrs = 0;
  std::uint64_t threads = 0;
  std::vector<std::uint64_t> per_thread_instructions;
};

struct SeedReport {
  std::uint64_t seed = 0;
  bool ok = false;
  /// Empty when ok; otherwise the first divergence (or compile/run error),
  /// naming both configurations and every field that differs.
  std::string failure;
  GeneratedProgram program;
  std::vector<ConfigFingerprint> fingerprints;
  /// Total engine runs executed (throughput accounting for bench/CI).
  int runs_executed = 0;
};

/// generate(seed) + check_text on the result.
SeedReport check_seed(std::uint64_t seed, const DiffOptions& options);

/// Runs the full differential matrix over an existing program (corpus
/// replay).  `name` only labels failure messages.
SeedReport check_text(std::string_view name, std::string_view ir_text,
                      const DiffOptions& options);

}  // namespace detlock::fuzz
