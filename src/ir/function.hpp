// Function: parameter count, register budget, and a vector of basic blocks.
// Block 0 is always the entry block.  Blocks are referenced by index
// (BlockId); appending blocks never invalidates ids, which is what lets the
// block-splitting pass run in a single sweep.
#pragma once

#include <string>
#include <vector>

#include "ir/basic_block.hpp"

namespace detlock::ir {

class Function {
 public:
  Function() = default;
  Function(std::string name, std::uint32_t num_params) : name_(std::move(name)), num_params_(num_params) {}

  const std::string& name() const { return name_; }
  std::uint32_t num_params() const { return num_params_; }

  /// Registers [0, num_params) hold the arguments on entry.
  std::uint32_t num_regs() const { return num_regs_; }
  void set_num_regs(std::uint32_t n) { num_regs_ = n; }
  Reg alloc_reg() { return num_regs_++; }

  std::vector<BasicBlock>& blocks() { return blocks_; }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  std::size_t num_blocks() const { return blocks_.size(); }

  BasicBlock& block(BlockId id) {
    DETLOCK_CHECK(id < blocks_.size(), "bad block id in '" + name_ + "'");
    return blocks_[id];
  }
  const BasicBlock& block(BlockId id) const {
    DETLOCK_CHECK(id < blocks_.size(), "bad block id in '" + name_ + "'");
    return blocks_[id];
  }

  BlockId add_block(std::string name) {
    blocks_.emplace_back(std::move(name));
    return static_cast<BlockId>(blocks_.size() - 1);
  }

  static constexpr BlockId kEntry = 0;

  /// Find a block id by name; kInvalidBlock when absent.
  BlockId find_block(std::string_view name) const {
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      if (blocks_[i].name() == name) return static_cast<BlockId>(i);
    }
    return kInvalidBlock;
  }

  std::size_t total_instr_count() const {
    std::size_t n = 0;
    for (const BasicBlock& b : blocks_) n += b.instrs().size();
    return n;
  }

 private:
  std::string name_;
  std::uint32_t num_params_ = 0;
  std::uint32_t num_regs_ = 0;
  std::vector<BasicBlock> blocks_;
};

}  // namespace detlock::ir
