#include "ir/printer.hpp"

#include <ostream>
#include <sstream>

#include "support/strings.hpp"

namespace detlock::ir {

namespace {

std::string reg(Reg r) { return "%" + std::to_string(r); }

std::string block_ref(const Function& func, BlockId id) {
  if (id < func.num_blocks()) return func.block(id).name();
  return "<bad-block-" + std::to_string(id) + ">";
}

void print_args(std::ostream& os, const std::vector<Reg>& args) {
  os << '(';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ", ";
    os << reg(args[i]);
  }
  os << ')';
}

}  // namespace

void print_instr(std::ostream& os, const Module& module, const Function& func, const Instr& instr) {
  switch (instr.op) {
    case Opcode::kConst:
      os << reg(instr.dst) << " = const " << instr.imm;
      return;
    case Opcode::kConstF:
      os << reg(instr.dst) << " = constf " << str_format("%.17g", instr.fimm);
      return;
    case Opcode::kMov:
    case Opcode::kFSqrt:
    case Opcode::kItoF:
    case Opcode::kFtoI:
      os << reg(instr.dst) << " = " << opcode_name(instr.op) << ' ' << reg(instr.a);
      return;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kFAdd:
    case Opcode::kFSub:
    case Opcode::kFMul:
    case Opcode::kFDiv:
      os << reg(instr.dst) << " = " << opcode_name(instr.op) << ' ' << reg(instr.a) << ", " << reg(instr.b);
      return;
    case Opcode::kICmp:
    case Opcode::kFCmp:
      os << reg(instr.dst) << " = " << opcode_name(instr.op) << ' ' << cmp_pred_name(instr.pred) << ' '
         << reg(instr.a) << ", " << reg(instr.b);
      return;
    case Opcode::kLoad:
    case Opcode::kLoadF:
      os << reg(instr.dst) << " = " << opcode_name(instr.op) << ' ' << reg(instr.a);
      if (instr.imm != 0) os << " + " << instr.imm;
      return;
    case Opcode::kStore:
    case Opcode::kStoreF:
      os << opcode_name(instr.op) << ' ' << reg(instr.a);
      if (instr.imm != 0) os << " + " << instr.imm;
      os << ", " << reg(instr.b);
      return;
    case Opcode::kBr:
      os << "br " << block_ref(func, static_cast<BlockId>(instr.imm));
      return;
    case Opcode::kCondBr:
      os << "condbr " << reg(instr.a) << ", " << block_ref(func, static_cast<BlockId>(instr.imm)) << ", "
         << block_ref(func, instr.target2);
      return;
    case Opcode::kSwitch: {
      os << "switch " << reg(instr.a) << ", " << block_ref(func, static_cast<BlockId>(instr.imm)) << ", [";
      for (std::size_t i = 0; i + 1 < instr.args.size(); i += 2) {
        if (i > 0) os << ", ";
        os << instr.args[i] << ": " << block_ref(func, static_cast<BlockId>(instr.args[i + 1]));
      }
      os << ']';
      return;
    }
    case Opcode::kRet:
      os << "ret";
      if (instr.has_value) os << ' ' << reg(instr.a);
      return;
    case Opcode::kCall:
      os << reg(instr.dst) << " = call @" << module.function(instr.callee).name();
      print_args(os, instr.args);
      return;
    case Opcode::kCallExtern:
      os << reg(instr.dst) << " = callx @" << module.extern_decl(instr.callee).name;
      print_args(os, instr.args);
      return;
    case Opcode::kSpawn:
      os << reg(instr.dst) << " = spawn @" << module.function(instr.callee).name();
      print_args(os, instr.args);
      return;
    case Opcode::kLock:
    case Opcode::kUnlock:
    case Opcode::kJoin:
    case Opcode::kCondSignal:
    case Opcode::kCondBroadcast:
      os << opcode_name(instr.op) << ' ' << reg(instr.a);
      return;
    case Opcode::kCondWait:
      os << "condwait " << reg(instr.a) << ", " << reg(instr.b);
      return;
    case Opcode::kBarrier:
      os << "barrier " << reg(instr.a) << ", " << reg(instr.b);
      return;
    case Opcode::kAtomicLoad:
      os << reg(instr.dst) << " = atomload " << mem_order_name(instr.order) << ' ' << reg(instr.a);
      if (instr.imm != 0) os << " + " << instr.imm;
      return;
    case Opcode::kAtomicStore:
      os << "atomstore " << mem_order_name(instr.order) << ' ' << reg(instr.a);
      if (instr.imm != 0) os << " + " << instr.imm;
      os << ", " << reg(instr.b);
      return;
    case Opcode::kAtomicRmw:
      os << reg(instr.dst) << " = atomrmw " << rmw_kind_name(instr.rmw) << ' '
         << mem_order_name(instr.order) << ' ' << reg(instr.a);
      if (instr.imm != 0) os << " + " << instr.imm;
      os << ", " << reg(instr.b);
      if (instr.rmw == AtomicRmwKind::kCas) os << ", " << reg(instr.c);
      return;
    case Opcode::kFence:
      os << "fence " << mem_order_name(instr.order);
      return;
    case Opcode::kClockAdd:
      os << "clockadd " << instr.imm;
      return;
    case Opcode::kClockAddDyn:
      os << "clockadddyn " << instr.imm << " + " << str_format("%.17g", instr.fimm) << " * " << reg(instr.a);
      return;
  }
  DETLOCK_UNREACHABLE("bad opcode in printer");
}

void print_function(std::ostream& os, const Module& module, const Function& func) {
  os << "func @" << func.name() << '(' << func.num_params() << ") regs=" << func.num_regs() << " {\n";
  for (const BasicBlock& block : func.blocks()) {
    os << "block " << block.name() << ":\n";
    for (const Instr& instr : block.instrs()) {
      os << "  ";
      print_instr(os, module, func, instr);
      os << '\n';
    }
  }
  os << "}\n";
}

void print_module(std::ostream& os, const Module& module) {
  for (const ExternDecl& e : module.externs()) {
    os << "extern @" << e.name << '(' << e.num_params << ')';
    if (e.returns_value) os << " -> value";
    if (e.estimate.has_value()) {
      os << " estimate base=" << e.estimate->base;
      if (e.estimate->is_dynamic()) {
        os << " per_unit=" << str_format("%.17g", e.estimate->per_unit) << " size_arg=" << e.estimate->size_arg_index;
      }
    } else {
      os << " unclocked";
    }
    os << '\n';
  }
  if (!module.externs().empty()) os << '\n';
  for (std::size_t i = 0; i < module.functions().size(); ++i) {
    if (i > 0) os << '\n';
    print_function(os, module, module.functions()[i]);
  }
}

std::string to_string(const Module& module) {
  std::ostringstream oss;
  print_module(oss, module);
  return oss.str();
}

std::string to_string(const Module& module, const Function& func) {
  std::ostringstream oss;
  print_function(oss, module, func);
  return oss.str();
}

}  // namespace detlock::ir
