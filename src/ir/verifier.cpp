#include "ir/verifier.hpp"

#include <unordered_set>

#include "support/error.hpp"

namespace detlock::ir {

std::string VerifyIssue::to_string() const {
  std::string out = "@" + function;
  if (!block.empty()) out += ":" + block;
  out += ": " + message;
  return out;
}

namespace {

class Verifier {
 public:
  explicit Verifier(const Module& module) : module_(module) {}

  std::vector<VerifyIssue> run() {
    std::unordered_set<std::string> func_names;
    for (const Function& f : module_.functions()) {
      if (!func_names.insert(f.name()).second) {
        issue(f.name(), "", "duplicate function name");
      }
      verify_function(f);
    }
    std::unordered_set<std::string> extern_names;
    for (const ExternDecl& e : module_.externs()) {
      if (!extern_names.insert(e.name).second) {
        issue(e.name, "", "duplicate extern name");
      }
      if (e.estimate.has_value() && e.estimate->is_dynamic() && e.estimate->size_arg_index >= e.num_params) {
        issue(e.name, "", "estimate size_arg out of range");
      }
    }
    return std::move(issues_);
  }

 private:
  void issue(std::string func, std::string block, std::string message) {
    issues_.push_back(VerifyIssue{std::move(func), std::move(block), std::move(message)});
  }

  void verify_function(const Function& f) {
    if (f.num_blocks() == 0) {
      issue(f.name(), "", "function has no blocks");
      return;
    }
    if (f.num_regs() < f.num_params()) {
      issue(f.name(), "", "num_regs smaller than num_params");
    }
    std::unordered_set<std::string> block_names;
    for (const BasicBlock& b : f.blocks()) {
      if (!block_names.insert(b.name()).second) {
        issue(f.name(), b.name(), "duplicate block name");
      }
      verify_block(f, b);
    }
  }

  void verify_block(const Function& f, const BasicBlock& b) {
    if (b.instrs().empty()) {
      issue(f.name(), b.name(), "empty block (no terminator)");
      return;
    }
    for (std::size_t i = 0; i < b.instrs().size(); ++i) {
      const Instr& instr = b.instrs()[i];
      const bool last = (i + 1 == b.instrs().size());
      if (is_terminator(instr.op) != last) {
        issue(f.name(), b.name(),
              last ? "block does not end in a terminator"
                   : std::string("terminator '") + std::string(opcode_name(instr.op)) + "' in block middle");
      }
      verify_instr(f, b, instr);
    }
  }

  void check_reg(const Function& f, const BasicBlock& b, Reg r, const char* role) {
    if (r >= f.num_regs()) {
      issue(f.name(), b.name(), std::string(role) + " register %" + std::to_string(r) + " out of range");
    }
  }

  void check_block_ref(const Function& f, const BasicBlock& b, BlockId id) {
    if (id >= f.num_blocks()) {
      issue(f.name(), b.name(), "branch to nonexistent block id " + std::to_string(id));
    }
  }

  void verify_instr(const Function& f, const BasicBlock& b, const Instr& instr) {
    if (has_dst(instr.op)) check_reg(f, b, instr.dst, "dst");
    switch (instr.op) {
      case Opcode::kConst:
      case Opcode::kConstF:
      case Opcode::kClockAdd:
        break;
      case Opcode::kClockAddDyn:
        check_reg(f, b, instr.a, "src");
        break;
      case Opcode::kMov:
      case Opcode::kFSqrt:
      case Opcode::kItoF:
      case Opcode::kFtoI:
      case Opcode::kLoad:
      case Opcode::kLoadF:
      case Opcode::kLock:
      case Opcode::kUnlock:
      case Opcode::kJoin:
      case Opcode::kCondSignal:
      case Opcode::kCondBroadcast:
        check_reg(f, b, instr.a, "src");
        break;
      case Opcode::kCondWait:
      case Opcode::kBarrier:
        check_reg(f, b, instr.a, "src");
        check_reg(f, b, instr.b, "src");
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kRem:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kFAdd:
      case Opcode::kFSub:
      case Opcode::kFMul:
      case Opcode::kFDiv:
      case Opcode::kICmp:
      case Opcode::kFCmp:
      case Opcode::kStore:
      case Opcode::kStoreF:
        check_reg(f, b, instr.a, "src");
        check_reg(f, b, instr.b, "src");
        break;
      case Opcode::kBr:
        check_block_ref(f, b, static_cast<BlockId>(instr.imm));
        break;
      case Opcode::kCondBr:
        check_reg(f, b, instr.a, "cond");
        check_block_ref(f, b, static_cast<BlockId>(instr.imm));
        check_block_ref(f, b, instr.target2);
        break;
      case Opcode::kSwitch: {
        check_reg(f, b, instr.a, "value");
        check_block_ref(f, b, static_cast<BlockId>(instr.imm));
        if (instr.args.size() % 2 != 0) {
          issue(f.name(), b.name(), "switch case list has odd length");
          break;
        }
        std::unordered_set<Reg> case_values;
        for (std::size_t i = 0; i < instr.args.size(); i += 2) {
          if (!case_values.insert(instr.args[i]).second) {
            issue(f.name(), b.name(), "duplicate switch case " + std::to_string(instr.args[i]));
          }
          check_block_ref(f, b, static_cast<BlockId>(instr.args[i + 1]));
        }
        break;
      }
      case Opcode::kRet:
        if (instr.has_value) check_reg(f, b, instr.a, "ret value");
        break;
      case Opcode::kCall:
      case Opcode::kSpawn: {
        if (instr.callee >= module_.functions().size()) {
          issue(f.name(), b.name(), "call to nonexistent function id " + std::to_string(instr.callee));
          break;
        }
        const Function& callee = module_.function(instr.callee);
        if (instr.args.size() != callee.num_params()) {
          issue(f.name(), b.name(),
                "call to @" + callee.name() + " with " + std::to_string(instr.args.size()) + " args, expected " +
                    std::to_string(callee.num_params()));
        }
        for (Reg r : instr.args) check_reg(f, b, r, "arg");
        break;
      }
      case Opcode::kAtomicLoad:
      case Opcode::kAtomicStore:
      case Opcode::kAtomicRmw:
      case Opcode::kFence: {
        // Registry-driven: SyncOpDesc declares operand arity and which
        // orderings the primitive accepts.
        const SyncOpDesc& desc = *sync_op_desc(instr.op);
        if (desc.num_reg_operands >= 1) check_reg(f, b, instr.a, "addr");
        if (desc.num_reg_operands >= 2) check_reg(f, b, instr.b, "src");
        if (desc.cas_uses_c && instr.rmw == AtomicRmwKind::kCas) {
          check_reg(f, b, instr.c, "desired");
        }
        if ((desc.allowed_orders & order_bit(instr.order)) == 0) {
          issue(f.name(), b.name(),
                std::string(opcode_name(instr.op)) + " does not accept ordering '" +
                    std::string(mem_order_name(instr.order)) + "'");
        }
        break;
      }
      case Opcode::kCallExtern: {
        if (instr.callee >= module_.externs().size()) {
          issue(f.name(), b.name(), "call to nonexistent extern id " + std::to_string(instr.callee));
          break;
        }
        const ExternDecl& callee = module_.extern_decl(instr.callee);
        if (instr.args.size() != callee.num_params) {
          issue(f.name(), b.name(),
                "call to extern @" + callee.name + " with " + std::to_string(instr.args.size()) +
                    " args, expected " + std::to_string(callee.num_params));
        }
        for (Reg r : instr.args) check_reg(f, b, r, "arg");
        break;
      }
    }
  }

  const Module& module_;
  std::vector<VerifyIssue> issues_;
};

}  // namespace

std::vector<VerifyIssue> verify_module(const Module& module) { return Verifier(module).run(); }

void verify_module_or_throw(const Module& module) {
  const std::vector<VerifyIssue> issues = verify_module(module);
  if (issues.empty()) return;
  std::string message = "IR verification failed:";
  for (const VerifyIssue& i : issues) message += "\n  " + i.to_string();
  throw Error(message);
}

}  // namespace detlock::ir
