#include "ir/builder.hpp"

namespace detlock::ir {

FunctionBuilder::FunctionBuilder(Module& module, std::string name, std::uint32_t num_params)
    : module_(module), func_id_(module.add_function(std::move(name), num_params)) {
  func().set_num_regs(num_params);
  current_ = func().add_block("entry");
}

Function& FunctionBuilder::func() { return module_.function(func_id_); }

Reg FunctionBuilder::param(std::uint32_t index) const {
  DETLOCK_CHECK(index < module_.function(func_id_).num_params(), "parameter index out of range");
  return index;
}

Reg FunctionBuilder::new_reg() { return func().alloc_reg(); }

BlockId FunctionBuilder::make_block(std::string name) { return func().add_block(std::move(name)); }

void FunctionBuilder::set_insert_point(BlockId block) {
  DETLOCK_CHECK(block < func().num_blocks(), "bad insert point");
  current_ = block;
}

BasicBlock& FunctionBuilder::cur() {
  BasicBlock& b = func().block(current_);
  DETLOCK_CHECK(!b.has_terminator(), "appending to terminated block '" + b.name() + "'");
  return b;
}

void FunctionBuilder::emit(Instr instr) { cur().append(std::move(instr)); }

Reg FunctionBuilder::const_i(std::int64_t v) {
  const Reg dst = new_reg();
  cur().append(Instr::make_const(dst, v));
  return dst;
}

Reg FunctionBuilder::const_f(double v) {
  const Reg dst = new_reg();
  Instr i;
  i.op = Opcode::kConstF;
  i.dst = dst;
  i.fimm = v;
  cur().append(std::move(i));
  return dst;
}

Reg FunctionBuilder::mov(Reg a) {
  const Reg dst = new_reg();
  Instr i;
  i.op = Opcode::kMov;
  i.dst = dst;
  i.a = a;
  cur().append(std::move(i));
  return dst;
}

Reg FunctionBuilder::binary(Opcode op, Reg a, Reg b) {
  const Reg dst = new_reg();
  cur().append(Instr::make_binary(op, dst, a, b));
  return dst;
}

Reg FunctionBuilder::fsqrt(Reg a) {
  const Reg dst = new_reg();
  Instr i;
  i.op = Opcode::kFSqrt;
  i.dst = dst;
  i.a = a;
  cur().append(std::move(i));
  return dst;
}

Reg FunctionBuilder::icmp(CmpPred pred, Reg a, Reg b) {
  const Reg dst = new_reg();
  Instr i;
  i.op = Opcode::kICmp;
  i.pred = pred;
  i.dst = dst;
  i.a = a;
  i.b = b;
  cur().append(std::move(i));
  return dst;
}

Reg FunctionBuilder::fcmp(CmpPred pred, Reg a, Reg b) {
  const Reg dst = new_reg();
  Instr i;
  i.op = Opcode::kFCmp;
  i.pred = pred;
  i.dst = dst;
  i.a = a;
  i.b = b;
  cur().append(std::move(i));
  return dst;
}

Reg FunctionBuilder::itof(Reg a) {
  const Reg dst = new_reg();
  Instr i;
  i.op = Opcode::kItoF;
  i.dst = dst;
  i.a = a;
  cur().append(std::move(i));
  return dst;
}

Reg FunctionBuilder::ftoi(Reg a) {
  const Reg dst = new_reg();
  Instr i;
  i.op = Opcode::kFtoI;
  i.dst = dst;
  i.a = a;
  cur().append(std::move(i));
  return dst;
}

Reg FunctionBuilder::load(Reg addr, std::int64_t offset) {
  const Reg dst = new_reg();
  Instr i;
  i.op = Opcode::kLoad;
  i.dst = dst;
  i.a = addr;
  i.imm = offset;
  cur().append(std::move(i));
  return dst;
}

void FunctionBuilder::store(Reg addr, Reg value, std::int64_t offset) {
  Instr i;
  i.op = Opcode::kStore;
  i.a = addr;
  i.b = value;
  i.imm = offset;
  cur().append(std::move(i));
}

Reg FunctionBuilder::loadf(Reg addr, std::int64_t offset) {
  const Reg dst = new_reg();
  Instr i;
  i.op = Opcode::kLoadF;
  i.dst = dst;
  i.a = addr;
  i.imm = offset;
  cur().append(std::move(i));
  return dst;
}

void FunctionBuilder::storef(Reg addr, Reg value, std::int64_t offset) {
  Instr i;
  i.op = Opcode::kStoreF;
  i.a = addr;
  i.b = value;
  i.imm = offset;
  cur().append(std::move(i));
}

Reg FunctionBuilder::call(FuncId callee, std::initializer_list<Reg> args) {
  return call(callee, std::vector<Reg>(args));
}

Reg FunctionBuilder::call(FuncId callee, const std::vector<Reg>& args) {
  const Reg dst = new_reg();
  Instr i;
  i.op = Opcode::kCall;
  i.dst = dst;
  i.callee = callee;
  i.args = args;
  cur().append(std::move(i));
  return dst;
}

Reg FunctionBuilder::call_extern(ExternId callee, std::initializer_list<Reg> args) {
  return call_extern(callee, std::vector<Reg>(args));
}

Reg FunctionBuilder::call_extern(ExternId callee, const std::vector<Reg>& args) {
  const Reg dst = new_reg();
  Instr i;
  i.op = Opcode::kCallExtern;
  i.dst = dst;
  i.callee = callee;
  i.args = args;
  cur().append(std::move(i));
  return dst;
}

void FunctionBuilder::lock(Reg mutex_id) {
  Instr i;
  i.op = Opcode::kLock;
  i.a = mutex_id;
  cur().append(std::move(i));
}

void FunctionBuilder::unlock(Reg mutex_id) {
  Instr i;
  i.op = Opcode::kUnlock;
  i.a = mutex_id;
  cur().append(std::move(i));
}

void FunctionBuilder::barrier(Reg barrier_id, Reg participants) {
  Instr i;
  i.op = Opcode::kBarrier;
  i.a = barrier_id;
  i.b = participants;
  cur().append(std::move(i));
}

void FunctionBuilder::cond_wait(Reg condvar_id, Reg mutex_id) {
  Instr i;
  i.op = Opcode::kCondWait;
  i.a = condvar_id;
  i.b = mutex_id;
  cur().append(std::move(i));
}

void FunctionBuilder::cond_signal(Reg condvar_id) {
  Instr i;
  i.op = Opcode::kCondSignal;
  i.a = condvar_id;
  cur().append(std::move(i));
}

void FunctionBuilder::cond_broadcast(Reg condvar_id) {
  Instr i;
  i.op = Opcode::kCondBroadcast;
  i.a = condvar_id;
  cur().append(std::move(i));
}

Reg FunctionBuilder::spawn(FuncId callee, std::initializer_list<Reg> args) {
  const Reg dst = new_reg();
  Instr i;
  i.op = Opcode::kSpawn;
  i.dst = dst;
  i.callee = callee;
  i.args = std::vector<Reg>(args);
  cur().append(std::move(i));
  return dst;
}

void FunctionBuilder::join(Reg handle) {
  Instr i;
  i.op = Opcode::kJoin;
  i.a = handle;
  cur().append(std::move(i));
}

void FunctionBuilder::br(BlockId target) { cur().append(Instr::make_br(target)); }

void FunctionBuilder::condbr(Reg cond, BlockId then_block, BlockId else_block) {
  cur().append(Instr::make_condbr(cond, then_block, else_block));
}

void FunctionBuilder::switch_on(Reg value, BlockId default_block,
                                const std::vector<std::pair<std::int64_t, BlockId>>& cases) {
  Instr i;
  i.op = Opcode::kSwitch;
  i.a = value;
  i.imm = default_block;
  for (const auto& [case_value, block] : cases) {
    DETLOCK_CHECK(case_value >= 0 && case_value <= 0xffffffffLL, "switch case value must fit in u32");
    i.args.push_back(static_cast<Reg>(case_value));
    i.args.push_back(block);
  }
  cur().append(std::move(i));
}

void FunctionBuilder::ret() { cur().append(Instr::make_ret()); }

void FunctionBuilder::ret(Reg value) { cur().append(Instr::make_ret(value)); }

}  // namespace detlock::ir
