// Basic block: a straight-line instruction sequence ending in one terminator.
#pragma once

#include <string>
#include <vector>

#include "ir/instr.hpp"
#include "support/error.hpp"

namespace detlock::ir {

class BasicBlock {
 public:
  BasicBlock() = default;
  explicit BasicBlock(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::vector<Instr>& instrs() { return instrs_; }
  const std::vector<Instr>& instrs() const { return instrs_; }
  bool empty() const { return instrs_.empty(); }

  void append(Instr instr) { instrs_.push_back(std::move(instr)); }

  bool has_terminator() const { return !instrs_.empty() && is_terminator(instrs_.back().op); }

  const Instr& terminator() const {
    DETLOCK_CHECK(has_terminator(), "block '" + name_ + "' has no terminator");
    return instrs_.back();
  }

  Instr& terminator() {
    DETLOCK_CHECK(has_terminator(), "block '" + name_ + "' has no terminator");
    return instrs_.back();
  }

  /// Successor block ids in terminator order (condbr: then, else; switch:
  /// default first, then cases).  Duplicates are preserved; callers that
  /// need a set dedupe themselves.
  std::vector<BlockId> successors() const {
    std::vector<BlockId> out;
    if (!has_terminator()) return out;
    const Instr& t = instrs_.back();
    switch (t.op) {
      case Opcode::kBr:
        out.push_back(static_cast<BlockId>(t.imm));
        break;
      case Opcode::kCondBr:
        out.push_back(static_cast<BlockId>(t.imm));
        out.push_back(t.target2);
        break;
      case Opcode::kSwitch: {
        out.push_back(static_cast<BlockId>(t.imm));
        for (std::size_t i = 1; i < t.args.size(); i += 2) {
          out.push_back(static_cast<BlockId>(t.args[i]));
        }
        break;
      }
      case Opcode::kRet:
        break;
      default:
        DETLOCK_UNREACHABLE("non-terminator at block end");
    }
    return out;
  }

  /// Number of kCall instructions whose callee is some program function
  /// (externs excluded): used by the block-splitting pass.
  std::size_t count_calls() const {
    std::size_t n = 0;
    for (const Instr& i : instrs_) {
      if (is_call(i.op)) ++n;
    }
    return n;
  }

 private:
  std::string name_;
  std::vector<Instr> instrs_;
};

}  // namespace detlock::ir
