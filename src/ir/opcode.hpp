// Opcode set of the DetLock IR.
//
// The IR is a register machine (not SSA): each function owns an unbounded
// file of virtual registers, blocks end in exactly one terminator, and the
// only instructions with side effects outside the register file are memory,
// call and synchronization operations.  This is deliberately the minimal
// surface the DetLock compiler pass needs: the pass reasons about CFG shape
// and per-block instruction *costs*, never about dataflow.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace detlock::ir {

enum class Opcode : std::uint8_t {
  // Register constants / moves.
  kConst,   // dst = imm (i64)
  kConstF,  // dst = fimm (f64)
  kMov,     // dst = a

  // Integer arithmetic (i64, two's complement; div/rem trap on zero).
  kAdd,
  kSub,
  kMul,
  kDiv,
  kRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,

  // Floating point (f64).
  kFAdd,
  kFSub,
  kFMul,
  kFDiv,
  kFSqrt,  // dst = sqrt(a) -- modeled as a (slow) instruction, not a call

  // Comparisons & conversions.
  kICmp,  // dst = pred(a, b) ? 1 : 0, signed i64
  kFCmp,  // dst = pred(a, b) ? 1 : 0, f64 (ordered)
  kItoF,
  kFtoI,

  // Memory: one flat shared address space of 64-bit words.
  kLoad,   // dst = mem[a + imm]
  kStore,  // mem[a + imm] = b
  kLoadF,
  kStoreF,

  // Control flow (terminators).
  kBr,      // br imm(block)
  kCondBr,  // condbr a ? imm(block) : target2(block)
  kSwitch,  // switch a; default imm(block); args = [case0, block0, case1, block1, ...]
  kRet,     // ret [a if has_value]

  // Calls.
  kCall,        // dst = call callee(args...)  -- callee is a FuncId
  kCallExtern,  // dst = callx callee(args...) -- callee is an ExternId

  // Synchronization (lowered to runtime hooks by the interpreter).
  kLock,     // lock   mutex[a]
  kUnlock,   // unlock mutex[a]
  kBarrier,  // barrier barrier[a], participants=reg[b]
  kSpawn,    // dst = spawn callee(args...)  -- returns thread handle
  kJoin,     // join a
  kCondWait,      // condwait cv[a], mutex[b]  (mutex must be held)
  kCondSignal,    // condsignal cv[a]          (associated mutex must be held)
  kCondBroadcast, // condbroadcast cv[a]       (associated mutex must be held)

  // Instrumentation (inserted by the DetLock pass; never written by hand).
  kClockAdd,     // logical_clock += imm
  kClockAddDyn,  // logical_clock += imm + fimm * reg[a]   (size-dependent extern estimates)
};

/// Number of opcodes; sizes the decoded interpreter's dispatch table.  Keep
/// in sync with the last enumerator above.
inline constexpr std::size_t kNumOpcodes = static_cast<std::size_t>(Opcode::kClockAddDyn) + 1;

/// Signed comparison predicates shared by kICmp/kFCmp.
enum class CmpPred : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view opcode_name(Opcode op);
std::string_view cmp_pred_name(CmpPred pred);

constexpr bool is_terminator(Opcode op) {
  return op == Opcode::kBr || op == Opcode::kCondBr || op == Opcode::kSwitch || op == Opcode::kRet;
}

constexpr bool is_call(Opcode op) {
  return op == Opcode::kCall || op == Opcode::kCallExtern || op == Opcode::kSpawn;
}

constexpr bool is_clock_update(Opcode op) {
  return op == Opcode::kClockAdd || op == Opcode::kClockAddDyn;
}

/// True for instructions that read or write shared memory (race detection
/// scope).  Synchronization ops are handled separately.
constexpr bool is_memory_access(Opcode op) {
  return op == Opcode::kLoad || op == Opcode::kStore || op == Opcode::kLoadF || op == Opcode::kStoreF;
}

constexpr bool has_dst(Opcode op) {
  switch (op) {
    case Opcode::kConst:
    case Opcode::kConstF:
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kFAdd:
    case Opcode::kFSub:
    case Opcode::kFMul:
    case Opcode::kFDiv:
    case Opcode::kFSqrt:
    case Opcode::kICmp:
    case Opcode::kFCmp:
    case Opcode::kItoF:
    case Opcode::kFtoI:
    case Opcode::kLoad:
    case Opcode::kLoadF:
    case Opcode::kCall:
    case Opcode::kCallExtern:
    case Opcode::kSpawn:
      return true;
    default:
      return false;
  }
}

}  // namespace detlock::ir
