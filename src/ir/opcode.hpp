// Opcode set of the DetLock IR.
//
// The IR is a register machine (not SSA): each function owns an unbounded
// file of virtual registers, blocks end in exactly one terminator, and the
// only instructions with side effects outside the register file are memory,
// call and synchronization operations.  This is deliberately the minimal
// surface the DetLock compiler pass needs: the pass reasons about CFG shape
// and per-block instruction *costs*, never about dataflow.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace detlock::ir {

enum class Opcode : std::uint8_t {
  // Register constants / moves.
  kConst,   // dst = imm (i64)
  kConstF,  // dst = fimm (f64)
  kMov,     // dst = a

  // Integer arithmetic (i64, two's complement; div/rem trap on zero).
  kAdd,
  kSub,
  kMul,
  kDiv,
  kRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,

  // Floating point (f64).
  kFAdd,
  kFSub,
  kFMul,
  kFDiv,
  kFSqrt,  // dst = sqrt(a) -- modeled as a (slow) instruction, not a call

  // Comparisons & conversions.
  kICmp,  // dst = pred(a, b) ? 1 : 0, signed i64
  kFCmp,  // dst = pred(a, b) ? 1 : 0, f64 (ordered)
  kItoF,
  kFtoI,

  // Memory: one flat shared address space of 64-bit words.
  kLoad,   // dst = mem[a + imm]
  kStore,  // mem[a + imm] = b
  kLoadF,
  kStoreF,

  // Control flow (terminators).
  kBr,      // br imm(block)
  kCondBr,  // condbr a ? imm(block) : target2(block)
  kSwitch,  // switch a; default imm(block); args = [case0, block0, case1, block1, ...]
  kRet,     // ret [a if has_value]

  // Calls.
  kCall,        // dst = call callee(args...)  -- callee is a FuncId
  kCallExtern,  // dst = callx callee(args...) -- callee is an ExternId

  // Synchronization (lowered to runtime hooks by the interpreter).
  kLock,     // lock   mutex[a]
  kUnlock,   // unlock mutex[a]
  kBarrier,  // barrier barrier[a], participants=reg[b]
  kSpawn,    // dst = spawn callee(args...)  -- returns thread handle
  kJoin,     // join a
  kCondWait,      // condwait cv[a], mutex[b]  (mutex must be held)
  kCondSignal,    // condsignal cv[a]          (associated mutex must be held)
  kCondBroadcast, // condbroadcast cv[a]       (associated mutex must be held)

  // Memory-model atomics.  Each atomic op (and fence) is a synchronization
  // point under the deterministic turn protocol: it executes inside the
  // thread's turn and consumes it, exactly like a lock acquire, so the
  // global order of atomic operations IS the turn order.  The guest-visible
  // ordering annotation affects happens-before edges (race detection) and
  // static lint only -- the host always performs the memory operation with
  // sequentially consistent semantics inside the turn.
  kAtomicLoad,   // dst = atomload ORDER mem[a + imm]
  kAtomicStore,  // atomstore ORDER mem[a + imm], b
  kAtomicRmw,    // dst = atomrmw KIND ORDER mem[a + imm], b[, c]; dst = old value
  kFence,        // fence ORDER (no memory operand)

  // Instrumentation (inserted by the DetLock pass; never written by hand).
  kClockAdd,     // logical_clock += imm
  kClockAddDyn,  // logical_clock += imm + fimm * reg[a]   (size-dependent extern estimates)
};

/// Number of opcodes; sizes the decoded interpreter's dispatch table.  Keep
/// in sync with the last enumerator above.
inline constexpr std::size_t kNumOpcodes = static_cast<std::size_t>(Opcode::kClockAddDyn) + 1;

/// Signed comparison predicates shared by kICmp/kFCmp.
enum class CmpPred : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Guest-visible memory orderings for kAtomicLoad/kAtomicStore/kAtomicRmw/
/// kFence.  The values double as bit positions in SyncOpDesc::allowed_orders.
enum class MemOrder : std::uint8_t { kRelaxed, kAcquire, kRelease, kAcqRel, kSeqCst };
inline constexpr std::size_t kNumMemOrders = static_cast<std::size_t>(MemOrder::kSeqCst) + 1;

/// Read-modify-write flavors of kAtomicRmw.
enum class AtomicRmwKind : std::uint8_t {
  kAdd,       // dst = old; mem += b
  kExchange,  // dst = old; mem = b
  kCas,       // dst = old; if (old == b) mem = c
};

std::string_view opcode_name(Opcode op);
std::string_view cmp_pred_name(CmpPred pred);
std::string_view mem_order_name(MemOrder order);
std::string_view rmw_kind_name(AtomicRmwKind kind);

/// True when the ordering has acquire semantics (an acquiring edge endpoint
/// in the happens-before model).
constexpr bool order_is_acquire(MemOrder o) {
  return o == MemOrder::kAcquire || o == MemOrder::kAcqRel || o == MemOrder::kSeqCst;
}

/// True when the ordering has release semantics.
constexpr bool order_is_release(MemOrder o) {
  return o == MemOrder::kRelease || o == MemOrder::kAcqRel || o == MemOrder::kSeqCst;
}

// ---------------------------------------------------------------------------
// SyncOpDesc: the single registry describing every synchronization primitive.
//
// One table row per sync opcode declares its operand arity, whether it
// produces a result, which memory orderings it accepts, how it interacts
// with the deterministic turn protocol, which observer event it fires, and
// which lint family owns it.  The verifier, cost model, clock passes, call
// graph, both backends, and the static checker all consult this table, so
// adding a primitive is one row plus its handlers -- not six scattered
// switch statements.
// ---------------------------------------------------------------------------

/// How the primitive interacts with the Kendo turn protocol.
enum class TurnClass : std::uint8_t {
  kConsumesTurn,  // waits for the logical-clock minimum, then bumps the clock
                  // (lock, atomics, fence)
  kTurnFree,      // never waits for a turn (unlock, condsignal, condbroadcast)
  kRendezvous,    // parks at +inf and resumes at a folded clock
                  // (barrier, join, condwait); spawn is classed here too
                  // (it registers the child inside the parent's turn)
};

/// Which runtime::SyncObserver hook the backend fires for the primitive.
enum class SyncEventKind : std::uint8_t {
  kLock, kUnlock, kBarrier, kSpawn, kJoin, kCondWait, kCondSignal, kCondBroadcast,
  kAtomic, kFence,
};

/// Which static-lint family reasons about the primitive.
enum class SyncLintCategory : std::uint8_t {
  kLockset,  // participates in lockset transfer (lock/unlock)
  kCondvar,  // condvar binding discipline
  kThread,   // spawn/join lifecycle
  kBarrier,  // barrier participation
  kAtomic,   // atomics + fences (ordering lint, no lockset effect)
};

struct SyncOpDesc {
  Opcode op;
  std::string_view name;
  std::uint8_t num_reg_operands;  // register operands in a/b (0..2); kAtomicRmw
                                  // cas additionally reads its desired value
                                  // from Instr::c (see cas_uses_c)
  bool has_result;                // writes Instr::dst
  bool takes_order;               // carries a MemOrder annotation
  std::uint8_t allowed_orders;    // bitmask (1 << MemOrder) when takes_order
  bool cas_uses_c;                // kAtomicRmw only: cas reads Instr::c
  TurnClass turn;
  SyncEventKind event;
  SyncLintCategory lint;
  std::uint8_t cost;              // CostModel units (kept at 1 for the
                                  // pre-atomics primitives so existing clock
                                  // schedules are unchanged)
};

/// Registry lookup: the descriptor for a sync primitive, or nullptr when
/// `op` is not a synchronization opcode.
const SyncOpDesc* sync_op_desc(Opcode op);

/// True for every opcode with a SyncOpDesc row (lock/unlock/barrier/spawn/
/// join/condvars/atomics/fence).
inline bool is_sync_op(Opcode op) { return sync_op_desc(op) != nullptr; }

constexpr std::uint8_t order_bit(MemOrder o) {
  return static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(o));
}

constexpr bool is_terminator(Opcode op) {
  return op == Opcode::kBr || op == Opcode::kCondBr || op == Opcode::kSwitch || op == Opcode::kRet;
}

constexpr bool is_call(Opcode op) {
  return op == Opcode::kCall || op == Opcode::kCallExtern || op == Opcode::kSpawn;
}

constexpr bool is_clock_update(Opcode op) {
  return op == Opcode::kClockAdd || op == Opcode::kClockAddDyn;
}

/// True for instructions that read or write shared memory (race detection
/// scope).  Synchronization ops are handled separately.
constexpr bool is_memory_access(Opcode op) {
  return op == Opcode::kLoad || op == Opcode::kStore || op == Opcode::kLoadF || op == Opcode::kStoreF;
}

constexpr bool has_dst(Opcode op) {
  switch (op) {
    case Opcode::kConst:
    case Opcode::kConstF:
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kFAdd:
    case Opcode::kFSub:
    case Opcode::kFMul:
    case Opcode::kFDiv:
    case Opcode::kFSqrt:
    case Opcode::kICmp:
    case Opcode::kFCmp:
    case Opcode::kItoF:
    case Opcode::kFtoI:
    case Opcode::kLoad:
    case Opcode::kLoadF:
    case Opcode::kCall:
    case Opcode::kCallExtern:
    case Opcode::kSpawn:
    case Opcode::kAtomicLoad:
    case Opcode::kAtomicRmw:
      return true;
    default:
      return false;
  }
}

}  // namespace detlock::ir
