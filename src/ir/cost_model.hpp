// Per-opcode logical-clock costs.
//
// Paper Sec. III-A: "The unit of our logical clock is one instruction.  For
// instructions which take more than one clock cycle, the logical clock is
// updated according to the approximate number of clock cycles they take."
// The default model charges 1 for simple ALU ops and more for divides,
// square roots and memory, loosely following published x86 latency tables.
// Instrumentation (clockadd*) is free by definition -- it *is* the clock.
#pragma once

#include <cstdint>

#include "ir/instr.hpp"

namespace detlock::ir {

class CostModel {
 public:
  /// Static cost of one instruction.  Calls are charged their dispatch cost
  /// only; callee bodies are accounted by the callee (or by the caller via
  /// the clocked-function / extern-estimate machinery in the pass).
  std::int64_t cost(const Instr& instr) const {
    switch (instr.op) {
      case Opcode::kDiv:
      case Opcode::kRem:
        return div_cost;
      case Opcode::kFDiv:
        return fdiv_cost;
      case Opcode::kFSqrt:
        return fsqrt_cost;
      case Opcode::kLoad:
      case Opcode::kLoadF:
        return load_cost;
      case Opcode::kStore:
      case Opcode::kStoreF:
        return store_cost;
      case Opcode::kCall:
      case Opcode::kCallExtern:
      case Opcode::kSpawn:
        return call_cost;
      case Opcode::kClockAdd:
      case Opcode::kClockAddDyn:
        return 0;
      default:
        // Sync primitives take their cost from the SyncOpDesc registry (the
        // pre-atomics primitives all declare 1 there, so existing clock
        // schedules are unchanged); everything else is a 1-cycle ALU op.
        if (const SyncOpDesc* desc = sync_op_desc(instr.op)) {
          return static_cast<std::int64_t>(desc->cost);
        }
        return 1;
    }
  }

  /// Cost knobs, public so ablation benches can sweep them.
  std::int64_t div_cost = 20;
  std::int64_t fdiv_cost = 15;
  std::int64_t fsqrt_cost = 20;
  std::int64_t load_cost = 3;
  std::int64_t store_cost = 2;
  std::int64_t call_cost = 2;
};

}  // namespace detlock::ir
