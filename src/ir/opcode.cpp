#include "ir/opcode.hpp"

#include "support/error.hpp"

namespace detlock::ir {

std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kConst: return "const";
    case Opcode::kConstF: return "constf";
    case Opcode::kMov: return "mov";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kRem: return "rem";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kFAdd: return "fadd";
    case Opcode::kFSub: return "fsub";
    case Opcode::kFMul: return "fmul";
    case Opcode::kFDiv: return "fdiv";
    case Opcode::kFSqrt: return "fsqrt";
    case Opcode::kICmp: return "icmp";
    case Opcode::kFCmp: return "fcmp";
    case Opcode::kItoF: return "itof";
    case Opcode::kFtoI: return "ftoi";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kLoadF: return "loadf";
    case Opcode::kStoreF: return "storef";
    case Opcode::kBr: return "br";
    case Opcode::kCondBr: return "condbr";
    case Opcode::kSwitch: return "switch";
    case Opcode::kRet: return "ret";
    case Opcode::kCall: return "call";
    case Opcode::kCallExtern: return "callx";
    case Opcode::kLock: return "lock";
    case Opcode::kUnlock: return "unlock";
    case Opcode::kBarrier: return "barrier";
    case Opcode::kSpawn: return "spawn";
    case Opcode::kJoin: return "join";
    case Opcode::kCondWait: return "condwait";
    case Opcode::kCondSignal: return "condsignal";
    case Opcode::kCondBroadcast: return "condbroadcast";
    case Opcode::kClockAdd: return "clockadd";
    case Opcode::kClockAddDyn: return "clockadddyn";
  }
  DETLOCK_UNREACHABLE("bad opcode");
}

std::string_view cmp_pred_name(CmpPred pred) {
  switch (pred) {
    case CmpPred::kEq: return "eq";
    case CmpPred::kNe: return "ne";
    case CmpPred::kLt: return "lt";
    case CmpPred::kLe: return "le";
    case CmpPred::kGt: return "gt";
    case CmpPred::kGe: return "ge";
  }
  DETLOCK_UNREACHABLE("bad cmp predicate");
}

}  // namespace detlock::ir
