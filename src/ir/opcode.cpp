#include "ir/opcode.hpp"

#include "support/error.hpp"

namespace detlock::ir {

std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kConst: return "const";
    case Opcode::kConstF: return "constf";
    case Opcode::kMov: return "mov";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kRem: return "rem";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kFAdd: return "fadd";
    case Opcode::kFSub: return "fsub";
    case Opcode::kFMul: return "fmul";
    case Opcode::kFDiv: return "fdiv";
    case Opcode::kFSqrt: return "fsqrt";
    case Opcode::kICmp: return "icmp";
    case Opcode::kFCmp: return "fcmp";
    case Opcode::kItoF: return "itof";
    case Opcode::kFtoI: return "ftoi";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kLoadF: return "loadf";
    case Opcode::kStoreF: return "storef";
    case Opcode::kBr: return "br";
    case Opcode::kCondBr: return "condbr";
    case Opcode::kSwitch: return "switch";
    case Opcode::kRet: return "ret";
    case Opcode::kCall: return "call";
    case Opcode::kCallExtern: return "callx";
    case Opcode::kLock: return "lock";
    case Opcode::kUnlock: return "unlock";
    case Opcode::kBarrier: return "barrier";
    case Opcode::kSpawn: return "spawn";
    case Opcode::kJoin: return "join";
    case Opcode::kCondWait: return "condwait";
    case Opcode::kCondSignal: return "condsignal";
    case Opcode::kCondBroadcast: return "condbroadcast";
    case Opcode::kAtomicLoad: return "atomload";
    case Opcode::kAtomicStore: return "atomstore";
    case Opcode::kAtomicRmw: return "atomrmw";
    case Opcode::kFence: return "fence";
    case Opcode::kClockAdd: return "clockadd";
    case Opcode::kClockAddDyn: return "clockadddyn";
  }
  DETLOCK_UNREACHABLE("bad opcode");
}

std::string_view mem_order_name(MemOrder order) {
  switch (order) {
    case MemOrder::kRelaxed: return "relaxed";
    case MemOrder::kAcquire: return "acq";
    case MemOrder::kRelease: return "rel";
    case MemOrder::kAcqRel: return "acq_rel";
    case MemOrder::kSeqCst: return "seq_cst";
  }
  DETLOCK_UNREACHABLE("bad memory order");
}

std::string_view rmw_kind_name(AtomicRmwKind kind) {
  switch (kind) {
    case AtomicRmwKind::kAdd: return "add";
    case AtomicRmwKind::kExchange: return "xchg";
    case AtomicRmwKind::kCas: return "cas";
  }
  DETLOCK_UNREACHABLE("bad rmw kind");
}

namespace {

constexpr std::uint8_t kNoOrders = 0;
constexpr std::uint8_t kAllOrders =
    order_bit(MemOrder::kRelaxed) | order_bit(MemOrder::kAcquire) | order_bit(MemOrder::kRelease) |
    order_bit(MemOrder::kAcqRel) | order_bit(MemOrder::kSeqCst);
constexpr std::uint8_t kLoadOrders =  // a load cannot release
    order_bit(MemOrder::kRelaxed) | order_bit(MemOrder::kAcquire) | order_bit(MemOrder::kSeqCst);
constexpr std::uint8_t kStoreOrders =  // a store cannot acquire
    order_bit(MemOrder::kRelaxed) | order_bit(MemOrder::kRelease) | order_bit(MemOrder::kSeqCst);
constexpr std::uint8_t kFenceOrders =  // a relaxed fence is meaningless
    order_bit(MemOrder::kAcquire) | order_bit(MemOrder::kRelease) | order_bit(MemOrder::kAcqRel) |
    order_bit(MemOrder::kSeqCst);

// The registry.  Row order is irrelevant (lookup is by opcode), but keeping
// it in enum order makes review against the Opcode table trivial.
constexpr SyncOpDesc kSyncOps[] = {
    // op, name, regs, result, order?, orders, cas_c, turn, event, lint, cost
    {Opcode::kLock, "lock", 1, false, false, kNoOrders, false,
     TurnClass::kConsumesTurn, SyncEventKind::kLock, SyncLintCategory::kLockset, 1},
    {Opcode::kUnlock, "unlock", 1, false, false, kNoOrders, false,
     TurnClass::kTurnFree, SyncEventKind::kUnlock, SyncLintCategory::kLockset, 1},
    {Opcode::kBarrier, "barrier", 2, false, false, kNoOrders, false,
     TurnClass::kRendezvous, SyncEventKind::kBarrier, SyncLintCategory::kBarrier, 1},
    {Opcode::kSpawn, "spawn", 0, true, false, kNoOrders, false,
     TurnClass::kRendezvous, SyncEventKind::kSpawn, SyncLintCategory::kThread, 1},
    {Opcode::kJoin, "join", 1, false, false, kNoOrders, false,
     TurnClass::kRendezvous, SyncEventKind::kJoin, SyncLintCategory::kThread, 1},
    {Opcode::kCondWait, "condwait", 2, false, false, kNoOrders, false,
     TurnClass::kRendezvous, SyncEventKind::kCondWait, SyncLintCategory::kCondvar, 1},
    {Opcode::kCondSignal, "condsignal", 1, false, false, kNoOrders, false,
     TurnClass::kTurnFree, SyncEventKind::kCondSignal, SyncLintCategory::kCondvar, 1},
    {Opcode::kCondBroadcast, "condbroadcast", 1, false, false, kNoOrders, false,
     TurnClass::kTurnFree, SyncEventKind::kCondBroadcast, SyncLintCategory::kCondvar, 1},
    {Opcode::kAtomicLoad, "atomload", 1, true, true, kLoadOrders, false,
     TurnClass::kConsumesTurn, SyncEventKind::kAtomic, SyncLintCategory::kAtomic, 3},
    {Opcode::kAtomicStore, "atomstore", 2, false, true, kStoreOrders, false,
     TurnClass::kConsumesTurn, SyncEventKind::kAtomic, SyncLintCategory::kAtomic, 3},
    {Opcode::kAtomicRmw, "atomrmw", 2, true, true, kAllOrders, true,
     TurnClass::kConsumesTurn, SyncEventKind::kAtomic, SyncLintCategory::kAtomic, 5},
    {Opcode::kFence, "fence", 0, false, true, kFenceOrders, false,
     TurnClass::kConsumesTurn, SyncEventKind::kFence, SyncLintCategory::kAtomic, 1},
};

}  // namespace

const SyncOpDesc* sync_op_desc(Opcode op) {
  for (const SyncOpDesc& desc : kSyncOps) {
    if (desc.op == op) return &desc;
  }
  return nullptr;
}

std::string_view cmp_pred_name(CmpPred pred) {
  switch (pred) {
    case CmpPred::kEq: return "eq";
    case CmpPred::kNe: return "ne";
    case CmpPred::kLt: return "lt";
    case CmpPred::kLe: return "le";
    case CmpPred::kGt: return "gt";
    case CmpPred::kGe: return "ge";
  }
  DETLOCK_UNREACHABLE("bad cmp predicate");
}

}  // namespace detlock::ir
