// A single IR instruction.
//
// Fixed-slot encoding keeps the hot interpreter loop branch-light: most
// instructions use only {dst, a, b, imm}; calls and switches spill their
// variable-length operand lists into `args`.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/opcode.hpp"

namespace detlock::ir {

using Reg = std::uint32_t;
using BlockId = std::uint32_t;
using FuncId = std::uint32_t;
using ExternId = std::uint32_t;

inline constexpr BlockId kInvalidBlock = 0xffffffffu;

struct Instr {
  Opcode op{};
  CmpPred pred{};          // kICmp / kFCmp only
  bool has_value = false;  // kRet: returns a?
  MemOrder order{};        // kAtomicLoad/kAtomicStore/kAtomicRmw/kFence only
  AtomicRmwKind rmw{};     // kAtomicRmw only
  Reg dst = 0;
  Reg a = 0;
  Reg b = 0;
  Reg c = 0;               // kAtomicRmw cas only: the desired (swap-in) value
  std::int64_t imm = 0;    // constant / mem offset / branch target / clock delta
  double fimm = 0.0;       // float constant / dynamic-clock scale
  BlockId target2 = kInvalidBlock;  // kCondBr else-target
  std::uint32_t callee = 0;         // FuncId (kCall/kSpawn) or ExternId (kCallExtern)
  std::vector<Reg> args;            // call arguments; kSwitch: [case,block] pairs

  // -- convenience constructors used throughout tests and workloads --------

  static Instr make_const(Reg dst, std::int64_t v) {
    Instr i;
    i.op = Opcode::kConst;
    i.dst = dst;
    i.imm = v;
    return i;
  }

  static Instr make_binary(Opcode op, Reg dst, Reg a, Reg b) {
    Instr i;
    i.op = op;
    i.dst = dst;
    i.a = a;
    i.b = b;
    return i;
  }

  static Instr make_br(BlockId target) {
    Instr i;
    i.op = Opcode::kBr;
    i.imm = target;
    return i;
  }

  static Instr make_condbr(Reg cond, BlockId then_block, BlockId else_block) {
    Instr i;
    i.op = Opcode::kCondBr;
    i.a = cond;
    i.imm = then_block;
    i.target2 = else_block;
    return i;
  }

  static Instr make_ret() {
    Instr i;
    i.op = Opcode::kRet;
    return i;
  }

  static Instr make_ret(Reg value) {
    Instr i;
    i.op = Opcode::kRet;
    i.has_value = true;
    i.a = value;
    return i;
  }

  static Instr make_clock_add(std::int64_t delta) {
    Instr i;
    i.op = Opcode::kClockAdd;
    i.imm = delta;
    return i;
  }

  static Instr make_atomic_load(Reg dst, Reg addr, std::int64_t offset, MemOrder order) {
    Instr i;
    i.op = Opcode::kAtomicLoad;
    i.order = order;
    i.dst = dst;
    i.a = addr;
    i.imm = offset;
    return i;
  }

  static Instr make_atomic_store(Reg addr, std::int64_t offset, Reg value, MemOrder order) {
    Instr i;
    i.op = Opcode::kAtomicStore;
    i.order = order;
    i.a = addr;
    i.b = value;
    i.imm = offset;
    return i;
  }

  /// kAdd / kExchange: `operand` is the addend / new value.
  static Instr make_atomic_rmw(AtomicRmwKind kind, Reg dst, Reg addr, std::int64_t offset,
                               Reg operand, MemOrder order) {
    Instr i;
    i.op = Opcode::kAtomicRmw;
    i.order = order;
    i.rmw = kind;
    i.dst = dst;
    i.a = addr;
    i.b = operand;
    i.imm = offset;
    return i;
  }

  /// kCas: dst = old; store `desired` iff old == expected.
  static Instr make_atomic_cas(Reg dst, Reg addr, std::int64_t offset, Reg expected, Reg desired,
                               MemOrder order) {
    Instr i;
    i.op = Opcode::kAtomicRmw;
    i.order = order;
    i.rmw = AtomicRmwKind::kCas;
    i.dst = dst;
    i.a = addr;
    i.b = expected;
    i.c = desired;
    i.imm = offset;
    return i;
  }

  static Instr make_fence(MemOrder order) {
    Instr i;
    i.op = Opcode::kFence;
    i.order = order;
    return i;
  }
};

}  // namespace detlock::ir
