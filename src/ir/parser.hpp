// Textual IR parser (inverse of printer.hpp).
//
// Line-oriented grammar; '#' starts a comment.  Block and function
// references are by name and may be forward references.  Parse errors throw
// detlock::Error carrying the 1-based line number.
#pragma once

#include <string_view>

#include "ir/module.hpp"

namespace detlock::ir {

Module parse_module(std::string_view text);

}  // namespace detlock::ir
