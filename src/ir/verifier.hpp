// Structural IR verifier.
//
// Every pass in the pipeline runs the verifier after mutating a module (in
// debug/test builds unconditionally); it enforces the invariants the
// interpreter and analyses rely on so violations fail fast with a named
// block/function instead of corrupting a multithreaded run.
#pragma once

#include <string>
#include <vector>

#include "ir/module.hpp"

namespace detlock::ir {

struct VerifyIssue {
  std::string function;
  std::string block;  // empty for function-level issues
  std::string message;

  std::string to_string() const;
};

/// Returns all issues found (empty == valid).
std::vector<VerifyIssue> verify_module(const Module& module);

/// Throws detlock::Error listing every issue when the module is invalid.
void verify_module_or_throw(const Module& module);

}  // namespace detlock::ir
