// Fluent construction API for IR.
//
// Workload generators and tests build functions through this instead of
// hand-assembling Instr structs.  The builder tracks a current insertion
// block; terminators switch or end blocks explicitly.
#pragma once

#include <initializer_list>
#include <string>

#include "ir/module.hpp"

namespace detlock::ir {

class FunctionBuilder {
 public:
  FunctionBuilder(Module& module, std::string name, std::uint32_t num_params);

  Module& module() { return module_; }
  FuncId func_id() const { return func_id_; }
  Function& func();

  /// Parameter registers are 0..num_params-1.
  Reg param(std::uint32_t index) const;
  Reg new_reg();

  BlockId make_block(std::string name);
  void set_insert_point(BlockId block);
  BlockId insert_point() const { return current_; }

  /// Appends a hand-built instruction to the current block (the IR is not
  /// SSA, so workload generators use this to re-assign loop registers).
  void emit(Instr instr);

  // -- straight-line instructions ------------------------------------------
  Reg const_i(std::int64_t v);
  Reg const_f(double v);
  Reg mov(Reg a);
  Reg binary(Opcode op, Reg a, Reg b);
  Reg add(Reg a, Reg b) { return binary(Opcode::kAdd, a, b); }
  Reg sub(Reg a, Reg b) { return binary(Opcode::kSub, a, b); }
  Reg mul(Reg a, Reg b) { return binary(Opcode::kMul, a, b); }
  Reg div(Reg a, Reg b) { return binary(Opcode::kDiv, a, b); }
  Reg rem(Reg a, Reg b) { return binary(Opcode::kRem, a, b); }
  Reg fadd(Reg a, Reg b) { return binary(Opcode::kFAdd, a, b); }
  Reg fsub(Reg a, Reg b) { return binary(Opcode::kFSub, a, b); }
  Reg fmul(Reg a, Reg b) { return binary(Opcode::kFMul, a, b); }
  Reg fdiv(Reg a, Reg b) { return binary(Opcode::kFDiv, a, b); }
  Reg fsqrt(Reg a);
  Reg icmp(CmpPred pred, Reg a, Reg b);
  Reg fcmp(CmpPred pred, Reg a, Reg b);
  Reg itof(Reg a);
  Reg ftoi(Reg a);

  Reg load(Reg addr, std::int64_t offset = 0);
  void store(Reg addr, Reg value, std::int64_t offset = 0);
  Reg loadf(Reg addr, std::int64_t offset = 0);
  void storef(Reg addr, Reg value, std::int64_t offset = 0);

  Reg call(FuncId callee, std::initializer_list<Reg> args);
  Reg call(FuncId callee, const std::vector<Reg>& args);
  Reg call_extern(ExternId callee, std::initializer_list<Reg> args);
  Reg call_extern(ExternId callee, const std::vector<Reg>& args);

  void lock(Reg mutex_id);
  void unlock(Reg mutex_id);
  void barrier(Reg barrier_id, Reg participants);
  void cond_wait(Reg condvar_id, Reg mutex_id);
  void cond_signal(Reg condvar_id);
  void cond_broadcast(Reg condvar_id);
  Reg spawn(FuncId callee, std::initializer_list<Reg> args);
  void join(Reg handle);

  // -- terminators ----------------------------------------------------------
  void br(BlockId target);
  void condbr(Reg cond, BlockId then_block, BlockId else_block);
  void switch_on(Reg value, BlockId default_block, const std::vector<std::pair<std::int64_t, BlockId>>& cases);
  void ret();
  void ret(Reg value);

 private:
  BasicBlock& cur();

  Module& module_;
  FuncId func_id_;
  BlockId current_;
};

}  // namespace detlock::ir
