// Textual IR output.  The format round-trips through the parser, which the
// test suite checks property-style on randomly generated modules.
#pragma once

#include <iosfwd>
#include <string>

#include "ir/module.hpp"

namespace detlock::ir {

void print_instr(std::ostream& os, const Module& module, const Function& func, const Instr& instr);
void print_function(std::ostream& os, const Module& module, const Function& func);
void print_module(std::ostream& os, const Module& module);

std::string to_string(const Module& module);
std::string to_string(const Module& module, const Function& func);

}  // namespace detlock::ir
