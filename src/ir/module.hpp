// Module: the unit of compilation.  Owns all functions plus the table of
// extern (library / built-in) functions visible to the program.  Externs
// model the paper's "functions implemented in a library": the DetLock pass
// cannot instrument them, so each either carries an instruction estimate
// (from the estimate file) or is treated as unclocked.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace detlock::ir {

/// Static clock estimate for an extern function (paper Sec. III-B: the
/// "instructions estimate file").  Cost = base + per_unit * value-of-arg
/// `size_arg_index` (e.g. memset scales with its length parameter).
struct ExternEstimate {
  std::int64_t base = 0;
  double per_unit = 0.0;
  std::uint32_t size_arg_index = 0;

  bool is_dynamic() const { return per_unit != 0.0; }
};

struct ExternDecl {
  std::string name;
  std::uint32_t num_params = 0;
  bool returns_value = false;
  /// nullopt => unclocked extern: the pass must not move clocks across calls
  /// to it, exactly like an uninstrumented shared-library function.
  std::optional<ExternEstimate> estimate;
};

class Module {
 public:
  std::vector<Function>& functions() { return functions_; }
  const std::vector<Function>& functions() const { return functions_; }

  Function& function(FuncId id) {
    DETLOCK_CHECK(id < functions_.size(), "bad function id");
    return functions_[id];
  }
  const Function& function(FuncId id) const {
    DETLOCK_CHECK(id < functions_.size(), "bad function id");
    return functions_[id];
  }

  FuncId add_function(std::string name, std::uint32_t num_params) {
    functions_.emplace_back(std::move(name), num_params);
    return static_cast<FuncId>(functions_.size() - 1);
  }

  FuncId find_function(std::string_view name) const {
    for (std::size_t i = 0; i < functions_.size(); ++i) {
      if (functions_[i].name() == name) return static_cast<FuncId>(i);
    }
    DETLOCK_CHECK(false, std::string("unknown function: ") + std::string(name));
    return 0;  // unreachable
  }

  bool has_function(std::string_view name) const {
    for (const Function& f : functions_) {
      if (f.name() == name) return true;
    }
    return false;
  }

  std::vector<ExternDecl>& externs() { return externs_; }
  const std::vector<ExternDecl>& externs() const { return externs_; }

  const ExternDecl& extern_decl(ExternId id) const {
    DETLOCK_CHECK(id < externs_.size(), "bad extern id");
    return externs_[id];
  }

  ExternId add_extern(ExternDecl decl) {
    externs_.push_back(std::move(decl));
    return static_cast<ExternId>(externs_.size() - 1);
  }

  ExternId find_extern(std::string_view name) const {
    for (std::size_t i = 0; i < externs_.size(); ++i) {
      if (externs_[i].name == name) return static_cast<ExternId>(i);
    }
    DETLOCK_CHECK(false, std::string("unknown extern: ") + std::string(name));
    return 0;  // unreachable
  }

  bool has_extern(std::string_view name) const {
    for (const ExternDecl& e : externs_) {
      if (e.name == name) return true;
    }
    return false;
  }

  std::size_t total_instr_count() const {
    std::size_t n = 0;
    for (const Function& f : functions_) n += f.total_instr_count();
    return n;
  }

 private:
  std::vector<Function> functions_;
  std::vector<ExternDecl> externs_;
};

}  // namespace detlock::ir
