#include "ir/parser.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace detlock::ir {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : lines_(split(text, '\n')) {}

  Module run() {
    collect_signatures();
    parse_bodies();
    return std::move(module_);
  }

 private:
  [[noreturn]] void fail(std::size_t line_index, const std::string& what) {
    throw Error("IR parse error at line " + std::to_string(line_index + 1) + ": " + what);
  }

  static std::string_view strip_comment(std::string_view line) {
    const std::size_t pos = line.find('#');
    if (pos != std::string_view::npos) line = line.substr(0, pos);
    return trim(line);
  }

  // ---- pass 1: function/extern signatures and block names -----------------

  void collect_signatures() {
    FuncId current_func = 0;
    bool in_func = false;
    for (std::size_t li = 0; li < lines_.size(); ++li) {
      std::string_view line = strip_comment(lines_[li]);
      if (line.empty()) continue;
      if (starts_with(line, "extern ")) {
        if (in_func) fail(li, "extern declaration inside function body");
        parse_extern(li, line);
      } else if (starts_with(line, "func ")) {
        if (in_func) fail(li, "nested function");
        current_func = parse_func_header(li, line);
        in_func = true;
      } else if (line == "}") {
        if (!in_func) fail(li, "stray '}'");
        in_func = false;
      } else if (starts_with(line, "block ")) {
        if (!in_func) fail(li, "block outside function");
        std::string_view rest = trim(line.substr(6));
        if (rest.empty() || rest.back() != ':') fail(li, "expected 'block NAME:'");
        std::string name(trim(rest.substr(0, rest.size() - 1)));
        if (name.empty()) fail(li, "empty block name");
        Function& f = module_.function(current_func);
        if (f.find_block(name) != kInvalidBlock) fail(li, "duplicate block '" + name + "'");
        f.add_block(std::move(name));
      }
    }
    if (in_func) fail(lines_.size() - 1, "unterminated function (missing '}')");
  }

  void parse_extern(std::size_t li, std::string_view line) {
    // extern @name(N) [-> value] (estimate base=B [per_unit=P size_arg=K] | unclocked)
    std::string_view rest = trim(line.substr(7));
    if (rest.empty() || rest[0] != '@') fail(li, "expected '@name' after extern");
    const std::size_t paren = rest.find('(');
    if (paren == std::string_view::npos) fail(li, "expected '(' in extern declaration");
    ExternDecl decl;
    decl.name = std::string(rest.substr(1, paren - 1));
    const std::size_t close = rest.find(')', paren);
    if (close == std::string_view::npos) fail(li, "expected ')' in extern declaration");
    auto params = parse_int(rest.substr(paren + 1, close - paren - 1));
    if (!params || *params < 0) fail(li, "bad extern parameter count");
    decl.num_params = static_cast<std::uint32_t>(*params);

    std::vector<std::string_view> tokens = split_whitespace(rest.substr(close + 1));
    std::size_t t = 0;
    if (t < tokens.size() && tokens[t] == "->") {
      if (t + 1 >= tokens.size() || tokens[t + 1] != "value") fail(li, "expected '-> value'");
      decl.returns_value = true;
      t += 2;
    }
    if (t < tokens.size() && tokens[t] == "estimate") {
      ++t;
      ExternEstimate est;
      for (; t < tokens.size(); ++t) {
        const auto kv = split(tokens[t], '=');
        if (kv.size() != 2) fail(li, "bad estimate key=value token");
        if (kv[0] == "base") {
          auto v = parse_int(kv[1]);
          if (!v) fail(li, "bad estimate base");
          est.base = *v;
        } else if (kv[0] == "per_unit") {
          auto v = parse_double(kv[1]);
          if (!v) fail(li, "bad estimate per_unit");
          est.per_unit = *v;
        } else if (kv[0] == "size_arg") {
          auto v = parse_int(kv[1]);
          if (!v || *v < 0) fail(li, "bad estimate size_arg");
          est.size_arg_index = static_cast<std::uint32_t>(*v);
        } else {
          fail(li, "unknown estimate key '" + std::string(kv[0]) + "'");
        }
      }
      decl.estimate = est;
    } else if (t < tokens.size() && tokens[t] == "unclocked") {
      ++t;
      if (t != tokens.size()) fail(li, "trailing tokens after 'unclocked'");
    } else if (t != tokens.size()) {
      fail(li, "expected 'estimate ...' or 'unclocked'");
    }
    module_.add_extern(std::move(decl));
  }

  FuncId parse_func_header(std::size_t li, std::string_view line) {
    // func @name(N) regs=M {
    std::string_view rest = trim(line.substr(5));
    if (rest.empty() || rest[0] != '@') fail(li, "expected '@name' after func");
    const std::size_t paren = rest.find('(');
    if (paren == std::string_view::npos) fail(li, "expected '(' in func header");
    std::string name(rest.substr(1, paren - 1));
    const std::size_t close = rest.find(')', paren);
    if (close == std::string_view::npos) fail(li, "expected ')' in func header");
    auto params = parse_int(rest.substr(paren + 1, close - paren - 1));
    if (!params || *params < 0) fail(li, "bad parameter count");

    std::vector<std::string_view> tokens = split_whitespace(rest.substr(close + 1));
    std::int64_t regs = *params;
    std::size_t t = 0;
    if (t < tokens.size() && starts_with(tokens[t], "regs=")) {
      auto v = parse_int(tokens[t].substr(5));
      if (!v || *v < *params) fail(li, "bad regs count");
      regs = *v;
      ++t;
    }
    if (t >= tokens.size() || tokens[t] != "{") fail(li, "expected '{' at end of func header");
    if (module_.has_function(name)) fail(li, "duplicate function '" + name + "'");
    const FuncId id = module_.add_function(std::move(name), static_cast<std::uint32_t>(*params));
    module_.function(id).set_num_regs(static_cast<std::uint32_t>(regs));
    return id;
  }

  // ---- pass 2: instruction bodies ------------------------------------------

  void parse_bodies() {
    FuncId current_func = 0;
    BlockId current_block = kInvalidBlock;
    std::size_t func_counter = 0;
    bool in_func = false;
    for (std::size_t li = 0; li < lines_.size(); ++li) {
      std::string_view line = strip_comment(lines_[li]);
      if (line.empty() || starts_with(line, "extern ")) continue;
      if (starts_with(line, "func ")) {
        current_func = static_cast<FuncId>(func_counter++);
        current_block = kInvalidBlock;
        in_func = true;
      } else if (line == "}") {
        in_func = false;
      } else if (starts_with(line, "block ")) {
        std::string_view rest = trim(line.substr(6));
        std::string name(trim(rest.substr(0, rest.size() - 1)));
        current_block = module_.function(current_func).find_block(name);
      } else {
        if (!in_func || current_block == kInvalidBlock) fail(li, "instruction outside a block");
        Instr instr = parse_instr(li, line, module_.function(current_func));
        module_.function(current_func).block(current_block).append(std::move(instr));
      }
    }
  }

  Reg parse_reg(std::size_t li, std::string_view token) {
    token = trim(token);
    if (token.empty() || token[0] != '%') fail(li, "expected register, got '" + std::string(token) + "'");
    auto v = parse_int(token.substr(1));
    if (!v || *v < 0) fail(li, "bad register '" + std::string(token) + "'");
    return static_cast<Reg>(*v);
  }

  BlockId parse_block_ref(std::size_t li, const Function& func, std::string_view token) {
    token = trim(token);
    const BlockId id = func.find_block(token);
    if (id == kInvalidBlock) fail(li, "unknown block '" + std::string(token) + "'");
    return id;
  }

  CmpPred parse_pred(std::size_t li, std::string_view token) {
    token = trim(token);
    if (token == "eq") return CmpPred::kEq;
    if (token == "ne") return CmpPred::kNe;
    if (token == "lt") return CmpPred::kLt;
    if (token == "le") return CmpPred::kLe;
    if (token == "gt") return CmpPred::kGt;
    if (token == "ge") return CmpPred::kGe;
    fail(li, "bad comparison predicate '" + std::string(token) + "'");
  }

  /// Parses "@name(%a, %b, ...)" returning {name, args}.
  std::pair<std::string, std::vector<Reg>> parse_callee(std::size_t li, std::string_view text) {
    text = trim(text);
    if (text.empty() || text[0] != '@') fail(li, "expected '@callee(...)'");
    const std::size_t paren = text.find('(');
    if (paren == std::string_view::npos || text.back() != ')') fail(li, "malformed call argument list");
    std::string name(text.substr(1, paren - 1));
    std::string_view arg_text = text.substr(paren + 1, text.size() - paren - 2);
    std::vector<Reg> args;
    if (!trim(arg_text).empty()) {
      for (std::string_view a : split(arg_text, ',')) args.push_back(parse_reg(li, a));
    }
    return {std::move(name), std::move(args)};
  }

  MemOrder parse_order(std::size_t li, std::string_view token) {
    token = trim(token);
    if (token == "relaxed") return MemOrder::kRelaxed;
    if (token == "acq") return MemOrder::kAcquire;
    if (token == "rel") return MemOrder::kRelease;
    if (token == "acq_rel") return MemOrder::kAcqRel;
    if (token == "seq_cst") return MemOrder::kSeqCst;
    fail(li, "bad memory order '" + std::string(token) +
                 "' (want relaxed|acq|rel|acq_rel|seq_cst)");
  }

  AtomicRmwKind parse_rmw_kind(std::size_t li, std::string_view token) {
    token = trim(token);
    if (token == "add") return AtomicRmwKind::kAdd;
    if (token == "xchg") return AtomicRmwKind::kExchange;
    if (token == "cas") return AtomicRmwKind::kCas;
    fail(li, "bad atomrmw kind '" + std::string(token) + "' (want add|xchg|cas)");
  }

  /// Parses "%a" or "%a + OFF" used by load/store address syntax.
  std::pair<Reg, std::int64_t> parse_addr(std::size_t li, std::string_view text) {
    const std::size_t plus = text.find('+');
    if (plus == std::string_view::npos) return {parse_reg(li, text), 0};
    auto off = parse_int(text.substr(plus + 1));
    if (!off) fail(li, "bad address offset");
    return {parse_reg(li, text.substr(0, plus)), *off};
  }

  Opcode binary_opcode(std::string_view name) {
    static const std::unordered_map<std::string_view, Opcode> kMap = {
        {"add", Opcode::kAdd}, {"sub", Opcode::kSub}, {"mul", Opcode::kMul}, {"div", Opcode::kDiv},
        {"rem", Opcode::kRem}, {"and", Opcode::kAnd}, {"or", Opcode::kOr},   {"xor", Opcode::kXor},
        {"shl", Opcode::kShl}, {"shr", Opcode::kShr}, {"fadd", Opcode::kFAdd}, {"fsub", Opcode::kFSub},
        {"fmul", Opcode::kFMul}, {"fdiv", Opcode::kFDiv}};
    const auto it = kMap.find(name);
    return it == kMap.end() ? Opcode::kRet /*sentinel, caller checks*/ : it->second;
  }

  Instr parse_instr(std::size_t li, std::string_view line, Function& func) {
    Instr instr;
    std::string_view rest = line;
    bool has_dst_reg = false;
    Reg dst = 0;
    const std::size_t eq = line.find('=');
    // Careful: "base=..." can't appear here; '=' only occurs in "%d = op".
    if (eq != std::string_view::npos && trim(line.substr(0, eq)).size() > 0 && trim(line.substr(0, eq))[0] == '%') {
      dst = parse_reg(li, line.substr(0, eq));
      has_dst_reg = true;
      rest = trim(line.substr(eq + 1));
    }
    const std::size_t sp = rest.find_first_of(" \t");
    std::string_view op_name = sp == std::string_view::npos ? rest : rest.substr(0, sp);
    std::string_view operands = sp == std::string_view::npos ? std::string_view{} : trim(rest.substr(sp + 1));

    auto require_dst = [&] {
      if (!has_dst_reg) fail(li, std::string(op_name) + " requires a destination register");
      instr.dst = dst;
    };
    auto forbid_dst = [&] {
      if (has_dst_reg) fail(li, std::string(op_name) + " cannot have a destination register");
    };

    if (op_name == "const") {
      require_dst();
      instr.op = Opcode::kConst;
      auto v = parse_int(operands);
      if (!v) fail(li, "bad const literal");
      instr.imm = *v;
    } else if (op_name == "constf") {
      require_dst();
      instr.op = Opcode::kConstF;
      auto v = parse_double(operands);
      if (!v) fail(li, "bad constf literal");
      instr.fimm = *v;
    } else if (op_name == "mov" || op_name == "fsqrt" || op_name == "itof" || op_name == "ftoi") {
      require_dst();
      instr.op = op_name == "mov"     ? Opcode::kMov
                 : op_name == "fsqrt" ? Opcode::kFSqrt
                 : op_name == "itof"  ? Opcode::kItoF
                                      : Opcode::kFtoI;
      instr.a = parse_reg(li, operands);
    } else if (binary_opcode(op_name) != Opcode::kRet) {
      require_dst();
      instr.op = binary_opcode(op_name);
      const auto parts = split(operands, ',');
      if (parts.size() != 2) fail(li, "binary op needs two operands");
      instr.a = parse_reg(li, parts[0]);
      instr.b = parse_reg(li, parts[1]);
    } else if (op_name == "icmp" || op_name == "fcmp") {
      require_dst();
      instr.op = op_name == "icmp" ? Opcode::kICmp : Opcode::kFCmp;
      const std::size_t psp = operands.find(' ');
      if (psp == std::string_view::npos) fail(li, "cmp needs predicate");
      instr.pred = parse_pred(li, operands.substr(0, psp));
      const auto parts = split(operands.substr(psp + 1), ',');
      if (parts.size() != 2) fail(li, "cmp needs two operands");
      instr.a = parse_reg(li, parts[0]);
      instr.b = parse_reg(li, parts[1]);
    } else if (op_name == "load" || op_name == "loadf") {
      require_dst();
      instr.op = op_name == "load" ? Opcode::kLoad : Opcode::kLoadF;
      const auto [addr, off] = parse_addr(li, operands);
      instr.a = addr;
      instr.imm = off;
    } else if (op_name == "store" || op_name == "storef") {
      forbid_dst();
      instr.op = op_name == "store" ? Opcode::kStore : Opcode::kStoreF;
      const auto parts = split(operands, ',');
      if (parts.size() != 2) fail(li, "store needs address and value");
      const auto [addr, off] = parse_addr(li, parts[0]);
      instr.a = addr;
      instr.imm = off;
      instr.b = parse_reg(li, parts[1]);
    } else if (op_name == "br") {
      forbid_dst();
      instr.op = Opcode::kBr;
      instr.imm = parse_block_ref(li, func, operands);
    } else if (op_name == "condbr") {
      forbid_dst();
      instr.op = Opcode::kCondBr;
      const auto parts = split(operands, ',');
      if (parts.size() != 3) fail(li, "condbr needs cond, then, else");
      instr.a = parse_reg(li, parts[0]);
      instr.imm = parse_block_ref(li, func, parts[1]);
      instr.target2 = parse_block_ref(li, func, parts[2]);
    } else if (op_name == "switch") {
      forbid_dst();
      instr.op = Opcode::kSwitch;
      const std::size_t lb = operands.find('[');
      if (lb == std::string_view::npos || operands.back() != ']') fail(li, "switch needs [case: block, ...]");
      const auto head = split(operands.substr(0, lb), ',');
      if (head.size() < 2) fail(li, "switch needs value and default");
      instr.a = parse_reg(li, head[0]);
      instr.imm = parse_block_ref(li, func, head[1]);
      std::string_view case_text = operands.substr(lb + 1, operands.size() - lb - 2);
      if (!trim(case_text).empty()) {
        for (std::string_view c : split(case_text, ',')) {
          const auto kv = split(c, ':');
          if (kv.size() != 2) fail(li, "bad switch case");
          auto v = parse_int(kv[0]);
          if (!v || *v < 0) fail(li, "bad switch case value");
          instr.args.push_back(static_cast<Reg>(*v));
          instr.args.push_back(parse_block_ref(li, func, kv[1]));
        }
      }
    } else if (op_name == "ret") {
      forbid_dst();
      instr.op = Opcode::kRet;
      if (!operands.empty()) {
        instr.has_value = true;
        instr.a = parse_reg(li, operands);
      }
    } else if (op_name == "call" || op_name == "spawn") {
      require_dst();
      instr.op = op_name == "call" ? Opcode::kCall : Opcode::kSpawn;
      auto [name, args] = parse_callee(li, operands);
      instr.callee = module_.find_function(name);
      instr.args = std::move(args);
    } else if (op_name == "callx") {
      require_dst();
      instr.op = Opcode::kCallExtern;
      auto [name, args] = parse_callee(li, operands);
      instr.callee = module_.find_extern(name);
      instr.args = std::move(args);
    } else if (op_name == "lock" || op_name == "unlock" || op_name == "join" ||
               op_name == "condsignal" || op_name == "condbroadcast") {
      forbid_dst();
      instr.op = op_name == "lock"         ? Opcode::kLock
                 : op_name == "unlock"     ? Opcode::kUnlock
                 : op_name == "join"       ? Opcode::kJoin
                 : op_name == "condsignal" ? Opcode::kCondSignal
                                           : Opcode::kCondBroadcast;
      instr.a = parse_reg(li, operands);
    } else if (op_name == "condwait") {
      forbid_dst();
      instr.op = Opcode::kCondWait;
      const auto parts = split(operands, ',');
      if (parts.size() != 2) fail(li, "condwait needs condvar and mutex registers");
      instr.a = parse_reg(li, parts[0]);
      instr.b = parse_reg(li, parts[1]);
    } else if (op_name == "barrier") {
      forbid_dst();
      instr.op = Opcode::kBarrier;
      const auto parts = split(operands, ',');
      if (parts.size() != 2) fail(li, "barrier needs id and participant-count registers");
      instr.a = parse_reg(li, parts[0]);
      instr.b = parse_reg(li, parts[1]);
    } else if (op_name == "atomload") {
      require_dst();
      instr.op = Opcode::kAtomicLoad;
      const std::size_t osp = operands.find_first_of(" \t");
      if (osp == std::string_view::npos) fail(li, "atomload needs an ordering and an address");
      instr.order = parse_order(li, operands.substr(0, osp));
      const auto [addr, off] = parse_addr(li, trim(operands.substr(osp + 1)));
      instr.a = addr;
      instr.imm = off;
    } else if (op_name == "atomstore") {
      forbid_dst();
      instr.op = Opcode::kAtomicStore;
      const std::size_t osp = operands.find_first_of(" \t");
      if (osp == std::string_view::npos) fail(li, "atomstore needs an ordering, address, value");
      instr.order = parse_order(li, operands.substr(0, osp));
      const auto parts = split(trim(operands.substr(osp + 1)), ',');
      if (parts.size() != 2) fail(li, "atomstore needs address and value");
      const auto [addr, off] = parse_addr(li, parts[0]);
      instr.a = addr;
      instr.imm = off;
      instr.b = parse_reg(li, parts[1]);
    } else if (op_name == "atomrmw") {
      require_dst();
      instr.op = Opcode::kAtomicRmw;
      // Syntax: %d = atomrmw KIND ORDER %addr [+ OFF], %operand[, %desired]
      const std::vector<std::string_view> toks = split_whitespace(operands);
      if (toks.size() < 3) fail(li, "atomrmw needs a kind, an ordering, and operands");
      instr.rmw = parse_rmw_kind(li, toks[0]);
      instr.order = parse_order(li, toks[1]);
      const std::size_t tail_at = operands.find(toks[1]) + toks[1].size();
      const auto parts = split(trim(operands.substr(tail_at)), ',');
      const std::size_t want = instr.rmw == AtomicRmwKind::kCas ? 3 : 2;
      if (parts.size() != want) {
        fail(li, instr.rmw == AtomicRmwKind::kCas
                     ? "atomrmw cas needs address, expected, desired"
                     : "atomrmw needs address and operand");
      }
      const auto [addr, off] = parse_addr(li, parts[0]);
      instr.a = addr;
      instr.imm = off;
      instr.b = parse_reg(li, parts[1]);
      if (instr.rmw == AtomicRmwKind::kCas) instr.c = parse_reg(li, parts[2]);
    } else if (op_name == "fence") {
      forbid_dst();
      instr.op = Opcode::kFence;
      instr.order = parse_order(li, operands);
    } else if (op_name == "clockadd") {
      forbid_dst();
      instr.op = Opcode::kClockAdd;
      auto v = parse_int(operands);
      if (!v) fail(li, "bad clockadd literal");
      instr.imm = *v;
    } else if (op_name == "clockadddyn") {
      forbid_dst();
      instr.op = Opcode::kClockAddDyn;
      // Syntax: clockadddyn BASE + SCALE * %reg
      const std::size_t plus = operands.find('+');
      const std::size_t star = operands.find('*');
      if (plus == std::string_view::npos || star == std::string_view::npos || star < plus) {
        fail(li, "clockadddyn syntax: BASE + SCALE * %reg");
      }
      auto base = parse_int(operands.substr(0, plus));
      auto scale = parse_double(operands.substr(plus + 1, star - plus - 1));
      if (!base || !scale) fail(li, "bad clockadddyn literals");
      instr.imm = *base;
      instr.fimm = *scale;
      instr.a = parse_reg(li, operands.substr(star + 1));
    } else {
      fail(li, "unknown opcode '" + std::string(op_name) + "'");
    }

    // Registers referenced in textual IR may exceed the declared count when
    // the header omitted regs=; grow the function's register file to cover
    // them so hand-written snippets stay terse.
    Reg max_used = 0;
    if (has_dst(instr.op)) max_used = std::max(max_used, instr.dst);
    max_used = std::max({max_used, instr.a, instr.b, instr.c});
    if (instr.op == Opcode::kCall || instr.op == Opcode::kCallExtern || instr.op == Opcode::kSpawn) {
      for (Reg r : instr.args) max_used = std::max(max_used, r);
    }
    if (max_used >= func.num_regs()) func.set_num_regs(max_used + 1);
    return instr;
  }

  std::vector<std::string_view> lines_;
  Module module_;
};

}  // namespace

Module parse_module(std::string_view text) { return Parser(text).run(); }

}  // namespace detlock::ir
