#include "analysis/dominators.hpp"

namespace detlock::analysis {

DominatorTree::DominatorTree(const Cfg& cfg) : cfg_(cfg) {
  const std::size_t n = cfg.num_blocks();
  idom_.assign(n, ir::kInvalidBlock);
  children_.resize(n);
  if (n == 0) return;

  const std::vector<BlockId>& rpo = cfg.rpo();
  const BlockId entry = ir::Function::kEntry;
  idom_[entry] = entry;

  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while (cfg_.rpo_index(a) > cfg_.rpo_index(b)) a = idom_[a];
      while (cfg_.rpo_index(b) > cfg_.rpo_index(a)) b = idom_[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : rpo) {
      if (b == entry) continue;
      BlockId new_idom = ir::kInvalidBlock;
      for (BlockId p : cfg_.predecessors(b)) {
        if (idom_[p] == ir::kInvalidBlock) continue;  // not yet processed
        new_idom = (new_idom == ir::kInvalidBlock) ? p : intersect(p, new_idom);
      }
      if (new_idom != ir::kInvalidBlock && idom_[b] != new_idom) {
        idom_[b] = new_idom;
        changed = true;
      }
    }
  }

  for (std::size_t b = 0; b < n; ++b) {
    if (b == entry || idom_[b] == ir::kInvalidBlock) continue;
    children_[idom_[b]].push_back(static_cast<BlockId>(b));
  }
}

bool DominatorTree::dominates(BlockId a, BlockId b) const {
  if (idom_[b] == ir::kInvalidBlock || idom_[a] == ir::kInvalidBlock) return false;
  // Walk b's idom chain up to the entry; chains are short (tree height).
  BlockId cur = b;
  while (true) {
    if (cur == a) return true;
    const BlockId up = idom_[cur];
    if (up == cur) return false;  // reached entry
    cur = up;
  }
}

}  // namespace detlock::analysis
