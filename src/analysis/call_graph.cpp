#include "analysis/call_graph.hpp"

#include <algorithm>

namespace detlock::analysis {

CallGraph::CallGraph(const ir::Module& module) {
  const std::size_t n = module.functions().size();
  callees_.resize(n);
  callers_.resize(n);
  extern_callees_.resize(n);
  recursive_.assign(n, false);
  has_sync_.assign(n, false);

  for (std::size_t f = 0; f < n; ++f) {
    for (const ir::BasicBlock& block : module.functions()[f].blocks()) {
      for (const ir::Instr& instr : block.instrs()) {
        switch (instr.op) {
          case ir::Opcode::kCall:
          case ir::Opcode::kSpawn: {
            auto& list = callees_[f];
            if (std::find(list.begin(), list.end(), instr.callee) == list.end()) {
              list.push_back(instr.callee);
            }
            if (instr.op == ir::Opcode::kSpawn) has_sync_[f] = true;
            break;
          }
          case ir::Opcode::kCallExtern: {
            auto& list = extern_callees_[f];
            if (std::find(list.begin(), list.end(), instr.callee) == list.end()) {
              list.push_back(instr.callee);
            }
            break;
          }
          default:
            // Registry-driven: any sync primitive (locks, condvars, joins,
            // atomics, fences) marks the function as synchronizing.  kSpawn
            // is handled in the call case above and also sets the flag.
            if (ir::is_sync_op(instr.op)) has_sync_[f] = true;
            break;
        }
      }
    }
  }

  for (std::size_t f = 0; f < n; ++f) {
    for (FuncId callee : callees_[f]) callers_[callee].push_back(static_cast<FuncId>(f));
  }

  // Recursion: Tarjan-free approach -- a function is recursive iff it can
  // reach itself; with the small call graphs here an O(V*(V+E)) DFS per
  // function is fine and obviously correct.
  for (std::size_t f = 0; f < n; ++f) {
    std::vector<bool> visited(n, false);
    std::vector<FuncId> stack(callees_[f].begin(), callees_[f].end());
    while (!stack.empty()) {
      const FuncId g = stack.back();
      stack.pop_back();
      if (g == f) {
        recursive_[f] = true;
        break;
      }
      if (visited[g]) continue;
      visited[g] = true;
      for (FuncId h : callees_[g]) {
        if (!visited[h]) stack.push_back(h);
      }
    }
  }
}

}  // namespace detlock::analysis
