// Dominator tree (Cooper-Harvey-Kennedy "A Simple, Fast Dominance
// Algorithm").
//
// Optimization 3 only averages paths over blocks *dominated* by the path
// root ("execution must pass through the dominating block to reach its
// dominated blocks" -- paper Sec. IV-C), and Optimization 2a requires the
// conditional's successors to be dominated by it; both queries land here.
#pragma once

#include <vector>

#include "analysis/cfg.hpp"

namespace detlock::analysis {

class DominatorTree {
 public:
  explicit DominatorTree(const Cfg& cfg);

  /// Immediate dominator; entry's idom is itself.  Unreachable blocks map to
  /// kInvalidBlock.
  BlockId idom(BlockId b) const { return idom_[b]; }

  /// True iff a dominates b (reflexive: dominates(x, x) == true for
  /// reachable x).
  bool dominates(BlockId a, BlockId b) const;

  const std::vector<BlockId>& children(BlockId b) const { return children_[b]; }

 private:
  const Cfg& cfg_;
  std::vector<BlockId> idom_;
  std::vector<std::vector<BlockId>> children_;
};

}  // namespace detlock::analysis
