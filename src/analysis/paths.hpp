// Path statistics over an acyclic block region.
//
// Both Opt1 (Function Clocking) and Opt3 (Averaging of Clocks) ask: over all
// control-flow paths through a region, what are the mean / stddev / range of
// accumulated clock totals?  The paper's pseudocode enumerates paths
// (`getClocksOfAllPaths`); path counts are exponential in the number of
// sequential diamonds, so this implementation computes the identical
// statistics with a dynamic program over the region DAG:
//
//   per block, in reverse topological order, track the tuple
//   (path_count, sum, sum_of_squares, min, max) of path totals from that
//   block to any terminal block; combining successors is tuple addition and
//   adding the block's own clock shifts all moments.
//
// Doubles hold the moments: counts can exceed 2^64 but stay exact small
// integers long past any realistic region, and the clockability criteria
// only need ~6 significant digits.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/cfg.hpp"

namespace detlock::analysis {

struct PathStatsResult {
  bool valid = false;   // false: region is cyclic or start has no paths
  double count = 0.0;   // number of distinct paths
  double mean = 0.0;
  double stddev = 0.0;  // population stddev across paths
  double min = 0.0;
  double max = 0.0;

  double range() const { return max - min; }
};

/// Per-block clock cost callback (the pass supplies original clock values or
/// current assignments).
using BlockCostFn = std::function<std::int64_t(BlockId)>;

/// Computes path statistics for the region consisting of `blocks` (which
/// must include `start`).  A path begins at `start` and follows CFG edges
/// between region blocks; it terminates at a block none of whose successors
/// are in the region (or with no successors at all).  Blocks in the region
/// that can exit mid-way (some successors outside) terminate the paths that
/// take the exiting edge at that block -- cost accounting stays exact
/// because every region block's cost is charged exactly once per visit.
///
/// More precisely: the set of paths is every maximal sequence
/// start = b0 -> b1 -> ... -> bk with all bi in the region, where the
/// sequence is maximal if bk has no successor in the region; additionally,
/// for blocks with a mix of region/non-region successors, the truncated
/// path ending at that block is counted once for each exiting edge.
///
/// Returns invalid if the region subgraph contains a cycle.
PathStatsResult region_path_stats(const Cfg& cfg, BlockId start, const std::vector<bool>& in_region,
                                  const BlockCostFn& cost);

/// Whole-function variant used by Opt1: region = all reachable blocks, paths
/// run entry -> ret.  Invalid if the CFG has any cycle.
PathStatsResult function_path_stats(const Cfg& cfg, const BlockCostFn& cost);

}  // namespace detlock::analysis
