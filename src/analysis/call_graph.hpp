// Module call graph.
//
// Drives Opt1's fixed-point search over clockable functions (paper Fig. 4:
// a function can be clocked only when everything it calls is already clocked
// or carries a static estimate) and exposes leaf/recursion queries for tests
// and diagnostics.
#pragma once

#include <vector>

#include "ir/module.hpp"

namespace detlock::analysis {

using ir::ExternId;
using ir::FuncId;

class CallGraph {
 public:
  explicit CallGraph(const ir::Module& module);

  /// Deduplicated direct callees (kCall + kSpawn targets).
  const std::vector<FuncId>& callees(FuncId f) const { return callees_[f]; }
  const std::vector<FuncId>& callers(FuncId f) const { return callers_[f]; }
  const std::vector<ExternId>& extern_callees(FuncId f) const { return extern_callees_[f]; }

  /// No calls to program functions at all (extern calls allowed: the paper
  /// treats estimated built-ins as clockable leaves).
  bool is_leaf(FuncId f) const { return callees_[f].empty(); }

  /// f participates in a call-graph cycle (including self-recursion).
  bool is_recursive(FuncId f) const { return recursive_[f]; }

  /// f contains any synchronization operation (lock/unlock/barrier/spawn/
  /// join).  Such functions are never clockable: their cost is not a pure
  /// function of control flow.
  bool has_sync_ops(FuncId f) const { return has_sync_[f]; }

 private:
  std::vector<std::vector<FuncId>> callees_;
  std::vector<std::vector<FuncId>> callers_;
  std::vector<std::vector<ExternId>> extern_callees_;
  std::vector<bool> recursive_;
  std::vector<bool> has_sync_;
};

}  // namespace detlock::analysis
