#include "analysis/paths.hpp"

#include <algorithm>
#include <cmath>

namespace detlock::analysis {

namespace {

struct Moments {
  double count = 0.0;
  double sum = 0.0;
  double sumsq = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Topological order of the region subgraph rooted at start; empty when the
/// subgraph reachable from start is cyclic.
std::vector<BlockId> region_topo_order(const Cfg& cfg, BlockId start, const std::vector<bool>& in_region) {
  // Kahn's algorithm restricted to region blocks reachable from start.
  const std::size_t n = cfg.num_blocks();
  std::vector<bool> reachable(n, false);
  std::vector<BlockId> stack{start};
  reachable[start] = true;
  while (!stack.empty()) {
    const BlockId b = stack.back();
    stack.pop_back();
    for (BlockId s : cfg.successors(b)) {
      if (in_region[s] && !reachable[s]) {
        reachable[s] = true;
        stack.push_back(s);
      }
    }
  }

  std::vector<std::size_t> indegree(n, 0);
  for (std::size_t b = 0; b < n; ++b) {
    if (!reachable[b]) continue;
    for (BlockId s : cfg.successors(static_cast<BlockId>(b))) {
      // An edge back into start means paths from start could revisit it:
      // a cycle by definition, so the region is not averageable.
      if (s == start) return {};
      if (reachable[s] && in_region[s]) ++indegree[s];
    }
  }
  std::vector<BlockId> order;
  std::vector<BlockId> worklist{start};
  std::vector<bool> emitted(n, false);
  while (!worklist.empty()) {
    const BlockId b = worklist.back();
    worklist.pop_back();
    if (emitted[b]) continue;
    emitted[b] = true;
    order.push_back(b);
    for (BlockId s : cfg.successors(b)) {
      if (reachable[s] && in_region[s] && !emitted[s]) {
        if (--indegree[s] == 0) worklist.push_back(s);
      }
    }
  }
  std::size_t reachable_count = 0;
  for (std::size_t b = 0; b < n; ++b) {
    if (reachable[b]) ++reachable_count;
  }
  if (order.size() != reachable_count) return {};  // cycle
  return order;
}

}  // namespace

PathStatsResult region_path_stats(const Cfg& cfg, BlockId start, const std::vector<bool>& in_region,
                                  const BlockCostFn& cost) {
  PathStatsResult result;
  if (start >= cfg.num_blocks() || !in_region[start]) return result;

  const std::vector<BlockId> topo = region_topo_order(cfg, start, in_region);
  if (topo.empty()) return result;  // cyclic

  const std::size_t n = cfg.num_blocks();
  std::vector<Moments> m(n);
  std::vector<bool> computed(n, false);

  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const BlockId b = *it;
    const double c = static_cast<double>(cost(b));
    Moments agg;  // moments of the suffix *after* b (0 per terminating edge)
    bool first = true;
    std::size_t out_edges = 0;
    for (BlockId s : cfg.successors(b)) {
      if (in_region[s]) {
        const Moments& child = m[s];
        agg.count += child.count;
        agg.sum += child.sum;
        agg.sumsq += child.sumsq;
        if (first || child.min < agg.min) agg.min = first ? child.min : std::min(agg.min, child.min);
        if (first || child.max > agg.max) agg.max = first ? child.max : std::max(agg.max, child.max);
        first = false;
      } else {
        ++out_edges;
      }
    }
    if (cfg.successors(b).empty()) out_edges = 1;  // ret terminates one path
    if (out_edges > 0) {
      agg.count += static_cast<double>(out_edges);
      // Terminating edges contribute suffix total 0.
      if (first || 0.0 < agg.min) agg.min = first ? 0.0 : std::min(agg.min, 0.0);
      if (first || 0.0 > agg.max) agg.max = first ? 0.0 : std::max(agg.max, 0.0);
      first = false;
    }
    // Shift all suffix totals by c: moments of (c + X).
    Moments& out = m[b];
    out.count = agg.count;
    out.sum = agg.sum + c * agg.count;
    out.sumsq = agg.sumsq + 2.0 * c * agg.sum + c * c * agg.count;
    out.min = agg.min + c;
    out.max = agg.max + c;
    computed[b] = true;
  }

  const Moments& root = m[start];
  if (!computed[start] || root.count <= 0.0) return result;
  result.valid = true;
  result.count = root.count;
  result.mean = root.sum / root.count;
  const double var = std::max(0.0, root.sumsq / root.count - result.mean * result.mean);
  result.stddev = std::sqrt(var);
  result.min = root.min;
  result.max = root.max;
  return result;
}

PathStatsResult function_path_stats(const Cfg& cfg, const BlockCostFn& cost) {
  std::vector<bool> in_region(cfg.num_blocks(), false);
  for (std::size_t b = 0; b < cfg.num_blocks(); ++b) {
    in_region[b] = cfg.reachable(static_cast<BlockId>(b));
  }
  if (cfg.num_blocks() == 0) return {};
  return region_path_stats(cfg, ir::Function::kEntry, in_region, cost);
}

}  // namespace detlock::analysis
