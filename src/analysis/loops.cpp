#include "analysis/loops.hpp"

#include <algorithm>

namespace detlock::analysis {

LoopInfo::LoopInfo(const Cfg& cfg, const DominatorTree& domtree) {
  const std::size_t n = cfg.num_blocks();
  is_header_.assign(n, false);
  depth_.assign(n, 0);

  for (std::size_t b = 0; b < n; ++b) {
    if (!cfg.reachable(static_cast<BlockId>(b))) continue;
    for (BlockId succ : cfg.successors(static_cast<BlockId>(b))) {
      if (domtree.dominates(succ, static_cast<BlockId>(b))) {
        back_edges_.push_back(BackEdge{static_cast<BlockId>(b), succ});
        is_header_[succ] = true;
      }
    }
  }

  // Collect each natural loop's body (header + all blocks that reach a
  // latch without passing through the header) and bump depths.  Back edges
  // sharing a header describe one loop, so bodies are unioned per header
  // before the depth bump.  Bodies are retained for loop-region consumers
  // (Opt4 region checks, the static checkers' per-iteration analyses).
  bodies_.assign(n, {});
  empty_body_.assign(n, false);
  for (std::size_t h = 0; h < n; ++h) {
    if (!is_header_[h]) continue;
    const BlockId header = static_cast<BlockId>(h);
    std::vector<bool> in_loop(n, false);
    in_loop[header] = true;
    std::vector<BlockId> stack;
    for (const BackEdge& edge : back_edges_) {
      if (edge.to == header && !in_loop[edge.from]) {
        in_loop[edge.from] = true;
        stack.push_back(edge.from);
      }
    }
    while (!stack.empty()) {
      const BlockId b = stack.back();
      stack.pop_back();
      for (BlockId p : cfg.predecessors(b)) {
        if (!in_loop[p]) {
          in_loop[p] = true;
          stack.push_back(p);
        }
      }
    }
    for (std::size_t b = 0; b < n; ++b) {
      if (in_loop[b]) ++depth_[b];
    }
    headers_.push_back(header);
    bodies_[header] = std::move(in_loop);
  }
}

const std::vector<bool>& LoopInfo::loop_body(BlockId header) const {
  if (header >= bodies_.size() || !is_header_[header]) return empty_body_;
  return bodies_[header];
}

bool LoopInfo::is_back_edge(BlockId from, BlockId to) const {
  return std::any_of(back_edges_.begin(), back_edges_.end(),
                     [&](const BackEdge& e) { return e.from == from && e.to == to; });
}

}  // namespace detlock::analysis
