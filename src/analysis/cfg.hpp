// Control-flow graph view of a function.
//
// The IR stores only successor edges (in terminators); CFG materializes
// predecessor lists, reverse post-order, and reachability in one pass so the
// dominator/loop analyses and the DetLock optimizations can query them in
// O(1).  A CFG is a snapshot: passes that mutate block structure rebuild it.
#pragma once

#include <vector>

#include "ir/function.hpp"

namespace detlock::analysis {

using ir::BlockId;

class Cfg {
 public:
  explicit Cfg(const ir::Function& func);

  std::size_t num_blocks() const { return succs_.size(); }

  const std::vector<BlockId>& successors(BlockId b) const { return succs_[b]; }
  const std::vector<BlockId>& predecessors(BlockId b) const { return preds_[b]; }

  bool reachable(BlockId b) const { return reachable_[b]; }

  /// Blocks in reverse post-order of a DFS from entry (unreachable blocks
  /// excluded).  Entry is always first.
  const std::vector<BlockId>& rpo() const { return rpo_; }

  /// Position of block in rpo(); blocks earlier in RPO dominate-or-precede
  /// later ones along forward edges.  Unreachable blocks map to ~0.
  std::size_t rpo_index(BlockId b) const { return rpo_index_[b]; }

 private:
  std::vector<std::vector<BlockId>> succs_;
  std::vector<std::vector<BlockId>> preds_;
  std::vector<bool> reachable_;
  std::vector<BlockId> rpo_;
  std::vector<std::size_t> rpo_index_;
};

}  // namespace detlock::analysis
