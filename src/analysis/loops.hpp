// Natural-loop detection.
//
// Optimization 4 looks at back edges ("we check for back edges and if ...
// the clock of the block from which the backedge is originating is less than
// a certain threshold ... we merge its clock value to that block's clock").
// Optimization 2a refuses merge blocks that are loop headers, and
// Optimization 2b compares *loop depth* of the two shift candidates.
#pragma once

#include <vector>

#include "analysis/dominators.hpp"

namespace detlock::analysis {

struct BackEdge {
  BlockId from = 0;  // latch
  BlockId to = 0;    // header (dominates `from`)
};

class LoopInfo {
 public:
  LoopInfo(const Cfg& cfg, const DominatorTree& domtree);

  const std::vector<BackEdge>& back_edges() const { return back_edges_; }

  bool is_loop_header(BlockId b) const { return is_header_[b]; }

  /// Number of natural loops containing b (0 = not in any loop).
  unsigned loop_depth(BlockId b) const { return depth_[b]; }

  /// True if edge from->to is a back edge (to dominates from).
  bool is_back_edge(BlockId from, BlockId to) const;

  /// True if any block of the function is a loop header (used by Opt1's
  /// hasLoops check).
  bool has_loops() const { return !back_edges_.empty(); }

  /// Headers of all natural loops, in block-id order.
  const std::vector<BlockId>& headers() const { return headers_; }

  /// Body of the natural loop with the given header (header included; back
  /// edges sharing a header are unioned into one loop).  Empty for
  /// non-headers.
  const std::vector<bool>& loop_body(BlockId header) const;

 private:
  std::vector<BackEdge> back_edges_;
  std::vector<bool> is_header_;
  std::vector<unsigned> depth_;
  std::vector<BlockId> headers_;
  std::vector<std::vector<bool>> bodies_;  // indexed by header BlockId
  std::vector<bool> empty_body_;           // returned for non-headers
};

}  // namespace detlock::analysis
