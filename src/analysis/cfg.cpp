#include "analysis/cfg.hpp"

#include <algorithm>

namespace detlock::analysis {

Cfg::Cfg(const ir::Function& func) {
  const std::size_t n = func.num_blocks();
  succs_.resize(n);
  preds_.resize(n);
  reachable_.assign(n, false);
  rpo_index_.assign(n, static_cast<std::size_t>(-1));

  for (std::size_t b = 0; b < n; ++b) {
    std::vector<BlockId> s = func.block(static_cast<BlockId>(b)).successors();
    // Dedupe while preserving order: a condbr with both arms equal is a
    // single CFG edge.
    std::vector<BlockId> unique;
    for (BlockId t : s) {
      if (std::find(unique.begin(), unique.end(), t) == unique.end()) unique.push_back(t);
    }
    succs_[b] = std::move(unique);
  }

  // Iterative DFS computing post-order; recursion would overflow on the
  // deep chain CFGs the workload generators emit.
  std::vector<BlockId> post_order;
  post_order.reserve(n);
  if (n > 0) {
    std::vector<std::size_t> next_child(n, 0);
    std::vector<BlockId> stack;
    stack.push_back(ir::Function::kEntry);
    reachable_[ir::Function::kEntry] = true;
    while (!stack.empty()) {
      const BlockId b = stack.back();
      if (next_child[b] < succs_[b].size()) {
        const BlockId child = succs_[b][next_child[b]++];
        if (!reachable_[child]) {
          reachable_[child] = true;
          stack.push_back(child);
        }
      } else {
        post_order.push_back(b);
        stack.pop_back();
      }
    }
  }

  rpo_.assign(post_order.rbegin(), post_order.rend());
  for (std::size_t i = 0; i < rpo_.size(); ++i) rpo_index_[rpo_[i]] = i;

  for (std::size_t b = 0; b < n; ++b) {
    if (!reachable_[b]) continue;
    for (BlockId t : succs_[b]) preds_[t].push_back(static_cast<BlockId>(b));
  }
}

}  // namespace detlock::analysis
