#include "racedetect/hb_detector.hpp"

#include <algorithm>

namespace detlock::racedetect {

using runtime::BarrierId;
using runtime::CondVarId;
using runtime::MutexId;
using runtime::ThreadId;

HbRaceDetector::HbRaceDetector() : focus_mode_(false) {}

HbRaceDetector::HbRaceDetector(const std::vector<std::int64_t>& focus_addrs) : focus_mode_(true) {
  for (const std::int64_t a : focus_addrs) focus_.emplace(a, FocusAddr{});
}

HbRaceDetector::ThreadState& HbRaceDetector::thread_state(ThreadId t) {
  if (t >= threads_.size()) threads_.resize(t + 1);
  ThreadState& ts = threads_[t];
  if (!ts.init) {
    // FastTrack initialization: each thread starts knowing one event of its
    // own (clock 1), so fresh epochs are never mistaken for "none" (0).
    ts.vc.set(t, 1);
    ts.init = true;
  }
  return ts;
}

// ---- synchronization edges -------------------------------------------------
//
// Every hook below mutates at most the states named in its comment and
// bumps `version` whenever a thread's clock changes, maintaining the
// segment invariant finalize() relies on: within one (thread, version) the
// vector clock is constant.

void HbRaceDetector::on_thread_start(ThreadId child, ThreadId parent) {
  const std::lock_guard<std::mutex> g(mu_);
  // Grow threads_ once up front: thread_state() can reallocate the vector,
  // so taking two references requires the larger id to be resident first.
  thread_state(std::max(child, parent));
  ThreadState& p = thread_state(parent);
  ThreadState& c = thread_state(child);
  c.vc.join(p.vc);  // fork edge: child begins knowing everything the parent did
  ++c.version;
  p.vc.bump(parent);  // the spawn ends the parent's segment
  ++p.version;
}

void HbRaceDetector::on_join(ThreadId joiner, ThreadId child) {
  const std::lock_guard<std::mutex> g(mu_);
  thread_state(std::max(joiner, child));  // see on_thread_start
  // The child's clock is frozen by now (its last event preceded the finish
  // the joiner observed), so reading it here is exact.
  ThreadState& j = thread_state(joiner);
  j.vc.join(thread_state(child).vc);
  ++j.version;
}

void HbRaceDetector::on_acquire(ThreadId self, MutexId mutex, std::uint64_t /*clock*/) {
  const std::lock_guard<std::mutex> g(mu_);
  ThreadState& ts = thread_state(self);
  const auto it = locks_.find(mutex);
  if (it != locks_.end()) ts.vc.join(it->second);
  ++ts.version;
}

void HbRaceDetector::on_release(ThreadId self, MutexId mutex, std::uint64_t /*clock*/) {
  const std::lock_guard<std::mutex> g(mu_);
  ThreadState& ts = thread_state(self);
  locks_[mutex] = ts.vc;  // L_m := C_t
  ts.vc.bump(self);       // the release ends the segment
  ++ts.version;
}

void HbRaceDetector::on_barrier_arrive(ThreadId self, BarrierId barrier,
                                       std::uint64_t generation) {
  const std::lock_guard<std::mutex> g(mu_);
  rounds_[{barrier, generation}].vc.join(thread_state(self).vc);
  ++rounds_[{barrier, generation}].arrivals;
}

void HbRaceDetector::on_barrier_depart(ThreadId self, BarrierId barrier,
                                       std::uint64_t generation) {
  const std::lock_guard<std::mutex> g(mu_);
  const auto key = std::make_pair(barrier, generation);
  const auto it = rounds_.find(key);
  ThreadState& ts = thread_state(self);
  if (it != rounds_.end()) {
    ts.vc.join(it->second.vc);  // every arrival happens-before every departure
    if (++it->second.departs == it->second.arrivals) rounds_.erase(it);
  }
  ts.vc.bump(self);
  ++ts.version;
}

void HbRaceDetector::on_cond_signal(ThreadId self, CondVarId /*condvar*/, ThreadId target,
                                    std::uint64_t /*clock*/) {
  const std::lock_guard<std::mutex> g(mu_);
  ThreadState& ts = thread_state(self);
  if (target >= mailbox_.size()) mailbox_.resize(target + 1);
  mailbox_[target] = ts.vc;  // delivered to exactly this waiter at its wake
  ts.vc.bump(self);
  ++ts.version;
}

void HbRaceDetector::on_cond_wake(ThreadId waiter, CondVarId /*condvar*/) {
  const std::lock_guard<std::mutex> g(mu_);
  ThreadState& ts = thread_state(waiter);
  if (waiter < mailbox_.size()) {
    ts.vc.join(mailbox_[waiter]);
    mailbox_[waiter] = VectorClock{};
  }
  ++ts.version;
}

namespace {

constexpr bool order_acquires(runtime::AtomicOp::Order o) {
  return o == runtime::AtomicOp::Order::kAcquire || o == runtime::AtomicOp::Order::kAcqRel ||
         o == runtime::AtomicOp::Order::kSeqCst;
}
constexpr bool order_releases(runtime::AtomicOp::Order o) {
  return o == runtime::AtomicOp::Order::kRelease || o == runtime::AtomicOp::Order::kAcqRel ||
         o == runtime::AtomicOp::Order::kSeqCst;
}

}  // namespace

void HbRaceDetector::on_atomic(ThreadId self, const runtime::AtomicOp& op, std::int64_t observed,
                               std::uint64_t /*clock*/) {
  using Kind = runtime::AtomicOp::Kind;
  const std::lock_guard<std::mutex> g(mu_);
  ThreadState& ts = thread_state(self);
  // What the operation does to the cell (model in the header comment).  A
  // CAS writes only when the observed old value matched its expected
  // operand; everything except a plain store reads.
  const bool reads = op.kind != Kind::kStore;
  const bool writes = op.kind == Kind::kStore || op.kind == Kind::kAdd ||
                      op.kind == Kind::kExchange ||
                      (op.kind == Kind::kCas && observed == op.operand);
  if (reads && order_acquires(op.order)) {
    const auto it = atomic_rel_.find(op.addr);
    if (it != atomic_rel_.end()) {
      ts.vc.join(it->second);
      ++ts.version;
    }
  }
  if (writes) {
    if (order_releases(op.order)) {
      atomic_rel_[op.addr] = ts.vc;  // publish: later acquires of addr join this
      ts.vc.bump(self);              // the release ends the segment
      ++ts.version;
    } else {
      // Relaxed write: breaks the release chain -- a later acquire read
      // observes this store, which synchronizes with nothing.
      atomic_rel_.erase(op.addr);
    }
  }
}

void HbRaceDetector::on_fence(ThreadId self, runtime::AtomicOp::Order order,
                              std::uint64_t /*clock*/) {
  const std::lock_guard<std::mutex> g(mu_);
  ThreadState& ts = thread_state(self);
  if (order_acquires(order)) {
    ts.vc.join(fence_vc_);
    ++ts.version;
  }
  if (order_releases(order)) {
    fence_vc_.join(ts.vc);
    ts.vc.bump(self);
    ++ts.version;
  }
}

// ---- memory accesses -------------------------------------------------------

void HbRaceDetector::on_access(ThreadId thread, std::int64_t addr, bool is_write,
                               const std::vector<MutexId>& /*held*/, interp::AccessSite site) {
  const std::lock_guard<std::mutex> g(mu_);
  ++accesses_;
  if (thread >= ordinals_.size()) ordinals_.resize(thread + 1, 0);
  const std::uint64_t ordinal = ++ordinals_[thread];
  ThreadState& ts = thread_state(thread);

  if (focus_mode_) {
    const auto it = focus_.find(addr);
    if (it == focus_.end()) return;
    FocusAddr& f = it->second;
    if (thread >= f.logged_read.size()) {
      f.logged_read.resize(thread + 1, 0);
      f.logged_write.resize(thread + 1, 0);
    }
    std::uint64_t& logged = is_write ? f.logged_write[thread] : f.logged_read[thread];
    if (logged == ts.version + 1) return;  // this segment already has its first
    logged = ts.version + 1;
    f.entries.push_back(FocusEntry{thread, is_write, site, ordinal, ts.vc.get(thread), ts.vc});
    return;
  }

  AddrMeta& m = meta_[addr];
  if (m.racy) return;  // one race per address; the focus pass refines it
  const VectorClock& C = ts.vc;
  if (is_write) {
    bool race = m.write.some() && !epoch_leq(m.write, C);
    if (!race) {
      race = m.read_shared ? !m.read_vc.leq(C) : (m.read.some() && !epoch_leq(m.read, C));
    }
    if (race) {
      m.racy = true;
      racy_.insert(addr);
      return;
    }
    m.write = Epoch{thread, C.get(thread)};
    // All prior reads are ordered before this write; later conflicts with
    // them are covered transitively through the write epoch.
    m.read = Epoch{};
    m.read_vc = VectorClock{};
    m.read_shared = false;
  } else {
    if (m.write.some() && !epoch_leq(m.write, C)) {
      m.racy = true;
      racy_.insert(addr);
      return;
    }
    const Epoch mine{thread, C.get(thread)};
    if (m.read_shared) {
      m.read_vc.set(thread, mine.clock);
    } else if (!m.read.some() || m.read.tid == thread || epoch_leq(m.read, C)) {
      m.read = mine;  // still totally ordered: stay in the epoch fast path
    } else {
      // Two concurrent reads: promote to a full read vector clock.
      m.read_vc = VectorClock{};
      m.read_vc.set(m.read.tid, m.read.clock);
      m.read_vc.set(thread, mine.clock);
      m.read = Epoch{};
      m.read_shared = true;
    }
  }
}

// ---- results ---------------------------------------------------------------

bool HbRaceDetector::race_detected() const {
  const std::lock_guard<std::mutex> g(mu_);
  return !racy_.empty();
}

std::vector<std::int64_t> HbRaceDetector::racy_addresses() const {
  const std::lock_guard<std::mutex> g(mu_);
  return {racy_.begin(), racy_.end()};
}

std::uint64_t HbRaceDetector::accesses_observed() const {
  const std::lock_guard<std::mutex> g(mu_);
  return accesses_;
}

std::vector<Race> HbRaceDetector::finalize(const ir::Module* module) const {
  const std::lock_guard<std::mutex> g(mu_);
  std::vector<Race> out;
  for (const auto& [addr, f] : focus_) {
    std::vector<FocusEntry> entries = f.entries;
    std::sort(entries.begin(), entries.end(), [](const FocusEntry& a, const FocusEntry& b) {
      if (a.thread != b.thread) return a.thread < b.thread;
      if (a.ordinal != b.ordinal) return a.ordinal < b.ordinal;
      return a.is_write < b.is_write;
    });
    const auto happens_before = [](const FocusEntry& a, const FocusEntry& b) {
      return a.thread_clock <= b.vc.get(a.thread);
    };
    bool found = false;
    for (std::size_t i = 0; i < entries.size() && !found; ++i) {
      for (std::size_t j = i + 1; j < entries.size() && !found; ++j) {
        const FocusEntry& a = entries[i];
        const FocusEntry& b = entries[j];
        if (a.thread == b.thread) continue;
        if (!a.is_write && !b.is_write) continue;
        if (happens_before(a, b) || happens_before(b, a)) continue;
        Race r;
        r.addr = addr;
        r.detector = "hb";
        const auto fill = [&](Access& acc, const FocusEntry& e) {
          acc.thread = e.thread;
          acc.is_write = e.is_write;
          acc.function = function_name(module, e.site.func);
          acc.instr_index = e.site.instr;
          acc.ordinal = e.ordinal;
          acc.thread_clock = e.thread_clock;
          acc.vc = e.vc.components();
        };
        fill(r.first, a);
        fill(r.second, b);
        out.push_back(std::move(r));
        found = true;
      }
    }
  }
  return out;
}

}  // namespace detlock::racedetect
