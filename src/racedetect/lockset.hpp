// Eraser-style lockset race detector.
//
// Weak determinism (paper Sec. I) only covers race-free programs; the paper
// points users at Valgrind to establish race freedom.  This detector is the
// in-repo equivalent for interpreted programs: it implements the classic
// Eraser state machine (Savage et al., SOSP '97) over every load/store the
// engine reports.
//
// Per address: Virgin -> Exclusive(owner) on first access; on the first
// access by a second thread the candidate lockset C(v) is initialized to
// the intersection of the owner's last lockset with the second thread's
// held locks (a refinement over classic Eraser, which forgets the owner's
// locks and misses inconsistent-lock races until the owner's next access);
// the state becomes Shared (reads only) or SharedModified; every later
// access refines C(v) by intersection.  An empty C(v) in SharedModified
// state is reported as a race.
//
// Barrier awareness: classic Eraser reports false positives on programs
// synchronized by barriers (write-phase / barrier / read-phase).  The
// engine reports barrier departures via on_barrier(); the detector then
// resets all address states once per barrier round, because the barrier
// orders every earlier access before every later one.  The reset is
// conservative in the benign direction only across the barrier -- races
// *within* one phase are still caught.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "interp/observer.hpp"
#include "racedetect/report.hpp"

namespace detlock::ir {
class Module;
}

namespace detlock::racedetect {

class LocksetRaceDetector final : public interp::MemoryAccessObserver {
 public:
  /// `module` resolves report function names; null prints "@#id" (unit
  /// tests drive the hooks directly and do not need names).
  explicit LocksetRaceDetector(const ir::Module* module = nullptr) : module_(module) {}

  // The default argument keeps direct unit-test calls terse.
  void on_access(runtime::ThreadId thread, std::int64_t addr, bool is_write,
                 const std::vector<runtime::MutexId>& held,
                 interp::AccessSite site = {}) override;

  /// Legacy per-round entry point (also unit-test surface); the backend
  /// hook below forwards here once per thread per round.
  void on_barrier(runtime::ThreadId thread);
  void on_barrier_depart(runtime::ThreadId self, runtime::BarrierId barrier,
                         std::uint64_t generation) override;
  void on_join(runtime::ThreadId joiner, runtime::ThreadId child) override;

  /// One report per racy address (first detection wins), in shared
  /// racedetect::Race form: `second` is the access that emptied the
  /// lockset, `first` the most recent access by a different thread.  Unlike
  /// the HB detector's, these pairs are interleaving-dependent even under
  /// deterministic execution (the state machine observes one linearization
  /// of racy accesses) -- which is exactly why the HB detector owns the
  /// reproducibility guarantee and lockset is the differential cross-check.
  std::vector<Race> races() const;
  bool race_detected() const;
  std::uint64_t accesses_observed() const;

 private:
  enum class State : std::uint8_t { kVirgin, kExclusive, kShared, kSharedModified, kRacy };

  struct AddrState {
    State state = State::kVirgin;
    runtime::ThreadId owner = 0;
    std::vector<runtime::MutexId> owner_locks;      // lockset of the owner's last exclusive access
    std::vector<runtime::MutexId> candidate_locks;  // sorted
    Access last;        // most recent access
    Access prev_other;  // most recent access by a thread other than last's
    bool has_last = false;
    bool has_prev_other = false;
  };

  static std::vector<runtime::MutexId> sorted(std::vector<runtime::MutexId> locks);
  static std::vector<runtime::MutexId> intersect(const std::vector<runtime::MutexId>& a,
                                                 const std::vector<runtime::MutexId>& b);

  const ir::Module* module_ = nullptr;
  mutable std::mutex mu_;
  std::unordered_map<std::int64_t, AddrState> addrs_;
  std::vector<Race> races_;
  /// Per-thread count of accesses seen so far (report timestamps, matching
  /// the HB detector's ordinals).
  std::unordered_map<runtime::ThreadId, std::uint64_t> ordinals_;
  std::uint64_t accesses_ = 0;
  std::unordered_map<runtime::ThreadId, std::uint64_t> barrier_rounds_;
  std::uint64_t barrier_epoch_ = 0;
};

}  // namespace detlock::racedetect
