// Vector clocks and epochs for the happens-before race detector
// (FastTrack's representation: full clocks per thread and per lock, an
// epoch -- one (thread, clock) pair -- per last write and, in the common
// case, per last read).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/config.hpp"

namespace detlock::racedetect {

/// Grow-on-demand vector clock over thread ids.  Components default to 0;
/// reading past the stored size is 0, writing grows the vector.
class VectorClock {
 public:
  std::uint64_t get(runtime::ThreadId t) const {
    return t < c_.size() ? c_[t] : 0;
  }
  void set(runtime::ThreadId t, std::uint64_t v);
  void bump(runtime::ThreadId t) { set(t, get(t) + 1); }
  /// Componentwise max (this := this ⊔ other).
  void join(const VectorClock& other);
  /// Componentwise <=: "every event this clock knows, other knows too".
  bool leq(const VectorClock& other) const;
  std::size_t size() const { return c_.size(); }
  const std::vector<std::uint64_t>& components() const { return c_; }

 private:
  std::vector<std::uint64_t> c_;
};

/// One (thread, clock) pair: FastTrack's compressed "last access" when all
/// previous accesses of a kind are totally ordered.  clock == 0 means
/// "none yet" (thread clocks start at 1).
struct Epoch {
  runtime::ThreadId tid = 0;
  std::uint64_t clock = 0;

  bool some() const { return clock != 0; }
};

/// e happens-before (or equals) the point described by vc:
/// the vc's owner has seen e.tid's clock reach at least e.clock.
inline bool epoch_leq(const Epoch& e, const VectorClock& vc) {
  return e.clock <= vc.get(e.tid);
}

}  // namespace detlock::racedetect
