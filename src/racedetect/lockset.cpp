#include "racedetect/lockset.hpp"

#include <algorithm>

namespace detlock::racedetect {

std::vector<runtime::MutexId> LocksetRaceDetector::sorted(std::vector<runtime::MutexId> locks) {
  std::sort(locks.begin(), locks.end());
  return locks;
}

std::vector<runtime::MutexId> LocksetRaceDetector::intersect(const std::vector<runtime::MutexId>& a,
                                                             const std::vector<runtime::MutexId>& b) {
  std::vector<runtime::MutexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

void LocksetRaceDetector::on_access(runtime::ThreadId thread, std::int64_t addr, bool is_write,
                                    const std::vector<runtime::MutexId>& held,
                                    interp::AccessSite site) {
  const std::lock_guard<std::mutex> guard(mu_);
  ++accesses_;
  AddrState& st = addrs_[addr];
  Access current;
  current.thread = thread;
  current.is_write = is_write;
  current.function = function_name(module_, site.func);
  current.instr_index = site.instr;
  current.ordinal = ++ordinals_[thread];
  // Update the access history on exit no matter which transition ran below
  // (but not after a report: `last` then stays as the racing pair).
  struct LastUpdater {
    AddrState& st;
    Access& current;
    ~LastUpdater() {
      if (st.state == State::kRacy) return;
      if (st.has_last && st.last.thread != current.thread) {
        st.prev_other = st.last;
        st.has_prev_other = true;
      }
      st.last = std::move(current);
      st.has_last = true;
    }
  } update{st, current};
  switch (st.state) {
    case State::kVirgin:
      st.state = State::kExclusive;
      st.owner = thread;
      st.owner_locks = sorted(held);
      return;
    case State::kExclusive:
      if (thread == st.owner) {
        st.owner_locks = sorted(held);  // remember the last exclusive lockset
        return;
      }
      // First access by a second thread: any lock consistently protecting
      // the location must have been held at the owner's last access AND now.
      st.candidate_locks = intersect(st.owner_locks, sorted(held));
      st.state = is_write ? State::kSharedModified : State::kShared;
      break;
    case State::kShared:
      st.candidate_locks = intersect(st.candidate_locks, sorted(held));
      if (is_write) st.state = State::kSharedModified;
      break;
    case State::kSharedModified:
      st.candidate_locks = intersect(st.candidate_locks, sorted(held));
      break;
    case State::kRacy:
      return;  // already reported
  }
  if (st.state == State::kSharedModified && st.candidate_locks.empty()) {
    st.state = State::kRacy;
    Race r;
    r.addr = addr;
    r.detector = "lockset";
    // Pair the trigger with the latest access from another thread (one
    // exists: Shared* states require a second thread).
    r.first = (st.has_last && st.last.thread != current.thread) ? st.last : st.prev_other;
    r.second = current;
    races_.push_back(std::move(r));
  }
}

void LocksetRaceDetector::on_barrier_depart(runtime::ThreadId self, runtime::BarrierId /*barrier*/,
                                            std::uint64_t /*generation*/) {
  // The backend fires one departure per thread per round; the per-thread
  // round counter below turns that into one reset per round.
  on_barrier(self);
}

void LocksetRaceDetector::on_barrier(runtime::ThreadId thread) {
  const std::lock_guard<std::mutex> guard(mu_);
  const std::uint64_t round = ++barrier_rounds_[thread];
  if (round > barrier_epoch_) {
    barrier_epoch_ = round;
    // The barrier happens-after every access of the previous phase and
    // happens-before every access of the next: restart the state machines.
    addrs_.clear();
  }
}

void LocksetRaceDetector::on_join(runtime::ThreadId /*joiner*/, runtime::ThreadId child) {
  const std::lock_guard<std::mutex> guard(mu_);
  // The child is finished and its accesses happen-before everything the
  // joiner does next.  Demote addresses the finished child touched: a
  // cheap, sound-for-finished-threads approximation is to restart the state
  // machine for addresses whose exclusive owner was the child and to drop
  // the child's influence on shared ones by resetting them to Exclusive
  // ownership of a synthetic "joined" epoch.  Races already reported stay
  // reported.
  for (auto& [addr, st] : addrs_) {
    (void)addr;
    if (st.state == State::kRacy) continue;
    if (st.state == State::kExclusive && st.owner == child) {
      st.state = State::kVirgin;
      st.owner_locks.clear();
    } else if (st.state == State::kShared || st.state == State::kSharedModified) {
      // Conservative reset: treat the post-join world as a fresh phase.
      // This can mask a same-phase race between two still-running threads
      // on an address the child also touched; the barrier reset has the
      // same documented tradeoff.
      st.state = State::kVirgin;
      st.owner_locks.clear();
      st.candidate_locks.clear();
    }
  }
}

std::vector<Race> LocksetRaceDetector::races() const {
  const std::lock_guard<std::mutex> guard(mu_);
  return races_;
}

bool LocksetRaceDetector::race_detected() const {
  const std::lock_guard<std::mutex> guard(mu_);
  return !races_.empty();
}

std::uint64_t LocksetRaceDetector::accesses_observed() const {
  const std::lock_guard<std::mutex> guard(mu_);
  return accesses_;
}

}  // namespace detlock::racedetect
