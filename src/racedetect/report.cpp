#include "racedetect/report.hpp"

#include <sstream>

#include "ir/module.hpp"

namespace detlock::racedetect {

std::string function_name(const ir::Module* module, std::uint32_t func_id) {
  if (module != nullptr && func_id < module->functions().size()) {
    return "@" + module->function(func_id).name();
  }
  return "@#" + std::to_string(func_id);
}

std::string to_text(const Access& a) {
  std::ostringstream os;
  os << (a.is_write ? "write " : "read  ") << a.function << '+' << a.instr_index << " thread "
     << a.thread << " access " << a.ordinal;
  if (!a.vc.empty()) {
    os << " clock " << a.thread_clock << " vc [";
    for (std::size_t i = 0; i < a.vc.size(); ++i) {
      if (i != 0) os << ',';
      os << a.vc[i];
    }
    os << ']';
  }
  return os.str();
}

std::string to_text(const Race& r) {
  std::ostringstream os;
  os << "race [" << r.detector << "] addr " << r.addr << '\n';
  os << "  first:  " << to_text(r.first) << '\n';
  os << "  second: " << to_text(r.second) << '\n';
  os << "  static-lint: " << (r.static_hit ? "flagged" : "silent") << '\n';
  return os.str();
}

std::string serialize_races(const std::vector<Race>& races) {
  std::string out;
  for (const Race& r : races) out += to_text(r);
  return out;
}

std::string to_text(const RunRecipe& r) {
  std::ostringstream os;
  os << "reproduce: mode=" << r.mode << " engine=" << r.engine << " publication=" << r.publication
     << " chaos-seed=" << r.chaos_seed;
  if (!r.entry.empty()) os << " entry=@" << r.entry;
  if (!r.program.empty()) os << " program=" << r.program;
  return os.str();
}

void write_access(JsonWriter& w, const Access& a) {
  w.begin_object();
  w.field("kind", a.is_write ? "write" : "read");
  w.field("function", a.function);
  w.field("instr_index", static_cast<std::uint64_t>(a.instr_index));
  w.field("thread", static_cast<std::uint64_t>(a.thread));
  w.field("access_ordinal", a.ordinal);
  if (!a.vc.empty()) {
    w.field("thread_clock", a.thread_clock);
    w.key("vector_clock");
    w.begin_array();
    for (const std::uint64_t c : a.vc) w.value(c);
    w.end();
  }
  w.end();
}

void write_race(JsonWriter& w, const Race& r) {
  w.begin_object();
  w.field("addr", r.addr);
  w.field("detector", r.detector);
  w.key("first");
  write_access(w, r.first);
  w.key("second");
  write_access(w, r.second);
  w.field("static_lint_hit", r.static_hit);
  w.end();
}

void write_recipe(JsonWriter& w, const RunRecipe& r) {
  w.begin_object();
  if (!r.program.empty()) w.field("program", r.program);
  w.field("mode", r.mode);
  w.field("engine", r.engine);
  w.field("publication", r.publication);
  w.field("chaos_seed", r.chaos_seed);
  if (!r.entry.empty()) w.field("entry", r.entry);
  w.end();
}

}  // namespace detlock::racedetect
