// Shared race-report types: both detectors (Eraser lockset, FastTrack HB)
// describe findings with the same Access/Race structures and print /
// serialize them identically.
//
// Canonical-form contract: serialize_races() is the byte-comparison target
// of the reproducibility tests.  For the HB detector its output is
// byte-identical across engines, repeated runs, and clock publication
// modes, because every field is a deterministic function of the program's
// happens-before order: IR source locations, per-thread executed-
// instruction counts, and the detector's own vector clocks (counts of sync
// events per thread).  Backend logical clocks never appear here -- they
// differ between publication modes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/config.hpp"
#include "support/json.hpp"

namespace detlock::ir {
class Module;
}

namespace detlock::racedetect {

/// One endpoint of a race: what executed, where, and when (in deterministic
/// logical time).
struct Access {
  runtime::ThreadId thread = 0;
  bool is_write = false;
  /// IR source location: "@function" plus the flat instruction index within
  /// it (blocks concatenated in block-id order; engine-independent).
  std::string function;
  std::uint32_t instr_index = 0;
  /// 1-based position of this access in its thread's sequence of shared-
  /// memory accesses.  Counted by the detector itself, so it is independent
  /// of engine, clock placement, and publication mode (raw instruction
  /// counts are not: clock instrumentation differs between placements).
  std::uint64_t ordinal = 0;
  /// HB detector only: the thread's own vector-clock component (its count
  /// of segment-ending sync events) at the access; 0 for lockset.
  std::uint64_t thread_clock = 0;
  /// HB detector only: full vector-clock snapshot at the access -- the
  /// logical-clock schedule that reproduces the race.  Empty for lockset.
  std::vector<std::uint64_t> vc;
};

struct Race {
  std::int64_t addr = 0;
  std::string detector;  // "hb" or "lockset"
  Access first;          // canonical order: smaller (thread, ordinal)
  Access second;
  /// A static --lint "lockset-race" diagnostic anchors in the function of
  /// one of the endpoints (the static-vs-dynamic cross-check).
  bool static_hit = false;
};

/// Everything needed to reproduce the run that produced a report.  Kept
/// OUT of serialize_races(): the findings are engine-independent, the
/// recipe names the run they came from.
struct RunRecipe {
  std::string program;      // input file / module name (may be empty)
  std::string mode;         // detlock / kendo-sim / baseline / clocks-only
  std::string engine;       // decoded / reference
  std::string publication;  // every-update / chunked
  std::uint64_t chaos_seed = 0;  // 0 = chaos off
  std::string entry;        // entry function
};

/// "write @worker+4 thread 1 access 23 clock 2 vc [3,2]".
std::string to_text(const Access& a);
/// One canonical multi-line block per race.
std::string to_text(const Race& r);
/// The canonical report body: one to_text(Race) block per race, in input
/// order.  Empty input yields "".
std::string serialize_races(const std::vector<Race>& races);
std::string to_text(const RunRecipe& r);

/// JSON mirrors of the above (object values; callers manage keys/arrays).
void write_access(JsonWriter& w, const Access& a);
void write_race(JsonWriter& w, const Race& r);
void write_recipe(JsonWriter& w, const RunRecipe& r);

/// "@name" for a function id, via the module when available, "@#<id>"
/// otherwise (unit tests without a module).
std::string function_name(const ir::Module* module, std::uint32_t func_id);

}  // namespace detlock::racedetect
