#include "racedetect/vector_clock.hpp"

#include <algorithm>

namespace detlock::racedetect {

void VectorClock::set(runtime::ThreadId t, std::uint64_t v) {
  if (t >= c_.size()) c_.resize(t + 1, 0);
  c_[t] = v;
}

void VectorClock::join(const VectorClock& other) {
  if (other.c_.size() > c_.size()) c_.resize(other.c_.size(), 0);
  for (std::size_t i = 0; i < other.c_.size(); ++i) c_[i] = std::max(c_[i], other.c_[i]);
}

bool VectorClock::leq(const VectorClock& other) const {
  for (std::size_t i = 0; i < c_.size(); ++i) {
    if (c_[i] > other.get(static_cast<runtime::ThreadId>(i))) return false;
  }
  return true;
}

}  // namespace detlock::racedetect
