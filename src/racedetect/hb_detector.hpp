// FastTrack-style happens-before race detector with exactly-reproducible
// reports (ROADMAP open item 4).
//
// Precision: pure happens-before -- mutex release->acquire, barrier
// rounds, condvar signal->wake, thread create/finish/join all create
// edges, so the fork/join and signal/wait idioms that are Eraser-lockset
// false positives are correctly race-free here, and unsynchronized
// publication that lockset's state machine misses (write-then-read with no
// later write stays in Eraser's Shared state) is correctly reported.
//
// Representation (FastTrack): one vector clock per thread and per lock;
// per address, the last write as an epoch (thread@clock) and reads as an
// epoch until two concurrent reads force promotion to a full read vector
// clock.
//
// Exact reproducibility -- the two-pass design
// --------------------------------------------
// DetLock's weak determinism covers race-free programs only: for a racy
// address, WHICH two accesses a single online FastTrack pass happens to
// flag depends on the physical interleaving.  What IS deterministic is the
// happens-before partial order itself (the sync schedule is deterministic,
// and each thread's access sequence is deterministic whenever racy values
// do not steer control flow -- the same caveat any replay system carries),
// and FastTrack detects at least one race per racy address in ANY
// linearization.  Therefore:
//
//   Pass 1 (detect): online FastTrack.  Output: the SET of racy addresses
//     -- a property of the deterministic partial order, hence stable.
//   Pass 2 (focus): deterministic re-run observing only the racy
//     addresses.  Per (address, thread, vector-clock segment) it logs the
//     first read and first write -- each log entry is a function of one
//     thread's own deterministic execution plus the deterministic sync
//     schedule, so the log is interleaving-independent.
//   finalize(): offline, picks the lexicographically minimal concurrent
//     conflicting pair per address (endpoints ordered by (thread,
//     ordinal)).  Minimality over first-of-segment entries equals
//     minimality over all accesses: an earlier same-segment access has the
//     same vector clock, so it is concurrent with exactly the same events.
//
// The result: byte-identical reports across engines, repeated runs, chaos
// perturbations, and clock publication modes.  Report content never uses
// backend clocks or raw instruction counts (both publication-mode-
// dependent); timestamps are the detector's own vector clocks and
// per-thread access ordinals.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "interp/observer.hpp"
#include "racedetect/report.hpp"
#include "racedetect/vector_clock.hpp"

namespace detlock::racedetect {

class HbRaceDetector final : public interp::SyncObserver {
 public:
  /// Detect mode: FastTrack over every address; result = racy_addresses().
  HbRaceDetector();
  /// Focus mode: segment-log only the given addresses (pass 2); result =
  /// finalize().
  explicit HbRaceDetector(const std::vector<std::int64_t>& focus_addrs);

  // Engine hook.  The default argument keeps direct unit-test calls terse.
  void on_access(runtime::ThreadId thread, std::int64_t addr, bool is_write,
                 const std::vector<runtime::MutexId>& held,
                 interp::AccessSite site = {}) override;

  // Backend hooks.
  void on_thread_start(runtime::ThreadId child, runtime::ThreadId parent) override;
  void on_join(runtime::ThreadId joiner, runtime::ThreadId child) override;
  void on_acquire(runtime::ThreadId self, runtime::MutexId mutex, std::uint64_t clock) override;
  void on_release(runtime::ThreadId self, runtime::MutexId mutex, std::uint64_t clock) override;
  void on_barrier_arrive(runtime::ThreadId self, runtime::BarrierId barrier,
                         std::uint64_t generation) override;
  void on_barrier_depart(runtime::ThreadId self, runtime::BarrierId barrier,
                         std::uint64_t generation) override;
  void on_cond_signal(runtime::ThreadId self, runtime::CondVarId condvar,
                      runtime::ThreadId target, std::uint64_t clock) override;
  void on_cond_wake(runtime::ThreadId waiter, runtime::CondVarId condvar) override;
  /// Atomic edges (both hooks fire in global turn order -- see
  /// runtime/sync_observer.hpp -- so the per-address release state below is
  /// deterministic).  Model:
  ///   * a release-flavored write (rel/acq_rel/seq_cst store, RMW, or
  ///     SUCCESSFUL CAS) publishes the thread's clock to the address;
  ///   * an acquire-flavored read (acq/acq_rel/seq_cst load or RMW -- a
  ///     failed CAS is acquire-only) joins the address's published clock;
  ///   * a non-release write clears the published clock (release-sequence
  ///     breaking);
  ///   * relaxed operations create no edges -- which is exactly what makes
  ///     an under-fenced Peterson's plain accesses racy.
  /// Atomic cells themselves are never race candidates: every atomic op is
  /// turn-serialized, so only PLAIN accesses reach the FastTrack state.
  void on_atomic(runtime::ThreadId self, const runtime::AtomicOp& op, std::int64_t observed,
                 std::uint64_t clock) override;
  /// Fence edges: a single global fence chain.  A release-flavored fence
  /// publishes into it, an acquire-flavored fence joins it.  Fences consume
  /// a turn and execute a host seq_cst fence inside the serialized turn
  /// window, so this is the implementation's real ordering -- stronger than
  /// the C++ abstract machine's fence rules, hence the detector never
  /// reports a race DetLock execution cannot exhibit.
  void on_fence(runtime::ThreadId self, runtime::AtomicOp::Order order,
                std::uint64_t clock) override;

  /// Detect mode: true iff any address had concurrent conflicting accesses.
  bool race_detected() const;
  /// Detect mode: the deterministic racy-address set, sorted.
  std::vector<std::int64_t> racy_addresses() const;
  std::uint64_t accesses_observed() const;

  /// Focus mode: the canonical minimal racing pair per focus address (in
  /// address order; an address with no concurrent pair in this execution
  /// is skipped).  `module` resolves function names; null prints "@#id".
  std::vector<Race> finalize(const ir::Module* module) const;

 private:
  struct ThreadState {
    VectorClock vc;
    /// Segment id: bumped on every vector-clock mutation, so within one
    /// (thread, version) the clock is constant.
    std::uint64_t version = 0;
    bool init = false;
  };
  struct AddrMeta {  // detect mode, per address
    Epoch write;
    Epoch read;           // valid while !read_shared
    VectorClock read_vc;  // valid while read_shared
    bool read_shared = false;
    bool racy = false;
  };
  struct FocusEntry {
    runtime::ThreadId thread;
    bool is_write;
    interp::AccessSite site;
    std::uint64_t ordinal;  // detector-counted per-thread access number
    std::uint64_t thread_clock;
    VectorClock vc;
  };
  struct FocusAddr {
    /// Per-thread version+1 of the last logged read/write (0 = none).
    std::vector<std::uint64_t> logged_read, logged_write;
    std::vector<FocusEntry> entries;
  };
  struct Round {
    VectorClock vc;
    std::uint32_t arrivals = 0;
    std::uint32_t departs = 0;
  };

  ThreadState& thread_state(runtime::ThreadId t);

  mutable std::mutex mu_;
  const bool focus_mode_;
  std::vector<ThreadState> threads_;
  std::unordered_map<runtime::MutexId, VectorClock> locks_;
  /// Per-address release clock of atomic cells (see on_atomic).
  std::unordered_map<std::int64_t, VectorClock> atomic_rel_;
  /// Global fence chain (see on_fence).
  VectorClock fence_vc_;
  std::map<std::pair<runtime::BarrierId, std::uint64_t>, Round> rounds_;
  /// Per-waiter signal mailbox (a thread waits on one condvar at a time,
  /// and only re-queues after its wake hook ran -- see det_backend.cpp).
  std::vector<VectorClock> mailbox_;
  std::unordered_map<std::int64_t, AddrMeta> meta_;  // detect mode
  std::map<std::int64_t, FocusAddr> focus_;          // focus mode (sorted)
  std::set<std::int64_t> racy_;
  /// Per-thread count of accesses seen so far (report timestamps).
  std::vector<std::uint64_t> ordinals_;
  std::uint64_t accesses_ = 0;
};

}  // namespace detlock::racedetect
