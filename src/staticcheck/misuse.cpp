#include "staticcheck/misuse.hpp"

#include <cstdint>
#include <map>
#include <sstream>

#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"

namespace detlock::staticcheck {

namespace {

struct Site {
  FuncId func;
  BlockId block;
  std::size_t instr_index;
};

Diagnostic make_diag(const ir::Module& module, const SyncAnalysis& analysis, Severity severity,
                     const Site& site, std::string message) {
  Diagnostic diag;
  diag.severity = severity;
  diag.checker = "sync-misuse";
  const ir::Function& func = module.function(site.func);
  diag.function = func.name();
  diag.block = func.block(site.block).name();
  diag.instr_index = site.instr_index;
  diag.message = std::move(message);
  std::ostringstream path;
  path << "path:";
  for (const std::string& name : analysis.witness_path(site.func, site.block)) {
    path << " -> " << name;
  }
  diag.witness.push_back(path.str());
  return diag;
}

}  // namespace

void check_misuse(const SyncAnalysis& analysis, std::vector<Diagnostic>& out) {
  const ir::Module& module = analysis.module();

  // Condvar (constant id) -> (bound mutex, first wait site); built in a
  // first sweep so signal sites in other functions can consult it.
  struct Binding {
    std::int64_t mutex;
    Site site;
  };
  std::map<std::int64_t, Binding> cv_binding;
  std::map<std::int64_t, bool> cv_waited;

  auto abstract = [&](const SyncState& state, Reg r) {
    return r < state.regs.size() ? state.regs[r] : AbstractValue::top();
  };

  for (FuncId f = 0; f < module.functions().size(); ++f) {
    const ir::Function& func = module.function(f);
    for (BlockId b = 0; b < func.num_blocks(); ++b) {
      analysis.walk_block(f, b, [&](std::size_t i, const SyncState& state) {
        const ir::Instr& instr = func.block(b).instrs()[i];
        if (instr.op != ir::Opcode::kCondWait) return;
        const AbstractValue cv = abstract(state, instr.a);
        const AbstractValue mutex = abstract(state, instr.b);
        if (!cv.is_const()) return;
        cv_waited[cv.v] = true;
        if (!mutex.is_const()) return;
        const Site site{f, b, i};
        const auto it = cv_binding.find(cv.v);
        if (it == cv_binding.end()) {
          cv_binding.emplace(cv.v, Binding{mutex.v, site});
        } else if (it->second.mutex != mutex.v) {
          std::ostringstream msg;
          msg << "condvar " << cv.v << " waited on with mutex " << mutex.v
              << " but already bound to mutex " << it->second.mutex
              << " (condvars bind permanently to their first mutex)";
          out.push_back(make_diag(module, analysis, Severity::kError, site, msg.str()));
        }
      });
    }
  }

  for (FuncId f = 0; f < module.functions().size(); ++f) {
    const ir::Function& func = module.function(f);
    const analysis::Cfg cfg(func);
    const analysis::DominatorTree domtree(cfg);
    const analysis::LoopInfo loops(cfg, domtree);

    for (BlockId b = 0; b < func.num_blocks(); ++b) {
      analysis.walk_block(f, b, [&](std::size_t i, const SyncState& state) {
        const ir::Instr& instr = func.block(b).instrs()[i];
        const Site site{f, b, i};
        switch (instr.op) {
          case ir::Opcode::kLock: {
            const auto lock = LockRef::from_value(abstract(state, instr.a));
            if (!lock.has_value()) return;
            if (lockset_contains(state.must, *lock)) {
              out.push_back(make_diag(
                  module, analysis, Severity::kError, site,
                  "double lock of " + lock->to_string() +
                      " (already held on every path; detir mutexes are non-recursive)"));
            } else if (lockset_contains(state.may, *lock)) {
              out.push_back(make_diag(module, analysis, Severity::kWarning, site,
                                      "lock of " + lock->to_string() +
                                          " which may already be held on some path"));
            }
            return;
          }
          case ir::Opcode::kUnlock: {
            const auto lock = LockRef::from_value(abstract(state, instr.a));
            if (!lock.has_value()) return;
            if (!lockset_contains(state.may, *lock)) {
              out.push_back(make_diag(module, analysis, Severity::kError, site,
                                      "unlock of " + lock->to_string() +
                                          " which is not held on any path"));
            } else if (!lockset_contains(state.must, *lock)) {
              out.push_back(make_diag(module, analysis, Severity::kWarning, site,
                                      "unlock of " + lock->to_string() +
                                          " which is held on only some paths"));
            }
            return;
          }
          case ir::Opcode::kCondWait: {
            const auto mutex = LockRef::from_value(abstract(state, instr.b));
            if (!mutex.has_value()) return;
            if (!lockset_contains(state.must, *mutex)) {
              out.push_back(make_diag(module, analysis, Severity::kError, site,
                                      "cond_wait without holding its " + mutex->to_string()));
            }
            return;
          }
          case ir::Opcode::kCondSignal:
          case ir::Opcode::kCondBroadcast: {
            const AbstractValue cv = abstract(state, instr.a);
            if (!cv.is_const()) return;
            const char* what =
                instr.op == ir::Opcode::kCondSignal ? "cond_signal" : "cond_broadcast";
            const auto bound = cv_binding.find(cv.v);
            if (bound == cv_binding.end()) {
              if (!cv_waited.count(cv.v)) {
                std::ostringstream msg;
                msg << what << " of condvar " << cv.v << " that is never waited on";
                out.push_back(
                    make_diag(module, analysis, Severity::kWarning, site, msg.str()));
              }
              return;
            }
            const LockRef mutex{LockRef::Kind::kConst, bound->second.mutex};
            if (!lockset_contains(state.must, mutex)) {
              std::ostringstream msg;
              msg << what << " of condvar " << cv.v << " without holding its bound "
                  << mutex.to_string() << " (DESIGN.md section 8 contract)";
              out.push_back(make_diag(module, analysis, Severity::kError, site, msg.str()));
            }
            return;
          }
          case ir::Opcode::kJoin: {
            // Double join: the handle register was already joined on every
            // path and not re-defined since.
            bool already_joined = false;
            for (const Reg r : state.joined_must) {
              if (r == instr.a) already_joined = true;
            }
            if (already_joined) {
              std::ostringstream msg;
              msg << "join of handle %r" << instr.a << " which was already joined on every path";
              out.push_back(make_diag(module, analysis, Severity::kError, site, msg.str()));
              return;
            }
            // Join in a loop of a handle that the loop never re-defines:
            // the second iteration joins an already-joined thread.
            if (loops.loop_depth(b) == 0) return;
            for (const BlockId header : loops.headers()) {
              const std::vector<bool>& body = loops.loop_body(header);
              if (b >= body.size() || !body[b]) continue;
              bool redefined_in_loop = false;
              for (BlockId lb = 0; lb < func.num_blocks(); ++lb) {
                if (lb >= body.size() || !body[lb]) continue;
                for (const ir::Instr& li : func.block(lb).instrs()) {
                  if (ir::has_dst(li.op) && li.dst == instr.a) redefined_in_loop = true;
                }
              }
              if (!redefined_in_loop) {
                std::ostringstream msg;
                msg << "join of handle %r" << instr.a << " inside loop headed by '"
                    << func.block(header).name()
                    << "' but the handle is never re-spawned in the loop";
                out.push_back(make_diag(module, analysis, Severity::kError, site, msg.str()));
                return;  // one report even when nested in several loops
              }
            }
            return;
          }
          default: {
            // Registry-routed atomic lints: any primitive the SyncOpDesc
            // table files under the atomic lint category lands here, so a
            // future atomic op picks these checks up with no edit.
            const ir::SyncOpDesc* desc = ir::sync_op_desc(instr.op);
            if (desc == nullptr || desc->lint != ir::SyncLintCategory::kAtomic) return;
            if (instr.op == ir::Opcode::kAtomicRmw && instr.rmw == ir::AtomicRmwKind::kCas &&
                instr.order == ir::MemOrder::kRelaxed) {
              out.push_back(make_diag(
                  module, analysis, Severity::kWarning, site,
                  "relaxed compare-and-swap establishes no happens-before edge; a CAS "
                  "that guards other memory needs acq_rel or seq_cst ordering"));
              return;
            }
            if (instr.op == ir::Opcode::kAtomicLoad && instr.order == ir::MemOrder::kRelaxed &&
                loops.loop_depth(b) > 0) {
              out.push_back(make_diag(
                  module, analysis, Severity::kNote, site,
                  "relaxed atomic load inside a loop: if this is a spin-wait, the load "
                  "synchronizes-with nothing (use acq to pair with the writer's rel)"));
            }
            return;
          }
        }
      });
    }
  }

  // Unresolvable sync ops: note-level, so they surface without failing the
  // build (the dynamic detector still covers them).
  for (FuncId f = 0; f < module.functions().size(); ++f) {
    if (analysis.func(f).summary.unknown_sync_ops) {
      Diagnostic diag;
      diag.severity = Severity::kNote;
      diag.checker = "sync-misuse";
      diag.function = module.function(f).name();
      diag.message =
          "function performs sync operations whose mutex id the static analysis "
          "cannot resolve (checked dynamically only)";
      out.push_back(std::move(diag));
    }
  }
}

}  // namespace detlock::staticcheck
