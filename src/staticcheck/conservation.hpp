// Static clock-conservation verification.
//
// The dynamic checker (src/pass/conservation.cpp) samples random walks;
// this one covers *every* acyclic path by dynamic programming over the
// CFG's forward edges, complementing it with exhaustive (not sampled)
// guarantees:
//
//   Check A -- materialization fidelity: in the instrumented module, each
//   block's kClockAdd immediates sum to exactly the assignment's clock for
//   that block, clocked (Opt1) functions contain no clock updates, and
//   every size-dependent extern call is preceded by a kClockAddDyn whose
//   coefficients match the extern's declared estimate.
//
//   Check B -- path divergence: for every entry->exit path over forward
//   edges, and for every natural-loop iteration (header to latch over
//   forward edges), the assigned-clock sum stays within
//   |assigned - exact| <= absolute_slack + relative_slack * exact.
//   Maximizing sum(clock - orig - t*orig) and sum(orig - clock - t*orig)
//   over paths makes this a pair of longest-path DPs, so the bound holds
//   for every path, not just the sampled ones.  Retreating edges are
//   dropped from the DP; loop-carried divergence is bounded by the
//   per-iteration check instead.
//
// Configurations without Opt2b/Opt3/Opt4 are checked exactly (zero slack):
// Opt1 and Opt2a only relocate updates, they never change a path's sum.
#pragma once

#include <cstdint>
#include <vector>

#include "pass/clock_assignment.hpp"
#include "pass/options.hpp"
#include "staticcheck/diagnostics.hpp"

namespace detlock::staticcheck {

struct ConservationTolerance {
  double relative_slack = 0.0;
  std::int64_t absolute_slack = 0;
};

/// Tolerance implied by the pipeline options: exact for configurations
/// whose transformations are value-preserving, the Opt2b/Opt3/Opt4
/// divergence envelope otherwise.
ConservationTolerance tolerance_for(const pass::PassOptions& options);

/// Checks `instrumented` (output of instrument_module with the same
/// `assignment` and `options`) and appends diagnostics for violations.
void check_clock_conservation(const ir::Module& instrumented,
                              const pass::ClockAssignment& assignment,
                              const pass::PassOptions& options, std::vector<Diagnostic>& out);

/// As above with an explicit tolerance (tests tighten or loosen it).
void check_clock_conservation(const ir::Module& instrumented,
                              const pass::ClockAssignment& assignment,
                              const pass::PassOptions& options, const ConservationTolerance& tol,
                              std::vector<Diagnostic>& out);

}  // namespace detlock::staticcheck
