// Structured diagnostics emitted by the static checkers.
//
// Every checker in src/staticcheck reports through this type so tools can
// print, count and gate on findings uniformly (detlockc --lint exits with a
// dedicated code when any kError diagnostic is present).  A diagnostic
// always names the program point it anchors to and carries a human-readable
// witness: a control-flow path, a lock cycle, or the list of conflicting
// sites that justify the finding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace detlock::staticcheck {

enum class Severity : std::uint8_t {
  kError,    // contract violation / race / deadlock potential: --lint fails
  kWarning,  // suspicious but not provably wrong on all paths
  kNote,     // informational (analysis gave up on a construct)
};

std::string_view severity_name(Severity s);

struct Diagnostic {
  Severity severity = Severity::kError;
  /// Checker id: "lockset-race", "deadlock", "sync-misuse",
  /// "clock-conservation".
  std::string checker;
  std::string function;       // "@name"; empty for module-level findings
  std::string block;          // block name; empty for function-level findings
  std::size_t instr_index = 0;
  std::string message;
  /// Witness: one line per step (a CFG path, a lock-order cycle, or the
  /// conflicting access sites).  Never empty for kError diagnostics.
  std::vector<std::string> witness;

  std::string to_string() const;
};

/// Count of kError-severity entries (the --lint gate).
std::size_t error_count(const std::vector<Diagnostic>& diags);

/// Stable ordering for output: errors first, then by function/block/index.
void sort_diagnostics(std::vector<Diagnostic>& diags);

}  // namespace detlock::staticcheck
