// Generic forward dataflow solver over the CFG analyses in src/analysis.
//
// The checkers in this directory (lockset, live-thread counting) are all
// instances of the same meet-over-paths worklist iteration; this header
// factors the iteration out so a new analysis only supplies its domain:
//
//   struct Domain {
//     using State = ...;                          // a join-semilattice point
//     State entry_state() const;                  // state at function entry
//     State transfer(ir::BlockId b, State in);    // through a whole block
//     bool merge(State& into, const State& from); // meet; true if `into` changed
//   };
//
// solve_forward() iterates blocks in reverse post-order until a fixed
// point, which for the finite-height lattices used here terminates in a
// handful of sweeps even on loop-heavy functions.  Unreachable blocks keep
// an empty optional so checkers can skip them explicitly.
#pragma once

#include <optional>
#include <vector>

#include "analysis/cfg.hpp"

namespace detlock::staticcheck {

template <typename Domain>
std::vector<std::optional<typename Domain::State>> solve_forward(const analysis::Cfg& cfg,
                                                                 Domain& domain) {
  using State = typename Domain::State;
  std::vector<std::optional<State>> in(cfg.num_blocks());
  if (cfg.num_blocks() == 0) return in;
  in[ir::Function::kEntry] = domain.entry_state();

  bool changed = true;
  while (changed) {
    changed = false;
    for (const ir::BlockId b : cfg.rpo()) {
      if (!in[b].has_value()) continue;  // no propagated state yet
      State out = domain.transfer(b, *in[b]);
      for (const ir::BlockId succ : cfg.successors(b)) {
        if (!in[succ].has_value()) {
          in[succ] = out;
          changed = true;
        } else if (domain.merge(*in[succ], out)) {
          changed = true;
        }
      }
    }
  }
  return in;
}

}  // namespace detlock::staticcheck
