#include "staticcheck/lockset.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "staticcheck/dataflow.hpp"

namespace detlock::staticcheck {

// ---------------------------------------------------------------------------
// Value lattice.

AbstractValue AbstractValue::meet(const AbstractValue& a, const AbstractValue& b) {
  if (a.kind == Kind::kBottom) return b;
  if (b.kind == Kind::kBottom) return a;
  if (a == b) return a;
  return top();
}

std::optional<LockRef> LockRef::from_value(const AbstractValue& v) {
  if (v.is_const()) return LockRef{Kind::kConst, v.v};
  if (v.is_param()) return LockRef{Kind::kParam, v.v};
  return std::nullopt;
}

std::string LockRef::to_string() const {
  if (kind == Kind::kConst) return "mutex " + std::to_string(id);
  return "mutex(param #" + std::to_string(id) + ")";
}

// ---------------------------------------------------------------------------
// Lock-set algebra (sorted-unique vectors; sets stay tiny in practice).

void lockset_insert(LockSet& set, const LockRef& lock) {
  const auto it = std::lower_bound(set.begin(), set.end(), lock);
  if (it == set.end() || !(*it == lock)) set.insert(it, lock);
}

void lockset_erase(LockSet& set, const LockRef& lock) {
  const auto it = std::lower_bound(set.begin(), set.end(), lock);
  if (it != set.end() && *it == lock) set.erase(it);
}

bool lockset_contains(const LockSet& set, const LockRef& lock) {
  return std::binary_search(set.begin(), set.end(), lock);
}

LockSet lockset_intersect(const LockSet& a, const LockSet& b) {
  LockSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

LockSet lockset_union(const LockSet& a, const LockSet& b) {
  LockSet out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::string lockset_to_string(const LockSet& set) {
  if (set.empty()) return "{}";
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (i > 0) out << ", ";
    out << set[i].to_string();
  }
  out << "}";
  return out.str();
}

namespace {

/// Sorted-unique Reg set helpers for joined_must.
void regset_insert(std::vector<Reg>& set, Reg r) {
  const auto it = std::lower_bound(set.begin(), set.end(), r);
  if (it == set.end() || *it != r) set.insert(it, r);
}

void regset_erase(std::vector<Reg>& set, Reg r) {
  const auto it = std::lower_bound(set.begin(), set.end(), r);
  if (it != set.end() && *it == r) set.erase(it);
}

std::vector<Reg> regset_intersect(const std::vector<Reg>& a, const std::vector<Reg>& b) {
  std::vector<Reg> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::optional<std::int64_t> fold_binary(ir::Opcode op, std::int64_t a, std::int64_t b) {
  using ir::Opcode;
  switch (op) {
    case Opcode::kAdd:
      return a + b;
    case Opcode::kSub:
      return a - b;
    case Opcode::kMul:
      return a * b;
    case Opcode::kDiv:
      if (b == 0) return std::nullopt;
      return a / b;
    case Opcode::kRem:
      if (b == 0) return std::nullopt;
      return a % b;
    case Opcode::kAnd:
      return a & b;
    case Opcode::kOr:
      return a | b;
    case Opcode::kXor:
      return a ^ b;
    case Opcode::kShl:
      return (b < 0 || b >= 64) ? std::nullopt : std::optional<std::int64_t>(a << b);
    case Opcode::kShr:
      return (b < 0 || b >= 64) ? std::nullopt
                                : std::optional<std::int64_t>(static_cast<std::int64_t>(
                                      static_cast<std::uint64_t>(a) >> b));
    default:
      return std::nullopt;
  }
}

/// Substitutes a callee-term lock by the call site's argument values.
std::optional<LockRef> substitute(const LockRef& lock, const ir::Instr& call, const SyncState& state) {
  if (lock.kind == LockRef::Kind::kConst) return lock;
  const std::size_t index = static_cast<std::size_t>(lock.id);
  if (index >= call.args.size()) return std::nullopt;
  const Reg arg = call.args[index];
  if (arg >= state.regs.size()) return std::nullopt;
  return LockRef::from_value(state.regs[arg]);
}

}  // namespace

// ---------------------------------------------------------------------------
// Transfer function.

void SyncAnalysis::apply_instr(FuncId /*f*/, const ir::Instr& instr, SyncState& state) const {
  using ir::Opcode;
  auto value_of = [&](Reg r) -> AbstractValue {
    return r < state.regs.size() ? state.regs[r] : AbstractValue::top();
  };
  auto set_reg = [&](Reg r, AbstractValue v) {
    if (r >= state.regs.size()) state.regs.resize(r + 1, AbstractValue::top());
    state.regs[r] = v;
    regset_erase(state.joined_must, r);  // redefinition invalidates join tracking
  };
  auto resolve = [&](Reg r) { return LockRef::from_value(value_of(r)); };

  switch (instr.op) {
    case Opcode::kConst:
      set_reg(instr.dst, AbstractValue::constant(instr.imm));
      return;
    case Opcode::kMov:
      set_reg(instr.dst, value_of(instr.a));
      return;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr: {
      const AbstractValue a = value_of(instr.a);
      const AbstractValue b = value_of(instr.b);
      if (a.is_const() && b.is_const()) {
        if (const auto folded = fold_binary(instr.op, a.v, b.v)) {
          set_reg(instr.dst, AbstractValue::constant(*folded));
          return;
        }
      }
      set_reg(instr.dst, AbstractValue::top());
      return;
    }
    case Opcode::kICmp: {
      const AbstractValue a = value_of(instr.a);
      const AbstractValue b = value_of(instr.b);
      if (a.is_const() && b.is_const()) {
        bool r = false;
        switch (instr.pred) {
          case ir::CmpPred::kEq: r = a.v == b.v; break;
          case ir::CmpPred::kNe: r = a.v != b.v; break;
          case ir::CmpPred::kLt: r = a.v < b.v; break;
          case ir::CmpPred::kLe: r = a.v <= b.v; break;
          case ir::CmpPred::kGt: r = a.v > b.v; break;
          case ir::CmpPred::kGe: r = a.v >= b.v; break;
        }
        set_reg(instr.dst, AbstractValue::constant(r ? 1 : 0));
        return;
      }
      set_reg(instr.dst, AbstractValue::top());
      return;
    }
    case Opcode::kLock:
      if (const auto lock = resolve(instr.a)) {
        lockset_insert(state.must, *lock);
        lockset_insert(state.may, *lock);
      }
      return;
    case Opcode::kUnlock:
      if (const auto lock = resolve(instr.a)) {
        lockset_erase(state.must, *lock);
        lockset_erase(state.may, *lock);
      }
      return;
    case Opcode::kCondWait:
    case Opcode::kCondSignal:
    case Opcode::kCondBroadcast:
    case Opcode::kBarrier:
      // cond_wait releases and reacquires its mutex internally: the lockset
      // on return is unchanged.  Barriers never touch mutexes.
      return;
    case Opcode::kCall: {
      // Apply the callee's net lock effect, substituting its parameters.
      const LockSummary& summary = funcs_[instr.callee].summary;
      for (const LockRef& lock : summary.released) {
        if (const auto sub = substitute(lock, instr, state)) {
          lockset_erase(state.must, *sub);
          lockset_erase(state.may, *sub);
        }
      }
      for (const LockRef& lock : summary.acquired) {
        if (const auto sub = substitute(lock, instr, state)) {
          lockset_insert(state.must, *sub);
          lockset_insert(state.may, *sub);
        }
      }
      set_reg(instr.dst, AbstractValue::top());
      return;
    }
    case Opcode::kSpawn:
      // The child runs the callee; the spawner's lockset is unaffected.
      set_reg(instr.dst, AbstractValue::top());
      return;
    case Opcode::kJoin:
      regset_insert(state.joined_must, instr.a);
      return;
    default:
      if (ir::has_dst(instr.op)) set_reg(instr.dst, AbstractValue::top());
      return;
  }
}

// ---------------------------------------------------------------------------
// Per-function solve.

namespace {

struct SyncDomain {
  using State = SyncState;

  const SyncAnalysis& analysis;
  const ir::Function& func;
  FuncId func_id;
  SyncState entry;

  State entry_state() const { return entry; }

  State transfer(BlockId b, State in) const {
    for (const ir::Instr& instr : func.block(b).instrs()) {
      analysis.apply_instr(func_id, instr, in);
    }
    return in;
  }

  bool merge(State& into, const State& from) const {
    bool changed = false;
    const std::size_t n = std::max(into.regs.size(), from.regs.size());
    into.regs.resize(n, AbstractValue::bottom());
    for (std::size_t i = 0; i < n; ++i) {
      const AbstractValue other = i < from.regs.size() ? from.regs[i] : AbstractValue::bottom();
      const AbstractValue met = AbstractValue::meet(into.regs[i], other);
      if (!(met == into.regs[i])) {
        into.regs[i] = met;
        changed = true;
      }
    }
    LockSet must = lockset_intersect(into.must, from.must);
    if (must != into.must) {
      into.must = std::move(must);
      changed = true;
    }
    LockSet may = lockset_union(into.may, from.may);
    if (may != into.may) {
      into.may = std::move(may);
      changed = true;
    }
    std::vector<Reg> joined = regset_intersect(into.joined_must, from.joined_must);
    if (joined != into.joined_must) {
      into.joined_must = std::move(joined);
      changed = true;
    }
    return changed;
  }
};

}  // namespace

SyncState SyncAnalysis::function_entry_state(FuncId f, const LockSet& context) const {
  const ir::Function& func = module_.function(f);
  SyncState state;
  state.regs.assign(func.num_regs(), AbstractValue::bottom());
  for (std::uint32_t p = 0; p < func.num_params() && p < state.regs.size(); ++p) {
    state.regs[p] = AbstractValue::param(p);
  }
  state.must = context;
  state.may = context;
  return state;
}

void SyncAnalysis::analyze_function(FuncId f, const LockSet& context, FunctionSyncInfo& out) const {
  const ir::Function& func = module_.function(f);
  const analysis::Cfg cfg(func);
  SyncDomain domain{*this, func, f, function_entry_state(f, context)};
  out.block_in = solve_forward(cfg, domain);
}

// ---------------------------------------------------------------------------
// Module driver.

SyncAnalysis::SyncAnalysis(const ir::Module& module, FuncId entry)
    : module_(module), entry_(entry), call_graph_(module) {
  const std::size_t n = module.functions().size();
  funcs_.assign(n, {});
  is_spawn_target_.assign(n, false);
  for (const ir::Function& func : module.functions()) {
    for (const ir::BasicBlock& block : func.blocks()) {
      for (const ir::Instr& instr : block.instrs()) {
        if (instr.op == ir::Opcode::kSpawn) is_spawn_target_[instr.callee] = true;
      }
    }
  }

  // Call-graph post-order (iterative DFS over callees from every function).
  {
    std::vector<std::uint8_t> mark(n, 0);  // 0 new, 1 on stack, 2 done
    for (FuncId root = 0; root < n; ++root) {
      if (mark[root] != 0) continue;
      std::vector<std::pair<FuncId, std::size_t>> stack{{root, 0}};
      mark[root] = 1;
      while (!stack.empty()) {
        auto& [f, next] = stack.back();
        const auto& callees = call_graph_.callees(f);
        if (next < callees.size()) {
          const FuncId callee = callees[next++];
          if (mark[callee] == 0) {
            mark[callee] = 1;
            stack.push_back({callee, 0});
          }
        } else {
          mark[f] = 2;
          post_order_.push_back(f);
          stack.pop_back();
        }
      }
    }
  }

  compute_summaries();
  compute_contexts();
  compute_concurrency();
}

void SyncAnalysis::compute_summaries() {
  // Bottom-up: callees have summaries before callers need them.  Functions
  // in call-graph cycles see a default (lock-neutral) summary for the part
  // of the cycle not yet processed -- the documented conservative choice.
  for (const FuncId f : post_order_) {
    const ir::Function& func = module_.function(f);
    FunctionSyncInfo scratch;
    analyze_function(f, LockSet{}, scratch);

    LockSummary summary;
    summary.unknown_sync_ops = call_graph_.is_recursive(f);
    bool first_ret = true;
    for (BlockId b = 0; b < func.num_blocks(); ++b) {
      if (!scratch.block_in[b].has_value()) continue;
      SyncState state = *scratch.block_in[b];
      for (const ir::Instr& instr : func.block(b).instrs()) {
        switch (instr.op) {
          case ir::Opcode::kLock:
          case ir::Opcode::kUnlock: {
            const auto lock = LockRef::from_value(
                instr.a < state.regs.size() ? state.regs[instr.a] : AbstractValue::top());
            if (!lock.has_value()) summary.unknown_sync_ops = true;
            // An unlock of a mutex not even may-held here releases a lock
            // the *caller* holds: part of the net summary.
            if (instr.op == ir::Opcode::kUnlock && lock.has_value() &&
                !lockset_contains(state.may, *lock)) {
              lockset_insert(summary.released, *lock);
            }
            break;
          }
          case ir::Opcode::kCondWait:
            if (instr.b >= state.regs.size() ||
                !LockRef::from_value(state.regs[instr.b]).has_value()) {
              summary.unknown_sync_ops = true;
            }
            break;
          case ir::Opcode::kCall:
            if (funcs_[instr.callee].summary.unknown_sync_ops) summary.unknown_sync_ops = true;
            break;
          case ir::Opcode::kRet:
            // Ret is always the terminator; `state` is the exit state.
            break;
          default:
            break;
        }
        apply_instr(f, instr, state);
      }
      if (func.block(b).has_terminator() && func.block(b).terminator().op == ir::Opcode::kRet) {
        summary.acquired =
            first_ret ? state.must : lockset_intersect(summary.acquired, state.must);
        first_ret = false;
      }
    }
    funcs_[f].summary = std::move(summary);
  }
}

void SyncAnalysis::compute_contexts() {
  const std::size_t n = module_.functions().size();
  // Accumulated context per callee; nullopt until the first call site is
  // seen.  Spawn targets and the entry function pin to the empty context.
  std::vector<std::optional<LockSet>> accum(n);
  auto pinned_empty = [&](FuncId f) { return f == entry_ || is_spawn_target_[f]; };

  // Reverse post-order: callers are analyzed (with their final context)
  // before their callees, except through cycles, which fall back to the
  // empty context.
  for (auto it = post_order_.rbegin(); it != post_order_.rend(); ++it) {
    const FuncId f = *it;
    LockSet context;
    if (!pinned_empty(f) && accum[f].has_value()) context = *accum[f];
    funcs_[f].context_must = context;
    analyze_function(f, context, funcs_[f]);

    // Fold this function's call-site locksets into its callees' contexts.
    const ir::Function& func = module_.function(f);
    for (BlockId b = 0; b < func.num_blocks(); ++b) {
      if (!funcs_[f].block_in[b].has_value()) continue;
      SyncState state = *funcs_[f].block_in[b];
      for (const ir::Instr& instr : func.block(b).instrs()) {
        if (instr.op == ir::Opcode::kCall) {
          // Only constant locks survive into a callee context: a caller's
          // param-relative lock has no stable name in the callee.
          LockSet site;
          for (const LockRef& lock : state.must) {
            if (lock.kind == LockRef::Kind::kConst) lockset_insert(site, lock);
          }
          const FuncId callee = instr.callee;
          if (!accum[callee].has_value()) {
            accum[callee] = site;
          } else {
            accum[callee] = lockset_intersect(*accum[callee], site);
          }
        }
        apply_instr(f, instr, state);
      }
    }
  }
}

void SyncAnalysis::compute_concurrency() {
  const std::size_t n = module_.functions().size();
  ConcurrencyInfo& info = concurrency_;

  info.roots.push_back(entry_);
  for (FuncId f = 0; f < n; ++f) {
    if (is_spawn_target_[f]) info.roots.push_back(f);
  }

  // Barrier reachability: contains a barrier, closed over callees.
  info.reaches_barrier.assign(n, false);
  for (FuncId f = 0; f < n; ++f) {
    for (const ir::BasicBlock& block : module_.function(f).blocks()) {
      for (const ir::Instr& instr : block.instrs()) {
        if (instr.op == ir::Opcode::kBarrier) info.reaches_barrier[f] = true;
      }
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (FuncId f = 0; f < n; ++f) {
      if (info.reaches_barrier[f]) continue;
      for (const FuncId callee : call_graph_.callees(f)) {
        if (info.reaches_barrier[callee]) {
          info.reaches_barrier[f] = true;
          changed = true;
          break;
        }
      }
    }
  }

  // Live-spawned-thread upper bound through the entry function.  A may
  // analysis (merge = max): spawn increments, join decrements, saturating
  // at a small cap so spawn loops converge.
  constexpr std::uint32_t kLiveCap = 64;
  const ir::Function& entry_func = module_.function(entry_);
  entry_live_.assign(entry_func.num_blocks(), {});
  {
    struct LiveDomain {
      const ir::Function& func;
      using State = std::uint32_t;
      State entry_state() const { return 0; }
      State transfer(BlockId b, State in) const {
        for (const ir::Instr& instr : func.block(b).instrs()) {
          if (instr.op == ir::Opcode::kSpawn && in < kLiveCap) ++in;
          if (instr.op == ir::Opcode::kJoin && in > 0) --in;
        }
        return in;
      }
      bool merge(State& into, const State& from) const {
        if (from > into) {
          into = from;
          return true;
        }
        return false;
      }
    };
    const analysis::Cfg cfg(entry_func);
    LiveDomain domain{entry_func};
    const auto in = solve_forward(cfg, domain);
    for (BlockId b = 0; b < entry_func.num_blocks(); ++b) {
      const auto& instrs = entry_func.block(b).instrs();
      entry_live_[b].assign(instrs.size(), 0);
      if (!in[b].has_value()) continue;
      std::uint32_t live = *in[b];
      for (std::size_t i = 0; i < instrs.size(); ++i) {
        entry_live_[b][i] = live;
        if (instrs[i].op == ir::Opcode::kSpawn && live < kLiveCap) ++live;
        if (instrs[i].op == ir::Opcode::kJoin && live > 0) --live;
      }
    }
  }

  // Root attribution: roots_of[f] = roots whose thread can execute f.
  info.roots_of.assign(n, std::vector<bool>(info.roots.size(), false));
  auto mark_closure = [&](FuncId root, std::size_t root_index) {
    std::deque<FuncId> queue{root};
    while (!queue.empty()) {
      const FuncId f = queue.front();
      queue.pop_front();
      if (info.roots_of[f][root_index]) continue;
      info.roots_of[f][root_index] = true;
      for (const FuncId callee : call_graph_.callees(f)) queue.push_back(callee);
    }
  };
  for (std::size_t r = 0; r < info.roots.size(); ++r) mark_closure(info.roots[r], r);

  // Concurrent functions: every spawn-target closure, everything the entry
  // function calls while a spawned thread may be live, and the entry
  // function itself when any such window exists.
  info.concurrent.assign(n, false);
  std::deque<FuncId> queue;
  for (FuncId f = 0; f < n; ++f) {
    if (is_spawn_target_[f]) queue.push_back(f);
  }
  bool entry_has_live_window = false;
  for (BlockId b = 0; b < entry_func.num_blocks(); ++b) {
    const auto& instrs = entry_func.block(b).instrs();
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      if (b < entry_live_.size() && i < entry_live_[b].size() && entry_live_[b][i] > 0) {
        entry_has_live_window = true;
        if (instrs[i].op == ir::Opcode::kCall) queue.push_back(instrs[i].callee);
      }
    }
  }
  info.concurrent[entry_] = entry_has_live_window;
  while (!queue.empty()) {
    const FuncId f = queue.front();
    queue.pop_front();
    if (info.concurrent[f] && f != entry_) continue;
    if (f != entry_) info.concurrent[f] = true;
    for (const FuncId callee : call_graph_.callees(f)) {
      if (!info.concurrent[callee]) queue.push_back(callee);
    }
  }

  // Self-parallelism: a root spawned twice (or from a loop) can overlap
  // with another instance of itself.
  info.root_self_parallel.assign(info.roots.size(), false);
  for (FuncId f = 0; f < n; ++f) {
    const ir::Function& func = module_.function(f);
    const analysis::Cfg cfg(func);
    const analysis::DominatorTree domtree(cfg);
    const analysis::LoopInfo loops(cfg, domtree);
    std::vector<std::uint32_t> spawn_sites(n, 0);
    for (BlockId b = 0; b < func.num_blocks(); ++b) {
      for (const ir::Instr& instr : func.block(b).instrs()) {
        if (instr.op != ir::Opcode::kSpawn) continue;
        spawn_sites[instr.callee] += loops.loop_depth(b) > 0 ? 2 : 1;
      }
    }
    for (std::size_t r = 0; r < info.roots.size(); ++r) {
      if (spawn_sites[info.roots[r]] >= 2) info.root_self_parallel[r] = true;
    }
  }
}

bool SyncAnalysis::entry_concurrent_at(BlockId b, std::size_t instr_index) const {
  if (b >= entry_live_.size() || instr_index >= entry_live_[b].size()) return false;
  return entry_live_[b][instr_index] > 0;
}

std::vector<std::string> SyncAnalysis::witness_path(FuncId f, BlockId target) const {
  const ir::Function& func = module_.function(f);
  // BFS from entry over successor edges; reconstruct the first shortest
  // path.
  std::vector<BlockId> parent(func.num_blocks(), ir::kInvalidBlock);
  std::vector<bool> seen(func.num_blocks(), false);
  std::deque<BlockId> queue{ir::Function::kEntry};
  seen[ir::Function::kEntry] = true;
  while (!queue.empty()) {
    const BlockId b = queue.front();
    queue.pop_front();
    if (b == target) break;
    for (const BlockId succ : func.block(b).successors()) {
      if (!seen[succ]) {
        seen[succ] = true;
        parent[succ] = b;
        queue.push_back(succ);
      }
    }
  }
  std::vector<std::string> path;
  if (!seen[target]) return path;
  for (BlockId b = target;; b = parent[b]) {
    path.push_back(func.block(b).name());
    if (b == ir::Function::kEntry || parent[b] == ir::kInvalidBlock) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace detlock::staticcheck
