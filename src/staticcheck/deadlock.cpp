#include "staticcheck/deadlock.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace detlock::staticcheck {

namespace {

struct EdgeSite {
  FuncId func;
  BlockId block;
  std::size_t instr_index;
};

using LockOrderGraph = std::map<std::int64_t, std::map<std::int64_t, EdgeSite>>;

std::string site_to_string(const ir::Module& module, const EdgeSite& site, std::int64_t held,
                           std::int64_t acquired) {
  const ir::Function& func = module.function(site.func);
  std::ostringstream out;
  out << "mutex " << acquired << " acquired while holding mutex " << held << " at @"
      << func.name() << " " << func.block(site.block).name() << "#" << site.instr_index;
  return out.str();
}

/// Rotates `cycle` so its smallest element comes first (dedup key).
std::vector<std::int64_t> canonicalise(std::vector<std::int64_t> cycle) {
  const auto min_it = std::min_element(cycle.begin(), cycle.end());
  std::rotate(cycle.begin(), min_it, cycle.end());
  return cycle;
}

}  // namespace

void check_deadlocks(const SyncAnalysis& analysis, std::vector<Diagnostic>& out) {
  const ir::Module& module = analysis.module();

  LockOrderGraph graph;
  bool module_spawns = false;
  for (FuncId f = 0; f < module.functions().size(); ++f) {
    const ir::Function& func = module.function(f);
    for (BlockId b = 0; b < func.num_blocks(); ++b) {
      analysis.walk_block(f, b, [&](std::size_t i, const SyncState& state) {
        const ir::Instr& instr = func.block(b).instrs()[i];
        if (instr.op == ir::Opcode::kSpawn) module_spawns = true;
        if (instr.op != ir::Opcode::kLock) return;
        const AbstractValue value =
            instr.a < state.regs.size() ? state.regs[instr.a] : AbstractValue::top();
        if (!value.is_const()) return;
        for (const LockRef& held : state.may) {
          if (held.kind != LockRef::Kind::kConst) continue;
          if (held.id == value.v) continue;  // re-acquisition is misuse, not ordering
          graph[held.id].emplace(value.v, EdgeSite{f, b, i});
        }
      });
    }
  }

  // DFS cycle enumeration over the (tiny) lock-order graph.
  std::set<std::vector<std::int64_t>> reported;
  std::vector<std::int64_t> path;
  std::set<std::int64_t> on_path;

  std::function<void(std::int64_t)> dfs = [&](std::int64_t lock) {
    path.push_back(lock);
    on_path.insert(lock);
    const auto it = graph.find(lock);
    if (it != graph.end()) {
      for (const auto& [next, site] : it->second) {
        if (on_path.count(next)) {
          // Found a cycle: path from `next`'s position to the end, closing
          // back to `next`.
          const auto start = std::find(path.begin(), path.end(), next);
          std::vector<std::int64_t> cycle(start, path.end());
          const auto canonical = canonicalise(cycle);
          if (reported.insert(canonical).second) {
            Diagnostic diag;
            diag.severity = module_spawns ? Severity::kError : Severity::kWarning;
            diag.checker = "deadlock";
            const ir::Function& func = module.function(site.func);
            diag.function = func.name();
            diag.block = func.block(site.block).name();
            diag.instr_index = site.instr_index;
            std::ostringstream msg;
            msg << "lock-order cycle:";
            for (const std::int64_t l : canonical) msg << " " << l << " ->";
            msg << " " << canonical.front()
                << (module_spawns ? " (potential ABBA deadlock)"
                                  : " (inconsistent lock order; no spawn observed)");
            diag.message = msg.str();
            for (std::size_t k = 0; k < cycle.size(); ++k) {
              const std::int64_t held = cycle[k];
              const std::int64_t acquired = cycle[(k + 1) % cycle.size()];
              const auto edge = graph.at(held).find(acquired);
              if (edge != graph.at(held).end()) {
                diag.witness.push_back(site_to_string(module, edge->second, held, acquired));
              }
            }
            out.push_back(std::move(diag));
          }
        } else {
          dfs(next);
        }
      }
    }
    on_path.erase(lock);
    path.pop_back();
  };

  for (const auto& [lock, _] : graph) dfs(lock);
}

}  // namespace detlock::staticcheck
