// Sync-API misuse lints, enforcing the runtime contracts of DESIGN.md §8
// statically:
//
//   * double-lock: kLock of a mutex already must-held (error) or only
//     may-held (warning) -- detir mutexes are non-recursive;
//   * unlock-of-unheld: kUnlock of a mutex not even may-held (error) or
//     held on only some paths (warning);
//   * cond_wait without its mutex must-held (error);
//   * a condvar used with two different mutexes (error) -- the runtime
//     binds a condvar permanently to the first mutex it waits with;
//   * signal/broadcast without holding the condvar's bound mutex (error),
//     or of a condvar nothing ever waits on (warning);
//   * join of a handle register already joined on every path (error), and
//     join inside a loop of a handle not re-defined in that loop (error) --
//     the second join of the same handle deadlocks or aborts at runtime.
#pragma once

#include <vector>

#include "staticcheck/diagnostics.hpp"
#include "staticcheck/lockset.hpp"

namespace detlock::staticcheck {

void check_misuse(const SyncAnalysis& analysis, std::vector<Diagnostic>& out);

}  // namespace detlock::staticcheck
