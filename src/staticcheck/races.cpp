#include "staticcheck/races.hpp"

#include <cstdint>
#include <map>
#include <sstream>

namespace detlock::staticcheck {

namespace {

struct Access {
  FuncId func;
  BlockId block;
  std::size_t instr_index;
  bool is_write;
  LockSet must;
  /// Which thread roots can perform this access.
  std::vector<bool> roots;
  /// For entry-function accesses: can a spawned thread be live here?
  bool entry_parallel_window = false;
};

std::string site_to_string(const ir::Module& module, const Access& a) {
  const ir::Function& func = module.function(a.func);
  std::ostringstream out;
  out << (a.is_write ? "write" : "read") << " at @" << func.name() << " "
      << func.block(a.block).name() << "#" << a.instr_index
      << " holding " << lockset_to_string(a.must);
  return out.str();
}

/// Two accesses can overlap in time.
bool can_be_parallel(const ConcurrencyInfo& info, FuncId entry, const Access& a, const Access& b) {
  for (std::size_t r = 0; r < info.roots.size(); ++r) {
    if (!a.roots[r]) continue;
    for (std::size_t s = 0; s < info.roots.size(); ++s) {
      if (!b.roots[s]) continue;
      if (r == s) {
        if (info.root_self_parallel[r]) return true;
        continue;
      }
      // Distinct roots.  The entry root only overlaps others while one of
      // its spawned threads is live.
      const bool a_entry = info.roots[r] == entry && a.func == entry;
      const bool b_entry = info.roots[s] == entry && b.func == entry;
      if (a_entry && !a.entry_parallel_window) continue;
      if (b_entry && !b.entry_parallel_window) continue;
      return true;
    }
  }
  return false;
}

}  // namespace

void check_races(const SyncAnalysis& analysis, std::vector<Diagnostic>& out) {
  const ir::Module& module = analysis.module();
  const ConcurrencyInfo& info = analysis.concurrency();

  // Cell -> accesses; a cell is a constant-resolved address (base + offset).
  std::map<std::int64_t, std::vector<Access>> cells;

  for (FuncId f = 0; f < module.functions().size(); ++f) {
    if (!info.concurrent[f]) continue;
    if (info.reaches_barrier[f]) continue;  // barrier-phased sharing: skip
    const ir::Function& func = module.function(f);
    for (BlockId b = 0; b < func.num_blocks(); ++b) {
      analysis.walk_block(f, b, [&](std::size_t i, const SyncState& state) {
        const ir::Instr& instr = func.block(b).instrs()[i];
        if (!ir::is_memory_access(instr.op)) return;
        const bool is_write =
            instr.op == ir::Opcode::kStore || instr.op == ir::Opcode::kStoreF;
        const AbstractValue base =
            instr.a < state.regs.size() ? state.regs[instr.a] : AbstractValue::top();
        if (!base.is_const()) return;  // only constant addresses are tracked
        Access access;
        access.func = f;
        access.block = b;
        access.instr_index = i;
        access.is_write = is_write;
        access.must = state.must;
        access.roots = info.roots_of[f];
        if (f == analysis.entry()) {
          access.entry_parallel_window = analysis.entry_concurrent_at(b, i);
        }
        cells[base.v + instr.imm].push_back(std::move(access));
      });
    }
  }

  for (const auto& [addr, accesses] : cells) {
    bool reported = false;
    for (std::size_t i = 0; i < accesses.size() && !reported; ++i) {
      for (std::size_t j = i + 1; j < accesses.size() && !reported; ++j) {
        const Access& a = accesses[i];
        const Access& b = accesses[j];
        if (!a.is_write && !b.is_write) continue;
        if (!can_be_parallel(info, analysis.entry(), a, b)) continue;
        if (!lockset_intersect(a.must, b.must).empty()) continue;

        Diagnostic diag;
        diag.severity = Severity::kError;
        diag.checker = "lockset-race";
        const ir::Function& func = module.function(a.func);
        diag.function = func.name();
        diag.block = func.block(a.block).name();
        diag.instr_index = a.instr_index;
        std::ostringstream msg;
        msg << "possible data race on address " << addr
            << ": concurrent accesses share no common lock";
        diag.message = msg.str();
        diag.witness.push_back(site_to_string(module, a));
        diag.witness.push_back(site_to_string(module, b));
        std::ostringstream path;
        path << "path to first access:";
        for (const std::string& name : analysis.witness_path(a.func, a.block)) {
          path << " -> " << name;
        }
        diag.witness.push_back(path.str());
        out.push_back(std::move(diag));
        reported = true;  // one report per cell keeps output readable
      }
    }
  }
}

}  // namespace detlock::staticcheck
