#include "staticcheck/diagnostics.hpp"

#include <algorithm>
#include <sstream>

namespace detlock::staticcheck {

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::ostringstream out;
  out << severity_name(severity) << " [" << checker << "]";
  if (!function.empty()) {
    out << " " << function;
    if (!block.empty()) out << " " << block << "#" << instr_index;
  }
  out << ": " << message;
  for (const std::string& line : witness) out << "\n    " << line;
  return out.str();
}

std::size_t error_count(const std::vector<Diagnostic>& diags) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [](const Diagnostic& d) { return d.severity == Severity::kError; }));
}

void sort_diagnostics(std::vector<Diagnostic>& diags) {
  std::stable_sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.severity != b.severity) return a.severity < b.severity;
    if (a.checker != b.checker) return a.checker < b.checker;
    if (a.function != b.function) return a.function < b.function;
    if (a.block != b.block) return a.block < b.block;
    return a.instr_index < b.instr_index;
  });
}

}  // namespace detlock::staticcheck
