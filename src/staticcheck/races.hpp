// Static lockset race checker (the compile-time sibling of the Eraser-style
// dynamic detector in src/racedetect).
//
// Flags memory cells that (a) resolve to a constant address, (b) are
// written at least once, (c) can be touched by two threads at the same
// time, and (d) have an empty intersection of must-locksets across their
// accesses.  Functions that (transitively) execute a barrier are excluded:
// their sharing is assumed barrier-phased, mirroring the dynamic detector's
// lockset reset at barriers.  These heuristics make the checker quiet on
// the repo's correct programs while still catching the classic unlocked
// shared counter; the dynamic detector remains the precise backstop.
#pragma once

#include <vector>

#include "staticcheck/diagnostics.hpp"
#include "staticcheck/lockset.hpp"

namespace detlock::staticcheck {

/// Appends one diagnostic per racy cell to `out`.
void check_races(const SyncAnalysis& analysis, std::vector<Diagnostic>& out);

}  // namespace detlock::staticcheck
