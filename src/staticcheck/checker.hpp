// One-call driver running every static checker over a module.
//
// run_all_checks() analyzes the *uninstrumented* module with the sync
// checkers (lockset races, lock-order cycles, API misuse) and then, when
// given pipeline options, instruments a scratch copy and runs the
// clock-conservation checker on it -- so a single `detlockc --lint`
// invocation exercises both the program's synchronization discipline and
// the instrumentation the pipeline would emit for it.
#pragma once

#include <vector>

#include "ir/module.hpp"
#include "pass/options.hpp"
#include "staticcheck/diagnostics.hpp"

namespace detlock::staticcheck {

struct CheckOptions {
  /// Entry function name (thread root for the concurrency analysis).
  std::string entry = "main";
  /// When set, instrument a copy with these options and verify clock
  /// conservation on the result.
  bool check_conservation = true;
  pass::PassOptions pass_options;
};

/// Runs every checker; returns sorted diagnostics.
std::vector<Diagnostic> run_all_checks(const ir::Module& module, const CheckOptions& options);

}  // namespace detlock::staticcheck
