// Static lock-order (ABBA deadlock) checker.
//
// Builds a lock-order graph: an edge A -> B for every kLock of constant
// mutex B executed while constant mutex A is may-held.  A cycle in this
// graph is a potential deadlock -- two threads can acquire the cycle's
// locks in opposing orders.  Each cycle is reported once (canonicalised by
// rotating its smallest lock first) with a witness naming the acquisition
// site of every edge.  Cycles are errors when the module actually spawns
// threads and warnings otherwise (a single-threaded module cannot deadlock
// on non-recursive acquisition order alone, but the ordering debt remains).
#pragma once

#include <vector>

#include "staticcheck/diagnostics.hpp"
#include "staticcheck/lockset.hpp"

namespace detlock::staticcheck {

void check_deadlocks(const SyncAnalysis& analysis, std::vector<Diagnostic>& out);

}  // namespace detlock::staticcheck
