#include "staticcheck/checker.hpp"

#include "pass/pipeline.hpp"
#include "staticcheck/conservation.hpp"
#include "staticcheck/deadlock.hpp"
#include "staticcheck/lockset.hpp"
#include "staticcheck/misuse.hpp"
#include "staticcheck/races.hpp"

namespace detlock::staticcheck {

namespace {

bool is_instrumented(const ir::Module& module) {
  for (const ir::Function& func : module.functions()) {
    for (const ir::BasicBlock& block : func.blocks()) {
      for (const ir::Instr& instr : block.instrs()) {
        if (ir::is_clock_update(instr.op)) return true;
      }
    }
  }
  return false;
}

}  // namespace

std::vector<Diagnostic> run_all_checks(const ir::Module& module, const CheckOptions& options) {
  std::vector<Diagnostic> diags;

  if (module.has_function(options.entry)) {
    const SyncAnalysis analysis(module, module.find_function(options.entry));
    check_races(analysis, diags);
    check_deadlocks(analysis, diags);
    check_misuse(analysis, diags);
  } else {
    Diagnostic diag;
    diag.severity = Severity::kNote;
    diag.checker = "sync-misuse";
    diag.message = "entry function '" + options.entry + "' not found; sync checkers skipped";
    diags.push_back(std::move(diag));
  }

  // Conservation runs on an instrumented scratch copy; a module that
  // already carries clock updates cannot be re-instrumented, so it is
  // skipped (the pipeline refuses such input anyway).
  if (options.check_conservation && !is_instrumented(module)) {
    ir::Module scratch = module;
    pass::ClockAssignment assignment;
    pass::instrument_module(scratch, options.pass_options, assignment);
    check_clock_conservation(scratch, assignment, options.pass_options, diags);
  }

  sort_diagnostics(diags);
  return diags;
}

}  // namespace detlock::staticcheck
