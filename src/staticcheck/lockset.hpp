// Static lockset analysis over detir.
//
// Computes, for every instruction of every function, the set of mutexes
// that are *must*-held (held on every path reaching the instruction) and
// *may*-held (held on at least one path).  The analysis is an instance of
// the forward dataflow framework (dataflow.hpp) whose state combines
//
//   * a flow-sensitive constant/parameter propagation over the register
//     file (mutex ids are register values in this IR, so lock identity is
//     only as precise as the value analysis), and
//   * the two locksets, met with intersection (must) and union (may) at
//     control-flow joins.
//
// Interprocedural treatment (three phases over the call graph):
//   1. bottom-up: per-function *lock summaries* -- the net set of locks a
//      call provably leaves acquired or released, with callee parameters
//      substituted by call-site values;
//   2. top-down: per-function *context locksets* -- the intersection of the
//      locksets callers hold around every call site (spawn targets and the
//      entry function start from the empty context, like a fresh thread);
//   3. a final intra pass seeded with the context, giving the
//      caller-inclusive locksets every checker consumes.
//
// Soundness caveats (documented in docs/static-analysis.md): lock ids that
// do not resolve to a constant or a parameter are ignored (no lockset
// effect, flagged via `unknown_sync_ops`); calls through cycles in the call
// graph are assumed lock-neutral; and must-locksets assume callees do not
// release locks they did not acquire -- all three err toward *missing*
// findings, never inventing them, except for the race checker where a
// too-large must-set can hide a race (the dynamic detector remains the
// backstop, exactly as the paper keeps Valgrind as its backstop).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/call_graph.hpp"
#include "analysis/cfg.hpp"
#include "ir/module.hpp"

namespace detlock::staticcheck {

using ir::BlockId;
using ir::FuncId;
using ir::Reg;

// ---------------------------------------------------------------------------
// Abstract register values.

struct AbstractValue {
  enum class Kind : std::uint8_t { kBottom, kConst, kParam, kTop };
  Kind kind = Kind::kBottom;
  std::int64_t v = 0;  // constant value (kConst) or parameter index (kParam)

  static AbstractValue bottom() { return {}; }
  static AbstractValue top() { return {Kind::kTop, 0}; }
  static AbstractValue constant(std::int64_t c) { return {Kind::kConst, c}; }
  static AbstractValue param(std::int64_t index) { return {Kind::kParam, index}; }

  bool is_const() const { return kind == Kind::kConst; }
  bool is_param() const { return kind == Kind::kParam; }

  bool operator==(const AbstractValue& o) const { return kind == o.kind && v == o.v; }

  /// Lattice meet used at CFG joins (bottom is the identity).
  static AbstractValue meet(const AbstractValue& a, const AbstractValue& b);
};

// ---------------------------------------------------------------------------
// Abstract lock identities.

struct LockRef {
  enum class Kind : std::uint8_t { kConst, kParam };
  Kind kind = Kind::kConst;
  std::int64_t id = 0;  // mutex id (kConst) or parameter index (kParam)

  static std::optional<LockRef> from_value(const AbstractValue& v);

  bool operator==(const LockRef& o) const { return kind == o.kind && id == o.id; }
  bool operator<(const LockRef& o) const {
    if (kind != o.kind) return kind < o.kind;
    return id < o.id;
  }

  std::string to_string() const;
};

/// Sorted-unique lock sets with the set algebra the analysis needs.
using LockSet = std::vector<LockRef>;

void lockset_insert(LockSet& set, const LockRef& lock);
void lockset_erase(LockSet& set, const LockRef& lock);
bool lockset_contains(const LockSet& set, const LockRef& lock);
LockSet lockset_intersect(const LockSet& a, const LockSet& b);
LockSet lockset_union(const LockSet& a, const LockSet& b);
std::string lockset_to_string(const LockSet& set);

// ---------------------------------------------------------------------------
// Per-instruction analysis state.

struct SyncState {
  std::vector<AbstractValue> regs;
  LockSet must;  // held on every path to here
  LockSet may;   // held on some path to here
  /// Spawn-handle registers already consumed by a join on every path.
  std::vector<Reg> joined_must;

  bool operator==(const SyncState& o) const {
    return regs == o.regs && must == o.must && may == o.may && joined_must == o.joined_must;
  }
};

/// Net effect of calling a function, in *callee* terms (parameters appear
/// as LockRef::kParam entries and are substituted at each call site).
struct LockSummary {
  /// Locks held at every return but not at entry.
  LockSet acquired;
  /// Locks released at some return that the callee never acquired itself
  /// (i.e. it released a caller's lock).
  LockSet released;
  /// The function (or something it calls) performs a sync op whose mutex id
  /// the analysis could not resolve.
  bool unknown_sync_ops = false;
};

struct FunctionSyncInfo {
  /// Entry state of each block under the function's calling context;
  /// nullopt for unreachable blocks.
  std::vector<std::optional<SyncState>> block_in;
  /// Intersection of caller locksets around call sites (constant locks
  /// only); empty for the entry function and spawn targets.
  LockSet context_must;
  LockSummary summary;
};

// ---------------------------------------------------------------------------
// Concurrency structure (who can run in parallel with whom).

struct ConcurrencyInfo {
  /// Thread roots: the entry function plus every spawn target.
  std::vector<FuncId> roots;
  /// roots_of[f]: which roots can reach f through calls (bitset over
  /// `roots` indices).
  std::vector<std::vector<bool>> roots_of;
  /// Root spawned from >= 2 sites, from a loop, or spawned while also
  /// executed inline: two instances of it can overlap.
  std::vector<bool> root_self_parallel;
  /// Function executes (directly or via callees) a barrier: its unlocked
  /// sharing is assumed barrier-phased and excluded from the race check.
  std::vector<bool> reaches_barrier;
  /// Function's memory accesses can overlap with another thread.
  std::vector<bool> concurrent;
};

// ---------------------------------------------------------------------------
// Module-level driver.

class SyncAnalysis {
 public:
  SyncAnalysis(const ir::Module& module, FuncId entry);

  const ir::Module& module() const { return module_; }
  FuncId entry() const { return entry_; }
  const analysis::CallGraph& call_graph() const { return call_graph_; }
  const FunctionSyncInfo& func(FuncId f) const { return funcs_[f]; }
  const ConcurrencyInfo& concurrency() const { return concurrency_; }

  /// Replays `block` from its analyzed entry state, invoking
  /// fn(instr_index, state-before-instr) for each instruction.  No-op for
  /// unreachable blocks.
  template <typename Fn>
  void walk_block(FuncId f, BlockId b, Fn&& fn) const {
    const FunctionSyncInfo& info = funcs_[f];
    if (b >= info.block_in.size() || !info.block_in[b].has_value()) return;
    SyncState state = *info.block_in[b];
    const ir::BasicBlock& block = module_.function(f).block(b);
    for (std::size_t i = 0; i < block.instrs().size(); ++i) {
      fn(i, const_cast<const SyncState&>(state));
      apply_instr(f, block.instrs()[i], state);
    }
  }

  /// True when the *entry* function's instruction at (b, instr_index) can
  /// execute while a spawned thread is still live.  Always true for
  /// non-entry concurrent functions; meaningless for others.
  bool entry_concurrent_at(BlockId b, std::size_t instr_index) const;

  /// Shortest entry->block path (block names), used as diagnostic witness.
  std::vector<std::string> witness_path(FuncId f, BlockId target) const;

  /// Applies one instruction's transfer function to `state` (public so
  /// checkers and tests can replay custom prefixes).
  void apply_instr(FuncId f, const ir::Instr& instr, SyncState& state) const;

 private:
  SyncState function_entry_state(FuncId f, const LockSet& context) const;
  void analyze_function(FuncId f, const LockSet& context, FunctionSyncInfo& out) const;
  void compute_summaries();
  void compute_contexts();
  void compute_concurrency();

  const ir::Module& module_;
  FuncId entry_;
  analysis::CallGraph call_graph_;
  std::vector<FunctionSyncInfo> funcs_;
  /// Call-graph post-order (callees before callers, cycles broken at the
  /// DFS frontier): summary order; reversed for context propagation.
  std::vector<FuncId> post_order_;
  std::vector<bool> is_spawn_target_;
  ConcurrencyInfo concurrency_;
  /// Max live spawned threads before each instruction of the entry
  /// function; indexed [block][instr].
  std::vector<std::vector<std::uint32_t>> entry_live_;
};

}  // namespace detlock::staticcheck
