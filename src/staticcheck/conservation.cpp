#include "staticcheck/conservation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"

namespace detlock::staticcheck {

using ir::BlockId;
using ir::FuncId;

namespace {

using pass::BlockClockInfo;
using pass::ClockAssignment;
using pass::FunctionClocks;

Diagnostic make_diag(const ir::Function& func, BlockId b, std::string message,
                     std::vector<std::string> witness = {}) {
  Diagnostic diag;
  diag.severity = Severity::kError;
  diag.checker = "clock-conservation";
  diag.function = func.name();
  if (b < func.num_blocks()) diag.block = func.block(b).name();
  diag.message = std::move(message);
  diag.witness = std::move(witness);
  return diag;
}

// ---------------------------------------------------------------------------
// Check A: the instrumented instructions agree with the assignment.

void check_materialization(const ir::Module& module, const ClockAssignment& assignment,
                           std::vector<Diagnostic>& out) {
  for (FuncId f = 0; f < module.functions().size(); ++f) {
    const ir::Function& func = module.function(f);

    if (assignment.is_clocked(f)) {
      // Clocked functions are charged at call sites; a clock update inside
      // would double-count.
      for (BlockId b = 0; b < func.num_blocks(); ++b) {
        for (const ir::Instr& instr : func.block(b).instrs()) {
          if (ir::is_clock_update(instr.op)) {
            out.push_back(make_diag(func, b,
                                    "clocked (Opt1) function contains a clock update; its cost "
                                    "is already charged at call sites"));
          }
        }
      }
      continue;
    }

    const FunctionClocks& clocks = assignment.funcs[f];
    if (clocks.blocks.size() != func.num_blocks()) {
      out.push_back(make_diag(func, static_cast<BlockId>(func.num_blocks()),
                              "assignment has " + std::to_string(clocks.blocks.size()) +
                                  " block entries but the function has " +
                                  std::to_string(func.num_blocks()) + " blocks"));
      continue;
    }

    for (BlockId b = 0; b < func.num_blocks(); ++b) {
      std::int64_t materialized = 0;
      std::size_t dyn_sites = 0;
      std::size_t dyn_calls = 0;
      for (std::size_t i = 0; i < func.block(b).instrs().size(); ++i) {
        const ir::Instr& instr = func.block(b).instrs()[i];
        if (instr.op == ir::Opcode::kClockAdd) materialized += instr.imm;
        if (instr.op == ir::Opcode::kClockAddDyn) {
          ++dyn_sites;
          // The next instruction must be the estimated extern call whose
          // declared coefficients this update encodes.
          const auto& instrs = func.block(b).instrs();
          const bool next_is_call =
              i + 1 < instrs.size() && instrs[i + 1].op == ir::Opcode::kCallExtern;
          if (!next_is_call) {
            out.push_back(make_diag(func, b,
                                    "kClockAddDyn is not immediately followed by an extern call"));
            continue;
          }
          const ir::Instr& call = instrs[i + 1];
          const ir::ExternDecl& decl = module.extern_decl(call.callee);
          if (!decl.estimate.has_value() || !decl.estimate->is_dynamic()) {
            out.push_back(make_diag(func, b,
                                    "kClockAddDyn precedes extern '" + decl.name +
                                        "' which has no size-dependent estimate"));
            continue;
          }
          const bool coeffs_match = instr.imm == decl.estimate->base &&
                                    instr.fimm == decl.estimate->per_unit &&
                                    instr.a == call.args[decl.estimate->size_arg_index];
          if (!coeffs_match) {
            out.push_back(make_diag(func, b,
                                    "kClockAddDyn coefficients disagree with extern '" +
                                        decl.name + "' declared estimate"));
          }
        }
        if (instr.op == ir::Opcode::kCallExtern) {
          const ir::ExternDecl& decl = module.extern_decl(instr.callee);
          if (decl.estimate.has_value() && decl.estimate->is_dynamic()) ++dyn_calls;
        }
      }
      if (materialized != clocks[b].clock) {
        out.push_back(make_diag(func, b,
                                "materialized clock adds sum to " + std::to_string(materialized) +
                                    " but the assignment requires " +
                                    std::to_string(clocks[b].clock)));
      }
      if (dyn_sites != dyn_calls) {
        out.push_back(make_diag(func, b,
                                std::to_string(dyn_calls) +
                                    " size-estimated extern call(s) but " +
                                    std::to_string(dyn_sites) + " kClockAddDyn site(s)"));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check B: every-path divergence bound via longest-path DP.

struct PathDp {
  /// Max over forward-edge paths ending *after* each block of the summed
  /// weight; kUnset where no path reaches the block.
  std::vector<double> best;
  std::vector<BlockId> parent;
  static constexpr double kUnset = -std::numeric_limits<double>::infinity();
};

/// Longest entry->block path sums of w(b) over edges that move forward in
/// RPO (retreating edges are the loop check's job).  `restrict_to` limits
/// the walk to a loop body; `start` seeds the DP.
PathDp longest_paths(const analysis::Cfg& cfg, const std::vector<double>& weight, BlockId start,
                     const std::vector<bool>* restrict_to) {
  PathDp dp;
  dp.best.assign(cfg.num_blocks(), PathDp::kUnset);
  dp.parent.assign(cfg.num_blocks(), ir::kInvalidBlock);
  dp.best[start] = weight[start];
  for (const BlockId b : cfg.rpo()) {
    if (dp.best[b] == PathDp::kUnset) continue;
    if (restrict_to && (b >= restrict_to->size() || !(*restrict_to)[b])) continue;
    for (const BlockId succ : cfg.successors(b)) {
      if (cfg.rpo_index(succ) <= cfg.rpo_index(b)) continue;  // retreating edge
      if (restrict_to && (succ >= restrict_to->size() || !(*restrict_to)[succ])) continue;
      const double candidate = dp.best[b] + weight[succ];
      if (candidate > dp.best[succ]) {
        dp.best[succ] = candidate;
        dp.parent[succ] = b;
      }
    }
  }
  return dp;
}

std::vector<std::string> dp_witness(const ir::Function& func, const PathDp& dp, BlockId end) {
  std::vector<std::string> names;
  for (BlockId b = end; b != ir::kInvalidBlock; b = dp.parent[b]) {
    names.push_back(func.block(b).name());
  }
  std::reverse(names.begin(), names.end());
  std::ostringstream line;
  line << "worst path:";
  for (const std::string& name : names) line << " -> " << name;
  return {line.str()};
}

void check_paths(const ir::Module& module, const ClockAssignment& assignment,
                 const ConservationTolerance& tol, std::vector<Diagnostic>& out) {
  for (FuncId f = 0; f < module.functions().size(); ++f) {
    if (assignment.is_clocked(f)) continue;
    const ir::Function& func = module.function(f);
    const FunctionClocks& clocks = assignment.funcs[f];
    if (clocks.blocks.size() != func.num_blocks()) continue;  // Check A reported it
    const analysis::Cfg cfg(func);

    // Signed weights: positive DP direction catches over-counting, the
    // mirrored one under-counting; both fold the relative term in linearly.
    std::vector<double> over(func.num_blocks(), 0.0);
    std::vector<double> under(func.num_blocks(), 0.0);
    for (BlockId b = 0; b < func.num_blocks(); ++b) {
      const double clock = static_cast<double>(clocks[b].clock);
      const double orig = static_cast<double>(clocks[b].original_cost);
      over[b] = clock - orig - tol.relative_slack * orig;
      under[b] = orig - clock - tol.relative_slack * orig;
    }
    const double slack = static_cast<double>(tol.absolute_slack) + 0.5;  // int rounding headroom

    auto report = [&](const PathDp& dp, BlockId end, double excess, const char* direction) {
      std::ostringstream msg;
      msg << "a path " << direction << " the exact cost beyond tolerance (excess "
          << std::llround(excess) << ", allowed " << tol.absolute_slack << " + "
          << tol.relative_slack << " * path cost)";
      out.push_back(make_diag(func, end, msg.str(), dp_witness(func, dp, end)));
    };

    // Whole-function acyclic paths: entry to every exit block.
    const PathDp dp_over = longest_paths(cfg, over, ir::Function::kEntry, nullptr);
    const PathDp dp_under = longest_paths(cfg, under, ir::Function::kEntry, nullptr);
    for (const BlockId b : cfg.rpo()) {
      if (!cfg.successors(b).empty()) continue;  // not an exit
      if (dp_over.best[b] != PathDp::kUnset && dp_over.best[b] > slack) {
        report(dp_over, b, dp_over.best[b] - tol.absolute_slack, "over-counts");
      }
      if (dp_under.best[b] != PathDp::kUnset && dp_under.best[b] > slack) {
        report(dp_under, b, dp_under.best[b] - tol.absolute_slack, "under-counts");
      }
    }

    // Per-iteration bound for every natural loop: header to each latch over
    // forward edges inside the body.
    const analysis::DominatorTree domtree(cfg);
    const analysis::LoopInfo loops(cfg, domtree);
    for (const BlockId header : loops.headers()) {
      const std::vector<bool>& body = loops.loop_body(header);
      const PathDp loop_over = longest_paths(cfg, over, header, &body);
      const PathDp loop_under = longest_paths(cfg, under, header, &body);
      for (const auto& [latch, h] : loops.back_edges()) {
        if (h != header) continue;
        if (loop_over.best[latch] != PathDp::kUnset && loop_over.best[latch] > slack) {
          report(loop_over, latch, loop_over.best[latch] - tol.absolute_slack,
                 "over-counts (per loop iteration)");
        }
        if (loop_under.best[latch] != PathDp::kUnset && loop_under.best[latch] > slack) {
          report(loop_under, latch, loop_under.best[latch] - tol.absolute_slack,
                 "under-counts (per loop iteration)");
        }
      }
    }
  }
}

}  // namespace

ConservationTolerance tolerance_for(const pass::PassOptions& options) {
  ConservationTolerance tol;
  if (!options.opt2_conditional && !options.opt3_averaging && !options.opt4_loops) {
    return tol;  // Opt1/Opt2a alone never change a path's sum
  }
  // Matches the dynamic property-test envelope: relative divergence well
  // under 1/2, plus absolute headroom for Opt4's merged latch clocks and
  // Opt3's per-region rounding.
  tol.relative_slack = 0.5;
  tol.absolute_slack = std::max<std::int64_t>(64, 4 * options.opt4_threshold);
  return tol;
}

void check_clock_conservation(const ir::Module& instrumented, const pass::ClockAssignment& assignment,
                              const pass::PassOptions& options, std::vector<Diagnostic>& out) {
  check_clock_conservation(instrumented, assignment, options, tolerance_for(options), out);
}

void check_clock_conservation(const ir::Module& instrumented, const pass::ClockAssignment& assignment,
                              const pass::PassOptions& options, const ConservationTolerance& tol,
                              std::vector<Diagnostic>& out) {
  (void)options;
  check_materialization(instrumented, assignment, out);
  check_paths(instrumented, assignment, tol, out);
}

}  // namespace detlock::staticcheck
