// Error-reporting helpers shared across all DetLock modules.
//
// DETLOCK_CHECK is used for programmer-contract violations (IR invariants,
// pass preconditions).  It throws detlock::Error, which carries the failing
// expression and location so tests can assert on failures without aborting
// the whole process.
#pragma once

#include <stdexcept>
#include <string>

namespace detlock {

/// Exception thrown on any internal invariant violation or malformed input
/// (IR parse errors, verifier failures, bad estimate files, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

[[noreturn]] inline void raise_error(const char* file, int line, const std::string& what) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + what);
}

}  // namespace detlock

#define DETLOCK_CHECK(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::detlock::raise_error(__FILE__, __LINE__,                      \
                             std::string("check failed: ") + #cond +  \
                                 " -- " + (msg));                     \
    }                                                                 \
  } while (false)

#define DETLOCK_UNREACHABLE(msg) ::detlock::raise_error(__FILE__, __LINE__, std::string("unreachable: ") + (msg))
