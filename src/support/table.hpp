// Plain-text table renderer for the benchmark harnesses.
//
// Every table/figure harness prints its result in the same aligned layout the
// paper uses (benchmark columns, configuration rows), so EXPERIMENTS.md can
// be filled by copy-pasting harness output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace detlock {

class TextTable {
 public:
  /// First row added is treated as the header.
  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal rule before the next row.
  void add_rule();
  /// A full-width section banner row (like the paper's "After Inserting
  /// Clocks" band in Table I).
  void add_section(std::string title);

  void render(std::ostream& os) const;
  std::string to_string() const;

  /// Comma-separated dump (sections become single-cell rows).
  std::string to_csv() const;

 private:
  struct Row {
    enum class Kind { kCells, kRule, kSection };
    Kind kind = Kind::kCells;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows_;
};

}  // namespace detlock
