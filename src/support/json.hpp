// Minimal streaming JSON writer shared by every machine-readable report
// (detlockc --json, the detserve batch report, bench gate outputs).
//
// Versioning contract (docs/cli-reference.md): every top-level report
// object starts with "schema_version": kReportSchemaVersion.  Consumers
// must check the version before reading any other field; producers bump the
// constant whenever a field is removed or changes meaning (additions are
// backward compatible and do not bump it).
//
// The writer emits keys in call order with deterministic formatting (two-
// space indent, '.'-decimal doubles via %.17g, lowercase hex helpers), so
// report output is stable enough for golden-file tests once wall-clock
// fields are normalized away.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace detlock {

inline constexpr int kReportSchemaVersion = 1;

class JsonWriter {
 public:
  /// `compact` suppresses all newlines and indentation, producing the whole
  /// document on one line -- the framing detserved's wire protocol needs
  /// (one JSON frame per line).  str() still appends the trailing '\n', so
  /// a compact document IS a complete frame.
  explicit JsonWriter(bool compact = false) : compact_(compact) {}

  /// Begins an object or array.  The top-level call must be exactly one of
  /// these; nesting is tracked so end() knows which delimiter to emit.
  void begin_object();
  void begin_array();
  void end();  // closes the innermost object/array

  /// Object context only: emit the key for the next value.
  JsonWriter& key(std::string_view k);

  /// Scalars (valid as array elements or after key()).
  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(double v);
  void value(bool v);
  void value_null();
  /// 16-digit lowercase hex string (fingerprints; matches detlockc's text
  /// output format).
  void value_hex(std::uint64_t v);

  /// Convenience: key + scalar in one call.
  template <typename T>
  void field(std::string_view k, T v) {
    key(k);
    value(v);
  }
  void field_hex(std::string_view k, std::uint64_t v) {
    key(k);
    value_hex(v);
  }

  /// The finished document; every begin_* must have been end()ed.
  std::string str() const;

  static std::string escape(std::string_view s);

 private:
  void prefix();  // indentation + comma bookkeeping before a value/key
  void newline_indent();  // layout between items; nothing in compact mode

  bool compact_ = false;
  std::string out_;
  /// One char per open scope: 'o' object, 'a' array; parallel "needs comma"
  /// flags packed into counts_.
  std::string scopes_;
  std::string pending_;  // set by key(); consumed by the next value
  std::vector<bool> has_items_;
  bool keyed_ = false;
};

}  // namespace detlock
