// Cache-line utilities.
//
// Per-thread logical clocks are polled by every other thread on each lock
// acquisition, so each clock must live on its own cache line to avoid false
// sharing (Core Guidelines CP.200-ish territory: contended atomics dominate
// runtime cost if they share lines).
#pragma once

#include <cstddef>

namespace detlock {

// A fixed 64 bytes rather than std::hardware_destructive_interference_size:
// the standard constant is an ABI hazard (GCC warns that it varies with
// -mtune), and 64 is correct for every x86-64 and the common AArch64 parts;
// the padding is a performance property, not a correctness one.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps T so that consecutive Padded<T> elements in an array never share a
/// cache line.  T must be trivially sized <= one line for the padding to be
/// meaningful, but larger T still works (it simply rounds up).
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

}  // namespace detlock
