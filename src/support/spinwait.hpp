// Adaptive spin-wait.
//
// The Kendo wait-for-turn loop is a busy poll over other threads' clocks.
// On a machine with fewer hardware threads than program threads (including
// this container, which exposes a single hardware thread), hard spinning
// deadlocks progress: the spinner burns its whole quantum while the thread
// it waits on is descheduled.  SpinWait therefore escalates from cheap CPU
// pauses to sched_yield to short sleeps.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace detlock {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

/// Escalating waiter: pause x N, then yield x M, then 1us sleeps.
/// Reset after the awaited condition flips so the next wait starts cheap.
class SpinWait {
 public:
  explicit SpinWait(std::uint32_t pause_limit = 64, std::uint32_t yield_limit = 65536)
      : pause_limit_(pause_limit), yield_limit_(yield_limit) {}

  void wait() {
    if (iteration_ < pause_limit_) {
      cpu_relax();
    } else if (iteration_ < pause_limit_ + yield_limit_) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(1));
    }
    ++iteration_;
  }

  void reset() { iteration_ = 0; }

  std::uint64_t iterations() const { return iteration_; }

 private:
  std::uint32_t pause_limit_;
  std::uint32_t yield_limit_;
  std::uint64_t iteration_ = 0;
};

}  // namespace detlock
