// Adaptive spin-wait.
//
// The Kendo wait-for-turn loop is a busy poll over other threads' clocks.
// On a machine with fewer hardware threads than program threads (including
// this container, which exposes a single hardware thread), hard spinning
// deadlocks progress: the spinner burns its whole quantum while the thread
// it waits on is descheduled.  SpinWait therefore escalates from cheap CPU
// pauses to sched_yield to short sleeps.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace detlock {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

/// Escalating waiter: pause x N, then yield x M, then exponentially growing
/// sleeps (1us doubling to max_sleep_us).  The capped doubling matters on
/// oversubscribed machines: a fixed 1us sleep still wakes ~1M times/sec per
/// parked thread, which starves the thread everyone is waiting on; backing
/// off to ~100us cuts that three orders of magnitude while keeping worst
/// -case wakeup latency far below any watchdog window.
/// Reset after the awaited condition flips so the next wait starts cheap.
class SpinWait {
 public:
  explicit SpinWait(std::uint32_t pause_limit = 64, std::uint32_t yield_limit = 65536,
                    std::uint32_t max_sleep_us = 100)
      : pause_limit_(pause_limit), yield_limit_(yield_limit), max_sleep_us_(max_sleep_us) {}

  void wait() {
    if (iteration_ < pause_limit_) {
      cpu_relax();
    } else if (iteration_ < pause_limit_ + yield_limit_) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
      sleep_us_ = next_sleep(sleep_us_);
    }
    ++iteration_;
  }

  void reset() {
    iteration_ = 0;
    sleep_us_ = 1;
  }

  std::uint64_t iterations() const { return iteration_; }

  /// The duration the *next* sleep-tier wait() would request (schedule is
  /// pinned by tests/support/spinwait_cacheline_test.cpp).
  std::uint32_t next_sleep_us() const { return sleep_us_; }

 private:
  std::uint32_t next_sleep(std::uint32_t current) const {
    const std::uint32_t cap = max_sleep_us_ == 0 ? 1 : max_sleep_us_;
    if (current >= cap / 2 + cap % 2) return cap;  // doubling would overshoot
    return current * 2;
  }

  std::uint32_t pause_limit_;
  std::uint32_t yield_limit_;
  std::uint32_t max_sleep_us_;
  std::uint32_t sleep_us_ = 1;
  std::uint64_t iteration_ = 0;
};

}  // namespace detlock
