#include "support/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace detlock {

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{Row::Kind::kCells, std::move(cells)});
}

void TextTable::add_rule() { rows_.push_back(Row{Row::Kind::kRule, {}}); }

void TextTable::add_section(std::string title) {
  rows_.push_back(Row{Row::Kind::kSection, {std::move(title)}});
}

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths;
  for (const Row& row : rows_) {
    if (row.kind != Row::Kind::kCells) continue;
    if (widths.size() < row.cells.size()) widths.resize(row.cells.size(), 0);
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }
  std::size_t total = widths.empty() ? 0 : 3 * (widths.size() - 1);
  for (std::size_t w : widths) total += w;

  for (const Row& row : rows_) {
    switch (row.kind) {
      case Row::Kind::kRule:
        os << std::string(total, '-') << '\n';
        break;
      case Row::Kind::kSection: {
        const std::string& title = row.cells.front();
        os << "== " << title << " " << std::string(total > title.size() + 4 ? total - title.size() - 4 : 0, '=')
           << '\n';
        break;
      }
      case Row::Kind::kCells: {
        for (std::size_t i = 0; i < row.cells.size(); ++i) {
          if (i > 0) os << " | ";
          os << row.cells[i];
          if (i + 1 < row.cells.size() && widths[i] > row.cells[i].size()) {
            os << std::string(widths[i] - row.cells[i].size(), ' ');
          }
        }
        os << '\n';
        break;
      }
    }
  }
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  render(oss);
  return oss.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream oss;
  for (const Row& row : rows_) {
    if (row.kind == Row::Kind::kRule) continue;
    if (row.kind == Row::Kind::kSection) {
      oss << row.cells.front() << '\n';
      continue;
    }
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      if (i > 0) oss << ',';
      oss << row.cells[i];
    }
    oss << '\n';
  }
  return oss.str();
}

}  // namespace detlock
