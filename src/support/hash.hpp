// Incremental FNV-1a hashing.
//
// Used to fingerprint lock-acquisition orders and final shared-memory images:
// two runs are "deterministic" iff their fingerprints match.  FNV-1a is not
// cryptographic, but collisions between two *different* schedules of the same
// program are vanishingly unlikely for test purposes and the hash is
// byte-order independent given we feed it fixed-width little-endian words.
#pragma once

#include <cstdint>
#include <string_view>

namespace detlock {

class Fnv1aHasher {
 public:
  void update_byte(std::uint8_t b) {
    hash_ ^= b;
    hash_ *= 0x100000001b3ULL;
  }

  void update_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      update_byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void update_i64(std::int64_t v) { update_u64(static_cast<std::uint64_t>(v)); }

  void update_string(std::string_view s) {
    for (char c : s) update_byte(static_cast<std::uint8_t>(c));
  }

  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace detlock
