#include "support/json.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace detlock {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (compact_) return;
  out_ += '\n';
  out_.append(2 * scopes_.size(), ' ');
}

void JsonWriter::prefix() {
  if (!pending_.empty()) {
    out_ += pending_;
    pending_.clear();
    keyed_ = false;
    return;
  }
  DETLOCK_CHECK(scopes_.empty() || scopes_.back() != 'o' || keyed_,
                "JsonWriter: value in object context requires key()");
  if (!scopes_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
    newline_indent();
  }
}

JsonWriter& JsonWriter::key(std::string_view k) {
  DETLOCK_CHECK(!scopes_.empty() && scopes_.back() == 'o', "JsonWriter: key() outside an object");
  DETLOCK_CHECK(pending_.empty(), "JsonWriter: key() twice without a value");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  newline_indent();
  pending_ = "\"" + escape(k) + "\": ";
  keyed_ = true;
  return *this;
}

void JsonWriter::begin_object() {
  prefix();
  out_ += '{';
  scopes_ += 'o';
  has_items_.push_back(false);
}

void JsonWriter::begin_array() {
  prefix();
  out_ += '[';
  scopes_ += 'a';
  has_items_.push_back(false);
}

void JsonWriter::end() {
  DETLOCK_CHECK(!scopes_.empty(), "JsonWriter: end() with nothing open");
  DETLOCK_CHECK(pending_.empty(), "JsonWriter: end() with a dangling key");
  const char scope = scopes_.back();
  const bool had_items = has_items_.back();
  scopes_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  out_ += scope == 'o' ? '}' : ']';
}

void JsonWriter::value(std::string_view s) {
  prefix();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
}

void JsonWriter::value(std::int64_t v) {
  prefix();
  out_ += str_format("%lld", static_cast<long long>(v));
}

void JsonWriter::value(std::uint64_t v) {
  prefix();
  out_ += str_format("%llu", static_cast<unsigned long long>(v));
}

void JsonWriter::value(double v) {
  prefix();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no Inf/NaN; null is the conventional stand-in
    return;
  }
  std::string s = str_format("%.17g", v);
  // Guarantee the token reads back as a double, not an integer.
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  out_ += s;
}

void JsonWriter::value(bool v) {
  prefix();
  out_ += v ? "true" : "false";
}

void JsonWriter::value_null() {
  prefix();
  out_ += "null";
}

void JsonWriter::value_hex(std::uint64_t v) {
  prefix();
  out_ += str_format("\"%016llx\"", static_cast<unsigned long long>(v));
}

std::string JsonWriter::str() const {
  DETLOCK_CHECK(scopes_.empty(), "JsonWriter: str() with open scopes");
  return out_ + "\n";
}

}  // namespace detlock
