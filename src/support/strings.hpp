// String helpers used by the IR parser, estimate-file parser and table
// printers.  Deliberately minimal: everything operates on string_view and
// allocates only when producing owned results.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace detlock {

std::string_view trim(std::string_view s);
std::vector<std::string_view> split(std::string_view s, char delim);
/// Split on any run of whitespace; no empty tokens.
std::vector<std::string_view> split_whitespace(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);

std::optional<std::int64_t> parse_int(std::string_view s);
std::optional<double> parse_double(std::string_view s);

/// printf-style formatting into std::string (type-checked by the compiler
/// via the format attribute where available).
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string
str_format(const char* fmt, ...);

}  // namespace detlock
