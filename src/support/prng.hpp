// Deterministic PRNG (xoshiro256**) used by workload generators.
//
// Workloads must be bit-reproducible across runs so that determinism tests
// can compare lock-order hashes; std::mt19937 would also work but xoshiro is
// smaller, faster, and its whole state is trivially copyable for snapshotting.
#pragma once

#include <cstdint>

namespace detlock {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t state_[4]{};
};

}  // namespace detlock
