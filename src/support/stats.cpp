#include "support/stats.hpp"

#include <cmath>

namespace detlock {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

RunningStats stats_of(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s;
}

RunningStats stats_of(const std::vector<std::int64_t>& values) {
  RunningStats s;
  for (std::int64_t v : values) s.add(static_cast<double>(v));
  return s;
}

bool ClockabilityCriteria::accepts(const RunningStats& s) const {
  // Must reject before querying range(): on an empty accumulator range() is
  // NaN, and NaN's all-false comparisons would otherwise slip through the
  // `>` rejection tests below and accept a region with no paths at all.
  if (s.count() == 0) return false;
  return accepts(s.mean(), s.stddev(), s.range());
}

bool ClockabilityCriteria::accepts(double mean, double stddev, double range) const {
  // A region whose every path costs zero is trivially clockable (clock
  // contribution 0); with a zero mean the ratio tests below correctly
  // reject any nonzero spread.
  if (range > mean / range_divisor) return false;
  if (stddev > mean / stddev_divisor) return false;
  return true;
}

}  // namespace detlock
