// Small statistics helpers.
//
// The DetLock clockability criteria (paper Sec. IV-A / IV-C) are phrased in
// terms of mean, population standard deviation, and range of per-path clock
// totals; PathStats computes exactly those.  Welford accumulation keeps the
// computation single-pass and numerically stable even for millions of paths.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace detlock {

/// Single-pass mean / population-stddev / min / max accumulator.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance (divide by N), matching the paper's `std(clocks)`
  /// over the full path population rather than a sample estimate.
  double variance() const;
  double stddev() const;
  /// Extremum queries on an EMPTY accumulator return quiet NaN (min, max,
  /// and range alike).  A 0.0 here used to masquerade as a real zero-cost
  /// path in clockability decisions; NaN instead poisons every ordered
  /// comparison (all compare false), so forgetting the count() guard can
  /// only make a criterion *fail* closed at its comparison site, never
  /// fabricate a plausible value.  Callers that need a defined answer must
  /// check count() first -- as ClockabilityCriteria::accepts does.
  double min() const { return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_; }
  double max() const { return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_; }
  double range() const { return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_ - min_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience: stats over a materialized vector (used where the path set is
/// already enumerated).
RunningStats stats_of(const std::vector<double>& values);
RunningStats stats_of(const std::vector<std::int64_t>& values);

/// The paper's clockability test (Fig. 4 lines 5-11 and Fig. 11 line 8):
/// reject when range > mean/range_divisor or stddev > mean/stddev_divisor.
/// Divisors default to the paper's constants (2.5 and 5).
struct ClockabilityCriteria {
  double range_divisor = 2.5;
  double stddev_divisor = 5.0;

  bool accepts(const RunningStats& s) const;
  /// Same test on precomputed aggregates (used when path statistics come
  /// from a DP that never materializes individual paths).
  bool accepts(double mean, double stddev, double range) const;
};

}  // namespace detlock
