#include "support/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace detlock {

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  std::size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_whitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // strtoll needs a NUL-terminated buffer; copy into a small stack string.
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace detlock
