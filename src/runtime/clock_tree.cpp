#include "runtime/clock_tree.hpp"

#include <algorithm>

namespace detlock::runtime {

namespace {

std::uint32_t round_up_div(std::uint32_t n, std::uint32_t d) { return (n + d - 1) / d; }

}  // namespace

MinClockTree::MinClockTree(std::uint32_t capacity) : capacity_(capacity) {
  DETLOCK_CHECK(capacity >= 1, "MinClockTree needs at least one slot");
  DETLOCK_CHECK(capacity <= kIdMask + 1, "MinClockTree slot ids must fit in 16 packed bits");
  // Leaves, then successively smaller combining levels down to a single
  // root.  A capacity that already fits one node still gets a root level so
  // root() always reads a combining node (one settled word).
  std::uint32_t width = capacity;
  levels_.emplace_back(width);
  do {
    width = round_up_div(width, kArity);
    levels_.emplace_back(width);
  } while (width > 1);
}

void MinClockTree::refresh(std::size_t level, std::uint32_t index) {
  Node& node = levels_[level][index].value;
  while (node.busy.exchange(true, std::memory_order_seq_cst)) {
    // Tiny critical section (<= kArity loads + one store); spin.
  }
  const auto& children = levels_[level - 1];
  const std::uint32_t first = index * kArity;
  const std::uint32_t last =
      std::min<std::uint32_t>(first + kArity, static_cast<std::uint32_t>(children.size()));
  std::uint64_t min = kPackedInfinity;
  for (std::uint32_t c = first; c < last; ++c) {
    const std::uint64_t v = children[c].value.min.load(std::memory_order_seq_cst);
    if (v < min) min = v;
  }
  node.min.store(min, std::memory_order_seq_cst);
  node.busy.store(false, std::memory_order_seq_cst);
}

std::uint32_t MinClockTree::update(std::uint32_t id, std::uint64_t clock) {
  DETLOCK_CHECK(id < capacity_, "MinClockTree slot id out of range");
  const std::uint64_t packed =
      clock == ~std::uint64_t{0} ? kPackedInfinity : pack(clock, id);
  levels_[0][id].value.min.store(packed, std::memory_order_seq_cst);

  std::uint32_t refreshed = 0;
  std::uint32_t index = id;
  // Leaf-slot span covered by the CHILD we ascend from (1 at level 1: the
  // leaf itself); a node must be recomputed when its value quotes a leaf in
  // that span, because the value we are pushing up from there has changed.
  std::uint64_t span = 1;
  for (std::size_t level = 1; level < levels_.size(); ++level, span *= kArity) {
    index /= kArity;
    Node& node = levels_[level][index].value;
    for (;;) {
      const std::uint64_t cur = node.min.load(std::memory_order_seq_cst);
      const bool improves = packed < cur;
      // The node quotes a value from this subtree (possibly a stale one):
      // it must be recomputed even when we only raised our leaf, or the
      // old value would linger at this level forever.
      const bool quotes_ours = cur != kPackedInfinity &&
                               packed_id(cur) / span == static_cast<std::uint64_t>(id) / span;
      if (improves || quotes_ours) {
        refresh(level, index);
        ++refreshed;
        break;
      }
      // Prune candidate: the node's minimum comes from a sibling subtree
      // and is <= ours, so our change cannot alter this level or any
      // above.  That conclusion is only sound if no concurrent refresh is
      // mid-flight with a snapshot of our OLD leaf (it would write a value
      // quoting us back AFTER we walked away, and -- if we never publish
      // again, e.g. this update parks or finishes the slot -- nobody would
      // ever clear it, wedging every waiter).  Triple-check under seq_cst:
      // observing busy == false here means any later refresher's child
      // loads are ordered after our leaf store above (it sees the new
      // value), and re-reading an unchanged `min` rules out a refresh that
      // completed between the two reads.  A changed value or a busy
      // refresher sends us around the loop to re-decide.
      if (!node.busy.load(std::memory_order_seq_cst) &&
          node.min.load(std::memory_order_seq_cst) == cur) {
        return refreshed;
      }
    }
  }
  return refreshed;
}

void MinClockTree::repair(std::uint32_t id) {
  DETLOCK_CHECK(id < capacity_, "MinClockTree slot id out of range");
  std::uint32_t index = id;
  for (std::size_t level = 1; level < levels_.size(); ++level) {
    index /= kArity;
    refresh(level, index);
  }
}

}  // namespace detlock::runtime
