// SyncBackend: the synchronization interface the execution engine targets.
//
// Three implementations exist:
//   * NondetBackend  -- plain mutexes/barriers, clocks ignored.  This is the
//                       paper's "Original Exec Time" baseline.
//   * DetBackend     -- Kendo's weak-determinism algorithm driven by
//                       compiler-inserted logical clocks (DetLock proper),
//                       or by chunk-published clocks (the Kendo comparison
//                       configuration), selected by RuntimeConfig.
// The interpreter calls these hooks for every synchronization instruction
// and for every clockadd the DetLock pass inserted.
#pragma once

#include <cstdint>

#include "runtime/config.hpp"
#include "runtime/trace.hpp"
#include "runtime/watchdog.hpp"

namespace detlock::runtime {

class SharedMemory;

struct BackendStats {
  std::uint64_t lock_acquires = 0;
  std::uint64_t lock_wait_spins = 0;   // wait-for-turn iterations
  std::uint64_t failed_trylocks = 0;   // acquire attempts retried
  std::uint64_t barrier_waits = 0;
  std::uint64_t clock_publications = 0;
  std::uint64_t atomic_ops = 0;        // atomic loads/stores/rmws + fences
  /// Turn-predicate cost counters (DetBackend only; zero elsewhere).
  /// turn_polls counts has_turn evaluations; turn_scan_slots counts slots
  /// examined across them -- ~1/poll for the min-clock tree vs up to
  /// O(registered)/poll for the flat scan.  The scan/poll ratio is
  /// bench/threads_sweep's machine-independent turn-wait scaling signal.
  std::uint64_t turn_polls = 0;
  std::uint64_t turn_scan_slots = 0;
};

/// Backends are also StallSources: the watchdog samples their per-thread
/// wait state and per-mutex ownership when the progress counter freezes.
/// The StallSource default (empty snapshot) keeps minimal backends valid.
class SyncBackend : public StallSource {
 public:
  ~SyncBackend() override = default;

  /// Registers the initial thread; must be called exactly once, first.
  virtual ThreadId register_main_thread() = 0;

  /// Deterministically allocates an id for a child of `parent` and seeds its
  /// clock; called by the spawning thread *before* the OS thread starts.
  virtual ThreadId register_spawn(ThreadId parent) = 0;

  /// Called by a thread when its program function returns.
  virtual void thread_finish(ThreadId self) = 0;

  /// Blocks until `target` finishes.
  virtual void join(ThreadId self, ThreadId target) = 0;

  /// Advance the calling thread's logical clock (kClockAdd / kClockAddDyn).
  virtual void clock_add(ThreadId self, std::uint64_t delta) = 0;

  /// Current logical clock of a thread (test/diagnostic hook).
  virtual std::uint64_t clock_of(ThreadId thread) const = 0;

  virtual void lock(ThreadId self, MutexId mutex) = 0;
  virtual void unlock(ThreadId self, MutexId mutex) = 0;
  virtual void barrier_wait(ThreadId self, BarrierId barrier, std::uint32_t participants) = 0;

  /// Condition variables (paper future work; see det_backend.cpp for the
  /// determinism argument).  cond_wait must be called holding `mutex`; it
  /// releases it while waiting and reacquires before returning.  Signalers
  /// must hold the same mutex the waiters used.  No spurious wakeups are
  /// generated, but callers should still re-test their predicate in a loop.
  virtual void cond_wait(ThreadId self, CondVarId condvar, MutexId mutex) = 0;
  virtual void cond_signal(ThreadId self, CondVarId condvar) = 0;
  virtual void cond_broadcast(ThreadId self, CondVarId condvar) = 0;

  /// Performs one guest atomic operation (or fence) as a synchronization
  /// point and returns the observed (old) value.  Under the deterministic
  /// backend this consumes a turn exactly like a lock acquire: the thread
  /// waits until its published clock is the strict minimum, performs the
  /// memory side effect via `memory.atomic_apply` inside the turn, then
  /// bumps its clock to release the turn -- so the global order of atomic
  /// operations is the turn order and is byte-reproducible.  A failed
  /// spinlock CAS therefore costs its spinner one clock tick per attempt,
  /// which is exactly what keeps guest spin loops live (the lock holder's
  /// clock eventually becomes the minimum).
  virtual std::int64_t atomic_op(ThreadId self, const AtomicOp& op, SharedMemory& memory) = 0;

  virtual const RunTrace& trace() const = 0;
  virtual BackendStats stats() const = 0;
};

}  // namespace detlock::runtime
