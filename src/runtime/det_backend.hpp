// DetBackend: Kendo's weak-determinism algorithm (paper Sec. III-A, Fig. 2),
// driven by logical clocks that DetLock's compiler pass advances.
//
// Determinism argument (all three pieces matter, and the tests exercise
// each):
//   1. TURN.  A thread performs a lock-acquire attempt only while its
//      published clock is the strict minimum over live threads (ties broken
//      by thread id), so attempts are globally serialized in an order that
//      depends only on clock values -- which, being compiler-computed from
//      control flow, are themselves deterministic.
//   2. LOGICAL RELEASE TIME.  An attempt by a thread at clock c succeeds
//      only if the mutex is free AND its recorded release time h satisfies
//      h < c.  If h < c, the releasing thread's clock already passed c
//      before the attempting thread could obtain the turn, so the release
//      has *physically* happened in every execution -- the outcome cannot
//      depend on scheduling.  If h >= c the attempt fails in every
//      execution (even if the release already physically happened), the
//      thread bumps its clock by 1 and retries.
//   3. BARRIER PARKING.  A thread waiting at a barrier publishes +infinity
//      (it is not competing), and resumes at max(arrival clocks) + 1.
//      This is deterministic only when every live thread participates in
//      the barrier: a non-participant could otherwise observe the parked
//      thread either before parking or after resuming at a *lower* clock,
//      changing who wins a concurrent acquire.  RuntimeConfig::
//      strict_barriers enforces the all-threads requirement.
#pragma once

#include <memory>

#include "runtime/backend.hpp"
#include "runtime/clock_table.hpp"
#include "support/cacheline.hpp"

namespace detlock::runtime {

class DetBackend final : public SyncBackend {
 public:
  explicit DetBackend(RuntimeConfig config = {});
  ~DetBackend() override;

  ThreadId register_main_thread() override;
  ThreadId register_spawn(ThreadId parent) override;
  void thread_finish(ThreadId self) override;
  void join(ThreadId self, ThreadId target) override;
  void clock_add(ThreadId self, std::uint64_t delta) override;
  std::uint64_t clock_of(ThreadId thread) const override;
  void lock(ThreadId self, MutexId mutex) override;
  void unlock(ThreadId self, MutexId mutex) override;
  void barrier_wait(ThreadId self, BarrierId barrier, std::uint32_t participants) override;
  void cond_wait(ThreadId self, CondVarId condvar, MutexId mutex) override;
  void cond_signal(ThreadId self, CondVarId condvar) override;
  void cond_broadcast(ThreadId self, CondVarId condvar) override;
  std::int64_t atomic_op(ThreadId self, const AtomicOp& op, SharedMemory& memory) override;
  const RunTrace& trace() const override;
  BackendStats stats() const override;

  /// Watchdog snapshot: per-thread phase/clock/wait-state plus every mutex
  /// that has ever been touched (packed word nonzero).  Samples existing
  /// atomics racily; safe to call from the monitor thread at any time.
  StallSnapshot stall_snapshot() const override;

  const RuntimeConfig& config() const { return config_; }

  /// Blocks until `self` holds the turn (exposed for targeted tests).
  void wait_for_turn(ThreadId self);

 private:
  static constexpr std::uint64_t kWaitTargetMask = (std::uint64_t{1} << 56) - 1;

  /// Publish what `self` is blocked on, packed into one owner-written
  /// atomic so the watchdog can sample it.  Gated on progress_ (watchdog
  /// wired), keeping the fast path a single null test.
  void note_wait(ThreadId self, WaitReason reason, std::uint64_t target) {
    if (progress_ != nullptr) {
      wait_state_[self].value.store(
          (static_cast<std::uint64_t>(reason) << 56) | (target & kWaitTargetMask),
          std::memory_order_relaxed);
    }
  }

  /// A synchronization operation *completed*: this, not clock motion, is
  /// what the watchdog calls progress (deadlocked threads climb forever).
  void note_progress(ThreadId self) {
    if (progress_ != nullptr) {
      progress_->fetch_add(1, std::memory_order_relaxed);
      wait_state_[self].value.store(0, std::memory_order_relaxed);
    }
  }
  void check_abort() const {
    if (config_.abort_flag != nullptr && config_.abort_flag->load(std::memory_order_relaxed)) {
      throw Error("deterministic runtime aborted (another thread failed)");
    }
  }

  struct MutexState;
  struct BarrierState;
  struct CondVarState;

  MutexState& mutex_state(MutexId id);
  BarrierState& barrier_state(BarrierId id);
  CondVarState& condvar_state(CondVarId id);
  /// Shared wait logic: returns the signal stamp once deterministically
  /// observable (see cond_wait's comment).
  std::uint64_t await_signal(ThreadId self);

  RuntimeConfig config_;
  ClockTable clocks_;
  RunTrace trace_;
  /// Wait-time attribution (runtime/profile.hpp); null = profiling off and
  /// every hook below reduces to an inlined null test.  Not owned.
  Profiler* prof_ = nullptr;
  /// Deterministic fault injection (runtime/faultinject.hpp); null = off,
  /// same discipline.  Not owned.
  FaultInjector* fault_ = nullptr;
  /// Watchdog progress counter; null = watchdog off (and wait_state_ is
  /// never written).  Not owned.
  std::atomic<std::uint64_t>* progress_ = nullptr;
  /// Synchronization-event observer (runtime/sync_observer.hpp); null = off,
  /// same null-test discipline.  Not owned.
  SyncObserver* obs_ = nullptr;
  /// Per-thread packed wait state: (WaitReason << 56) | target.
  std::vector<Padded<std::atomic<std::uint64_t>>> wait_state_;
  std::vector<std::unique_ptr<MutexState>> mutexes_;
  std::vector<std::unique_ptr<BarrierState>> barriers_;
  std::vector<std::unique_ptr<CondVarState>> condvars_;
  std::vector<Padded<BackendStats>> thread_stats_;
  /// Per-thread signal mailbox: 0 = none, else signaler's clock + 1.  A
  /// thread waits on at most one condvar at a time, so one slot suffices.
  std::vector<Padded<std::atomic<std::uint64_t>>> cond_signal_;
  std::atomic<std::uint32_t> next_thread_id_{0};
};

}  // namespace detlock::runtime
