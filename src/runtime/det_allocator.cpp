#include "runtime/det_allocator.hpp"

#include "support/error.hpp"

namespace detlock::runtime {

DetAllocator::DetAllocator(SyncBackend& backend, MutexId internal_mutex, std::int64_t heap_base,
                           std::int64_t heap_words)
    : backend_(backend), mutex_(internal_mutex) {
  DETLOCK_CHECK(heap_base > 0, "heap base must be positive (0 is the null address)");
  DETLOCK_CHECK(heap_words > 0, "empty heap");
  free_by_addr_.emplace(heap_base, heap_words);
}

std::int64_t DetAllocator::allocate(ThreadId self, std::int64_t words) {
  DETLOCK_CHECK(words > 0, "allocation of non-positive size");
  backend_.lock(self, mutex_);
  ++stats_.alloc_calls;
  std::int64_t result = 0;
  for (auto it = free_by_addr_.begin(); it != free_by_addr_.end(); ++it) {
    if (it->second < words) continue;
    result = it->first;
    const std::int64_t remaining = it->second - words;
    free_by_addr_.erase(it);
    if (remaining > 0) free_by_addr_.emplace(result + words, remaining);
    live_.emplace(result, words);
    stats_.live_words += words;
    if (stats_.live_words > stats_.peak_live_words) stats_.peak_live_words = stats_.live_words;
    break;
  }
  if (result == 0) ++stats_.failed_allocs;
  backend_.unlock(self, mutex_);
  return result;
}

void DetAllocator::deallocate(ThreadId self, std::int64_t addr) {
  backend_.lock(self, mutex_);
  const auto live_it = live_.find(addr);
  if (live_it == live_.end()) {
    backend_.unlock(self, mutex_);
    throw Error("deallocate of unknown or already-freed address " + std::to_string(addr));
  }
  std::int64_t base = addr;
  std::int64_t len = live_it->second;
  live_.erase(live_it);
  ++stats_.free_calls;
  stats_.live_words -= len;

  // Coalesce with the following free range.
  const auto next = free_by_addr_.find(base + len);
  if (next != free_by_addr_.end()) {
    len += next->second;
    free_by_addr_.erase(next);
  }
  // Coalesce with the preceding free range.
  if (!free_by_addr_.empty()) {
    auto prev = free_by_addr_.lower_bound(base);
    if (prev != free_by_addr_.begin()) {
      --prev;
      if (prev->first + prev->second == base) {
        base = prev->first;
        len += prev->second;
        free_by_addr_.erase(prev);
      }
    }
  }
  free_by_addr_.emplace(base, len);
  backend_.unlock(self, mutex_);
}

}  // namespace detlock::runtime
