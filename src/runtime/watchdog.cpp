#include "runtime/watchdog.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "runtime/clock_table.hpp"  // kClockInfinity
#include "support/error.hpp"

namespace detlock::runtime {

const char* wait_reason_name(WaitReason r) {
  switch (r) {
    case WaitReason::kNone: return "none";
    case WaitReason::kTurn: return "turn";
    case WaitReason::kMutex: return "mutex";
    case WaitReason::kBarrier: return "barrier";
    case WaitReason::kCondVar: return "condvar";
    case WaitReason::kJoin: return "join";
  }
  DETLOCK_UNREACHABLE("bad wait reason");
}

namespace {

const char* phase_name(ThreadPhase p) {
  switch (p) {
    case ThreadPhase::kUnregistered: return "unregistered";
    case ThreadPhase::kLive: return "live";
    case ThreadPhase::kFinished: return "finished";
  }
  DETLOCK_UNREACHABLE("bad thread phase");
}

const MutexSnapshot* find_mutex(const StallSnapshot& snap, MutexId id) {
  for (const MutexSnapshot& m : snap.mutexes) {
    if (m.mutex == id) return &m;
  }
  return nullptr;
}

const ThreadSnapshot* find_thread(const StallSnapshot& snap, ThreadId id) {
  for (const ThreadSnapshot& t : snap.threads) {
    if (t.thread == id) return &t;
  }
  return nullptr;
}

/// The thread `t` transitively waits on, or nullptr.  Each thread waits on
/// at most one resource, so the wait-for graph is functional.
const ThreadSnapshot* wait_successor(const StallSnapshot& snap, const ThreadSnapshot& t) {
  if (t.phase != ThreadPhase::kLive) return nullptr;
  if (t.reason == WaitReason::kMutex) {
    const MutexSnapshot* m = find_mutex(snap, t.target);
    if (m == nullptr || !m->held) return nullptr;
    const ThreadSnapshot* holder = find_thread(snap, m->holder);
    return (holder != nullptr && holder->phase == ThreadPhase::kLive && holder->thread != t.thread)
               ? holder
               : nullptr;
  }
  if (t.reason == WaitReason::kJoin) {
    const ThreadSnapshot* target = find_thread(snap, static_cast<ThreadId>(t.target));
    return (target != nullptr && target->phase == ThreadPhase::kLive) ? target : nullptr;
  }
  // Turn/barrier/condvar waits have no single owner: they cannot close a
  // wait-for cycle and classify as stall when progress is frozen.
  return nullptr;
}

std::string clock_to_string(std::uint64_t clock) {
  return clock == kClockInfinity ? std::string("inf") : std::to_string(clock);
}

std::string describe_wait(const StallSnapshot& snap, const ThreadSnapshot& t) {
  std::ostringstream os;
  switch (t.reason) {
    case WaitReason::kNone: os << "running (no blocked sync op)"; break;
    case WaitReason::kTurn: os << "waiting for the turn"; break;
    case WaitReason::kMutex: {
      os << "waiting on mutex " << t.target;
      const MutexSnapshot* m = find_mutex(snap, t.target);
      if (m != nullptr && m->held) {
        os << " -- held by thread " << m->holder << " (logical release time " << m->release_time << ")";
      } else if (m != nullptr) {
        os << " -- free, last released at logical time " << m->release_time
           << " (climbing to pass it)";
      }
      break;
    }
    case WaitReason::kBarrier: os << "parked at barrier " << t.target; break;
    case WaitReason::kCondVar: os << "waiting on condvar " << t.target << " (no signal stamped)"; break;
    case WaitReason::kJoin: os << "joining thread " << t.target; break;
  }
  return os.str();
}

}  // namespace

StallReport diagnose_stall(StallSnapshot snapshot, std::uint64_t window_ms) {
  StallReport report;
  report.window_ms = window_ms;
  report.snapshot = std::move(snapshot);
  const StallSnapshot& snap = report.snapshot;

  // Functional-graph cycle detection: follow each thread's single wait-for
  // edge, marking the current walk; revisiting a node of the same walk
  // closes a cycle.
  enum : std::uint8_t { kWhite = 0, kOnPath, kDone };
  std::vector<std::uint8_t> state(snap.threads.size(), kWhite);
  auto index_of = [&](const ThreadSnapshot* t) {
    return static_cast<std::size_t>(t - snap.threads.data());
  };
  for (std::size_t start = 0; start < snap.threads.size() && report.cycle.empty(); ++start) {
    if (state[start] != kWhite) continue;
    std::vector<std::size_t> path;
    const ThreadSnapshot* cur = &snap.threads[start];
    while (cur != nullptr && state[index_of(cur)] == kWhite) {
      state[index_of(cur)] = kOnPath;
      path.push_back(index_of(cur));
      cur = wait_successor(snap, *cur);
    }
    if (cur != nullptr && state[index_of(cur)] == kOnPath) {
      const std::size_t entry = index_of(cur);
      const auto pos = std::find(path.begin(), path.end(), entry);
      for (auto it = pos; it != path.end(); ++it) report.cycle.push_back(snap.threads[*it].thread);
    }
    for (const std::size_t i : path) state[i] = kDone;
  }
  report.deadlock = !report.cycle.empty();
  if (report.deadlock) {
    // Deterministic presentation: rotate the cycle to start at its
    // smallest thread id.
    const auto min_it = std::min_element(report.cycle.begin(), report.cycle.end());
    std::rotate(report.cycle.begin(), min_it, report.cycle.end());
  } else {
    // Stall: the slowest live waiter is the best lead -- everyone else's
    // turn test is stuck behind its published clock.
    std::uint64_t best = kClockInfinity;
    for (const ThreadSnapshot& t : snap.threads) {
      if (t.phase != ThreadPhase::kLive || t.reason == WaitReason::kNone) continue;
      if (report.slowest == ~ThreadId{0} || t.published_clock < best) {
        best = t.published_clock;
        report.slowest = t.thread;
      }
    }
  }
  return report;
}

std::string StallReport::text() const {
  std::ostringstream os;
  os << "watchdog: no sync progress for " << window_ms << " ms (progress counter frozen at "
     << progress_value << ")\n";
  if (deadlock) {
    os << "verdict: DEADLOCK -- wait-for cycle of " << cycle.size() << " thread(s)\n";
    for (const ThreadId tid : cycle) {
      const ThreadSnapshot* t = find_thread(snapshot, tid);
      if (t == nullptr) continue;
      os << "  thread " << tid << " [clock " << clock_to_string(t->published_clock) << "] "
         << describe_wait(snapshot, *t) << "\n";
    }
  } else {
    os << "verdict: STALL/LIVELOCK -- no wait-for cycle\n";
    const ThreadSnapshot* s = find_thread(snapshot, slowest);
    if (s != nullptr) {
      os << "  slowest: thread " << s->thread << " [clock " << clock_to_string(s->published_clock)
         << "] " << describe_wait(snapshot, *s) << "\n";
    }
  }
  bool header = false;
  for (const ThreadSnapshot& t : snapshot.threads) {
    if (t.phase != ThreadPhase::kLive) continue;
    if (deadlock && std::find(cycle.begin(), cycle.end(), t.thread) != cycle.end()) continue;
    if (!deadlock && t.thread == slowest) continue;
    if (!header) {
      os << "other live threads:\n";
      header = true;
    }
    os << "  thread " << t.thread << " [clock " << clock_to_string(t.published_clock) << "] "
       << describe_wait(snapshot, t) << "\n";
  }
  return os.str();
}

std::string StallReport::json() const {
  std::ostringstream os;
  os << "{\"type\":\"" << (deadlock ? "deadlock" : "stall") << "\",\"window_ms\":" << window_ms
     << ",\"progress\":" << progress_value;
  if (deadlock) {
    os << ",\"cycle\":[";
    for (std::size_t i = 0; i < cycle.size(); ++i) os << (i != 0 ? "," : "") << cycle[i];
    os << "]";
  } else if (slowest != ~ThreadId{0}) {
    os << ",\"slowest\":" << slowest;
  }
  os << ",\"threads\":[";
  bool first = true;
  for (const ThreadSnapshot& t : snapshot.threads) {
    if (t.phase == ThreadPhase::kUnregistered) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"thread\":" << t.thread << ",\"phase\":\"" << phase_name(t.phase) << "\",\"clock\":";
    if (t.published_clock == kClockInfinity) {
      os << "null";
    } else {
      os << t.published_clock;
    }
    os << ",\"reason\":\"" << wait_reason_name(t.reason) << "\",\"target\":" << t.target << "}";
  }
  os << "],\"mutexes\":[";
  first = true;
  for (const MutexSnapshot& m : snapshot.mutexes) {
    if (!first) os << ",";
    first = false;
    os << "{\"mutex\":" << m.mutex << ",\"held\":" << (m.held ? "true" : "false");
    if (m.held) os << ",\"holder\":" << m.holder;
    os << ",\"release_time\":" << m.release_time << "}";
  }
  os << "]}";
  return os.str();
}

Watchdog::Watchdog(WatchdogConfig config, const StallSource& source)
    : config_(config), source_(source) {}

Watchdog::~Watchdog() { stop(); }

void Watchdog::start() {
  if (config_.window_ms == 0 || thread_.joinable()) return;
  {
    const std::lock_guard<std::mutex> guard(mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread(&Watchdog::monitor, this);
}

void Watchdog::stop() {
  {
    const std::lock_guard<std::mutex> guard(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::optional<StallReport> Watchdog::report() const {
  const std::lock_guard<std::mutex> guard(mu_);
  return report_;
}

void Watchdog::monitor() {
  using Clock = std::chrono::steady_clock;
  const auto window = std::chrono::milliseconds(config_.window_ms);
  const auto poll = std::clamp(window / 8, std::chrono::milliseconds(1), std::chrono::milliseconds(50));

  auto progress_now = [&]() {
    return config_.progress != nullptr ? config_.progress->load(std::memory_order_relaxed)
                                       : std::uint64_t{0};
  };
  std::uint64_t last = progress_now();
  Clock::time_point last_change = Clock::now();

  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lk, poll, [&] { return stop_requested_; });
    if (stop_requested_) return;
    lk.unlock();

    const std::uint64_t current = progress_now();
    const Clock::time_point now = Clock::now();
    if (current != last) {
      last = current;
      last_change = now;
      lk.lock();
      continue;
    }
    if (now - last_change < window) {
      lk.lock();
      continue;
    }

    // Frozen for a full window: diagnose once, then (per policy) abort.
    StallReport rep = diagnose_stall(source_.stall_snapshot(), config_.window_ms);
    rep.progress_value = current;
    {
      const std::lock_guard<std::mutex> guard(mu_);
      report_ = std::move(rep);
    }
    fired_.store(true, std::memory_order_release);
    if (config_.abort_on_stall && config_.abort_flag != nullptr) {
      config_.abort_flag->store(true, std::memory_order_release);
    }
    return;
  }
}

}  // namespace detlock::runtime
