// Stall watchdog: detects that the runtime has stopped making *useful*
// progress, diagnoses why, and (per policy) aborts gracefully.
//
// "Progress" is deliberately NOT clock progress: a deadlocked pair of
// threads under the turn protocol climbs its logical clocks forever (each
// failed acquire attempt bumps the clock by one, paper Sec. III-A), so a
// min-clock monitor would never fire.  Progress is instead a counter of
// *completed* synchronization operations -- acquires, barrier releases,
// joins, delivered signals, clock publications, thread finishes -- bumped
// by the backends whenever RuntimeConfig::progress is wired (null =
// watchdog off = zero cost, the profiler discipline).
//
// When the counter freezes for the configured wall-time window, the monitor
// thread takes a snapshot (per-thread published clock + wait reason,
// per-mutex owner and logical release time) from the backend's StallSource
// interface and runs wait-for-cycle detection over it:
//
//   * cycle found  -> DEADLOCK: reported thread by thread around the cycle.
//     Each thread waits on at most one resource (a mutex's holder or a join
//     target), so the wait-for graph is functional and cycle detection is
//     plain pointer chasing.
//   * no cycle     -> STALL/LIVELOCK: the slowest live waiter (minimum
//     published clock) and what it waits on are reported -- the signature
//     of a lost wakeup, an abandoned barrier, or a peer that stopped
//     publishing.
//
// The report is available in both human-readable and JSON form; the abort
// policy sets RuntimeConfig::abort_flag so every thread unwinds through
// check_abort with a detlock::Error instead of spinning forever.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/config.hpp"

namespace detlock::runtime {

/// Why a thread is blocked, published by the backends (only while a
/// watchdog is wired) and sampled racily-but-atomically by the monitor.
enum class WaitReason : std::uint8_t {
  kNone = 0,   ///< running (or the backend is not tracking)
  kTurn,       ///< waiting to hold the turn outside any specific operation
  kMutex,      ///< inside lock(): turn waits + failed-acquire climb
  kBarrier,    ///< parked at a barrier awaiting the round's release
  kCondVar,    ///< awaiting a condvar signal stamp
  kJoin,       ///< awaiting a join target's final clock
};

const char* wait_reason_name(WaitReason r);

enum class ThreadPhase : std::uint8_t { kUnregistered = 0, kLive, kFinished };

struct ThreadSnapshot {
  ThreadId thread = 0;
  ThreadPhase phase = ThreadPhase::kUnregistered;
  /// Published logical clock (kClockInfinity while parked/finished); 0 for
  /// backends without published clocks.
  std::uint64_t published_clock = 0;
  WaitReason reason = WaitReason::kNone;
  /// Meaning depends on `reason`: mutex id, barrier id, condvar id, or the
  /// join target's thread id.
  std::uint64_t target = 0;
};

struct MutexSnapshot {
  MutexId mutex = 0;
  bool held = false;
  ThreadId holder = ~ThreadId{0};
  std::uint64_t release_time = 0;  ///< logical release time (det backend)
};

struct StallSnapshot {
  std::vector<ThreadSnapshot> threads;
  std::vector<MutexSnapshot> mutexes;
};

/// Implemented by the backends; the default produces an empty snapshot so
/// backend implementations without diagnostics still link.
class StallSource {
 public:
  virtual ~StallSource() = default;
  virtual StallSnapshot stall_snapshot() const { return {}; }
};

struct StallReport {
  bool deadlock = false;
  /// Nonempty iff deadlock: the wait-for cycle, starting from its smallest
  /// thread id (deterministic presentation).
  std::vector<ThreadId> cycle;
  /// Stall only: the slowest live waiter (minimum published clock).
  ThreadId slowest = ~ThreadId{0};
  std::uint64_t window_ms = 0;
  std::uint64_t progress_value = 0;  ///< the frozen progress-counter value
  StallSnapshot snapshot;

  std::string text() const;  ///< multi-line human-readable report
  std::string json() const;  ///< single-object JSON (schema: docs/fault-model.md)
};

/// Pure diagnosis over a snapshot: builds the wait-for graph (mutex waiter
/// -> holder, joiner -> target) and classifies deadlock vs. stall.
/// Separated from the monitor thread so tests can feed synthetic snapshots.
StallReport diagnose_stall(StallSnapshot snapshot, std::uint64_t window_ms);

struct WatchdogConfig {
  /// Wall-time window with zero progress before the watchdog fires;
  /// 0 disables (start() becomes a no-op).
  std::uint64_t window_ms = 0;
  /// true: set `abort_flag` when firing so every thread unwinds through
  /// check_abort (graceful abort).  false: record the report and keep
  /// waiting (report-only policy).
  bool abort_on_stall = true;
  std::atomic<bool>* abort_flag = nullptr;          ///< not owned
  std::atomic<std::uint64_t>* progress = nullptr;   ///< not owned
};

class Watchdog {
 public:
  Watchdog(WatchdogConfig config, const StallSource& source);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void start();
  /// Stops and joins the monitor thread (idempotent).
  void stop();

  bool fired() const { return fired_.load(std::memory_order_acquire); }
  /// The first report produced (empty until fired).
  std::optional<StallReport> report() const;

 private:
  void monitor();

  WatchdogConfig config_;
  const StallSource& source_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::atomic<bool> fired_{false};
  std::optional<StallReport> report_;
};

}  // namespace detlock::runtime
