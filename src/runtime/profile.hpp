// Wait-time attribution profiler: the observability substrate for the
// paper's overhead decomposition (Table I/II, Fig. 14).
//
// The runtime's end-to-end time mixes several very different kinds of
// waiting -- spinning for the turn, climbing the clock after failed
// try_lock attempts, parking at a barrier, chasing a child's final clock in
// join, waiting for a deterministic condvar signal -- and Kendo-style
// systems are tuned by looking at exactly this split (Kendo's per-benchmark
// chunk-size tuning is driven by it).  The profiler attributes every
// blocking call in the backends to one WaitCategory, accumulates per-mutex
// contention counters, and exposes two views:
//   * a human-readable breakdown table (profile_breakdown), and
//   * a Chrome trace-event / Perfetto JSON timeline (profile_to_chrome_trace)
//     built from the recorded spans plus the RunTrace's deterministic
//     lock-acquisition schedule.
//
// Design constraints (asserted by tests/integration/profile_determinism
// and tests/runtime/profile_test):
//   * DETERMINISM-NEUTRAL.  Hooks only read the monotonic clock and write
//     owner-thread counters; they never touch logical clocks, published
//     state, or any value that feeds a scheduling decision, so trace and
//     memory fingerprints are bit-identical with profiling on or off.
//   * ZERO-COST WHEN DISABLED.  Backends hold a Profiler* that is null
//     unless RuntimeConfig::profile was set; every hook is an inlined
//     null-pointer test on the hot path and nothing else.
//   * CONSERVATION.  Per thread, attributed spans are disjoint intervals
//     inside the thread's lifetime, so sum(categories) <= wall time and
//     "useful execution" is the residual wall - waits.
//
// All per-thread state lives in cache-line-padded slots written only by the
// owning thread; aggregation happens after every thread has finished, so the
// summary needs no atomics.  Per-mutex counters are kept per thread (small
// linear-probed vectors -- programs touch few distinct mutexes) and merged
// at summary time, keeping the hot path free of shared writes.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/config.hpp"
#include "runtime/trace.hpp"
#include "support/cacheline.hpp"

namespace detlock::runtime {

/// Why a thread was waiting.  Categories are disjoint: a blocking call
/// attributes its whole duration to exactly one of them.
enum class WaitCategory : std::uint8_t {
  /// Deterministic lock() that succeeded on the first attempt: the entire
  /// wait was spent acquiring the turn.
  kTurnWait = 0,
  /// Deterministic lock() that needed >= 1 retry: the failed-try_lock climb
  /// (paper Sec. III-A), including the turn waits between attempts.
  kLockRetry,
  /// Nondeterministic (baseline) blocking mutex acquisition.
  kMutexWait,
  /// Barrier park until the round's release.
  kBarrierWait,
  /// Join loop until the target's final clock is deterministically visible.
  kJoinWait,
  /// Deterministic condvar wait (unlock -> signal stamp -> relock excluded;
  /// the relock attributes to kTurnWait/kLockRetry like any acquire).
  kCondVarWait,
};

inline constexpr std::size_t kNumWaitCategories = 6;

const char* wait_category_name(WaitCategory c);

struct CategoryStat {
  std::uint64_t ns = 0;      ///< wall time attributed to this category
  std::uint64_t events = 0;  ///< blocking calls
  std::uint64_t iters = 0;   ///< protocol iterations (spins, failed attempts, clock climbs)
};

/// Per-mutex contention counters (merged across threads in the summary).
struct MutexProfile {
  MutexId mutex = 0;
  std::uint64_t acquires = 0;
  std::uint64_t contended = 0;  ///< acquires that needed >= 1 failed attempt
  std::uint64_t wait_ns = 0;    ///< total wall time spent inside lock()
  std::uint64_t max_wait_ns = 0;
};

struct ThreadProfile {
  ThreadId thread = 0;
  std::uint64_t wall_ns = 0;  ///< lifetime between thread_begin and thread_end
  std::uint64_t instructions = 0;
  std::uint64_t clock_instructions = 0;
  CategoryStat categories[kNumWaitCategories];

  std::uint64_t wait_ns() const {
    std::uint64_t total = 0;
    for (const CategoryStat& c : categories) total += c.ns;
    return total;
  }
  /// Residual: execution + engine bookkeeping (saturates at zero).
  std::uint64_t useful_ns() const {
    const std::uint64_t w = wait_ns();
    return wall_ns > w ? wall_ns - w : 0;
  }
};

/// One attributed blocking interval (kept only when span recording is on).
struct ProfileSpan {
  ThreadId thread = 0;
  WaitCategory category = WaitCategory::kTurnWait;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
};

/// Wall-clock marker for one lock acquisition (pairs the deterministic
/// logical clock with the physical acquire moment; trace export only).
struct AcquireMark {
  ThreadId thread = 0;
  MutexId mutex = 0;
  std::uint64_t clock = 0;  ///< acquiring thread's logical clock
  std::uint64_t at_ns = 0;
};

/// Aggregated view over all threads; produced once after the run.
struct ProfileSummary {
  std::vector<ThreadProfile> threads;  ///< registered threads only
  CategoryStat totals[kNumWaitCategories];
  std::uint64_t total_wall_ns = 0;
  std::uint64_t total_instructions = 0;
  std::uint64_t total_clock_instructions = 0;
  std::uint64_t total_wait_ns = 0;
  std::uint64_t total_useful_ns = 0;
  std::vector<MutexProfile> mutexes;  ///< nonzero acquires, descending wait_ns
};

class Profiler {
 public:
  explicit Profiler(std::uint32_t max_threads, bool keep_spans = false);

  /// Monotonic nanoseconds since profiler construction (small values keep
  /// the exported trace timestamps readable).
  std::uint64_t now() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  bool keep_spans() const { return keep_spans_; }

  /// Owner-thread hooks (called by the engine around a thread's lifetime).
  void thread_begin(ThreadId t);
  void thread_end(ThreadId t, std::uint64_t instructions, std::uint64_t clock_instructions);

  /// Attribute [begin_ns, end_ns) to `category` (owner thread only).
  void add_wait(ThreadId t, WaitCategory category, std::uint64_t begin_ns, std::uint64_t end_ns,
                std::uint64_t iters);

  /// Record one completed mutex acquisition (owner thread only).
  void on_acquire(ThreadId t, MutexId mutex, std::uint64_t wait_ns, bool contended, std::uint64_t clock,
                  std::uint64_t at_ns);

  /// Aggregation; call only after every instrumented thread has finished.
  ProfileSummary summary() const;
  std::vector<ProfileSpan> spans() const;      ///< all threads, sorted by begin
  std::vector<AcquireMark> acquire_marks() const;

 private:
  struct ThreadData {
    bool used = false;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
    std::uint64_t instructions = 0;
    std::uint64_t clock_instructions = 0;
    CategoryStat categories[kNumWaitCategories];
    std::vector<MutexProfile> mutexes;  // small; linear find-or-add
    std::vector<ProfileSpan> spans;
    std::vector<AcquireMark> acquires;
  };

  ThreadData& slot(ThreadId t);

  std::chrono::steady_clock::time_point epoch_;
  bool keep_spans_;
  std::vector<Padded<ThreadData>> threads_;
};

/// Human-readable per-category breakdown plus the most contended mutexes
/// (support/table layout, same style as the bench harness tables).
std::string profile_breakdown(const ProfileSummary& s);

/// Chrome trace-event JSON (load in Perfetto / chrome://tracing).  Emits the
/// profiler's wait spans and acquire markers on real wall-clock tracks, and
/// -- when `schedule` is non-empty -- the deterministic global acquisition
/// order as a synthetic "logical order" track (timestamp = position in the
/// schedule).  Schema documented in docs/observability.md.
std::string profile_to_chrome_trace(const Profiler& prof, const std::vector<TraceEvent>& schedule);

}  // namespace detlock::runtime
