#include "runtime/nondet_backend.hpp"

#include <algorithm>

#include "runtime/faultinject.hpp"
#include "runtime/profile.hpp"
#include "runtime/shared_memory.hpp"
#include "runtime/sync_observer.hpp"
#include "support/error.hpp"
#include "support/spinwait.hpp"

namespace detlock::runtime {

namespace {
constexpr std::size_t kMaxMutexes = 4096;
constexpr std::size_t kMaxBarriers = 256;
constexpr std::size_t kMaxCondVars = 256;
}  // namespace

struct NondetBackend::BarrierState {
  std::atomic<std::uint64_t> generation{0};
  std::atomic<std::uint32_t> arrived{0};
};

struct NondetBackend::CondVarState {
  std::mutex mu;  // internal; guards the queue
  std::vector<std::pair<ThreadId, std::atomic<bool>*>> queue;
};

NondetBackend::NondetBackend(RuntimeConfig config)
    : config_(config),
      trace_(config.keep_trace_events),
      prof_(config.profiler),
      fault_(config.fault),
      progress_(config.progress),
      obs_(config.sync_observer),
      wait_state_(config.max_threads),
      holders_(kMaxMutexes),
      slots_(config.max_threads) {
  for (auto& padded : holders_) padded.value.store(kNoHolder, std::memory_order_relaxed);
  mutexes_.reserve(kMaxMutexes);
  for (std::size_t i = 0; i < kMaxMutexes; ++i) mutexes_.push_back(std::make_unique<std::mutex>());
  barriers_.reserve(kMaxBarriers);
  for (std::size_t i = 0; i < kMaxBarriers; ++i) barriers_.push_back(std::make_unique<BarrierState>());
  condvars_.reserve(kMaxCondVars);
  for (std::size_t i = 0; i < kMaxCondVars; ++i) condvars_.push_back(std::make_unique<CondVarState>());
}

NondetBackend::~NondetBackend() = default;

ThreadId NondetBackend::register_main_thread() {
  const ThreadId id = next_thread_id_.fetch_add(1, std::memory_order_relaxed);
  DETLOCK_CHECK(id == 0, "register_main_thread must be the first registration");
  return id;
}

ThreadId NondetBackend::register_spawn(ThreadId parent) {
  const ThreadId id = next_thread_id_.fetch_add(1, std::memory_order_relaxed);
  DETLOCK_CHECK(id < config_.max_threads, "too many threads");
  if (obs_ != nullptr) obs_->on_thread_start(id, parent);
  return id;
}

void NondetBackend::thread_finish(ThreadId self) {
  // Before the finished store: a joiner observes it only afterwards.
  if (obs_ != nullptr) obs_->on_thread_finish(self);
  slots_[self].value.finished.store(true, std::memory_order_release);
  note_progress(self);
}

void NondetBackend::join(ThreadId self, ThreadId target) {
  DETLOCK_CHECK(target < config_.max_threads && target != self, "bad join target");
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kJoin);
  note_wait(self, WaitReason::kJoin, target);
  const std::uint64_t prof_t0 = prof_ != nullptr ? prof_->now() : 0;
  std::uint64_t spins = 0;
  SpinWait waiter;
  while (!slots_[target].value.finished.load(std::memory_order_acquire)) {
    check_abort();
    waiter.wait();
    ++spins;
  }
  // Post-wake re-check: the target may have "finished" by unwinding from an
  // abort, in which case this thread must unwind too, not keep running.
  check_abort();
  if (prof_ != nullptr) prof_->add_wait(self, WaitCategory::kJoinWait, prof_t0, prof_->now(), spins);
  if (obs_ != nullptr) obs_->on_join(self, target);
  note_progress(self);
}

void NondetBackend::clock_add(ThreadId self, std::uint64_t delta) {
  // Thread-local accumulation only: models the real cost of the inserted
  // `add` without any cross-thread publication.
  ThreadSlot& slot = slots_[self].value;
  slot.clock += delta;
  // Subsampled watchdog progress: a thread grinding through compute is
  // still alive even if it performs no sync ops for a while.
  if (progress_ != nullptr && (++slot.clock_ops & 1023) == 0) {
    progress_->fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t NondetBackend::clock_of(ThreadId thread) const { return slots_[thread].value.clock; }

void NondetBackend::lock(ThreadId self, MutexId mutex) {
  DETLOCK_CHECK(mutex < mutexes_.size(), "mutex id out of range");
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kLock);
  note_wait(self, WaitReason::kMutex, mutex);
  // try_lock-first, then an abortable retry loop.  std::mutex::lock blocks
  // uncancellably, so a thread waiting on a mutex whose holder died would
  // hang past any abort flag; the try_lock loop polls the flag between
  // attempts (and the first try_lock still gives the profiler its
  // contended/uncontended classification).
  const std::uint64_t prof_t0 = prof_ != nullptr ? prof_->now() : 0;
  bool contended = false;
  SpinWait waiter;
  while (!mutexes_[mutex]->try_lock()) {
    contended = true;
    check_abort();
    waiter.wait();
  }
  if (prof_ != nullptr) {
    const std::uint64_t t1 = prof_->now();
    prof_->add_wait(self, WaitCategory::kMutexWait, prof_t0, t1, contended ? 1 : 0);
    prof_->on_acquire(self, mutex, t1 - prof_t0, contended, slots_[self].value.clock, t1);
  }
  // A death here is mid-critical-section: the mutex stays locked forever,
  // and the try_lock loop above is what keeps the survivors abortable.
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kLockAcquired);
  // After try_lock succeeded: the previous holder's release hook ran before
  // its unlock, which this acquisition observed.
  if (obs_ != nullptr) obs_->on_acquire(self, mutex, slots_[self].value.clock);
  if (progress_ != nullptr) holders_[mutex].value.store(self, std::memory_order_relaxed);
  ++slots_[self].value.acquires;
  if (config_.record_trace) trace_.record_acquire(self, mutex, slots_[self].value.clock);
  note_progress(self);
}

void NondetBackend::unlock(ThreadId self, MutexId mutex) {
  DETLOCK_CHECK(mutex < mutexes_.size(), "mutex id out of range");
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kUnlock);
  // Release hook before the unlock that makes the edge observable.
  if (obs_ != nullptr) obs_->on_release(self, mutex, slots_[self].value.clock);
  if (progress_ != nullptr) holders_[mutex].value.store(kNoHolder, std::memory_order_relaxed);
  mutexes_[mutex]->unlock();
  note_progress(self);
}

void NondetBackend::barrier_wait(ThreadId self, BarrierId barrier, std::uint32_t participants) {
  DETLOCK_CHECK(barrier < barriers_.size(), "barrier id out of range");
  DETLOCK_CHECK(participants > 0, "barrier needs at least one participant");
  // Death before the arrival registers = abandoned barrier (see DetBackend).
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kBarrierArrive);
  note_wait(self, WaitReason::kBarrier, barrier);
  ++slots_[self].value.barrier_waits;
  BarrierState& b = *barriers_[barrier];
  const std::uint64_t prof_t0 = prof_ != nullptr ? prof_->now() : 0;
  std::uint64_t spins = 0;
  const std::uint64_t generation = b.generation.load(std::memory_order_acquire);
  // Arrive before the increment, depart after the round opens (see
  // DetBackend::barrier_wait for the ordering argument).
  if (obs_ != nullptr) obs_->on_barrier_arrive(self, barrier, generation);
  if (b.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == participants) {
    b.arrived.store(0, std::memory_order_relaxed);
    b.generation.store(generation + 1, std::memory_order_release);
  } else {
    SpinWait waiter;
    while (b.generation.load(std::memory_order_acquire) == generation) {
      check_abort();
      waiter.wait();
      ++spins;
    }
    // Post-wake re-check (see DetBackend::barrier_wait).
    check_abort();
  }
  if (prof_ != nullptr) prof_->add_wait(self, WaitCategory::kBarrierWait, prof_t0, prof_->now(), spins);
  if (obs_ != nullptr) obs_->on_barrier_depart(self, barrier, generation);
  note_progress(self);
}

void NondetBackend::cond_wait(ThreadId self, CondVarId condvar, MutexId mutex) {
  DETLOCK_CHECK(condvar < condvars_.size(), "condvar id out of range");
  DETLOCK_CHECK(mutex < mutexes_.size(), "mutex id out of range");
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kCondWait);
  CondVarState& cv = *condvars_[condvar];
  std::atomic<bool> signaled{false};
  {
    const std::lock_guard<std::mutex> guard(cv.mu);
    cv.queue.emplace_back(self, &signaled);
  }
  // cond_wait releases and reacquires the guard mutex with raw std::mutex
  // calls (not unlock()/lock()), so the mutex-edge hooks fire manually here.
  if (obs_ != nullptr) obs_->on_release(self, mutex, slots_[self].value.clock);
  if (progress_ != nullptr) holders_[mutex].value.store(kNoHolder, std::memory_order_relaxed);
  mutexes_[mutex]->unlock();
  note_wait(self, WaitReason::kCondVar, condvar);
  const std::uint64_t prof_t0 = prof_ != nullptr ? prof_->now() : 0;
  std::uint64_t spins = 0;
  SpinWait waiter;
  while (!signaled.load(std::memory_order_acquire)) {
    check_abort();
    waiter.wait();
    ++spins;
  }
  check_abort();  // post-wake re-check: signal and abort can race
  if (obs_ != nullptr) obs_->on_cond_wake(self, condvar);
  if (prof_ != nullptr) prof_->add_wait(self, WaitCategory::kCondVarWait, prof_t0, prof_->now(), spins);
  // Abortable reacquire, for the same reason as lock().
  note_wait(self, WaitReason::kMutex, mutex);
  waiter.reset();
  while (!mutexes_[mutex]->try_lock()) {
    check_abort();
    waiter.wait();
  }
  if (obs_ != nullptr) obs_->on_acquire(self, mutex, slots_[self].value.clock);
  if (progress_ != nullptr) holders_[mutex].value.store(self, std::memory_order_relaxed);
  note_progress(self);
}

void NondetBackend::cond_signal(ThreadId self, CondVarId condvar) {
  DETLOCK_CHECK(condvar < condvars_.size(), "condvar id out of range");
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kCondSignal);
  CondVarState& cv = *condvars_[condvar];
  const std::lock_guard<std::mutex> guard(cv.mu);
  if (cv.queue.empty()) return;
  // Lost-wakeup fault: the waiter stays queued, as if never signaled.
  if (fault_ != nullptr && fault_->drop_signal(self)) return;
  // Signal hook before the flag store the waiter wakes on.  This edge is
  // essential here: NondetBackend does not require the signaler to hold the
  // guard mutex, so signal -> wake can be the only HB path to the waiter.
  if (obs_ != nullptr) obs_->on_cond_signal(self, condvar, cv.queue.front().first, slots_[self].value.clock);
  cv.queue.front().second->store(true, std::memory_order_release);
  cv.queue.erase(cv.queue.begin());
  note_progress(self);
}

void NondetBackend::cond_broadcast(ThreadId self, CondVarId condvar) {
  DETLOCK_CHECK(condvar < condvars_.size(), "condvar id out of range");
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kCondSignal);
  CondVarState& cv = *condvars_[condvar];
  const std::lock_guard<std::mutex> guard(cv.mu);
  if (cv.queue.empty()) return;
  if (fault_ != nullptr && fault_->drop_signal(self)) return;
  for (auto& [tid, flag] : cv.queue) {
    if (obs_ != nullptr) obs_->on_cond_signal(self, condvar, tid, slots_[self].value.clock);
    flag->store(true, std::memory_order_release);
  }
  cv.queue.clear();
  note_progress(self);
}

std::int64_t NondetBackend::atomic_op(ThreadId self, const AtomicOp& op, SharedMemory& memory) {
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kAtomic);
  check_abort();
  std::int64_t observed;
  {
    // One mutex for all guest atomics: the baseline makes no determinism
    // claim, but the observer hook must still fire in the order the memory
    // effects actually landed (see atomics_mu_ in the header).
    const std::lock_guard<std::mutex> guard(atomics_mu_);
    observed = memory.atomic_apply(op);
    if (obs_ != nullptr) {
      if (op.kind == AtomicOp::Kind::kFence) {
        obs_->on_fence(self, op.order, slots_[self].value.clock);
      } else {
        obs_->on_atomic(self, op, observed, slots_[self].value.clock);
      }
    }
    if (config_.record_trace) {
      trace_.record_atomic(self, static_cast<std::uint8_t>(op.kind), op.addr, observed);
    }
  }
  ++slots_[self].value.atomic_ops;
  note_progress(self);
  return observed;
}

StallSnapshot NondetBackend::stall_snapshot() const {
  StallSnapshot snap;
  const std::uint32_t registered =
      std::min(next_thread_id_.load(std::memory_order_relaxed), config_.max_threads);
  for (ThreadId t = 0; t < registered; ++t) {
    ThreadSnapshot ts;
    ts.thread = t;
    ts.phase = slots_[t].value.finished.load(std::memory_order_acquire) ? ThreadPhase::kFinished
                                                                        : ThreadPhase::kLive;
    // Clocks are thread-local and never published here; 0 keeps the report
    // honest rather than racily reading another thread's accumulator.
    ts.published_clock = 0;
    const std::uint64_t packed = wait_state_[t].value.load(std::memory_order_relaxed);
    ts.reason = static_cast<WaitReason>(packed >> 56);
    ts.target = packed & kWaitTargetMask;
    snap.threads.push_back(ts);
  }
  for (MutexId id = 0; id < holders_.size(); ++id) {
    const ThreadId holder = holders_[id].value.load(std::memory_order_relaxed);
    if (holder == kNoHolder) continue;
    MutexSnapshot ms;
    ms.mutex = id;
    ms.held = true;
    ms.holder = holder;
    ms.release_time = 0;
    snap.mutexes.push_back(ms);
  }
  return snap;
}

const RunTrace& NondetBackend::trace() const { return trace_; }

BackendStats NondetBackend::stats() const {
  BackendStats total;
  for (const auto& padded : slots_) {
    total.lock_acquires += padded.value.acquires;
    total.barrier_waits += padded.value.barrier_waits;
    total.atomic_ops += padded.value.atomic_ops;
  }
  return total;
}

}  // namespace detlock::runtime
