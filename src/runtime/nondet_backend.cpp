#include "runtime/nondet_backend.hpp"

#include "runtime/profile.hpp"
#include "support/error.hpp"
#include "support/spinwait.hpp"

namespace detlock::runtime {

namespace {
constexpr std::size_t kMaxMutexes = 4096;
constexpr std::size_t kMaxBarriers = 256;
constexpr std::size_t kMaxCondVars = 256;
}  // namespace

struct NondetBackend::BarrierState {
  std::atomic<std::uint64_t> generation{0};
  std::atomic<std::uint32_t> arrived{0};
};

struct NondetBackend::CondVarState {
  std::mutex mu;  // internal; guards the queue
  std::vector<std::pair<ThreadId, std::atomic<bool>*>> queue;
};

NondetBackend::NondetBackend(RuntimeConfig config)
    : config_(config), trace_(config.keep_trace_events), prof_(config.profiler), slots_(config.max_threads) {
  mutexes_.reserve(kMaxMutexes);
  for (std::size_t i = 0; i < kMaxMutexes; ++i) mutexes_.push_back(std::make_unique<std::mutex>());
  barriers_.reserve(kMaxBarriers);
  for (std::size_t i = 0; i < kMaxBarriers; ++i) barriers_.push_back(std::make_unique<BarrierState>());
  condvars_.reserve(kMaxCondVars);
  for (std::size_t i = 0; i < kMaxCondVars; ++i) condvars_.push_back(std::make_unique<CondVarState>());
}

NondetBackend::~NondetBackend() = default;

ThreadId NondetBackend::register_main_thread() {
  const ThreadId id = next_thread_id_.fetch_add(1, std::memory_order_relaxed);
  DETLOCK_CHECK(id == 0, "register_main_thread must be the first registration");
  return id;
}

ThreadId NondetBackend::register_spawn(ThreadId /*parent*/) {
  const ThreadId id = next_thread_id_.fetch_add(1, std::memory_order_relaxed);
  DETLOCK_CHECK(id < config_.max_threads, "too many threads");
  return id;
}

void NondetBackend::thread_finish(ThreadId self) {
  slots_[self].value.finished.store(true, std::memory_order_release);
}

void NondetBackend::join(ThreadId self, ThreadId target) {
  DETLOCK_CHECK(target < config_.max_threads && target != self, "bad join target");
  const std::uint64_t prof_t0 = prof_ != nullptr ? prof_->now() : 0;
  std::uint64_t spins = 0;
  SpinWait waiter;
  while (!slots_[target].value.finished.load(std::memory_order_acquire)) {
    check_abort();
    waiter.wait();
    ++spins;
  }
  if (prof_ != nullptr) prof_->add_wait(self, WaitCategory::kJoinWait, prof_t0, prof_->now(), spins);
}

void NondetBackend::clock_add(ThreadId self, std::uint64_t delta) {
  // Thread-local accumulation only: models the real cost of the inserted
  // `add` without any cross-thread publication.
  slots_[self].value.clock += delta;
}

std::uint64_t NondetBackend::clock_of(ThreadId thread) const { return slots_[thread].value.clock; }

void NondetBackend::lock(ThreadId self, MutexId mutex) {
  DETLOCK_CHECK(mutex < mutexes_.size(), "mutex id out of range");
  if (prof_ != nullptr) {
    // try_lock-first so an uncontended acquire is classified as such; the
    // fallback blocking path is what kMutexWait measures.
    const std::uint64_t t0 = prof_->now();
    const bool contended = !mutexes_[mutex]->try_lock();
    if (contended) mutexes_[mutex]->lock();
    const std::uint64_t t1 = prof_->now();
    prof_->add_wait(self, WaitCategory::kMutexWait, t0, t1, contended ? 1 : 0);
    prof_->on_acquire(self, mutex, t1 - t0, contended, slots_[self].value.clock, t1);
  } else {
    mutexes_[mutex]->lock();
  }
  ++slots_[self].value.acquires;
  if (config_.record_trace) trace_.record_acquire(self, mutex, slots_[self].value.clock);
}

void NondetBackend::unlock(ThreadId /*self*/, MutexId mutex) {
  DETLOCK_CHECK(mutex < mutexes_.size(), "mutex id out of range");
  mutexes_[mutex]->unlock();
}

void NondetBackend::barrier_wait(ThreadId self, BarrierId barrier, std::uint32_t participants) {
  DETLOCK_CHECK(barrier < barriers_.size(), "barrier id out of range");
  DETLOCK_CHECK(participants > 0, "barrier needs at least one participant");
  ++slots_[self].value.barrier_waits;
  BarrierState& b = *barriers_[barrier];
  const std::uint64_t prof_t0 = prof_ != nullptr ? prof_->now() : 0;
  std::uint64_t spins = 0;
  const std::uint64_t generation = b.generation.load(std::memory_order_acquire);
  if (b.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == participants) {
    b.arrived.store(0, std::memory_order_relaxed);
    b.generation.store(generation + 1, std::memory_order_release);
  } else {
    SpinWait waiter;
    while (b.generation.load(std::memory_order_acquire) == generation) {
      check_abort();
      waiter.wait();
      ++spins;
    }
  }
  if (prof_ != nullptr) prof_->add_wait(self, WaitCategory::kBarrierWait, prof_t0, prof_->now(), spins);
}

void NondetBackend::cond_wait(ThreadId self, CondVarId condvar, MutexId mutex) {
  DETLOCK_CHECK(condvar < condvars_.size(), "condvar id out of range");
  DETLOCK_CHECK(mutex < mutexes_.size(), "mutex id out of range");
  CondVarState& cv = *condvars_[condvar];
  std::atomic<bool> signaled{false};
  {
    const std::lock_guard<std::mutex> guard(cv.mu);
    cv.queue.emplace_back(self, &signaled);
  }
  mutexes_[mutex]->unlock();
  const std::uint64_t prof_t0 = prof_ != nullptr ? prof_->now() : 0;
  std::uint64_t spins = 0;
  SpinWait waiter;
  while (!signaled.load(std::memory_order_acquire)) {
    check_abort();
    waiter.wait();
    ++spins;
  }
  if (prof_ != nullptr) prof_->add_wait(self, WaitCategory::kCondVarWait, prof_t0, prof_->now(), spins);
  mutexes_[mutex]->lock();
}

void NondetBackend::cond_signal(ThreadId /*self*/, CondVarId condvar) {
  DETLOCK_CHECK(condvar < condvars_.size(), "condvar id out of range");
  CondVarState& cv = *condvars_[condvar];
  const std::lock_guard<std::mutex> guard(cv.mu);
  if (cv.queue.empty()) return;
  cv.queue.front().second->store(true, std::memory_order_release);
  cv.queue.erase(cv.queue.begin());
}

void NondetBackend::cond_broadcast(ThreadId /*self*/, CondVarId condvar) {
  DETLOCK_CHECK(condvar < condvars_.size(), "condvar id out of range");
  CondVarState& cv = *condvars_[condvar];
  const std::lock_guard<std::mutex> guard(cv.mu);
  for (auto& [tid, flag] : cv.queue) flag->store(true, std::memory_order_release);
  cv.queue.clear();
}

const RunTrace& NondetBackend::trace() const { return trace_; }

BackendStats NondetBackend::stats() const {
  BackendStats total;
  for (const auto& padded : slots_) {
    total.lock_acquires += padded.value.acquires;
    total.barrier_waits += padded.value.barrier_waits;
  }
  return total;
}

}  // namespace detlock::runtime
