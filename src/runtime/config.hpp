// Runtime configuration shared by all synchronization backends.
#pragma once

#include <atomic>
#include <cstdint>

namespace detlock::runtime {

using ThreadId = std::uint32_t;
using MutexId = std::uint64_t;
using BarrierId = std::uint64_t;
using CondVarId = std::uint64_t;

/// How the turn predicate (ClockTable::has_turn) finds the global minimum
/// over published clocks.
enum class ClockTableKind {
  /// O(threads) scan over all published clocks per poll (softened by the
  /// cached-blocker fast path).  The original layout; kept as the
  /// differential oracle for the tree.
  kFlat,
  /// Hierarchical min-clock tournament tree (runtime/clock_tree.hpp):
  /// cache-line-padded sharded (clock, id) mins with a combining root, so a
  /// turn check is one root read -- O(1) amortized -- and a publication
  /// updates at most the O(log threads) path that its value affects.
  kTree,
};

/// How a thread's locally accumulated logical clock becomes visible to the
/// turn protocol.
enum class ClockPublication {
  /// Publish on every clock_add: DetLock's compiler-clock model, where the
  /// inserted update code writes the shared counter directly.
  kEveryUpdate,
  /// Publish only when the unpublished residue reaches chunk_size: models
  /// Kendo's hardware performance counter, whose value other threads observe
  /// only at overflow-interrupt granularity.  Synchronization operations
  /// force publication (Kendo reads the counter when entering the runtime).
  kChunked,
};

class ScheduleValidator;
class Profiler;
class FaultInjector;
class SyncObserver;

/// One guest atomic operation (or fence) as seen by a SyncBackend.  The
/// engine fills this from the IR instruction with register values already
/// resolved; the backend serializes it under the turn protocol and performs
/// the memory side effect via SharedMemory::atomic_apply *inside* the turn,
/// so the global order of atomic operations IS the deterministic turn order.
struct AtomicOp {
  enum class Kind : std::uint8_t { kLoad, kStore, kAdd, kExchange, kCas, kFence };
  /// Mirrors ir::MemOrder values (kept as a plain byte so runtime/ stays
  /// independent of ir/).  Diagnostics + happens-before edges only: the host
  /// memory operation is always sequentially consistent inside the turn.
  enum class Order : std::uint8_t { kRelaxed, kAcquire, kRelease, kAcqRel, kSeqCst };
  Kind kind = Kind::kFence;
  Order order = Order::kSeqCst;
  std::int64_t addr = 0;      // word address; unused for kFence
  std::int64_t operand = 0;   // store value / addend / exchange value / cas expected
  std::int64_t desired = 0;   // cas swap-in value
};

struct RuntimeConfig {
  std::uint32_t max_threads = 64;
  /// Turn-predicate data structure (see ClockTableKind).  The tree is the
  /// default; the flat scan is the differential oracle and the fallback.
  /// Selecting a kind never changes observable behavior -- fingerprints,
  /// instruction counts, and lock schedules are byte-identical across kinds
  /// (tests/runtime/clock_tree_test.cpp, tests/integration/
  /// clock_table_modes_test.cpp) -- only the cost of a turn check.
  ClockTableKind clock_table = ClockTableKind::kTree;
  ClockPublication publication = ClockPublication::kEveryUpdate;
  /// Chunk size for ClockPublication::kChunked (retired instructions per
  /// simulated counter interrupt).  Kendo's paper tunes this per benchmark;
  /// Table II's harness sweeps it.
  std::uint64_t chunk_size = 4096;
  /// Record every lock acquisition into the run trace (tests use the trace
  /// fingerprint to prove determinism; benches disable it to avoid skew).
  bool record_trace = true;
  /// Additionally keep the full event list (diagnostics; memory-heavy).
  bool keep_trace_events = false;
  /// When true, DetBarrier checks that the participant count equals the
  /// number of live threads.  The turn protocol's determinism proof assumes
  /// barriers synchronize all live threads (as every SPLASH-2 barrier does);
  /// see det_backend.cpp for why subset barriers would break it.
  bool strict_barriers = true;
  /// Optional online replica validator (see runtime/schedule.hpp): every
  /// lock acquisition is checked against a recorded schedule at the moment
  /// it happens, failing fast on divergence.  Not owned.
  ScheduleValidator* validator = nullptr;
  /// Optional cooperative-abort flag.  Every blocking loop in the backends
  /// polls it and throws when set, so the execution engine can unwind all
  /// threads cleanly after one of them fails (otherwise survivors could
  /// wait forever on a dead thread's mutex).  Not owned; must outlive the
  /// backend.
  std::atomic<bool>* abort_flag = nullptr;
  /// Enable the wait-time attribution profiler (runtime/profile.hpp).  The
  /// engine constructs a Profiler and wires `profiler` when set; profiling
  /// never perturbs determinism (hooks read the monotonic clock and write
  /// owner-thread counters only) and is zero-cost when off (every hook is
  /// an inlined null-pointer test).
  bool profile = false;
  /// Additionally keep per-wait spans and per-acquire wall-clock markers
  /// for the Chrome-trace/Perfetto export (memory proportional to the
  /// number of blocking calls; implied by detlockc --trace-out).
  bool profile_spans = false;
  /// Profiler instance the backends report into; not owned.  Drivers that
  /// construct backends directly may set this instead of `profile`.
  Profiler* profiler = nullptr;
  /// Deterministic fault injector (runtime/faultinject.hpp) consulted at
  /// every sync-op boundary; null = no injection (zero cost, same
  /// null-pointer-test discipline as `profiler`).  Not owned.
  FaultInjector* fault = nullptr;
  /// Synchronization-event observer (runtime/sync_observer.hpp) the
  /// backends notify at every happens-before edge endpoint; null = off
  /// (zero cost, same null-pointer-test discipline as `profiler`).  Not
  /// owned.  The engine wires this from EngineConfig::observer.
  SyncObserver* sync_observer = nullptr;
  /// Progress counter for the stall watchdog (runtime/watchdog.hpp):
  /// backends bump it whenever a synchronization operation *completes*.
  /// Null = no watchdog = zero cost.  Deliberately not the logical clock:
  /// deadlocked threads climb their clocks forever under the turn
  /// protocol's failed-acquire retry, so clock motion is not progress.
  /// Not owned.
  std::atomic<std::uint64_t>* progress = nullptr;
  /// Stall-watchdog window in wall-clock milliseconds; 0 disables.  The
  /// engine constructs a Watchdog and wires `progress` when nonzero.
  std::uint64_t watchdog_ms = 0;
  /// Watchdog policy: true sets `abort_flag` when it fires (graceful
  /// abort), false records the report and keeps waiting.
  bool watchdog_abort = true;
};

}  // namespace detlock::runtime
