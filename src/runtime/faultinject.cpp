#include "runtime/faultinject.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "support/error.hpp"
#include "support/spinwait.hpp"

namespace detlock::runtime {

const char* sync_point_name(SyncPoint p) {
  switch (p) {
    case SyncPoint::kLock: return "lock";
    case SyncPoint::kLockAcquired: return "lock-acquired";
    case SyncPoint::kUnlock: return "unlock";
    case SyncPoint::kBarrierArrive: return "barrier-arrive";
    case SyncPoint::kCondWait: return "cond-wait";
    case SyncPoint::kCondSignal: return "cond-signal";
    case SyncPoint::kJoin: return "join";
    case SyncPoint::kClockPublish: return "clock-publish";
    case SyncPoint::kAtomic: return "atomic";
  }
  DETLOCK_UNREACHABLE("bad sync point");
}

FaultPlan FaultPlan::timing_chaos(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.perturb_permille = 40;        // ~4% of lock/barrier/join/condvar boundaries
  plan.publish_perturb_permille = 4; // clock publications fire per basic block
  plan.max_sleep_us = 50;
  plan.max_yield_burst = 16;
  plan.max_spin_burst = 512;
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint32_t max_threads)
    : plan_(plan), threads_(max_threads) {
  // Per-thread streams: seed each slot from (plan seed, thread id) so the
  // decision a thread takes at its Nth boundary is a pure function of the
  // plan, independent of how the OS interleaves the threads.
  for (std::uint32_t t = 0; t < max_threads; ++t) {
    threads_[t].value.prng = Xoshiro256(plan.seed * 0x100000001b3ULL + t);
  }
}

void FaultInjector::perturb(ThreadData& d, std::uint32_t permille) {
  if (permille == 0 || d.prng.next_below(1000) >= permille) return;
  ++d.stats.perturbed;
  // Weighted menu: yield storms dominate (they reshuffle the scheduler,
  // which is what shakes out turn-protocol timing bugs), spin bursts model
  // spurious extra wait iterations, sleeps are rare but move wall time the
  // most.
  const std::uint64_t kind = d.prng.next_below(10);
  if (kind < 6) {
    const std::uint64_t n = 1 + d.prng.next_below(std::max<std::uint32_t>(plan_.max_yield_burst, 1));
    for (std::uint64_t i = 0; i < n; ++i) std::this_thread::yield();
    ++d.stats.yield_bursts;
  } else if (kind < 9) {
    const std::uint64_t n = 1 + d.prng.next_below(std::max<std::uint32_t>(plan_.max_spin_burst, 1));
    for (std::uint64_t i = 0; i < n; ++i) cpu_relax();
    ++d.stats.spin_bursts;
  } else {
    const std::uint64_t us = 1 + d.prng.next_below(std::max<std::uint32_t>(plan_.max_sleep_us, 1));
    std::this_thread::sleep_for(std::chrono::microseconds(us));
    ++d.stats.sleeps;
    d.stats.slept_us += us;
  }
}

void FaultInjector::on_sync(ThreadId self, SyncPoint point) {
  ThreadData& d = threads_[self].value;
  ++d.ops;
  ++d.stats.sync_ops;
  if (plan_.injects_death() && self == plan_.die_thread && !d.dead && d.ops > plan_.die_after_ops &&
      (plan_.die_point == FaultPlan::kAnyPoint ||
       static_cast<int>(point) == plan_.die_point)) {
    d.dead = true;  // one death per thread; the unwind path may sync again
    ++d.stats.deaths;
    throw Error("fault injected: thread " + std::to_string(self) + " died at " +
                sync_point_name(point) + " (sync op " + std::to_string(d.ops) + ")");
  }
  perturb(d, point == SyncPoint::kClockPublish ? plan_.publish_perturb_permille
                                               : plan_.perturb_permille);
}

bool FaultInjector::drop_signal(ThreadId self) {
  if (plan_.drop_signal_index == FaultPlan::kNever) return false;
  const std::uint64_t index = signal_index_.fetch_add(1, std::memory_order_relaxed);
  if (index != plan_.drop_signal_index) return false;
  ++threads_[self].value.stats.dropped_signals;
  return true;
}

FaultStats FaultInjector::stats() const {
  FaultStats total;
  for (const auto& padded : threads_) {
    const FaultStats& s = padded.value.stats;
    total.sync_ops += s.sync_ops;
    total.perturbed += s.perturbed;
    total.yield_bursts += s.yield_bursts;
    total.spin_bursts += s.spin_bursts;
    total.sleeps += s.sleeps;
    total.slept_us += s.slept_us;
    total.deaths += s.deaths;
    total.dropped_signals += s.dropped_signals;
  }
  return total;
}

}  // namespace detlock::runtime
