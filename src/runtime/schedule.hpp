// Schedule recording and online replica validation.
//
// The paper's introduction motivates deterministic execution with fault
// tolerance: "fault tolerance systems usually depend upon replicas ... to
// detect errors", which only works if replicas behave identically.  This
// module closes that loop: one run records its (deterministic) global lock-
// acquisition schedule; a replica validates itself against the recording
// *online*, failing fast at the first divergent acquisition instead of at
// output comparison.  Because DetLock schedules are deterministic, any
// divergence indicates a real fault (bit flip, heisenbug outside the weak-
// determinism contract, differing input) -- not benign scheduling noise,
// which is exactly what makes replica comparison tractable (cf. the
// record/replay systems in the paper's related work, which must log every
// shared access; here the schedule IS reproducible, so the log is only a
// witness).
#pragma once

#include <atomic>
#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/trace.hpp"

namespace detlock::runtime {

/// Serializes a recorded schedule (one "thread mutex clock" line per
/// acquisition, '#' comments) -- the inverse of parse_schedule.
std::string serialize_schedule(const std::vector<TraceEvent>& events);

/// Parses a serialized schedule; throws detlock::Error on malformed input.
std::vector<TraceEvent> parse_schedule(std::string_view text);

/// Online validator: feed it every acquisition (in global turn order) and
/// it checks the run against the expected schedule.  Thread-safe in the
/// same way RunTrace is; validation failures throw detlock::Error from the
/// acquiring thread, which the engine's abort protocol turns into a clean
/// whole-program unwind.
class ScheduleValidator {
 public:
  explicit ScheduleValidator(std::vector<TraceEvent> expected);

  /// Throws when the event disagrees with the recording or runs past its
  /// end.
  void on_acquire(ThreadId thread, MutexId mutex, std::uint64_t clock);

  /// Number of acquisitions validated so far.
  std::uint64_t position() const;

  /// True when the run consumed exactly the recorded schedule.
  bool complete() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> expected_;
  std::size_t next_ = 0;
};

}  // namespace detlock::runtime
