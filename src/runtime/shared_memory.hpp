// Flat shared address space of 64-bit words.
//
// All program memory (globals, heap, per-thread scratch) lives here; IR
// load/store address it by word index.  Cells are relaxed atomics so that
// even a *racy* program (which weak determinism does not protect -- see
// paper Sec. I) executes with defined behaviour and the race detector can
// observe it instead of the process corrupting itself.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "runtime/config.hpp"
#include "support/error.hpp"

namespace detlock::runtime {

class SharedMemory {
 public:
  explicit SharedMemory(std::size_t words) : cells_(words) {}

  std::size_t size() const { return cells_.size(); }

  std::int64_t load(std::int64_t addr) const {
    return cell(addr).load(std::memory_order_relaxed);
  }

  void store(std::int64_t addr, std::int64_t value) {
    cell(addr).store(value, std::memory_order_relaxed);
  }

  double load_f(std::int64_t addr) const { return std::bit_cast<double>(load(addr)); }

  void store_f(std::int64_t addr, double value) { store(addr, std::bit_cast<std::int64_t>(value)); }

  /// Performs one guest atomic operation and returns the value it observed
  /// (the old cell value; a fence returns 0).  Always sequentially
  /// consistent on the host regardless of the guest-visible ordering: the
  /// backend executes this inside the caller's turn, so the guest ordering
  /// annotation is a happens-before/lint concept only and seq_cst here can
  /// never weaken determinism.
  std::int64_t atomic_apply(const AtomicOp& op) {
    switch (op.kind) {
      case AtomicOp::Kind::kLoad:
        return cell(op.addr).load(std::memory_order_seq_cst);
      case AtomicOp::Kind::kStore:
        cell(op.addr).store(op.operand, std::memory_order_seq_cst);
        return op.operand;
      case AtomicOp::Kind::kAdd:
        return cell(op.addr).fetch_add(op.operand, std::memory_order_seq_cst);
      case AtomicOp::Kind::kExchange:
        return cell(op.addr).exchange(op.operand, std::memory_order_seq_cst);
      case AtomicOp::Kind::kCas: {
        std::int64_t expected = op.operand;
        cell(op.addr).compare_exchange_strong(expected, op.desired, std::memory_order_seq_cst,
                                              std::memory_order_seq_cst);
        return expected;  // the old value whether or not the swap happened
      }
      case AtomicOp::Kind::kFence:
        std::atomic_thread_fence(std::memory_order_seq_cst);
        return 0;
    }
    DETLOCK_UNREACHABLE("bad atomic op kind");
  }

  /// Order-insensitive fingerprint of a memory range (defaults to the whole
  /// space): determinism tests compare final images across runs.
  std::uint64_t fingerprint(std::int64_t begin = 0, std::int64_t end = -1) const;

  /// Raw cell array for the JIT's inline load/store stanzas.  On every
  /// target the JIT supports, a relaxed load/store of a lock-free 8-byte
  /// atomic is an ordinary aligned mov, so generated code may address the
  /// words directly after its own bounds check (same check as cell()).
  std::atomic<std::int64_t>* data() {
    static_assert(std::atomic<std::int64_t>::is_always_lock_free,
                  "JIT loads/stores assume plain-mov atomic cells");
    static_assert(sizeof(std::atomic<std::int64_t>) == sizeof(std::int64_t),
                  "JIT addresses cells as a packed word array");
    return cells_.data();
  }

 private:
  std::atomic<std::int64_t>& cell(std::int64_t addr) {
    DETLOCK_CHECK(addr >= 0 && static_cast<std::size_t>(addr) < cells_.size(),
                  "memory access out of bounds: " + std::to_string(addr));
    return cells_[static_cast<std::size_t>(addr)];
  }
  const std::atomic<std::int64_t>& cell(std::int64_t addr) const {
    DETLOCK_CHECK(addr >= 0 && static_cast<std::size_t>(addr) < cells_.size(),
                  "memory access out of bounds: " + std::to_string(addr));
    return cells_[static_cast<std::size_t>(addr)];
  }

  std::vector<std::atomic<std::int64_t>> cells_;
};

}  // namespace detlock::runtime
