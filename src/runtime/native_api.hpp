// Native (non-interpreted) API to the deterministic runtime.
//
// The paper exposes DetLock to programmers as drop-in replacements for the
// pthread lock/barrier/thread-creation functions, selected by a header file
// ("it is not necessary for the programmer to modify the code to use them").
// NativeRuntime is that surface for C++ programs in this repo: the examples
// link against it directly.  What the LLVM pass would insert -- the logical
// clock updates -- native code supplies by calling tick(); the IR pipeline
// in src/pass shows how a compiler derives those tick values automatically.
#pragma once

#include <functional>
#include <memory>
#include <thread>

#include "runtime/det_backend.hpp"

namespace detlock::runtime {

class NativeRuntime {
 public:
  explicit NativeRuntime(RuntimeConfig config = {});

  /// Must be called once, by the program's initial thread, before any other
  /// operation.
  void attach_main();

  /// Logical clock advance: stands in for the compiler-inserted clock
  /// update code.  Call with (approximate) instruction counts of the work
  /// just about to execute -- updating *before* the work, like the DetLock
  /// pass's ahead-of-time placement, minimizes other threads' waiting.
  void tick(std::uint64_t instructions);

  /// Deterministic replacements for pthread_mutex_lock / unlock.
  void mutex_lock(MutexId mutex);
  void mutex_unlock(MutexId mutex);

  /// Deterministic replacement for pthread_barrier_wait.
  void barrier_wait(BarrierId barrier, std::uint32_t participants);

  /// Deterministic replacements for pthread_cond_wait / signal / broadcast.
  /// cond_wait must be called holding `mutex`; signalers must hold the same
  /// mutex the waiters used.
  void cond_wait(CondVarId condvar, MutexId mutex);
  void cond_signal(CondVarId condvar);
  void cond_broadcast(CondVarId condvar);

  /// Deterministic replacement for pthread_create: registers a child with a
  /// deterministic id and clock, then runs `fn` on a new OS thread.  Join
  /// the returned handle with thread_join (not .join()) so the runtime can
  /// keep clock bookkeeping consistent.
  std::thread thread_create(std::function<void()> fn);

  /// Deterministic replacement for pthread_join.
  void thread_join(std::thread& thread, ThreadId child);

  /// Id the calling thread was registered with.
  ThreadId self() const;

  /// Id that the *next* thread_create call will assign (lets callers pair
  /// handles with ids).
  ThreadId peek_next_id() const { return next_preview_; }

  /// Must be called by the main thread when its deterministic section ends
  /// (other threads' turn checks then ignore it).
  void detach_main();

  DetBackend& backend() { return backend_; }
  std::uint64_t trace_fingerprint() const { return backend_.trace().fingerprint(); }

 private:
  DetBackend backend_;
  ThreadId next_preview_ = 1;
  static thread_local ThreadId tls_self_;
  static thread_local bool tls_attached_;
};

}  // namespace detlock::runtime
