// Deterministic heap allocator.
//
// Paper Sec. III-B: "Another concern are functions which internally use
// locks, such as malloc.  For such functions, we provide our own
// implementation which replaces the locks with our own deterministic locks."
// This allocator is that replacement: a first-fit free-list allocator over a
// region of SharedMemory whose internal lock is a deterministic mutex, so
// the address returned by every allocation -- and therefore every
// pointer-derived value in the program -- is identical across runs.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "runtime/backend.hpp"

namespace detlock::runtime {

class DetAllocator {
 public:
  /// Manages word addresses in [heap_base, heap_base + heap_words).  All
  /// internal-lock operations go to `internal_mutex` on `backend`, which
  /// must not be used by the program for anything else.
  DetAllocator(SyncBackend& backend, MutexId internal_mutex, std::int64_t heap_base, std::int64_t heap_words);

  /// Returns the base address of a block of `words` words, or 0 when the
  /// heap is exhausted (0 is never a valid block address).
  std::int64_t allocate(ThreadId self, std::int64_t words);

  /// Frees a block previously returned by allocate.  Throws on double-free
  /// or a pointer that was never allocated.
  void deallocate(ThreadId self, std::int64_t addr);

  struct Stats {
    std::uint64_t alloc_calls = 0;
    std::uint64_t free_calls = 0;
    std::uint64_t failed_allocs = 0;
    std::int64_t live_words = 0;
    std::int64_t peak_live_words = 0;
  };
  Stats stats() const { return stats_; }

  /// Number of live (unfreed) blocks; 0 after a leak-free run.
  std::size_t live_blocks() const { return live_.size(); }

 private:
  SyncBackend& backend_;
  MutexId mutex_;
  // Free ranges keyed by base address; adjacent ranges are coalesced on
  // free.  All fields below are guarded by `mutex_` (a deterministic lock,
  // so the data structure's evolution is itself deterministic).
  std::map<std::int64_t, std::int64_t> free_by_addr_;
  std::unordered_map<std::int64_t, std::int64_t> live_;
  Stats stats_;
};

}  // namespace detlock::runtime
