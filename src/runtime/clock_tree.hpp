// Hierarchical min-clock structure for the turn predicate.
//
// The Kendo turn test asks "is my published clock the strict minimum over
// all live threads (ties broken by smaller id)?".  The flat ClockTable
// answers it with an O(threads) scan per poll; this tree answers it with
// ONE atomic load of a combining root, moving the cost to the (much rarer)
// publications that actually change a subtree minimum:
//
//   leaves    one packed (clock, id) word per thread slot, cache-line
//             padded (written on every publication; padding keeps a
//             publication from invalidating a neighbor's line)
//   shards    every kArity leaves combine into a padded summary node
//   ...       summaries combine kArity-at-a-time up to
//   root      a single word whose value IS the global minimum
//
// Packing: (clock << 16) | id.  Unsigned comparison of packed words is
// exactly the turn order -- smaller clock first, then smaller id -- so a
// node's minimum is a plain min over child words and the tie-break
// invariant needs no separate code path.  Parked / finished / unregistered
// slots hold kPackedInfinity (all ones) and never win a minimum.
//
// Propagation (update) is performed by the PUBLISHING thread,
// synchronously, before it returns from the clock-table operation.  At
// each level the updater refreshes the node -- under a tiny per-node
// spinlock: read all children, store the min -- when its change can affect
// the node's value:
//
//   * the new leaf value is smaller than the node's current value
//     (a new minimum is arriving), or
//   * the node's current value carries an id from the updater's own
//     subtree (the node quotes this subtree, so a raise here must be
//     re-propagated or the old value would linger).
//
// Otherwise the node's minimum comes from a sibling subtree and is no
// larger than ours: our change cannot alter it, and the walk stops -- but
// only after the triple-check documented at update() rules out an
// in-flight refresh still holding a snapshot of our OLD leaf.  A thread
// that is not the current minimum therefore pays one leaf store plus three
// root-shard loads per publication; only the front-runner -- whose clock
// everyone else is waiting on -- walks its full O(arity * log threads)
// path.
//
// Why staleness is safe (the same argument the flat scan relies on): a
// thread's published clock only ever *rises* while it competes for turns.
// The three lowering transitions are all shielded:
//   * activate (spawn): the child's initial clock exceeds the parent's
//     published clock, and the parent's own leaf is already settled in the
//     tree, so the root stays below the child's clock throughout;
//   * barrier release (force_publish): every live thread is parked in the
//     barrier while the releaser republishes resume clocks, and the
//     propagation completes before the generation word opens the round;
//   * post-park set_clock: the releaser already force-published the same
//     value, so the owner's store is a no-op for the tree.
// A stale node value is therefore always <= the live value of the thread
// it quotes: reading it can only deny a turn (one extra poll), never grant
// one early.  Every lingering stale value is eventually repaired -- by the
// quoted thread's next publication (the own-subtree rule), or by the
// poller-side repair in min_is when the root quotes the poller itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "support/cacheline.hpp"
#include "support/error.hpp"

namespace detlock::runtime {

class MinClockTree {
 public:
  /// Packed id width: 16 bits (65536 slots), leaving 48 bits of clock.
  static constexpr std::uint32_t kIdBits = 16;
  static constexpr std::uint64_t kIdMask = (std::uint64_t{1} << kIdBits) - 1;
  /// Clocks above this are unrepresentable; pack() checks (a run would need
  /// ~2.8e14 retired guest instructions to get there).
  static constexpr std::uint64_t kMaxPackedClock = (std::uint64_t{1} << (64 - kIdBits)) - 2;
  /// All-ones: parked / finished / unregistered.  Compares greater than
  /// every real (clock, id) pair, so it never wins a minimum.
  static constexpr std::uint64_t kPackedInfinity = ~std::uint64_t{0};
  /// Fan-in per combining node: 8 leaves -> 1 summary keeps the tree two
  /// levels deep up to 64 threads and three up to 512.
  static constexpr std::uint32_t kArity = 8;

  static std::uint64_t pack(std::uint64_t clock, std::uint32_t id) {
    DETLOCK_CHECK(clock <= kMaxPackedClock, "logical clock exceeds the packable range (2^48)");
    return (clock << kIdBits) | id;
  }
  static std::uint32_t packed_id(std::uint64_t packed) {
    return static_cast<std::uint32_t>(packed & kIdMask);
  }
  static std::uint64_t packed_clock(std::uint64_t packed) { return packed >> kIdBits; }

  explicit MinClockTree(std::uint32_t capacity);

  /// Publishes `clock` (kClockInfinity = ~0 parks the slot) as slot `id`'s
  /// leaf and propagates as far up as the change can matter.  Called by the
  /// slot owner on every publication, and by the barrier releaser on behalf
  /// of parked participants (force_publish).  Returns the number of
  /// combining nodes refreshed (0 on the pruned fast path; profiling
  /// signal only).
  std::uint32_t update(std::uint32_t id, std::uint64_t clock);

  /// The current global minimum as a packed (clock, id) word.
  std::uint64_t root() const { return levels_.back()[0].value.min.load(std::memory_order_acquire); }

  /// The turn predicate: true iff (clock, id) IS the global minimum.
  /// Exactly the flat scan's answer in quiescent states: the root is the
  /// min over live packed values, unsigned packed order is the turn order,
  /// and the poller's own leaf (settled: the owner propagated it) bounds
  /// the root from above, so root == mine <=> nobody smaller exists.
  /// The repair branch fires only when the root quotes a stale value of
  /// the POLLER's own (racy-staleness case in the header); it is
  /// unreachable in single-threaded use, keeping the predicate
  /// poll-for-poll identical to the flat scan for the differential oracle.
  bool min_is(std::uint32_t id, std::uint64_t clock) {
    const std::uint64_t mine = pack(clock, id);
    const std::uint64_t top = root();
    if (top == mine) return true;
    if (top < mine && packed_id(top) != id) return false;
    // top quotes a stale value of OURS (or, defensively, sits above our
    // settled leaf): re-propagate and re-read.
    repair(id);
    return root() == mine;
  }

  /// Unconditional leaf-to-root refresh of `id`'s path (poller-side
  /// staleness repair).
  void repair(std::uint32_t id);

  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t depth() const { return static_cast<std::uint32_t>(levels_.size()) - 1; }

 private:
  struct Node {
    std::atomic<std::uint64_t> min{kPackedInfinity};
    /// Serializes refresh(): read children, store min.  Concurrent
    /// refreshes of one node would otherwise race a stale child snapshot
    /// over a fresher store (the classic lost-update on combining trees).
    /// Never nested: refresh reads children's `min` words without locks.
    std::atomic<bool> busy{false};
  };

  /// Recomputes node (level, index) from its children under its lock.
  void refresh(std::size_t level, std::uint32_t index);

  /// levels_[0] = leaves (one per slot); levels_.back() = the single root
  /// node.  Every element is padded to a cache line: leaves are written
  /// per-publication by their owner, nodes by whoever propagates through
  /// them.
  std::vector<std::vector<Padded<Node>>> levels_;
  std::uint32_t capacity_;
};

}  // namespace detlock::runtime
