#include "runtime/schedule.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace detlock::runtime {

std::string serialize_schedule(const std::vector<TraceEvent>& events) {
  std::ostringstream oss;
  oss << "# detlock schedule v1: <thread> <mutex> <clock> per acquisition, in global order\n";
  for (const TraceEvent& e : events) {
    oss << e.thread << ' ' << e.mutex << ' ' << e.clock << '\n';
  }
  return oss.str();
}

std::vector<TraceEvent> parse_schedule(std::string_view text) {
  std::vector<TraceEvent> events;
  std::size_t line_no = 0;
  for (std::string_view raw : split(text, '\n')) {
    ++line_no;
    std::string_view line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto tokens = split_whitespace(line);
    if (tokens.size() != 3) {
      throw Error("schedule line " + std::to_string(line_no) + ": expected 'thread mutex clock'");
    }
    const auto thread = parse_int(tokens[0]);
    const auto mutex = parse_int(tokens[1]);
    const auto clock = parse_int(tokens[2]);
    if (!thread || !mutex || !clock || *thread < 0 || *mutex < 0 || *clock < 0) {
      throw Error("schedule line " + std::to_string(line_no) + ": bad integer field");
    }
    events.push_back(TraceEvent{static_cast<ThreadId>(*thread), static_cast<MutexId>(*mutex),
                                static_cast<std::uint64_t>(*clock)});
  }
  return events;
}

ScheduleValidator::ScheduleValidator(std::vector<TraceEvent> expected) : expected_(std::move(expected)) {}

void ScheduleValidator::on_acquire(ThreadId thread, MutexId mutex, std::uint64_t clock) {
  const std::lock_guard<std::mutex> guard(mu_);
  if (next_ >= expected_.size()) {
    throw Error("replica divergence: acquisition #" + std::to_string(next_) +
                " (thread " + std::to_string(thread) + ", mutex " + std::to_string(mutex) +
                ") runs past the end of the recorded schedule");
  }
  const TraceEvent& want = expected_[next_];
  if (want.thread != thread || want.mutex != mutex || want.clock != clock) {
    throw Error("replica divergence at acquisition #" + std::to_string(next_) + ": recorded (thread " +
                std::to_string(want.thread) + ", mutex " + std::to_string(want.mutex) + ", clock " +
                std::to_string(want.clock) + ") but replica performed (thread " + std::to_string(thread) +
                ", mutex " + std::to_string(mutex) + ", clock " + std::to_string(clock) + ")");
  }
  ++next_;
}

std::uint64_t ScheduleValidator::position() const {
  const std::lock_guard<std::mutex> guard(mu_);
  return next_;
}

bool ScheduleValidator::complete() const {
  const std::lock_guard<std::mutex> guard(mu_);
  return next_ == expected_.size();
}

}  // namespace detlock::runtime
