// Deterministic fault injection: adversarially perturbs *physical* timing
// around every synchronization operation, and optionally injects real
// faults, to prove (or break) the runtime's two headline claims:
//
//   1. DETERMINISM UNDER CHAOS.  The lock-acquisition order depends only on
//      compiler-computed logical clocks (paper Sec. III-A), never on
//      physical timing.  Timing perturbations -- random sleeps, sched_yield
//      storms, busy-spin bursts, delayed clock publication -- therefore
//      must leave the RunTrace fingerprint and the memory fingerprint
//      bit-identical (tests/integration/chaos_determinism_test.cpp enforces
//      this for every workload across a matrix of seeds and both clock
//      publication modes).
//   2. HANG-FREEDOM UNDER REAL FAULTS.  Thread death mid-critical-section,
//      abandoned barriers, and lost condvar signals must end in a clean
//      cooperative abort (RuntimeConfig::abort_flag) or a watchdog report
//      (runtime/watchdog.hpp) -- never an unbounded hang.
//
// Integration follows the profiler's zero-cost discipline: backends hold a
// FaultInjector* that is null unless a plan was wired, and every hook site
// is an inlined null-pointer test.  Each thread's perturbation stream is a
// pure function of (plan seed, thread id, per-thread op index), so a chaos
// trial is itself reproducible given its seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/config.hpp"
#include "support/cacheline.hpp"
#include "support/prng.hpp"

namespace detlock::runtime {

/// Synchronization-operation boundaries the backends report.  kLock fires
/// before the acquire protocol runs, kLockAcquired after the mutex is held
/// (so a death there dies mid-critical-section), kBarrierArrive before the
/// arrival is registered (so a death there abandons the round for every
/// other participant), kClockPublish on the clock-update path.
enum class SyncPoint : std::uint8_t {
  kLock = 0,
  kLockAcquired,
  kUnlock,
  kBarrierArrive,
  kCondWait,
  kCondSignal,
  kJoin,
  kClockPublish,
  kAtomic,  // before an atomic op / fence enters its turn wait
};

inline constexpr std::size_t kNumSyncPoints = 9;

const char* sync_point_name(SyncPoint p);

/// What a FaultInjector does, seeded and fully declarative so trials can be
/// replayed.  Defaults inject nothing; timing_chaos() is the standard
/// adversarial-timing preset used by --chaos, the chaos matrix bench, and
/// the determinism-under-chaos tests.
struct FaultPlan {
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};
  static constexpr ThreadId kNoThread = ~ThreadId{0};
  static constexpr int kAnyPoint = -1;

  std::uint64_t seed = 1;

  // -- Timing perturbations (determinism-neutral by the paper's claim) --
  /// Per-mille probability that a sync-op boundary is perturbed at all.
  std::uint32_t perturb_permille = 0;
  /// kClockPublish fires far more often than the other points (once per
  /// clock-update instruction), so it gets its own, typically much smaller,
  /// probability: this models delayed clock publication without turning
  /// every basic block into a sleep.
  std::uint32_t publish_perturb_permille = 0;
  /// Perturbation menu bounds.  A perturbed op draws one of: a sched_yield
  /// storm (most likely), a busy-spin burst (models spurious extra
  /// turn-wait spins), or a microsecond sleep (least likely, most brutal).
  std::uint32_t max_sleep_us = 50;
  std::uint32_t max_yield_burst = 16;
  std::uint32_t max_spin_burst = 512;

  // -- Real faults (must abort cleanly, never hang) --
  /// Thread that dies by throwing detlock::Error from a sync-op boundary.
  ThreadId die_thread = kNoThread;
  /// The death fires at the first matching boundary once the thread's own
  /// sync-op count reaches this value.
  std::uint64_t die_after_ops = kNever;
  /// Restrict the death to one SyncPoint (e.g. kLockAcquired for a death
  /// mid-critical-section, kBarrierArrive for an abandoned barrier);
  /// kAnyPoint matches every boundary.
  int die_point = kAnyPoint;
  /// Swallow the Nth signal/broadcast that would have woken a waiter
  /// (0-based, counted across all threads); kNever disables.
  std::uint64_t drop_signal_index = kNever;

  /// Standard adversarial-timing preset: no real faults, moderate
  /// perturbation rate, short sleeps (tests run hundreds of trials).
  static FaultPlan timing_chaos(std::uint64_t seed);

  bool injects_timing() const { return perturb_permille > 0 || publish_perturb_permille > 0; }
  bool injects_death() const { return die_thread != kNoThread && die_after_ops != kNever; }
};

/// Aggregate of what actually got injected (merged across threads; read
/// after the run like BackendStats).
struct FaultStats {
  std::uint64_t sync_ops = 0;        ///< boundaries observed
  std::uint64_t perturbed = 0;       ///< boundaries perturbed
  std::uint64_t yield_bursts = 0;
  std::uint64_t spin_bursts = 0;
  std::uint64_t sleeps = 0;
  std::uint64_t slept_us = 0;        ///< total requested sleep time
  std::uint64_t deaths = 0;
  std::uint64_t dropped_signals = 0;
};

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::uint32_t max_threads);

  const FaultPlan& plan() const { return plan_; }

  /// Called by backends at every sync-op boundary.  May sleep, yield, or
  /// busy-spin (timing perturbation), and throws detlock::Error when the
  /// plan's death matches this boundary.
  void on_sync(ThreadId self, SyncPoint point);

  /// Returns true when this signal/broadcast delivery should be swallowed
  /// (a lost-wakeup fault).  Called only for signals that would have woken
  /// at least one waiter.
  bool drop_signal(ThreadId self);

  /// Merged per-thread tallies; call after every instrumented thread quiesced.
  FaultStats stats() const;

 private:
  struct ThreadData {
    Xoshiro256 prng{1};  // reseeded per thread in the constructor
    std::uint64_t ops = 0;
    bool dead = false;
    FaultStats stats;
  };

  void perturb(ThreadData& d, std::uint32_t permille);

  FaultPlan plan_;
  std::vector<Padded<ThreadData>> threads_;
  std::atomic<std::uint64_t> signal_index_{0};
};

}  // namespace detlock::runtime
