// SyncObserver: backend-level synchronization event hooks.
//
// Both backends invoke these callbacks at the points where happens-before
// edges are *established*, with an ordering guarantee the race detectors
// rely on: for any edge source -> sink (release -> acquire of the same
// mutex, signal -> wake of the same waiter, all barrier arrivals -> any
// departure of the same round, child finish -> join, spawn -> child start),
// the source hook returns before the sink hook is entered.  The backends
// achieve this by firing the source hook *before* the store that makes the
// edge observable and the sink hook *after* the load that observed it.
//
// Null observer = zero cost: backends keep a raw pointer and every hook
// site is an inlined null test, the same discipline as RuntimeConfig::
// profiler / fault / progress.
//
// The `clock` arguments carry the backend's logical clock for diagnostics
// only.  They are NOT deterministic across clock publication modes (chunked
// publication changes failed-acquire clock climbs), so detectors that
// promise byte-identical reports must never let them reach report content;
// racedetect::HbRaceDetector keeps its own event counts instead.
#pragma once

#include <cstdint>

#include "runtime/config.hpp"

namespace detlock::runtime {

class SyncObserver {
 public:
  virtual ~SyncObserver() = default;

  /// Fork edge: fires on the parent after `child`'s id is allocated, before
  /// the child's OS thread starts executing.
  virtual void on_thread_start(ThreadId /*child*/, ThreadId /*parent*/) {}
  /// Fires on the finishing thread before its exit becomes observable to a
  /// joiner (before the backend publishes the finished state).
  virtual void on_thread_finish(ThreadId /*self*/) {}
  /// Join edge: fires on the joiner after it observed `child` finished.
  virtual void on_join(ThreadId /*joiner*/, ThreadId /*child*/) {}

  /// Fires after the acquiring thread won the mutex (acquires of one mutex
  /// are serialized, so per-mutex hook order equals acquisition order).
  virtual void on_acquire(ThreadId /*self*/, MutexId /*mutex*/, std::uint64_t /*clock*/) {}
  /// Fires before the release becomes observable to the next acquirer.
  virtual void on_release(ThreadId /*self*/, MutexId /*mutex*/, std::uint64_t /*clock*/) {}

  /// Barrier round edges, keyed by the round's generation counter: every
  /// round-G arrive hook returns before any round-G depart hook is entered
  /// (the generation advances only after all arrivals are registered, and a
  /// thread re-arriving quickly carries the *next* generation).
  virtual void on_barrier_arrive(ThreadId /*self*/, BarrierId /*barrier*/,
                                 std::uint64_t /*generation*/) {}
  virtual void on_barrier_depart(ThreadId /*self*/, BarrierId /*barrier*/,
                                 std::uint64_t /*generation*/) {}

  /// Signal edge: fires on the signaler after the woken waiter (`target`)
  /// is chosen, before the wakeup becomes observable to it.  A dropped
  /// signal (fault injection) fires no hook -- no edge is created.
  virtual void on_cond_signal(ThreadId /*self*/, CondVarId /*condvar*/, ThreadId /*target*/,
                              std::uint64_t /*clock*/) {}
  /// Fires on the waiter after it observed its wakeup, before it
  /// reacquires the guard mutex.
  virtual void on_cond_wake(ThreadId /*waiter*/, CondVarId /*condvar*/) {}

  /// Atomic-operation edge endpoint: fires inside the thread's turn, after
  /// the memory side effect, before the clock bump releases the turn.  Turn
  /// serialization gives the source-before-sink guarantee for free: a
  /// release-flavored atomic's hook returns before any later acquire-
  /// flavored atomic's hook on the same address is entered.  `observed` is
  /// the old cell value (what a CAS compared against).
  virtual void on_atomic(ThreadId /*self*/, const AtomicOp& /*op*/, std::int64_t /*observed*/,
                         std::uint64_t /*clock*/) {}
  /// Fence edge endpoint, same turn-serialized placement as on_atomic.
  virtual void on_fence(ThreadId /*self*/, AtomicOp::Order /*order*/, std::uint64_t /*clock*/) {}
};

}  // namespace detlock::runtime
