#include "runtime/profile.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace detlock::runtime {

const char* wait_category_name(WaitCategory c) {
  switch (c) {
    case WaitCategory::kTurnWait: return "turn-wait";
    case WaitCategory::kLockRetry: return "lock-retry";
    case WaitCategory::kMutexWait: return "mutex-wait";
    case WaitCategory::kBarrierWait: return "barrier-wait";
    case WaitCategory::kJoinWait: return "join-wait";
    case WaitCategory::kCondVarWait: return "condvar-wait";
  }
  DETLOCK_UNREACHABLE("bad wait category");
}

Profiler::Profiler(std::uint32_t max_threads, bool keep_spans)
    : epoch_(std::chrono::steady_clock::now()), keep_spans_(keep_spans), threads_(max_threads) {}

Profiler::ThreadData& Profiler::slot(ThreadId t) {
  DETLOCK_CHECK(t < threads_.size(), "profiler thread id out of range");
  return threads_[t].value;
}

void Profiler::thread_begin(ThreadId t) {
  ThreadData& d = slot(t);
  d.used = true;
  d.begin_ns = now();
}

void Profiler::thread_end(ThreadId t, std::uint64_t instructions, std::uint64_t clock_instructions) {
  ThreadData& d = slot(t);
  d.end_ns = now();
  d.instructions = instructions;
  d.clock_instructions = clock_instructions;
}

void Profiler::add_wait(ThreadId t, WaitCategory category, std::uint64_t begin_ns, std::uint64_t end_ns,
                        std::uint64_t iters) {
  ThreadData& d = slot(t);
  CategoryStat& c = d.categories[static_cast<std::size_t>(category)];
  c.ns += end_ns > begin_ns ? end_ns - begin_ns : 0;
  c.events += 1;
  c.iters += iters;
  if (keep_spans_) d.spans.push_back(ProfileSpan{t, category, begin_ns, end_ns});
}

void Profiler::on_acquire(ThreadId t, MutexId mutex, std::uint64_t wait_ns, bool contended,
                          std::uint64_t clock, std::uint64_t at_ns) {
  ThreadData& d = slot(t);
  MutexProfile* entry = nullptr;
  for (MutexProfile& m : d.mutexes) {
    if (m.mutex == mutex) {
      entry = &m;
      break;
    }
  }
  if (entry == nullptr) {
    d.mutexes.push_back(MutexProfile{mutex, 0, 0, 0, 0});
    entry = &d.mutexes.back();
  }
  entry->acquires += 1;
  entry->contended += contended ? 1 : 0;
  entry->wait_ns += wait_ns;
  entry->max_wait_ns = std::max(entry->max_wait_ns, wait_ns);
  if (keep_spans_) d.acquires.push_back(AcquireMark{t, mutex, clock, at_ns});
}

ProfileSummary Profiler::summary() const {
  ProfileSummary s;
  std::vector<MutexProfile> merged;
  for (std::uint32_t t = 0; t < threads_.size(); ++t) {
    const ThreadData& d = threads_[t].value;
    if (!d.used) continue;
    ThreadProfile tp;
    tp.thread = t;
    // A thread that never reached thread_end (engine unwound) still gets a
    // well-formed lifetime: clamp to the last observed instant.
    const std::uint64_t end = d.end_ns >= d.begin_ns ? d.end_ns : d.begin_ns;
    tp.wall_ns = end - d.begin_ns;
    tp.instructions = d.instructions;
    tp.clock_instructions = d.clock_instructions;
    for (std::size_t c = 0; c < kNumWaitCategories; ++c) {
      tp.categories[c] = d.categories[c];
      s.totals[c].ns += d.categories[c].ns;
      s.totals[c].events += d.categories[c].events;
      s.totals[c].iters += d.categories[c].iters;
    }
    s.total_wall_ns += tp.wall_ns;
    s.total_instructions += tp.instructions;
    s.total_clock_instructions += tp.clock_instructions;
    s.total_wait_ns += tp.wait_ns();
    s.total_useful_ns += tp.useful_ns();
    for (const MutexProfile& m : d.mutexes) {
      auto it = std::find_if(merged.begin(), merged.end(),
                             [&](const MutexProfile& e) { return e.mutex == m.mutex; });
      if (it == merged.end()) {
        merged.push_back(m);
      } else {
        it->acquires += m.acquires;
        it->contended += m.contended;
        it->wait_ns += m.wait_ns;
        it->max_wait_ns = std::max(it->max_wait_ns, m.max_wait_ns);
      }
    }
    s.threads.push_back(tp);
  }
  std::sort(merged.begin(), merged.end(), [](const MutexProfile& a, const MutexProfile& b) {
    return a.wait_ns != b.wait_ns ? a.wait_ns > b.wait_ns : a.mutex < b.mutex;
  });
  s.mutexes = std::move(merged);
  return s;
}

std::vector<ProfileSpan> Profiler::spans() const {
  std::vector<ProfileSpan> out;
  for (const auto& padded : threads_) {
    const ThreadData& d = padded.value;
    out.insert(out.end(), d.spans.begin(), d.spans.end());
  }
  std::sort(out.begin(), out.end(), [](const ProfileSpan& a, const ProfileSpan& b) {
    return a.begin_ns != b.begin_ns ? a.begin_ns < b.begin_ns : a.thread < b.thread;
  });
  return out;
}

std::vector<AcquireMark> Profiler::acquire_marks() const {
  std::vector<AcquireMark> out;
  for (const auto& padded : threads_) {
    const ThreadData& d = padded.value;
    out.insert(out.end(), d.acquires.begin(), d.acquires.end());
  }
  std::sort(out.begin(), out.end(), [](const AcquireMark& a, const AcquireMark& b) {
    return a.at_ns != b.at_ns ? a.at_ns < b.at_ns : a.thread < b.thread;
  });
  return out;
}

namespace {

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace

std::string profile_breakdown(const ProfileSummary& s) {
  TextTable table;
  table.add_row({"Category", "Events", "Iterations", "Time (ms)", "% of wall"});
  table.add_rule();
  for (std::size_t c = 0; c < kNumWaitCategories; ++c) {
    const CategoryStat& cat = s.totals[c];
    table.add_row({wait_category_name(static_cast<WaitCategory>(c)), std::to_string(cat.events),
                   std::to_string(cat.iters), str_format("%.3f", ms(cat.ns)),
                   str_format("%.1f%%", pct(cat.ns, s.total_wall_ns))});
  }
  table.add_rule();
  table.add_row({"waiting (total)", "-", "-", str_format("%.3f", ms(s.total_wait_ns)),
                 str_format("%.1f%%", pct(s.total_wait_ns, s.total_wall_ns))});
  table.add_row({"useful execution", "-", std::to_string(s.total_instructions) + " instrs",
                 str_format("%.3f", ms(s.total_useful_ns)),
                 str_format("%.1f%%", pct(s.total_useful_ns, s.total_wall_ns))});
  table.add_row({str_format("wall (%zu threads)", s.threads.size()), "-", "-",
                 str_format("%.3f", ms(s.total_wall_ns)), "100.0%"});

  if (!s.mutexes.empty()) {
    table.add_section("Most contended mutexes");
    table.add_row({"Mutex", "Acquires", "Contended", "Wait (ms)", "Max wait (ms)"});
    const std::size_t top = std::min<std::size_t>(s.mutexes.size(), 8);
    for (std::size_t i = 0; i < top; ++i) {
      const MutexProfile& m = s.mutexes[i];
      table.add_row({"m" + std::to_string(m.mutex), std::to_string(m.acquires),
                     std::to_string(m.contended), str_format("%.3f", ms(m.wait_ns)),
                     str_format("%.3f", ms(m.max_wait_ns))});
    }
  }
  return table.to_string();
}

namespace {

/// Appends one JSON trace event object (Chrome trace-event "JSON Array
/// Format" entries; ts/dur are microseconds as doubles).
void append_event(std::ostringstream& os, bool& first, const std::string& body) {
  if (!first) os << ",\n";
  first = false;
  os << "    " << body;
}

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace

std::string profile_to_chrome_trace(const Profiler& prof, const std::vector<TraceEvent>& schedule) {
  const ProfileSummary s = prof.summary();
  std::ostringstream os;
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;

  // Process/thread metadata: pid 1 = wall-clock view, pid 2 = logical order.
  append_event(os, first,
               "{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
               "\"args\": {\"name\": \"detlock run (wall clock)\"}}");
  for (const ThreadProfile& t : s.threads) {
    append_event(os, first,
                 str_format("{\"ph\": \"M\", \"pid\": 1, \"tid\": %u, \"name\": \"thread_name\", "
                            "\"args\": {\"name\": \"thread %u\"}}",
                            t.thread, t.thread));
    // A whole-lifetime span per thread gives the waits a visual baseline.
    append_event(os, first,
                 str_format("{\"name\": \"thread %u lifetime\", \"cat\": \"thread\", \"ph\": \"X\", "
                            "\"pid\": 1, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f, "
                            "\"args\": {\"instructions\": %llu, \"clock_instructions\": %llu}}",
                            t.thread, t.thread, 0.0, us(t.wall_ns),
                            static_cast<unsigned long long>(t.instructions),
                            static_cast<unsigned long long>(t.clock_instructions)));
  }

  for (const ProfileSpan& span : prof.spans()) {
    append_event(os, first,
                 str_format("{\"name\": \"%s\", \"cat\": \"wait\", \"ph\": \"X\", \"pid\": 1, "
                            "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f}",
                            wait_category_name(span.category), span.thread, us(span.begin_ns),
                            us(span.end_ns > span.begin_ns ? span.end_ns - span.begin_ns : 0)));
  }

  for (const AcquireMark& mark : prof.acquire_marks()) {
    append_event(os, first,
                 str_format("{\"name\": \"acquire m%llu\", \"cat\": \"lock\", \"ph\": \"i\", "
                            "\"s\": \"t\", \"pid\": 1, \"tid\": %u, \"ts\": %.3f, "
                            "\"args\": {\"mutex\": %llu, \"clock\": %llu}}",
                            static_cast<unsigned long long>(mark.mutex), mark.thread, us(mark.at_ns),
                            static_cast<unsigned long long>(mark.mutex),
                            static_cast<unsigned long long>(mark.clock)));
  }

  if (!schedule.empty()) {
    append_event(os, first,
                 "{\"ph\": \"M\", \"pid\": 2, \"name\": \"process_name\", "
                 "\"args\": {\"name\": \"deterministic schedule (logical order)\"}}");
    // Timestamp = position in the global acquisition order: this track is a
    // schedule witness, not a wall-clock measurement.
    std::size_t index = 0;
    for (const TraceEvent& e : schedule) {
      append_event(os, first,
                   str_format("{\"name\": \"m%llu @ clock %llu\", \"cat\": \"schedule\", "
                              "\"ph\": \"X\", \"pid\": 2, \"tid\": %u, \"ts\": %zu.0, "
                              "\"dur\": 0.9, \"args\": {\"mutex\": %llu, \"clock\": %llu, "
                              "\"order\": %zu}}",
                              static_cast<unsigned long long>(e.mutex),
                              static_cast<unsigned long long>(e.clock), e.thread, index,
                              static_cast<unsigned long long>(e.mutex),
                              static_cast<unsigned long long>(e.clock), index));
      ++index;
    }
  }

  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace detlock::runtime
