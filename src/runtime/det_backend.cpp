#include "runtime/det_backend.hpp"

#include <algorithm>

#include "runtime/faultinject.hpp"
#include "runtime/profile.hpp"
#include "runtime/schedule.hpp"
#include "runtime/shared_memory.hpp"
#include "runtime/sync_observer.hpp"

#include "support/spinwait.hpp"

namespace detlock::runtime {

namespace {
// Pool sizes.  Program mutex/barrier ids are dense small integers (the IR
// passes them as immediates or loop indices); the pools are preallocated so
// lookups never need coordination.
constexpr std::size_t kMaxMutexes = 4096;
constexpr std::size_t kMaxBarriers = 256;
constexpr std::size_t kMaxCondVars = 256;
}  // namespace

// Mutex state packs (release_time << 1 | held) into one atomic word.  A
// single word is essential, not a micro-optimization: reading `held` and the
// release time separately would let an attempt pair a fresh held=0 with a
// stale release time from one tenure earlier (an intervening acquire+release
// is possible because unlock does not need the turn), and the attempt's
// outcome would then depend on physical timing.  With the packed word every
// attempt's decision and CAS use one consistent snapshot, and the monotonic
// release time makes ABA impossible.
struct DetBackend::MutexState {
  static constexpr std::uint64_t kHeldBit = 1;
  static constexpr ThreadId kNoHolder = ~ThreadId{0};
  std::atomic<std::uint64_t> packed{0};        // release_time=0, free
  std::atomic<ThreadId> holder{kNoHolder};     // diagnostics only
};

// Condvar state.  The waiter queue is mutated only while holding the
// condvar's guard mutex (enforced), so plain containers suffice; the queue
// order -- and therefore the wakeup order -- inherits the mutex's
// deterministic acquisition order.
struct DetBackend::CondVarState {
  static constexpr MutexId kNoGuard = ~MutexId{0};
  std::atomic<MutexId> guard{kNoGuard};  // set at first wait, then fixed
  std::vector<ThreadId> queue;
};

struct DetBackend::BarrierState {
  static constexpr std::size_t kMaxParticipants = 128;
  std::atomic<std::uint64_t> generation{0};
  std::atomic<std::uint32_t> arrived{0};
  std::atomic<std::uint32_t> arrival_index{0};
  std::atomic<std::uint64_t> max_clock{0};
  std::atomic<std::uint64_t> release_clock{0};
  // Ids of this round's arrivals, written by each arriver before its
  // arrived increment (so the releaser, which synchronizes via that
  // counter, sees them all).
  std::atomic<ThreadId> arrivals[kMaxParticipants];
};

DetBackend::DetBackend(RuntimeConfig config)
    : config_(config),
      clocks_(config),
      trace_(config.keep_trace_events),
      prof_(config.profiler),
      fault_(config.fault),
      progress_(config.progress),
      obs_(config.sync_observer),
      wait_state_(config.max_threads),
      thread_stats_(config.max_threads),
      cond_signal_(config.max_threads) {
  mutexes_.reserve(kMaxMutexes);
  for (std::size_t i = 0; i < kMaxMutexes; ++i) mutexes_.push_back(std::make_unique<MutexState>());
  barriers_.reserve(kMaxBarriers);
  for (std::size_t i = 0; i < kMaxBarriers; ++i) barriers_.push_back(std::make_unique<BarrierState>());
  condvars_.reserve(kMaxCondVars);
  for (std::size_t i = 0; i < kMaxCondVars; ++i) condvars_.push_back(std::make_unique<CondVarState>());
}

DetBackend::~DetBackend() = default;

DetBackend::MutexState& DetBackend::mutex_state(MutexId id) {
  DETLOCK_CHECK(id < mutexes_.size(), "mutex id out of range");
  return *mutexes_[id];
}

DetBackend::BarrierState& DetBackend::barrier_state(BarrierId id) {
  DETLOCK_CHECK(id < barriers_.size(), "barrier id out of range");
  return *barriers_[id];
}

ThreadId DetBackend::register_main_thread() {
  const ThreadId id = next_thread_id_.fetch_add(1, std::memory_order_relaxed);
  DETLOCK_CHECK(id == 0, "register_main_thread must be the first registration");
  clocks_.activate(id, 0);
  return id;
}

ThreadId DetBackend::register_spawn(ThreadId parent) {
  const ThreadId id = next_thread_id_.fetch_add(1, std::memory_order_relaxed);
  DETLOCK_CHECK(id < config_.max_threads, "too many threads");
  // Child ids are allocated in program spawn order and the child's clock is
  // seeded from the parent's exact (local) clock: both are pure functions of
  // the parent's deterministic execution, so thread identity is stable
  // across runs.
  clocks_.activate(id, clocks_.local(parent) + 1);
  // Fork edge: fired on the parent before the child's OS thread exists, so
  // the child's first hook strictly follows this one.
  if (obs_ != nullptr) obs_->on_thread_start(id, parent);
  return id;
}

void DetBackend::thread_finish(ThreadId self) {
  // Before clocks_.finish: a joiner can only observe kFinished after this
  // hook returned, preserving the finish -> join hook order.
  if (obs_ != nullptr) obs_->on_thread_finish(self);
  clocks_.finish(self);
  note_progress(self);  // a finish is progress for any joiner
}

void DetBackend::join(ThreadId self, ThreadId target) {
  DETLOCK_CHECK(target < config_.max_threads && target != self, "bad join target");
  DETLOCK_CHECK(clocks_.state(target) != ThreadState::kUnused,
                "join of never-registered thread " + std::to_string(target));
  // Join is an acquire of a "lock" the child releases at its final clock,
  // and it uses exactly the mutex discipline: proceed only with the turn,
  // and only when the child's release time (final clock) is below our
  // clock.  Holding the turn makes the decision deterministic -- if the
  // child were still alive, its published clock (<= its final clock) would
  // deny us the turn, so "turn held && final < mine" cannot be observed in
  // one run and missed in another.  While waiting we advance our clock so
  // the rest of the system never stalls on a blocked joiner; the jump to
  // final+1 is a fast-path for the +1-per-turn climb and lands on the same
  // deterministic post-join clock, max(entry clock, child final + 1).
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kJoin);
  clocks_.flush(self);
  note_wait(self, WaitReason::kJoin, target);
  const std::uint64_t prof_t0 = prof_ != nullptr ? prof_->now() : 0;
  std::uint64_t climbs = 0;
  while (true) {
    check_abort();
    wait_for_turn(self);
    if (clocks_.state(target) == ThreadState::kFinished) {
      const std::uint64_t final_clock = clocks_.finished_clock(target);
      if (final_clock < clocks_.local(self)) break;
      clocks_.set_clock(self, final_clock + 1);
    } else {
      // Published climb (see lock()): an unpublished +1 under chunked
      // publication would retain the turn while the "is the child finished
      // yet" probe repeats in real time.
      clocks_.add(self, 1);
      clocks_.flush(self);
    }
    ++climbs;
  }
  if (prof_ != nullptr) prof_->add_wait(self, WaitCategory::kJoinWait, prof_t0, prof_->now(), climbs);
  if (obs_ != nullptr) obs_->on_join(self, target);
  clocks_.add(self, 1);
  note_progress(self);
}

void DetBackend::clock_add(ThreadId self, std::uint64_t delta) {
  // Delayed-clock-publication perturbation: the sleep/yield happens before
  // the publishing store, so other threads keep seeing the stale clock for
  // the duration -- exactly the hazard a racy turn test would expose.
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kClockPublish);
  if (clocks_.add(self, delta)) {
    BackendStats& st = thread_stats_[self].value;
    ++st.clock_publications;
    // Publications count as (subsampled) progress: a thread grinding
    // through compute still moves the system, because its published clock
    // is what everyone else's turn test waits on.
    if (progress_ != nullptr && (st.clock_publications & 63) == 0) {
      progress_->fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::uint64_t DetBackend::clock_of(ThreadId thread) const { return clocks_.published(thread); }

void DetBackend::wait_for_turn(ThreadId self) {
  // Callers inside an operation already published their wait reason; tag a
  // bare turn wait (direct test drivers) so the watchdog never samples
  // "running" from a blocked thread.
  if (progress_ != nullptr && wait_state_[self].value.load(std::memory_order_relaxed) == 0) {
    note_wait(self, WaitReason::kTurn, 0);
  }
  SpinWait waiter;
  BackendStats& st = thread_stats_[self].value;
  while (!clocks_.has_turn(self)) {
    check_abort();
    waiter.wait();
    ++st.lock_wait_spins;
  }
  // Re-check after the wake: the turn can be obtained *because* every other
  // thread died/parked, in which case the abort flag, not the turn, is the
  // truth about what to do next.
  check_abort();
}

void DetBackend::lock(ThreadId self, MutexId mutex) {
  MutexState& m = mutex_state(mutex);
  BackendStats& st = thread_stats_[self].value;
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kLock);
  // Kendo reads the performance counter on runtime entry; the analogue in
  // chunked mode is forcing any unpublished residue out so the turn test
  // uses the thread's true clock.
  clocks_.flush(self);
  note_wait(self, WaitReason::kMutex, mutex);

  // Wait attribution: an acquire that succeeds on its first attempt spent
  // the whole call waiting for the turn (kTurnWait); one that needed
  // retries is a failed-try_lock climb (kLockRetry), turn waits included.
  const std::uint64_t prof_t0 = prof_ != nullptr ? prof_->now() : 0;
  const std::uint64_t prof_spins0 = st.lock_wait_spins;
  std::uint64_t failed_attempts = 0;

  while (true) {
    wait_for_turn(self);
    // Only the turn holder reaches this point, so at most one thread probes
    // the mutex at a time; the CAS below still guards against a concurrent
    // unlock (which needs no turn).
    const std::uint64_t my_clock = clocks_.local(self);
    std::uint64_t snapshot = m.packed.load(std::memory_order_acquire);
    const bool held = (snapshot & MutexState::kHeldBit) != 0;
    const std::uint64_t release_time = snapshot >> 1;
    // Self-deadlock diagnostic.  Reading `holder` relaxed is sound for this
    // check: a thread always clears holder (in unlock) after setting it, so
    // per-variable coherence guarantees it can never re-observe its *own*
    // stale id from a previous tenure -- if it reads `self` here, it really
    // is the current holder.
    if (held && m.holder.load(std::memory_order_relaxed) == self) {
      throw Error("deterministic mutex " + std::to_string(mutex) + " re-locked by holder (self-deadlock)");
    }
    if (!held && release_time < my_clock) {
      if (m.packed.compare_exchange_strong(snapshot, snapshot | MutexState::kHeldBit,
                                           std::memory_order_acq_rel)) {
        m.holder.store(self, std::memory_order_relaxed);
        break;
      }
    }
    // Failed attempt: advance the logical clock so other waiters (and the
    // holder's eventual release time) can order ahead of us, then re-queue.
    // The climb must be *published*, not just local: the turn test compares
    // published clocks while the acquire predicate above reads the local
    // clock.  Under chunked publication an unpublished climb would let this
    // thread keep the turn (stale published clock stays the strict min)
    // while its decision clock rises with every real-time probe of `held` --
    // whether the holder has physically released when we look would then
    // decide the acquire clock, and the schedule would depend on timing.
    // Publishing makes the climb visible, so we lose the turn once our clock
    // passes the holder's and can only re-probe at deterministic points.
    check_abort();
    clocks_.add(self, 1);
    clocks_.flush(self);
    ++st.failed_trylocks;
    ++failed_attempts;
  }
  // A death here is mid-critical-section: the mutex is held and will never
  // be unlocked, so every later waiter depends on the abort path.
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kLockAcquired);
  // Acquire hook after the CAS won: the previous holder's release hook ran
  // before its packed store, which this CAS observed.
  if (obs_ != nullptr) obs_->on_acquire(self, mutex, clocks_.local(self));
  if (prof_ != nullptr) {
    const std::uint64_t prof_t1 = prof_->now();
    const bool contended = failed_attempts > 0;
    prof_->add_wait(self, contended ? WaitCategory::kLockRetry : WaitCategory::kTurnWait, prof_t0,
                    prof_t1, contended ? failed_attempts : st.lock_wait_spins - prof_spins0);
    prof_->on_acquire(self, mutex, prof_t1 - prof_t0, contended, clocks_.local(self), prof_t1);
  }
  // Record while this thread still holds the global minimum (before the
  // bump below releases the turn): acquires are recorded in exactly the
  // turn-serialized order, so the trace fingerprint is itself a
  // deterministic witness rather than a racy observation of one.
  if (config_.record_trace) trace_.record_acquire(self, mutex, clocks_.local(self));
  // Same reasoning for online replica validation: checking inside the turn
  // makes the comparison position deterministic.
  if (config_.validator != nullptr) config_.validator->on_acquire(self, mutex, clocks_.local(self));
  // Successful acquire costs one tick (Kendo does the same), so back-to-back
  // acquisitions by one thread never tie.
  clocks_.add(self, 1);
  ++st.lock_acquires;
  note_progress(self);
}

void DetBackend::unlock(ThreadId self, MutexId mutex) {
  MutexState& m = mutex_state(mutex);
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kUnlock);
  clocks_.flush(self);
  const std::uint64_t snapshot = m.packed.load(std::memory_order_relaxed);
  DETLOCK_CHECK((snapshot & MutexState::kHeldBit) != 0 &&
                    m.holder.load(std::memory_order_relaxed) == self,
                "unlock of mutex " + std::to_string(mutex) + " not held by caller");
  // Release hook before the packed store: no later acquirer can win the
  // mutex (and fire its acquire hook) until that store lands.
  if (obs_ != nullptr) obs_->on_release(self, mutex, clocks_.local(self));
  // Unlock needs no turn: the logical release time recorded here, not the
  // physical release moment, decides every later acquire.
  m.holder.store(MutexState::kNoHolder, std::memory_order_relaxed);
  m.packed.store(clocks_.local(self) << 1, std::memory_order_release);
  clocks_.add(self, 1);
  note_progress(self);
}

void DetBackend::barrier_wait(ThreadId self, BarrierId barrier, std::uint32_t participants) {
  DETLOCK_CHECK(participants > 0 && participants <= BarrierState::kMaxParticipants,
                "barrier participant count out of range");
  BarrierState& b = barrier_state(barrier);
  BackendStats& st = thread_stats_[self].value;
  // A death here is an abandoned barrier: it fires before this thread's
  // arrival registers, so the round never completes and every other
  // participant parks until the abort flag (or watchdog) unwinds it.
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kBarrierArrive);
  clocks_.flush(self);
  note_wait(self, WaitReason::kBarrier, barrier);
  const std::uint64_t my_clock = clocks_.local(self);
  // Fold my arrival clock into the round maximum.
  std::uint64_t seen = b.max_clock.load(std::memory_order_relaxed);
  while (seen < my_clock && !b.max_clock.compare_exchange_weak(seen, my_clock, std::memory_order_relaxed)) {
  }
  const std::uint64_t generation = b.generation.load(std::memory_order_acquire);
  // Arrive hook before the arrived increment: the releaser only sees the
  // full count after every participant's increment, so all round-G arrive
  // hooks return before any round-G depart hook runs.  Keyed by generation
  // so a fast re-arriver lands in the next round's bucket.
  if (obs_ != nullptr) obs_->on_barrier_arrive(self, barrier, generation);
  // Register in the round's arrival list *before* the arrived increment the
  // releaser synchronizes on.
  const std::uint32_t slot = b.arrival_index.fetch_add(1, std::memory_order_relaxed);
  DETLOCK_CHECK(slot < BarrierState::kMaxParticipants, "barrier arrival overflow");
  b.arrivals[slot].store(self, std::memory_order_relaxed);
  // Park: a barrier-blocked thread must not stall lock acquisitions by
  // threads still running toward the barrier.
  clocks_.park(self);

  const std::uint64_t prof_t0 = prof_ != nullptr ? prof_->now() : 0;
  std::uint64_t park_spins = 0;

  if (b.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == participants) {
    // All participants are now parked here, so this is the moment the
    // all-live-threads requirement is checkable: a live thread that is NOT
    // in this barrier could otherwise race the parked/resumed transitions
    // (see the file header).  Checking at arrival would be too eager --
    // early arrivers legitimately observe threads that have not been
    // spawned yet.
    if (config_.strict_barriers) {
      DETLOCK_CHECK(participants == clocks_.live_count(),
                    "deterministic barriers must include every live thread (see det_backend.hpp)");
    }
    // Last arriver releases the round.  Round state is reset before the new
    // generation is published; participants of the *next* round can only
    // arrive after observing this release, so the reset cannot race.
    const std::uint64_t resume = b.max_clock.load(std::memory_order_relaxed) + 1;
    b.release_clock.store(resume, std::memory_order_relaxed);
    // Republish every participant's resume clock NOW, at the logical
    // release point.  A participant that is slow to wake must already be
    // observable at its post-barrier clock -- leaving it at +infinity would
    // let a faster participant win lock-acquire ties it should lose (the
    // divergence this fixes showed up as run-to-run swaps of who pops the
    // first work item after a barrier).
    for (std::uint32_t i = 0; i < participants; ++i) {
      clocks_.force_publish(b.arrivals[i].load(std::memory_order_relaxed), resume);
    }
    b.max_clock.store(0, std::memory_order_relaxed);
    b.arrived.store(0, std::memory_order_relaxed);
    b.arrival_index.store(0, std::memory_order_relaxed);
    b.generation.store(generation + 1, std::memory_order_release);
  } else {
    SpinWait waiter;
    while (b.generation.load(std::memory_order_acquire) == generation) {
      check_abort();
      waiter.wait();
      ++park_spins;
    }
    // Post-wake re-check: the generation bump and the abort flag can race,
    // and a parker released into an aborting run must unwind, not return to
    // the interpreter as if the round completed.
    check_abort();
  }
  if (prof_ != nullptr) {
    prof_->add_wait(self, WaitCategory::kBarrierWait, prof_t0, prof_->now(), park_spins);
  }
  if (obs_ != nullptr) obs_->on_barrier_depart(self, barrier, generation);
  // Every participant resumes at the same deterministic clock; thread ids
  // break the resulting ties in the turn protocol.
  clocks_.set_clock(self, b.release_clock.load(std::memory_order_relaxed));
  ++st.barrier_waits;
  note_progress(self);
}

DetBackend::CondVarState& DetBackend::condvar_state(CondVarId id) {
  DETLOCK_CHECK(id < condvars_.size(), "condvar id out of range");
  return *condvars_[id];
}

// Deterministic condition variables -- the paper's named future work
// ("we have not yet implemented other synchronization operations, such as
// condition variables"), implemented with the same proof shape as join:
//
//   * The wait queue is ordered by the guard mutex's (deterministic)
//     acquisition order, so WHO gets signaled is deterministic.
//   * The signal stamps the waiter's mailbox with the signaler's clock s,
//     taken while holding the guard mutex.
//   * The waiter treats the stamp exactly like a mutex release time: it
//     proceeds only while holding the turn AND s < its own clock.  If the
//     signal had not logically happened at that point in some other run,
//     the signaler's published clock (<= s) would deny the waiter the
//     turn, so the decision cannot depend on physical timing.  While
//     waiting, the waiter advances by +1 per turn (never stalling the
//     system, never parking -- parking would re-introduce the barrier
//     tie-break hazard); its climb is bounded by min(live clocks)+1 <= s+1,
//     so the post-wait clock is exactly max(entry, s+1): deterministic.
std::uint64_t DetBackend::await_signal(ThreadId self) {
  std::atomic<std::uint64_t>& slot = cond_signal_[self].value;
  const std::uint64_t prof_t0 = prof_ != nullptr ? prof_->now() : 0;
  std::uint64_t climbs = 0;
  while (true) {
    check_abort();
    wait_for_turn(self);
    const std::uint64_t stamped = slot.load(std::memory_order_acquire);
    if (stamped != 0) {
      const std::uint64_t s = stamped - 1;
      if (s < clocks_.local(self)) {
        if (prof_ != nullptr) {
          prof_->add_wait(self, WaitCategory::kCondVarWait, prof_t0, prof_->now(), climbs);
        }
        return s;
      }
      clocks_.set_clock(self, s + 1);
    } else {
      // Published climb (see lock()): the "has the signal landed yet" probe
      // must not repeat under a retained turn with a rising local clock.
      clocks_.add(self, 1);
      clocks_.flush(self);
    }
    ++climbs;
  }
}

// Fairness note (inherited from Kendo's design, applies to locks and to the
// re-acquisition below): acquisition priority IS the logical clock, so a
// thread that re-locks a mutex repeatedly while its clock barely moves
// deterministically beats waiters whose ids are larger -- they chase its
// clock and lose the tie at the decisive attempt.  Compiled programs do not
// exhibit this because the inserted clock updates advance every thread's
// clock between synchronization operations; hand-written backend drivers
// (tests, native code) must do the same via clock_add/tick.
void DetBackend::cond_wait(ThreadId self, CondVarId condvar, MutexId mutex) {
  MutexState& m = mutex_state(mutex);
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kCondWait);
  DETLOCK_CHECK(m.holder.load(std::memory_order_relaxed) == self,
                "cond_wait requires the caller to hold the mutex");
  CondVarState& cv = condvar_state(condvar);
  MutexId expected = CondVarState::kNoGuard;
  if (!cv.guard.compare_exchange_strong(expected, mutex, std::memory_order_relaxed)) {
    DETLOCK_CHECK(expected == mutex, "condvar used with two different mutexes");
  }
  cond_signal_[self].value.store(0, std::memory_order_relaxed);
  cv.queue.push_back(self);  // guarded by `mutex`
  unlock(self, mutex);

  note_wait(self, WaitReason::kCondVar, condvar);
  await_signal(self);
  // Wake hook after the signal was observed (the signaler's hook ran before
  // its mailbox store) and before the guard-mutex reacquire below fires its
  // own acquire hook.
  if (obs_ != nullptr) obs_->on_cond_wake(self, condvar);
  cond_signal_[self].value.store(0, std::memory_order_relaxed);
  clocks_.add(self, 1);
  lock(self, mutex);
  note_progress(self);
}

void DetBackend::cond_signal(ThreadId self, CondVarId condvar) {
  CondVarState& cv = condvar_state(condvar);
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kCondSignal);
  const MutexId guard = cv.guard.load(std::memory_order_relaxed);
  if (guard == CondVarState::kNoGuard) return;  // never waited on: no-op
  DETLOCK_CHECK(mutex_state(guard).holder.load(std::memory_order_relaxed) == self,
                "cond_signal requires holding the condvar's mutex");
  if (cv.queue.empty()) return;
  // Lost-wakeup fault: swallow the delivery while leaving the waiter
  // queued, exactly as if the signal never happened.
  if (fault_ != nullptr && fault_->drop_signal(self)) return;
  clocks_.flush(self);
  const std::uint64_t stamp = clocks_.local(self);
  const ThreadId target = cv.queue.front();
  cv.queue.erase(cv.queue.begin());
  // Signal hook before the mailbox store: the waiter cannot observe its
  // wakeup (and fire on_cond_wake) until the store lands.  The waiter only
  // re-queues after waking, so one mailbox per waiter never overlaps.
  if (obs_ != nullptr) obs_->on_cond_signal(self, condvar, target, stamp);
  cond_signal_[target].value.store(stamp + 1, std::memory_order_release);
  clocks_.add(self, 1);
  note_progress(self);
}

void DetBackend::cond_broadcast(ThreadId self, CondVarId condvar) {
  CondVarState& cv = condvar_state(condvar);
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kCondSignal);
  const MutexId guard = cv.guard.load(std::memory_order_relaxed);
  if (guard == CondVarState::kNoGuard) return;
  DETLOCK_CHECK(mutex_state(guard).holder.load(std::memory_order_relaxed) == self,
                "cond_broadcast requires holding the condvar's mutex");
  if (cv.queue.empty()) return;
  if (fault_ != nullptr && fault_->drop_signal(self)) return;
  clocks_.flush(self);
  const std::uint64_t stamp = clocks_.local(self);
  for (const ThreadId target : cv.queue) {
    if (obs_ != nullptr) obs_->on_cond_signal(self, condvar, target, stamp);
    cond_signal_[target].value.store(stamp + 1, std::memory_order_release);
  }
  cv.queue.clear();
  clocks_.add(self, 1);
  note_progress(self);
}

// An atomic operation (or fence) is a synchronization point with the same
// proof shape as a lock acquire, minus the availability test: the thread
// proceeds exactly when its published clock is the strict minimum (the
// turn), performs the memory side effect inside the turn, then releases the
// turn by bumping its clock.  Because only the turn holder ever reaches
// atomic_apply, the global interleaving of guest atomics IS the turn order
// -- a pure function of the compiler-computed clocks -- and every engine
// observes the same values.  The +1 bump is also the liveness argument for
// guest spin loops: a spinner's failed CAS costs it one tick per attempt, so
// the thread it is waiting on deterministically overtakes it and makes
// progress.  The guest-visible ordering annotation never reaches this file's
// logic; it only feeds the observer (happens-before edges) and static lint.
std::int64_t DetBackend::atomic_op(ThreadId self, const AtomicOp& op, SharedMemory& memory) {
  BackendStats& st = thread_stats_[self].value;
  if (fault_ != nullptr) fault_->on_sync(self, SyncPoint::kAtomic);
  clocks_.flush(self);
  note_wait(self, WaitReason::kTurn, 0);
  const std::uint64_t prof_t0 = prof_ != nullptr ? prof_->now() : 0;
  const std::uint64_t prof_spins0 = st.lock_wait_spins;
  wait_for_turn(self);
  const std::int64_t observed = memory.atomic_apply(op);
  // Observer inside the turn: turn serialization is what delivers the
  // source-before-sink hook ordering (a release-flavored atomic's hook
  // returns before any later acquire of the same address runs at all).
  if (obs_ != nullptr) {
    if (op.kind == AtomicOp::Kind::kFence) {
      obs_->on_fence(self, op.order, clocks_.local(self));
    } else {
      obs_->on_atomic(self, op, observed, clocks_.local(self));
    }
  }
  // Record inside the turn, like record_acquire: the fingerprint then
  // witnesses the turn-serialized atomic order AND the observed values.
  if (config_.record_trace) {
    trace_.record_atomic(self, static_cast<std::uint8_t>(op.kind), op.addr, observed);
  }
  if (prof_ != nullptr) {
    prof_->add_wait(self, WaitCategory::kTurnWait, prof_t0, prof_->now(),
                    st.lock_wait_spins - prof_spins0);
  }
  clocks_.add(self, 1);
  ++st.atomic_ops;
  note_progress(self);
  return observed;
}

StallSnapshot DetBackend::stall_snapshot() const {
  StallSnapshot snap;
  const std::uint32_t registered =
      std::min(next_thread_id_.load(std::memory_order_relaxed), config_.max_threads);
  for (ThreadId t = 0; t < registered; ++t) {
    ThreadSnapshot ts;
    ts.thread = t;
    switch (clocks_.state(t)) {
      case ThreadState::kUnused: ts.phase = ThreadPhase::kUnregistered; break;
      case ThreadState::kLive: ts.phase = ThreadPhase::kLive; break;
      case ThreadState::kFinished: ts.phase = ThreadPhase::kFinished; break;
    }
    ts.published_clock = clocks_.published(t);
    const std::uint64_t packed = wait_state_[t].value.load(std::memory_order_relaxed);
    ts.reason = static_cast<WaitReason>(packed >> 56);
    ts.target = packed & kWaitTargetMask;
    snap.threads.push_back(ts);
  }
  for (MutexId id = 0; id < mutexes_.size(); ++id) {
    // packed == 0 means never acquired: a release always stores a nonzero
    // logical time (any tenure costs at least one tick).
    const std::uint64_t packed = mutexes_[id]->packed.load(std::memory_order_relaxed);
    if (packed == 0) continue;
    MutexSnapshot ms;
    ms.mutex = id;
    ms.held = (packed & MutexState::kHeldBit) != 0;
    ms.release_time = packed >> 1;
    ms.holder = mutexes_[id]->holder.load(std::memory_order_relaxed);
    snap.mutexes.push_back(ms);
  }
  return snap;
}

const RunTrace& DetBackend::trace() const { return trace_; }

BackendStats DetBackend::stats() const {
  BackendStats total;
  for (const auto& padded : thread_stats_) {
    const BackendStats& s = padded.value;
    total.lock_acquires += s.lock_acquires;
    total.lock_wait_spins += s.lock_wait_spins;
    total.failed_trylocks += s.failed_trylocks;
    total.barrier_waits += s.barrier_waits;
    total.clock_publications += s.clock_publications;
    total.atomic_ops += s.atomic_ops;
  }
  total.turn_polls = clocks_.turn_poll_count();
  total.turn_scan_slots = clocks_.turn_scan_slot_count();
  return total;
}

}  // namespace detlock::runtime
