// Per-thread logical clocks.
//
// Each slot's published clock sits on its own cache line: the wait-for-turn
// loop of every blocked thread polls all published clocks, so sharing lines
// between slots would turn every clock update into cross-thread traffic.
//
// Publication policy (RuntimeConfig::publication):
//  * kEveryUpdate -- DetLock: the compiler-inserted update code writes the
//    shared counter immediately, so waiting threads observe progress at
//    basic-block granularity (and *ahead* of execution when the pass hoisted
//    the update).
//  * kChunked -- Kendo: the counter models a hardware performance counter
//    sampled at overflow interrupts; other threads observe progress only
//    every chunk_size units, which is exactly the latency disadvantage the
//    paper exploits in Table II.
//
// Turn-predicate layout (RuntimeConfig::clock_table):
//  * kFlat -- has_turn scans every registered slot (softened by the
//    cached-blocker fast path).  The original layout; kept as the
//    differential oracle for the tree.
//  * kTree -- a MinClockTree (runtime/clock_tree.hpp) mirrors every
//    published clock as a packed (clock, id) leaf; has_turn is one root
//    read.  Every publication path (activate / publish / park /
//    force_publish / finish) also updates the tree, so the two structures
//    answer identically poll-for-poll; docs/turn-protocol-scaling.md has
//    the full argument.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/clock_tree.hpp"
#include "runtime/config.hpp"
#include "support/cacheline.hpp"
#include "support/error.hpp"

namespace detlock::runtime {

inline constexpr std::uint64_t kClockInfinity = ~std::uint64_t{0};

enum class ThreadState : std::uint8_t { kUnused = 0, kLive = 1, kFinished = 2 };

class ClockTable {
 public:
  explicit ClockTable(const RuntimeConfig& config)
      : publication_(config.publication),
        chunk_size_(config.chunk_size),
        slots_(config.max_threads),
        tree_(config.clock_table == ClockTableKind::kTree
                  ? std::make_unique<MinClockTree>(config.max_threads)
                  : nullptr) {}

  std::uint32_t capacity() const { return static_cast<std::uint32_t>(slots_.size()); }

  ClockTableKind kind() const {
    return tree_ ? ClockTableKind::kTree : ClockTableKind::kFlat;
  }

  /// Activates a slot with an initial clock.  Caller (the registration path
  /// in the backend) serializes slot allocation.
  void activate(ThreadId id, std::uint64_t initial_clock) {
    DETLOCK_CHECK(id < slots_.size(), "thread id exceeds max_threads");
    Slot& s = slots_[id].value;
    DETLOCK_CHECK(s.state.load(std::memory_order_relaxed) == ThreadState::kUnused, "thread slot reused");
    s.local = initial_clock;
    s.last_published = initial_clock;
    s.published.store(initial_clock, std::memory_order_release);
    s.state.store(ThreadState::kLive, std::memory_order_release);
    if (tree_) tree_->update(id, initial_clock);
    // Registered-slot high-water mark: scans (and the cached-blocker reuse
    // check) only ever look at [0, registered).  Monotone -- finish keeps
    // the slot counted so finished threads' final clocks stay readable.
    // Missing a concurrently activating slot is safe for the same reason
    // flat staleness is: the child's initial clock exceeds the (already
    // registered) parent's published clock, so the child could not have
    // denied any turn the parent's clock did not already deny.
    if (id + 1 > registered_.load(std::memory_order_relaxed)) {
      registered_.store(id + 1, std::memory_order_release);
    }
  }

  /// Owner-thread only: advance the local clock, publishing per policy.
  /// Returns true when a publication (shared store) happened.
  bool add(ThreadId id, std::uint64_t delta) {
    Slot& s = slot(id);
    s.local += delta;
    if (publication_ == ClockPublication::kEveryUpdate || s.local - s.last_published >= chunk_size_) {
      publish(id, s);
      return true;
    }
    return false;
  }

  /// Owner-thread only: force the published value up to date (entry to any
  /// synchronization operation does this in chunked mode -- Kendo reads the
  /// performance counter when its runtime is entered).
  void flush(ThreadId id) { publish(id, slot(id)); }

  /// Owner-thread only: local (exact) clock.
  std::uint64_t local(ThreadId id) const { return slots_[id].value.local; }

  /// Any thread: last published clock.
  std::uint64_t published(ThreadId id) const {
    return slots_[id].value.published.load(std::memory_order_acquire);
  }

  ThreadState state(ThreadId id) const { return slots_[id].value.state.load(std::memory_order_acquire); }

  /// Final (exact) clock of a finished thread.  Only valid after state(id)
  /// returned kFinished: the owner wrote `local` before the release stores
  /// in finish(), so the acquire load in state() orders this read.
  std::uint64_t finished_clock(ThreadId id) const { return slots_[id].value.local; }

  /// Owner-thread only: park at +infinity (barrier wait / exit).  The local
  /// clock is preserved by the caller and restored via set_clock.
  void park(ThreadId id) {
    slot(id).published.store(kClockInfinity, std::memory_order_release);
    if (tree_) tree_->update(id, kClockInfinity);
  }

  /// Owner-thread only: hard-set the clock (barrier release, join return).
  void set_clock(ThreadId id, std::uint64_t value) {
    Slot& s = slot(id);
    s.local = value;
    publish(id, s);
  }

  /// ANY thread: overwrite a parked thread's published clock.  Used only by
  /// the barrier releaser, which republishes every participant's resume
  /// clock before opening the next round: without this, a participant that
  /// has logically left the barrier but not yet physically woken still
  /// shows +infinity, and a faster participant's next lock attempt would
  /// win a tie it must lose -- the observed value must flip at a *logical*
  /// point, not at wake-up time.  The owner's own set_clock(value) follows
  /// and rewrites the same value.
  void force_publish(ThreadId id, std::uint64_t value) {
    slot(id).published.store(value, std::memory_order_release);
    if (tree_) tree_->update(id, value);
  }

  /// Owner-thread only: mark finished; clock stays at +infinity so the turn
  /// protocol ignores the thread.
  void finish(ThreadId id) {
    Slot& s = slot(id);
    s.published.store(kClockInfinity, std::memory_order_release);
    s.state.store(ThreadState::kFinished, std::memory_order_release);
    if (tree_) tree_->update(id, kClockInfinity);
  }

  /// The Kendo turn predicate: `id` holds the turn iff its published clock
  /// is strictly minimal among live threads, ties broken by smaller id.
  /// Parked/finished threads sit at +infinity and never block anyone.
  ///
  /// Tree mode answers with one root read (MinClockTree::min_is); packed
  /// (clock, id) order makes the root's value the flat predicate's winner,
  /// so the answer is identical poll-for-poll (the differential oracle in
  /// tests/runtime/clock_tree_test.cpp holds the two modes to that).
  ///
  /// Flat mode, "remember the blocker" fast path: a waiter typically loses
  /// the turn to the SAME thread for many consecutive polls (that thread is
  /// grinding through the compute that keeps its clock minimal), so each
  /// slot caches the last thread that denied it and re-polls only that
  /// slot -- one acquire load instead of an O(T) scan.  The full scan runs
  /// only when the cached blocker stops denying, and it is the sole source
  /// of `true`, so the decision is always exactly the full-scan predicate
  /// evaluated at this poll.  The cache is an owner-thread field (only
  /// thread `id` calls has_turn(id) under the turn protocol); it lives on
  /// the slot's own cache line, so updating it causes no cross-thread
  /// traffic.
  bool has_turn(ThreadId id) const {
    const std::uint64_t mine = published(id);
    const Slot& me = slots_[id].value;
    ++me.turn_polls;
    if (tree_ && mine != kClockInfinity) {
      ++me.turn_scan_slots;
      return tree_->min_is(id, mine);
    }
    // Flat scan (also the degenerate parked-poller case in tree mode,
    // where `mine` does not fit the packed representation).
    const std::uint32_t n = registered_.load(std::memory_order_acquire);
    const std::uint32_t cached = me.cached_blocker;
    if (cached < n && cached != id) {
      ++me.turn_scan_slots;
      if (denies_turn(cached, id, mine)) return false;
    }
    for (std::uint32_t u = 0; u < n; ++u) {
      if (u == id) continue;
      ++me.turn_scan_slots;
      if (denies_turn(u, id, mine)) {
        me.cached_blocker = u;
        return false;
      }
    }
    return true;
  }

  std::uint32_t live_count() const {
    const std::uint32_t n = registered_.load(std::memory_order_acquire);
    std::uint32_t count = 0;
    for (std::uint32_t u = 0; u < n; ++u) {
      if (slots_[u].value.state.load(std::memory_order_acquire) == ThreadState::kLive) ++count;
    }
    return count;
  }

  /// High-water mark of activated slots: scans cover [0, registered) only.
  std::uint32_t registered_count() const { return registered_.load(std::memory_order_acquire); }

  std::uint64_t publication_count() const {
    std::uint64_t n = 0;
    const std::uint32_t r = registered_.load(std::memory_order_acquire);
    for (std::uint32_t u = 0; u < r; ++u) n += slots_[u].value.publications;
    return n;
  }

  /// Total has_turn evaluations (all slots).  Owner-thread counters summed
  /// without synchronization: exact once the owning threads have joined
  /// (the same discipline as publication_count), which is when
  /// BackendStats reads them.
  std::uint64_t turn_poll_count() const {
    std::uint64_t n = 0;
    const std::uint32_t r = registered_.load(std::memory_order_acquire);
    for (std::uint32_t u = 0; u < r; ++u) n += slots_[u].value.turn_polls;
    return n;
  }

  /// Total slots examined across all has_turn evaluations: ~1/poll in tree
  /// mode (the root read) vs up to O(registered)/poll in flat mode.  The
  /// scan-per-poll ratio is bench/threads_sweep's machine-independent
  /// sublinearity signal.
  std::uint64_t turn_scan_slot_count() const {
    std::uint64_t n = 0;
    const std::uint32_t r = registered_.load(std::memory_order_acquire);
    for (std::uint32_t u = 0; u < r; ++u) n += slots_[u].value.turn_scan_slots;
    return n;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> published{0};
    std::atomic<ThreadState> state{ThreadState::kUnused};
    // Owner-thread fields (no concurrent access).
    std::uint64_t local = 0;
    std::uint64_t last_published = 0;
    std::uint64_t publications = 0;
    /// Last thread observed denying this slot the turn (flat has_turn fast
    /// path).  Owner-thread only; mutable because the turn predicate is
    /// logically const.  ~0u = no blocker cached yet.
    mutable std::uint32_t cached_blocker = ~0u;
    /// has_turn evaluations by this slot, and slots examined across them
    /// (owner-thread profiling counters; see turn_scan_slot_count).
    mutable std::uint64_t turn_polls = 0;
    mutable std::uint64_t turn_scan_slots = 0;
  };

  /// True when live thread `u` denies `id` (published clock `mine`) the
  /// turn: strictly smaller clock, or equal clock with a smaller id.
  bool denies_turn(std::uint32_t u, ThreadId id, std::uint64_t mine) const {
    const Slot& s = slots_[u].value;
    if (s.state.load(std::memory_order_acquire) != ThreadState::kLive) return false;
    const std::uint64_t theirs = s.published.load(std::memory_order_acquire);
    return theirs < mine || (theirs == mine && u < id);
  }

  Slot& slot(ThreadId id) {
    DETLOCK_CHECK(id < slots_.size(), "bad thread id");
    return slots_[id].value;
  }

  void publish(ThreadId id, Slot& s) {
    if (s.published.load(std::memory_order_relaxed) == s.local) {
      // Already visible (e.g. the barrier releaser force-published our
      // resume clock, updating the tree too); still resynchronize the
      // chunking bookkeeping.
      s.last_published = s.local;
      return;
    }
    s.published.store(s.local, std::memory_order_release);
    s.last_published = s.local;
    ++s.publications;
    if (tree_) tree_->update(id, s.local);
  }

  ClockPublication publication_;
  std::uint64_t chunk_size_;
  std::vector<Padded<Slot>> slots_;
  /// One-past-the-highest activated slot id; see activate().
  std::atomic<std::uint32_t> registered_{0};
  /// Hierarchical min mirror (kTree mode); null in kFlat mode.
  std::unique_ptr<MinClockTree> tree_;
};

}  // namespace detlock::runtime
