#include "runtime/native_api.hpp"

#include "support/error.hpp"

namespace detlock::runtime {

thread_local ThreadId NativeRuntime::tls_self_ = 0;
thread_local bool NativeRuntime::tls_attached_ = false;

NativeRuntime::NativeRuntime(RuntimeConfig config) : backend_(config) {}

void NativeRuntime::attach_main() {
  tls_self_ = backend_.register_main_thread();
  tls_attached_ = true;
}

ThreadId NativeRuntime::self() const {
  DETLOCK_CHECK(tls_attached_, "calling thread is not attached to the deterministic runtime");
  return tls_self_;
}

void NativeRuntime::tick(std::uint64_t instructions) { backend_.clock_add(self(), instructions); }

void NativeRuntime::mutex_lock(MutexId mutex) { backend_.lock(self(), mutex); }

void NativeRuntime::mutex_unlock(MutexId mutex) { backend_.unlock(self(), mutex); }

void NativeRuntime::barrier_wait(BarrierId barrier, std::uint32_t participants) {
  backend_.barrier_wait(self(), barrier, participants);
}

void NativeRuntime::cond_wait(CondVarId condvar, MutexId mutex) {
  backend_.cond_wait(self(), condvar, mutex);
}

void NativeRuntime::cond_signal(CondVarId condvar) { backend_.cond_signal(self(), condvar); }

void NativeRuntime::cond_broadcast(CondVarId condvar) { backend_.cond_broadcast(self(), condvar); }

std::thread NativeRuntime::thread_create(std::function<void()> fn) {
  // Register on the *parent* thread so the child's id and clock seed are a
  // deterministic function of the parent's progress, not of when the OS
  // schedules the child.
  const ThreadId child = backend_.register_spawn(self());
  next_preview_ = child + 1;
  return std::thread([this, child, fn = std::move(fn)]() {
    tls_self_ = child;
    tls_attached_ = true;
    fn();
    backend_.thread_finish(child);
    tls_attached_ = false;
  });
}

void NativeRuntime::thread_join(std::thread& thread, ThreadId child) {
  backend_.join(self(), child);
  thread.join();
}

void NativeRuntime::detach_main() {
  backend_.thread_finish(self());
  tls_attached_ = false;
}

}  // namespace detlock::runtime
