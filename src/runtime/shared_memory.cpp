#include "runtime/shared_memory.hpp"

#include "support/hash.hpp"

namespace detlock::runtime {

std::uint64_t SharedMemory::fingerprint(std::int64_t begin, std::int64_t end) const {
  if (end < 0) end = static_cast<std::int64_t>(cells_.size());
  DETLOCK_CHECK(begin >= 0 && begin <= end && static_cast<std::size_t>(end) <= cells_.size(),
                "bad fingerprint range");
  Fnv1aHasher hasher;
  for (std::int64_t a = begin; a < end; ++a) {
    hasher.update_i64(cells_[static_cast<std::size_t>(a)].load(std::memory_order_relaxed));
  }
  return hasher.digest();
}

}  // namespace detlock::runtime
