// NondetBackend: ordinary pthread-style synchronization.
//
// This is the paper's baseline ("Original Exec Time"): plain mutexes, a
// sense-reversing barrier, no turn protocol.  Logical clocks are still
// accumulated thread-locally when clock_add is called (the cost of executing
// the inserted update code is what Table I's first band measures), but they
// are never published and never consulted.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/backend.hpp"
#include "support/cacheline.hpp"
#include "support/error.hpp"

namespace detlock::runtime {

class NondetBackend final : public SyncBackend {
 public:
  explicit NondetBackend(RuntimeConfig config = {});
  ~NondetBackend() override;

  ThreadId register_main_thread() override;
  ThreadId register_spawn(ThreadId parent) override;
  void thread_finish(ThreadId self) override;
  void join(ThreadId self, ThreadId target) override;
  void clock_add(ThreadId self, std::uint64_t delta) override;
  std::uint64_t clock_of(ThreadId thread) const override;
  void lock(ThreadId self, MutexId mutex) override;
  void unlock(ThreadId self, MutexId mutex) override;
  void barrier_wait(ThreadId self, BarrierId barrier, std::uint32_t participants) override;
  void cond_wait(ThreadId self, CondVarId condvar, MutexId mutex) override;
  void cond_signal(ThreadId self, CondVarId condvar) override;
  void cond_broadcast(ThreadId self, CondVarId condvar) override;
  const RunTrace& trace() const override;
  BackendStats stats() const override;

 private:
  struct BarrierState;
  struct CondVarState;

  void check_abort() const {
    if (config_.abort_flag != nullptr && config_.abort_flag->load(std::memory_order_relaxed)) {
      throw Error("runtime aborted (another thread failed)");
    }
  }

  RuntimeConfig config_;
  RunTrace trace_;
  /// Wait-time attribution (runtime/profile.hpp); null = off.  Not owned.
  Profiler* prof_ = nullptr;
  std::vector<std::unique_ptr<std::mutex>> mutexes_;
  std::vector<std::unique_ptr<BarrierState>> barriers_;
  std::vector<std::unique_ptr<CondVarState>> condvars_;
  struct ThreadSlot {
    std::uint64_t clock = 0;
    std::atomic<bool> finished{false};
    std::uint64_t acquires = 0;
    std::uint64_t barrier_waits = 0;
  };
  std::vector<Padded<ThreadSlot>> slots_;
  std::atomic<std::uint32_t> next_thread_id_{0};
};

}  // namespace detlock::runtime
