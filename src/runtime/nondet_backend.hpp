// NondetBackend: ordinary pthread-style synchronization.
//
// This is the paper's baseline ("Original Exec Time"): plain mutexes, a
// sense-reversing barrier, no turn protocol.  Logical clocks are still
// accumulated thread-locally when clock_add is called (the cost of executing
// the inserted update code is what Table I's first band measures), but they
// are never published and never consulted.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/backend.hpp"
#include "support/cacheline.hpp"
#include "support/error.hpp"

namespace detlock::runtime {

class NondetBackend final : public SyncBackend {
 public:
  explicit NondetBackend(RuntimeConfig config = {});
  ~NondetBackend() override;

  ThreadId register_main_thread() override;
  ThreadId register_spawn(ThreadId parent) override;
  void thread_finish(ThreadId self) override;
  void join(ThreadId self, ThreadId target) override;
  void clock_add(ThreadId self, std::uint64_t delta) override;
  std::uint64_t clock_of(ThreadId thread) const override;
  void lock(ThreadId self, MutexId mutex) override;
  void unlock(ThreadId self, MutexId mutex) override;
  void barrier_wait(ThreadId self, BarrierId barrier, std::uint32_t participants) override;
  void cond_wait(ThreadId self, CondVarId condvar, MutexId mutex) override;
  void cond_signal(ThreadId self, CondVarId condvar) override;
  void cond_broadcast(ThreadId self, CondVarId condvar) override;
  std::int64_t atomic_op(ThreadId self, const AtomicOp& op, SharedMemory& memory) override;
  const RunTrace& trace() const override;
  BackendStats stats() const override;

  /// Watchdog snapshot: thread phases and wait reasons plus mutex ownership
  /// (tracked only while a watchdog is wired).  Clocks are never published
  /// in this backend, so published_clock is reported as 0.
  StallSnapshot stall_snapshot() const override;

 private:
  struct BarrierState;
  struct CondVarState;

  static constexpr std::uint64_t kWaitTargetMask = (std::uint64_t{1} << 56) - 1;
  static constexpr ThreadId kNoHolder = ~ThreadId{0};

  void check_abort() const {
    if (config_.abort_flag != nullptr && config_.abort_flag->load(std::memory_order_relaxed)) {
      throw Error("runtime aborted (another thread failed)");
    }
  }

  /// See DetBackend::note_wait / note_progress: watchdog bookkeeping, gated
  /// on progress_ so the fast path stays a single null test.
  void note_wait(ThreadId self, WaitReason reason, std::uint64_t target) {
    if (progress_ != nullptr) {
      wait_state_[self].value.store(
          (static_cast<std::uint64_t>(reason) << 56) | (target & kWaitTargetMask),
          std::memory_order_relaxed);
    }
  }
  void note_progress(ThreadId self) {
    if (progress_ != nullptr) {
      progress_->fetch_add(1, std::memory_order_relaxed);
      wait_state_[self].value.store(0, std::memory_order_relaxed);
    }
  }

  RuntimeConfig config_;
  RunTrace trace_;
  /// Wait-time attribution (runtime/profile.hpp); null = off.  Not owned.
  Profiler* prof_ = nullptr;
  /// Deterministic fault injection; null = off.  Not owned.
  FaultInjector* fault_ = nullptr;
  /// Watchdog progress counter; null = watchdog off.  Not owned.
  std::atomic<std::uint64_t>* progress_ = nullptr;
  /// Synchronization-event observer (runtime/sync_observer.hpp); null = off.
  /// Not owned.
  SyncObserver* obs_ = nullptr;
  std::vector<Padded<std::atomic<std::uint64_t>>> wait_state_;
  /// Mutex ownership for stall diagnosis (std::mutex does not expose its
  /// owner); written only while a watchdog is wired.
  std::vector<Padded<std::atomic<ThreadId>>> holders_;
  std::vector<std::unique_ptr<std::mutex>> mutexes_;
  std::vector<std::unique_ptr<BarrierState>> barriers_;
  std::vector<std::unique_ptr<CondVarState>> condvars_;
  struct ThreadSlot {
    std::uint64_t clock = 0;
    std::atomic<bool> finished{false};
    std::uint64_t acquires = 0;
    std::uint64_t barrier_waits = 0;
    std::uint64_t atomic_ops = 0;
    std::uint64_t clock_ops = 0;  // subsampling counter for watchdog progress
  };
  std::vector<Padded<ThreadSlot>> slots_;
  /// Serializes guest atomic ops so the observer's source-before-sink hook
  /// contract holds here too (the memory side effect and its hook happen as
  /// one unit).  The deterministic backend gets the same guarantee from turn
  /// serialization instead.
  std::mutex atomics_mu_;
  std::atomic<std::uint32_t> next_thread_id_{0};
};

}  // namespace detlock::runtime
