// Run trace: the determinism witness.
//
// Kendo's turn protocol serializes lock acquisitions globally (an acquire
// happens only while its thread holds the turn), so the *sequence* of
// acquisitions -- not just each mutex's own order -- is deterministic.  The
// trace folds every acquisition event into an order-sensitive FNV hash; two
// runs of a race-free program must produce identical fingerprints.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "runtime/config.hpp"
#include "support/hash.hpp"

namespace detlock::runtime {

struct TraceEvent {
  ThreadId thread = 0;
  MutexId mutex = 0;
  std::uint64_t clock = 0;  // acquiring thread's logical clock at acquire
};

class RunTrace {
 public:
  explicit RunTrace(bool keep_events = false) : keep_events_(keep_events) {}

  void record_acquire(ThreadId thread, MutexId mutex, std::uint64_t clock) {
    const std::lock_guard<std::mutex> guard(mu_);
    hasher_.update_u64(thread);
    hasher_.update_u64(mutex);
    hasher_.update_u64(clock);
    ++acquire_count_;
    if (keep_events_) events_.push_back(TraceEvent{thread, mutex, clock});
  }

  /// Folds one turn-serialized atomic operation (or fence) into the
  /// fingerprint.  The tag constant separates the event space from
  /// record_acquire's (thread, mutex, clock) triples so an atomic can never
  /// alias a lock acquisition; kind/addr/observed make the hash sensitive to
  /// both the schedule AND the value each atomic observed.
  void record_atomic(ThreadId thread, std::uint8_t kind, std::int64_t addr,
                     std::int64_t observed) {
    const std::lock_guard<std::mutex> guard(mu_);
    hasher_.update_u64(kAtomicEventTag);
    hasher_.update_u64(thread);
    hasher_.update_u64(kind);
    hasher_.update_u64(static_cast<std::uint64_t>(addr));
    hasher_.update_u64(static_cast<std::uint64_t>(observed));
    ++atomic_count_;
  }

  std::uint64_t fingerprint() const {
    const std::lock_guard<std::mutex> guard(mu_);
    return hasher_.digest();
  }

  std::uint64_t acquire_count() const {
    const std::lock_guard<std::mutex> guard(mu_);
    return acquire_count_;
  }

  std::uint64_t atomic_count() const {
    const std::lock_guard<std::mutex> guard(mu_);
    return atomic_count_;
  }

  /// Only populated when constructed with keep_events=true.
  std::vector<TraceEvent> events() const {
    const std::lock_guard<std::mutex> guard(mu_);
    return events_;
  }

 private:
  /// Domain separator for record_atomic events (arbitrary odd constant).
  static constexpr std::uint64_t kAtomicEventTag = 0xA70317C0FEED5EEDULL;

  mutable std::mutex mu_;
  Fnv1aHasher hasher_;
  std::uint64_t acquire_count_ = 0;
  std::uint64_t atomic_count_ = 0;
  bool keep_events_;
  std::vector<TraceEvent> events_;
};

}  // namespace detlock::runtime
