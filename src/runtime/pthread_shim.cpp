#include "runtime/pthread_shim.hpp"

#include <atomic>

#include "support/error.hpp"

namespace detlock::runtime::shim {

namespace {

// Process-wide runtime instance.  The shim mirrors pthreads' global-process
// model; library users who want multiple isolated runtimes use
// NativeRuntime directly.
std::unique_ptr<NativeRuntime> g_runtime;
std::atomic<std::uint64_t> g_next_mutex{0};
std::atomic<std::uint64_t> g_next_cond{0};
std::atomic<std::uint64_t> g_next_barrier{0};

NativeRuntime& runtime() {
  DETLOCK_CHECK(g_runtime != nullptr, "det_runtime_start() has not been called");
  return *g_runtime;
}

}  // namespace

void det_runtime_start(RuntimeConfig config) {
  g_runtime = std::make_unique<NativeRuntime>(config);
  g_next_mutex.store(0);
  g_next_cond.store(0);
  g_next_barrier.store(0);
  g_runtime->attach_main();
}

void det_runtime_stop() {
  runtime().detach_main();
  g_runtime.reset();
}

void det_tick(std::uint64_t instructions) { runtime().tick(instructions); }

std::uint64_t det_runtime_fingerprint() { return runtime().trace_fingerprint(); }

int det_pthread_mutex_init(det_pthread_mutex_t* mutex, const void* /*attr*/) {
  mutex->id = g_next_mutex.fetch_add(1, std::memory_order_relaxed);
  return 0;
}

int det_pthread_mutex_lock(det_pthread_mutex_t* mutex) {
  runtime().mutex_lock(mutex->id);
  return 0;
}

int det_pthread_mutex_unlock(det_pthread_mutex_t* mutex) {
  runtime().mutex_unlock(mutex->id);
  return 0;
}

int det_pthread_mutex_destroy(det_pthread_mutex_t* /*mutex*/) { return 0; }

int det_pthread_cond_init(det_pthread_cond_t* cond, const void* /*attr*/) {
  cond->id = g_next_cond.fetch_add(1, std::memory_order_relaxed);
  return 0;
}

int det_pthread_cond_wait(det_pthread_cond_t* cond, det_pthread_mutex_t* mutex) {
  runtime().cond_wait(cond->id, mutex->id);
  return 0;
}

int det_pthread_cond_signal(det_pthread_cond_t* cond) {
  runtime().cond_signal(cond->id);
  return 0;
}

int det_pthread_cond_broadcast(det_pthread_cond_t* cond) {
  runtime().cond_broadcast(cond->id);
  return 0;
}

int det_pthread_cond_destroy(det_pthread_cond_t* /*cond*/) { return 0; }

int det_pthread_barrier_init(det_pthread_barrier_t* barrier, const void* /*attr*/,
                             std::uint32_t participants) {
  barrier->id = g_next_barrier.fetch_add(1, std::memory_order_relaxed);
  barrier->participants = participants;
  return 0;
}

int det_pthread_barrier_wait(det_pthread_barrier_t* barrier) {
  runtime().barrier_wait(barrier->id, barrier->participants);
  return 0;
}

int det_pthread_barrier_destroy(det_pthread_barrier_t* /*barrier*/) { return 0; }

int det_pthread_create(det_pthread_t* thread, const void* /*attr*/, void* (*start_routine)(void*),
                       void* arg) {
  thread->id = runtime().peek_next_id();
  thread->os_thread =
      std::make_shared<std::thread>(runtime().thread_create([start_routine, arg] { (void)start_routine(arg); }));
  return 0;
}

int det_pthread_join(det_pthread_t thread, void** retval) {
  if (retval != nullptr) *retval = nullptr;  // return values are not plumbed
  runtime().thread_join(*thread.os_thread, thread.id);
  return 0;
}

}  // namespace detlock::runtime::shim
