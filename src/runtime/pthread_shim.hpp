// pthread-compatible shim (paper Sec. III-B).
//
// "We provide our own functions for locks, barriers and thread creation for
// deterministic execution.  They internally use the pthread library.
// However, it is not necessary for the programmer to modify the code to use
// them.  A header file is provided by us that replaces the definition of
// these functions with ours."
//
// This header is that surface: pthreads-shaped types and functions
// (det_pthread_*) over the deterministic runtime.  A program written against
// the pthread mutex/cond/barrier/thread subset ports by including this
// header and prefixing calls with det_ (or by `#define DETLOCK_SHIM_PTHREAD_NAMES`
// before inclusion, which remaps the plain pthread_* names via macros --
// usable only in translation units that do not also include <pthread.h>).
//
// Differences from POSIX, all inherited from the deterministic model:
//  * a process-wide runtime must be started first (det_runtime_start) and
//    every thread carries compiler-style clock updates via det_tick();
//  * mutexes/condvars/barriers are ids into preallocated pools -- the
//    *_init functions allocate ids rather than initializing caller memory;
//  * det_pthread_join takes the det_pthread_t handle (which carries the
//    deterministic thread id).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "runtime/native_api.hpp"

namespace detlock::runtime::shim {

struct det_pthread_mutex_t {
  MutexId id = 0;
};
struct det_pthread_cond_t {
  CondVarId id = 0;
};
struct det_pthread_barrier_t {
  BarrierId id = 0;
  std::uint32_t participants = 0;
};
struct det_pthread_t {
  ThreadId id = 0;
  std::shared_ptr<std::thread> os_thread;
};

/// Starts (or restarts) the process-wide deterministic runtime and attaches
/// the calling thread as the main thread.
void det_runtime_start(RuntimeConfig config = {});

/// Detaches the main thread; call when the deterministic section ends.
void det_runtime_stop();

/// The clock updates the DetLock compiler pass would insert; call with the
/// approximate instruction count of the work ahead.
void det_tick(std::uint64_t instructions);

/// Lock-order fingerprint of the current runtime (determinism witness).
std::uint64_t det_runtime_fingerprint();

int det_pthread_mutex_init(det_pthread_mutex_t* mutex, const void* attr_ignored);
int det_pthread_mutex_lock(det_pthread_mutex_t* mutex);
int det_pthread_mutex_unlock(det_pthread_mutex_t* mutex);
int det_pthread_mutex_destroy(det_pthread_mutex_t* mutex);

int det_pthread_cond_init(det_pthread_cond_t* cond, const void* attr_ignored);
int det_pthread_cond_wait(det_pthread_cond_t* cond, det_pthread_mutex_t* mutex);
int det_pthread_cond_signal(det_pthread_cond_t* cond);
int det_pthread_cond_broadcast(det_pthread_cond_t* cond);
int det_pthread_cond_destroy(det_pthread_cond_t* cond);

int det_pthread_barrier_init(det_pthread_barrier_t* barrier, const void* attr_ignored,
                             std::uint32_t participants);
int det_pthread_barrier_wait(det_pthread_barrier_t* barrier);
int det_pthread_barrier_destroy(det_pthread_barrier_t* barrier);

/// start_routine/arg follow pthread_create's shape.
int det_pthread_create(det_pthread_t* thread, const void* attr_ignored, void* (*start_routine)(void*),
                       void* arg);
int det_pthread_join(det_pthread_t thread, void** retval);

}  // namespace detlock::runtime::shim

#ifdef DETLOCK_SHIM_PTHREAD_NAMES
#define pthread_mutex_t ::detlock::runtime::shim::det_pthread_mutex_t
#define pthread_mutex_init ::detlock::runtime::shim::det_pthread_mutex_init
#define pthread_mutex_lock ::detlock::runtime::shim::det_pthread_mutex_lock
#define pthread_mutex_unlock ::detlock::runtime::shim::det_pthread_mutex_unlock
#define pthread_mutex_destroy ::detlock::runtime::shim::det_pthread_mutex_destroy
#define pthread_cond_t ::detlock::runtime::shim::det_pthread_cond_t
#define pthread_cond_init ::detlock::runtime::shim::det_pthread_cond_init
#define pthread_cond_wait ::detlock::runtime::shim::det_pthread_cond_wait
#define pthread_cond_signal ::detlock::runtime::shim::det_pthread_cond_signal
#define pthread_cond_broadcast ::detlock::runtime::shim::det_pthread_cond_broadcast
#define pthread_cond_destroy ::detlock::runtime::shim::det_pthread_cond_destroy
#define pthread_barrier_t ::detlock::runtime::shim::det_pthread_barrier_t
#define pthread_barrier_init ::detlock::runtime::shim::det_pthread_barrier_init
#define pthread_barrier_wait ::detlock::runtime::shim::det_pthread_barrier_wait
#define pthread_barrier_destroy ::detlock::runtime::shim::det_pthread_barrier_destroy
#define pthread_t ::detlock::runtime::shim::det_pthread_t
#define pthread_create ::detlock::runtime::shim::det_pthread_create
#define pthread_join ::detlock::runtime::shim::det_pthread_join
#endif
