// Microbenchmarks of the deterministic runtime primitives (google-benchmark).
//
// Not a paper artifact: quantifies the building blocks -- uncontended
// det-mutex acquire cost vs std::mutex, clock publication cost per policy,
// turn-check cost vs thread count, allocator throughput.
#include <benchmark/benchmark.h>

#include <mutex>

#include "runtime/det_allocator.hpp"
#include "runtime/det_backend.hpp"

namespace {
using namespace detlock::runtime;

void BM_StdMutexUncontended(benchmark::State& state) {
  std::mutex m;
  for (auto _ : state) {
    m.lock();
    m.unlock();
  }
}
BENCHMARK(BM_StdMutexUncontended);

void BM_DetMutexUncontendedSingleThread(benchmark::State& state) {
  RuntimeConfig config;
  config.record_trace = false;
  DetBackend backend(config);
  const ThreadId t = backend.register_main_thread();
  backend.clock_add(t, 1);
  for (auto _ : state) {
    backend.lock(t, 0);
    backend.unlock(t, 0);
  }
}
BENCHMARK(BM_DetMutexUncontendedSingleThread);

void BM_ClockAddEveryUpdate(benchmark::State& state) {
  RuntimeConfig config;
  DetBackend backend(config);
  const ThreadId t = backend.register_main_thread();
  for (auto _ : state) backend.clock_add(t, 3);
}
BENCHMARK(BM_ClockAddEveryUpdate);

void BM_ClockAddChunked(benchmark::State& state) {
  RuntimeConfig config;
  config.publication = ClockPublication::kChunked;
  config.chunk_size = static_cast<std::uint64_t>(state.range(0));
  DetBackend backend(config);
  const ThreadId t = backend.register_main_thread();
  for (auto _ : state) backend.clock_add(t, 3);
}
BENCHMARK(BM_ClockAddChunked)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HasTurnScan(benchmark::State& state) {
  // Turn-check cost grows with registered thread count (the wait-for-turn
  // loop scans every slot).
  RuntimeConfig config;
  config.max_threads = static_cast<std::uint32_t>(state.range(0));
  ClockTable clocks(config);
  clocks.activate(0, 1);
  for (std::uint32_t t = 1; t < config.max_threads; ++t) clocks.activate(t, 100 + t);
  for (auto _ : state) benchmark::DoNotOptimize(clocks.has_turn(0));
}
BENCHMARK(BM_HasTurnScan)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

void BM_DetAllocatorAllocFree(benchmark::State& state) {
  RuntimeConfig config;
  config.record_trace = false;
  DetBackend backend(config);
  const ThreadId t = backend.register_main_thread();
  backend.clock_add(t, 1);
  DetAllocator alloc(backend, 4095, 16, 1 << 20);
  for (auto _ : state) {
    const std::int64_t a = alloc.allocate(t, 32);
    alloc.deallocate(t, a);
  }
}
BENCHMARK(BM_DetAllocatorAllocFree);

void BM_TraceRecord(benchmark::State& state) {
  RunTrace trace;
  std::uint64_t i = 0;
  for (auto _ : state) {
    ++i;
    trace.record_acquire(0, i & 7, i);
  }
  benchmark::DoNotOptimize(trace.fingerprint());
}
BENCHMARK(BM_TraceRecord);

}  // namespace

BENCHMARK_MAIN();
