// Microbenchmarks of the DetLock pass pipeline (google-benchmark): per-
// optimization running time and clock-site reduction on each workload's
// module, plus analysis primitives (dominators, path DP).
#include <benchmark/benchmark.h>

#include "analysis/dominators.hpp"
#include "analysis/paths.hpp"
#include "pass/pipeline.hpp"
#include "workloads/workloads.hpp"

namespace {
using namespace detlock;

const workloads::Workload& workload_instance(std::size_t index) {
  static std::vector<workloads::Workload> cache = [] {
    std::vector<workloads::Workload> all;
    workloads::WorkloadParams params;
    for (const auto& spec : workloads::all_workloads()) all.push_back(spec.factory(params));
    return all;
  }();
  return cache[index];
}

void BM_InstrumentModule(benchmark::State& state) {
  const std::size_t index = static_cast<std::size_t>(state.range(0));
  const bool optimize = state.range(1) != 0;
  std::size_t sites = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ir::Module m = workload_instance(index).module;  // copy
    state.ResumeTiming();
    const pass::PipelineStats stats =
        pass::instrument_module(m, optimize ? pass::PassOptions::all() : pass::PassOptions::none());
    sites = stats.clock_sites_final;
    benchmark::DoNotOptimize(m);
  }
  state.counters["clock_sites"] = static_cast<double>(sites);
  state.SetLabel(workloads::all_workloads()[index].name + std::string(optimize ? "/all" : "/none"));
}
BENCHMARK(BM_InstrumentModule)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_DominatorTree(benchmark::State& state) {
  const ir::Module& m = workload_instance(static_cast<std::size_t>(state.range(0))).module;
  // Largest function in the module.
  const ir::Function* largest = &m.functions()[0];
  for (const ir::Function& f : m.functions()) {
    if (f.num_blocks() > largest->num_blocks()) largest = &f;
  }
  for (auto _ : state) {
    analysis::Cfg cfg(*largest);
    analysis::DominatorTree dom(cfg);
    benchmark::DoNotOptimize(dom.idom(0));
  }
  state.counters["blocks"] = static_cast<double>(largest->num_blocks());
}
BENCHMARK(BM_DominatorTree)->Arg(0)->Arg(1)->Arg(3)->Unit(benchmark::kMicrosecond);

void BM_PathStatsDp(benchmark::State& state) {
  // Sequential-diamond chain with 2^N paths: the DP must stay linear.
  const int diamonds = static_cast<int>(state.range(0));
  ir::Module m;
  ir::FunctionBuilder b(m, "f", 1);
  for (int i = 0; i < diamonds; ++i) {
    const ir::BlockId t = b.make_block("t" + std::to_string(i));
    const ir::BlockId e = b.make_block("e" + std::to_string(i));
    const ir::BlockId mg = b.make_block("m" + std::to_string(i));
    b.condbr(b.param(0), t, e);
    b.set_insert_point(t);
    b.br(mg);
    b.set_insert_point(e);
    b.br(mg);
    b.set_insert_point(mg);
  }
  b.ret();
  const analysis::Cfg cfg(m.functions()[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::function_path_stats(cfg, [](ir::BlockId blk) {
      return static_cast<std::int64_t>(blk % 7) + 1;
    }));
  }
}
BENCHMARK(BM_PathStatsDp)->Arg(10)->Arg(100)->Arg(1000)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
