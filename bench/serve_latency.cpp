// detserved serving latency under queue saturation: p50/p99 job latency
// (submit -> result frame) and the admission rejection rate at 1x/2x/4x of
// the server's nominal concurrency (workers + queue capacity).
//
// The server runs in-process (same Server class detserved wraps); clients
// are real TCP connections driven by threads, each submitting fast
// contended-lock jobs one at a time and honoring RETRY_AFTER bounces.  The
// claim measured: under overload the server sheds load with structured
// retry hints instead of queueing unboundedly, so the latency of the jobs
// it does accept stays flat while the rejection rate absorbs the excess.
//
// Modes:
//   (default)            print the three bands
//   --compare            gate mode for CI: nonzero exit when any job fails,
//                        when the 4x band saw no rejections (back-pressure
//                        not engaging), or when accepted-job p99 degrades
//                        by more than --max-p99-ratio from 1x to 4x.
//   --json=FILE          machine-readable results (BENCH_serve.json)
//   --clients=N          client threads at 1x saturation        [6]
//   --jobs-per-client=J  jobs each client completes             [8]
//   --max-p99-ratio=R    gate threshold for p99(4x)/p99(1x)     [25.0]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "cli_common.hpp"
#include "service/server.hpp"
#include "support/json.hpp"

namespace {

using namespace detlock;

const char* kContendedProgram = R"(
func @worker(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 20
  br loop
block loop:
  %3 = icmp lt %1, %2
  condbr %3, body, done
block body:
  %4 = const 0
  lock %4
  %5 = const 100
  %6 = load %5
  %7 = add %6, %0
  store %5, %7
  unlock %4
  %8 = const 1
  %1 = add %1, %8
  br loop
block done:
  ret
}
func @main(0) regs=16 {
block entry:
  %0 = const 1
  %1 = spawn @worker(%0)
  %2 = const 2
  %3 = spawn @worker(%2)
  %4 = const 3
  %5 = call @worker(%4)
  join %1
  join %3
  %6 = const 100
  %7 = load %6
  ret %7
}
)";

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch()).count();
}

/// Blocking line-framed TCP client (the python smoke client, in C++).
class BenchClient {
 public:
  explicit BenchClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  bool send_all(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// One frame, or "" on error.
  std::string read_frame() {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        const std::string frame = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return frame;
      }
      char tmp[4096];
      const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
      if (n <= 0) return "";
      buf_.append(tmp, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

bool frame_is(const std::string& frame, const char* type) {
  return frame.find(std::string("\"type\": \"") + type + "\"") != std::string::npos;
}

struct Band {
  int saturation = 0;       ///< multiple of nominal concurrency
  std::size_t clients = 0;
  std::size_t jobs = 0;     ///< accepted-and-resolved jobs
  std::size_t failed = 0;   ///< jobs that did not come back "ok"
  std::uint64_t rejections = 0;
  double rejection_rate = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted.size() - 1, static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

Band run_band(int saturation, std::size_t clients, std::size_t jobs_per_client) {
  service::ServerOptions options;
  options.listen = "tcp:127.0.0.1:0";
  options.workers = 2;
  options.queue_capacity = 4;
  options.admission.total_backlog_cap = 8;
  options.deadline_ms = 30'000;
  service::Server server(options);
  server.start();

  std::atomic<std::uint64_t> rejections{0};
  std::atomic<std::size_t> failed{0};
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const std::string body = kContendedProgram;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      BenchClient client(server.port());
      if (!client.ok()) {
        failed += jobs_per_client;
        return;
      }
      for (std::size_t j = 0; j < jobs_per_client; ++j) {
        const std::string header =
            "JOB j" + std::to_string(c) + "_" + std::to_string(j) + " " +
            std::to_string(body.size()) + "\n";
        const double start = now_seconds();
        bool accepted = false;
        for (int attempt = 0; attempt < 10'000 && !accepted; ++attempt) {
          if (!client.send_all(header + body)) {
            ++failed;
            return;
          }
          const std::string frame = client.read_frame();
          if (frame_is(frame, "accepted")) {
            accepted = true;
          } else if (frame_is(frame, "retry_after")) {
            ++rejections;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          } else {
            ++failed;
            return;
          }
        }
        const std::string result = client.read_frame();
        if (!frame_is(result, "result") ||
            result.find("\"status\": \"ok\"") == std::string::npos) {
          ++failed;
          continue;
        }
        latencies[c].push_back((now_seconds() - start) * 1e3);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  server.request_drain();
  if (server.run_until_drained() != 0) {
    std::fprintf(stderr, "serve_latency: unclean drain at %dx\n", saturation);
    std::exit(1);
  }

  std::vector<double> all;
  for (const std::vector<double>& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());

  Band band;
  band.saturation = saturation;
  band.clients = clients;
  band.jobs = all.size();
  band.failed = failed.load();
  band.rejections = rejections.load();
  const double attempts = static_cast<double>(all.size()) + static_cast<double>(band.rejections);
  band.rejection_rate = attempts > 0 ? static_cast<double>(band.rejections) / attempts : 0.0;
  band.p50_ms = percentile(all, 0.50);
  band.p99_ms = percentile(all, 0.99);
  return band;
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [argv] {
    std::fprintf(stderr,
                 "usage: %s [--compare] [--json=FILE] [--clients=N] [--jobs-per-client=J]\n"
                 "          [--max-p99-ratio=R]\n",
                 argv[0]);
    std::exit(detlock::cli::kUsageExit);
  };
  bool compare = false;
  std::string json_path;
  std::size_t clients = 6;  // nominal concurrency: workers(2) + queue(4)
  std::size_t jobs_per_client = 8;
  double max_p99_ratio = 25.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--compare") compare = true;
    else if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    else if (arg.rfind("--clients=", 0) == 0)
      clients = static_cast<std::size_t>(detlock::cli::parse_int_flag(
          "serve_latency", "--clients", arg.substr(10), 1, 256, usage));
    else if (arg.rfind("--jobs-per-client=", 0) == 0)
      jobs_per_client = static_cast<std::size_t>(detlock::cli::parse_int_flag(
          "serve_latency", "--jobs-per-client", arg.substr(18), 1, 10'000, usage));
    else if (arg.rfind("--max-p99-ratio=", 0) == 0)
      max_p99_ratio = detlock::cli::parse_double_flag(
          "serve_latency", "--max-p99-ratio", arg.substr(16), 1.0, 1e6, usage);
    else usage();
  }

  std::vector<Band> bands;
  for (const int saturation : {1, 2, 4}) {
    bands.push_back(run_band(saturation, clients * static_cast<std::size_t>(saturation),
                             jobs_per_client));
  }

  std::printf("serve_latency: workers=2 queue=4 total-backlog=8, %zu jobs/client\n",
              jobs_per_client);
  std::printf("%-6s %-8s %-8s %-10s %-10s %-12s %s\n", "load", "clients", "jobs", "p50(ms)",
              "p99(ms)", "rejections", "rej-rate");
  for (const Band& band : bands) {
    std::printf("%-6s %-8zu %-8zu %-10.2f %-10.2f %-12llu %.3f\n",
                (std::to_string(band.saturation) + "x").c_str(), band.clients, band.jobs,
                band.p50_ms, band.p99_ms,
                static_cast<unsigned long long>(band.rejections), band.rejection_rate);
  }

  bool gate_pass = true;
  std::string gate_reason;
  std::size_t total_failed = 0;
  for (const Band& band : bands) total_failed += band.failed;
  if (total_failed > 0) {
    gate_pass = false;
    gate_reason = "jobs failed: " + std::to_string(total_failed);
  } else if (bands.back().rejections == 0) {
    gate_pass = false;
    gate_reason = "no rejections at 4x: back-pressure not engaging";
  } else if (bands.front().p99_ms > 0.0 &&
             bands.back().p99_ms / bands.front().p99_ms > max_p99_ratio) {
    gate_pass = false;
    gate_reason = "accepted-job p99 degraded beyond --max-p99-ratio under overload";
  }

  if (!json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.field("schema_version", std::uint64_t{1});
    json.field("bench", "serve_latency");
    json.field("jobs_per_client", static_cast<std::uint64_t>(jobs_per_client));
    json.key("bands");
    json.begin_array();
    for (const Band& band : bands) {
      json.begin_object();
      json.field("saturation", static_cast<std::uint64_t>(band.saturation));
      json.field("clients", static_cast<std::uint64_t>(band.clients));
      json.field("jobs", static_cast<std::uint64_t>(band.jobs));
      json.field("p50_ms", band.p50_ms);
      json.field("p99_ms", band.p99_ms);
      json.field("rejections", band.rejections);
      json.field("rejection_rate", band.rejection_rate);
      json.end();
    }
    json.end();
    json.field("gate", gate_pass ? "pass" : gate_reason);
    json.end();
    std::ofstream out(json_path);
    out << json.str();
  }

  if (compare && !gate_pass) {
    std::fprintf(stderr, "serve_latency: GATE FAILED: %s\n", gate_reason.c_str());
    return 1;
  }
  return 0;
}
