// Table II: "Performance results of our scheme as compared to Kendo".
//
// The paper compares DetLock's deterministic-execution overhead against the
// numbers published in the Kendo paper (Kendo itself is closed source).
// This harness runs both runtimes on the same workloads:
//   * DetLock  -- every-update publication, start-of-block placement, all
//                 optimizations (the paper's "our scheme" configuration);
//   * Kendo-sim -- chunk-published clocks + end-of-block updates, modelling
//                 a deterministic retired-instruction counter read at
//                 overflow interrupts.  Like the real Kendo, its chunk size
//                 is a tuning knob; the harness sweeps a few values and
//                 reports the best ("the authors of Kendo had to manually
//                 adjust the chunk size to get the best performance").
// The paper's quoted Kendo/DetLock overheads are printed alongside for
// reference.
//
// Usage: table2_kendo [scale] [threads] [reps]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "support/strings.hpp"
#include "support/table.hpp"
#include "cli_common.hpp"
#include "workloads/harness.hpp"

namespace {
using namespace detlock;

// Table II rows quoted from the paper, in all_workloads() order.
constexpr double kPaperKendoOverhead[] = {1, 18, 7, 53, 7};
constexpr double kPaperDetLockOverhead[] = {0, 11, 21, 38, 4};
}  // namespace

int main(int argc, char** argv) {
  workloads::WorkloadParams params;
  params.scale = static_cast<std::uint32_t>(
      cli::parse_positional("table2_kendo", "scale", argc, argv, 1, 8, 1, 1000000, "[scale] [threads] [reps]"));
  params.threads = static_cast<std::uint32_t>(
      cli::parse_positional("table2_kendo", "threads", argc, argv, 2, 4, 1, 64, "[scale] [threads] [reps]"));
  const int reps = static_cast<int>(
      cli::parse_positional("table2_kendo", "reps", argc, argv, 3, 3, 1, 10000, "[scale] [threads] [reps]"));

  const auto& specs = workloads::all_workloads();
  const std::vector<std::uint64_t> chunk_sweep = {256, 1024, 4096};

  TextTable table;
  std::vector<std::string> header{"Benchmark"};
  for (const auto& spec : specs) header.push_back(spec.name);
  table.add_row(header);
  table.add_rule();

  std::vector<std::string> locks_row{"Locks/sec"};
  std::vector<std::string> kendo_row{"Kendo-sim overhead (best chunk)"};
  std::vector<std::string> detlock_row{"DetLock overhead"};
  std::vector<std::string> chunk_row{"Kendo-sim best chunk size"};
  std::vector<std::string> paper_kendo_row{"Paper: Kendo overhead"};
  std::vector<std::string> paper_detlock_row{"Paper: DetLock overhead"};

  for (std::size_t s = 0; s < specs.size(); ++s) {
    workloads::MeasureOptions base;
    base.mode = workloads::Mode::kBaseline;
    base.repetitions = reps;
    const workloads::Measurement mb = workloads::measure(specs[s], params, base);
    locks_row.push_back(str_format("%.0f", mb.locks_per_sec));

    workloads::MeasureOptions det;
    det.mode = workloads::Mode::kDetLock;
    det.pass_options = pass::PassOptions::all();
    det.repetitions = reps;
    const workloads::Measurement md = workloads::measure(specs[s], params, det);
    detlock_row.push_back(str_format("%+.0f%%", (md.seconds / mb.seconds - 1.0) * 100.0));

    double best_kendo = -1.0;
    std::uint64_t best_chunk = 0;
    for (const std::uint64_t chunk : chunk_sweep) {
      workloads::MeasureOptions kendo;
      kendo.mode = workloads::Mode::kKendoSim;
      kendo.pass_options = pass::PassOptions::all();
      kendo.kendo_chunk_size = chunk;
      kendo.repetitions = reps;
      const workloads::Measurement mk = workloads::measure(specs[s], params, kendo);
      std::fprintf(stderr, "[table2] %s kendo chunk=%llu %.3fs (detlock %.3fs, base %.3fs)\n",
                   specs[s].name, static_cast<unsigned long long>(chunk), mk.seconds, md.seconds,
                   mb.seconds);
      if (best_kendo < 0.0 || mk.seconds < best_kendo) {
        best_kendo = mk.seconds;
        best_chunk = chunk;
      }
    }
    kendo_row.push_back(str_format("%+.0f%%", (best_kendo / mb.seconds - 1.0) * 100.0));
    chunk_row.push_back(std::to_string(best_chunk));
    paper_kendo_row.push_back(str_format("%.0f%%", kPaperKendoOverhead[s]));
    paper_detlock_row.push_back(str_format("%.0f%%", kPaperDetLockOverhead[s]));
  }

  table.add_row(std::move(locks_row));
  table.add_section("Results for Kendo-sim (chunked clocks, end-of-block updates)");
  table.add_row(std::move(kendo_row));
  table.add_row(std::move(chunk_row));
  table.add_section("Results for our scheme (DetLock: eager clocks, ahead-of-time updates)");
  table.add_row(std::move(detlock_row));
  table.add_section("Paper-reported overheads (quoted, 2.66 GHz quad core)");
  table.add_row(std::move(paper_kendo_row));
  table.add_row(std::move(paper_detlock_row));

  std::printf("Table II -- DetLock vs Kendo-style runtime (scale=%u, threads=%u, reps=%d)\n\n", params.scale,
              params.threads, reps);
  std::printf("%s", table.to_string().c_str());
  std::printf("\nExpected shape (paper Sec. V-C): DetLock beats Kendo-sim most clearly on the\n"
              "lock-heavy Radiosity (eager + ahead-of-time clock publication shortens lock\n"
              "waits), roughly ties on moderate-lock-rate benchmarks, and both are free on\n"
              "Ocean.  Absolute values are amplified by single-core thread emulation.\n");
  return 0;
}
