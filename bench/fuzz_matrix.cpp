// Differential fuzzer throughput: how much coverage a CI minute buys.
//
// Band A -- generation: programs/sec through fuzz::generate alone (the
// seed-expansion cost an engineer pays per `detfuzz --seed=N` reproduction
// is this plus exactly one matrix).
//
// Band B -- the differential matrix: seeds/sec and engine-runs/sec through
// fuzz::check_seed over a fixed seed range -- every seed is 3 engines x 2
// publication modes x (1 + chaos) schedules, so this band is the honest
// price of the detfuzz_gate_64 ctest row and the CI smoke.  Every checked
// seed must also PASS: a divergence fails the bench regardless of mode,
// because a throughput number over broken runs measures nothing.
//
// Modes:
//   (default)      print both bands
//   --compare      gate mode for CI: nonzero exit when any checked seed
//                  diverges.  Machine-readable JSON via --json=FILE
//                  (BENCH_fuzz.json).
//   --gen-seeds=N  band A seed count                  [2048]
//   --seeds=N      band B seed count                  [16]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "fuzz/differ.hpp"
#include "fuzz/generator.hpp"
#include "support/json.hpp"

namespace {

using namespace detlock;

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch()).count();
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [argv] {
    std::fprintf(stderr, "usage: %s [--compare] [--json=FILE] [--gen-seeds=N] [--seeds=N]\n",
                 argv[0]);
    std::exit(cli::kUsageExit);
  };
  bool compare = false;
  std::string json_path;
  int gen_seeds = 2048;
  int seeds = 16;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--compare") compare = true;
    else if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    else if (arg.rfind("--gen-seeds=", 0) == 0)
      gen_seeds = static_cast<int>(cli::parse_int_flag("fuzz_matrix", "--gen-seeds",
                                                       arg.substr(12), 1, 1 << 24, usage));
    else if (arg.rfind("--seeds=", 0) == 0)
      seeds = static_cast<int>(cli::parse_int_flag("fuzz_matrix", "--seeds",
                                                   arg.substr(8), 1, 1 << 20, usage));
    else usage();
  }
  (void)compare;  // the seed-pass gate below applies in both modes

  // Band A: pure generation.  Consume a byte of each program so the
  // expansion cannot be optimized away.
  std::uint64_t sink = 0;
  const double gen_start = now_seconds();
  for (int s = 0; s < gen_seeds; ++s) {
    const fuzz::GeneratedProgram p = fuzz::generate(static_cast<std::uint64_t>(s));
    sink += p.ir_text.size() + static_cast<std::uint64_t>(p.actions);
  }
  const double gen_seconds = now_seconds() - gen_start;
  const double gen_per_s = gen_seeds / gen_seconds;
  std::printf("band A: generation (%d seeds, %llu bytes of IR)\n", gen_seeds,
              static_cast<unsigned long long>(sink));
  std::printf("  %10.0f programs/s\n\n", gen_per_s);

  // Band B: the full differential matrix, default DiffOptions -- identical
  // to one detfuzz fleet seed.
  const fuzz::DiffOptions options;
  int failed = 0, total_runs = 0;
  const double check_start = now_seconds();
  for (int s = 0; s < seeds; ++s) {
    const fuzz::SeedReport report = fuzz::check_seed(static_cast<std::uint64_t>(s), options);
    total_runs += report.runs_executed;
    if (!report.ok) {
      ++failed;
      std::fprintf(stderr, "fuzz_matrix: FAIL %s\n", report.failure.c_str());
    }
  }
  const double check_seconds = now_seconds() - check_start;
  const double seeds_per_s = seeds / check_seconds;
  const double runs_per_s = total_runs / check_seconds;
  std::printf("band B: differential matrix (%d seeds, %d engine runs)\n", seeds, total_runs);
  std::printf("  %10.2f seeds/s\n", seeds_per_s);
  std::printf("  %10.1f runs/s\n", runs_per_s);
  std::printf("  gate: %d/%d seeds deterministic\n", seeds - failed, seeds);

  const bool gate_ok = failed == 0;
  if (!json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.field("schema_version", kReportSchemaVersion);
    w.field("bench", "fuzz_matrix");
    w.key("generation");
    w.begin_object();
    w.field("seeds", gen_seeds);
    w.field("programs_per_s", gen_per_s);
    w.end();
    w.key("matrix");
    w.begin_object();
    w.field("seeds", seeds);
    w.field("engine_runs", total_runs);
    w.field("seeds_per_s", seeds_per_s);
    w.field("runs_per_s", runs_per_s);
    w.field("seeds_failed", failed);
    w.end();
    w.field("gate", gate_ok ? "pass" : "fail");
    w.end();
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "fuzz_matrix: cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << w.str() << "\n";
  }
  return gate_ok ? 0 : 1;
}
