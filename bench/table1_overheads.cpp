// Table I: "Performance results of our scheme for the selected benchmarks".
//
// Reproduces both bands of the paper's Table I:
//   * After Inserting Clocks                  (clock-update overhead only)
//   * After Inserting Clocks and Performing Deterministic Execution
// for each benchmark x {no-opt, O1, O2, O3, O4, all}, plus the header rows
// (original exec time, locks/sec, clockable functions).
//
// Usage: table1_overheads [scale] [threads] [repetitions]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "runtime/profile.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "cli_common.hpp"
#include "workloads/harness.hpp"

namespace {

using namespace detlock;

struct OptRow {
  const char* label;
  pass::PassOptions options;
};

std::vector<OptRow> opt_rows() {
  return {
      {"With No Optimization", pass::PassOptions::none()},
      {"With Function Clocking Only (O1)", pass::PassOptions::only_opt1()},
      {"With Conditional Blocks Optimization Only (O2)", pass::PassOptions::only_opt2()},
      {"With Averaging of Clocks Only (O3)", pass::PassOptions::only_opt3()},
      {"With Loops Optimization Only (O4)", pass::PassOptions::only_opt4()},
      {"With All Optimizations", pass::PassOptions::all()},
  };
}

std::string cell(double seconds, double baseline) {
  const double overhead = baseline > 0.0 ? (seconds / baseline - 1.0) * 100.0 : 0.0;
  return str_format("%.0fms (%+.0f%%)", seconds * 1e3, overhead);
}

}  // namespace

int main(int argc, char** argv) {
  workloads::WorkloadParams params;
  params.scale = static_cast<std::uint32_t>(
      cli::parse_positional("table1_overheads", "scale", argc, argv, 1, 8, 1, 1000000, "[scale] [threads] [repetitions]"));
  params.threads = static_cast<std::uint32_t>(
      cli::parse_positional("table1_overheads", "threads", argc, argv, 2, 4, 1, 64, "[scale] [threads] [repetitions]"));
  const int reps = static_cast<int>(
      cli::parse_positional("table1_overheads", "reps", argc, argv, 3, 3, 1, 10000, "[scale] [threads] [repetitions]"));

  const auto& specs = workloads::all_workloads();
  const auto rows = opt_rows();

  // Header band: baseline time, lock rate, clockable functions.
  std::vector<double> baseline_sec(specs.size());
  std::vector<double> locks_per_sec(specs.size());
  std::vector<std::size_t> clockable(specs.size());

  // Measure everything first.
  std::vector<std::vector<double>> clocks_sec(rows.size(), std::vector<double>(specs.size()));
  std::vector<std::vector<double>> det_sec(rows.size(), std::vector<double>(specs.size()));

  for (std::size_t s = 0; s < specs.size(); ++s) {
    workloads::MeasureOptions base;
    base.mode = workloads::Mode::kBaseline;
    base.repetitions = reps;
    const workloads::Measurement mb = workloads::measure(specs[s], params, base);
    baseline_sec[s] = mb.seconds;
    locks_per_sec[s] = mb.locks_per_sec;
    std::fprintf(stderr, "[table1] %s baseline %.3fs (%llu instrs)\n", specs[s].name, mb.seconds,
                 static_cast<unsigned long long>(mb.run.instructions));

    for (std::size_t r = 0; r < rows.size(); ++r) {
      workloads::MeasureOptions mo;
      mo.mode = workloads::Mode::kClocksOnly;
      mo.pass_options = rows[r].options;
      mo.repetitions = reps;
      const workloads::Measurement mc = workloads::measure(specs[s], params, mo);
      clocks_sec[r][s] = mc.seconds;
      if (r == rows.size() - 1) clockable[s] = mc.pass_stats.clocked_functions;

      mo.mode = workloads::Mode::kDetLock;
      const workloads::Measurement md = workloads::measure(specs[s], params, mo);
      det_sec[r][s] = md.seconds;
      std::fprintf(stderr, "[table1] %s %-46s clocks %.3fs det %.3fs\n", specs[s].name, rows[r].label,
                   mc.seconds, md.seconds);
    }
  }

  TextTable table;
  std::vector<std::string> header{"Benchmark"};
  for (const auto& spec : specs) header.push_back(spec.name);
  header.push_back("Average");
  table.add_row(header);
  table.add_rule();

  {
    std::vector<std::string> row{"Original Exec Time (ms)"};
    for (double s : baseline_sec) row.push_back(str_format("%.0f", s * 1e3));
    row.push_back("-");
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"Locks/sec"};
    for (double l : locks_per_sec) row.push_back(str_format("%.0f", l));
    row.push_back("-");
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"Clockable Functions"};
    for (std::size_t c : clockable) row.push_back(std::to_string(c));
    row.push_back("-");
    table.add_row(std::move(row));
  }

  auto emit_band = [&](const char* title, const std::vector<std::vector<double>>& secs) {
    table.add_section(title);
    for (std::size_t r = 0; r < opt_rows().size(); ++r) {
      std::vector<std::string> row{rows[r].label};
      double overhead_sum = 0.0;
      for (std::size_t s = 0; s < specs.size(); ++s) {
        row.push_back(cell(secs[r][s], baseline_sec[s]));
        overhead_sum += (secs[r][s] / baseline_sec[s] - 1.0) * 100.0;
      }
      row.push_back(str_format("%+.0f%%", overhead_sum / static_cast<double>(specs.size())));
      table.add_row(std::move(row));
    }
  };
  emit_band("After Inserting Clocks", clocks_sec);
  emit_band("After Inserting Clocks and Performing Deterministic Execution", det_sec);

  // Wait-time attribution band: decomposes the det-exec overhead column
  // above into where the threads' waiting time actually went (separate
  // profiled runs with all optimizations; profiling is determinism-neutral
  // but adds clock reads, so the timed runs above stay unprofiled).
  {
    std::vector<runtime::ProfileSummary> summaries(specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s) {
      workloads::MeasureOptions mo;
      mo.mode = workloads::Mode::kDetLock;
      mo.pass_options = pass::PassOptions::all();
      mo.repetitions = 1;
      mo.profile = true;
      summaries[s] = workloads::measure(specs[s], params, mo).profile;
      std::fprintf(stderr, "[table1] %s wait-attribution run done\n", specs[s].name);
    }
    table.add_section("Wait-Time Attribution, % of thread wall time (All Optimizations, Det Exec)");
    for (std::size_t c = 0; c < runtime::kNumWaitCategories; ++c) {
      std::vector<std::string> row{runtime::wait_category_name(static_cast<runtime::WaitCategory>(c))};
      double sum = 0.0;
      for (const runtime::ProfileSummary& ps : summaries) {
        const double p = ps.total_wall_ns > 0
                             ? 100.0 * static_cast<double>(ps.totals[c].ns) /
                                   static_cast<double>(ps.total_wall_ns)
                             : 0.0;
        row.push_back(str_format("%.1f%%", p));
        sum += p;
      }
      row.push_back(str_format("%.1f%%", sum / static_cast<double>(specs.size())));
      table.add_row(std::move(row));
    }
    std::vector<std::string> useful_row{"useful execution"};
    double useful_sum = 0.0;
    for (const runtime::ProfileSummary& ps : summaries) {
      const double p = ps.total_wall_ns > 0 ? 100.0 * static_cast<double>(ps.total_useful_ns) /
                                                  static_cast<double>(ps.total_wall_ns)
                                            : 0.0;
      useful_row.push_back(str_format("%.1f%%", p));
      useful_sum += p;
    }
    useful_row.push_back(str_format("%.1f%%", useful_sum / static_cast<double>(specs.size())));
    table.add_row(std::move(useful_row));
  }

  std::printf("Table I -- DetLock overheads (scale=%u, threads=%u, reps=%d)\n\n", params.scale,
              params.threads, reps);
  std::printf("%s", table.to_string().c_str());
  std::printf("\nNote: absolute percentages are amplified relative to the paper because this\n"
              "host time-slices all program threads on one core (every logical-clock wait\n"
              "serializes); the per-benchmark ordering and the per-optimization deltas are\n"
              "the reproduced quantities.  See EXPERIMENTS.md.\n");
  return 0;
}
