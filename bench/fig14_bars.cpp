// Figure 14: "Overhead of inserting clocks and deterministic execution".
//
// Two stacked bars per benchmark: no-optimization vs all-optimizations,
// each split into the clock-insertion portion (lower) and the additional
// deterministic-execution portion (upper).  Rendered as aligned text bars.
//
// Usage: fig14_bars [scale] [threads] [reps]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cli_common.hpp"
#include "workloads/harness.hpp"

namespace {
using namespace detlock;

std::string bar(double percent, char fill) {
  // 1 char per 4% overhead, capped for readability.
  int chars = static_cast<int>(percent / 4.0 + 0.5);
  chars = std::max(0, std::min(chars, 60));
  return std::string(static_cast<std::size_t>(chars), fill);
}

}  // namespace

int main(int argc, char** argv) {
  workloads::WorkloadParams params;
  params.scale = static_cast<std::uint32_t>(
      cli::parse_positional("fig14_bars", "scale", argc, argv, 1, 8, 1, 1000000, "[scale] [threads] [reps]"));
  params.threads = static_cast<std::uint32_t>(
      cli::parse_positional("fig14_bars", "threads", argc, argv, 2, 4, 1, 64, "[scale] [threads] [reps]"));
  const int reps = static_cast<int>(
      cli::parse_positional("fig14_bars", "reps", argc, argv, 3, 3, 1, 10000, "[scale] [threads] [reps]"));

  std::printf("Figure 14 -- clock-insertion ('#') + deterministic-execution ('+') overhead\n");
  std::printf("Left bar: no optimizations.  Right bar: all optimizations.  1 char = 4%%.\n\n");

  for (const auto& spec : workloads::all_workloads()) {
    workloads::MeasureOptions base;
    base.mode = workloads::Mode::kBaseline;
    base.repetitions = reps;
    const double t0 = workloads::measure(spec, params, base).seconds;

    auto overheads = [&](const pass::PassOptions& options) {
      workloads::MeasureOptions mo;
      mo.pass_options = options;
      mo.repetitions = reps;
      mo.mode = workloads::Mode::kClocksOnly;
      const double clocks = workloads::measure(spec, params, mo).seconds;
      mo.mode = workloads::Mode::kDetLock;
      const double det = workloads::measure(spec, params, mo).seconds;
      const double clock_pct = std::max(0.0, (clocks / t0 - 1.0) * 100.0);
      const double det_extra_pct = std::max(0.0, (det - clocks) / t0 * 100.0);
      return std::make_pair(clock_pct, det_extra_pct);
    };

    const auto [unopt_clock, unopt_det] = overheads(pass::PassOptions::none());
    const auto [opt_clock, opt_det] = overheads(pass::PassOptions::all());

    std::printf("%-10s no-opt  %5.0f%% + %5.0f%%  |%s%s\n", spec.name, unopt_clock, unopt_det,
                bar(unopt_clock, '#').c_str(), bar(unopt_det, '+').c_str());
    std::printf("%-10s all-opt %5.0f%% + %5.0f%%  |%s%s\n\n", "", opt_clock, opt_det,
                bar(opt_clock, '#').c_str(), bar(opt_det, '+').c_str());
  }
  return 0;
}
