// Figure 15: "Improvement of the Radiosity benchmark from updating clocks
// ahead of time".
//
// Three configurations of the Radiosity analog, all deterministic:
//   1. no optimization, start-of-block updates (the paper's left bar);
//   2. Function Clocking with updates at the END of basic blocks -- the
//      optimization reduces update count but cannot count ahead (middle);
//   3. Function Clocking with updates at the START of blocks -- the full
//      ahead-of-time effect (right).
// The paper's claim: 2 and 3 insert identical clock code except placement,
// yet 3's deterministic-execution overhead is clearly lower because lock
// waiters see other threads' clocks pass them sooner.
//
// Usage: fig15_ahead_of_time [scale] [threads] [reps]
#include <cstdio>
#include <cstdlib>

#include "cli_common.hpp"
#include "workloads/harness.hpp"

int main(int argc, char** argv) {
  using namespace detlock;
  workloads::WorkloadParams params;
  params.scale = static_cast<std::uint32_t>(
      cli::parse_positional("fig15_ahead_of_time", "scale", argc, argv, 1, 8, 1, 1000000, "[scale] [threads] [reps]"));
  params.threads = static_cast<std::uint32_t>(
      cli::parse_positional("fig15_ahead_of_time", "threads", argc, argv, 2, 4, 1, 64, "[scale] [threads] [reps]"));
  const int reps = static_cast<int>(
      cli::parse_positional("fig15_ahead_of_time", "reps", argc, argv, 3, 5, 1, 10000, "[scale] [threads] [reps]"));

  const workloads::WorkloadSpec& radiosity = workloads::all_workloads()[3];

  workloads::MeasureOptions base;
  base.mode = workloads::Mode::kBaseline;
  base.repetitions = reps;
  const double t0 = workloads::measure(radiosity, params, base).seconds;

  struct Config {
    const char* label;
    pass::PassOptions options;
  };
  Config configs[3] = {
      {"no optimization, start-of-block", pass::PassOptions::none()},
      {"O1, end-of-block (no ahead-of-time)", pass::PassOptions::only_opt1()},
      {"O1, start-of-block (ahead-of-time)", pass::PassOptions::only_opt1()},
  };
  configs[1].options.placement = pass::ClockPlacement::kEnd;
  configs[2].options.placement = pass::ClockPlacement::kStart;

  std::printf("Figure 15 -- Radiosity, effect of updating clocks ahead of time\n");
  std::printf("(baseline %.0f ms; '#' clock portion, '+' det-exec portion, 1 char = 8%%)\n\n", t0 * 1e3);

  for (const Config& config : configs) {
    workloads::MeasureOptions mo;
    mo.pass_options = config.options;
    mo.repetitions = reps;
    mo.mode = workloads::Mode::kClocksOnly;
    const double clocks = workloads::measure(radiosity, params, mo).seconds;
    mo.mode = workloads::Mode::kDetLock;
    const double det = workloads::measure(radiosity, params, mo).seconds;

    const double clock_pct = std::max(0.0, (clocks / t0 - 1.0) * 100.0);
    const double det_pct = std::max(0.0, (det - clocks) / t0 * 100.0);
    const int clock_chars = std::min(40, static_cast<int>(clock_pct / 8.0 + 0.5));
    const int det_chars = std::min(60, static_cast<int>(det_pct / 8.0 + 0.5));
    std::printf("%-38s %5.0f%% + %5.0f%%  |%.*s%.*s\n", config.label, clock_pct, det_pct, clock_chars,
                "########################################", det_chars,
                "++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++");
  }
  std::printf("\nExpected: the two O1 bars carry the same '#' portion; the start-of-block\n"
              "bar's '+' portion is clearly smaller (paper Fig. 15).\n");
  return 0;
}
