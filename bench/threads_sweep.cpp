// Thread-count scaling sweep (beyond the paper, which fixes 4 cores).
//
// Deterministic-execution overhead grows with thread count for two reasons:
// the wait-for-turn scan is O(threads), and every lock acquisition must
// order against more peers' clocks.  This harness reports baseline /
// clocks-only / DetLock times for 1, 2, 4, and 8 program threads on each
// workload (water_nsq is skipped at non-divisor counts of its 96 molecules).
//
// Usage: threads_sweep [scale] [reps]
#include <cstdio>
#include <cstdlib>

#include "support/strings.hpp"
#include "support/table.hpp"
#include "workloads/harness.hpp"

int main(int argc, char** argv) {
  using namespace detlock;
  const std::uint32_t scale = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  const int reps = argc > 2 ? std::atoi(argv[2]) : 3;
  const std::uint32_t thread_counts[] = {1, 2, 4, 8};

  TextTable table;
  table.add_row({"workload", "threads", "baseline (ms)", "clocks (ms)", "detlock (ms)", "det overhead"});
  table.add_rule();

  for (const auto& spec : workloads::all_workloads()) {
    for (const std::uint32_t threads : thread_counts) {
      workloads::WorkloadParams params;
      params.threads = threads;
      params.scale = scale;

      workloads::MeasureOptions mo;
      mo.repetitions = reps;
      mo.pass_options = pass::PassOptions::all();

      mo.mode = workloads::Mode::kBaseline;
      const double base = workloads::measure(spec, params, mo).seconds;
      mo.mode = workloads::Mode::kClocksOnly;
      const double clocks = workloads::measure(spec, params, mo).seconds;
      mo.mode = workloads::Mode::kDetLock;
      const double det = workloads::measure(spec, params, mo).seconds;

      table.add_row({spec.name, std::to_string(threads), str_format("%.1f", base * 1e3),
                     str_format("%.1f", clocks * 1e3), str_format("%.1f", det * 1e3),
                     str_format("%+.0f%%", (det / base - 1.0) * 100.0)});
      std::fprintf(stderr, "[sweep] %s x%u done\n", spec.name, threads);
    }
    table.add_rule();
  }
  std::printf("Thread-count sweep (scale=%u, reps=%d, all optimizations)\n\n%s", scale, reps,
              table.to_string().c_str());
  std::printf("\nExpected: det overhead grows with thread count (more peers to order against);\n"
              "single-threaded runs pay only the clock-update code.\n");
  return 0;
}
