// Thread-count scaling sweep (beyond the paper, which fixes 4 cores), plus
// the clock-table equivalence and turn-wait scaling gate.
//
// Deterministic-execution overhead grows with thread count for two reasons:
// the flat wait-for-turn scan is O(threads), and every lock acquisition
// must order against more peers' clocks.  The min-clock tree
// (runtime/clock_tree.hpp, --clock-table=tree, the default) removes the
// first term; this harness both reports the human-readable sweep and gates
// the tree's two contracts:
//
//   * identity  -- for every workload x thread count x publication mode x
//                  chaos seed (and both engines), the tree run's
//                  fingerprints, instruction counts, lock schedules, and
//                  per-thread final clocks are byte-identical to the flat
//                  table's;
//   * scaling   -- the turn predicate's cost per poll (slots examined per
//                  has_turn: BackendStats turn_scan_slots / turn_polls)
//                  stays bounded by a constant for the tree at EVERY
//                  thread count -- i.e. sublinear in threads -- while the
//                  flat scan's grows with the count.  The counter ratio is
//                  the gate because it is machine-independent; wall-clock
//                  turn-wait time (profiler categories kTurnWait +
//                  kLockRetry) is recorded alongside as evidence.
//
// water_nsq partitions its 96 molecules evenly across threads, so it is
// skipped (and the skip surfaced in the table) at thread counts that do
// not divide 96 -- of the sweep's counts, only 64.
//
// Usage:
//   threads_sweep [scale] [reps]        human table, counts 1..64
//   threads_sweep --compare [--json=FILE] [--scale=N] [--reps=N]
//                 [--max-scan-ratio=R]  CI gate (exit 2 on failure);
//                 BENCH_threads.json is the checked-in reference output
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "runtime/profile.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "workloads/harness.hpp"

namespace {

using namespace detlock;

bool water_skip(const workloads::WorkloadSpec& spec, std::uint32_t threads) {
  return std::strcmp(spec.name, "water_nsq") == 0 && workloads::kWaterMolecules % threads != 0;
}

std::uint64_t turn_wait_ns(const runtime::ProfileSummary& p) {
  return p.totals[static_cast<std::size_t>(runtime::WaitCategory::kTurnWait)].ns +
         p.totals[static_cast<std::size_t>(runtime::WaitCategory::kLockRetry)].ns;
}

struct RunSpec {
  api::Mode mode = api::Mode::kDetLock;
  interp::EngineKind engine = interp::EngineKind::kDecoded;
  bool chaos = false;
  std::uint64_t chaos_seed = 1;
  bool profile = false;
};

workloads::Measurement run_once(const workloads::WorkloadSpec& spec, std::uint32_t threads,
                                std::uint32_t scale, runtime::ClockTableKind kind,
                                const RunSpec& rs) {
  workloads::WorkloadParams params;
  params.threads = threads;
  params.scale = scale;
  workloads::MeasureOptions mo;
  mo.mode = rs.mode;
  mo.engine = rs.engine;
  mo.pass_options = pass::PassOptions::all();
  mo.clock_table = kind;
  mo.record_trace = true;  // fingerprints are the point of the comparison
  mo.repetitions = 1;
  mo.profile = rs.profile;
  mo.chaos = rs.chaos;
  mo.chaos_seed = rs.chaos_seed;
  return workloads::measure(spec, params, mo);
}

/// Everything the determinism contract promises to keep identical across
/// clock-table kinds.
bool same_run(const interp::RunResult& a, const interp::RunResult& b) {
  return a.main_return == b.main_return && a.trace_fingerprint == b.trace_fingerprint &&
         a.memory_fingerprint == b.memory_fingerprint && a.instructions == b.instructions &&
         a.lock_acquires == b.lock_acquires && a.threads == b.threads &&
         a.final_clocks == b.final_clocks &&
         a.per_thread_instructions == b.per_thread_instructions;
}

double scan_per_poll(const runtime::BackendStats& s) {
  return s.turn_polls == 0
             ? 0.0
             : static_cast<double>(s.turn_scan_slots) / static_cast<double>(s.turn_polls);
}

// ------------------------------------------------------------ table mode --

int run_table(std::uint32_t scale, int reps) {
  const std::uint32_t counts[] = {1, 2, 4, 8, 16, 32, 64};

  TextTable table;
  table.add_row({"workload", "threads", "baseline (ms)", "clocks (ms)", "detlock (ms)", "det overhead"});
  table.add_rule();

  for (const auto& spec : workloads::all_workloads()) {
    for (const std::uint32_t threads : counts) {
      if (water_skip(spec, threads)) {
        table.add_row({spec.name, std::to_string(threads), "--", "--", "--",
                       str_format("skip (%u %% %u != 0)", workloads::kWaterMolecules, threads)});
        continue;
      }
      workloads::WorkloadParams params;
      params.threads = threads;
      params.scale = scale;

      workloads::MeasureOptions mo;
      mo.repetitions = reps;
      mo.pass_options = pass::PassOptions::all();

      mo.mode = workloads::Mode::kBaseline;
      const double base = workloads::measure(spec, params, mo).seconds;
      mo.mode = workloads::Mode::kClocksOnly;
      const double clocks = workloads::measure(spec, params, mo).seconds;
      mo.mode = workloads::Mode::kDetLock;
      const double det = workloads::measure(spec, params, mo).seconds;

      table.add_row({spec.name, std::to_string(threads), str_format("%.1f", base * 1e3),
                     str_format("%.1f", clocks * 1e3), str_format("%.1f", det * 1e3),
                     str_format("%+.0f%%", (det / base - 1.0) * 100.0)});
      std::fprintf(stderr, "[sweep] %s x%u done\n", spec.name, threads);
    }
    table.add_rule();
  }
  std::printf("Thread-count sweep (scale=%u, reps=%d, all optimizations)\n\n%s", scale, reps,
              table.to_string().c_str());
  std::printf("\nExpected: det overhead grows with thread count (more peers to order against);\n"
              "single-threaded runs pay only the clock-update code.\n");
  return 0;
}

// ---------------------------------------------------------- compare mode --

int run_compare(const std::string& json_path, std::uint32_t scale, int reps,
                double max_scan_ratio) {
  const std::uint32_t gate_counts[] = {8, 16, 32, 64};
  bool identity_failed = false;
  bool scaling_failed = false;
  std::string rows_json;

  const auto note_mismatch = [&identity_failed](const char* what, const char* workload,
                                                std::uint32_t threads) {
    identity_failed = true;
    std::fprintf(stderr, "threads_sweep: FAIL: flat vs tree diverge (%s, %s, %u threads)\n", what,
                 workload, threads);
  };

  // Band 1: the scaling band.  DetLock mode, decoded engine, every-update
  // publication, profiled; this is where the scan-per-poll gate applies.
  std::printf("clock-table comparison, detlock mode (scale=%u, best of %d)\n", scale, reps);
  std::printf("%-10s %7s | %9s %12s %11s | %9s %12s %11s | %s\n", "workload", "threads",
              "flat s/p", "flat wait us", "flat ms", "tree s/p", "tree wait us", "tree ms", "same");
  for (const std::uint32_t threads : gate_counts) {
    for (const auto& spec : workloads::all_workloads()) {
      if (water_skip(spec, threads)) {
        std::printf("%-10s %7u | skip (%u %% %u != 0)\n", spec.name, threads,
                    workloads::kWaterMolecules, threads);
        continue;
      }
      RunSpec rs;
      rs.profile = true;
      workloads::Measurement flat;
      workloads::Measurement tree;
      // Best-of-reps for the wall-clock numbers; identity must hold for
      // every rep, so compare inside the loop.
      for (int rep = 0; rep < reps; ++rep) {
        workloads::Measurement f = run_once(spec, threads, scale, runtime::ClockTableKind::kFlat, rs);
        workloads::Measurement t = run_once(spec, threads, scale, runtime::ClockTableKind::kTree, rs);
        if (!same_run(f.run, t.run)) note_mismatch("detlock/every-update", spec.name, threads);
        if (rep == 0 || f.seconds < flat.seconds) flat = std::move(f);
        if (rep == 0 || t.seconds < tree.seconds) tree = std::move(t);
      }
      const double flat_spp = scan_per_poll(flat.run.sync);
      const double tree_spp = scan_per_poll(tree.run.sync);
      // The sublinearity gate: a constant per-poll bound independent of the
      // thread count.  (The flat scan's ratio is reported for contrast and
      // deliberately ungated -- it is the O(threads) baseline.)
      if (tree_spp > max_scan_ratio) {
        scaling_failed = true;
        std::fprintf(stderr,
                     "threads_sweep: FAIL: tree scan/poll %.2f exceeds %.2f (%s, %u threads)\n",
                     tree_spp, max_scan_ratio, spec.name, threads);
      }
      const bool same = same_run(flat.run, tree.run);
      std::printf("%-10s %7u | %9.2f %12.0f %11.1f | %9.2f %12.0f %11.1f | %s\n", spec.name,
                  threads, flat_spp, turn_wait_ns(flat.profile) / 1e3, flat.seconds * 1e3, tree_spp,
                  turn_wait_ns(tree.profile) / 1e3, tree.seconds * 1e3, same ? "yes" : "NO");
      char row[512];
      std::snprintf(row, sizeof row,
                    "%s    {\"workload\": \"%s\", \"threads\": %u, "
                    "\"flat_scan_per_poll\": %.3f, \"tree_scan_per_poll\": %.3f, "
                    "\"flat_turn_wait_ns\": %llu, \"tree_turn_wait_ns\": %llu, "
                    "\"turn_polls\": %llu, \"identical\": %s}",
                    rows_json.empty() ? "" : ",\n", spec.name, threads, flat_spp, tree_spp,
                    static_cast<unsigned long long>(turn_wait_ns(flat.profile)),
                    static_cast<unsigned long long>(turn_wait_ns(tree.profile)),
                    static_cast<unsigned long long>(tree.run.sync.turn_polls),
                    same ? "true" : "false");
      rows_json += row;
    }
  }

  // Band 2: identity across the rest of the matrix -- chunked publication
  // (kendo-sim), the reference engine, and chaos seeds.  Unprofiled and at
  // a reduced count set: these runs exist to pin byte-identity, not to
  // measure.
  struct IdentityBand {
    const char* label;
    RunSpec rs;
    std::vector<std::uint32_t> counts;
  };
  const IdentityBand bands[] = {
      {"kendo-sim/chunked",
       {api::Mode::kKendoSim, interp::EngineKind::kDecoded, false, 0, false},
       {8, 32}},
      {"detlock/reference-engine",
       {api::Mode::kDetLock, interp::EngineKind::kReference, false, 0, false},
       {16}},
      {"detlock/chaos-seed-1",
       {api::Mode::kDetLock, interp::EngineKind::kDecoded, true, 1, false},
       {32}},
      {"detlock/chaos-seed-7",
       {api::Mode::kDetLock, interp::EngineKind::kDecoded, true, 7, false},
       {32}},
  };
  for (const IdentityBand& band : bands) {
    for (const std::uint32_t threads : band.counts) {
      for (const auto& spec : workloads::all_workloads()) {
        if (water_skip(spec, threads)) continue;
        const workloads::Measurement f =
            run_once(spec, threads, scale, runtime::ClockTableKind::kFlat, band.rs);
        const workloads::Measurement t =
            run_once(spec, threads, scale, runtime::ClockTableKind::kTree, band.rs);
        if (!same_run(f.run, t.run)) note_mismatch(band.label, spec.name, threads);
      }
    }
    std::printf("identity band %-26s %s\n", band.label,
                identity_failed ? "checked (failures above)" : "identical");
  }

  const bool failed = identity_failed || scaling_failed;
  std::string json =
      "{\n  \"bench\": \"threads_sweep\",\n  \"metric\": \"turn_scan_slots_per_poll\",\n";
  json += "  \"rows\": [\n" + rows_json + "\n  ],\n";
  json += "  \"max_scan_ratio\": " + str_format("%.2f", max_scan_ratio) + ",\n";
  json += std::string("  \"identity\": \"") + (identity_failed ? "fail" : "pass") + "\",\n";
  json += std::string("  \"gate\": \"") + (failed ? "fail" : "pass") + "\"\n}\n";
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "threads_sweep: cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << json;
  }
  if (failed) {
    std::fprintf(stderr, "threads_sweep: FAIL: %s\n",
                 identity_failed ? "clock-table kinds are not byte-identical"
                                 : "tree turn-predicate cost is not O(1) per poll");
    return 2;
  }
  std::printf("gate: pass (tree scan/poll <= %.2f at every thread count, all runs identical)\n",
              max_scan_ratio);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [argv] {
    std::fprintf(stderr,
                 "usage: %s [scale] [reps]\n"
                 "       %s --compare [--json=FILE] [--scale=N] [--reps=N] [--max-scan-ratio=R]\n",
                 argv[0], argv[0]);
    std::exit(cli::kUsageExit);
  };

  bool compare = false;
  std::string json_path;
  std::uint32_t scale = 0;  // 0 = mode default (8 table, 1 compare)
  int reps = 0;             // 0 = mode default (3 table, 2 compare)
  double max_scan_ratio = 3.0;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--compare") {
      compare = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = static_cast<std::uint32_t>(
          cli::parse_int_flag("threads_sweep", "--scale", arg.substr(8), 1, 1'000'000, usage));
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = static_cast<int>(
          cli::parse_int_flag("threads_sweep", "--reps", arg.substr(7), 1, 10'000, usage));
    } else if (arg.rfind("--max-scan-ratio=", 0) == 0) {
      max_scan_ratio = cli::parse_double_flag("threads_sweep", "--max-scan-ratio", arg.substr(17),
                                              0.1, 1e6, usage);
    } else if (arg.rfind("--", 0) == 0) {
      usage();
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (!positional.empty()) {
    scale = static_cast<std::uint32_t>(
        cli::parse_int_flag("threads_sweep", "scale", positional[0], 1, 1'000'000, usage));
  }
  if (positional.size() > 1) {
    reps = static_cast<int>(
        cli::parse_int_flag("threads_sweep", "reps", positional[1], 1, 10'000, usage));
  }
  if (positional.size() > 2) usage();

  if (compare) {
    return run_compare(json_path, scale ? scale : 1, reps ? reps : 2, max_scan_ratio);
  }
  return run_table(scale ? scale : 8, reps ? reps : 3);
}
