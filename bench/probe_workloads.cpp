// Calibration probe: one line per workload x mode with wall time, executed
// instructions, lock rate and clock-update counts.  Not a paper artifact --
// used to sanity-check that the synthetic workloads land in the intended
// synchronization regimes before running the real table harnesses.
#include <cstdio>

#include "cli_common.hpp"
#include "workloads/harness.hpp"

int main(int argc, char** argv) {
  using namespace detlock;
  workloads::WorkloadParams params;
  params.threads = 4;
  params.scale = static_cast<std::uint32_t>(
      cli::parse_positional("probe_workloads", "scale", argc, argv, 1, 1, 1, 1'000'000, "[scale]"));

  std::printf("%-10s %-12s %8s %12s %10s %12s %10s\n", "workload", "mode", "sec", "instrs", "locks",
              "locks/sec", "clockups");
  for (const auto& spec : workloads::all_workloads()) {
    for (const workloads::Mode mode :
         {workloads::Mode::kBaseline, workloads::Mode::kClocksOnly, workloads::Mode::kDetLock}) {
      workloads::MeasureOptions opts;
      opts.mode = mode;
      opts.repetitions = 1;
      opts.pass_options = pass::PassOptions::none();
      const workloads::Measurement m = workloads::measure(spec, params, opts);
      std::printf("%-10s %-12s %8.3f %12llu %10llu %12.0f %10llu\n", spec.name, workloads::mode_name(mode),
                  m.seconds, static_cast<unsigned long long>(m.run.instructions),
                  static_cast<unsigned long long>(m.run.sync.lock_acquires), m.locks_per_sec,
                  static_cast<unsigned long long>(m.run.clock_update_instrs));
    }
  }
  return 0;
}
