// Interpreter throughput microbenchmarks (google-benchmark): instructions
// per second for representative instruction mixes, and the marginal cost of
// instrumentation instructions -- the quantity Table I's "After Inserting
// Clocks" band is made of.
#include <benchmark/benchmark.h>

#include "interp/engine.hpp"
#include "ir/parser.hpp"

namespace {
using namespace detlock;

ir::Module arith_loop(int clockadds_per_iter) {
  std::string body;
  for (int i = 0; i < clockadds_per_iter; ++i) body += "  clockadd 3\n";
  return ir::parse_module(R"(
func @main(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 0
  br h
block h:
  %3 = icmp lt %2, %0
  condbr %3, body, x
block body:
)" + body + R"(
  %4 = mul %2, %2
  %5 = add %1, %4
  %6 = and %5, %4
  %1 = add %1, %6
  %7 = const 1
  %2 = add %2, %7
  br h
block x:
  ret %1
}
)");
}

void BM_InterpreterArithLoop(benchmark::State& state) {
  const ir::Module m = arith_loop(0);
  const std::int64_t iters = 50000;
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    interp::EngineConfig config;
    config.runtime.record_trace = false;
    config.yield_interval = 0;  // single thread: no need to time-slice
    interp::Engine engine(m, config);
    const interp::RunResult r = engine.run("main", {iters});
    instructions += r.instructions;
    benchmark::DoNotOptimize(r.main_return);
  }
  state.counters["instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterArithLoop)->Unit(benchmark::kMillisecond);

void BM_InterpreterClockAddOverhead(benchmark::State& state) {
  // Same loop with N clockadds injected per iteration: measures exactly the
  // instrumentation cost the DetLock optimizations remove.
  const ir::Module m = arith_loop(static_cast<int>(state.range(0)));
  const std::int64_t iters = 50000;
  for (auto _ : state) {
    interp::EngineConfig config;
    config.runtime.record_trace = false;
    config.yield_interval = 0;
    interp::Engine engine(m, config);
    benchmark::DoNotOptimize(engine.run("main", {iters}).main_return);
  }
  state.SetLabel(std::to_string(state.range(0)) + " clockadds/iter");
}
BENCHMARK(BM_InterpreterClockAddOverhead)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_InterpreterCallHeavy(benchmark::State& state) {
  const ir::Module m = ir::parse_module(R"(
func @leaf(2) {
block entry:
  %2 = add %0, %1
  %3 = mul %2, %0
  ret %3
}
func @main(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 0
  br h
block h:
  %3 = icmp lt %2, %0
  condbr %3, body, x
block body:
  %4 = call @leaf(%1, %2)
  %1 = add %1, %4
  %5 = const 1
  %2 = add %2, %5
  br h
block x:
  ret %1
}
)");
  for (auto _ : state) {
    interp::EngineConfig config;
    config.runtime.record_trace = false;
    config.yield_interval = 0;
    interp::Engine engine(m, config);
    benchmark::DoNotOptimize(engine.run("main", {20000}).main_return);
  }
}
BENCHMARK(BM_InterpreterCallHeavy)->Unit(benchmark::kMillisecond);

void BM_InterpreterMemset(benchmark::State& state) {
  const ir::Module m = ir::parse_module(R"(
extern @memset(3) estimate base=8 per_unit=2 size_arg=2

func @main(1) {
block entry:
  %1 = const 64
  %2 = const 7
  %3 = callx @memset(%1, %2, %0)
  %4 = load %1
  ret %4
}
)");
  for (auto _ : state) {
    interp::EngineConfig config;
    config.runtime.record_trace = false;
    config.yield_interval = 0;
    interp::Engine engine(m, config);
    benchmark::DoNotOptimize(engine.run("main", {state.range(0)}).main_return);
  }
}
BENCHMARK(BM_InterpreterMemset)->Arg(256)->Arg(4096)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
