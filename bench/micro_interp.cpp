// Interpreter throughput microbenchmarks: instructions per second for
// representative instruction mixes under ALL THREE execution engines
// (template JIT, predecoded direct-threaded, block-walking reference), and
// the marginal cost of instrumentation instructions -- the quantity
// Table I's "After Inserting Clocks" band is made of.
//
// Two modes:
//   (default)   google-benchmark suite, each kernel x each engine.
//   --compare   self-contained engine comparison: best-of-N wall clock per
//               kernel per engine, instr/s table on stdout, machine-readable
//               JSON via --json=FILE (BENCH_interp.json / BENCH_jit.json),
//               nonzero exit when the decoded engine fails --min-ratio=R
//               (default 2.0) over reference on the arithmetic kernel, or
//               when the JIT fails --min-jit-ratio=R (default 2.0) over
//               decoded on the same kernel.  The jit gate is skipped (and
//               recorded as "unavailable") on hosts where the JIT falls
//               back to decoded execution.  CI runs both gates as perf
//               regression gates.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "interp/engine.hpp"
#include "ir/parser.hpp"

namespace {
using namespace detlock;
using interp::EngineKind;

ir::Module arith_loop(int clockadds_per_iter) {
  std::string body;
  for (int i = 0; i < clockadds_per_iter; ++i) body += "  clockadd 3\n";
  return ir::parse_module(R"(
func @main(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 0
  br h
block h:
  %3 = icmp lt %2, %0
  condbr %3, body, x
block body:
)" + body + R"(
  %4 = mul %2, %2
  %5 = add %1, %4
  %6 = and %5, %4
  %1 = add %1, %6
  %7 = const 1
  %2 = add %2, %7
  br h
block x:
  ret %1
}
)");
}

ir::Module call_heavy() {
  return ir::parse_module(R"(
func @leaf(2) {
block entry:
  %2 = add %0, %1
  %3 = mul %2, %0
  ret %3
}
func @main(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 0
  br h
block h:
  %3 = icmp lt %2, %0
  condbr %3, body, x
block body:
  %4 = call @leaf(%1, %2)
  %1 = add %1, %4
  %5 = const 1
  %2 = add %2, %5
  br h
block x:
  ret %1
}
)");
}

ir::Module switch_heavy() {
  // Every iteration dispatches through an 8-case switch: exercises the
  // sorted-case binary search in both engines.
  return ir::parse_module(R"(
func @main(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 0
  br h
block h:
  %3 = icmp lt %2, %0
  condbr %3, body, x
block body:
  %4 = const 7
  %5 = and %2, %4
  switch %5, d, [6: c6, 0: c0, 4: c4, 2: c2, 7: c7, 1: c1, 5: c5, 3: c3]
block c0:
  %6 = const 11
  br j
block c1:
  %6 = const 13
  br j
block c2:
  %6 = const 17
  br j
block c3:
  %6 = const 19
  br j
block c4:
  %6 = const 23
  br j
block c5:
  %6 = const 29
  br j
block c6:
  %6 = const 31
  br j
block c7:
  %6 = const 37
  br j
block d:
  %6 = const 1
  br j
block j:
  %1 = add %1, %6
  %7 = const 1
  %2 = add %2, %7
  br h
block x:
  ret %1
}
)");
}

interp::EngineConfig bench_config(EngineKind kind) {
  interp::EngineConfig config;
  config.engine = kind;
  config.runtime.record_trace = false;
  config.yield_interval = 0;  // single thread: no need to time-slice
  // The kernels are register-only (memset excepted, and it touches <8K
  // words).  run() fingerprints every memory word inside the timed region,
  // so the default 1M-word memory would add a multi-millisecond constant
  // to BOTH engines and mask the interpreter speed being measured.
  config.memory_words = 1 << 14;
  return config;
}

// ---------------------------------------------------------------- gbench --

void BM_InterpreterArithLoop(benchmark::State& state, EngineKind kind) {
  const ir::Module m = arith_loop(0);
  const std::int64_t iters = 50000;
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    interp::Engine engine(m, bench_config(kind));
    const interp::RunResult r = engine.run("main", {iters});
    instructions += r.instructions;
    benchmark::DoNotOptimize(r.main_return);
  }
  state.counters["instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_InterpreterArithLoop, jit, EngineKind::kJit)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_InterpreterArithLoop, decoded, EngineKind::kDecoded)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_InterpreterArithLoop, reference, EngineKind::kReference)->Unit(benchmark::kMillisecond);

void BM_InterpreterClockAddOverhead(benchmark::State& state) {
  // Same loop with N clockadds injected per iteration: measures exactly the
  // instrumentation cost the DetLock optimizations remove.
  const ir::Module m = arith_loop(static_cast<int>(state.range(0)));
  const std::int64_t iters = 50000;
  for (auto _ : state) {
    interp::Engine engine(m, bench_config(EngineKind::kDecoded));
    benchmark::DoNotOptimize(engine.run("main", {iters}).main_return);
  }
  state.SetLabel(std::to_string(state.range(0)) + " clockadds/iter");
}
BENCHMARK(BM_InterpreterClockAddOverhead)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_InterpreterCallHeavy(benchmark::State& state, EngineKind kind) {
  const ir::Module m = call_heavy();
  for (auto _ : state) {
    interp::Engine engine(m, bench_config(kind));
    benchmark::DoNotOptimize(engine.run("main", {20000}).main_return);
  }
}
BENCHMARK_CAPTURE(BM_InterpreterCallHeavy, jit, EngineKind::kJit)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_InterpreterCallHeavy, decoded, EngineKind::kDecoded)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_InterpreterCallHeavy, reference, EngineKind::kReference)->Unit(benchmark::kMillisecond);

void BM_InterpreterSwitchHeavy(benchmark::State& state, EngineKind kind) {
  const ir::Module m = switch_heavy();
  for (auto _ : state) {
    interp::Engine engine(m, bench_config(kind));
    benchmark::DoNotOptimize(engine.run("main", {20000}).main_return);
  }
}
BENCHMARK_CAPTURE(BM_InterpreterSwitchHeavy, jit, EngineKind::kJit)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_InterpreterSwitchHeavy, decoded, EngineKind::kDecoded)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_InterpreterSwitchHeavy, reference, EngineKind::kReference)->Unit(benchmark::kMillisecond);

void BM_InterpreterMemset(benchmark::State& state) {
  const ir::Module m = ir::parse_module(R"(
extern @memset(3) estimate base=8 per_unit=2 size_arg=2

func @main(1) {
block entry:
  %1 = const 64
  %2 = const 7
  %3 = callx @memset(%1, %2, %0)
  %4 = load %1
  ret %4
}
)");
  for (auto _ : state) {
    interp::Engine engine(m, bench_config(EngineKind::kDecoded));
    benchmark::DoNotOptimize(engine.run("main", {state.range(0)}).main_return);
  }
}
BENCHMARK(BM_InterpreterMemset)->Arg(256)->Arg(4096)->Unit(benchmark::kMicrosecond);

// --------------------------------------------------------- --compare mode --

struct EngineScore {
  double instr_per_s = 0.0;
  std::uint64_t instructions = 0;
};

EngineScore best_of(const ir::Module& m, EngineKind kind, std::int64_t arg, int reps) {
  EngineScore best;
  for (int rep = 0; rep < reps; ++rep) {
    interp::Engine engine(m, bench_config(kind));
    const auto start = std::chrono::steady_clock::now();
    const interp::RunResult r = engine.run("main", {arg});
    const double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const double rate = static_cast<double>(r.instructions) / seconds;
    if (rate > best.instr_per_s) best = EngineScore{rate, r.instructions};
  }
  return best;
}

/// True when kJit actually executes native code on this host (false means
/// it would run the decoded fallback, making a jit-vs-decoded gate vacuous).
bool jit_available() {
  const ir::Module probe = arith_loop(0);
  interp::Engine engine(probe, bench_config(EngineKind::kJit));
  return engine.jit_active();
}

int run_compare(const std::string& json_path, double min_ratio, double min_jit_ratio, int reps) {
  struct Kernel {
    const char* name;
    ir::Module module;
    std::int64_t arg;
  };
  Kernel kernels[] = {
      {"arith", arith_loop(0), 400000},
      {"call", call_heavy(), 200000},
      {"switch", switch_heavy(), 200000},
      {"clocked_arith", arith_loop(2), 200000},
  };

  const bool have_jit = jit_available();
  if (!have_jit) {
    std::printf("note: template JIT unavailable on this host; jit column measures the decoded fallback\n");
  }
  std::printf("interpreter engine comparison (best of %d, instr/s)\n", reps);
  std::printf("%-14s %15s %15s %15s %9s %9s\n", "kernel", "reference", "decoded", "jit",
              "dec/ref", "jit/dec");
  std::string json = "{\n  \"bench\": \"micro_interp\",\n  \"metric\": \"instr_per_s\",\n  \"kernels\": [\n";
  bool gate_failed = false;
  bool jit_gate_failed = false;
  bool first = true;
  for (Kernel& k : kernels) {
    const EngineScore ref = best_of(k.module, EngineKind::kReference, k.arg, reps);
    const EngineScore dec = best_of(k.module, EngineKind::kDecoded, k.arg, reps);
    const EngineScore jit = best_of(k.module, EngineKind::kJit, k.arg, reps);
    const double speedup = dec.instr_per_s / ref.instr_per_s;
    const double jit_speedup = jit.instr_per_s / dec.instr_per_s;
    std::printf("%-14s %15.0f %15.0f %15.0f %8.2fx %8.2fx\n", k.name, ref.instr_per_s,
                dec.instr_per_s, jit.instr_per_s, speedup, jit_speedup);
    if (std::strcmp(k.name, "arith") == 0) {
      if (speedup < min_ratio) gate_failed = true;
      if (have_jit && jit_speedup < min_jit_ratio) jit_gate_failed = true;
    }
    char entry[512];
    std::snprintf(entry, sizeof entry,
                  "%s    {\"name\": \"%s\", \"instructions\": %llu, "
                  "\"reference_instr_per_s\": %.0f, \"decoded_instr_per_s\": %.0f, "
                  "\"jit_instr_per_s\": %.0f, \"speedup\": %.3f, \"jit_speedup\": %.3f}",
                  first ? "" : ",\n", k.name,
                  static_cast<unsigned long long>(dec.instructions), ref.instr_per_s,
                  dec.instr_per_s, jit.instr_per_s, speedup, jit_speedup);
    json += entry;
    first = false;
  }
  json += "\n  ],\n  \"min_ratio\": " + std::to_string(min_ratio) +
          ",\n  \"gate\": \"" + (gate_failed ? "fail" : "pass") + "\"" +
          ",\n  \"min_jit_ratio\": " + std::to_string(min_jit_ratio) +
          ",\n  \"jit_gate\": \"" +
          (have_jit ? (jit_gate_failed ? "fail" : "pass") : "unavailable") + "\"\n}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "micro_interp: cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << json;
  }
  if (gate_failed) {
    std::fprintf(stderr,
                 "micro_interp: FAIL: decoded engine below %.2fx reference on the arith kernel\n",
                 min_ratio);
    return 2;
  }
  if (jit_gate_failed) {
    std::fprintf(stderr,
                 "micro_interp: FAIL: jit engine below %.2fx decoded on the arith kernel\n",
                 min_jit_ratio);
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [argv] {
    std::fprintf(stderr, "usage: %s [--compare] [--json=FILE] [--min-ratio=R]\n"
                         "          [--min-jit-ratio=R] [--reps=N] [google-benchmark args]\n",
                 argv[0]);
    std::exit(detlock::cli::kUsageExit);
  };
  bool compare = false;
  std::string json_path;
  double min_ratio = 2.0;
  double min_jit_ratio = 2.0;
  int reps = 5;
  std::vector<char*> gbench_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--compare") {
      compare = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--min-ratio=", 0) == 0) {
      min_ratio = detlock::cli::parse_double_flag("micro_interp", "--min-ratio", arg.substr(12),
                                                  0.0, 1e6, usage);
    } else if (arg.rfind("--min-jit-ratio=", 0) == 0) {
      min_jit_ratio = detlock::cli::parse_double_flag("micro_interp", "--min-jit-ratio",
                                                      arg.substr(16), 0.0, 1e6, usage);
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = static_cast<int>(
          detlock::cli::parse_int_flag("micro_interp", "--reps", arg.substr(7), 1, 10'000, usage));
    } else {
      gbench_args.push_back(argv[i]);
    }
  }
  if (compare) return run_compare(json_path, min_ratio, min_jit_ratio, reps);

  int gbench_argc = static_cast<int>(gbench_args.size());
  benchmark::Initialize(&gbench_argc, gbench_args.data());
  if (benchmark::ReportUnrecognizedArguments(gbench_argc, gbench_args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
