// Clock-site / executed-update counts: the timing-free view of Table I's
// first band.
//
// Wall-clock overhead on this host carries scheduler noise; the quantities
// the optimizations actually control -- static clock-update sites in the
// instrumented IR, and clock updates *executed* at run time -- are exactly
// countable and deterministic.  This harness prints both per benchmark and
// optimization level, plus the executed-update fraction of all instructions
// (the quantity the paper's "overhead of inserting clocks" percentages are
// made of).
//
// Usage: table_sites [scale] [threads]
#include <cstdio>
#include <cstdlib>

#include "support/strings.hpp"
#include "support/table.hpp"
#include "cli_common.hpp"
#include "workloads/harness.hpp"

int main(int argc, char** argv) {
  using namespace detlock;
  workloads::WorkloadParams params;
  params.scale = static_cast<std::uint32_t>(
      cli::parse_positional("table_sites", "scale", argc, argv, 1, 2, 1, 1000000, "[scale] [threads]"));
  params.threads = static_cast<std::uint32_t>(
      cli::parse_positional("table_sites", "threads", argc, argv, 2, 4, 1, 64, "[scale] [threads]"));

  struct Row {
    const char* label;
    pass::PassOptions options;
  };
  const Row rows[] = {
      {"no optimization", pass::PassOptions::none()},
      {"O1 function clocking", pass::PassOptions::only_opt1()},
      {"O2 conditional blocks", pass::PassOptions::only_opt2()},
      {"O3 averaging", pass::PassOptions::only_opt3()},
      {"O4 loops", pass::PassOptions::only_opt4()},
      {"all optimizations", pass::PassOptions::all()},
  };

  for (const auto& spec : workloads::all_workloads()) {
    TextTable table;
    table.add_row({"configuration", "static sites", "clocked fns", "executed updates", "% of instrs"});
    table.add_rule();
    for (const Row& row : rows) {
      workloads::Workload w = spec.factory(params);
      const pass::PipelineStats stats = pass::instrument_module(w.module, row.options);
      interp::EngineConfig config;
      config.deterministic = false;  // counting only
      config.runtime.record_trace = false;
      config.memory_words = std::max<std::size_t>(w.memory_words, 1 << 14) * 2;
      interp::Engine engine(w.module, config);
      const interp::RunResult r = engine.run(w.main_func);
      table.add_row({row.label, std::to_string(stats.clock_sites_final),
                     std::to_string(stats.clocked_functions),
                     std::to_string(r.clock_update_instrs),
                     str_format("%.1f%%", 100.0 * static_cast<double>(r.clock_update_instrs) /
                                              static_cast<double>(r.instructions))});
    }
    std::printf("== %s (scale=%u, threads=%u)\n%s\n", spec.name, params.scale, params.threads,
                table.to_string().c_str());
  }
  return 0;
}
