// Chaos matrix: determinism under adversarial timing, measured end to end.
//
// For every workload and both deterministic runtimes (DetLock every-update
// publication and the Kendo-sim chunked configuration), this harness takes
// one clean fingerprint (trace, memory, checksum) and then re-runs the
// workload under FaultPlan::timing_chaos for a row of seeds -- random
// sleeps, sched_yield storms, spin bursts, and delayed clock publication at
// every sync-op boundary.  Every perturbed run must reproduce the clean
// fingerprints bit-for-bit; any divergence fails the row and the process
// exits nonzero (results_chaos.txt is only ever a table of passes).
//
// Usage: chaos_matrix [scale] [threads] [seeds]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/strings.hpp"
#include "support/table.hpp"
#include "cli_common.hpp"
#include "workloads/harness.hpp"

namespace {
using namespace detlock;

struct Fingerprint {
  std::int64_t checksum = 0;
  std::uint64_t trace = 0;
  std::uint64_t memory = 0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint_of(const workloads::Measurement& m) {
  return Fingerprint{m.checksum, m.run.trace_fingerprint, m.run.memory_fingerprint};
}

workloads::MeasureOptions mode_options(workloads::Mode mode) {
  workloads::MeasureOptions options;
  options.mode = mode;
  options.pass_options = pass::PassOptions::all();
  options.repetitions = 1;
  options.record_trace = true;
  return options;
}
}  // namespace

int main(int argc, char** argv) {
  workloads::WorkloadParams params;
  params.scale = static_cast<std::uint32_t>(
      cli::parse_positional("chaos_matrix", "scale", argc, argv, 1, 1, 1, 1000000, "[scale] [threads] [seeds]"));
  params.threads = static_cast<std::uint32_t>(
      cli::parse_positional("chaos_matrix", "threads", argc, argv, 2, 4, 1, 64, "[scale] [threads] [seeds]"));
  const std::uint64_t seeds = static_cast<std::uint64_t>(
      cli::parse_positional("chaos_matrix", "seeds", argc, argv, 3, 8, 1, 1000000, "[scale] [threads] [seeds]"));

  const auto& specs = workloads::all_workloads();
  const workloads::Mode modes[] = {workloads::Mode::kDetLock, workloads::Mode::kKendoSim};

  TextTable table;
  table.add_row({"Workload", "DetLock", "Kendo-sim"});
  table.add_rule();

  std::uint64_t divergences = 0;
  for (const auto& spec : specs) {
    std::vector<std::string> row{spec.name};
    for (const workloads::Mode mode : modes) {
      const Fingerprint clean = fingerprint_of(workloads::measure(spec, params, mode_options(mode)));
      std::uint64_t identical = 0;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        workloads::MeasureOptions chaos = mode_options(mode);
        chaos.chaos = true;
        chaos.chaos_seed = seed;
        const Fingerprint perturbed = fingerprint_of(workloads::measure(spec, params, chaos));
        if (perturbed == clean) {
          ++identical;
        } else {
          ++divergences;
          std::fprintf(stderr, "[chaos] DIVERGENCE: %s %s seed=%llu\n", spec.name,
                       workloads::mode_name(mode), static_cast<unsigned long long>(seed));
        }
      }
      row.push_back(str_format("%llu/%llu identical", static_cast<unsigned long long>(identical),
                               static_cast<unsigned long long>(seeds)));
    }
    table.add_row(row);
  }

  std::printf("Determinism under chaos: perturbed-run fingerprints vs. clean run\n");
  std::printf("(scale=%u, threads=%u, %llu timing-chaos seeds per cell; fingerprint =\n"
              " lock-acquisition trace + final memory image + checksum)\n\n",
              params.scale, params.threads, static_cast<unsigned long long>(seeds));
  std::printf("%s", table.to_string().c_str());
  if (divergences != 0) {
    std::fprintf(stderr, "chaos_matrix: %llu divergent run(s)\n",
                 static_cast<unsigned long long>(divergences));
    return 1;
  }
  std::printf("\nAll perturbed runs bit-identical to their clean baselines.\n");
  return 0;
}
