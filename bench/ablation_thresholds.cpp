// Ablation: the paper's fixed clockability constants.
//
// The paper hardwires three acceptance thresholds without exploring them:
//   * Opt1/Opt3 range bound   -- range <= mean / 2.5
//   * Opt1/Opt3 stddev bound  -- stddev <= mean / 5
//   * Opt2b divergence bound  -- moved/(U+M) < 1/10
//   * Opt4 latch threshold    -- unspecified ("a certain threshold value")
// This harness sweeps each knob on the radiosity + water analogs (the two
// benchmarks most sensitive to O1 and O4 respectively) and reports clock
// sites, sampled divergence, and deterministic run time -- the tradeoff the
// constants pick a point on.
//
// Usage: ablation_thresholds [scale] [threads]
#include <cstdio>
#include <cstdlib>

#include "pass/conservation.hpp"
#include "cli_common.hpp"
#include "workloads/harness.hpp"

namespace {
using namespace detlock;

double max_divergence(const workloads::WorkloadSpec& spec, const workloads::WorkloadParams& params,
                      const pass::PassOptions& options) {
  workloads::Workload w = spec.factory(params);
  pass::ClockAssignment assignment;
  ir::Module module = std::move(w.module);
  pass::compute_assignment(module, options, assignment);
  double max_rel = 0.0;
  for (ir::FuncId f = 0; f < module.functions().size(); ++f) {
    if (assignment.is_clocked(f)) continue;
    const pass::DivergenceReport r = pass::sample_clock_divergence(module, assignment, f, 64, 2048, 7);
    max_rel = std::max(max_rel, r.max_relative);
  }
  return max_rel;
}

void sweep(const char* title, const workloads::WorkloadSpec& spec, const workloads::WorkloadParams& params,
           const std::vector<std::pair<const char*, pass::PassOptions>>& configs) {
  std::printf("%s\n", title);
  std::printf("  %-28s %12s %12s %14s %12s\n", "config", "clock sites", "max diverg", "det time (ms)",
              "clockups");
  for (const auto& [label, options] : configs) {
    workloads::MeasureOptions mo;
    mo.mode = workloads::Mode::kDetLock;
    mo.pass_options = options;
    mo.repetitions = 3;
    const workloads::Measurement m = workloads::measure(spec, params, mo);
    const double divergence = max_divergence(spec, params, options);
    std::printf("  %-28s %12zu %11.1f%% %14.1f %12llu\n", label, m.pass_stats.clock_sites_final,
                divergence * 100.0, m.seconds * 1e3,
                static_cast<unsigned long long>(m.run.clock_update_instrs));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  workloads::WorkloadParams params;
  params.scale = static_cast<std::uint32_t>(
      cli::parse_positional("ablation_thresholds", "scale", argc, argv, 1, 4, 1, 1000000, "[scale] [threads]"));
  params.threads = static_cast<std::uint32_t>(
      cli::parse_positional("ablation_thresholds", "threads", argc, argv, 2, 4, 1, 64, "[scale] [threads]"));

  const auto& radiosity = workloads::all_workloads()[3];
  const auto& water = workloads::all_workloads()[2];

  // --- clockability strictness (O1+O3 enabled) -----------------------------
  std::vector<std::pair<const char*, pass::PassOptions>> clockability;
  for (const auto& [label, range_div, std_div] :
       {std::tuple{"strict (range m/50, std m/100)", 50.0, 100.0},
        std::tuple{"paper  (range m/2.5, std m/5)", 2.5, 5.0},
        std::tuple{"loose  (range m/1.2, std m/2)", 1.2, 2.0}}) {
    pass::PassOptions o;
    o.opt1_function_clocking = true;
    o.opt3_averaging = true;
    o.criteria.range_divisor = range_div;
    o.criteria.stddev_divisor = std_div;
    clockability.emplace_back(label, o);
  }
  sweep("Clockability criteria sweep (radiosity, O1+O3)", radiosity, params, clockability);

  // --- Opt2b divergence bound ----------------------------------------------
  std::vector<std::pair<const char*, pass::PassOptions>> opt2b;
  for (const auto& [label, bound] : {std::tuple{"precise only (0.0)", 0.0}, std::tuple{"paper (0.1)", 0.1},
                                     std::tuple{"loose (0.3)", 0.3}}) {
    pass::PassOptions o = pass::PassOptions::only_opt2();
    o.opt2b_max_divergence = bound;
    opt2b.emplace_back(label, o);
  }
  sweep("Opt2b divergence bound sweep (water_nsq, O2)", water, params, opt2b);

  // --- Opt4 latch threshold -------------------------------------------------
  std::vector<std::pair<const char*, pass::PassOptions>> opt4;
  for (const auto& [label, threshold] :
       {std::tuple{"threshold 2", std::int64_t{2}}, std::tuple{"threshold 16 (default)", std::int64_t{16}},
        std::tuple{"threshold 64", std::int64_t{64}}}) {
    pass::PassOptions o = pass::PassOptions::only_opt4();
    o.opt4_threshold = threshold;
    opt4.emplace_back(label, o);
  }
  sweep("Opt4 latch-threshold sweep (water_nsq, O4)", water, params, opt4);
  return 0;
}
