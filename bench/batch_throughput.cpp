// Batch execution service throughput: the two claims the service layer
// makes, measured.
//
// Band A -- compile-once amortization: jobs/sec for R repetitions of a
// compile-heavy program when every repetition recompiles (the pre-service
// detlockc behavior) vs when all repetitions share one ModuleCache artifact.
// The program is deliberately compile-dominated (hundreds of functions, a
// trivial entry), the shape the cache exists for.
//
// Band B -- concurrency scaling: jobs/sec through a BatchExecutor at 1, 2,
// and 4 workers over a batch of wait-heavy jobs (watchdog-bounded deadlock
// diagnoses: each job's threads park in escalating sleep-waits until the
// per-job watchdog fires, so jobs overlap even on a single hardware
// thread).  This is the service's isolation story: one stalled job costs
// its watchdog window, not the batch's.
//
// Modes:
//   (default)   print both bands
//   --compare   gate mode for CI: nonzero exit when band A's speedup falls
//               below --min-ratio (default 5.0) or band B's jobs/sec is not
//               monotonically nondecreasing from 1 -> 2 -> 4 workers.
//               Machine-readable JSON via --json=FILE (BENCH_batch.json).
//   --runs=R    band A repetitions                    [12]
//   --jobs=J    band B batch size                     [8]
//   --watchdog-ms=N  band B per-job watchdog window   [250]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "api/run_config.hpp"
#include "service/batch_executor.hpp"
#include "service/compiled_module.hpp"
#include "service/execution_context.hpp"
#include "service/module_cache.hpp"
#include "support/json.hpp"

namespace {

using namespace detlock;

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch()).count();
}

// ------------------------------------------------------------- band A ----

/// A compile-dominated program: `functions` loop functions for the pass
/// pipeline and decoder to chew through, and an entry that touches one lock
/// and returns.  Run time is microseconds; compile time is the product.
std::string compile_heavy_program(int functions) {
  std::string text;
  for (int f = 0; f < functions; ++f) {
    char head[64];
    std::snprintf(head, sizeof head, "func @f%d(1) regs=16 {\n", f);
    text += head;
    text +=
        "block entry:\n"
        "  %1 = const 0\n"
        "  %2 = const 8\n"
        "  br h\n"
        "block h:\n"
        "  %3 = icmp lt %1, %2\n"
        "  condbr %3, body, x\n"
        "block body:\n"
        "  %4 = mul %1, %1\n"
        "  %5 = add %4, %0\n"
        "  %6 = and %5, %2\n"
        "  %7 = xor %6, %1\n"
        "  %8 = const 1\n"
        "  %1 = add %1, %8\n"
        "  br h\n"
        "block x:\n"
        "  ret %1\n"
        "}\n";
  }
  text +=
      "func @main(0) regs=16 {\n"
      "block entry:\n"
      "  %0 = const 0\n"
      "  lock %0\n"
      "  %1 = const 100\n"
      "  %2 = const 42\n"
      "  store %1, %2\n"
      "  unlock %0\n"
      "  %3 = load %1\n"
      "  ret %3\n"
      "}\n";
  return text;
}

api::RunConfig band_a_config() {
  api::RunConfig config;  // kDetLock, decoded engine, all optimizations
  config.memory_words = 1 << 10;  // trivial entry: don't fingerprint 1M words
  return config;
}

struct BandA {
  double cold_jobs_per_s = 0.0;
  double warm_jobs_per_s = 0.0;
  double speedup = 0.0;
};

BandA run_band_a(int runs) {
  const std::string text = compile_heavy_program(1200);
  const api::RunConfig config = band_a_config();
  const service::CompileOptions copts = service::compile_options(config);

  // Cold: recompile per repetition, the pre-service behavior.
  const double cold_start = now_seconds();
  for (int r = 0; r < runs; ++r) {
    service::ExecutionContext ctx(service::CompiledModule::compile(text, copts), config);
    ctx.run("main");
  }
  const double cold_seconds = now_seconds() - cold_start;

  // Warm: every repetition goes through one shared cache (first call
  // compiles, the rest hit), the detserve path.
  service::ModuleCache cache(4);
  const double warm_start = now_seconds();
  for (int r = 0; r < runs; ++r) {
    service::ExecutionContext ctx(cache.get_or_compile(text, copts), config);
    ctx.run("main");
  }
  const double warm_seconds = now_seconds() - warm_start;

  BandA result;
  result.cold_jobs_per_s = runs / cold_seconds;
  result.warm_jobs_per_s = runs / warm_seconds;
  result.speedup = cold_seconds / warm_seconds;
  return result;
}

// ------------------------------------------------------------- band B ----

/// The textbook ABBA deadlock (share/programs/abba_deadlock.dl, inlined so
/// the bench is path-independent).  Under the turn protocol both workers
/// deterministically block on each other; the job then sleeps in escalating
/// turn-wait backoff until the per-job watchdog diagnoses the cycle.
const char* kAbbaProgram = R"(
func @worker_ab(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 1
  lock %1
  %4 = const 0
  %5 = const 64
  %6 = const 1
  br spin
block spin:
  %4 = add %4, %6
  %7 = icmp lt %4, %5
  condbr %7, spin, rest
block rest:
  lock %2
  %3 = const 200
  store %3, %0
  unlock %2
  unlock %1
  ret
}
func @worker_ba(1) regs=16 {
block entry:
  %1 = const 0
  %2 = const 1
  lock %2
  %4 = const 0
  %5 = const 64
  %6 = const 1
  br spin
block spin:
  %4 = add %4, %6
  %7 = icmp lt %4, %5
  condbr %7, spin, rest
block rest:
  lock %1
  %3 = const 201
  store %3, %0
  unlock %1
  unlock %2
  ret
}
func @main(0) regs=16 {
block entry:
  %0 = const 1
  %1 = spawn @worker_ab(%0)
  %2 = const 2
  %3 = spawn @worker_ba(%2)
  join %1
  join %3
  %4 = const 0
  ret %4
}
)";

struct BandB {
  std::size_t workers = 0;
  double jobs_per_s = 0.0;
  double wall_seconds = 0.0;
};

BandB run_band_b(std::size_t workers, int jobs, std::uint64_t watchdog_ms,
                 service::ModuleCache& cache) {
  service::BatchExecutor::Options options;
  options.workers = workers;
  options.queue_capacity = static_cast<std::size_t>(jobs);
  service::BatchExecutor executor(cache, options);

  const double start = now_seconds();
  for (int j = 0; j < jobs; ++j) {
    service::JobSpec spec;
    spec.name = "stall" + std::to_string(j);
    spec.ir_text = kAbbaProgram;
    spec.config.watchdog_ms = watchdog_ms;
    spec.config.memory_words = 1 << 10;
    executor.submit(std::move(spec));
  }
  const std::vector<service::JobResult>& results = executor.wait();

  BandB result;
  result.workers = workers;
  result.wall_seconds = now_seconds() - start;
  result.jobs_per_s = jobs / result.wall_seconds;
  for (const service::JobResult& r : results) {
    if (r.status != service::JobStatus::kDeadlock) {
      std::fprintf(stderr, "batch_throughput: job %s was %s, expected deadlock diagnosis\n",
                   r.name.c_str(), service::job_status_name(r.status));
      std::exit(1);
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [argv] {
    std::fprintf(stderr,
                 "usage: %s [--compare] [--json=FILE] [--min-ratio=R] [--runs=R] [--jobs=J]\n"
                 "          [--watchdog-ms=N]\n",
                 argv[0]);
    std::exit(detlock::cli::kUsageExit);
  };
  bool compare = false;
  std::string json_path;
  double min_ratio = 5.0;
  int runs = 12;
  int jobs = 8;
  std::uint64_t watchdog_ms = 250;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--compare") compare = true;
    else if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    else if (arg.rfind("--min-ratio=", 0) == 0)
      min_ratio = detlock::cli::parse_double_flag("batch_throughput", "--min-ratio",
                                                  arg.substr(12), 0.0, 1e6, usage);
    else if (arg.rfind("--runs=", 0) == 0)
      runs = static_cast<int>(detlock::cli::parse_int_flag("batch_throughput", "--runs",
                                                           arg.substr(7), 1, 1'000'000, usage));
    else if (arg.rfind("--jobs=", 0) == 0)
      jobs = static_cast<int>(detlock::cli::parse_int_flag("batch_throughput", "--jobs",
                                                           arg.substr(7), 1, 1'000'000, usage));
    else if (arg.rfind("--watchdog-ms=", 0) == 0)
      watchdog_ms = static_cast<std::uint64_t>(detlock::cli::parse_int_flag(
          "batch_throughput", "--watchdog-ms", arg.substr(14), 1, 86'400'000, usage));
    else usage();
  }

  const BandA a = run_band_a(runs);
  std::printf("band A: compile-once amortization (%d repetitions, compile-heavy program)\n", runs);
  std::printf("  recompile-per-run: %8.1f jobs/s\n", a.cold_jobs_per_s);
  std::printf("  module-cache:      %8.1f jobs/s\n", a.warm_jobs_per_s);
  std::printf("  speedup:           %8.2fx (gate: >= %.1fx)\n\n", a.speedup, min_ratio);

  service::ModuleCache cache(4);
  std::vector<BandB> b;
  std::printf("band B: batch concurrency over %d wait-heavy jobs (watchdog %llu ms each)\n", jobs,
              static_cast<unsigned long long>(watchdog_ms));
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    b.push_back(run_band_b(workers, jobs, watchdog_ms, cache));
    std::printf("  workers=%zu: %6.2f jobs/s (%.2fs wall)\n", workers, b.back().jobs_per_s,
                b.back().wall_seconds);
  }

  const bool band_a_ok = a.speedup >= min_ratio;
  const bool band_b_ok = b[1].jobs_per_s >= b[0].jobs_per_s && b[2].jobs_per_s >= b[1].jobs_per_s;

  if (!json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.field("schema_version", kReportSchemaVersion);
    w.field("bench", "batch_throughput");
    w.key("compile_once");
    w.begin_object();
    w.field("runs", runs);
    w.field("recompile_jobs_per_s", a.cold_jobs_per_s);
    w.field("cached_jobs_per_s", a.warm_jobs_per_s);
    w.field("speedup", a.speedup);
    w.field("min_ratio", min_ratio);
    w.end();
    w.key("concurrency");
    w.begin_array();
    for (const BandB& r : b) {
      w.begin_object();
      w.field("workers", static_cast<std::uint64_t>(r.workers));
      w.field("jobs_per_s", r.jobs_per_s);
      w.field("wall_seconds", r.wall_seconds);
      w.end();
    }
    w.end();
    w.field("gate", band_a_ok && band_b_ok ? "pass" : "fail");
    w.end();
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "batch_throughput: cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << w.str() << "\n";
  }

  if (compare) {
    if (!band_a_ok) {
      std::fprintf(stderr, "batch_throughput: FAIL: compile-once speedup %.2fx below %.2fx\n",
                   a.speedup, min_ratio);
      return 2;
    }
    if (!band_b_ok) {
      std::fprintf(stderr,
                   "batch_throughput: FAIL: jobs/sec not monotonic over workers 1->2->4 "
                   "(%.2f, %.2f, %.2f)\n",
                   b[0].jobs_per_s, b[1].jobs_per_s, b[2].jobs_per_s);
      return 2;
    }
    std::printf("gate: pass\n");
  }
  return 0;
}
