// Quickstart: the full DetLock pipeline in one page.
//
//   1. Write a multithreaded program in the textual IR.
//   2. Instrument it with the DetLock compiler pass (logical clock updates).
//   3. Run it on the deterministic runtime -- twice -- and observe that the
//      global lock-acquisition order, the final memory image, and every
//      thread's final logical clock are identical.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "interp/engine.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "pass/pipeline.hpp"

// Four workers contend for one lock; each adds its id into a shared cell
// and does some private work.  Which worker's update lands last -- and thus
// the "last_writer" cell -- depends entirely on lock acquisition order.
static const char* kProgram = R"(
func @worker(1) {
block entry:
  %1 = const 0
  %2 = const 25
  br loop.cond
block loop.cond:
  %3 = icmp lt %1, %2
  condbr %3, loop.body, done
block loop.body:
  lock %1
  %4 = const 100
  %5 = load %4
  %6 = add %5, %0
  store %4, %6
  %7 = const 101
  store %7, %0
  unlock %1
  %8 = mul %0, %6
  %9 = add %8, %1
  %10 = const 1
  %1 = add %1, %10
  br loop.cond
block done:
  ret
}

func @main(0) {
block entry:
  %0 = const 1
  %1 = spawn @worker(%0)
  %2 = const 2
  %3 = spawn @worker(%2)
  %4 = const 3
  %5 = spawn @worker(%4)
  %6 = const 0
  %7 = call @worker(%6)
  join %1
  join %3
  join %5
  %8 = const 100
  %9 = load %8
  ret %9
}
)";

int main() {
  using namespace detlock;

  auto run_once = [](bool deterministic) {
    // 1. Parse.
    ir::Module module = ir::parse_module(kProgram);
    // 2. Instrument: insert logical clock updates, all four optimizations.
    const pass::PipelineStats stats = pass::instrument_module(module, pass::PassOptions::all());
    // 3. Execute on 4 OS threads.
    interp::EngineConfig config;
    config.deterministic = deterministic;
    interp::Engine engine(module, config);
    const interp::RunResult result = engine.run("main");
    std::printf("  [%s] sum=%lld last_writer=%lld lock-order hash=%016llx clock-updates=%llu (%zu sites)\n",
                deterministic ? "detlock" : "pthread", static_cast<long long>(result.main_return),
                static_cast<long long>(engine.memory().load(101)),
                static_cast<unsigned long long>(result.trace_fingerprint),
                static_cast<unsigned long long>(result.clock_update_instrs),
                stats.materialized.clock_add_sites);
    return result.trace_fingerprint;
  };

  std::printf("Plain pthread-style runs (lock order free to vary):\n");
  run_once(false);
  run_once(false);

  std::printf("\nDetLock runs (identical lock-order hash every time):\n");
  const std::uint64_t a = run_once(true);
  const std::uint64_t b = run_once(true);
  const std::uint64_t c = run_once(true);

  if (a == b && b == c) {
    std::printf("\n=> deterministic: three runs, one schedule.\n");
    return 0;
  }
  std::printf("\n=> ERROR: deterministic runs diverged!\n");
  return 1;
}
